// Command nifdy-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	nifdy-bench -exp all                 # everything, reduced scale
//	nifdy-bench -exp f2 -full            # Figure 2 at paper scale (1M cycles)
//	nifdy-bench -exp t3sweep -net mesh   # parameter sweep for one network
//	nifdy-bench -json BENCH_$(date +%F).json   # also record a perf baseline
//	nifdy-bench -exp f2 -cpuprofile cpu.prof   # profile an experiment's hot path
//	nifdy-bench -exp f2 -memprofile mem.prof   # heap snapshot after it finishes
//	nifdy-bench -exp f2 -shards 4        # 4 engine shards per simulation (bit-identical)
//	nifdy-bench -exp f2 -mode flow       # Figure 2 on the flow-level twins of each fabric
//	nifdy-bench -exp scale               # node-cycles/sec: flit baseline vs 100k-node flow run
//	nifdy-bench -exp dist -procs 1,2,4   # multi-process engine: bit-identity + wall clock per proc count
//	nifdy-bench -exp fabric              # NIFDY vs PFC/DCQCN/plain under incast, lossless + lossy wires
//	nifdy-bench -check                   # invariant-monitor fuzz sweep; exit 1 on violation
//
// Experiments: t2, t3, t3sweep, model, f2, f3, f4, f5, f6, f7, f8, f9,
// coalesce, lossy, acks, piggyback, adaptive, hotspot, faults, scale, dist,
// fabric, all.
//
// -mode selects the fabric fidelity for f2/f3: "flit" (default) is the
// cycle-accurate reference, "flow" swaps each network for its flow-level
// twin (same protocol layer, bandwidth-sharing fabric), and "hybrid" embeds
// the flit fabric as the hot region of a 128-node flow bulk.
//
// Reduced scale (the default) keeps every experiment under roughly a minute
// on a laptop; -full uses the paper's budgets (Figure 2/3: 1,000,000 cycles;
// full graphs and block sizes elsewhere). Shapes — who wins and by roughly
// what factor — are the target, not absolute numbers (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"nifdy"
	"nifdy/internal/stats"
)

// expRecord is one experiment's entry in the -json baseline file: how long
// it took and the tables it reported, so future changes can be compared
// against both the timing and the numbers.
type expRecord struct {
	Name    string            `json:"name"`
	Mode    string            `json:"mode,omitempty"`
	Nodes   int               `json:"nodes,omitempty"`
	NsPerOp int64             `json:"ns_per_op"`
	Metrics []json.RawMessage `json:"metrics,omitempty"`
}

// benchFile is the top-level shape of the -json output. NumCPU and
// GOMAXPROCS qualify every timing in the file: a speedup claim from a
// sharded or multi-process run is only meaningful relative to the
// parallelism the host actually had.
type benchFile struct {
	Date        string      `json:"date"`
	GoVersion   string      `json:"go_version"`
	GOARCH      string      `json:"goarch"`
	Seed        uint64      `json:"seed"`
	Full        bool        `json:"full"`
	Shards      int         `json:"shards"`
	Window      int         `json:"window,omitempty"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	NumCPU      int         `json:"numcpu"`
	Experiments []expRecord `json:"experiments"`
}

func main() {
	// The dist experiment (and the fuzz sweep's multi-process column)
	// re-executes this binary as distributed workers; a worker invocation
	// must join the cluster protocol before any flag parsing.
	if nifdy.DistWorkerMain() {
		return
	}
	var (
		exp     = flag.String("exp", "all", "experiment id (t2,t3,t3sweep,f2,f3,f4,f5,f6,f7,f8,f9,coalesce,lossy,acks,piggyback,scale,dist,fabric,all)")
		full    = flag.Bool("full", false, "paper-scale budgets instead of reduced")
		seed    = flag.Uint64("seed", 1995, "experiment seed")
		shards  = flag.Int("shards", 0, "engine shards per simulation for f2/f3/f4 (0 = min(GOMAXPROCS, nodes), 1 = serial; bit-identical results)")
		net     = flag.String("net", "mesh", "network for -exp t3sweep (mesh,torus,fattree,sf,cm5,butterfly,multibutterfly,mesh3d)")
		mode    = flag.String("mode", "flit", "fabric fidelity for f2/f3 (flit,flow,hybrid)")
		procs   = flag.String("procs", "", "worker process counts for -exp dist, comma-separated (default 1,2 and 4 when the host has >=4 CPUs)")
		window  = flag.Int("window", 0, "conservative sync window W in cycles for f2/f3 and -exp dist (0 = default: 1 for figures, 4 for dist; W is a model parameter — delivered counts depend on it)")
		chk     = flag.Bool("check", false, "run the invariant-monitor fuzz sweep instead of experiments (exit 1 on any violation; -full scales it up)")
		jsonOut = flag.String("json", "", "also write ns/op and reported metrics per experiment to this file (e.g. BENCH_2006-01-02.json)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProf = flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	)
	flag.Parse()

	modeNets, ok := modeNetworks(*mode)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mode %q (flit, flow, hybrid)\n", *mode)
		os.Exit(2)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot write %s: %v\n", *cpuProf, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "start cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot write %s: %v\n", *memProf, err)
			os.Exit(1)
		}
		defer func() {
			runtime.GC() // settle to live objects before snapshotting the heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "write heap profile: %v\n", err)
			}
			f.Close()
		}()
	}

	if *jsonOut != "" {
		// Fail on an unwritable path now, not after an hour of experiments.
		f, err := os.OpenFile(*jsonOut, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		f.Close()
	}

	if *chk {
		o := nifdy.FuzzOpts{Seed: *seed}
		if *full {
			o.Trials = 48
			o.Packets = 60
		}
		start := time.Now()
		res := nifdy.FuzzSweep(o)
		for _, f := range res.Failures {
			fmt.Fprintf(os.Stderr, "FAIL %s\n", f)
		}
		fmt.Printf("invariant sweep: %d runs, %d failures in %v\n",
			res.Runs, len(res.Failures), time.Since(start).Round(time.Millisecond))
		if len(res.Failures) > 0 {
			os.Exit(1)
		}
		return
	}

	var records []expRecord

	run := func(id string) {
		// Table-producing cases register their tables here; after the switch
		// they become the experiment's metrics in the -json baseline.
		var tables []*stats.Table
		collect := func(ts ...*stats.Table) {
			tables = append(tables, ts...)
		}
		var extra []json.RawMessage
		recMode := ""
		recorded := false
		start := time.Now()
		switch id {
		case "t2":
			tbl := nifdy.Table2()
			fmt.Println(tbl)
			collect(tbl)
		case "t3":
			tbl := nifdy.Table3(*seed)
			fmt.Println(tbl)
			collect(tbl)
		case "t3sweep":
			spec, ok := netByName(*net)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown network %q\n", *net)
				os.Exit(2)
			}
			o := nifdy.SweepOpts{Seed: *seed}
			if *full {
				o.Cycles = 1_000_000
			}
			res := nifdy.Table3Sweep(spec, o)
			fmt.Printf("== Parameter sweep: %s (best first) ==\n", spec.Name)
			for i, r := range res {
				if i >= 10 {
					break
				}
				fmt.Printf("O=%-2d B=%-2d W=%-2d  delivered=%d\n", r.Params.O, r.Params.B, r.Params.W, r.Delivered)
			}
			if raw, err := json.Marshal(res); err == nil {
				extra = append(extra, raw)
			}
		case "f2":
			o := synthOpts(*full, *seed, *shards, *window)
			o.Networks = modeNets
			recMode = *mode
			tbl := nifdy.Figure2(o)
			fmt.Println(tbl)
			fmt.Println(tbl.Chart("pkts", 0, 1, 2, 3))
			collect(tbl)
		case "f3":
			o := synthOpts(*full, *seed, *shards, *window)
			o.Networks = modeNets
			recMode = *mode
			tbl := nifdy.Figure3(o)
			fmt.Println(tbl)
			fmt.Println(tbl.Chart("pkts", 0, 1, 2, 3))
			collect(tbl)
		case "f4":
			o := nifdy.Figure4Opts{Seed: *seed, Shards: *shards}
			if *full {
				o.Cycles = 1_000_000
				o.Levels = []int{2, 3, 4}
			}
			b, oo := nifdy.Figure4(o)
			fmt.Println(b)
			fmt.Println(oo)
			collect(b, oo)
		case "f5":
			o := cshiftOpts(*full, *seed)
			without, with := nifdy.Figure5(o)
			fmt.Println("== Figure 5: pending packets per receiver (C-shift, no barriers) ==")
			fmt.Println("-- without NIFDY --")
			fmt.Print(without)
			fmt.Println("-- with NIFDY --")
			fmt.Print(with)
		case "f6":
			tbl := nifdy.Figure6(cshiftOpts(*full, *seed))
			fmt.Println(tbl)
			fmt.Println(tbl.Chart("words/1000cyc", 0, 4))
			collect(tbl)
		case "f7":
			tbl := nifdy.EM3D(em3dOpts(*full, *seed, false))
			fmt.Println(tbl)
			collect(tbl)
		case "f8":
			tbl := nifdy.EM3D(em3dOpts(*full, *seed, true))
			fmt.Println(tbl)
			collect(tbl)
		case "f9":
			o := nifdy.RadixOpts{Seed: *seed}
			if !*full {
				o.Nodes = 16
				o.Buckets = 128
			}
			tbl := nifdy.Figure9(o)
			fmt.Println(tbl)
			collect(tbl)
		case "coalesce":
			o := nifdy.RadixOpts{Seed: *seed}
			if !*full {
				o.Nodes = 16
				o.Buckets = 128
			}
			tbl := nifdy.RadixCoalesce(o)
			fmt.Println(tbl)
			collect(tbl)
		case "lossy":
			o := nifdy.LossyOpts{Seed: *seed}
			if !*full {
				o.Messages = 10
			}
			tbl := nifdy.ExtLossy(o)
			fmt.Println(tbl)
			collect(tbl)
		case "acks":
			o := nifdy.AckOpts{Seed: *seed}
			if *full {
				o.Cycles = 1_000_000
			}
			tbl := nifdy.ExtAckStrategies(o)
			fmt.Println(tbl)
			collect(tbl)
		case "piggyback":
			o := nifdy.AckOpts{Seed: *seed}
			if *full {
				o.Cycles = 1_000_000
			}
			tbl := nifdy.ExtPiggyback(o)
			fmt.Println(tbl)
			collect(tbl)
		case "adaptive":
			o := nifdy.AckOpts{Seed: *seed}
			if *full {
				o.Cycles = 1_000_000
			}
			tbl := nifdy.ExtAdaptiveMesh(o)
			fmt.Println(tbl)
			collect(tbl)
		case "hotspot":
			o := nifdy.AckOpts{Seed: *seed}
			if *full {
				o.Cycles = 1_000_000
			}
			tbl := nifdy.ExtHotspot(o)
			fmt.Println(tbl)
			collect(tbl)
		case "faults":
			o := nifdy.AckOpts{Seed: *seed}
			if *full {
				o.Cycles = 1_000_000
			}
			tbl := nifdy.ExtFaults(o)
			fmt.Println(tbl)
			collect(tbl)
		case "fabric":
			// Modern-fabric scenario pack (DESIGN.md §11). Reduced scale is
			// the 9x9/48-way testbed whose shapes match the 17x17/256-way
			// default (-full); every metric is bit-identical for any -shards.
			// The per-cell metrics land in the baseline JSON with the
			// fabric/loss/nic_kind fields scripts/benchfabric.sh gates on.
			o := nifdy.FabricOpts{Seed: *seed, Shards: *shards}
			if !*full {
				o.Width, o.Height = 9, 9
				o.FanIn = 48
				o.Cycles = 40_000
			}
			pts := nifdy.FabricExperiment(o)
			tbl := nifdy.FabricTable(pts)
			fmt.Println(tbl)
			collect(tbl)
			if raw, err := json.Marshal(pts); err == nil {
				extra = append(extra, raw)
			}
		case "model":
			tbl := nifdy.ModelCheck(nifdy.ModelCheckOpts{Seed: *seed})
			fmt.Println(tbl)
			collect(tbl)
		case "scale":
			// Simulation throughput across fidelities: the cycle-accurate
			// 64-node baseline, its hybrid embedding in a 4096-node flow
			// bulk, and the pure flow engine at 102,400 nodes. One record
			// per row so the mode and node count are first-class in the
			// baseline file.
			cycles := sim20k(*full)
			tbl := stats.NewTable("Scale: simulated node-cycles per wall second",
				"fabric", "mode", "nodes", "cycles", "delivered", "node-cyc/s")
			for _, cfg := range []struct {
				mode string
				spec nifdy.NetSpec
			}{
				{"flit", nifdy.Mesh2D()},
				{"hybrid", nifdy.HybridTwin(nifdy.Mesh2D(), 4096)},
				{"flow", nifdy.FlowMeshSized(320, 320)},
			} {
				res := nifdy.ScaleBench(cfg.spec, nifdy.ScaleOpts{
					Cycles: cycles, Seed: *seed, Shards: *shards,
				})
				tbl.Row(res.Name, cfg.mode, res.Nodes, res.Cycles,
					res.Delivered, res.NodeCyclesPerSec)
				if *jsonOut != "" {
					raw, err := json.Marshal(res)
					if err != nil {
						fmt.Fprintf(os.Stderr, "marshal scale/%s: %v\n", cfg.mode, err)
						continue
					}
					records = append(records, expRecord{
						Name: id, Mode: cfg.mode, Nodes: res.Nodes,
						NsPerOp: res.WallNS, Metrics: []json.RawMessage{raw},
					})
				}
			}
			fmt.Println(tbl)
			recorded = true
		case "dist":
			// Multi-process engine: the same mesh workload run over 1, 2,
			// and (on >=4-CPU hosts) 4 worker processes connected by the
			// staged socket/shared-memory transport, one engine shard per
			// worker so the proc count is the parallelism. Every run's full
			// golden trace must be byte-identical to the single-process run
			// — the state trace is split-invariant, so the rows may differ
			// only in wall clock. One record per proc count so speedup is
			// first-class in the baseline file.
			counts := distProcCounts(*procs)
			cycles := int64(60_000)
			if *full {
				cycles = 400_000
			}
			w := *window
			if w == 0 {
				w = 4
			}
			spec := nifdy.DistSpec{
				Net: "mesh2d", Kind: int(nifdy.KindNIFDY),
				Window: w, Seed: *seed, PendingInterval: 1000,
				Pattern: "heavy", Phases: 1 << 20,
			}
			shm := runtime.GOOS == "linux"
			tbl := stats.NewTable("Distributed engine: wall clock by worker processes",
				"procs", "shards", "window", "cycles", "wall", "speedup")
			ref := ""
			var refNS int64
			for _, p := range counts {
				spec.Shards = p
				start := time.Now()
				trace, err := nifdy.DistTrace(spec, p, cycles, 1000, shm)
				wall := time.Since(start)
				if err != nil {
					fmt.Fprintf(os.Stderr, "dist procs=%d: %v\n", p, err)
					os.Exit(1)
				}
				if ref == "" {
					ref, refNS = trace, wall.Nanoseconds()
				} else if trace != ref {
					fmt.Fprintf(os.Stderr, "dist procs=%d diverges from procs=%d\n", p, counts[0])
					os.Exit(1)
				}
				speedup := float64(refNS) / float64(wall.Nanoseconds())
				tbl.Row(p, spec.Shards, w, cycles,
					wall.Round(time.Millisecond).String(),
					fmt.Sprintf("%.2fx", speedup))
				if *jsonOut != "" {
					raw, err := json.Marshal(struct {
						Procs   int     `json:"procs"`
						Shards  int     `json:"shards"`
						Window  int     `json:"window"`
						Cycles  int64   `json:"cycles"`
						WallNS  int64   `json:"wall_ns"`
						Speedup float64 `json:"speedup"`
					}{p, spec.Shards, w, cycles, wall.Nanoseconds(), speedup})
					if err != nil {
						fmt.Fprintf(os.Stderr, "marshal dist/procs=%d: %v\n", p, err)
						continue
					}
					records = append(records, expRecord{
						Name: id, Mode: fmt.Sprintf("procs=%d", p),
						NsPerOp: wall.Nanoseconds(), Metrics: []json.RawMessage{raw},
					})
				}
			}
			fmt.Println(tbl)
			fmt.Printf("dist: all %d proc counts byte-identical over %d cycles\n", len(counts), cycles)
			recorded = true
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		elapsed := time.Since(start)
		fmt.Printf("[%s took %v]\n\n", id, elapsed.Round(time.Millisecond))
		if *jsonOut == "" || recorded {
			return
		}
		rec := expRecord{Name: id, Mode: recMode, NsPerOp: elapsed.Nanoseconds(), Metrics: extra}
		for _, t := range tables {
			raw, err := t.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "marshal %s metrics: %v\n", id, err)
				continue
			}
			rec.Metrics = append(rec.Metrics, raw)
		}
		records = append(records, rec)
	}

	if *exp == "all" {
		for _, id := range []string{"t2", "t3", "model", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "coalesce", "lossy", "acks", "piggyback", "adaptive", "hotspot", "faults"} {
			run(id)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			run(strings.TrimSpace(id))
		}
	}

	if *jsonOut != "" {
		out := benchFile{
			Date:        time.Now().UTC().Format("2006-01-02"),
			GoVersion:   runtime.Version(),
			GOARCH:      runtime.GOARCH,
			Seed:        *seed,
			Full:        *full,
			Shards:      *shards,
			Window:      *window,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
			Experiments: records,
		}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal baseline: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote baseline to %s (%d experiments)\n", *jsonOut, len(records))
	}
}

// distProcCounts parses -procs, defaulting to {1, 2} plus 4 on hosts with
// at least 4 CPUs (a 4-worker run on fewer cores only measures contention).
func distProcCounts(s string) []int {
	if s == "" {
		out := []int{1, 2}
		if runtime.NumCPU() >= 4 {
			out = append(out, 4)
		}
		return out
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "bad -procs entry %q\n", f)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

// sim20k is the scale experiment's cycle budget: 20k reduced, 100k full.
func sim20k(full bool) int64 {
	if full {
		return 100_000
	}
	return 20_000
}

// modeNetworks maps -mode to the figure networks at that fidelity.
func modeNetworks(mode string) ([]nifdy.NetSpec, bool) {
	base := nifdy.StandardNetworks()
	switch mode {
	case "", "flit":
		return base, true
	case "flow":
		out := make([]nifdy.NetSpec, len(base))
		for i, s := range base {
			out[i] = nifdy.FlowTwin(s)
		}
		return out, true
	case "hybrid":
		out := make([]nifdy.NetSpec, len(base))
		for i, s := range base {
			out[i] = nifdy.HybridTwin(s, 128)
		}
		return out, true
	}
	return nil, false
}

func synthOpts(full bool, seed uint64, shards, window int) nifdy.SynthOpts {
	o := nifdy.SynthOpts{Seed: seed, Shards: shards, Window: window}
	if !full {
		o.Cycles = 150_000
	}
	return o
}

func cshiftOpts(full bool, seed uint64) nifdy.CShiftOpts {
	o := nifdy.CShiftOpts{Seed: seed}
	if !full {
		o.Levels = 2
		o.BlockWords = 60
		o.MaxCycles = 10_000_000
		o.Samples = 400
	}
	return o
}

func em3dOpts(full bool, seed uint64, heavy bool) nifdy.EM3DOpts {
	o := nifdy.EM3DOpts{Seed: seed, Heavy: heavy}
	if !full {
		o.ScaleGraph = 10
		o.Iters = 1
		o.Networks = []nifdy.NetSpec{nifdy.FullFatTree(), nifdy.CM5FatTree(), nifdy.Mesh2D(), nifdy.Butterfly()}
	}
	return o
}

func netByName(name string) (nifdy.NetSpec, bool) {
	switch name {
	case "mesh":
		return nifdy.Mesh2D(), true
	case "mesh3d":
		return nifdy.Mesh3D(), true
	case "torus":
		return nifdy.Torus2D(), true
	case "fattree":
		return nifdy.FullFatTree(), true
	case "sf":
		return nifdy.SFFatTree(), true
	case "cm5":
		return nifdy.CM5FatTree(), true
	case "butterfly":
		return nifdy.Butterfly(), true
	case "multibutterfly":
		return nifdy.Multibutterfly(), true
	}
	return nifdy.NetSpec{}, false
}
