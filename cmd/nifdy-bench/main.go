// Command nifdy-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	nifdy-bench -exp all                 # everything, reduced scale
//	nifdy-bench -exp f2 -full            # Figure 2 at paper scale (1M cycles)
//	nifdy-bench -exp t3sweep -net mesh   # parameter sweep for one network
//
// Experiments: t2, t3, t3sweep, model, f2, f3, f4, f5, f6, f7, f8, f9,
// coalesce, lossy, acks, piggyback, adaptive, hotspot, faults, all.
//
// Reduced scale (the default) keeps every experiment under roughly a minute
// on a laptop; -full uses the paper's budgets (Figure 2/3: 1,000,000 cycles;
// full graphs and block sizes elsewhere). Shapes — who wins and by roughly
// what factor — are the target, not absolute numbers (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nifdy"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment id (t2,t3,t3sweep,f2,f3,f4,f5,f6,f7,f8,f9,coalesce,lossy,acks,piggyback,all)")
		full = flag.Bool("full", false, "paper-scale budgets instead of reduced")
		seed = flag.Uint64("seed", 1995, "experiment seed")
		net  = flag.String("net", "mesh", "network for -exp t3sweep (mesh,torus,fattree,sf,cm5,butterfly,multibutterfly,mesh3d)")
	)
	flag.Parse()

	run := func(id string) {
		start := time.Now()
		switch id {
		case "t2":
			fmt.Println(nifdy.Table2())
		case "t3":
			fmt.Println(nifdy.Table3(*seed))
		case "t3sweep":
			spec, ok := netByName(*net)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown network %q\n", *net)
				os.Exit(2)
			}
			o := nifdy.SweepOpts{Seed: *seed}
			if *full {
				o.Cycles = 1_000_000
			}
			res := nifdy.Table3Sweep(spec, o)
			fmt.Printf("== Parameter sweep: %s (best first) ==\n", spec.Name)
			for i, r := range res {
				if i >= 10 {
					break
				}
				fmt.Printf("O=%-2d B=%-2d W=%-2d  delivered=%d\n", r.Params.O, r.Params.B, r.Params.W, r.Delivered)
			}
		case "f2":
			tbl := nifdy.Figure2(synthOpts(*full, *seed))
			fmt.Println(tbl)
			fmt.Println(tbl.Chart("pkts", 0, 1, 2, 3))
		case "f3":
			tbl := nifdy.Figure3(synthOpts(*full, *seed))
			fmt.Println(tbl)
			fmt.Println(tbl.Chart("pkts", 0, 1, 2, 3))
		case "f4":
			o := nifdy.Figure4Opts{Seed: *seed}
			if *full {
				o.Cycles = 1_000_000
				o.Levels = []int{2, 3, 4}
			}
			b, oo := nifdy.Figure4(o)
			fmt.Println(b)
			fmt.Println(oo)
		case "f5":
			o := cshiftOpts(*full, *seed)
			without, with := nifdy.Figure5(o)
			fmt.Println("== Figure 5: pending packets per receiver (C-shift, no barriers) ==")
			fmt.Println("-- without NIFDY --")
			fmt.Print(without)
			fmt.Println("-- with NIFDY --")
			fmt.Print(with)
		case "f6":
			tbl := nifdy.Figure6(cshiftOpts(*full, *seed))
			fmt.Println(tbl)
			fmt.Println(tbl.Chart("words/1000cyc", 0, 4))
		case "f7":
			fmt.Println(nifdy.EM3D(em3dOpts(*full, *seed, false)))
		case "f8":
			fmt.Println(nifdy.EM3D(em3dOpts(*full, *seed, true)))
		case "f9":
			o := nifdy.RadixOpts{Seed: *seed}
			if !*full {
				o.Nodes = 16
				o.Buckets = 128
			}
			fmt.Println(nifdy.Figure9(o))
		case "coalesce":
			o := nifdy.RadixOpts{Seed: *seed}
			if !*full {
				o.Nodes = 16
				o.Buckets = 128
			}
			fmt.Println(nifdy.RadixCoalesce(o))
		case "lossy":
			o := nifdy.LossyOpts{Seed: *seed}
			if !*full {
				o.Messages = 10
			}
			fmt.Println(nifdy.ExtLossy(o))
		case "acks":
			o := nifdy.AckOpts{Seed: *seed}
			if *full {
				o.Cycles = 1_000_000
			}
			fmt.Println(nifdy.ExtAckStrategies(o))
		case "piggyback":
			o := nifdy.AckOpts{Seed: *seed}
			if *full {
				o.Cycles = 1_000_000
			}
			fmt.Println(nifdy.ExtPiggyback(o))
		case "adaptive":
			o := nifdy.AckOpts{Seed: *seed}
			if *full {
				o.Cycles = 1_000_000
			}
			fmt.Println(nifdy.ExtAdaptiveMesh(o))
		case "hotspot":
			o := nifdy.AckOpts{Seed: *seed}
			if *full {
				o.Cycles = 1_000_000
			}
			fmt.Println(nifdy.ExtHotspot(o))
		case "faults":
			o := nifdy.AckOpts{Seed: *seed}
			if *full {
				o.Cycles = 1_000_000
			}
			fmt.Println(nifdy.ExtFaults(o))
		case "model":
			fmt.Println(nifdy.ModelCheck(nifdy.ModelCheckOpts{Seed: *seed}))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		fmt.Printf("[%s took %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, id := range []string{"t2", "t3", "model", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "coalesce", "lossy", "acks", "piggyback", "adaptive", "hotspot", "faults"} {
			run(id)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(id))
	}
}

func synthOpts(full bool, seed uint64) nifdy.SynthOpts {
	o := nifdy.SynthOpts{Seed: seed}
	if !full {
		o.Cycles = 150_000
	}
	return o
}

func cshiftOpts(full bool, seed uint64) nifdy.CShiftOpts {
	o := nifdy.CShiftOpts{Seed: seed}
	if !full {
		o.Levels = 2
		o.BlockWords = 60
		o.MaxCycles = 10_000_000
		o.Samples = 400
	}
	return o
}

func em3dOpts(full bool, seed uint64, heavy bool) nifdy.EM3DOpts {
	o := nifdy.EM3DOpts{Seed: seed, Heavy: heavy}
	if !full {
		o.ScaleGraph = 10
		o.Iters = 1
		o.Networks = []nifdy.NetSpec{nifdy.FullFatTree(), nifdy.CM5FatTree(), nifdy.Mesh2D(), nifdy.Butterfly()}
	}
	return o
}

func netByName(name string) (nifdy.NetSpec, bool) {
	switch name {
	case "mesh":
		return nifdy.Mesh2D(), true
	case "mesh3d":
		return nifdy.Mesh3D(), true
	case "torus":
		return nifdy.Torus2D(), true
	case "fattree":
		return nifdy.FullFatTree(), true
	case "sf":
		return nifdy.SFFatTree(), true
	case "cm5":
		return nifdy.CM5FatTree(), true
	case "butterfly":
		return nifdy.Butterfly(), true
	case "multibutterfly":
		return nifdy.Multibutterfly(), true
	}
	return nifdy.NetSpec{}, false
}
