// Command nifdy-sim runs one simulation configuration and prints its
// statistics — the quickest way to poke at a network/NIC combination.
//
// Usage:
//
//	nifdy-sim -net mesh -nic nifdy -traffic heavy -cycles 200000
//	nifdy-sim -net cm5 -nic buffers -traffic light -O 4 -B 8 -W 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nifdy"
	"nifdy/internal/core"
	"nifdy/internal/harness"
	"nifdy/internal/traffic"
)

func main() {
	var (
		netName = flag.String("net", "mesh", "network (mesh,mesh3d,torus,fattree,sf,cm5,butterfly,multibutterfly)")
		nicName = flag.String("nic", "nifdy", "NIC (none,buffers,nifdy)")
		load    = flag.String("traffic", "heavy", "traffic pattern (heavy,light)")
		cycles  = flag.Int64("cycles", 200_000, "cycles to simulate")
		seed    = flag.Uint64("seed", 1995, "seed")
		oParam  = flag.Int("O", 0, "OPT size (0 = network default)")
		bParam  = flag.Int("B", 0, "pool size")
		dParam  = flag.Int("D", 0, "bulk dialogs per receiver (-1 disables)")
		wParam  = flag.Int("W", 0, "bulk window")
		drop    = flag.Float64("drop", 0, "packet drop probability (enables retransmission)")
		asJSON  = flag.Bool("json", false, "emit machine-readable JSON instead of text")
	)
	flag.Parse()

	spec, ok := netSpec(*netName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown network %q\n", *netName)
		os.Exit(2)
	}
	var kind nifdy.Kind
	switch *nicName {
	case "none":
		kind = nifdy.KindPlain
	case "buffers":
		kind = nifdy.KindBuffersOnly
	case "nifdy":
		kind = nifdy.KindNIFDY
	default:
		fmt.Fprintf(os.Stderr, "unknown NIC %q\n", *nicName)
		os.Exit(2)
	}

	params := spec.Params
	if *oParam != 0 {
		params.O = *oParam
	}
	if *bParam != 0 {
		params.B = *bParam
	}
	if *dParam != 0 {
		params.D = *dParam
	}
	if *wParam != 0 {
		params.W = *wParam
	}
	if *drop > 0 {
		params.Retransmit = true
	}

	net := spec.Build(*seed, nifdy.IfaceOptions{})
	var tcfg traffic.Config
	switch *load {
	case "heavy":
		tcfg = traffic.Heavy(net.Nodes(), *seed)
	case "light":
		tcfg = traffic.Light(net.Nodes(), *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown traffic %q\n", *load)
		os.Exit(2)
	}
	tcfg.Phases = 1 << 20

	gen := traffic.NewGen(tcfg, nil)
	sys := nifdy.New(nifdy.Options{
		Net: spec, Kind: kind, Seed: *seed, Drop: *drop, Params: params,
		Program: func(n int) nifdy.Program { return gen.Program(n) },
	})
	defer sys.Close()
	sys.Eng.Run(*cycles)

	agg0 := sys.AggregateStats()
	if *asJSON {
		out, err := json.Marshal(map[string]any{
			"network": spec.Name,
			"nic":     kind.String(),
			"params":  map[string]int{"O": params.O, "B": params.B, "D": params.D, "W": params.W},
			"traffic": *load,
			"cycles":  *cycles,
			"seed":    *seed,
			"stats":   agg0,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	c := net.Chars() // characteristics of an identical fabric
	fmt.Printf("network : %s (%s)\n", spec.Name, c)
	fmt.Printf("nic     : %s", kind)
	if kind == nifdy.KindNIFDY {
		fmt.Printf(" (O=%d B=%d D=%d W=%d)", params.O, params.B, params.D, params.W)
	}
	fmt.Println()
	fmt.Printf("traffic : %s, %d cycles, seed %d\n", *load, *cycles, *seed)
	agg := sys.AggregateStats()
	fmt.Printf("sent=%d injected=%d delivered=%d acksSent=%d bulkPkts=%d grants=%d rejects=%d retx=%d dups=%d\n",
		agg.Sent, agg.Injected, agg.Accepted, agg.AcksSent, agg.BulkPackets,
		agg.BulkGrants, agg.BulkRejects, agg.Retransmits, agg.Duplicates)
	fmt.Printf("throughput: %.2f packets/1000 cycles\n", 1000*float64(agg.Accepted)/float64(*cycles))
}

func netSpec(name string) (harness.NetSpec, bool) {
	switch name {
	case "mesh":
		return harness.Mesh2D(), true
	case "mesh3d":
		return harness.Mesh3D(), true
	case "torus":
		return harness.Torus2D(), true
	case "fattree":
		return harness.FullFatTree(), true
	case "sf":
		return harness.SFFatTree(), true
	case "cm5":
		return harness.CM5FatTree(), true
	case "butterfly":
		return harness.Butterfly(), true
	case "multibutterfly":
		return harness.Multibutterfly(), true
	}
	return harness.NetSpec{}, false
}

var _ = core.Config{} // keep explicit dependency for documentation
