// Command nifdy-dist runs one simulation split across worker processes.
//
// The launcher forks N copies of itself (each re-executed copy detects the
// worker sentinel in its argv and joins the cluster protocol instead of
// parsing flags), hands each a contiguous partition of the engine shards,
// and drives all of them through the same chunk schedule over a staged
// socket — or, with -shm, shared-memory — transport with conservative
// time-window synchronization. The printed state trace is byte-identical
// for any {shards x procs} split of the same spec, including 1x1; see
// DESIGN.md section 9.
//
// Usage:
//
//	nifdy-dist -net mesh2d -procs 4                  # 4 workers, 4 shards
//	nifdy-dist -net torus2d -shards 8 -procs 2       # 4 shards per worker
//	nifdy-dist -net fattree -kind plain -window 8    # wider sync window
//	nifdy-dist -procs 2 -shm=false                   # force the socket path
//
// Networks: mesh2d, torus2d, mesh3d, fattree, sffattree, cm5, butterfly,
// multibutterfly. Kinds: plain, buffers, nifdy.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"nifdy"
)

func main() {
	// A re-executed worker copy must join the cluster before flag parsing.
	if nifdy.DistWorkerMain() {
		return
	}
	var (
		net     = flag.String("net", "mesh2d", "fabric (mesh2d,torus2d,mesh3d,fattree,sffattree,cm5,butterfly,multibutterfly)")
		kind    = flag.String("kind", "nifdy", "NIC under test (plain,buffers,nifdy)")
		procs   = flag.Int("procs", 2, "worker processes to fork")
		shards  = flag.Int("shards", 0, "total engine shards, split evenly over the workers (0 = one per worker)")
		window  = flag.Int("window", 4, "conservative sync window in cycles (a model parameter: results depend on it, the process split does not)")
		cycles  = flag.Int64("cycles", 20_000, "simulated cycles to run")
		chunk   = flag.Int64("chunk", 1000, "cycles per trace line")
		seed    = flag.Uint64("seed", 1995, "workload seed")
		pattern = flag.String("pattern", "heavy", "traffic pattern (heavy,light)")
		pending = flag.Int64("pending", 0, "pending-packet sample interval in cycles (0 = off)")
		shm     = flag.Bool("shm", runtime.GOOS == "linux", "use the same-host shared-memory fast path")
		quiet   = flag.Bool("quiet", false, "suppress the trace; print only the summary line")
	)
	flag.Parse()

	k := 0
	switch *kind {
	case "plain":
		k = int(nifdy.KindPlain)
	case "buffers":
		k = int(nifdy.KindBuffersOnly)
	case "nifdy":
		k = int(nifdy.KindNIFDY)
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q (plain, buffers, nifdy)\n", *kind)
		os.Exit(2)
	}
	if *procs < 1 {
		fmt.Fprintln(os.Stderr, "-procs must be at least 1")
		os.Exit(2)
	}
	n := *shards
	if n == 0 {
		n = *procs
	}

	spec := nifdy.DistSpec{
		Net: *net, Kind: k, Shards: n, Window: *window, Seed: *seed,
		PendingInterval: *pending, Pattern: *pattern, Phases: 1 << 20,
	}
	start := time.Now()
	trace, err := nifdy.DistTrace(spec, *procs, *cycles, *chunk, *shm)
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nifdy-dist: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Print(trace)
	}
	fmt.Printf("[%s/%s: %d shards over %d processes, W=%d, %d cycles in %v]\n",
		*net, *kind, n, *procs, *window, *cycles, wall.Round(time.Millisecond))
}
