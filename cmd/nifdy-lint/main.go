// Command nifdy-lint runs the repository's domain-specific static analyzer
// suite: the determinism rules (mapiter, wallclock), the zero-allocation
// rule (hotalloc), the two-phase discipline rule (latchphase), and the
// packet-pool ownership rule (poolsafe). See internal/lint and DESIGN.md §7.
//
// Usage:
//
//	nifdy-lint                  # analyze the whole module
//	nifdy-lint -list            # show the rule catalog
//	nifdy-lint -rules mapiter nifdy/internal/core
//
// Exit codes: 0 clean, 1 findings, 2 load/type-check error.
package main

import (
	"os"

	"nifdy/internal/lint"
)

func main() {
	os.Exit(lint.CLI(os.Args[1:], os.Stdout, os.Stderr))
}
