// Package nifdy is a laptop-scale reproduction of "NIFDY: A Low Overhead,
// High Throughput Network Interface" (Callahan & Goldstein, ISCA 1995).
//
// NIFDY is a network interface that performs admission control at the edges
// of a multiprocessor interconnect: by default one unacknowledged packet per
// destination (bounded globally by an outstanding-packet table), with
// receiver-granted bulk dialogs — sliding windows with hardware reorder
// buffers — for block transfers. The result is end-to-end flow control,
// congestion avoidance, and in-order delivery over fabrics that reorder.
//
// The package wires together the full evaluation stack the paper used:
//
//   - a cycle-synchronous network simulator (internal/sim, internal/router)
//   - mesh/torus, fat-tree (full, store-and-forward, CM-5), and
//     butterfly/multibutterfly fabrics (internal/topo/...)
//   - the NIFDY unit and its baselines (internal/core, internal/nic)
//   - processor models with CM-5 software overheads (internal/node)
//   - the paper's synthetic and application workloads (internal/traffic,
//     internal/apps/...)
//   - one experiment entry point per table and figure (internal/harness)
//
// # Quick start
//
//	sys := nifdy.New(nifdy.Options{
//	    Net:  nifdy.Mesh2D(),
//	    Kind: nifdy.KindNIFDY,
//	    Program: func(n int) nifdy.Program { ... },
//	})
//	defer sys.Close()
//	sys.Eng.Run(1_000_000)
//
// See examples/ for runnable programs and cmd/nifdy-bench for the
// table/figure reproductions.
package nifdy

import (
	"nifdy/internal/check"
	"nifdy/internal/core"
	"nifdy/internal/harness"
	"nifdy/internal/nic"
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/sim"
	"nifdy/internal/stats"
	"nifdy/internal/topo"
	"nifdy/internal/traffic"
)

// Core simulation types.
type (
	// Cycle is a simulated time in processor cycles.
	Cycle = sim.Cycle
	// Engine is the cycle-synchronous simulation engine.
	Engine = sim.Engine
	// Packet is a simulated network packet.
	Packet = packet.Packet
	// Class selects the request or reply logical network.
	Class = packet.Class
	// Network is a simulated fabric.
	Network = topo.Network
	// NetworkChars summarizes a fabric (Table 3 characteristics).
	NetworkChars = topo.Characteristics
	// IfaceOptions are the per-node interface knobs (buffering, loss).
	IfaceOptions = topo.IfaceOptions
	// NIC is a network interface controller.
	NIC = nic.NIC
	// NICStats are per-NIC protocol counters.
	NICStats = nic.Stats
	// Proc is a simulated processor running a Program.
	Proc = node.Proc
	// Program is per-node application code using Proc's blocking API.
	Program = node.Program
	// Costs models software send/receive overheads.
	Costs = node.Costs
	// Barrier is an idealized global barrier for Programs.
	Barrier = node.Barrier
	// Config holds the NIFDY unit parameters (O, B, D, W and extensions).
	Config = core.Config
	// Unit is the NIFDY network interface unit itself.
	Unit = core.NIFDY
	// Table is an aligned text result table.
	Table = stats.Table
	// NetSpec names a network configuration with tuned parameters.
	NetSpec = harness.NetSpec
	// Options configures System assembly.
	Options = harness.BuildOpts
	// System is a fully wired simulation.
	System = harness.Sim
	// Kind selects the NIC under test.
	Kind = harness.NICKind
)

// Packet classes and NIC kinds.
const (
	// Request is the logical network for application requests.
	Request = packet.Request
	// Reply is the logical network for replies and NIFDY acks.
	Reply = packet.Reply
	// NoDialog marks a packet outside any bulk dialog.
	NoDialog = packet.NoDialog

	// KindPlain is the bare NIC baseline.
	KindPlain = harness.Plain
	// KindBuffersOnly has NIFDY's buffering without its protocol.
	KindBuffersOnly = harness.BuffersOnly
	// KindNIFDY is the full NIFDY unit.
	KindNIFDY = harness.NIFDY
	// KindPFC is the plain NIC over a PFC-paused (lossless) fabric.
	KindPFC = harness.PFC
	// KindDCQCN is the DCQCN rate-controlled NIC over an ECN-marking fabric.
	KindDCQCN = harness.DCQCN
)

// New assembles a simulation: fabric, one NIC per node, optional processor
// programs, and statistics hooks. Close it when done to stop program
// goroutines.
func New(o Options) *System { return harness.Build(o) }

// CM5Costs returns the paper's software-overhead calibration (Table 2).
func CM5Costs() Costs { return node.CM5Costs() }

// NewBarrier returns a global barrier for n participants.
func NewBarrier(n int) *Barrier { return node.NewBarrier(n) }

// Standard 64-node networks (Figures 2/3, Table 3).
var (
	// FullFatTree is the full 4-ary fat tree with cut-through routing.
	FullFatTree = harness.FullFatTree
	// SFFatTree is the store-and-forward fat tree.
	SFFatTree = harness.SFFatTree
	// CM5FatTree is the CM-5-like reduced fat tree.
	CM5FatTree = harness.CM5FatTree
	// Mesh2D is the 8x8 wormhole mesh.
	Mesh2D = harness.Mesh2D
	// Torus2D is the 8x8 torus.
	Torus2D = harness.Torus2D
	// Mesh3D is the 4x4x4 mesh.
	Mesh3D = harness.Mesh3D
	// Butterfly is the radix-4 butterfly.
	Butterfly = harness.Butterfly
	// Multibutterfly is the dilation-2 multibutterfly.
	Multibutterfly = harness.Multibutterfly
	// StandardNetworks returns all of the above.
	StandardNetworks = harness.StandardNetworks
)

// Flow-level fidelity (internal/flow): bandwidth-sharing twins of the flit
// fabrics and the analytic constructors for 100k+ node scaling runs. See
// DESIGN.md §8.
var (
	// FlowTwin is spec's flow-level twin, sized from the flit fabric's
	// measured characteristics.
	FlowTwin = harness.FlowTwin
	// HybridTwin embeds spec's flit fabric as the cycle-accurate hot region
	// of a flow-level fabric spanning totalNodes.
	HybridTwin = harness.HybridTwin
	// FlowMeshSized is an analytically sized x-by-y flow-level mesh.
	FlowMeshSized = harness.FlowMeshSized
	// FlowFatTreeSized is an analytically sized 4^levels flow-level fat tree.
	FlowFatTreeSized = harness.FlowFatTreeSized
	// ScaleBench measures a fabric's simulated node-cycles per wall second
	// under saturation traffic.
	ScaleBench = harness.ScaleBench
)

// Experiment entry points — one per paper table/figure (see DESIGN.md and
// EXPERIMENTS.md). Each returns formatted tables; options structs allow
// reduced-scale runs.
var (
	// Table2 prints the processor calibration constants.
	Table2 = harness.Table2
	// Table3 prints network characteristics and tuned NIFDY parameters.
	Table3 = harness.Table3
	// Table3Sweep searches (O,B,W) for one network.
	Table3Sweep = harness.Table3Sweep
	// Figure2 runs the heavy synthetic-traffic comparison.
	Figure2 = harness.Figure2
	// Figure3 runs the light synthetic-traffic comparison.
	Figure3 = harness.Figure3
	// Figure4 runs the O/B scalability study.
	Figure4 = harness.Figure4
	// Figure5 renders the C-shift congestion heatmaps.
	Figure5 = harness.Figure5
	// Figure6 runs the C-shift throughput comparison.
	Figure6 = harness.Figure6
	// EM3D runs the EM3D cycles-per-iteration comparison (Figures 7/8).
	EM3D = harness.EM3D
	// Figure9 runs the radix-sort scan comparison.
	Figure9 = harness.Figure9
	// RadixCoalesce runs the radix-sort coalesce phase.
	RadixCoalesce = harness.RadixCoalesce
	// ExtLossy exercises the §6.2 retransmission extension.
	ExtLossy = harness.ExtLossy
	// ExtAckStrategies compares ack-timing variants.
	ExtAckStrategies = harness.ExtAckStrategies
	// ExtPiggyback measures §6.1 piggybacked acks.
	ExtPiggyback = harness.ExtPiggyback
	// ModelCheck compares the §2.4 analytical model with the simulator.
	ModelCheck = harness.ModelCheck
	// ExtAdaptiveMesh studies adaptive mesh routing with NIFDY (§6.3).
	ExtAdaptiveMesh = harness.ExtAdaptiveMesh
	// AdaptiveMesh2D is the west-first adaptive 8x8 mesh.
	AdaptiveMesh2D = harness.AdaptiveMesh2D
	// ExtHotspot studies hot-spot traffic (§1.1).
	ExtHotspot = harness.ExtHotspot
	// ExtFaults studies dead top-level routers on the fat tree (§1.1).
	ExtFaults = harness.ExtFaults
	// FaultyFatTree builds a fat tree with dead top-level routers.
	FaultyFatTree = harness.FaultyFatTree
	// FabricMesh builds the modern-fabric testbed mesh (DESIGN.md §11).
	FabricMesh = harness.FabricMesh
	// FabricExperiment runs the modern-fabric scenario pack: NIFDY vs
	// PFC/DCQCN/plain under incast, victim, and congestion-spreading
	// traffic on lossless and lossy wires.
	FabricExperiment = harness.FabricExperiment
	// FabricCell runs one (scenario, kind, wire) cell of the pack.
	FabricCell = harness.FabricCell
	// FabricTable renders FabricExperiment points.
	FabricTable = harness.FabricTable
)

// Experiment option types.
type (
	// SynthOpts parameterizes Figure2/Figure3.
	SynthOpts = harness.SynthOpts
	// Figure4Opts parameterizes Figure4.
	Figure4Opts = harness.Figure4Opts
	// CShiftOpts parameterizes Figure5/Figure6.
	CShiftOpts = harness.CShiftOpts
	// EM3DOpts parameterizes EM3D.
	EM3DOpts = harness.EM3DOpts
	// RadixOpts parameterizes Figure9/RadixCoalesce.
	RadixOpts = harness.RadixOpts
	// LossyOpts parameterizes ExtLossy.
	LossyOpts = harness.LossyOpts
	// AckOpts parameterizes the ack ablations.
	AckOpts = harness.AckOpts
	// SweepOpts parameterizes Table3Sweep.
	SweepOpts = harness.SweepOpts
	// ScaleOpts parameterizes ScaleBench.
	ScaleOpts = harness.ScaleOpts
	// ScaleResult is one ScaleBench measurement.
	ScaleResult = harness.ScaleResult
	// ModelCheckOpts parameterizes ModelCheck.
	ModelCheckOpts = harness.ModelCheckOpts
	// FabricOpts parameterizes FabricExperiment.
	FabricOpts = harness.FabricOpts
	// FabricPoint is one measured cell of FabricExperiment.
	FabricPoint = harness.FabricPoint
	// FabricScenario is a modern-fabric stress pattern.
	FabricScenario = traffic.FabricScenario
)

// Modern-fabric traffic scenarios (DESIGN.md §11): a seeded fan-in on the
// center of a width x height mesh, plus the scenario's differentiating
// side traffic.
var (
	// IncastScenario is the fan-in amid uniform background load.
	IncastScenario = traffic.IncastScenario
	// VictimScenario adds two victim flows running the hot column's length.
	VictimScenario = traffic.VictimScenario
	// SpreadScenario adds row-crossing flows on the feeder rows.
	SpreadScenario = traffic.SpreadScenario
)

// Correctness tooling (internal/check): runtime invariant monitors and the
// cross-configuration fuzz sweep. Arm the monitors on any System by setting
// Options.Check; see DESIGN.md §6.
type (
	// CheckOptions arms the invariant monitors on a System (Options.Check).
	CheckOptions = check.Options
	// CheckViolation is one invariant violation report.
	CheckViolation = check.Violation
	// Checker is the installed invariant-monitor subsystem (System.Checker).
	Checker = check.Checker
	// FuzzOpts parameterizes FuzzSweep.
	FuzzOpts = harness.FuzzOpts
	// FuzzResult summarizes a FuzzSweep run.
	FuzzResult = harness.FuzzResult
)

// FuzzSweep runs randomized cross-configuration simulations with every
// invariant monitor armed, diffing sharded runs against the serial engine.
var FuzzSweep = harness.FuzzSweep

// Distributed execution (internal/dist + harness): multi-process simulation
// over a staged socket/shared-memory transport with conservative time-window
// synchronization. A launcher re-executes its own binary as workers; any main
// embedding these entry points must call DistWorkerMain first (before flag
// parsing) and exit when it reports true. See DESIGN.md §9.
type (
	// DistSpec describes a simulation to the distributed workers.
	DistSpec = harness.DistSpec
)

var (
	// DistWorkerMain runs the worker protocol when this process is a
	// re-exec'd distributed worker; call first in main, exit on true.
	DistWorkerMain = harness.DistWorkerMain
	// DistTrace runs a spec over N worker processes through the golden-trace
	// schedule and returns the assembled state trace (bit-comparable to a
	// single-process run of the same spec).
	DistTrace = harness.DistTrace
	// DistRunToDone runs a spec over N worker processes to completion with
	// invariant monitors armed, returning merged stats.
	DistRunToDone = harness.DistRunToDone
)
