GO ?= go

.PHONY: build test vet lint lint-budget lintdiff race check check-deep bench-smoke bench bench-heavy benchdiff bench-parallel bench-dist bench-scale bench-locality bench-fabric profdiff baseline clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs nifdy-lint, the domain-specific analyzer suite (DESIGN.md §7):
# determinism (mapiter, wallclock), zero-allocation (hotalloc), two-phase
# discipline (latchphase), pool ownership (poolsafe), arena discipline
# (arena, arenamirror), codec completeness (codecsync), enum exhaustiveness
# (kindswitch), and shard safety (shardsafe) over the whole module,
# including the stale-suppression audit.
lint:
	$(GO) run ./cmd/nifdy-lint

# lint-budget is the lint wall-clock gate: the whole-module run (load +
# all analyses) must finish inside BUDGET, so a rule that goes quadratic
# fails CI loudly instead of quietly eating the tier-1 gate.
# Override with: make lint-budget BUDGET=30s
lint-budget:
	$(GO) run ./cmd/nifdy-lint -budget $(or $(BUDGET),120s)

# lintdiff fails if the diff against BASE (default origin/main, falling back
# to HEAD~1) introduces //lint:allow suppressions without a reason.
lintdiff:
	./scripts/lintdiff.sh $(BASE)

# check is the tier-1 gate (see ROADMAP.md): everything must pass before
# a PR lands.
check: build vet lint test

# check-deep runs the deep correctness sweep: the invariant-monitor
# acceptance matrix and mutation suite, a scaled-up randomized
# cross-configuration fuzz sweep, and native fuzzing of the queue
# primitives. The time budget caps the add-on stages:
# make check-deep MINUTES=15
check-deep:
	./scripts/checkdeep.sh $(MINUTES)

# race exercises the concurrency-heavy packages — the engine's worker
# pool and quiescence protocol, the harness's concurrent simulations,
# and the goroutine-per-node processors — under the race detector.
race:
	$(GO) test -race -count=1 -timeout 3600s ./internal/sim/... ./internal/harness/... ./internal/node/... ./internal/core/... ./internal/dist/...

# bench-smoke runs one iteration of the engine microbenchmarks and the
# cheap end-to-end cycle benchmark: enough to catch gross regressions
# without the multi-minute figure benchmarks.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkEngineStep|BenchmarkStep|BenchmarkSimCycleMesh' -benchtime 1x ./internal/sim/... .

# bench runs the full-figure wall-clock benchmarks (several minutes).
bench:
	$(GO) test -run xxx -bench 'BenchmarkFigure2Heavy|BenchmarkFigure3Light' -benchtime 1x -timeout 1800s .

# bench-heavy exercises the saturated data path: the Figure 2 heavy-traffic
# experiment plus the per-cycle saturation benchmarks with allocation
# reporting — the B/op columns are the zero-allocation contract.
bench-heavy:
	$(GO) test -run xxx -bench 'BenchmarkFigure2Heavy|BenchmarkSaturatedCycle' -benchmem -benchtime 1x -timeout 1800s .

# benchdiff compares two committed BENCH_<date>.json baselines, failing on
# a >10% ns/op regression: make benchdiff OLD=BENCH_a.json NEW=BENCH_b.json
benchdiff:
	./scripts/benchdiff.sh $(OLD) $(NEW)

# bench-parallel measures the intra-simulation parallel speedup: Figure 2
# heavy traffic at shards=1 vs shards=N (default min(GOMAXPROCS, nodes)),
# both at sync window W (default 4, the once-per-window barrier regime),
# failing if the multi-shard run is slower. Skips on single-core hosts.
# Override with: make bench-parallel SHARDS=4 WINDOW=8
bench-parallel:
	./scripts/benchparallel.sh $(or $(SHARDS),0) $(or $(WINDOW),4)

# bench-dist gates the multi-process engine: 1/2(/4)-worker runs of the
# same workload must produce byte-identical state traces (asserted on any
# host), and the 2-process run must not be slower than 1-process when the
# host has at least 2 CPUs (skipped below that).
bench-dist:
	./scripts/benchdist.sh

# bench-scale smoke-tests the flow engine at 100k+ nodes: two identical
# scale runs must deliver bit-identical packet counts, and the flow fabric
# must clear a simulated node-cycles-per-second floor (default 10M).
# Override the floor with: make bench-scale FLOOR=50000000
bench-scale:
	./scripts/benchscale.sh $(FLOOR)

# bench-locality gates the SoA arena + active-set scheduling work
# (DESIGN.md §10): BenchmarkIdleFraction's step cost must be sub-linear in
# total component count, and BenchmarkFigure2Heavy must beat the committed
# pre-SoA baseline (BENCH_2026-08-06_zeroalloc.json) by at least 20%,
# via benchdiff.sh with an inverted (negative) regression threshold.
bench-locality:
	./scripts/benchlocality.sh

# bench-fabric gates the modern-fabric scenario pack (DESIGN.md §11): the
# NIFDY vs PFC/DCQCN incast matrix must be bit-identical at 1 vs 2 engine
# shards, and NIFDY must beat PFC's delivered throughput under lossless
# incast by at least RATIO_MIN (default 1.05), with a MIN_PKTS noise floor.
# Override with: make bench-fabric RATIO_MIN=1.10
bench-fabric:
	RATIO_MIN=$(or $(RATIO_MIN),1.05) MIN_PKTS=$(or $(MIN_PKTS),1000) ./scripts/benchfabric.sh

# profdiff prints the top-N flat-cost changes between two CPU profiles of
# the same workload: make profdiff OLD=before.prof NEW=after.prof
profdiff:
	./scripts/profdiff.sh $(OLD) $(NEW) $(or $(N),15)

# baseline regenerates the committed BENCH_<date>.json perf/metrics
# baseline from the reduced-scale experiment suite.
baseline:
	$(GO) run ./cmd/nifdy-bench -json BENCH_$$(date -u +%F).json > /dev/null

clean:
	rm -f *.test *.prof *.out
