module nifdy

go 1.22
