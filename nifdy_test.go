package nifdy_test

import (
	"strings"
	"testing"

	"nifdy"
)

func TestPublicQuickstart(t *testing.T) {
	// The README quick-start flow: send one packet node 0 -> 63 over the
	// full fat tree with NIFDY NICs, using the public API only.
	var got *nifdy.Packet
	sys := nifdy.New(nifdy.Options{
		Net:  nifdy.FullFatTree(),
		Kind: nifdy.KindNIFDY,
		Program: func(n int) nifdy.Program {
			switch n {
			case 0:
				return func(p *nifdy.Proc) {
					p.Send(&nifdy.Packet{ID: 1, Src: 0, Dst: 63, Words: 8,
						Class: nifdy.Request, Dialog: nifdy.NoDialog})
				}
			case 63:
				return func(p *nifdy.Proc) { got = p.Recv() }
			default:
				return func(p *nifdy.Proc) {}
			}
		},
	})
	defer sys.Close()
	ok, _ := sys.RunUntilDone(200_000)
	if !ok || got == nil || got.Src != 0 {
		t.Fatalf("quickstart failed: ok=%v got=%v", ok, got)
	}
}

func TestPublicNetworkList(t *testing.T) {
	specs := nifdy.StandardNetworks()
	if len(specs) != 8 {
		t.Fatalf("%d standard networks", len(specs))
	}
	for _, s := range specs {
		if s.Build(1, nifdy.IfaceOptions{}).Nodes() != 64 {
			t.Fatalf("%s: wrong size", s.Name)
		}
	}
}

func TestPublicChars(t *testing.T) {
	spec := nifdy.Mesh2D()
	net := spec.Build(1, nifdy.IfaceOptions{})
	c := net.Chars()
	if c.Nodes != 64 || !c.InOrder {
		t.Fatalf("chars %+v", c)
	}
}

func TestPublicTables(t *testing.T) {
	if !strings.Contains(nifdy.Table2().String(), "T_send") {
		t.Fatal("Table2 malformed")
	}
	if nifdy.Table3(1).NumRows() != 8 {
		t.Fatal("Table3 rows")
	}
}

func TestPublicCostsAndBarrier(t *testing.T) {
	if c := nifdy.CM5Costs(); c.Send != 40 {
		t.Fatalf("costs %+v", c)
	}
	if nifdy.NewBarrier(4) == nil {
		t.Fatal("barrier")
	}
}

func TestPublicBulkTransferInOrder(t *testing.T) {
	// Public-API version of the headline property: a 20-packet burst over
	// the reordering fat tree arrives in order through a bulk dialog.
	const n = 20
	var got []int
	sys := nifdy.New(nifdy.Options{
		Net:  nifdy.FullFatTree(),
		Kind: nifdy.KindNIFDY,
		Seed: 9,
		Program: func(nd int) nifdy.Program {
			switch nd {
			case 0:
				return func(p *nifdy.Proc) {
					for i := 0; i < n; i++ {
						p.Send(&nifdy.Packet{
							ID: uint64(i + 1), Src: 0, Dst: 63, Words: 8,
							Class: nifdy.Request, Dialog: nifdy.NoDialog,
							BulkReq: i < n-1,
						})
					}
				}
			case 63:
				return func(p *nifdy.Proc) {
					for i := 0; i < n; i++ {
						got = append(got, int(p.Recv().ID))
					}
				}
			default:
				return nil
			}
		},
	})
	defer sys.Close()
	if ok, _ := sys.RunUntilDone(1_000_000); !ok {
		t.Fatalf("transfer incomplete: %d/%d", len(got), n)
	}
	for i, id := range got {
		if id != i+1 {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	if sys.AggregateStats().BulkGrants == 0 {
		t.Fatal("no bulk dialog was granted")
	}
}

func TestPublicLossyNetwork(t *testing.T) {
	// Public-API lossy run: retransmission hides a 10% drop rate.
	var got int
	sys := nifdy.New(nifdy.Options{
		Net:    nifdy.Mesh2D(),
		Kind:   nifdy.KindNIFDY,
		Seed:   11,
		Drop:   0.1,
		Params: nifdy.Config{O: 4, B: 4, D: 1, W: 2, Retransmit: true, RetransmitTimeout: 1500},
		Program: func(nd int) nifdy.Program {
			switch nd {
			case 0:
				return func(p *nifdy.Proc) {
					for i := 0; i < 10; i++ {
						p.Send(&nifdy.Packet{ID: uint64(i + 1), Src: 0, Dst: 63,
							Words: 8, Class: nifdy.Request, Dialog: nifdy.NoDialog})
					}
				}
			case 63:
				return func(p *nifdy.Proc) {
					for got < 10 {
						p.Recv()
						got++
					}
				}
			default:
				return nil
			}
		},
	})
	defer sys.Close()
	if ok, _ := sys.RunUntilDone(5_000_000); !ok {
		t.Fatalf("lossy transfer incomplete: %d/10", got)
	}
}

func TestPublicAggregateStats(t *testing.T) {
	sys := nifdy.New(nifdy.Options{
		Net: nifdy.Butterfly(), Kind: nifdy.KindNIFDY, Seed: 5,
		Program: func(nd int) nifdy.Program {
			if nd != 0 {
				return nil
			}
			return func(p *nifdy.Proc) {
				p.Send(&nifdy.Packet{ID: 1, Src: 0, Dst: 7, Words: 8,
					Class: nifdy.Request, Dialog: nifdy.NoDialog})
			}
		},
	})
	defer sys.Close()
	sys.RunUntilDone(100_000)
	sys.Eng.Run(5_000) // let the unclaimed delivery settle
	agg := sys.AggregateStats()
	if agg.Sent != 1 || agg.Injected != 1 {
		t.Fatalf("stats %+v", agg)
	}
}
