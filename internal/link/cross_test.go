package link

import (
	"testing"

	"nifdy/internal/sim"
)

// TestWireCrossShardStagesUntilFlush pins the staged-send protocol: on a
// cross-shard wire, SendAt must be invisible to the consumer (Pending,
// Ready, NextAt, the observer) until Flush merges the staged batch, and the
// observer must wake at exactly the first staged arrival.
func TestWireCrossShardStagesUntilFlush(t *testing.T) {
	var fl sim.Flusher
	var act sim.Activity
	act.Sleep(sim.Never)
	w := NewWire[int](1)
	w.Observe(&act)
	w.CrossShard(&fl)
	w.SendAt(5, 70)
	w.SendAt(6, 80)
	if w.Pending() != 0 || w.Ready(10) {
		t.Fatalf("staged sends visible before merge: pending=%d", w.Pending())
	}
	if !act.Asleep(1 << 30) {
		t.Fatal("observer woken before the merge")
	}
	w.Flush() // the writer shard's flush phase merges the staged batch
	if act.Asleep(5) || !act.Asleep(4) {
		t.Fatal("observer must wake at exactly the first staged arrival (5)")
	}
	if got := w.NextAt(); got != 5 {
		t.Fatalf("NextAt=%d after merge; want 5", got)
	}
	if v, ok := w.Recv(5); !ok || v != 70 {
		t.Fatalf("Recv(5)=%d,%t; want 70,true", v, ok)
	}
	if _, ok := w.Recv(5); ok {
		t.Fatal("cycle-6 value delivered a cycle early")
	}
	if v, ok := w.Recv(6); !ok || v != 80 {
		t.Fatalf("Recv(6)=%d,%t; want 80,true", v, ok)
	}
	// The staging path re-arms after a merge.
	w.SendAt(9, 90)
	if w.Pending() != 0 {
		t.Fatal("post-merge send visible before the next merge")
	}
	w.Flush()
	if v, ok := w.Recv(9); !ok || v != 90 {
		t.Fatalf("Recv(9)=%d,%t; want 90,true", v, ok)
	}
}

// TestWireCrossShardMatchesSerial runs the same producer/consumer pair on a
// serial engine and split across two shards of a parallel engine with the
// wire marked cross-shard; deliveries must be identical.
func TestWireCrossShardMatchesSerial(t *testing.T) {
	run := func(shards int) []int {
		e := sim.NewParallel(shards)
		defer e.Close()
		w := NewWire[int](1)
		prod := 0
		if shards > 1 {
			prod = 1
			w.CrossShard(e.Flusher(prod))
		}
		e.RegisterSharded(prod, sim.TickFunc(func(now sim.Cycle) {
			if now < 10 {
				w.Send(now, int(now)*3)
			}
		}))
		var got []int
		e.RegisterSharded(0, sim.TickFunc(func(now sim.Cycle) {
			for {
				v, ok := w.Recv(now)
				if !ok {
					break
				}
				got = append(got, v)
			}
		}))
		e.Run(15)
		return got
	}
	serial := run(1)
	cross := run(2)
	if len(serial) != 10 {
		t.Fatalf("serial run delivered %d values; want 10", len(serial))
	}
	for i, v := range serial {
		if i >= len(cross) || cross[i] != v {
			t.Fatalf("cross-shard delivery diverges:\nserial: %v\ncross:  %v", serial, cross)
		}
	}
}
