// Package link models the physical channels of the simulated networks:
// fixed-latency wires and byte-serial flit links.
//
// Link widths follow the paper (§3): most networks use 1-byte-wide links, so
// a one-word (32-bit) flit occupies a link for 4 cycles; the CM-5 fat-tree
// variant uses 4-bit links time-multiplexed between the request and reply
// networks, giving each logical network one flit per 16 cycles.
package link

import "nifdy/internal/sim"

// Wire is a fixed-latency, in-order event pipe. Events sent at cycle t are
// receivable at cycle t+latency (minimum 1, so that a Tick-phase send is
// never visible to a same-cycle Tick elsewhere).
//
// A wire may be observed by its consumer's sim.Activity: every send then
// re-arms the consumer for the event's arrival cycle, which is the wake edge
// that makes the engine's quiescence skipping safe — a sleeping consumer is
// always woken no later than the cycle its input changes.
//
// A wire whose single writer and consumer live in different engine shards
// must be marked with CrossShard: sends then accumulate in a writer-owned
// staging buffer and are merged into the consumer-visible event list (and
// the observer woken) at the flush barrier, when no shard is ticking. Every
// send arrives at least one cycle after it is issued, so a same-cycle merge
// is never late and multi-shard execution stays bit-identical to serial.
type Wire[T any] struct {
	latency sim.Cycle
	events  []timed[T]
	head    int
	// next caches events[head].at (sim.Never when empty) so the hot
	// Ready/NextAt polls are a single field compare instead of a bounds
	// check plus a load through the slice.
	next sim.Cycle
	obs  *sim.Activity

	// Cross-shard staging (nil/unused for same-shard wires). staged is
	// written only by the wire's single writer during its shard's tick
	// phase; Flush (run by crossFl, the writer's shard flusher) merges it
	// into events during the flush phase, when the consumer is quiescent.
	// crossID is the wire's dense ID in crossFl's latch table, so the hot
	// marking path appends an int32 instead of an interface value.
	staged      []timed[T]
	crossFl     *sim.Flusher
	crossID     int32
	stagedDirty bool

	// remote, when set, makes this a process-egress wire: the consumer lives
	// in another worker process, so Flush ships the staged batch to the
	// transport instead of merging it locally (the local event list stays
	// empty; the local consumer copy never ticks).
	remote Sink[T]
}

// Sink receives the events of a process-egress wire at the window-boundary
// drain, in staged (arrival-monotonic) order — the transport serializes them
// into the destination process's frame, where the peer replays them with
// InjectAt on its copy of the same wire.
type Sink[T any] interface {
	Ship(at sim.Cycle, v T)
}

type timed[T any] struct {
	at sim.Cycle
	v  T
}

// NewWire returns a Wire with the given latency in cycles (values below 1
// are raised to 1).
func NewWire[T any](latency int) *Wire[T] {
	if latency < 1 {
		latency = 1
	}
	return &Wire[T]{latency: sim.Cycle(latency), next: sim.Never}
}

// Latency reports the wire delay in cycles.
func (w *Wire[T]) Latency() int { return int(w.latency) }

// Observe registers the consumer's activity: every subsequent send wakes it
// at the event's arrival cycle. The consumer must live in the same engine
// shard as the wire's writer unless the wire is marked CrossShard.
func (w *Wire[T]) Observe(a *sim.Activity) { w.obs = a }

// CrossShard marks the wire as a cross-shard edge. f must be the writer's
// shard Flusher: sends stage locally and the staged batch is merged into the
// consumer-visible event list during the writer's flush phase, after the
// tick barrier. The consumer's Activity (if observed) is woken at merge
// time — Activity wake-lowering is atomic, so waking from another shard's
// flush is safe.
func (w *Wire[T]) CrossShard(f *sim.Flusher) {
	w.crossFl = f
	w.crossID = f.BindID(w)
}

// SetRemote marks the wire process-egress: its consumer is owned by another
// worker process and staged sends are shipped to sink at the boundary drain
// (see Sink). The wire must already be marked CrossShard.
func (w *Wire[T]) SetRemote(sink Sink[T]) { w.remote = sink }

// rehome moves the wire's pending events onto buf (an arena carve with spare
// capacity) and resets the ring origin. The cached next-arrival time is
// unchanged: event contents and order are preserved. Only EventArena.Bind
// calls this, while the wire is quiescent.
func (w *Wire[T]) rehome(buf []timed[T]) {
	w.events = append(buf, w.events[w.head:]...)
	w.head = 0
}

// InjectAt appends a remote event to the consumer-visible list and wakes the
// observer — the receiving side of a process-ingress wire. Only the
// transport calls it, at the window boundary, when the consumer is
// quiescent; events must arrive in monotonic order per wire, which shipping
// each egress wire's staged batch in order guarantees.
func (w *Wire[T]) InjectAt(at sim.Cycle, v T) {
	if n := len(w.events); n > 0 && w.events[n-1].at > at {
		panic("link: out-of-order InjectAt")
	}
	w.events = append(w.events, timed[T]{at, v})
	if at < w.next {
		w.next = at
	}
	if w.obs != nil {
		w.obs.WakeAt(at)
	}
}

// NextAt reports the arrival cycle of the oldest unconsumed event, or
// sim.Never when the wire is empty — the time a quiescent consumer may
// sleep until.
func (w *Wire[T]) NextAt() sim.Cycle { return w.next }

// Send schedules v for arrival at now+latency.
func (w *Wire[T]) Send(now sim.Cycle, v T) {
	w.SendAt(now+w.latency, v)
}

// SendAt schedules v for arrival at cycle at (which must not precede already
// scheduled arrivals; callers in this repository always send monotonically).
//lint:allow(hotalloc) amortized event-list growth; Recv rewinds and compacts so steady-state sends reuse capacity
func (w *Wire[T]) SendAt(at sim.Cycle, v T) {
	if w.crossFl != nil {
		// Cross-shard: the consumer owns events/head/next during the tick
		// phase, so stage writer-side and merge in Flush. Monotonicity
		// against already-merged events is checked at merge time.
		if n := len(w.staged); n > 0 && w.staged[n-1].at > at {
			panic("link: out-of-order SendAt")
		}
		w.staged = append(w.staged, timed[T]{at, v})
		if !w.stagedDirty {
			w.stagedDirty = true
			w.crossFl.MarkID(w.crossID)
		}
		return
	}
	if n := len(w.events); n > 0 && w.events[n-1].at > at {
		panic("link: out-of-order SendAt")
	}
	w.events = append(w.events, timed[T]{at, v})
	if at < w.next {
		w.next = at
	}
	if w.obs != nil {
		w.obs.WakeAt(at)
	}
}

// Flush implements sim.Latch for cross-shard wires: it merges the staged
// sends into the event list and wakes the observer. It runs in the writer's
// flush phase, after the tick barrier, so the consumer (which touches events
// only while ticking) is guaranteed quiescent; the next tick phase sees the
// merged list via the engine's phase barrier.
//lint:allow(hotalloc) cross-shard staged merge; both slices reuse capacity after warm-up
func (w *Wire[T]) Flush() {
	w.stagedDirty = false
	if len(w.staged) == 0 {
		return
	}
	if w.remote != nil {
		// Process-egress: hand the batch to the transport; nothing merges
		// locally (the consumer lives in a peer process).
		for i, e := range w.staged {
			w.remote.Ship(e.at, e.v)
			w.staged[i] = timed[T]{}
		}
		w.staged = w.staged[:0]
		return
	}
	if n := len(w.events); n > 0 && w.events[n-1].at > w.staged[0].at {
		panic("link: out-of-order cross-shard merge")
	}
	first := w.staged[0].at
	w.events = append(w.events, w.staged...)
	for i := range w.staged {
		w.staged[i] = timed[T]{}
	}
	w.staged = w.staged[:0]
	if first < w.next {
		w.next = first
	}
	if w.obs != nil {
		w.obs.WakeAt(first)
	}
}

// Ready reports whether an event has arrived — the inlineable guard for hot
// drain loops (`for w.Ready(now) { w.Recv(now) }`), so the common nothing-
// arrived case costs a compare instead of a function call.
func (w *Wire[T]) Ready(now sim.Cycle) bool { return w.next <= now }

// Recv pops the oldest event whose arrival time has come. ok is false when
// nothing has arrived yet.
func (w *Wire[T]) Recv(now sim.Cycle) (v T, ok bool) {
	if w.head >= len(w.events) {
		if w.head > 0 {
			// Fully drained: rewind to the front of the backing array
			// (consumed slots are already zeroed) so future sends reuse it
			// instead of creeping toward a new high-water mark.
			w.events = w.events[:0]
			w.head = 0
		}
		return v, false
	}
	if w.events[w.head].at > now {
		// Compact the consumed prefix once it dominates the slice.
		if w.head > 64 && w.head*2 >= len(w.events) {
			n := copy(w.events, w.events[w.head:])
			for i := n; i < len(w.events); i++ {
				w.events[i] = timed[T]{}
			}
			w.events = w.events[:n]
			w.head = 0
		}
		return v, false
	}
	v = w.events[w.head].v
	w.events[w.head] = timed[T]{}
	w.head++
	if w.head == len(w.events) {
		// Drained by this pop: rewind (slots behind head are zeroed).
		w.events = w.events[:0]
		w.head = 0
		w.next = sim.Never
	} else {
		w.next = w.events[w.head].at
	}
	return v, true
}

// Pending reports events not yet received.
func (w *Wire[T]) Pending() int { return len(w.events) - w.head }

// ForEach calls f on every unconsumed event in arrival order, with its
// scheduled arrival cycle. It is an audit hook for the invariant monitors
// (flit/credit conservation must count in-flight events) and must only be
// called while the wire's writer and consumer are quiescent — e.g. from an
// engine step hook, when cross-shard staging is guaranteed merged.
func (w *Wire[T]) ForEach(f func(at sim.Cycle, v T)) {
	if len(w.staged) > 0 {
		panic("link: ForEach with unmerged cross-shard staging")
	}
	for _, e := range w.events[w.head:] {
		f(e.at, e.v)
	}
}

// EventArena is a flat per-shard backing store for Wire event lists: binding
// a shard's wires into one arena puts every latched event region the shard's
// components drain each cycle in a single contiguous allocation, so the hot
// Recv/SendAt paths walk dense memory instead of pointer-chased per-wire
// slices. Capacity is carved per wire at bind time; a wire that outgrows its
// carve (impossible under the credit protocol, which bounds in-flight events
// by the granted buffer depth) falls back to an ordinary heap append and
// simply abandons its arena slot.
type EventArena[T any] struct {
	buf  []timed[T]
	used int
}

// Grow reserves n more event slots; call once per wire before Bind, then
// Bind in the same order. (Sizing and binding are split so one allocation
// can back every wire of a shard.)
func (a *EventArena[T]) Grow(n int) { a.used += n }

// Alloc materializes the reserved capacity. Call after every Grow and before
// the first Bind.
func (a *EventArena[T]) Alloc() {
	a.buf = make([]timed[T], a.used)
	a.used = 0
}

// Bind rehomes w's event storage onto capacity slots carved from the arena,
// preserving any pending events. The wire must be quiescent (bind at build
// time, or between cycles from the stepping goroutine).
func (a *EventArena[T]) Bind(w *Wire[T], capacity int) {
	if a.used+capacity > len(a.buf) {
		panic("link: event arena overflow (Grow/Bind mismatch)")
	}
	buf := a.buf[a.used : a.used : a.used+capacity]
	a.used += capacity
	w.rehome(buf)
}

// Link is a byte-serial channel carrying one-word flits. A flit transmission
// occupies the link for CyclesPerFlit cycles; the flit becomes receivable
// when its last byte has crossed, CyclesPerFlit+latency-1 cycles after the
// send (minimum 1).
type Link[T any] struct {
	wire          *Wire[T]
	cyclesPerFlit sim.Cycle
	busyUntil     sim.Cycle
	sent          int64

	// fault, when set, is consulted on every Send: returning false drops the
	// flit in flight — the link still serializes it (busy time is spent, the
	// sender's books are charged) but it never arrives at the consumer. The
	// receiving side installs the handler and performs the compensating
	// accounting (credit return, loss counters) inside it, so conservation
	// invariants keep holding at every audit instant. The handler runs on the
	// writer's goroutine; installer and writer must share an engine shard.
	fault func(now sim.Cycle, v T) bool
}

// NewLink returns a Link with the given serialization time per flit and wire
// latency, both in cycles.
func NewLink[T any](cyclesPerFlit, latency int) *Link[T] {
	if cyclesPerFlit < 1 {
		cyclesPerFlit = 1
	}
	return &Link[T]{wire: NewWire[T](latency), cyclesPerFlit: sim.Cycle(cyclesPerFlit)}
}

// CyclesPerFlit reports the serialization time of one flit.
func (l *Link[T]) CyclesPerFlit() int { return int(l.cyclesPerFlit) }

// Latency reports the underlying wire delay in cycles. A flit sent at t
// fully arrives at t+CyclesPerFlit+Latency-1 (minimum t+1); the invariant
// monitors use this to bound a flit's time of transmission from its arrival.
func (l *Link[T]) Latency() int { return l.wire.Latency() }

// SetFault installs (or, with nil, removes) the lossy-link fault hook (see
// the field comment). Faults are decided at transmission time by the single
// writer, so drop decisions are deterministic for any shard count.
func (l *Link[T]) SetFault(f func(now sim.Cycle, v T) bool) { l.fault = f }

// Observe registers the consumer's activity with the underlying wire (see
// Wire.Observe).
func (l *Link[T]) Observe(a *sim.Activity) { l.wire.Observe(a) }

// CrossShard marks the underlying wire as a cross-shard edge (see
// Wire.CrossShard). f must be the sending side's shard Flusher.
func (l *Link[T]) CrossShard(f *sim.Flusher) { l.wire.CrossShard(f) }

// BindEvents rehomes the underlying wire's event storage onto arena slots
// (see EventArena.Bind).
func (l *Link[T]) BindEvents(a *EventArena[T], capacity int) { a.Bind(l.wire, capacity) }

// SetRemote marks the underlying wire process-egress (see Wire.SetRemote).
func (l *Link[T]) SetRemote(sink Sink[T]) { l.wire.SetRemote(sink) }

// InjectAt replays a remote event on the underlying wire (see Wire.InjectAt).
func (l *Link[T]) InjectAt(at sim.Cycle, v T) { l.wire.InjectAt(at, v) }

// NextAt reports the arrival cycle of the oldest in-flight flit, or
// sim.Never when none is in flight.
func (l *Link[T]) NextAt() sim.Cycle { return l.wire.NextAt() }

// CanSend reports whether the link is idle this cycle.
func (l *Link[T]) CanSend(now sim.Cycle) bool { return now >= l.busyUntil }

// FreeAt reports the first cycle at which CanSend is true again — the time a
// sender blocked only on link occupancy may sleep until.
func (l *Link[T]) FreeAt() sim.Cycle { return l.busyUntil }

// Send transmits one flit; the link stays busy for CyclesPerFlit cycles.
// Callers must check CanSend first.
func (l *Link[T]) Send(now sim.Cycle, f T) {
	if !l.CanSend(now) {
		panic("link: Send while busy")
	}
	l.busyUntil = now + l.cyclesPerFlit
	l.sent++
	if l.fault != nil && !l.fault(now, f) {
		return // dropped in flight: serialized but never arrives
	}
	at := now + l.cyclesPerFlit + l.wire.latency - 1
	if at <= now {
		at = now + 1
	}
	l.wire.SendAt(at, f)
}

// Ready reports whether a flit has fully arrived (see Wire.Ready).
func (l *Link[T]) Ready(now sim.Cycle) bool { return l.wire.Ready(now) }

// Recv pops the oldest flit that has fully arrived.
func (l *Link[T]) Recv(now sim.Cycle) (T, bool) { return l.wire.Recv(now) }

// Pending reports flits in flight.
func (l *Link[T]) Pending() int { return l.wire.Pending() }

// ForEach calls f on every in-flight flit in arrival order (see Wire.ForEach).
func (l *Link[T]) ForEach(f func(at sim.Cycle, v T)) { l.wire.ForEach(f) }

// Sent reports the total number of flits ever sent (utilization stats).
func (l *Link[T]) Sent() int64 { return l.sent }
