package link

import (
	"testing"
	"testing/quick"
)

func TestWireDelaysByLatency(t *testing.T) {
	w := NewWire[int](3)
	w.Send(10, 42)
	for now := int64(10); now < 13; now++ {
		if _, ok := w.Recv(now); ok {
			t.Fatalf("event visible at cycle %d (latency 3, sent at 10)", now)
		}
	}
	v, ok := w.Recv(13)
	if !ok || v != 42 {
		t.Fatalf("Recv(13) = %d,%v", v, ok)
	}
}

func TestWireMinimumLatencyOne(t *testing.T) {
	w := NewWire[int](0)
	if w.Latency() != 1 {
		t.Fatalf("latency = %d", w.Latency())
	}
	w.Send(5, 1)
	if _, ok := w.Recv(5); ok {
		t.Fatal("zero-latency delivery would break tick-order independence")
	}
	if _, ok := w.Recv(6); !ok {
		t.Fatal("event not delivered at +1")
	}
}

func TestWireFIFO(t *testing.T) {
	w := NewWire[int](1)
	for i := 0; i < 10; i++ {
		w.Send(int64(i), i)
	}
	for i := 0; i < 10; i++ {
		v, ok := w.Recv(100)
		if !ok || v != i {
			t.Fatalf("event %d: got %d,%v", i, v, ok)
		}
	}
	if w.Pending() != 0 {
		t.Fatalf("Pending = %d", w.Pending())
	}
}

func TestWireOutOfOrderSendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order SendAt did not panic")
		}
	}()
	w := NewWire[int](1)
	w.SendAt(10, 1)
	w.SendAt(9, 2)
}

func TestWireCompaction(t *testing.T) {
	w := NewWire[int](1)
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			w.Send(int64(round*20+i), i)
		}
		for i := 0; i < 10; i++ {
			if _, ok := w.Recv(int64(round*20 + 19)); !ok {
				t.Fatal("lost event during compaction")
			}
		}
		// Poll empty to trigger the compaction branch.
		w.Recv(int64(round*20 + 19))
	}
	if w.Pending() != 0 {
		t.Fatalf("Pending = %d", w.Pending())
	}
}

func TestLinkSerialization(t *testing.T) {
	l := NewLink[int](4, 1)
	if !l.CanSend(0) {
		t.Fatal("fresh link not sendable")
	}
	l.Send(0, 1)
	for now := int64(1); now < 4; now++ {
		if l.CanSend(now) {
			t.Fatalf("link free at cycle %d during 4-cycle flit", now)
		}
	}
	if !l.CanSend(4) {
		t.Fatal("link still busy at cycle 4")
	}
	// Arrival at send + cyclesPerFlit + latency - 1 = 0 + 4 + 1 - 1 = 4.
	if _, ok := l.Recv(3); ok {
		t.Fatal("flit arrived too early")
	}
	v, ok := l.Recv(4)
	if !ok || v != 1 {
		t.Fatalf("Recv(4) = %d,%v", v, ok)
	}
}

func TestLinkThroughputMatchesWidth(t *testing.T) {
	// A cpf-cycle link must carry exactly n/cpf flits in n cycles.
	l := NewLink[int](4, 1)
	sent := 0
	for now := int64(0); now < 400; now++ {
		if l.CanSend(now) {
			l.Send(now, sent)
			sent++
		}
	}
	if sent != 100 {
		t.Fatalf("sent %d flits in 400 cycles over a 4-cycle link", sent)
	}
}

func TestLinkSendWhileBusyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Send on busy link did not panic")
		}
	}()
	l := NewLink[int](4, 1)
	l.Send(0, 1)
	l.Send(1, 2)
}

func TestLinkMinimumDelay(t *testing.T) {
	l := NewLink[int](1, 0)
	l.Send(7, 1)
	if _, ok := l.Recv(7); ok {
		t.Fatal("same-cycle delivery")
	}
	if _, ok := l.Recv(8); !ok {
		t.Fatal("flit not delivered at +1")
	}
}

func TestLinkSentCounter(t *testing.T) {
	l := NewLink[int](2, 1)
	l.Send(0, 1)
	l.Send(2, 2)
	if l.Sent() != 2 {
		t.Fatalf("Sent = %d", l.Sent())
	}
}

func TestLinkOrderProperty(t *testing.T) {
	// Property: flits arrive in send order with per-flit spacing >= cpf.
	f := func(cpf8 uint8, n8 uint8) bool {
		cpf := int(cpf8%8) + 1
		n := int(n8%50) + 1
		l := NewLink[int](cpf, 1)
		now := int64(0)
		for i := 0; i < n; i++ {
			for !l.CanSend(now) {
				now++
			}
			l.Send(now, i)
		}
		var arrivals []int64
		var values []int
		for now2 := int64(0); now2 < now+int64(cpf)+10; now2++ {
			for {
				v, ok := l.Recv(now2)
				if !ok {
					break
				}
				values = append(values, v)
				arrivals = append(arrivals, now2)
			}
		}
		if len(values) != n {
			return false
		}
		for i := range values {
			if values[i] != i {
				return false
			}
			if i > 0 && arrivals[i]-arrivals[i-1] < int64(cpf) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
