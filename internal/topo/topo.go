// Package topo defines the interface all simulated network fabrics satisfy
// and the characteristics the paper's Table 3 reports for each (hop counts,
// network volume, bisection bandwidth, in-order behaviour).
//
// Concrete topologies live in subpackages: mesh (2-D/3-D meshes and tori),
// fattree (full 4-ary and CM-5 variants), and butterfly (radix-4 butterfly
// and dilated multibutterfly).
package topo

import (
	"fmt"

	"nifdy/internal/rng"
	"nifdy/internal/router"
	"nifdy/internal/sim"
)

// Characteristics summarizes a network the way the paper's Table 3 does.
type Characteristics struct {
	// Name is a short human-readable identifier ("8x8 mesh").
	Name string
	// Nodes is the number of end points.
	Nodes int
	// AvgHops and MaxHops are router-to-router distances over all ordered
	// pairs of distinct nodes.
	AvgHops float64
	MaxHops int
	// VolumeFlits is the total router input buffering in flits (all virtual
	// channels, both logical networks), the paper's "network volume".
	VolumeFlits int
	// BisectionFPC is the bisection bandwidth in flits per cycle, counting
	// unidirectional links crossing the worst-case even cut.
	BisectionFPC float64
	// FabricFPC is the aggregate internal capacity in flits per cycle,
	// summed over all router-to-router channels (access links excluded). A
	// uniform flow consuming AvgHops links can sustain at most
	// FabricFPC/AvgHops flits per cycle fabric-wide — the whole-fabric
	// contention bound the flow-level model shares capacity against.
	FabricFPC float64
	// InOrder reports whether the fabric is single-path deterministic and
	// therefore delivers packets between any pair in order by construction.
	InOrder bool
	// CPF is the access-link serialization time in cycles per flit.
	CPF int
	// HopLat is the estimated per-hop latency in cycles of a packet header
	// under zero load (serialization plus route/arbitration). The
	// flow-level twin of a fabric uses CPF and HopLat to size its rate and
	// pipe models.
	HopLat float64
	// HopLatPerFlit is the extra per-hop latency per flit of packet length:
	// zero for wormhole/cut-through fabrics, CPF for store-and-forward
	// fabrics, whose per-hop cost grows with packet size.
	HopLatPerFlit float64
}

func (c Characteristics) String() string {
	return fmt.Sprintf("%s: N=%d avg_d=%.1f max_d=%d vol=%d flits bisect=%.1f f/c inorder=%v",
		c.Name, c.Nodes, c.AvgHops, c.MaxHops, c.VolumeFlits, c.BisectionFPC, c.InOrder)
}

// Network is a fabric with one interface port per node. Routers tick under
// the engine; ports are pumped by the NIC that owns them.
type Network interface {
	// Nodes reports the number of end points.
	Nodes() int
	// Iface returns node n's interface port. Flit-accurate fabrics return a
	// *router.Iface; the flow-level fabric returns its packet-native port.
	Iface(n int) router.Port
	// RegisterRouters registers the fabric's routers with the engine
	// (all in shard 0; equivalent to RegisterRoutersSharded with a
	// single-shard partition).
	RegisterRouters(e *sim.Engine)
	// Partition maps each node to an engine shard in [0, shards),
	// topology-aware: contiguous blocks for meshes and tori, whole leaf
	// groups (subtrees) for fat trees and butterflies, so that a node's
	// interface and its leaf router always land in the same shard and
	// most fabric links stay shard-internal.
	Partition(shards int) []int
	// RegisterRoutersSharded registers each router into the shard implied
	// by shardOf (a node→shard map, normally from Partition) and marks
	// every channel whose endpoints land in different shards as a
	// cross-shard edge (link CrossShard staging). Interfaces are not
	// registered — the NIC owning iface n must be registered in
	// shardOf[n], as must node n's processor.
	RegisterRoutersSharded(e *sim.Engine, shardOf []int)
	// Chars reports the Table 3 characteristics.
	Chars() Characteristics
	// BufferedFlits reports flits currently buffered inside the fabric
	// (congestion/occupancy metric; excludes iface ejection buffers).
	BufferedFlits() int
	// AuditRouters calls f once per fabric router, in a deterministic
	// order. The invariant monitors use it to take a global census of
	// buffered flits and credits; like router.Audit it must only run while
	// the fabric is quiescent (e.g. from an engine step hook).
	AuditRouters(f func(*router.Router))
}

// AlignedPartition maps nodes onto shards in contiguous blocks whose
// boundaries fall only on multiples of align (align = the leaf group size a
// topology must keep intact, 1 for meshes). Shard sizes are balanced to
// within one group. shards values below 1 (or a non-positive align) yield
// the all-zeros single-shard map.
func AlignedPartition(nodes, align, shards int) []int {
	shardOf := make([]int, nodes)
	if shards <= 1 || align <= 0 {
		return shardOf
	}
	groups := nodes / align
	if groups < 1 {
		return shardOf
	}
	if shards > groups {
		shards = groups
	}
	for n := range shardOf {
		g := n / align
		if g >= groups { // remainder nodes ride with the last group
			g = groups - 1
		}
		shardOf[n] = g * shards / groups
	}
	return shardOf
}

// Edge records one channel between two fabric components so a topology can
// mark cross-shard links after partitioning. From and To are opaque
// endpoint keys (router indices, or encoded node numbers) that the
// topology's shard-lookup function resolves; From is the side writing
// flits, To the side consuming them (credits flow the other way).
type Edge struct {
	Ch       *router.Channel
	From, To int
}

// CrossHook is the transport's claim on boundary-crossing channels,
// installed with sim.Engine.SetCrossHook: MarkCross calls it for every
// cross-shard edge with the edge's deterministic identity (its index in
// cross-edge enumeration order — identical in every worker process, since
// all build the same topology), the channel, and the two shards. Returning
// true means the hook took ownership of the edge's marking (typically
// because one endpoint is in another process); false falls through to the
// default in-process cross-shard marking.
type CrossHook func(edge int, ch *router.Channel, writerShard, consumerShard int) bool

// WindowSized is the capability a Network must implement to be built with a
// conservative-sync window above 1: its router-router channels are padded
// with router.NewChannelSync so no cross-shard event can arrive inside a
// window. The harness refuses windowed builds of fabrics without it.
type WindowSized interface {
	SyncWindow() int
}

// MarkCross walks edges and, for every one whose endpoints resolve to
// different shards, marks the flit link with the writer's shard cross-
// flusher and the credit wire with the consumer's (credits travel To→From,
// so the flit consumer is the credit writer). Cross edges are numbered in
// enumeration order and offered to the engine's CrossHook first (see
// CrossHook); in windowed mode the cross-flushers drain once per window
// boundary instead of every flush phase.
func MarkCross(e *sim.Engine, edges []Edge, shardAt func(key int) int) {
	hook, _ := e.CrossHook().(CrossHook)
	id := 0
	for _, ed := range edges {
		ws, cs := shardAt(ed.From), shardAt(ed.To)
		if ws == cs {
			continue
		}
		edge := id
		id++
		if hook != nil && hook(edge, ed.Ch, ws, cs) {
			continue
		}
		ed.Ch.Flits.CrossShard(e.CrossFlusher(ws))
		ed.Ch.Credits.CrossShard(e.CrossFlusher(cs))
	}
}

// IfaceOptions are the knobs every topology passes through to its node
// interfaces.
type IfaceOptions struct {
	// BufFlits is the ejection buffer depth per VC; it must be at least the
	// largest packet size used. Zero selects 8 (the synthetic packet size).
	BufFlits int
	// DropProb enables the lossy-network model (§6.2 extension).
	DropProb float64
	// Seed seeds per-node loss RNG streams.
	Seed uint64
	// Mutate injects one-shot substrate faults into node MutateNode's
	// interface, for invariant-monitor validation (test-only).
	Mutate router.IfaceMutations
	// MutateNode selects the node whose interface receives Mutate.
	MutateNode int
	// Window is the conservative-sync window W the fabric is built for:
	// router-router channels are padded (router.NewChannelSync) so every
	// cross-router event lands at least W cycles after its send. 0 or 1 is
	// the unpadded per-tick model.
	Window int
	// Fabric configures the modern-fabric baselines (PFC, ECN, lossy wires);
	// topologies pass it to every router and interface. Its Seed field is
	// filled from Seed when left zero, so one seed drives both loss models.
	Fabric router.FabricConfig
}

// SyncWindow reports the effective window (at least 1).
func (o IfaceOptions) SyncWindow() int {
	if o.Window < 1 {
		return 1
	}
	return o.Window
}

// MutateFor returns the fault set for node n: Mutate when n is MutateNode,
// the zero (no-op) set otherwise.
func (o IfaceOptions) MutateFor(n int) router.IfaceMutations {
	if n == o.MutateNode {
		return o.Mutate
	}
	return router.IfaceMutations{}
}

// EffectiveBufFlits applies the default.
func (o IfaceOptions) EffectiveBufFlits() int {
	if o.BufFlits <= 0 {
		return 8
	}
	return o.BufFlits
}

// LossRNG returns a per-node loss stream, or nil when the network is
// reliable.
func (o IfaceOptions) LossRNG(node uint64) *rng.Source {
	if o.DropProb <= 0 {
		return nil
	}
	return rng.NewStream(o.Seed^0x10551055, node)
}

// FabricFor resolves the fabric config a topology hands its routers and
// interfaces: the configured knobs with the wire-fault seed defaulted to the
// topology seed.
func (o IfaceOptions) FabricFor() router.FabricConfig {
	fc := o.Fabric
	if fc.Seed == 0 {
		fc.Seed = o.Seed
	}
	return fc
}
