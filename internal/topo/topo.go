// Package topo defines the interface all simulated network fabrics satisfy
// and the characteristics the paper's Table 3 reports for each (hop counts,
// network volume, bisection bandwidth, in-order behaviour).
//
// Concrete topologies live in subpackages: mesh (2-D/3-D meshes and tori),
// fattree (full 4-ary and CM-5 variants), and butterfly (radix-4 butterfly
// and dilated multibutterfly).
package topo

import (
	"fmt"

	"nifdy/internal/rng"
	"nifdy/internal/router"
	"nifdy/internal/sim"
)

// Characteristics summarizes a network the way the paper's Table 3 does.
type Characteristics struct {
	// Name is a short human-readable identifier ("8x8 mesh").
	Name string
	// Nodes is the number of end points.
	Nodes int
	// AvgHops and MaxHops are router-to-router distances over all ordered
	// pairs of distinct nodes.
	AvgHops float64
	MaxHops int
	// VolumeFlits is the total router input buffering in flits (all virtual
	// channels, both logical networks), the paper's "network volume".
	VolumeFlits int
	// BisectionFPC is the bisection bandwidth in flits per cycle, counting
	// unidirectional links crossing the worst-case even cut.
	BisectionFPC float64
	// InOrder reports whether the fabric is single-path deterministic and
	// therefore delivers packets between any pair in order by construction.
	InOrder bool
}

func (c Characteristics) String() string {
	return fmt.Sprintf("%s: N=%d avg_d=%.1f max_d=%d vol=%d flits bisect=%.1f f/c inorder=%v",
		c.Name, c.Nodes, c.AvgHops, c.MaxHops, c.VolumeFlits, c.BisectionFPC, c.InOrder)
}

// Network is a fabric with one interface port per node. Routers tick under
// the engine; Ifaces are ticked by the NIC that owns them.
type Network interface {
	// Nodes reports the number of end points.
	Nodes() int
	// Iface returns node n's interface port.
	Iface(n int) *router.Iface
	// RegisterRouters registers the fabric's routers with the engine.
	RegisterRouters(e *sim.Engine)
	// Chars reports the Table 3 characteristics.
	Chars() Characteristics
	// BufferedFlits reports flits currently buffered inside the fabric
	// (congestion/occupancy metric; excludes iface ejection buffers).
	BufferedFlits() int
}

// IfaceOptions are the knobs every topology passes through to its node
// interfaces.
type IfaceOptions struct {
	// BufFlits is the ejection buffer depth per VC; it must be at least the
	// largest packet size used. Zero selects 8 (the synthetic packet size).
	BufFlits int
	// DropProb enables the lossy-network model (§6.2 extension).
	DropProb float64
	// Seed seeds per-node loss RNG streams.
	Seed uint64
}

// EffectiveBufFlits applies the default.
func (o IfaceOptions) EffectiveBufFlits() int {
	if o.BufFlits <= 0 {
		return 8
	}
	return o.BufFlits
}

// LossRNG returns a per-node loss stream, or nil when the network is
// reliable.
func (o IfaceOptions) LossRNG(node uint64) *rng.Source {
	if o.DropProb <= 0 {
		return nil
	}
	return rng.NewStream(o.Seed^0x10551055, node)
}
