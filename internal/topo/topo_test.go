package topo_test

import (
	"testing"

	"nifdy/internal/packet"
	"nifdy/internal/router"
	"nifdy/internal/sim"
	"nifdy/internal/topo"
)

func TestAlignedPartitionDegenerate(t *testing.T) {
	cases := []struct {
		name                 string
		nodes, align, shards int
	}{
		{"single shard", 64, 1, 1},
		{"zero shards", 64, 1, 0},
		{"negative shards", 64, 4, -3},
		{"zero align", 64, 0, 4},
		{"negative align", 64, -1, 4},
		{"fewer nodes than one group", 3, 4, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := topo.AlignedPartition(c.nodes, c.align, c.shards)
			if len(got) != c.nodes {
				t.Fatalf("len = %d, want %d", len(got), c.nodes)
			}
			for n, s := range got {
				if s != 0 {
					t.Fatalf("node %d in shard %d, want the all-zeros map", n, s)
				}
			}
		})
	}
}

// TestAlignedPartitionProperties checks the contract for every combination a
// topology can plausibly ask for: shard indices form contiguous non-decreasing
// blocks whose boundaries fall only on multiples of align, every shard up to
// the clamped count is populated, and sizes balance to within one group.
func TestAlignedPartitionProperties(t *testing.T) {
	for _, nodes := range []int{4, 16, 63, 64, 100} {
		for _, align := range []int{1, 4, 8} {
			for _, shards := range []int{2, 3, 4, 8, 100} {
				got := topo.AlignedPartition(nodes, align, shards)
				groups := nodes / align
				if groups < 1 {
					continue // degenerate case covered above
				}
				eff := shards
				if eff > groups {
					eff = groups
				}
				sizes := make(map[int]int)
				for n := 0; n < nodes; n++ {
					s := got[n]
					if s < 0 || s >= eff {
						t.Fatalf("nodes=%d align=%d shards=%d: node %d in shard %d, want [0,%d)",
							nodes, align, shards, n, s, eff)
					}
					if n > 0 {
						if s < got[n-1] {
							t.Fatalf("nodes=%d align=%d shards=%d: shard decreases at node %d",
								nodes, align, shards, n)
						}
						if s != got[n-1] && n%align != 0 {
							t.Fatalf("nodes=%d align=%d shards=%d: boundary at node %d splits a group",
								nodes, align, shards, n)
						}
					}
					sizes[s]++
				}
				if len(sizes) != eff {
					t.Fatalf("nodes=%d align=%d shards=%d: %d shards populated, want %d",
						nodes, align, shards, len(sizes), eff)
				}
				// Balance: ignoring the remainder nodes that ride with the
				// last group, shard sizes differ by at most one group.
				min, max := nodes+1, 0
				rem := nodes % align
				for s, sz := range sizes {
					if s == got[nodes-1] {
						sz -= rem
					}
					if sz < min {
						min = sz
					}
					if sz > max {
						max = sz
					}
				}
				if max-min > align {
					t.Fatalf("nodes=%d align=%d shards=%d: shard sizes %v unbalanced beyond one group",
						nodes, align, shards, sizes)
				}
			}
		}
	}
}

func TestAlignedPartitionRemainderRidesLastGroup(t *testing.T) {
	// 10 nodes, groups of 4: nodes 8 and 9 form a partial group and must
	// land in the same shard as the last full group (nodes 4-7).
	got := topo.AlignedPartition(10, 4, 2)
	want := []int{0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	for n := range want {
		if got[n] != want[n] {
			t.Fatalf("partition %v, want %v", got, want)
		}
	}
}

// TestMarkCross exercises the cross-shard edge marking end to end on a real
// two-shard engine: a cross-shard edge's flit link stages sends (invisible to
// the consumer) until the flush barrier, its credit wire stages in the
// opposite direction, and a same-shard edge is left untouched so sends are
// visible immediately.
func TestMarkCross(t *testing.T) {
	e := sim.NewParallel(2)
	defer e.Close()

	same := router.NewChannel(1, 1)  // both endpoints in shard 0
	cross := router.NewChannel(1, 1) // node 0 (shard 0) -> node 1 (shard 1)
	edges := []topo.Edge{
		{Ch: same, From: 0, To: 0},
		{Ch: cross, From: 0, To: 1},
	}
	topo.MarkCross(e, edges, func(key int) int { return key })

	now := e.Now()
	pkt := &packet.Packet{Src: 0, Dst: 1, Words: 1}
	same.Flits.Send(now, packet.Flit{Pkt: pkt})
	cross.Flits.Send(now, packet.Flit{Pkt: pkt})
	// Credits flow To->From: the consumer (shard 1) is the credit writer.
	same.Credits.Send(now, router.Credit{VC: 0})
	cross.Credits.Send(now, router.Credit{VC: 0})

	if got := same.Flits.Pending(); got != 1 {
		t.Errorf("same-shard flit link staged a send: pending = %d, want 1", got)
	}
	if got := same.Credits.Pending(); got != 1 {
		t.Errorf("same-shard credit wire staged a send: pending = %d, want 1", got)
	}
	if got := cross.Flits.Pending(); got != 0 {
		t.Errorf("cross-shard flit link leaked before flush: pending = %d, want 0", got)
	}
	if got := cross.Credits.Pending(); got != 0 {
		t.Errorf("cross-shard credit wire leaked before flush: pending = %d, want 0", got)
	}

	// One engine step runs the flush barrier, merging staged sends into the
	// consumer-visible event lists.
	e.Step()
	if got := cross.Flits.Pending(); got != 1 {
		t.Errorf("cross-shard flit link after flush: pending = %d, want 1", got)
	}
	if got := cross.Credits.Pending(); got != 1 {
		t.Errorf("cross-shard credit wire after flush: pending = %d, want 1", got)
	}
}

// TestMarkCrossSameShardUnmarked pins that MarkCross leaves a fully
// shard-internal edge list alone even on a multi-shard engine.
func TestMarkCrossSameShardUnmarked(t *testing.T) {
	e := sim.NewParallel(2)
	defer e.Close()
	ch := router.NewChannel(1, 1)
	topo.MarkCross(e, []topo.Edge{{Ch: ch, From: 5, To: 9}}, func(int) int { return 1 })
	ch.Flits.Send(e.Now(), packet.Flit{})
	if got := ch.Flits.Pending(); got != 1 {
		t.Fatalf("same-shard edge was marked cross-shard: pending = %d, want 1", got)
	}
}
