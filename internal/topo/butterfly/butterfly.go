// Package butterfly implements indirect radix-k butterflies with adjustable
// dilation, covering the paper's butterfly (dilation 1, radix 4) and
// multibutterfly (dilation 2, radix 4) configurations (§3).
//
// A radix-k, n-stage butterfly serves k^n nodes with n stages of k^(n-1)
// routers. Destination-tag routing consumes the destination's base-k digits
// most-significant first: the router at stage s forwards on logical
// direction digit(dst, n-1-s). With dilation D every logical edge is D
// parallel channels and the router chooses adaptively among the copies —
// the multibutterfly's alternative paths, and its source of out-of-order
// delivery. Dilation 1 has exactly one path per pair and delivers in order.
package butterfly

import (
	"fmt"

	"nifdy/internal/packet"
	"nifdy/internal/rng"
	"nifdy/internal/router"
	"nifdy/internal/sim"
	"nifdy/internal/topo"
)

// Config sizes a butterfly.
type Config struct {
	// Radix is k; zero selects 4.
	Radix int
	// Stages is n; Radix^Stages nodes. Zero selects 3 (64 nodes at k=4).
	Stages int
	// Dilation is the parallel-channel count per logical edge; zero
	// selects 1. Use 2 for the paper's multibutterfly.
	Dilation int
	// BufFlits is the per-VC router buffer depth; zero selects 2.
	BufFlits int
	// VCs per class; zero selects 1 (the network is feed-forward).
	VCs int
	// CPF is the link serialization time per flit; zero selects 4.
	CPF int
	// Seed drives adaptive tie-breaking among dilated copies.
	Seed uint64
	// Iface carries node-interface options.
	Iface topo.IfaceOptions
}

func (c *Config) defaults() {
	if c.Radix == 0 {
		c.Radix = 4
	}
	if c.Stages == 0 {
		c.Stages = 3
	}
	if c.Dilation == 0 {
		c.Dilation = 1
	}
	if c.BufFlits == 0 {
		c.BufFlits = 2
	}
	if c.VCs == 0 {
		c.VCs = 1
	}
	if c.CPF == 0 {
		c.CPF = 4
	}
}

// Fly is a butterfly network.
type Fly struct {
	cfg      Config
	nodes    int
	perStage int
	routers  [][]*router.Router // [stage][pos]
	ifaces   []*router.Iface
	// edges record every channel for cross-shard marking. Endpoint keys:
	// router (s,r) -> s*perStage+r; node nd -> -(nd+1).
	edges []topo.Edge
}

// New builds the network.
func New(cfg Config) *Fly {
	cfg.defaults()
	f := &Fly{cfg: cfg}
	f.nodes = pow(cfg.Radix, cfg.Stages)
	f.perStage = pow(cfg.Radix, cfg.Stages-1)
	f.build()
	return f
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

func (f *Fly) digit(x, i int) int {
	for ; i > 0; i-- {
		x /= f.cfg.Radix
	}
	return x % f.cfg.Radix
}

func (f *Fly) setDigit(x, i, v int) int {
	p := pow(f.cfg.Radix, i)
	return x + (v-f.digit(x, i))*p
}

// Port layout: dir*Dilation + copy, for both inputs and outputs.
func (f *Fly) build() {
	k, D, n := f.cfg.Radix, f.cfg.Dilation, f.cfg.Stages
	ports := k * D
	f.routers = make([][]*router.Router, n)
	for s := 0; s < n; s++ {
		f.routers[s] = make([]*router.Router, f.perStage)
		for r := 0; r < f.perStage; r++ {
			s, r := s, r
			id := s*f.perStage + r
			f.routers[s][r] = router.New(router.Config{
				ID: id, InPorts: ports, OutPorts: ports,
				VCs: f.cfg.VCs, BufFlits: f.cfg.BufFlits,
				Route: func(in int, p *packet.Packet, sc []router.Choice) []router.Choice {
					return f.route(s, p, sc)
				},
				RNG:    rng.NewStream(f.cfg.Seed^0xB07F1E, uint64(id)),
				Fabric: f.cfg.Iface.FabricFor(),
			})
		}
	}
	ifBuf := f.cfg.Iface.EffectiveBufFlits()
	f.ifaces = make([]*router.Iface, f.nodes)
	for nd := 0; nd < f.nodes; nd++ {
		f.ifaces[nd] = router.NewIface(router.IfaceConfig{
			Node: nd, VCs: f.cfg.VCs, BufFlits: ifBuf,
			DropProb: f.cfg.Iface.DropProb,
			RNG:      f.cfg.Iface.LossRNG(uint64(nd)),
			Fabric:   f.cfg.Iface.FabricFor(),
			Mutate:   f.cfg.Iface.MutateFor(nd),
		})
		// Injection into stage 0, ejection from stage n-1; port dir = the
		// node's lowest digit, copy 0.
		first := f.routers[0][nd/k]
		last := f.routers[n-1][nd/k]
		port := (nd % k) * D
		up := router.NewChannel(f.cfg.CPF, 1)
		f.ifaces[nd].ConnectOut(up, f.cfg.BufFlits)
		first.ConnectIn(port, up)
		down := router.NewChannel(f.cfg.CPF, 1)
		last.ConnectOut(port, down, ifBuf)
		f.ifaces[nd].ConnectIn(down)
		f.edges = append(f.edges,
			topo.Edge{Ch: up, From: -(nd + 1), To: 0*f.perStage + nd/k},
			topo.Edge{Ch: down, From: (n-1)*f.perStage + nd/k, To: -(nd + 1)})
	}
	// Inter-stage wiring: stage s router r, direction j, copy c connects to
	// stage s+1 router r' = r with digit (n-2-s) replaced by j, input port
	// dir*D+c where dir at the receiver is the replaced digit's old value.
	for s := 0; s+1 < n; s++ {
		for r := 0; r < f.perStage; r++ {
			for j := 0; j < k; j++ {
				rNext := f.setDigit(r, n-2-s, j)
				inDir := f.digit(r, n-2-s)
				// Inter-stage channels carry the conservative-sync padding
				// (access channels never cross shards: a node and its stage
				// 0 / n-1 routers co-locate under the aligned partition).
				for c := 0; c < D; c++ {
					ch := router.NewChannelSync(f.cfg.CPF, 1, f.cfg.Iface.SyncWindow())
					f.routers[s][r].ConnectOut(j*D+c, ch, f.cfg.BufFlits)
					f.routers[s+1][rNext].ConnectIn(inDir*D+c, ch)
					f.edges = append(f.edges,
						topo.Edge{Ch: ch, From: s*f.perStage + r, To: (s+1)*f.perStage + rNext})
				}
			}
		}
	}
}

// route returns the dilated copies of the single logical direction the
// destination tag selects at this stage.
func (f *Fly) route(stage int, p *packet.Packet, sc []router.Choice) []router.Choice {
	dir := f.digit(p.Dst, f.cfg.Stages-1-stage)
	if stage == f.cfg.Stages-1 {
		// Ejection: copy 0 carries the node link.
		return append(sc, router.Choice{Port: dir * f.cfg.Dilation})
	}
	for c := 0; c < f.cfg.Dilation; c++ {
		sc = append(sc, router.Choice{Port: dir*f.cfg.Dilation + c})
	}
	return sc
}

// Nodes implements topo.Network.
func (f *Fly) Nodes() int { return f.nodes }

// SyncWindow implements topo.WindowSized: the butterfly pads inter-stage
// channels for the configured window.
func (f *Fly) SyncWindow() int { return f.cfg.Iface.SyncWindow() }

// Iface implements topo.Network.
func (f *Fly) Iface(n int) router.Port { return f.ifaces[n] }

// RegisterRouters implements topo.Network: the single-shard case of
// RegisterRoutersSharded (everything in shard 0, no cross edges).
func (f *Fly) RegisterRouters(e *sim.Engine) {
	f.RegisterRoutersSharded(e, make([]int, f.nodes))
}

// Partition implements topo.Network: contiguous node blocks aligned to
// groups of k, so a node and its injection/ejection routers share a shard.
func (f *Fly) Partition(shards int) []int {
	return topo.AlignedPartition(f.nodes, f.cfg.Radix, shards)
}

// routerShard places router (s,r) with the node group at its position: node
// group nd/k = r holds the routers a node injects into (stage 0) and ejects
// from (stage n-1), so those links stay shard-internal; middle stages
// inherit the same spread.
func (f *Fly) routerShard(r int, shardOf []int) int {
	return shardOf[r*f.cfg.Radix]
}

// RegisterRoutersSharded implements topo.Network.
func (f *Fly) RegisterRoutersSharded(e *sim.Engine, shardOf []int) {
	ab := topo.NewArenaBuilder(e)
	for _, st := range f.routers {
		for r, rt := range st {
			sh := f.routerShard(r, shardOf)
			e.RegisterSharded(sh, rt)
			ab.AddRouter(sh, rt)
		}
	}
	for n, fc := range f.ifaces {
		ab.AddIface(shardOf[n], fc)
	}
	defer ab.Build()
	topo.MarkCross(e, f.edges, func(key int) int {
		if key < 0 {
			return shardOf[-key-1]
		}
		return f.routerShard(key%f.perStage, shardOf)
	})
}

// AuditRouters implements topo.Network.
func (f *Fly) AuditRouters(fn func(*router.Router)) {
	for _, st := range f.routers {
		for _, r := range st {
			fn(r)
		}
	}
}

// BufferedFlits implements topo.Network.
func (f *Fly) BufferedFlits() int {
	total := 0
	for _, st := range f.routers {
		for _, r := range st {
			total += r.BufferedFlits()
		}
	}
	return total
}

// Chars implements topo.Network.
func (f *Fly) Chars() topo.Characteristics {
	name := "butterfly"
	if f.cfg.Dilation > 1 {
		name = fmt.Sprintf("multibutterfly (dil %d)", f.cfg.Dilation)
	}
	c := topo.Characteristics{
		Name:    name,
		Nodes:   f.nodes,
		AvgHops: float64(f.cfg.Stages), // every packet crosses all stages
		MaxHops: f.cfg.Stages,
		InOrder: f.cfg.Dilation == 1,
	}
	ports := f.cfg.Radix * f.cfg.Dilation
	c.VolumeFlits = f.cfg.Stages * f.perStage * ports * packet.NumClasses * f.cfg.VCs * f.cfg.BufFlits
	// Bisection: the stage-0 outputs whose top destination digit lands in
	// the other half: half the directions of every stage-0 router, both
	// ways.
	cross := f.perStage * f.cfg.Radix * f.cfg.Dilation // = total stage0->1 links; half cross each way, so total crossing = half * 2 = same
	c.BisectionFPC = float64(cross) / float64(f.cfg.CPF)
	internal := 0
	for _, ed := range f.edges {
		if ed.From >= 0 && ed.To >= 0 {
			internal++
		}
	}
	c.FabricFPC = float64(internal) / float64(f.cfg.CPF)
	c.CPF = f.cfg.CPF
	c.HopLat = float64(f.cfg.CPF + 2) // header serialization + route/arbitrate
	return c
}
