package butterfly

import (
	"testing"
	"testing/quick"

	"nifdy/internal/packet"
	"nifdy/internal/topo/topotest"
)

func TestChars(t *testing.T) {
	c := New(Config{}).Chars()
	if c.Nodes != 64 || c.MaxHops != 3 || !c.InOrder {
		t.Fatalf("chars %+v", c)
	}
	m := New(Config{Dilation: 2}).Chars()
	if m.InOrder {
		t.Fatal("multibutterfly must not claim in-order delivery")
	}
	if m.BisectionFPC != 2*c.BisectionFPC {
		t.Fatalf("dilation 2 bisection %v, want double %v", m.BisectionFPC, c.BisectionFPC)
	}
}

func TestButterflyDelivery(t *testing.T) {
	h := topotest.NewHarness(t, New(Config{Seed: 1}))
	h.EnqueueRandom(300, 8, 2)
	h.Run(300000)
	h.CheckPairOrder() // dilation 1: single path, must stay in order
	h.CheckDrained()
}

func TestMultibutterflyDelivery(t *testing.T) {
	h := topotest.NewHarness(t, New(Config{Dilation: 2, Seed: 3}))
	h.EnqueueRandom(300, 8, 4)
	h.Run(300000)
	h.CheckDrained()
}

func TestButterflyAllToAll(t *testing.T) {
	h := topotest.NewHarness(t, New(Config{Stages: 2, Seed: 5})) // 16 nodes
	h.AllPairs(8)
	h.Run(2000000)
	h.CheckDrained()
}

func TestMultibutterflyFasterUnderContention(t *testing.T) {
	// Two flows collide on the same logical path; dilation 2 offers copies.
	run := func(dil int) int64 {
		fly := New(Config{Dilation: dil, Seed: 6})
		h := topotest.NewHarness(t, fly)
		// Sources sharing a stage-0 router, both sending into the same
		// remote subtree so the logical directions coincide.
		for i := 0; i < 20; i++ {
			h.Enqueue(0, 60, 8, packet.Request)
			h.Enqueue(1, 61, 8, packet.Request)
		}
		got := h.Run(2000000)
		var last int64
		for _, p := range got {
			if p.DeliveredAt > last {
				last = p.DeliveredAt
			}
		}
		return last
	}
	t1, t2 := run(1), run(2)
	if t2 > t1 {
		t.Fatalf("dilation 2 finished at %d, later than dilation 1 at %d", t2, t1)
	}
}

func TestDestinationTagProperty(t *testing.T) {
	// Property: following route() from any source's stage-0 router always
	// ejects at the destination, for any adaptive copy choice.
	for _, dil := range []int{1, 2} {
		fly := New(Config{Dilation: dil, Seed: 7})
		f := func(a, b, pick uint8) bool {
			src, dst := int(a)%64, int(b)%64
			p := &packet.Packet{Src: src, Dst: dst, Words: 8, Dialog: packet.NoDialog}
			r := src / fly.cfg.Radix
			for s := 0; s < fly.cfg.Stages; s++ {
				choices := fly.route(s, p, nil)
				if len(choices) == 0 {
					return false
				}
				port := choices[int(pick)%len(choices)].Port
				dir := port / fly.cfg.Dilation
				if s == fly.cfg.Stages-1 {
					return r*fly.cfg.Radix+dir == dst
				}
				r = fly.setDigit(r, fly.cfg.Stages-2-s, dir)
			}
			return false
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Fatalf("dilation %d: %v", dil, err)
		}
	}
}

func TestRadix2(t *testing.T) {
	fly := New(Config{Radix: 2, Stages: 4, Seed: 8}) // 16 nodes
	if fly.Nodes() != 16 {
		t.Fatalf("nodes = %d", fly.Nodes())
	}
	h := topotest.NewHarness(t, fly)
	h.EnqueueRandom(100, 8, 9)
	h.Run(300000)
	h.CheckDrained()
}
