package fattree

import (
	"testing"
	"testing/quick"

	"nifdy/internal/packet"
	"nifdy/internal/topo/topotest"
)

func TestDigitHelpers(t *testing.T) {
	tr := New(Config{})
	// w = 14 = 32 base 4.
	if tr.digit(14, 0) != 2 || tr.digit(14, 1) != 3 {
		t.Fatalf("digit(14): %d %d", tr.digit(14, 0), tr.digit(14, 1))
	}
	if got := tr.setDigit(14, 0, 1); got != 13 {
		t.Fatalf("setDigit(14,0,1) = %d", got)
	}
	if got := tr.setDigit(14, 1, 0); got != 2 {
		t.Fatalf("setDigit(14,1,0) = %d", got)
	}
}

func TestHopsMatchesPaper(t *testing.T) {
	// Paper §2.4.3: full 4-ary fat tree of 64 nodes, three levels, maximum
	// internode distance 6 hops, average "not much less".
	tr := New(Config{})
	c := tr.Chars()
	if c.Nodes != 64 {
		t.Fatalf("nodes = %d", c.Nodes)
	}
	if c.MaxHops != 6 {
		t.Fatalf("max hops = %d, want 6", c.MaxHops)
	}
	if c.AvgHops < 5 || c.AvgHops >= 6 {
		t.Fatalf("avg hops = %v, want just under 6", c.AvgHops)
	}
	if c.InOrder {
		t.Fatal("adaptive fat tree must not claim in-order delivery")
	}
}

func TestHopsSameLeaf(t *testing.T) {
	tr := New(Config{})
	if got := tr.Hops(0, 1); got != 2 {
		t.Fatalf("Hops(0,1) = %d, want 2 (shared leaf router)", got)
	}
	if got := tr.Hops(0, 0); got != 0 {
		t.Fatalf("Hops(0,0) = %d", got)
	}
	if got := tr.Hops(0, 63); got != 6 {
		t.Fatalf("Hops(0,63) = %d", got)
	}
}

func TestFullTreeDelivery(t *testing.T) {
	tr := New(Config{Seed: 1})
	h := topotest.NewHarness(t, tr)
	h.EnqueueRandom(300, 8, 2)
	h.Run(300000)
	h.CheckDrained()
}

func TestStoreForwardDelivery(t *testing.T) {
	tr := New(Config{Variant: StoreForward, Seed: 2})
	h := topotest.NewHarness(t, tr)
	h.EnqueueRandom(150, 8, 3)
	h.Run(300000)
	h.CheckDrained()
}

func TestCM5Delivery(t *testing.T) {
	tr := New(Config{Variant: CM5, Seed: 3})
	h := topotest.NewHarness(t, tr)
	h.EnqueueRandom(150, 6, 4)
	h.Run(600000)
	h.CheckDrained()
}

func TestCM5ClassesIsolated(t *testing.T) {
	// With strict time multiplexing, saturating the request network must
	// not slow the reply network: a single reply packet's latency should
	// match an idle network's.
	lat := func(loaded bool) int64 {
		tr := New(Config{Variant: CM5, Seed: 5})
		h := topotest.NewHarness(t, tr)
		if loaded {
			for i := 0; i < 40; i++ {
				h.Enqueue(0, 63, 6, packet.Request)
			}
		}
		probe := h.Enqueue(0, 63, 6, packet.Reply)
		h.Run(2000000)
		return probe.DeliveredAt - probe.InjectedAt
	}
	idle, loaded := lat(false), lat(true)
	if loaded > idle+idle/4 {
		t.Fatalf("reply latency rose from %d to %d under request load: networks not isolated", idle, loaded)
	}
}

func TestDemandMuxSharesBandwidth(t *testing.T) {
	// On the full tree the two classes share physical links, so a loaded
	// request network must visibly slow a reply packet on the same path.
	lat := func(loaded bool) int64 {
		tr := New(Config{Seed: 6})
		h := topotest.NewHarness(t, tr)
		if loaded {
			for i := 0; i < 40; i++ {
				h.Enqueue(0, 63, 8, packet.Request)
			}
		}
		probe := h.Enqueue(0, 63, 8, packet.Reply)
		h.Run(2000000)
		return probe.DeliveredAt - probe.InjectedAt
	}
	idle, loaded := lat(false), lat(true)
	if loaded <= idle {
		t.Fatalf("reply latency %d not affected by request load (idle %d) on shared links", loaded, idle)
	}
}

func TestAdaptiveUplinksSpreadTraffic(t *testing.T) {
	// All nodes of one subtree sending to another subtree must use more
	// than one top-level router (adaptivity); with deterministic single
	// paths the cut would serialize far more.
	tr := New(Config{Seed: 7})
	h := topotest.NewHarness(t, tr)
	for s := 0; s < 16; s++ {
		for i := 0; i < 5; i++ {
			h.Enqueue(s, 48+s%16, 8, packet.Request)
		}
	}
	h.Run(400000)
	h.CheckDrained()
}

func TestBisectionOrdering(t *testing.T) {
	full := New(Config{Seed: 1}).Chars()
	cm5 := New(Config{Variant: CM5, Seed: 1}).Chars()
	if cm5.BisectionFPC >= full.BisectionFPC/2 {
		t.Fatalf("CM-5 bisection %.2f not well below full tree %.2f", cm5.BisectionFPC, full.BisectionFPC)
	}
}

func TestSmallTreeTwoLevels(t *testing.T) {
	tr := New(Config{Levels: 2, Seed: 8}) // 16 nodes
	if tr.Nodes() != 16 {
		t.Fatalf("nodes = %d", tr.Nodes())
	}
	h := topotest.NewHarness(t, tr)
	h.AllPairs(8)
	h.Run(2000000)
	h.CheckDrained()
}

func TestBigTreeFourLevels(t *testing.T) {
	tr := New(Config{Levels: 4, Seed: 9}) // 256 nodes
	if tr.Nodes() != 256 {
		t.Fatalf("nodes = %d", tr.Nodes())
	}
	c := tr.Chars()
	if c.MaxHops != 8 {
		t.Fatalf("max hops = %d, want 8", c.MaxHops)
	}
	h := topotest.NewHarness(t, tr)
	h.EnqueueRandom(300, 8, 10)
	h.Run(400000)
	h.CheckDrained()
}

func TestRouteReachesDestinationProperty(t *testing.T) {
	for _, variant := range []Variant{Full, CM5} {
		tr := New(Config{Variant: variant, Seed: 11})
		f := func(a, b uint8, adapt uint8) bool {
			src, dst := int(a)%64, int(b)%64
			if src == dst {
				return true
			}
			p := &packet.Packet{Src: src, Dst: dst, Words: 8, Dialog: packet.NoDialog}
			// Walk the route, always taking candidate (adapt mod len).
			l, w := 0, src/tr.cfg.Arity
			for hop := 0; hop < 10; hop++ {
				choices := tr.route(l, w, p, nil)
				if len(choices) == 0 {
					return false
				}
				ch := choices[int(adapt)%len(choices)]
				logical := ch.Port / tr.classes
				if logical < tr.cfg.Arity { // down
					if l == 0 {
						return w*tr.cfg.Arity+logical == dst
					}
					l, w = l-1, tr.setDigit(w, l-1, logical)
					// The freed digit is chosen by the down port: lower
					// router digit l-1... recompute properly below.
				} else { // up
					m := logical - tr.cfg.Arity
					w = tr.setDigit(w, l, m)
					l = l + 1
				}
			}
			return false
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
	}
}

func TestFaultyTreeStillDelivers(t *testing.T) {
	tr := New(Config{Seed: 20, KillTopRouters: 8})
	h := topotest.NewHarness(t, tr)
	h.EnqueueRandom(200, 8, 21)
	h.Run(600000)
	h.CheckDrained()
}

func TestFaultyTreeDisconnectPanics(t *testing.T) {
	// Killing 15 of 16 top positions leaves some leaf-parent groups with no
	// live parent; the constructor must refuse rather than build a fabric
	// that wedges.
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for disconnecting fault pattern")
		}
	}()
	New(Config{Seed: 22, KillTopRouters: 15})
}

func TestFaultSlowsTreeUnderLoad(t *testing.T) {
	// Same offered load, fewer top routers: completion must not be faster.
	run := func(kill int) int64 {
		tr := New(Config{Seed: 23, KillTopRouters: kill})
		h := topotest.NewHarness(t, tr)
		for s := 0; s < 32; s++ {
			for i := 0; i < 4; i++ {
				h.Enqueue(s, 32+(s+i)%32, 8, packet.Request)
			}
		}
		got := h.Run(2000000)
		var last int64
		for _, p := range got {
			if p.DeliveredAt > last {
				last = p.DeliveredAt
			}
		}
		return last
	}
	healthy, faulty := run(0), run(8)
	if faulty < healthy {
		t.Fatalf("faulty tree (%d) finished before healthy (%d)", faulty, healthy)
	}
}
