// Package fattree implements k-ary n-tree fat trees: the paper's full 4-ary
// fat tree with 1-byte links (cut-through or store-and-forward), and the
// CM-5-like variant whose routers in the first two levels have two parents
// instead of four and whose 4-bit links are strictly time-multiplexed
// between the request and reply networks (§3).
//
// Construction (k-ary n-tree): N = k^n nodes labeled by n base-k digits.
// Routers live at levels 0 (leaf, attached to nodes) through n-1 (top), with
// k^(n-1) router positions per level addressed by n-1 base-k digits. Router
// (l, w) connects upward to the k routers (l+1, w[l]:=m); its k down ports
// reach (l-1, w[l-1]:=m), or node w*k+m at level 0. Upward routing is
// adaptive (any parent — the source of out-of-order delivery on this
// fabric); downward routing is determined by the destination's digits.
package fattree

import (
	"fmt"

	"nifdy/internal/packet"
	"nifdy/internal/rng"
	"nifdy/internal/router"
	"nifdy/internal/sim"
	"nifdy/internal/topo"
)

// Variant selects the fat-tree flavour.
type Variant int

const (
	// Full is the full 4-ary fat tree with 1-byte links and cut-through
	// routing.
	Full Variant = iota
	// StoreForward is the full fat tree with store-and-forward routers.
	StoreForward
	// CM5 reduces levels 0 and 1 to two parents per router and halves link
	// width, with strict time multiplexing of the two logical networks.
	CM5
)

func (v Variant) String() string {
	switch v {
	case Full:
		return "fat tree (full)"
	case StoreForward:
		return "fat tree (store&forward)"
	case CM5:
		return "fat tree (CM-5)"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config sizes a fat tree.
type Config struct {
	// Arity is k; zero selects 4.
	Arity int
	// Levels is n; Arity^Levels nodes. Zero selects 3 (64 nodes at k=4).
	Levels int
	// Variant selects Full, StoreForward, or CM5.
	Variant Variant
	// BufFlits is the per-VC router buffer depth. Zero selects 4 for
	// cut-through and 8 (a whole packet) for store-and-forward.
	BufFlits int
	// VCs per class. Zero selects 1 (up/down routing is deadlock-free).
	VCs int
	// Seed drives adaptive tie-breaking.
	Seed uint64
	// KillTopRouters disconnects this many top-level router positions,
	// modeling the hardware faults of §1.1 ("faults in the network may
	// restrict the available bandwidth"). Adaptive up-routing steers around
	// the dead positions automatically; connectivity is preserved as long
	// as at least one top router remains.
	KillTopRouters int
	// Iface carries node-interface options.
	Iface topo.IfaceOptions
}

func (c *Config) defaults() {
	if c.Arity == 0 {
		c.Arity = 4
	}
	if c.Levels == 0 {
		c.Levels = 3
	}
	if c.VCs == 0 {
		c.VCs = 1
	}
	if c.BufFlits == 0 {
		if c.Variant == StoreForward {
			c.BufFlits = 8
		} else {
			c.BufFlits = 4
		}
	}
}

// Tree is a fat-tree network.
type Tree struct {
	cfg      Config
	nodes    int
	perLevel int
	routers  [][]*router.Router // [level][pos]
	ifaces   []*router.Iface
	classes  int // physical channel copies per logical port (2 when time-muxed)
	cpf      int
	// edges record every channel for cross-shard marking. Endpoint keys:
	// router (l,w) -> l*perLevel+w; node n -> -(n+1).
	edges []topo.Edge
}

// New builds the network.
func New(cfg Config) *Tree {
	cfg.defaults()
	t := &Tree{cfg: cfg}
	k := cfg.Arity
	t.nodes = pow(k, cfg.Levels)
	t.perLevel = pow(k, cfg.Levels-1)
	t.classes = 1
	t.cpf = 4 // 1-byte links
	if cfg.Variant == CM5 {
		// "The link bandwidth was reduced to 4 bits per cycle as in the
		// CM-5 network... each network is limited to eight bits every two
		// cycles" (§3): each logical network owns a private channel moving
		// 4 bits per cycle on average, i.e. 8 cycles per 32-bit flit.
		t.classes = packet.NumClasses
		t.cpf = 8
	}
	t.build()
	return t
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// parents reports how many up ports a router at level l has.
func (t *Tree) parents(l int) int {
	if l == t.cfg.Levels-1 {
		return 0
	}
	if t.cfg.Variant == CM5 && l <= 1 {
		return 2
	}
	return t.cfg.Arity
}

// digit returns digit i of w in base k.
func (t *Tree) digit(w, i int) int {
	for ; i > 0; i-- {
		w /= t.cfg.Arity
	}
	return w % t.cfg.Arity
}

// setDigit returns w with digit i replaced by v.
func (t *Tree) setDigit(w, i, v int) int {
	p := pow(t.cfg.Arity, i)
	return w + (v-t.digit(w, i))*p
}

// Logical port layout per router: 0..k-1 down, k..k+parents-1 up. The
// physical port index multiplies by t.classes and adds the class for the
// CM-5's strictly separated networks.
func (t *Tree) phys(logical int, class packet.Class) int {
	return logical*t.classes + int(class)%t.classes
}

func (t *Tree) build() {
	k := t.cfg.Arity
	t.routers = make([][]*router.Router, t.cfg.Levels)
	for l := 0; l < t.cfg.Levels; l++ {
		t.routers[l] = make([]*router.Router, t.perLevel)
		ports := (k + t.parents(l)) * t.classes
		for w := 0; w < t.perLevel; w++ {
			l, w := l, w
			id := l*t.perLevel + w
			t.routers[l][w] = router.New(router.Config{
				ID: id, InPorts: ports, OutPorts: ports,
				VCs: t.cfg.VCs, BufFlits: t.cfg.BufFlits,
				SAF:    t.cfg.Variant == StoreForward,
				Route:  func(in int, p *packet.Packet, s []router.Choice) []router.Choice { return t.route(l, w, p, s) },
				RNG:    rng.NewStream(t.cfg.Seed^0xFA77EE, uint64(id)),
				Fabric: t.cfg.Iface.FabricFor(),
			})
		}
	}
	ifBuf := t.cfg.Iface.EffectiveBufFlits()
	t.ifaces = make([]*router.Iface, t.nodes)
	for n := 0; n < t.nodes; n++ {
		t.ifaces[n] = router.NewIface(router.IfaceConfig{
			Node: n, VCs: t.cfg.VCs, BufFlits: ifBuf,
			DropProb: t.cfg.Iface.DropProb,
			RNG:      t.cfg.Iface.LossRNG(uint64(n)),
			Fabric:   t.cfg.Iface.FabricFor(),
			Mutate:   t.cfg.Iface.MutateFor(n),
		})
		leaf := t.routers[0][n/k]
		port := n % k
		leafKey := 0*t.perLevel + n/k
		for cl := 0; cl < t.classes; cl++ {
			up := router.NewChannel(t.cpf, 1)
			down := router.NewChannel(t.cpf, 1)
			pp := t.phys(port, packet.Class(cl))
			leaf.ConnectIn(pp, up)
			leaf.ConnectOut(pp, down, ifBuf)
			t.edges = append(t.edges,
				topo.Edge{Ch: up, From: -(n + 1), To: leafKey},
				topo.Edge{Ch: down, From: leafKey, To: -(n + 1)})
			if t.classes == 1 {
				t.ifaces[n].ConnectOut(up, t.cfg.BufFlits)
				t.ifaces[n].ConnectIn(down)
			} else {
				t.ifaces[n].ConnectOutClass(packet.Class(cl), up, t.cfg.BufFlits)
				t.ifaces[n].ConnectInClass(packet.Class(cl), down)
			}
		}
	}
	// Top-level fault set: kill whole router positions spread across the
	// level (deterministic, so experiments are reproducible).
	dead := map[int]bool{}
	if t.cfg.KillTopRouters > 0 {
		kill := t.cfg.KillTopRouters
		if kill >= t.perLevel {
			kill = t.perLevel - 1 // keep the machine connected
		}
		for i := 0; i < kill; i++ {
			dead[(i*7)%t.perLevel] = true
		}
		// Connectivity check: every level n-2 router must keep at least one
		// live parent, or packets would wait forever on a route.
		if t.cfg.Levels >= 2 {
			for w := 0; w < t.perLevel; w++ {
				alive := 0
				for m := 0; m < t.parents(t.cfg.Levels-2); m++ {
					if !dead[t.setDigit(w, t.cfg.Levels-2, m)] {
						alive++
					}
				}
				if alive == 0 {
					panic(fmt.Sprintf("fattree: KillTopRouters=%d disconnects router (%d,%d)",
						t.cfg.KillTopRouters, t.cfg.Levels-2, w))
				}
			}
		}
	}
	// Inter-level links.
	for l := 0; l+1 < t.cfg.Levels; l++ {
		for w := 0; w < t.perLevel; w++ {
			lo := t.routers[l][w]
			for m := 0; m < t.parents(l); m++ {
				wUp := t.setDigit(w, l, m)
				if l+1 == t.cfg.Levels-1 && dead[wUp] {
					continue // faulted top router: no links to it
				}
				hi := t.routers[l+1][wUp]
				hiPort := t.digit(w, l) // down port on the parent selects digit l
				loKey, hiKey := l*t.perLevel+w, (l+1)*t.perLevel+wUp
				// Inter-level channels carry the conservative-sync padding
				// (access channels never cross shards: a node and its leaf
				// router co-locate under the aligned partition).
				for cl := 0; cl < t.classes; cl++ {
					up := router.NewChannelSync(t.cpf, 1, t.cfg.Iface.SyncWindow())
					lo.ConnectOut(t.phys(k+m, packet.Class(cl)), up, t.cfg.BufFlits)
					hi.ConnectIn(t.phys(hiPort, packet.Class(cl)), up)
					down := router.NewChannelSync(t.cpf, 1, t.cfg.Iface.SyncWindow())
					hi.ConnectOut(t.phys(hiPort, packet.Class(cl)), down, t.cfg.BufFlits)
					lo.ConnectIn(t.phys(k+m, packet.Class(cl)), down)
					t.edges = append(t.edges,
						topo.Edge{Ch: up, From: loKey, To: hiKey},
						topo.Edge{Ch: down, From: hiKey, To: loKey})
				}
			}
		}
	}
}

// route computes candidates at router (l, w).
func (t *Tree) route(l, w int, p *packet.Packet, s []router.Choice) []router.Choice {
	k := t.cfg.Arity
	// Does this router's subtree contain the destination? Digits of w at
	// positions >= l must equal the destination's digits at positions >= l+1.
	contains := true
	for i := l; i < t.cfg.Levels-1; i++ {
		if t.digit(w, i) != t.nodeDigit(p.Dst, i+1) {
			contains = false
			break
		}
	}
	if contains {
		down := t.nodeDigit(p.Dst, l)
		return append(s, router.Choice{Port: t.phys(down, p.Class)})
	}
	for m := 0; m < t.parents(l); m++ {
		s = append(s, router.Choice{Port: t.phys(k+m, p.Class)})
	}
	return s
}

// nodeDigit returns digit i of a node number in base k.
func (t *Tree) nodeDigit(n, i int) int {
	for ; i > 0; i-- {
		n /= t.cfg.Arity
	}
	return n % t.cfg.Arity
}

// Nodes implements topo.Network.
func (t *Tree) Nodes() int { return t.nodes }

// SyncWindow implements topo.WindowSized: the tree pads inter-level channels
// for the configured window.
func (t *Tree) SyncWindow() int { return t.cfg.Iface.SyncWindow() }

// Iface implements topo.Network.
func (t *Tree) Iface(n int) router.Port { return t.ifaces[n] }

// RegisterRouters implements topo.Network: the single-shard case of
// RegisterRoutersSharded (everything in shard 0, no cross edges).
func (t *Tree) RegisterRouters(e *sim.Engine) {
	t.RegisterRoutersSharded(e, make([]int, t.nodes))
}

// Partition implements topo.Network: contiguous node blocks aligned to leaf
// groups of k, so a leaf router and all k nodes under it share a shard.
func (t *Tree) Partition(shards int) []int {
	return topo.AlignedPartition(t.nodes, t.cfg.Arity, shards)
}

// routerShard places router (l,w) given a node→shard map: internal routers
// join the shard of their subtree's first leaf group (so a subtree entirely
// inside one shard keeps all its routers and links there); top-level routers
// are shared by every subtree, so they spread across shards by position.
func (t *Tree) routerShard(l, w int, shardOf []int) int {
	if l < t.cfg.Levels-1 {
		w -= w % pow(t.cfg.Arity, l)
	}
	return shardOf[w*t.cfg.Arity]
}

// RegisterRoutersSharded implements topo.Network.
func (t *Tree) RegisterRoutersSharded(e *sim.Engine, shardOf []int) {
	ab := topo.NewArenaBuilder(e)
	for l, lvl := range t.routers {
		for w, r := range lvl {
			sh := t.routerShard(l, w, shardOf)
			e.RegisterSharded(sh, r)
			ab.AddRouter(sh, r)
		}
	}
	for n, f := range t.ifaces {
		ab.AddIface(shardOf[n], f)
	}
	defer ab.Build()
	topo.MarkCross(e, t.edges, func(key int) int {
		if key < 0 {
			return shardOf[-key-1]
		}
		return t.routerShard(key/t.perLevel, key%t.perLevel, shardOf)
	})
}

// AuditRouters implements topo.Network.
func (t *Tree) AuditRouters(f func(*router.Router)) {
	for _, lvl := range t.routers {
		for _, r := range lvl {
			f(r)
		}
	}
}

// BufferedFlits implements topo.Network.
func (t *Tree) BufferedFlits() int {
	total := 0
	for _, lvl := range t.routers {
		for _, r := range lvl {
			total += r.BufferedFlits()
		}
	}
	return total
}

// Hops returns the router-to-router distance between nodes a and b: up to
// the nearest common ancestor level and back down.
func (t *Tree) Hops(a, b int) int {
	if a == b {
		return 0
	}
	h := 0
	for i := t.cfg.Levels - 1; i >= 1; i-- {
		if t.nodeDigit(a, i) != t.nodeDigit(b, i) {
			h = i
			break
		}
	}
	// Leaf router to level h and back: 2h router-router hops, plus the two
	// node links counted by convention as part of injection/ejection (the
	// paper counts router hops; d=6 max for the 64-node full tree = 2*3
	// router-level transitions). We count channel traversals between
	// routers: up h, down h, = 2h, plus 2 if same leaf router (h=0 -> 2... )
	if h == 0 {
		return 2 // via the shared leaf router: node->router->node
	}
	return 2*h + 2
}

// Chars implements topo.Network.
func (t *Tree) Chars() topo.Characteristics {
	c := topo.Characteristics{Nodes: t.nodes, Name: t.cfg.Variant.String(), InOrder: false}
	total, pairs := 0, 0
	for a := 0; a < t.nodes; a++ {
		for b := 0; b < t.nodes; b++ {
			if a == b {
				continue
			}
			h := t.Hops(a, b)
			total += h
			pairs++
			if h > c.MaxHops {
				c.MaxHops = h
			}
		}
	}
	c.AvgHops = float64(total) / float64(pairs)
	vol := 0
	for l := 0; l < t.cfg.Levels; l++ {
		ports := (t.cfg.Arity + t.parents(l)) * t.classes
		vol += t.perLevel * ports * perPortClasses(t.classes) * t.cfg.VCs * t.cfg.BufFlits
	}
	c.VolumeFlits = vol
	// Bisection: the root-layer links, scaled by the fraction of router
	// positions actually reachable (the CM-5 variant's reduced parent
	// count leaves upper-level positions unused, shrinking the layer).
	usedFrac := 1.0
	for l := 0; l < t.cfg.Levels-2; l++ {
		usedFrac *= float64(t.parents(l)) / float64(t.cfg.Arity)
	}
	rootLinks := float64(t.perLevel*t.parents(t.cfg.Levels-2)*2) * usedFrac
	perChan := 1.0 / float64(t.cpf)
	c.BisectionFPC = rootLinks * perChan * float64(t.classes) / 2
	if t.cfg.Variant == CM5 {
		c.Name = "fat tree (CM-5)"
	}
	internal := 0
	for _, ed := range t.edges {
		if ed.From >= 0 && ed.To >= 0 {
			internal++
		}
	}
	c.FabricFPC = float64(internal) / float64(t.cpf)
	c.CPF = t.cpf
	c.HopLat = float64(t.cpf + 2) // header serialization + route/arbitrate
	if t.cfg.Variant == StoreForward {
		// A store-and-forward hop holds the whole packet before advancing:
		// the per-hop cost scales with packet length, so report it as a
		// per-flit term (plus route/arbitrate) rather than baking in one
		// packet size.
		c.HopLat = 2
		c.HopLatPerFlit = float64(t.cpf)
	}
	return c
}

// perPortClasses: when classes are physically separated (CM-5), each
// physical port carries one class; otherwise both share the port's VCs.
func perPortClasses(classes int) int {
	if classes > 1 {
		return 1
	}
	return packet.NumClasses
}
