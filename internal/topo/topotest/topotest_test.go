package topotest_test

import (
	"testing"

	"nifdy/internal/packet"
	"nifdy/internal/topo/mesh"
	"nifdy/internal/topo/topotest"
)

// The topotest harness is itself load-bearing — every topology's conformance
// suite trusts its bookkeeping — so pin that bookkeeping here on the smallest
// real fabric.

func TestHarnessEnqueueBookkeeping(t *testing.T) {
	h := topotest.NewHarness(t, mesh.New(mesh.Config{Dims: []int{2, 2}}))
	a := h.Enqueue(0, 3, 8, packet.Request)
	b := h.Enqueue(0, 1, 8, packet.Request)
	c := h.Enqueue(2, 1, 8, packet.Reply)
	if a.Meta.Index != 0 || b.Meta.Index != 1 || c.Meta.Index != 0 {
		t.Fatalf("per-source indices %d,%d,%d, want 0,1,0",
			a.Meta.Index, b.Meta.Index, c.Meta.Index)
	}
	if a.ID == b.ID || b.ID == c.ID {
		t.Fatal("packet IDs not unique")
	}
	if a.Dialog != packet.NoDialog {
		t.Fatalf("dialog %d, want NoDialog", a.Dialog)
	}
	if c.Class != packet.Reply {
		t.Fatalf("class %v, want Reply", c.Class)
	}
}

func TestHarnessAllPairsCount(t *testing.T) {
	h := topotest.NewHarness(t, mesh.New(mesh.Config{Dims: []int{2, 2}}))
	h.AllPairs(8)
	got := h.Run(100_000)
	if want := 4 * 3; len(got) != want {
		t.Fatalf("delivered %d packets, want %d", len(got), want)
	}
	h.CheckDrained()
	h.CheckPairOrder()
	// Every ordered pair received exactly one packet.
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if s == d {
				continue
			}
			if n := len(h.ByPair[[2]int{s, d}]); n != 1 {
				t.Fatalf("pair (%d,%d) received %d packets, want 1", s, d, n)
			}
		}
	}
}

func TestHarnessEnqueueRandomDistinctPairs(t *testing.T) {
	h := topotest.NewHarness(t, mesh.New(mesh.Config{Dims: []int{2, 2}}))
	h.EnqueueRandom(50, 8, 42)
	got := h.Run(200_000)
	if len(got) != 50 {
		t.Fatalf("delivered %d packets, want 50", len(got))
	}
	for _, p := range got {
		if p.Src == p.Dst {
			t.Fatalf("packet %v sent to itself", p)
		}
	}
	h.CheckDrained()
	h.CheckPairOrder()
}
