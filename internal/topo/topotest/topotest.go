// Package topotest provides shared conformance checks for topologies: every
// fabric must deliver every injected packet to the right node, conserve
// packets under saturation, and (when it claims in-order behaviour) never
// reorder a sender/receiver pair.
package topotest

import (
	"sort"
	"testing"

	"nifdy/internal/packet"
	"nifdy/internal/rng"
	"nifdy/internal/sim"
	"nifdy/internal/topo"
)

// Harness drives a Network with simple open-loop node pumps (no NIC, no
// protocol) for substrate-level testing. The pump is a registered Ticker
// with no Activity, so it runs every cycle and pins the engine to
// cycle-by-cycle stepping — the harness must never be skipped over by the
// engine's quiescence fast-forward, since its sends are invisible to the
// components' wake bookkeeping until injected.
type Harness struct {
	T   *testing.T
	Net topo.Network
	Eng *sim.Engine

	ids      packet.IDSource
	queues   [][]*packet.Packet // outgoing per node
	next     []int              // per-node cursor into queues
	driving  bool               // pump injects/collects only while Run is active
	received []*packet.Packet
	ByPair   map[[2]int][]*packet.Packet
}

// NewHarness registers the network's routers and the harness's own pump
// ticker (after the routers, like a NIC) and returns a harness.
func NewHarness(t *testing.T, net topo.Network) *Harness {
	h := &Harness{T: t, Net: net, Eng: sim.New(), ByPair: map[[2]int][]*packet.Packet{}}
	h.queues = make([][]*packet.Packet, net.Nodes())
	h.next = make([]int, net.Nodes())
	net.RegisterRouters(h.Eng)
	h.Eng.Register(sim.TickFunc(h.pump))
	return h
}

// pump is the per-cycle node driver: inject the next queued packet when the
// interface can accept it, and collect deliveries. Outside Run it is a
// no-op, so tests that step the engine by hand (e.g. lossy-fabric counts)
// keep sole control of their interfaces; its mere registration still pins
// the engine to cycle-by-cycle stepping.
func (h *Harness) pump(now sim.Cycle) {
	if !h.driving {
		return
	}
	for n := 0; n < h.Net.Nodes(); n++ {
		ifc := h.Net.Iface(n)
		ifc.Pump(now)
		if h.next[n] < len(h.queues[n]) {
			p := h.queues[n][h.next[n]]
			if ifc.CanAccept(p.Class) {
				ifc.StartSend(now, p)
				h.next[n]++
			}
		}
		for {
			p, got := ifc.Deliver(now, nil)
			if !got {
				break
			}
			if p.Dst != n {
				h.T.Errorf("packet %v delivered to node %d", p, n)
			}
			h.received = append(h.received, p)
			h.ByPair[[2]int{p.Src, p.Dst}] = append(h.ByPair[[2]int{p.Src, p.Dst}], p)
		}
	}
}

// Enqueue schedules a packet from src to dst with the given length.
func (h *Harness) Enqueue(src, dst, words int, class packet.Class) *packet.Packet {
	p := &packet.Packet{ID: h.ids.Next(), Src: src, Dst: dst, Words: words,
		Class: class, Dialog: packet.NoDialog}
	p.Meta.Index = len(h.queues[src])
	h.queues[src] = append(h.queues[src], p)
	return p
}

// EnqueueRandom schedules n packets between uniformly random distinct pairs.
func (h *Harness) EnqueueRandom(n, words int, seed uint64) {
	r := rng.New(seed)
	N := h.Net.Nodes()
	for i := 0; i < n; i++ {
		src := r.Intn(N)
		dst := r.Intn(N - 1)
		if dst >= src {
			dst++
		}
		h.Enqueue(src, dst, words, packet.Request)
	}
}

// Run pumps until every enqueued packet is delivered or maxCycles elapse.
// It fails the test on timeout or misdelivery and returns received packets.
func (h *Harness) Run(maxCycles sim.Cycle) []*packet.Packet {
	h.T.Helper()
	want := 0
	for _, q := range h.queues {
		want += len(q)
	}
	h.driving = true
	ok := h.Eng.RunUntil(func() bool { return len(h.received) == want }, maxCycles)
	h.driving = false
	if !ok {
		h.T.Fatalf("delivered %d/%d packets in %d cycles (buffered flits: %d)",
			len(h.received), want, maxCycles, h.Net.BufferedFlits())
	}
	return h.received
}

// CheckDrained asserts no flits remain inside the fabric.
func (h *Harness) CheckDrained() {
	h.T.Helper()
	// Let in-flight credits and stragglers settle.
	h.Eng.Run(200)
	if n := h.Net.BufferedFlits(); n != 0 {
		h.T.Fatalf("%d flits stranded in fabric", n)
	}
}

// CheckPairOrder asserts every sender/receiver pair's packets arrived in
// Meta.Index order (valid when each pair's packets were enqueued in order).
func (h *Harness) CheckPairOrder() {
	h.T.Helper()
	// Sorted pair sweep: a reorder failure always names the same pair first.
	pairs := make([][2]int, 0, len(h.ByPair))
	//lint:allow(mapiter) key-collection for sorting; the sorted result is independent of iteration order
	for pair := range h.ByPair {
		pairs = append(pairs, pair)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, pair := range pairs {
		ps := h.ByPair[pair]
		last := -1
		for _, p := range ps {
			if p.Meta.Index < last {
				h.T.Fatalf("pair %v reordered: index %d after %d", pair, p.Meta.Index, last)
			}
			last = p.Meta.Index
		}
	}
}

// AllPairs enqueues one packet for every ordered pair (a compact all-to-all).
func (h *Harness) AllPairs(words int) {
	N := h.Net.Nodes()
	for s := 0; s < N; s++ {
		for d := 0; d < N; d++ {
			if s != d {
				h.Enqueue(s, d, words, packet.Request)
			}
		}
	}
}
