package topo

import (
	"nifdy/internal/router"
	"nifdy/internal/sim"
)

// ArenaIDs issues the dense per-shard component IDs that router.Arena binds
// against. Every topology hands components to an ArenaBuilder in its
// registration order, and the builder draws IDs from this allocator in that
// same order — IDs are positions in the shard's bind sequence, never
// literals (the nifdy-lint `arena` rule rejects literal IDs at BindArena
// call sites, and Arena.claim rejects out-of-order ones at bind time).
type ArenaIDs struct {
	next []int32
}

// NewArenaIDs returns an allocator covering shards [0, shards).
func NewArenaIDs(shards int) *ArenaIDs {
	return &ArenaIDs{next: make([]int32, shards)}
}

// Next issues the next dense ID for shard sh.
func (ids *ArenaIDs) Next(sh int) int32 {
	id := ids.next[sh]
	ids.next[sh]++
	return id
}

// arenaEntry is one component queued for binding; exactly one field is set.
type arenaEntry struct {
	r *router.Router
	f *router.Iface
}

// ArenaBuilder collects a fabric's routers and interfaces per engine shard
// during registration, then Build carves one router.Arena per owned shard
// and rebinds every component's hot state onto it in add order. Components
// in shards the engine does not own (multi-process runs) are skipped: they
// never tick locally, so their heap-backed state is inert.
type ArenaBuilder struct {
	e      *sim.Engine
	ids    *ArenaIDs
	shards [][]arenaEntry
}

// NewArenaBuilder returns a builder for e's shard layout.
func NewArenaBuilder(e *sim.Engine) *ArenaBuilder {
	n := e.Shards()
	if n < 1 {
		n = 1
	}
	return &ArenaBuilder{
		e:      e,
		ids:    NewArenaIDs(n),
		shards: make([][]arenaEntry, n),
	}
}

// AddRouter queues r, placed in shard sh, for arena binding.
func (b *ArenaBuilder) AddRouter(sh int, r *router.Router) {
	if !b.e.Owns(sh) {
		return
	}
	b.shards[sh] = append(b.shards[sh], arenaEntry{r: r})
}

// AddIface queues f, placed in shard sh, for arena binding.
func (b *ArenaBuilder) AddIface(sh int, f *router.Iface) {
	if !b.e.Owns(sh) {
		return
	}
	b.shards[sh] = append(b.shards[sh], arenaEntry{f: f})
}

// Build sizes, allocates, and binds one arena per shard that has components.
// It must run after every channel connection is made (capacities derive from
// credit grants) and before the first Step.
func (b *ArenaBuilder) Build() {
	for sh, entries := range b.shards {
		if len(entries) == 0 {
			continue
		}
		var sz router.ArenaSizer
		for _, en := range entries {
			if en.r != nil {
				en.r.ArenaSize(&sz)
			} else {
				en.f.ArenaSize(&sz)
			}
		}
		a := router.NewArena(sz)
		for _, en := range entries {
			id := b.ids.Next(sh)
			if en.r != nil {
				en.r.BindArena(a, id)
			} else {
				en.f.BindArena(a, id)
			}
		}
	}
}
