// Package mesh implements two- and three-dimensional meshes and tori with
// wormhole routing, dimension-order (e-cube) routing, and virtual channels,
// matching the simulator options of the paper (§3): run-time size in each
// dimension, virtual channel count, buffer sizes, and 1-byte-wide links.
//
// Tori use the comparison/dateline virtual-channel discipline to stay
// deadlock-free: within each unidirectional ring a packet uses VC 0 while a
// wraparound still lies ahead and VC 1 afterwards, which makes the channel
// dependency graph acyclic. Meshes are deadlock-free under dimension-order
// routing with any VC count; the paper notes multiple VCs are "not needed
// because it is a mesh, not a torus" (§2.4.3), so the default is one.
package mesh

import (
	"fmt"

	"nifdy/internal/packet"
	"nifdy/internal/rng"
	"nifdy/internal/router"
	"nifdy/internal/sim"
	"nifdy/internal/topo"
)

// Config sizes a mesh or torus.
type Config struct {
	// Dims are the sizes of each dimension. Two or three dimensions cover
	// the paper's fabrics; higher dimensionality is supported too — a
	// binary hypercube is Dims = [2,2,2,...] as a mesh (each dimension of
	// size 2 needs no wraparound).
	Dims []int
	// Torus selects wraparound links.
	Torus bool
	// VCs is the virtual channel count per logical network class. Tori
	// require at least 2 (enforced).
	VCs int
	// BufFlits is the per-VC router buffer depth; the paper's mesh holds
	// "at most two flits" per buffer (§2.4.3). Zero selects 2.
	BufFlits int
	// CPF is the link serialization time per flit in cycles; zero selects 4
	// (one 32-bit flit over a 1-byte link).
	CPF int
	// Adaptive enables minimal adaptive routing on 2-D meshes using the
	// west-first turn model (deadlock-free with a single virtual channel):
	// all required -X hops are taken first, after which the router chooses
	// adaptively among the remaining minimal directions. This is the §6.3
	// future-work study — adaptive routing can reorder packets, so it pairs
	// naturally with NIFDY's hardware reordering. Only valid for 2-D,
	// non-torus meshes.
	Adaptive bool
	// Seed drives adaptive tie-breaking (used only when Adaptive is set).
	Seed uint64
	// Iface carries the node-interface options.
	Iface topo.IfaceOptions
}

func (c *Config) defaults() {
	if c.BufFlits == 0 {
		c.BufFlits = 2
	}
	if c.CPF == 0 {
		c.CPF = 4
	}
	if c.VCs == 0 {
		c.VCs = 1
	}
	if c.Torus && c.VCs < 2 {
		c.VCs = 2
	}
}

// Mesh is a mesh or torus network.
type Mesh struct {
	cfg     Config
	nodes   int
	routers []*router.Router
	ifaces  []*router.Iface
	strides []int
	// edges are the router↔router channels, keyed by router index, for
	// cross-shard marking (iface↔router channels stay shard-internal by
	// construction: node n's iface and router share a shard).
	edges []topo.Edge
}

// New builds the network.
func New(cfg Config) *Mesh {
	cfg.defaults()
	if len(cfg.Dims) < 2 {
		panic(fmt.Sprintf("mesh: %d dimensions", len(cfg.Dims)))
	}
	if cfg.Adaptive && (cfg.Torus || len(cfg.Dims) != 2) {
		panic("mesh: adaptive (west-first) routing requires a 2-D non-torus mesh")
	}
	m := &Mesh{cfg: cfg, nodes: 1}
	for _, d := range cfg.Dims {
		if d < 2 {
			panic("mesh: dimension size < 2")
		}
		m.strides = append(m.strides, m.nodes)
		m.nodes *= d
	}
	m.build()
	return m
}

// Port layout: 0 = local; for dimension d, 1+2d = plus direction,
// 2+2d = minus direction.
func plusPort(d int) int  { return 1 + 2*d }
func minusPort(d int) int { return 2 + 2*d }

func (m *Mesh) coord(n, d int) int { return (n / m.strides[d]) % m.cfg.Dims[d] }

func (m *Mesh) build() {
	ports := 1 + 2*len(m.cfg.Dims)
	m.routers = make([]*router.Router, m.nodes)
	m.ifaces = make([]*router.Iface, m.nodes)
	for n := 0; n < m.nodes; n++ {
		n := n
		rcfg := router.Config{
			ID: n, InPorts: ports, OutPorts: ports,
			VCs: m.cfg.VCs, BufFlits: m.cfg.BufFlits,
			Route: func(in int, p *packet.Packet, s []router.Choice) []router.Choice {
				return m.route(n, p, s)
			},
			Fabric: m.cfg.Iface.FabricFor(),
		}
		if m.cfg.Adaptive {
			rcfg.RNG = rng.NewStream(m.cfg.Seed^0xADA57, uint64(n))
		}
		m.routers[n] = router.New(rcfg)
	}
	ifBuf := m.cfg.Iface.EffectiveBufFlits()
	for n := 0; n < m.nodes; n++ {
		m.ifaces[n] = router.NewIface(router.IfaceConfig{
			Node: n, VCs: m.cfg.VCs, BufFlits: ifBuf,
			DropProb: m.cfg.Iface.DropProb,
			RNG:      m.cfg.Iface.LossRNG(uint64(n)),
			Fabric:   m.cfg.Iface.FabricFor(),
			Mutate:   m.cfg.Iface.MutateFor(n),
		})
		up := router.NewChannel(m.cfg.CPF, 1)
		m.ifaces[n].ConnectOut(up, m.cfg.BufFlits)
		m.routers[n].ConnectIn(0, up)
		down := router.NewChannel(m.cfg.CPF, 1)
		m.routers[n].ConnectOut(0, down, ifBuf)
		m.ifaces[n].ConnectIn(down)
	}
	// Router-router channels carry the conservative-sync padding (access
	// channels above never cross shards: a node and its router co-locate).
	w := m.cfg.Iface.SyncWindow()
	for n := 0; n < m.nodes; n++ {
		for d := range m.cfg.Dims {
			c := m.coord(n, d)
			if c+1 < m.cfg.Dims[d] || m.cfg.Torus {
				nb := n + ((c+1)%m.cfg.Dims[d]-c)*m.strides[d]
				ch := router.NewChannelSync(m.cfg.CPF, 1, w)
				m.routers[n].ConnectOut(plusPort(d), ch, m.cfg.BufFlits)
				m.routers[nb].ConnectIn(minusPort(d), ch)
				m.edges = append(m.edges, topo.Edge{Ch: ch, From: n, To: nb})
			}
			if c > 0 || m.cfg.Torus {
				nb := n + ((c-1+m.cfg.Dims[d])%m.cfg.Dims[d]-c)*m.strides[d]
				ch := router.NewChannelSync(m.cfg.CPF, 1, w)
				m.routers[n].ConnectOut(minusPort(d), ch, m.cfg.BufFlits)
				m.routers[nb].ConnectIn(plusPort(d), ch)
				m.edges = append(m.edges, topo.Edge{Ch: ch, From: n, To: nb})
			}
		}
	}
}

// SyncWindow implements topo.WindowSized: the mesh pads router-router
// channels for the configured window.
func (m *Mesh) SyncWindow() int { return m.cfg.Iface.SyncWindow() }

// route implements dimension-order routing with the torus dateline VC rule,
// or west-first minimal adaptive routing when configured.
func (m *Mesh) route(at int, p *packet.Packet, s []router.Choice) []router.Choice {
	if m.cfg.Adaptive {
		return m.routeWestFirst(at, p, s)
	}
	for d := range m.cfg.Dims {
		cur, dst := m.coord(at, d), m.coord(p.Dst, d)
		if cur == dst {
			continue
		}
		size := m.cfg.Dims[d]
		var plus bool
		if !m.cfg.Torus {
			plus = dst > cur
		} else {
			fwd := (dst - cur + size) % size
			plus = fwd <= size-fwd // ties go to plus deterministically
		}
		port := plusPort(d)
		if !plus {
			port = minusPort(d)
		}
		if !m.cfg.Torus {
			return append(s, router.Choice{Port: port})
		}
		// Dateline rule within the chosen unidirectional ring: VC 0 while a
		// wrap lies ahead, VC 1 after (or if no wrap is needed).
		wrapAhead := (plus && dst < cur) || (!plus && dst > cur)
		vc := 1
		if wrapAhead {
			vc = 0
		}
		return append(s, router.Choice{Port: port, VCs: dlVC(vc)})
	}
	return append(s, router.Choice{Port: 0})
}

var dlVCs = [2][]int{{0}, {1}}

func dlVC(v int) []int { return dlVCs[v] }

// routeWestFirst implements the west-first turn model on a 2-D mesh: if any
// -X hops remain they must all be taken first (no turns into west are ever
// needed afterwards); otherwise the packet may choose adaptively among the
// remaining minimal directions (+X, +Y, -Y). Prohibiting only the two turns
// into the west direction leaves the channel dependency graph acyclic, so
// the fabric is deadlock-free with a single virtual channel while offering
// multiple paths — and therefore out-of-order delivery for NIFDY to repair.
func (m *Mesh) routeWestFirst(at int, p *packet.Packet, s []router.Choice) []router.Choice {
	cx, cy := m.coord(at, 0), m.coord(at, 1)
	dx, dy := m.coord(p.Dst, 0)-cx, m.coord(p.Dst, 1)-cy
	if dx < 0 {
		return append(s, router.Choice{Port: minusPort(0)})
	}
	if dx == 0 && dy == 0 {
		return append(s, router.Choice{Port: 0})
	}
	if dx > 0 {
		s = append(s, router.Choice{Port: plusPort(0)})
	}
	if dy > 0 {
		s = append(s, router.Choice{Port: plusPort(1)})
	} else if dy < 0 {
		s = append(s, router.Choice{Port: minusPort(1)})
	}
	return s
}

// Nodes implements topo.Network.
func (m *Mesh) Nodes() int { return m.nodes }

// Iface implements topo.Network.
func (m *Mesh) Iface(n int) router.Port { return m.ifaces[n] }

// RegisterRouters implements topo.Network: the single-shard case of
// RegisterRoutersSharded (everything in shard 0, no cross edges).
func (m *Mesh) RegisterRouters(e *sim.Engine) {
	m.RegisterRoutersSharded(e, make([]int, m.nodes))
}

// Partition implements topo.Network: contiguous row-major node blocks, one
// per shard (no alignment constraint — each node has its own router).
func (m *Mesh) Partition(shards int) []int {
	return topo.AlignedPartition(m.nodes, 1, shards)
}

// RegisterRoutersSharded implements topo.Network: router n joins node n's
// shard, and neighbor channels crossing a block boundary become staged
// cross-shard edges.
func (m *Mesh) RegisterRoutersSharded(e *sim.Engine, shardOf []int) {
	ab := topo.NewArenaBuilder(e)
	for n, r := range m.routers {
		e.RegisterSharded(shardOf[n], r)
		ab.AddRouter(shardOf[n], r)
	}
	for n, f := range m.ifaces {
		ab.AddIface(shardOf[n], f)
	}
	topo.MarkCross(e, m.edges, func(key int) int { return shardOf[key] })
	ab.Build()
}

// AuditRouters implements topo.Network.
func (m *Mesh) AuditRouters(f func(*router.Router)) {
	for _, r := range m.routers {
		f(r)
	}
}

// BufferedFlits implements topo.Network.
func (m *Mesh) BufferedFlits() int {
	total := 0
	for _, r := range m.routers {
		total += r.BufferedFlits()
	}
	return total
}

// Hops returns the router-to-router distance between nodes a and b.
func (m *Mesh) Hops(a, b int) int {
	h := 0
	for d := range m.cfg.Dims {
		ca, cb := m.coord(a, d), m.coord(b, d)
		diff := ca - cb
		if diff < 0 {
			diff = -diff
		}
		if m.cfg.Torus && m.cfg.Dims[d]-diff < diff {
			diff = m.cfg.Dims[d] - diff
		}
		h += diff
	}
	return h
}

// Chars implements topo.Network.
func (m *Mesh) Chars() topo.Characteristics {
	c := topo.Characteristics{Nodes: m.nodes, InOrder: !m.cfg.Adaptive}
	kind := "mesh"
	if m.cfg.Torus {
		kind = "torus"
	}
	c.Name = fmt.Sprintf("%s%v", kind, m.cfg.Dims)
	if m.cfg.Adaptive {
		c.Name += " adaptive"
	}
	total, pairs := 0, 0
	for a := 0; a < m.nodes; a++ {
		for b := 0; b < m.nodes; b++ {
			if a == b {
				continue
			}
			h := m.Hops(a, b)
			total += h
			pairs++
			if h > c.MaxHops {
				c.MaxHops = h
			}
		}
	}
	c.AvgHops = float64(total) / float64(pairs)
	// Volume: per router, non-local input ports x all VCs x depth.
	perRouter := 2 * len(m.cfg.Dims) * packet.NumClasses * m.cfg.VCs * m.cfg.BufFlits
	c.VolumeFlits = perRouter * m.nodes
	// Bisection: cut the largest dimension in half; count unidirectional
	// links crossing (x2 for torus wrap links).
	maxSize := 0
	for _, sz := range m.cfg.Dims {
		if sz > maxSize {
			maxSize = sz
		}
	}
	cross := 2 * m.nodes / maxSize // both directions of one cut plane
	if m.cfg.Torus {
		cross *= 2
	}
	c.BisectionFPC = float64(cross) / float64(m.cfg.CPF)
	c.FabricFPC = float64(len(m.edges)) / float64(m.cfg.CPF)
	c.CPF = m.cfg.CPF
	c.HopLat = float64(m.cfg.CPF + 2) // header serialization + route/arbitrate
	return c
}
