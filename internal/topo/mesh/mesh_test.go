package mesh

import (
	"testing"
	"testing/quick"

	"nifdy/internal/packet"
	"nifdy/internal/topo"
	"nifdy/internal/topo/topotest"
)

func TestMeshHops(t *testing.T) {
	m := New(Config{Dims: []int{8, 8}})
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 7, 7}, {0, 63, 14}, {9, 18, 2}, {0, 8, 1},
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTorusHopsWrap(t *testing.T) {
	m := New(Config{Dims: []int{8, 8}, Torus: true})
	if got := m.Hops(0, 7); got != 1 {
		t.Errorf("torus Hops(0,7) = %d, want 1 (wrap)", got)
	}
	if got := m.Hops(0, 63); got != 2 {
		t.Errorf("torus Hops(0,63) = %d, want 2", got)
	}
}

func TestMeshChars(t *testing.T) {
	c := New(Config{Dims: []int{8, 8}}).Chars()
	if c.Nodes != 64 || c.MaxHops != 14 || !c.InOrder {
		t.Fatalf("chars %+v", c)
	}
	// Average distance of an 8x8 mesh is 2*(64-8)/(... ) = 5.25 exactly:
	// E|x1-x2| for uniform distinct nodes; known value 2 * (k^2-1)/(3k) per
	// dim over ordered distinct pairs is close to 5.25; just sanity-band it.
	if c.AvgHops < 5 || c.AvgHops > 5.5 {
		t.Fatalf("avg hops %v", c.AvgHops)
	}
	// Bisection: 16 unidirectional links / cpf 4.
	if c.BisectionFPC != 4 {
		t.Fatalf("bisection %v", c.BisectionFPC)
	}
}

func TestTorusCharsBisectionDoubled(t *testing.T) {
	mesh := New(Config{Dims: []int{8, 8}}).Chars()
	tor := New(Config{Dims: []int{8, 8}, Torus: true}).Chars()
	if tor.BisectionFPC != 2*mesh.BisectionFPC {
		t.Fatalf("torus bisection %v, mesh %v", tor.BisectionFPC, mesh.BisectionFPC)
	}
	if tor.MaxHops != 8 {
		t.Fatalf("torus max hops %d", tor.MaxHops)
	}
}

func TestTorusForcesTwoVCs(t *testing.T) {
	m := New(Config{Dims: []int{4, 4}, Torus: true, VCs: 1})
	if m.cfg.VCs != 2 {
		t.Fatalf("torus built with %d VCs", m.cfg.VCs)
	}
}

func TestMeshDelivery(t *testing.T) {
	m := New(Config{Dims: []int{4, 4}})
	h := topotest.NewHarness(t, m)
	h.EnqueueRandom(200, 8, 1)
	h.Run(200000)
	h.CheckPairOrder()
	h.CheckDrained()
}

func Test3DMeshDelivery(t *testing.T) {
	m := New(Config{Dims: []int{3, 3, 3}})
	h := topotest.NewHarness(t, m)
	h.EnqueueRandom(150, 8, 2)
	h.Run(200000)
	h.CheckPairOrder()
	h.CheckDrained()
}

func TestTorusDelivery(t *testing.T) {
	m := New(Config{Dims: []int{4, 4}, Torus: true})
	h := topotest.NewHarness(t, m)
	h.EnqueueRandom(200, 8, 3)
	h.Run(200000)
	h.CheckPairOrder()
	h.CheckDrained()
}

func TestTorusAllToAllNoDeadlock(t *testing.T) {
	// All-to-all saturates every ring, the worst case for torus deadlock;
	// the dateline VC rule must keep it live.
	m := New(Config{Dims: []int{4, 4}, Torus: true})
	h := topotest.NewHarness(t, m)
	h.AllPairs(8)
	h.Run(2000000)
	h.CheckDrained()
}

func TestMeshAllToAllNoDeadlock(t *testing.T) {
	m := New(Config{Dims: []int{4, 4}})
	h := topotest.NewHarness(t, m)
	h.AllPairs(8)
	h.Run(2000000)
	h.CheckDrained()
}

func TestMeshInOrderWithSingleVC(t *testing.T) {
	m := New(Config{Dims: []int{4, 4}})
	h := topotest.NewHarness(t, m)
	for i := 0; i < 30; i++ {
		h.Enqueue(0, 15, 8, packet.Request)
	}
	h.Run(200000)
	h.CheckPairOrder()
}

func TestHopsSymmetricProperty(t *testing.T) {
	m := New(Config{Dims: []int{5, 7}})
	tr := New(Config{Dims: []int{5, 7}, Torus: true})
	f := func(a, b uint8) bool {
		x, y := int(a)%35, int(b)%35
		return m.Hops(x, y) == m.Hops(y, x) && tr.Hops(x, y) == tr.Hops(y, x) &&
			tr.Hops(x, y) <= m.Hops(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRouteReachesDestinationProperty(t *testing.T) {
	// Property: following the route function from any source always reaches
	// the destination's local port within MaxHops steps.
	for _, torus := range []bool{false, true} {
		m := New(Config{Dims: []int{4, 4}, Torus: torus})
		f := func(a, b uint8) bool {
			src, dst := int(a)%16, int(b)%16
			p := &packet.Packet{Src: src, Dst: dst, Words: 8, Dialog: packet.NoDialog}
			at := src
			for hop := 0; hop <= m.Chars().MaxHops+1; hop++ {
				ch := m.route(at, p, nil)
				if len(ch) != 1 {
					return false
				}
				port := ch[0].Port
				if port == 0 {
					return at == dst
				}
				d := (port - 1) / 2
				dir := 1
				if (port-1)%2 == 1 {
					dir = -1
				}
				size := m.cfg.Dims[d]
				c := m.coord(at, d)
				nc := c + dir
				if m.cfg.Torus {
					nc = (nc + size) % size
				}
				if nc < 0 || nc >= size {
					return false
				}
				at += (nc - c) * m.strides[d]
			}
			return false
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("torus=%v: %v", torus, err)
		}
	}
}

func TestBadConfigsPanic(t *testing.T) {
	for _, dims := range [][]int{{8}, {1, 4}} {
		dims := dims
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", dims)
				}
			}()
			New(Config{Dims: dims})
		}()
	}
}

func TestVolumeMatchesPaperIntuition(t *testing.T) {
	// Paper §2.4.3: the 8x8 wormhole mesh has "eight words per node (two
	// words for each incoming link)" per logical network. With two logical
	// networks (request/reply) our volume doubles that.
	c := New(Config{Dims: []int{8, 8}}).Chars()
	perNode := c.VolumeFlits / c.Nodes
	if perNode != 16 {
		t.Fatalf("volume per node = %d flits, want 16 (8 per logical network)", perNode)
	}
}

func TestLossyMeshDropsSome(t *testing.T) {
	m := New(Config{Dims: []int{4, 4}, Iface: topo.IfaceOptions{DropProb: 0.5, Seed: 9}})
	h := topotest.NewHarness(t, m)
	const n = 100
	// Enqueue from one sender so we can count drops deterministically.
	r := 0
	for i := 0; i < n; i++ {
		h.Enqueue(0, 1+i%15, 8, packet.Request)
		r++
	}
	// Run manually: not all will be delivered, so don't use h.Run.
	next := 0
	for cyc := 0; cyc < 100000; cyc++ {
		now := h.Eng.Now()
		for nd := 0; nd < 16; nd++ {
			ifc := m.Iface(nd)
			ifc.Pump(now)
			for {
				if _, ok := ifc.Deliver(now, nil); !ok {
					break
				}
			}
		}
		ifc := m.Iface(0)
		if next < n {
			if ifc.CanAccept(packet.Request) {
				p := &packet.Packet{ID: uint64(next + 1), Src: 0, Dst: 1 + next%15, Words: 8, Dialog: packet.NoDialog}
				ifc.StartSend(now, p)
				next++
			}
		}
		h.Eng.Step()
	}
	var delivered, dropped int64
	for nd := 0; nd < 16; nd++ {
		_, d, dr := m.Iface(nd).Stats()
		delivered += d
		dropped += dr
	}
	if next != n {
		t.Fatalf("injected %d/%d", next, n)
	}
	if delivered+dropped != n {
		t.Fatalf("delivered %d + dropped %d != %d", delivered, dropped, n)
	}
	if dropped < n/4 || dropped > 3*n/4 {
		t.Fatalf("dropped %d of %d at p=0.5", dropped, n)
	}
}

func TestAdaptiveMeshDelivery(t *testing.T) {
	m := New(Config{Dims: []int{4, 4}, Adaptive: true, Seed: 5})
	h := topotest.NewHarness(t, m)
	h.EnqueueRandom(200, 8, 6)
	h.Run(300000)
	h.CheckDrained()
	if m.Chars().InOrder {
		t.Fatal("adaptive mesh must not claim in-order delivery")
	}
}

func TestAdaptiveMeshAllToAllNoDeadlock(t *testing.T) {
	// West-first must stay deadlock-free with a single VC even under
	// all-to-all saturation.
	m := New(Config{Dims: []int{4, 4}, Adaptive: true, Seed: 7})
	h := topotest.NewHarness(t, m)
	h.AllPairs(8)
	h.Run(2000000)
	h.CheckDrained()
}

func TestWestFirstRouteProperty(t *testing.T) {
	// Property: any adaptive choice sequence reaches the destination, and
	// no west hop ever follows a non-west hop.
	m := New(Config{Dims: []int{8, 8}, Adaptive: true, Seed: 8})
	f := func(a, b, pick uint8) bool {
		src, dst := int(a)%64, int(b)%64
		p := &packet.Packet{Src: src, Dst: dst, Words: 8, Dialog: packet.NoDialog}
		at := src
		wentNonWest := false
		for hop := 0; hop <= 20; hop++ {
			ch := m.route(at, p, nil)
			if len(ch) == 0 {
				return false
			}
			port := ch[int(pick)%len(ch)].Port
			if port == 0 {
				return at == dst
			}
			d := (port - 1) / 2
			dir := 1
			if (port-1)%2 == 1 {
				dir = -1
			}
			if d == 0 && dir == -1 {
				if wentNonWest {
					return false // west after a non-west hop: turn violation
				}
			} else {
				wentNonWest = true
			}
			at += dir * m.strides[d]
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Dims: []int{4, 4}, Adaptive: true, Torus: true},
		{Dims: []int{3, 3, 3}, Adaptive: true},
	} {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestHypercubeDelivery(t *testing.T) {
	// A 4-cube: 16 nodes as Dims [2,2,2,2]; dimension-order routing is the
	// classic e-cube algorithm.
	m := New(Config{Dims: []int{2, 2, 2, 2}})
	if m.Nodes() != 16 {
		t.Fatalf("nodes = %d", m.Nodes())
	}
	c := m.Chars()
	if c.MaxHops != 4 {
		t.Fatalf("4-cube max hops = %d", c.MaxHops)
	}
	h := topotest.NewHarness(t, m)
	h.EnqueueRandom(150, 8, 30)
	h.Run(300000)
	h.CheckPairOrder()
	h.CheckDrained()
}

func TestHypercubeHops(t *testing.T) {
	m := New(Config{Dims: []int{2, 2, 2, 2, 2, 2}}) // 6-cube, 64 nodes
	if m.Nodes() != 64 {
		t.Fatalf("nodes = %d", m.Nodes())
	}
	// Hamming distance: 0b000000 to 0b111111 is 6 hops.
	if got := m.Hops(0, 63); got != 6 {
		t.Fatalf("Hops(0,63) = %d", got)
	}
	if got := m.Hops(5, 5); got != 0 {
		t.Fatalf("Hops(5,5) = %d", got)
	}
}
