// Package traffic implements the paper's synthetic bursty workloads (§4.1):
// phases separated by global barriers; sending nodes pick a random
// destination and message length, blast the message as fast as possible,
// and immediately move to the next message until the phase quota is done.
//
// Two standard patterns are provided. Heavy: every node sends each phase,
// message lengths uniform on [1,5] packets. Light: each node sends with
// probability 1/3 per phase, the length distribution includes 10- and
// 20-packet messages (most messages short, long messages carrying most
// packets), and nodes enter pseudo-random non-responsive periods during
// which they neither send nor pull from the network.
//
// Per-node dedicated PRNG streams guarantee the same burst sequence
// regardless of network and NIC configuration (§3).
package traffic

import (
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/rng"
	"nifdy/internal/sim"
)

// Length is one entry of a message-length distribution.
type Length struct {
	Packets int
	Weight  int
}

// Config parameterizes the synthetic generator.
type Config struct {
	// Nodes is the machine size.
	Nodes int
	// Seed drives all per-node streams.
	Seed uint64
	// Phases is the number of barrier-separated phases.
	Phases int
	// PacketsPerPhase is each sending node's per-phase quota (the paper
	// uses "typically 100 to 300").
	PacketsPerPhase int
	// Words is the packet size in words; zero selects 8 (§3).
	Words int
	// SendProb is the probability a node sends in a phase (1 = heavy,
	// 1/3 = light).
	SendProb float64
	// Lengths is the message-length distribution.
	Lengths []Length
	// BulkThreshold: messages with at least this many packets request a
	// bulk dialog; zero disables bulk requests.
	BulkThreshold int
	// IgnoreProb is the per-message probability that a node takes a
	// non-responsive period of IgnoreLen cycles first (light traffic).
	IgnoreProb float64
	// IgnoreLen is the non-responsive period length in cycles.
	IgnoreLen sim.Cycle
	// HotspotProb skews destination selection: with this probability a
	// message targets HotspotNode instead of a uniform destination — the
	// hot-spot congestion source of §1.1.
	HotspotProb float64
	// HotspotNode is the hot destination.
	HotspotNode int
}

// Heavy returns the paper's heavy pattern for n nodes.
func Heavy(n int, seed uint64) Config {
	return Config{
		Nodes: n, Seed: seed, Phases: 4, PacketsPerPhase: 100, Words: 8,
		SendProb:      1.0,
		Lengths:       []Length{{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}},
		BulkThreshold: 3,
	}
}

// Light returns the paper's light pattern for n nodes.
func Light(n int, seed uint64) Config {
	return Config{
		Nodes: n, Seed: seed, Phases: 4, PacketsPerPhase: 100, Words: 8,
		SendProb: 1.0 / 3.0,
		Lengths: []Length{
			{1, 6}, {2, 4}, {3, 3}, {4, 2}, {5, 2}, {10, 2}, {20, 2},
		},
		BulkThreshold: 3,
		IgnoreProb:    0.15, IgnoreLen: 2000,
	}
}

func (c *Config) defaults() {
	if c.Words == 0 {
		c.Words = 8
	}
	if c.Phases == 0 {
		c.Phases = 1
	}
}

// Gen builds the per-node programs for one synthetic run. All programs share
// one barrier; the engine must run them together. Packet and message
// identities come from per-node ID spaces (packet.NewNodeIDs and a per-node
// message sequence salted with the node number), so identity assignment is
// independent of cross-node event order and race-free when nodes tick in
// different engine shards.
type Gen struct {
	cfg Config
	bar *node.Barrier
}

// NewGen returns a generator for cfg. The ids parameter is accepted for
// compatibility and no longer consulted — identities are always per-node.
func NewGen(cfg Config, ids *packet.IDSource) *Gen {
	cfg.defaults()
	_ = ids
	return &Gen{cfg: cfg, bar: node.NewBarrier(cfg.Nodes)}
}

// Program returns node n's program.
func (g *Gen) Program(n int) node.Program {
	cfg := g.cfg
	r := rng.NewStream(cfg.Seed, uint64(n))
	ids := packet.NewNodeIDs(n)
	var msgSeq uint64
	weights := make([]int, len(cfg.Lengths))
	for i, l := range cfg.Lengths {
		weights[i] = l.Weight
	}
	return func(p *node.Proc) {
		for phase := 0; phase < cfg.Phases; phase++ {
			sending := r.Float64() < cfg.SendProb
			if sending {
				sent := 0
				for sent < cfg.PacketsPerPhase {
					if cfg.IgnoreProb > 0 && r.Float64() < cfg.IgnoreProb {
						// Non-responsive period: neither send nor pull.
						p.Consume(cfg.IgnoreLen)
					}
					dst := r.Intn(cfg.Nodes - 1)
					if dst >= n {
						dst++
					}
					if cfg.HotspotProb > 0 && cfg.HotspotNode != n && r.Float64() < cfg.HotspotProb {
						dst = cfg.HotspotNode
					}
					length := cfg.Lengths[r.Pick(weights)].Packets
					msgSeq++
					msg := uint64(n)<<32 | msgSeq
					bulk := cfg.BulkThreshold > 0 && length >= cfg.BulkThreshold
					for i := 0; i < length; i++ {
						// Outgoing packets come from the node's free-list;
						// they are retired back into the receiving node's
						// list below, so saturated phases run allocation-free.
						pk := p.Alloc()
						pk.ID = ids.Next()
						pk.Src = n
						pk.Dst = dst
						pk.Words = cfg.Words
						pk.BulkReq = bulk && i < length-1
						pk.Meta = packet.Meta{MsgID: msg, Index: i, Total: length}
						p.Send(pk)
						sent++
						// Service arrivals between sends so other senders'
						// packets do not rot in the arrivals queue. The
						// generator is a sink: a pulled packet is dead, so
						// retire it.
						for p.HasPending() {
							p.Free(p.Recv())
						}
					}
				}
			}
			// Bulk-synchronous phase end: wait for everyone, servicing
			// (and retiring) arrivals while parked.
			p.Barrier(g.bar, p.Free)
		}
	}
}
