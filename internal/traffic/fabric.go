package traffic

import (
	"nifdy/internal/rng"
)

// FabricFlow is one directed flow of a modern-fabric scenario: Src streams
// fixed-size packets at Dst for the whole measurement budget.
type FabricFlow struct{ Src, Dst int }

// FabricScenario is a modern-fabric stress pattern (DESIGN.md §11): a fixed
// set of concurrent flows on a 2-D mesh, blasting as fast as the NIC admits
// until the cycle budget expires. Unlike the paper's phase-structured
// synthetic patterns, fabric scenarios are open-ended — the interesting
// quantities are delivered throughput, tail latency, and per-flow fairness
// under sustained overload, not time-to-completion.
//
// All three scenarios share the same fan-in core: fanIn senders, placed by a
// seeded permutation, blast the center node. A lossless fan-in saturates the
// sink's ejection link no matter what the NIC does, so the differentiating
// traffic is what rides alongside it — the incast scenario's uniform
// background load, the victim flows on the hot column, the spread flows on
// the feeder rows. What separates end-to-end admission control from
// in-network backpressure is how much of that innocent traffic survives.
type FabricScenario struct {
	// Name labels output rows ("incast", "victim", "spread").
	Name string
	// Nodes is the mesh size (width * height).
	Nodes int
	// Words is the packet payload size; zero selects 8.
	Words int
	// Flows are the concurrent flows. (Src, Dst) pairs are unique, so a
	// receiver can attribute arrivals to flows by source alone.
	Flows []FabricFlow
}

// meshCenter is the incast sink: the center node of a width x height mesh
// (node y*width + x with x, y the middle coordinates — dimension 0 has
// stride 1 in internal/topo/mesh).
func meshCenter(width, height int) int {
	return (height/2)*width + width/2
}

// incastCore builds the shared fan-in: fanIn senders drawn from a seeded
// permutation (skipping the sink and every reserved node) all target the
// center. It returns the sink, the fan-in flows, and the leftover bystander
// nodes in permutation order. Reserved nodes never join the fan-in: a
// saturated sender parks in Send without draining its own arrivals, so a
// scenario's measurement flows must not terminate at (or originate from) a
// fan-in sender.
func incastCore(width, height, fanIn int, seed uint64, reserved map[int]bool) (sink int, flows []FabricFlow, rest []int) {
	nodes := width * height
	sink = meshCenter(width, height)
	if max := nodes - 1 - len(reserved); fanIn > max {
		fanIn = max
	}
	if fanIn < 1 {
		fanIn = 1
	}
	r := rng.NewStream(seed^0x696e6361, 0)
	perm := make([]int, nodes)
	r.Perm(perm)
	for _, n := range perm {
		if n == sink || reserved[n] {
			continue
		}
		if len(flows) < fanIn {
			flows = append(flows, FabricFlow{Src: n, Dst: sink})
		} else {
			rest = append(rest, n)
		}
	}
	return sink, flows, rest
}

// IncastScenario is the N-way incast amid background load: fanIn senders
// blast the center node while the remaining bystander nodes exchange uniform
// traffic in a circular matching (each bystander sends to the next, so every
// one is exactly one flow's source and another's sink). Under dimension-
// order routing the fan-in converges along the rows onto the sink's column;
// the background flows measure fabric-wide delivered throughput in the
// presence of the hotspot — the quantity indiscriminate backpressure
// collapses and end-to-end admission control preserves (§1.1).
func IncastScenario(width, height, fanIn int, seed uint64) FabricScenario {
	_, flows, rest := incastCore(width, height, fanIn, seed, nil)
	if len(rest) >= 2 {
		for i, n := range rest {
			flows = append(flows, FabricFlow{Src: n, Dst: rest[(i+1)%len(rest)]})
		}
	}
	return FabricScenario{Name: "incast", Nodes: width * height, Words: 8, Flows: flows}
}

// VictimScenario pits two victim flows against a pure fan-in: both run the
// full length of the sink's column (top to bottom and back), sharing every
// link of the hot column without ever targeting the sink. Their delivered
// share exposes head-of-line victimization: ideal congestion control
// throttles only the incast flows, while hop-by-hop pause storms starve the
// victims too.
func VictimScenario(width, height, fanIn int, seed uint64) FabricScenario {
	sx := width / 2
	top, bottom := sx, sx+(height-1)*width
	_, flows, _ := incastCore(width, height, fanIn, seed, map[int]bool{top: true, bottom: true})
	flows = append(flows,
		FabricFlow{Src: top, Dst: bottom},
		FabricFlow{Src: bottom, Dst: top})
	return FabricScenario{Name: "victim", Nodes: width * height, Words: 8, Flows: flows}
}

// SpreadScenario adds row-crossing background flows to a pure fan-in, each
// traversing its own row far from the sink. They never touch the hot column
// links — only the lightly loaded row branches feeding it — so their
// delivered share measures congestion spreading: how far the hotspot's
// backpressure leaks upstream into innocent traffic.
func SpreadScenario(width, height, fanIn int, seed uint64) FabricScenario {
	reserved := map[int]bool{}
	var rows []int
	for _, frac := range []int{1, 3, 5, 7} {
		y := height * frac / 8
		if y == height/2 {
			continue // stay off the sink's own row
		}
		rows = append(rows, y)
		reserved[y*width] = true
		reserved[y*width+width-1] = true
	}
	_, flows, _ := incastCore(width, height, fanIn, seed, reserved)
	for _, y := range rows {
		flows = append(flows, FabricFlow{Src: y * width, Dst: y*width + width - 1})
	}
	return FabricScenario{Name: "spread", Nodes: width * height, Words: 8, Flows: flows}
}
