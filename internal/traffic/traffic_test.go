package traffic

import (
	"testing"

	"nifdy/internal/core"
	"nifdy/internal/nic"
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/sim"
	"nifdy/internal/topo/mesh"
)

func TestHeavyConfig(t *testing.T) {
	c := Heavy(64, 1)
	if c.SendProb != 1.0 || c.Nodes != 64 {
		t.Fatalf("heavy: %+v", c)
	}
	for _, l := range c.Lengths {
		if l.Packets < 1 || l.Packets > 5 {
			t.Fatalf("heavy length %d outside [1,5]", l.Packets)
		}
	}
}

func TestLightConfigHasLongMessages(t *testing.T) {
	c := Light(64, 1)
	if c.SendProb >= 0.5 {
		t.Fatalf("light send prob %v", c.SendProb)
	}
	max := 0
	for _, l := range c.Lengths {
		if l.Packets > max {
			max = l.Packets
		}
	}
	if max != 20 {
		t.Fatalf("light max length %d, want 20", max)
	}
	if c.IgnoreProb <= 0 {
		t.Fatal("light traffic needs non-responsive periods")
	}
}

// run wires a tiny mesh with NIFDY NICs and runs the generator.
func run(t *testing.T, cfg Config, cycles sim.Cycle) int64 {
	t.Helper()
	net := mesh.New(mesh.Config{Dims: []int{4, 4}})
	eng := sim.New()
	net.RegisterRouters(eng)
	var ids packet.IDSource
	gen := NewGen(cfg, &ids)
	var procs []*node.Proc
	var accepted func() int64
	nics := make([]*core.NIFDY, 16)
	for i := 0; i < 16; i++ {
		nics[i] = core.New(core.Config{Node: i, IDs: &ids}, net.Iface(i))
		eng.Register(nics[i])
		p := node.NewProc(i, nics[i], node.CM5Costs(), gen.Program(i))
		eng.Register(p)
		p.Start()
		procs = append(procs, p)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Stop()
		}
	})
	accepted = func() int64 {
		var tot int64
		for _, n := range nics {
			tot += n.Stats().Accepted
		}
		return tot
	}
	eng.Run(cycles)
	return accepted()
}

func TestHeavyTrafficDeliversPackets(t *testing.T) {
	cfg := Heavy(16, 5)
	cfg.Phases = 1 << 20
	cfg.PacketsPerPhase = 50
	if got := run(t, cfg, 100_000); got < 100 {
		t.Fatalf("delivered only %d packets", got)
	}
}

func TestLightTrafficDeliversFewer(t *testing.T) {
	mk := func(heavy bool) int64 {
		var cfg Config
		if heavy {
			cfg = Heavy(16, 5)
		} else {
			cfg = Light(16, 5)
		}
		cfg.Phases = 1 << 20
		cfg.PacketsPerPhase = 50
		return run(t, cfg, 100_000)
	}
	h, l := mk(true), mk(false)
	if l >= h {
		t.Fatalf("light (%d) delivered as much as heavy (%d)", l, h)
	}
	if l == 0 {
		t.Fatal("light traffic delivered nothing")
	}
}

func TestDeterministicBurstSequence(t *testing.T) {
	// The same seed must produce the same delivered count on the same
	// network/NIC configuration.
	cfg := Heavy(16, 9)
	cfg.Phases = 1 << 20
	a := run(t, cfg, 50_000)
	b := run(t, cfg, 50_000)
	if a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}

func TestPhasesRespectBarriers(t *testing.T) {
	// With a tiny per-phase quota and finite phases, all programs finish
	// and the total sent equals nodes * phases * quota (every node sends in
	// heavy traffic).
	net := mesh.New(mesh.Config{Dims: []int{4, 4}})
	eng := sim.New()
	net.RegisterRouters(eng)
	var ids packet.IDSource
	cfg := Heavy(16, 11)
	cfg.Phases = 2
	cfg.PacketsPerPhase = 10
	gen := NewGen(cfg, &ids)
	var procs []*node.Proc
	var sent int64
	nics := make([]*core.NIFDY, 16)
	for i := 0; i < 16; i++ {
		nics[i] = core.New(core.Config{Node: i, IDs: &ids}, net.Iface(i))
		eng.Register(nics[i])
		p := node.NewProc(i, nics[i], node.CM5Costs(), gen.Program(i))
		eng.Register(p)
		p.Start()
		procs = append(procs, p)
	}
	defer func() {
		for _, p := range procs {
			p.Stop()
		}
	}()
	done := func() bool {
		for _, p := range procs {
			if !p.Done() {
				return false
			}
		}
		return true
	}
	if !eng.RunUntil(done, 5_000_000) {
		t.Fatal("phased traffic did not finish")
	}
	for _, n := range nics {
		sent += n.Stats().Sent
	}
	// Quota is a lower bound: a node finishing a message may overshoot by
	// up to the message length - 1.
	if sent < 16*2*10 {
		t.Fatalf("sent %d < %d", sent, 16*2*10)
	}
	if sent > 16*2*(10+4) {
		t.Fatalf("sent %d overshoots quota wildly", sent)
	}
}

func TestHotspotSkewsDestinations(t *testing.T) {
	// Count destination picks from the generator's own stream logic by
	// running a short sim and inspecting per-node accepted counts.
	cfg := Heavy(16, 21)
	cfg.Phases = 1 << 20
	cfg.HotspotProb = 0.5
	cfg.HotspotNode = 3
	net := mesh.New(mesh.Config{Dims: []int{4, 4}})
	eng := sim.New()
	net.RegisterRouters(eng)
	var ids packet.IDSource
	gen := NewGen(cfg, &ids)
	hot := 0
	total := 0
	hooks := nic.Hooks{OnSend: func(p *packet.Packet) {
		total++
		if p.Dst == 3 {
			hot++
		}
	}}
	var procs []*node.Proc
	for i := 0; i < 16; i++ {
		u := core.New(core.Config{Node: i, IDs: &ids, Hooks: hooks}, net.Iface(i))
		eng.Register(u)
		p := node.NewProc(i, u, node.CM5Costs(), gen.Program(i))
		eng.Register(p)
		p.Start()
		procs = append(procs, p)
	}
	defer func() {
		for _, p := range procs {
			p.Stop()
		}
	}()
	eng.Run(40_000)
	if total == 0 {
		t.Fatal("no traffic")
	}
	share := float64(hot) / float64(total)
	if share < 0.3 || share > 0.7 {
		t.Fatalf("hotspot share %.2f of %d packets, want ~0.5", share, total)
	}
}
