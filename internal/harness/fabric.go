package harness

import (
	"fmt"
	"sort"

	"nifdy/internal/check"
	"nifdy/internal/core"
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/router"
	"nifdy/internal/sim"
	"nifdy/internal/stats"
	"nifdy/internal/topo"
	"nifdy/internal/topo/mesh"
	"nifdy/internal/traffic"
)

// FabricMesh returns the modern-fabric testbed: a width x height wormhole
// mesh. Unlike the paper's 64-node phase workloads (§2.4.3, W=2), the fabric
// scenarios stream long-lived flows across up to 17x17 nodes, so the bulk
// window is sized toward the fabric's bandwidth-delay product: a W=2 dialog
// on a ~30-hop round trip would idle the wire between acks and understate
// every NIFDY column.
func FabricMesh(width, height int) NetSpec {
	return NetSpec{
		Name: fmt.Sprintf("mesh %dx%d", width, height),
		Build: func(seed uint64, o topo.IfaceOptions) topo.Network {
			// Deep per-VC buffers (vs the paper's 2-flit CM-5-era depth): a
			// modern switch absorbs a whole blocked packet, so a worm parked
			// at a hotspot releases its upstream channels. At depth 2 a
			// blocked 10-flit worm spans five routers and holds every VC on
			// its path, which makes any injection policy — bounded or not —
			// saturate the same tree.
			return mesh.New(mesh.Config{
				Dims: []int{width, height}, Iface: o, BufFlits: 16,
			})
		},
		Params:        core.Config{O: 4, B: 32, D: 1, W: 16},
		InOrderFabric: true,
	}
}

// FabricOpts parameterizes the modern-fabric scenario pack (DESIGN.md §11):
// NIFDY against PFC, DCQCN, and the plain NIC under incast, victim-flow, and
// congestion-spreading traffic, on lossless and lossy wires.
type FabricOpts struct {
	// Width and Height are the mesh dimensions; default 17x17 (289 nodes,
	// sink at the center, node 144).
	Width, Height int
	// FanIn is the incast width; default 256.
	FanIn int
	// Cycles is the measurement budget; default 100,000.
	Cycles sim.Cycle
	// Seed drives sender placement and the lossy-wire streams; default 1995.
	Seed uint64
	// Shards is the engine shard count: 0 selects DefaultShards, 1 forces
	// serial. Every metric is bit-identical for any value.
	Shards int
	// Kinds defaults to {Plain, PFC, DCQCN, NIFDY}.
	Kinds []NICKind
	// Scenarios defaults to the incast, victim, and spread patterns sized
	// for the mesh.
	Scenarios []traffic.FabricScenario
	// WireDrop is the per-flit drop probability of the lossy column;
	// default 1/512. NIFDY runs the lossy column with retransmission on
	// (the §6 path); the other kinds take the losses.
	WireDrop float64
	// Lossy selects which wire conditions run: nil means both lossless and
	// lossy.
	Lossy []bool
	// Check arms the invariant monitors in every cell (test use; the
	// Sequence end-of-run accounting stays off because budget-bound runs
	// end mid-flight).
	Check *check.Options
}

func (o *FabricOpts) defaults() {
	if o.Width == 0 {
		o.Width = 17
	}
	if o.Height == 0 {
		o.Height = 17
	}
	if o.FanIn == 0 {
		o.FanIn = 256
	}
	if o.Cycles == 0 {
		o.Cycles = 100_000
	}
	if o.Seed == 0 {
		o.Seed = 1995
	}
	if o.Kinds == nil {
		o.Kinds = []NICKind{Plain, PFC, DCQCN, NIFDY}
	}
	if o.Scenarios == nil {
		o.Scenarios = []traffic.FabricScenario{
			traffic.IncastScenario(o.Width, o.Height, o.FanIn, o.Seed),
			traffic.VictimScenario(o.Width, o.Height, o.FanIn, o.Seed),
			traffic.SpreadScenario(o.Width, o.Height, o.FanIn, o.Seed),
		}
	}
	if o.WireDrop == 0 {
		o.WireDrop = 1.0 / 512
	}
	if o.Lossy == nil {
		o.Lossy = []bool{false, true}
	}
}

// FabricPoint is one measured cell of the modern-fabric comparison. The JSON
// form is the nifdy-bench baseline schema for -exp fabric.
type FabricPoint struct {
	// Scenario and Kind name the cell; Lossy marks the wire condition.
	Scenario string `json:"fabric"`
	Kind     string `json:"nic_kind"`
	Lossy    bool   `json:"loss"`
	// Delivered is the total packets accepted across all flows within the
	// budget.
	Delivered int64 `json:"delivered"`
	// P99 is the 99th-percentile end-to-end packet latency in cycles
	// (NIC admission to processor acceptance).
	P99 sim.Cycle `json:"p99_cycles"`
	// Fairness is Jain's index over per-flow delivered counts: 1 is
	// perfectly equal shares, 1/flows is total capture by one flow.
	Fairness float64 `json:"fairness"`
}

// fabricCollector builds the per-node programs of one scenario and gathers
// the per-flow metrics. Each flow's counters are written only by its
// destination's processor goroutine, and latency samples are kept per
// destination node, so the collection is race-free under any sharding and
// the merged metrics are bit-identical for every shard count.
type fabricCollector struct {
	words     int
	out       [][]traffic.FabricFlow
	at        []map[int]int // per dst node: src -> flow index
	delivered []int64
	lat       [][]sim.Cycle
}

func newFabricCollector(sc traffic.FabricScenario) *fabricCollector {
	words := sc.Words
	if words == 0 {
		words = 8
	}
	c := &fabricCollector{
		words:     words,
		out:       make([][]traffic.FabricFlow, sc.Nodes),
		at:        make([]map[int]int, sc.Nodes),
		delivered: make([]int64, len(sc.Flows)),
		lat:       make([][]sim.Cycle, sc.Nodes),
	}
	for fi, f := range sc.Flows {
		c.out[f.Src] = append(c.out[f.Src], f)
		if c.at[f.Dst] == nil {
			c.at[f.Dst] = map[int]int{}
		}
		c.at[f.Dst][f.Src] = fi
	}
	return c
}

// take retires one arrival at node n, crediting its flow.
func (c *fabricCollector) take(n int, p *node.Proc, pk *packet.Packet) {
	if fi, ok := c.at[n][pk.Src]; ok {
		c.delivered[fi]++
		c.lat[n] = append(c.lat[n], pk.AcceptedAt-pk.CreatedAt)
	}
	p.Free(pk)
}

// Program returns node n's program: senders round-robin over their flows,
// blasting until the budget expires and servicing arrivals between sends;
// pure receivers sit in a poll loop.
func (c *fabricCollector) Program(n int) node.Program {
	out := c.out[n]
	if len(out) == 0 && c.at[n] == nil {
		return nil // bystander: its NIC still ticks
	}
	ids := packet.NewNodeIDs(n)
	return func(p *node.Proc) {
		if len(out) == 0 {
			for {
				c.take(n, p, p.Recv())
			}
		}
		for {
			for _, f := range out {
				pk := p.Alloc()
				pk.ID = ids.Next()
				pk.Src = n
				pk.Dst = f.Dst
				pk.Words = c.words
				// An endless stream is one long message: keep requesting the
				// bulk dialog (never closed), so NIFDY flows run W-windowed
				// instead of one scalar packet per round trip. The plain
				// kinds ignore the bit.
				pk.BulkReq = true
				p.Send(pk)
				for p.HasPending() {
					c.take(n, p, p.Recv())
				}
			}
		}
	}
}

// point folds the collected counters into the cell's metrics.
func (c *fabricCollector) point() (delivered int64, p99 sim.Cycle, fairness float64) {
	var sum, sumsq float64
	for _, d := range c.delivered {
		delivered += d
		sum += float64(d)
		sumsq += float64(d) * float64(d)
	}
	if sumsq > 0 {
		fairness = sum * sum / (float64(len(c.delivered)) * sumsq)
	}
	var all []sim.Cycle
	for _, l := range c.lat {
		all = append(all, l...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		p99 = all[len(all)*99/100]
	}
	return delivered, p99, fairness
}

// FabricCell runs one (scenario, kind, wire condition) cell and returns its
// metrics.
func FabricCell(o FabricOpts, sc traffic.FabricScenario, kind NICKind, lossy bool) FabricPoint {
	o.defaults()
	spec := FabricMesh(o.Width, o.Height)
	shards := o.Shards
	if shards == 0 {
		shards = DefaultShards(sc.Nodes)
	}
	var fc router.FabricConfig
	params := spec.Params
	if lossy {
		fc.WireDrop = o.WireDrop
		if kind == NIFDY {
			// Loss recovery is NIFDY's §6 story; the baselines have none.
			// The default timeout (4096) is sized for the 64-node phase
			// workloads; on this fabric's ~100-cycle RTTs it would idle a
			// stalled flow for several sink-service periods per loss.
			params.Retransmit = true
			params.RetransmitTimeout = 1024
		}
	}
	col := newFabricCollector(sc)
	// Reduced software overheads (the Figure 4 device): the offered load must
	// exceed the fabric's capacity at the sink, or every NIC kind would tie
	// at the processor's software receive rate.
	fastCosts := node.Costs{Send: 10, Recv: 14, Poll: 6, ReorderPenalty: 4}
	s := Build(BuildOpts{
		Net: spec, Kind: kind, Seed: o.Seed, Params: params, Fabric: fc,
		Costs: fastCosts, EngineShards: shards, Check: o.Check,
		Program: col.Program,
	})
	defer s.Close()
	s.Eng.Run(o.Cycles)
	delivered, p99, fairness := col.point()
	return FabricPoint{
		Scenario: sc.Name, Kind: kind.String(), Lossy: lossy,
		Delivered: delivered, P99: p99, Fairness: fairness,
	}
}

// FabricExperiment runs the full scenario pack: every configured scenario x
// NIC kind x wire condition, cells in parallel, each cell internally sharded
// and bit-identical for any Shards value.
func FabricExperiment(o FabricOpts) []FabricPoint {
	o.defaults()
	points := make([]FabricPoint, 0, len(o.Scenarios)*len(o.Kinds)*len(o.Lossy))
	var tasks []func()
	for _, sc := range o.Scenarios {
		for _, lossy := range o.Lossy {
			for _, kind := range o.Kinds {
				sc, lossy, kind := sc, lossy, kind
				points = append(points, FabricPoint{})
				i := len(points) - 1
				tasks = append(tasks, func() {
					points[i] = FabricCell(o, sc, kind, lossy)
				})
			}
		}
	}
	runParallel(tasks)
	return points
}

// FabricTable renders points the way the other figure entry points do.
func FabricTable(points []FabricPoint) *stats.Table {
	t := stats.NewTable("Modern-fabric baselines: NIFDY vs PFC/DCQCN under incast (DESIGN.md §11)",
		"scenario", "wires", "nic", "delivered", "p99 lat", "fairness")
	for _, p := range points {
		wires := "lossless"
		if p.Lossy {
			wires = "lossy"
		}
		t.Row(p.Scenario, wires, p.Kind, p.Delivered, int64(p.P99), p.Fairness)
	}
	return t
}
