package harness

import (
	"nifdy/internal/core"
	"nifdy/internal/topo"
	"nifdy/internal/topo/butterfly"
	"nifdy/internal/topo/fattree"
	"nifdy/internal/topo/mesh"
)

// NetSpec names a network configuration plus its tuned NIFDY parameters
// (the per-network best parameters of Table 3, reproduced by the Table3
// sweep in this package).
type NetSpec struct {
	// Name labels output rows.
	Name string
	// Build constructs the fabric.
	Build func(seed uint64, opts topo.IfaceOptions) topo.Network
	// Params are the tuned NIFDY parameters for this fabric.
	Params core.Config
	// InOrderFabric is true when the fabric cannot reorder (single-path
	// deterministic routing), so even non-NIFDY NICs deliver in order.
	InOrderFabric bool
}

// FullFatTree is the 64-node full 4-ary fat tree with cut-through routing.
// Generous parameters: big OPT and pool, roomy window (§2.4.3, Table 3).
func FullFatTree() NetSpec {
	return NetSpec{
		Name: "fat tree (full)",
		Build: func(seed uint64, o topo.IfaceOptions) topo.Network {
			return fattree.New(fattree.Config{Seed: seed, Iface: o})
		},
		Params: core.Config{O: 8, B: 8, D: 1, W: 4},
	}
}

// SFFatTree is the store-and-forward full fat tree: the highest-latency
// fabric, so it gets the biggest bulk window.
func SFFatTree() NetSpec {
	return NetSpec{
		Name: "fat tree (store&fwd)",
		Build: func(seed uint64, o topo.IfaceOptions) topo.Network {
			return fattree.New(fattree.Config{Variant: fattree.StoreForward, Seed: seed, Iface: o})
		},
		Params: core.Config{O: 8, B: 8, D: 1, W: 8},
	}
}

// CM5FatTree is the CM-5-like tree: two parents in the lower levels, 4-bit
// time-multiplexed links. Low volume and bisection mean a smaller window
// than the full tree despite the higher round-trip latency (§4.1).
func CM5FatTree() NetSpec {
	return NetSpec{
		Name: "fat tree (CM-5)",
		Build: func(seed uint64, o topo.IfaceOptions) topo.Network {
			return fattree.New(fattree.Config{Variant: fattree.CM5, Seed: seed, Iface: o})
		},
		Params: core.Config{O: 8, B: 8, D: 1, W: 2},
	}
}

// Mesh2D is the 8x8 wormhole mesh: tiny volume and bisection, so the most
// conservative parameters (§2.4.3: O=4, B=4, D=1, W=2).
func Mesh2D() NetSpec {
	return NetSpec{
		Name: "mesh 8x8",
		Build: func(seed uint64, o topo.IfaceOptions) topo.Network {
			return mesh.New(mesh.Config{Dims: []int{8, 8}, Iface: o})
		},
		Params:        core.Config{O: 4, B: 4, D: 1, W: 2},
		InOrderFabric: true,
	}
}

// Torus2D is the 8x8 torus (two virtual channels for the dateline rule).
func Torus2D() NetSpec {
	return NetSpec{
		Name: "torus 8x8",
		Build: func(seed uint64, o topo.IfaceOptions) topo.Network {
			return mesh.New(mesh.Config{Dims: []int{8, 8}, Torus: true, Iface: o})
		},
		Params:        core.Config{O: 4, B: 4, D: 1, W: 2},
		InOrderFabric: true,
	}
}

// Mesh3D is the 4x4x4 mesh.
func Mesh3D() NetSpec {
	return NetSpec{
		Name: "mesh 4x4x4",
		Build: func(seed uint64, o topo.IfaceOptions) topo.Network {
			return mesh.New(mesh.Config{Dims: []int{4, 4, 4}, Iface: o})
		},
		Params:        core.Config{O: 4, B: 8, D: 1, W: 2},
		InOrderFabric: true,
	}
}

// Butterfly is the radix-4 dilation-1 butterfly: three hops, no alternative
// paths — the one network where bulk dialogs are best disabled (§4.1).
func Butterfly() NetSpec {
	return NetSpec{
		Name: "butterfly",
		Build: func(seed uint64, o topo.IfaceOptions) topo.Network {
			return butterfly.New(butterfly.Config{Seed: seed, Iface: o})
		},
		Params:        core.Config{O: 4, B: 8, D: -1, W: 2},
		InOrderFabric: true,
	}
}

// Multibutterfly is the radix-4 dilation-2 multibutterfly.
func Multibutterfly() NetSpec {
	return NetSpec{
		Name: "multibutterfly",
		Build: func(seed uint64, o topo.IfaceOptions) topo.Network {
			return butterfly.New(butterfly.Config{Dilation: 2, Seed: seed, Iface: o})
		},
		Params: core.Config{O: 8, B: 8, D: 1, W: 2},
	}
}

// FatTreeSized is the full fat tree at 4^levels nodes (Figure 4 scaling).
func FatTreeSized(levels int) NetSpec {
	spec := FullFatTree()
	spec.Build = func(seed uint64, o topo.IfaceOptions) topo.Network {
		return fattree.New(fattree.Config{Levels: levels, Seed: seed, Iface: o})
	}
	return spec
}

// CM5Sized is the CM-5-like tree at 4^levels nodes (Figures 5/6 use 32
// nodes; 4^levels is the closest power of 4, so the paper's 32-node runs
// map to 2 levels = 16 or 3 levels = 64; we use the configured size).
func CM5Sized(levels int) NetSpec {
	spec := CM5FatTree()
	spec.Build = func(seed uint64, o topo.IfaceOptions) topo.Network {
		return fattree.New(fattree.Config{Variant: fattree.CM5, Levels: levels, Seed: seed, Iface: o})
	}
	return spec
}

// StandardNetworks returns the seven 64-node fabrics of Figures 2/3 plus
// the multibutterfly.
func StandardNetworks() []NetSpec {
	return []NetSpec{
		FullFatTree(), SFFatTree(), CM5FatTree(),
		Mesh2D(), Torus2D(), Mesh3D(),
		Butterfly(), Multibutterfly(),
	}
}

// AdaptiveMesh2D is the 8x8 mesh with west-first minimal adaptive routing —
// the §6.3 future-work configuration. Adaptivity reorders packets, so
// NIFDY's reorder hardware becomes load-bearing here.
func AdaptiveMesh2D() NetSpec {
	return NetSpec{
		Name: "mesh 8x8 adaptive",
		Build: func(seed uint64, o topo.IfaceOptions) topo.Network {
			return mesh.New(mesh.Config{Dims: []int{8, 8}, Adaptive: true, Seed: seed, Iface: o})
		},
		Params: core.Config{O: 4, B: 4, D: 1, W: 2},
	}
}

// FaultyFatTree is the full fat tree with kill top-level router positions
// disconnected (§1.1 fault study).
func FaultyFatTree(kill int) NetSpec {
	spec := FullFatTree()
	spec.Name = "fat tree (faulty)"
	spec.Build = func(seed uint64, o topo.IfaceOptions) topo.Network {
		return fattree.New(fattree.Config{Seed: seed, KillTopRouters: kill, Iface: o})
	}
	return spec
}
