package harness

import (
	"testing"

	"nifdy/internal/traffic"
)

// Paper-shape regressions: encode the claims EXPERIMENTS.md records for the
// paper's evaluation as assertions, at reduced cycle budgets. Shapes — who
// wins and where — are the claim; absolute counts are not.

// TestFigure2Ordering asserts the Figure 2 headline on the low-bisection
// fabrics, where the paper (and EXPERIMENTS.md §F2) put the biggest margins:
// under heavy traffic NIFDY delivers more than the plain NIC, and at least
// matches the same buffering without the protocol.
func TestFigure2Ordering(t *testing.T) {
	specs := []NetSpec{Mesh2D(), Torus2D(), CM5FatTree()}
	if testing.Short() {
		specs = specs[:1]
	}
	const cycles = 60_000
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			mk := func() traffic.Config {
				c := traffic.Heavy(64, 1995)
				c.Phases = 1 << 20
				return c
			}
			vals := synthRow(spec, []NICKind{Plain, BuffersOnly, NIFDY}, mk, cycles, 1995, 0, 0)
			none, buffers, nifdy := vals[0], vals[1], vals[2]
			if nifdy <= none {
				t.Errorf("NIFDY %d <= none %d (heavy traffic, %s)", nifdy, none, spec.Name)
			}
			// "Comparable to or better than the same buffering without the
			// protocol" (§4.6) — allow a small tolerance at reduced budget.
			if float64(nifdy) < 0.97*float64(buffers) {
				t.Errorf("NIFDY %d well below buffers-only %d on %s", nifdy, buffers, spec.Name)
			}
		})
	}
}

// TestFigure3LightTrafficTolerance asserts Figure 3's claim: under light
// loads NIFDY's restrictiveness does not hurt. EXPERIMENTS.md §F3 records
// parity or small wins, with the CM-5 tree gaining the most.
func TestFigure3LightTrafficTolerance(t *testing.T) {
	spec := CM5FatTree()
	mk := func() traffic.Config {
		c := traffic.Light(64, 1995)
		c.Phases = 1 << 20
		return c
	}
	vals := synthRow(spec, []NICKind{Plain, NIFDY}, mk, 60_000, 1995, 0, 0)
	none, nifdy := vals[0], vals[1]
	if nifdy <= none {
		t.Errorf("light traffic on the CM-5 tree: NIFDY %d <= none %d (F3 records a clear win)", nifdy, none)
	}
}

// TestTable3InOrderFabricSet pins the Table 3 in-order column: exactly the
// single-path deterministic fabrics (mesh, torus, 3-D mesh, butterfly) are
// in-order, the built network's own characterization agrees with the
// NetSpec flag the harness uses to gate ordering checks, and the paper's
// per-network parameter tuning survives.
func TestTable3InOrderFabricSet(t *testing.T) {
	wantInOrder := map[string]bool{
		"mesh 8x8":   true,
		"torus 8x8":  true,
		"mesh 4x4x4": true,
		"butterfly":  true,
	}
	for _, spec := range StandardNetworks() {
		chars := spec.Build(1, topoIfaceDefaults()).Chars()
		if chars.InOrder != wantInOrder[spec.Name] {
			t.Errorf("%s: Chars().InOrder = %v, want %v", spec.Name, chars.InOrder, wantInOrder[spec.Name])
		}
		if spec.InOrderFabric != chars.InOrder {
			t.Errorf("%s: NetSpec.InOrderFabric %v disagrees with fabric %v",
				spec.Name, spec.InOrderFabric, chars.InOrder)
		}
	}
}
