package harness

import (
	"nifdy/internal/model"
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/sim"
	"nifdy/internal/stats"
)

// ModelCheckOpts parameterizes the §2.4 model-vs-simulator calibration.
type ModelCheckOpts struct {
	Seed      uint64
	MaxCycles sim.Cycle // default 2,000,000
}

func (o *ModelCheckOpts) defaults() {
	if o.Seed == 0 {
		o.Seed = 1995
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 2_000_000
	}
}

// ModelCheck measures, on the idle 8x8 mesh and full fat tree, the one-way
// packet latency and the steady-state inter-injection gap of the scalar
// protocol at several distances, alongside the §2.4 analytical predictions
// (TLat(d) = 4d+14 / 5d+2 and T_roundtrip = 2 TLat + T_ackproc). The paper's
// formulas describe *its* simulator; ours differs in constants but must
// match in shape: latency linear in d, gap tracking the round trip.
func ModelCheck(o ModelCheckOpts) *stats.Table {
	o.defaults()
	t := stats.NewTable("§2.4 model vs simulator: scalar round trip on idle fabrics",
		"network", "d", "one-way (sim)", "TLat model", "send gap (sim)", "RT model")
	type probe struct {
		spec NetSpec
		lat  func(int) sim.Cycle
		dsts map[int]int // distance -> destination node from node 0
	}
	probes := []probe{
		{Mesh2D(), model.MeshLat, map[int]int{1: 1, 4: 4, 7: 7, 14: 63}},
		{FullFatTree(), model.FatTreeLat, map[int]int{2: 1, 4: 4, 6: 16}},
	}
	for _, pr := range probes {
		params := model.CM5Params(pr.lat, 8)
		for _, d := range sortedKeys(pr.dsts) {
			dst := pr.dsts[d]
			oneWay, gap := measurePair(pr.spec, dst, o)
			t.Row(pr.spec.Name, d, oneWay, pr.lat(d), gap, params.RoundTrip(d))
		}
	}
	return t
}

//lint:allow(mapiter) key-collection for sorting; the sorted result is independent of iteration order
func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// measurePair sends a short scalar stream from node 0 to dst on an idle
// fabric and reports the first packet's in-fabric latency and the
// steady-state injection gap (which the one-outstanding protocol pins to
// the round trip whenever the round trip exceeds the software overheads).
func measurePair(spec NetSpec, dst int, o ModelCheckOpts) (oneWay, gap sim.Cycle) {
	const n = 6
	pkts := make([]*packet.Packet, n)
	s := Build(BuildOpts{Net: spec, Kind: NIFDY, Seed: o.Seed,
		Program: func(nd int) node.Program {
			switch nd {
			case 0:
				return func(p *node.Proc) {
					for i := 0; i < n; i++ {
						pk := &packet.Packet{ID: uint64(i + 1), Src: 0, Dst: dst,
							Words: 8, Class: packet.Request, Dialog: packet.NoDialog}
						pkts[i] = pk
						p.Send(pk)
					}
				}
			case dst:
				return func(p *node.Proc) {
					for i := 0; i < n; i++ {
						p.Recv()
					}
				}
			default:
				return nil
			}
		}})
	defer s.Close()
	s.RunUntilDone(o.MaxCycles)
	oneWay = pkts[0].DeliveredAt - pkts[0].InjectedAt
	// Steady-state gap: average of the last few inter-injection intervals.
	var total sim.Cycle
	cnt := 0
	for i := 3; i < n; i++ {
		if pkts[i] != nil && pkts[i-1] != nil && pkts[i].InjectedAt > 0 {
			total += pkts[i].InjectedAt - pkts[i-1].InjectedAt
			cnt++
		}
	}
	if cnt > 0 {
		gap = total / sim.Cycle(cnt)
	}
	return oneWay, gap
}
