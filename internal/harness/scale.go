package harness

import (
	"runtime"
	"time"

	"nifdy/internal/packet"
	"nifdy/internal/rng"
	"nifdy/internal/router"
	"nifdy/internal/sim"
	"nifdy/internal/topo"
)

// ScaleOpts parameterizes ScaleBench.
type ScaleOpts struct {
	// Cycles is the simulated-cycle budget; zero selects 20,000.
	Cycles sim.Cycle
	// Seed drives destination choice and the fabric build.
	Seed uint64
	// Shards is the engine shard count; zero selects min(GOMAXPROCS, nodes).
	Shards int
	// PoolPerNode is each injector's pre-allocated packet pool; zero
	// selects 4. The pool bounds a node's in-flight packets — injectors
	// recycle delivered packets instead of allocating on the tick path.
	PoolPerNode int
}

// ScaleResult is one ScaleBench measurement. NodeCyclesPerSec — simulated
// node-cycles per wall-clock second — is the scale metric: it normalizes
// fabric size away so a 64-node cycle-accurate run and a 100k-node
// flow-level run are directly comparable.
type ScaleResult struct {
	Name             string  `json:"name"`
	Nodes            int     `json:"nodes"`
	Cycles           int64   `json:"cycles"`
	Shards           int     `json:"shards"`
	WallNS           int64   `json:"wall_ns"`
	Delivered        int64   `json:"delivered_packets"`
	NodeCyclesPerSec float64 `json:"node_cycles_per_sec"`
}

// scaleInjector drives one node's port from inside the engine: it recycles
// every delivered packet into its pool and keeps the injection slot busy
// with uniform-random traffic while the pool lasts. No per-node goroutine,
// no allocation after build — the per-node footprint is what lets a single
// process carry 100k+ injectors. It participates in idle skipping, so a
// flow-mode fabric advances event to event instead of cycle by cycle.
type scaleInjector struct {
	pt    router.Port
	node  int
	nodes int
	r     *rng.Source
	ids   *packet.IDSource
	// pool is a fixed-capacity ring of recyclable packets: head/cnt index
	// into it, so refilling never appends (and never allocates) on the
	// tick path. Deliveries recycle into the *receiver's* pool; under the
	// uniform traffic here pools stay balanced, and a full pool simply
	// forgets the reference.
	pool      []*packet.Packet
	head, cnt int
	delivered int64
}

func (in *scaleInjector) Tick(now sim.Cycle) {
	progress := in.pt.Pump(now)
	for {
		p, ok := in.pt.Deliver(now, nil)
		if !ok {
			break
		}
		in.delivered++
		if in.cnt < len(in.pool) {
			in.pool[(in.head+in.cnt)%len(in.pool)] = p
			in.cnt++
		}
		progress = true
	}
	for in.cnt > 0 && in.pt.CanAccept(packet.Request) {
		p := in.pool[in.head]
		in.head = (in.head + 1) % len(in.pool)
		in.cnt--
		dst := in.r.Intn(in.nodes - 1)
		if dst >= in.node {
			dst++
		}
		*p = packet.Packet{ID: in.ids.Next(), Src: in.node, Dst: dst,
			Words: 8, Class: packet.Request, Kind: packet.Data}
		in.pt.StartSend(now, p)
		progress = true
	}
	// The NIFDY NIC's idle contract: sleep to the next arrival when fully
	// quiescent, to BlockedBound when holding work but stuck (a flit port
	// reports progress from Pump while mid-transmission and so stays awake;
	// a flow port's busy slot resolves at its drain bound instead).
	if in.pt.Quiet() {
		in.pt.Activity().Sleep(in.pt.NextArrivalAt())
	} else if !progress {
		in.pt.Activity().Sleep(in.pt.BlockedBound(now))
	}
}

func (in *scaleInjector) Activity() *sim.Activity { return in.pt.Activity() }

// ScaleBench measures a fabric's simulation throughput under saturation:
// every node keeps its injection slot busy with uniform-random 8-flit
// packets, delivered packets recycle into the sender's pool. It reports
// simulated node-cycles per wall second — the figure of merit the flow
// engine's 100k-node runs are gated on against the cycle-accurate baseline.
//
//lint:allow(wallclock) measuring wall-clock throughput is this function's purpose; no simulated state depends on the reading
func ScaleBench(spec NetSpec, o ScaleOpts) ScaleResult {
	if o.Cycles <= 0 {
		o.Cycles = 20_000
	}
	if o.PoolPerNode <= 0 {
		o.PoolPerNode = 4
	}
	net := spec.Build(o.Seed, topo.IfaceOptions{Seed: o.Seed})
	nodes := net.Nodes()
	shards := o.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > nodes {
		shards = nodes
	}
	eng := sim.New()
	if shards > 1 {
		eng = sim.NewParallel(shards)
	}
	shardOf := net.Partition(shards)
	net.RegisterRoutersSharded(eng, shardOf)
	inj := make([]scaleInjector, nodes)
	pkts := make([]packet.Packet, nodes*o.PoolPerNode)
	for n := 0; n < nodes; n++ {
		in := &inj[n]
		in.pt = net.Iface(n)
		in.node, in.nodes = n, nodes
		in.r = rng.NewStream(o.Seed^0x5CA1E, uint64(n))
		in.ids = packet.NewNodeIDs(n)
		in.pool = make([]*packet.Packet, o.PoolPerNode)
		in.cnt = o.PoolPerNode
		for i := range in.pool {
			in.pool[i] = &pkts[n*o.PoolPerNode+i]
		}
		eng.RegisterSharded(shardOf[n], in)
	}
	start := time.Now()
	eng.Run(o.Cycles)
	wall := time.Since(start)
	var delivered int64
	for n := range inj {
		delivered += inj[n].delivered
	}
	nodeCycles := float64(nodes) * float64(o.Cycles)
	return ScaleResult{
		Name: spec.Name, Nodes: nodes, Cycles: int64(o.Cycles),
		Shards: shards, WallNS: wall.Nanoseconds(), Delivered: delivered,
		NodeCyclesPerSec: nodeCycles / wall.Seconds(),
	}
}
