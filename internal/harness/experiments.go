package harness

import (
	"runtime"
	"sync"

	"nifdy/internal/apps/cshift"
	"nifdy/internal/apps/em3d"
	"nifdy/internal/apps/radix"
	"nifdy/internal/core"
	"nifdy/internal/node"
	"nifdy/internal/sim"
	"nifdy/internal/stats"
	"nifdy/internal/topo"
	"nifdy/internal/traffic"
)

// runParallel executes independent simulations on up to NumCPU workers.
// Each simulation is deterministic regardless of its own shard count, so
// this composes with intra-simulation sharding (SynthOpts.Shards).
func runParallel(tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	workers := runtime.NumCPU()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	// Buffer the full task list so the feeding loop never blocks: the workers
	// start draining a fully loaded, already-closed channel instead of
	// rendezvousing with the producer one task at a time.
	ch := make(chan func(), len(tasks))
	for _, f := range tasks {
		ch <- f
	}
	close(ch)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for f := range ch {
				f()
			}
		}()
	}
	wg.Wait()
}

// SynthOpts parameterizes the Figure 2/3 synthetic-traffic experiments.
type SynthOpts struct {
	// Cycles is the measurement budget; the paper uses 1,000,000.
	Cycles sim.Cycle
	// Seed drives all randomness.
	Seed uint64
	// Networks defaults to StandardNetworks.
	Networks []NetSpec
	// Kinds defaults to {Plain, BuffersOnly, NIFDY}.
	Kinds []NICKind
	// Shards is the per-simulation engine shard count: 0 selects
	// DefaultShards (min(GOMAXPROCS, nodes)), 1 forces the serial engine.
	// Results are bit-identical for any value.
	Shards int
	// Window is the conservative synchronization window W in cycles
	// (default 1, the paper's per-tick model). W is a model parameter:
	// channels gain up to W-1 cycles of latency, so delivered counts
	// depend on it — but for a fixed W they are bit-identical at every
	// shard count, and W >= 4 amortizes the sharded engine's barrier.
	Window int
}

// DefaultShards is the default intra-simulation parallelism for the figure
// entry points: one shard per available CPU, at most one per node (a single
// core thus gets the serial engine).
func DefaultShards(nodes int) int {
	s := runtime.GOMAXPROCS(0)
	if s > nodes {
		s = nodes
	}
	if s < 1 {
		s = 1
	}
	return s
}

func (o *SynthOpts) defaults() {
	if o.Cycles == 0 {
		o.Cycles = 1_000_000
	}
	if o.Seed == 0 {
		o.Seed = 1995
	}
	if o.Networks == nil {
		o.Networks = StandardNetworks()
	}
	if o.Kinds == nil {
		o.Kinds = []NICKind{Plain, BuffersOnly, NIFDY}
	}
}

// topoIfaceDefaults returns the reliable-network interface options.
func topoIfaceDefaults() topo.IfaceOptions { return topo.IfaceOptions{} }

// synthRow runs one network across the NIC kinds and returns delivered
// packet counts in kind order.
func synthRow(spec NetSpec, kinds []NICKind, mkTraffic func() traffic.Config, cycles sim.Cycle, seed uint64, shards, window int) []int64 {
	out := make([]int64, len(kinds))
	tasks := make([]func(), len(kinds))
	for ki, kind := range kinds {
		ki, kind := ki, kind
		tasks[ki] = func() {
			tcfg := mkTraffic()
			s := Build(BuildOpts{Net: spec, Kind: kind, Seed: seed,
				EngineShards: shards, Window: window,
				Program: programFromTraffic(tcfg)})
			defer s.Close()
			s.Eng.Run(cycles)
			out[ki] = s.Accepted()
		}
	}
	runParallel(tasks)
	return out
}

// programFromTraffic adapts a traffic config into a program factory bound to
// a fresh generator per simulation.
func programFromTraffic(tcfg traffic.Config) func(n int) node.Program {
	var gen *traffic.Gen
	return func(n int) node.Program {
		if gen == nil {
			// The generator needs the sim's ID source only for uniqueness
			// within the sim; a private source is fine.
			gen = traffic.NewGen(tcfg, nil)
		}
		return gen.Program(n)
	}
}

// Figure2 reproduces "packets delivered in 1,000,000 cycles, heavy
// synthetic traffic" across networks and NIC kinds.
func Figure2(o SynthOpts) *stats.Table {
	o.defaults()
	t := stats.NewTable("Figure 2: heavy synthetic traffic — packets delivered in "+itoa64(int64(o.Cycles))+" cycles",
		"network", "none", "buffers", "NIFDY", "NIFDY/none", "NIFDY/buffers")
	fillSynth(t, o, func(n int) traffic.Config {
		c := traffic.Heavy(n, o.Seed)
		c.Phases = 1 << 20 // effectively unbounded: the cycle budget binds
		return c
	})
	return t
}

// Figure3 is the light-traffic companion (Figure 3).
func Figure3(o SynthOpts) *stats.Table {
	o.defaults()
	t := stats.NewTable("Figure 3: light synthetic traffic — packets delivered in "+itoa64(int64(o.Cycles))+" cycles",
		"network", "none", "buffers", "NIFDY", "NIFDY/none", "NIFDY/buffers")
	fillSynth(t, o, func(n int) traffic.Config {
		c := traffic.Light(n, o.Seed)
		c.Phases = 1 << 20
		return c
	})
	return t
}

func fillSynth(t *stats.Table, o SynthOpts, mk func(nodes int) traffic.Config) {
	type row struct {
		name string
		vals []int64
	}
	rows := make([]row, len(o.Networks))
	tasks := make([]func(), 0, len(o.Networks))
	for i, spec := range o.Networks {
		i, spec := i, spec
		tasks = append(tasks, func() {
			nodes := spec.Build(o.Seed, topoIfaceDefaults()).Nodes()
			shards := o.Shards
			if shards == 0 {
				shards = DefaultShards(nodes)
			}
			vals := synthRow(spec, o.Kinds, func() traffic.Config { return mk(nodes) }, o.Cycles, o.Seed, shards, o.Window)
			rows[i] = row{spec.Name, vals}
		})
	}
	runParallel(tasks)
	for _, r := range rows {
		cells := []any{r.name}
		for _, v := range r.vals {
			cells = append(cells, v)
		}
		cells = append(cells, ratio(r.vals[2], r.vals[0]), ratio(r.vals[2], r.vals[1]))
		t.Row(cells...)
	}
}

// Figure4 reproduces the scalability study: normalized throughput on full
// fat trees of increasing size for varying B (left graph) and O (right
// graph), short messages, no bulk dialogs.
type Figure4Opts struct {
	Cycles sim.Cycle // default 300,000
	Seed   uint64
	Levels []int // tree sizes as 4^level; default {2,3}
	Sweep  []int // parameter values; default {2,4,8,16}
	// Shards is the per-simulation engine shard count: 0 selects
	// DefaultShards, 1 forces serial. Bit-identical for any value.
	Shards int
}

func (o *Figure4Opts) defaults() {
	if o.Cycles == 0 {
		o.Cycles = 300_000
	}
	if o.Seed == 0 {
		o.Seed = 1995
	}
	if o.Levels == nil {
		o.Levels = []int{2, 3}
	}
	if o.Sweep == nil {
		o.Sweep = []int{2, 4, 8, 16}
	}
}

// Figure4 returns two tables: throughput normalized to the no-NIFDY
// baseline, varying B (O=8) and varying O (B=8). "Short messages and no
// bulk dialogs" (§4.2) means the heavy pattern's 1-5 packet bursts with the
// bulk protocol disabled: the bursts create receiver collisions, which is
// what the OPT absorbs and the pool interleaves around; the processors also
// run with reduced software overheads so the offered load can exceed the
// fabric's capacity at every machine size.
func Figure4(o Figure4Opts) (varyB, varyO *stats.Table) {
	o.defaults()
	fastCosts := node.Costs{Send: 10, Recv: 14, Poll: 6, ReorderPenalty: 4}
	mkTraffic := func(nodes int) traffic.Config {
		c := traffic.Heavy(nodes, o.Seed)
		c.Phases = 1 << 20
		c.BulkThreshold = 0 // no bulk dialogs
		return c
	}
	headers := []string{"nodes"}
	for _, v := range o.Sweep {
		headers = append(headers, "v="+itoa64(int64(v)))
	}
	varyB = stats.NewTable("Figure 4a: normalized throughput vs pool size B (O=8, full fat tree)", headers...)
	varyO = stats.NewTable("Figure 4b: normalized throughput vs OPT size O (B=8, full fat tree)", headers...)

	for _, lvl := range o.Levels {
		spec := FatTreeSized(lvl)
		nodes := 1 << (2 * uint(lvl)) // 4^lvl
		shards := o.Shards
		if shards == 0 {
			shards = DefaultShards(nodes)
		}
		var base int64
		{
			tcfg := mkTraffic(nodes)
			s := Build(BuildOpts{Net: spec, Kind: Plain, Seed: o.Seed, Costs: fastCosts,
				EngineShards: shards,
				Program:      programFromTraffic(tcfg)})
			s.Eng.Run(o.Cycles)
			base = s.Accepted()
			s.Close()
		}
		rowB := []any{nodes}
		rowO := []any{nodes}
		type res struct{ b, o int64 }
		results := make([]res, len(o.Sweep))
		tasks := []func(){}
		for vi, v := range o.Sweep {
			vi, v := vi, v
			tasks = append(tasks, func() {
				tb := mkTraffic(nodes)
				sb := Build(BuildOpts{Net: spec, Kind: NIFDY, Seed: o.Seed, Costs: fastCosts,
					Params:       core.Config{O: 8, B: v, D: -1, W: 2},
					EngineShards: shards,
					Program:      programFromTraffic(tb)})
				sb.Eng.Run(o.Cycles)
				results[vi].b = sb.Accepted()
				sb.Close()
				to := mkTraffic(nodes)
				so := Build(BuildOpts{Net: spec, Kind: NIFDY, Seed: o.Seed, Costs: fastCosts,
					Params:       core.Config{O: v, B: 8, D: -1, W: 2},
					EngineShards: shards,
					Program:      programFromTraffic(to)})
				so.Eng.Run(o.Cycles)
				results[vi].o = so.Accepted()
				so.Close()
			})
		}
		runParallel(tasks)
		for _, r := range results {
			rowB = append(rowB, ratio(r.b, base))
			rowO = append(rowO, ratio(r.o, base))
		}
		varyB.Row(rowB...)
		varyO.Row(rowO...)
	}
	return varyB, varyO
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// --- C-shift (Figures 5 and 6) ---

// CShiftOpts parameterizes the C-shift experiments. The paper runs a
// 32-node CM-5-style network; 4-ary trees come in powers of 4, so the
// default is the 64-node (3-level) tree — documented in EXPERIMENTS.md.
type CShiftOpts struct {
	Levels     int // CM-5 tree levels; default 3 (64 nodes)
	BlockWords int // per-phase block; default 60
	Seed       uint64
	MaxCycles  sim.Cycle // safety bound; default 60,000,000
	Samples    sim.Cycle // Figure 5 sampling interval; default MaxCycles/roughly 10k samples... default 10,000
}

func (o *CShiftOpts) defaults() {
	if o.Levels == 0 {
		o.Levels = 3
	}
	if o.BlockWords == 0 {
		o.BlockWords = 60
	}
	if o.Seed == 0 {
		o.Seed = 1995
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 60_000_000
	}
	if o.Samples == 0 {
		o.Samples = 10_000
	}
}

// cshiftRun runs one C-shift configuration, returning completion cycles,
// total packets, total payload words moved, and the pending heatmap.
func cshiftRun(o CShiftOpts, kind NICKind, barriers, inOrder bool) (sim.Cycle, int, int, string) {
	spec := CM5Sized(o.Levels)
	nodes := 1 << (2 * uint(o.Levels))
	var app *cshift.App
	s := Build(BuildOpts{
		Net: spec, Kind: kind, Seed: o.Seed, PendingInterval: o.Samples,
		Program: func(n int) node.Program {
			if app == nil {
				app = cshift.New(cshift.Config{
					Nodes:      nodes,
					BlockWords: o.BlockWords,
					Barriers:   barriers,
					InOrder:    inOrder,
					Bulk:       kind == NIFDY,
				}, nil)
			}
			return app.Program(n)
		},
	})
	defer s.Close()
	ok, end := s.RunUntilDone(o.MaxCycles)
	if !ok {
		end = o.MaxCycles
	}
	payload := nodes * (nodes - 1) * o.BlockWords
	return end, app.TotalPackets(), payload, s.Pending.Heatmap()
}

// Figure5 reproduces the congestion heatmaps: pending packets per receiver
// over time, C-shift with no barriers, without and with NIFDY. The
// "without" side uses the buffers-only NIC (same total buffering as NIFDY)
// so the backlog is visible in the interfaces rather than hidden behind a
// blocked send call, matching the paper's network-resident packet counts.
func Figure5(o CShiftOpts) (without, with string) {
	o.defaults()
	var w1, w2 string
	runParallel([]func(){
		func() { _, _, _, w1 = cshiftRun(o, BuffersOnly, false, false) },
		func() { _, _, _, w2 = cshiftRun(o, NIFDY, false, true) },
	})
	return w1, w2
}

// Figure6 reproduces the C-shift throughput comparison. Throughput is
// reported in payload words per 1000 cycles: the in-order configuration
// moves the same data in fewer packets, so a packet-based rate would
// penalize exactly the effect being measured (§2.2).
func Figure6(o CShiftOpts) *stats.Table {
	o.defaults()
	t := stats.NewTable("Figure 6: C-shift on CM-5-style fat tree",
		"configuration", "cycles", "packets", "payload words", "words/1000cyc")
	type cfg struct {
		name            string
		kind            NICKind
		barriers, inOrd bool
	}
	cfgs := []cfg{
		{"none, no barriers", Plain, false, false},
		{"none, barriers", Plain, true, false},
		{"buffers, no barriers", BuffersOnly, false, false},
		{"NIFDY- (flow control only)", NIFDY, false, false},
		{"NIFDY (in-order exploited)", NIFDY, false, true},
	}
	type res struct {
		cyc   sim.Cycle
		pkts  int
		words int
	}
	results := make([]res, len(cfgs))
	tasks := []func(){}
	for i, c := range cfgs {
		i, c := i, c
		tasks = append(tasks, func() {
			cyc, pkts, words, _ := cshiftRun(o, c.kind, c.barriers, c.inOrd)
			results[i] = res{cyc, pkts, words}
		})
	}
	runParallel(tasks)
	for i, c := range cfgs {
		r := results[i]
		t.Row(c.name, r.cyc, r.pkts, r.words, 1000*float64(r.words)/float64(r.cyc))
	}
	return t
}

// --- EM3D (Figures 7 and 8) ---

// EM3DOpts parameterizes the EM3D experiments.
type EM3DOpts struct {
	Heavy     bool // Figure 8's parameters instead of Figure 7's
	Iters     int  // default 2
	Seed      uint64
	MaxCycles sim.Cycle // default 80,000,000
	Networks  []NetSpec
	// ScaleGraph divides the graph size for fast test/bench runs (>= 1).
	ScaleGraph int
}

func (o *EM3DOpts) defaults() {
	if o.Iters == 0 {
		o.Iters = 2
	}
	if o.Seed == 0 {
		o.Seed = 1995
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 80_000_000
	}
	if o.Networks == nil {
		o.Networks = StandardNetworks()
	}
	if o.ScaleGraph < 1 {
		o.ScaleGraph = 1
	}
}

// EM3D reproduces Figures 7/8: cycles per iteration for each network under
// each NIC configuration. NIFDY- uses the generic (out-of-order) message
// layer; NIFDY exploits in-order delivery. In-order fabrics use the
// in-order library for all configurations, as in the paper.
func EM3D(o EM3DOpts) *stats.Table {
	o.defaults()
	title := "Figure 7: EM3D cycles/iteration (light communication)"
	if o.Heavy {
		title = "Figure 8: EM3D cycles/iteration (heavy communication)"
	}
	t := stats.NewTable(title, "network", "none", "buffers", "NIFDY-", "NIFDY")
	type res [4]sim.Cycle
	results := make([]res, len(o.Networks))
	var tasks []func()
	for i, spec := range o.Networks {
		i, spec := i, spec
		run := func(kind NICKind, inOrder bool) sim.Cycle {
			nodes := spec.Build(o.Seed, topoIfaceDefaults()).Nodes()
			cfg := em3d.Light(nodes, o.Seed)
			if o.Heavy {
				cfg = em3d.Heavy(nodes, o.Seed)
			}
			cfg.NNodes /= o.ScaleGraph
			if cfg.NNodes < 4 {
				cfg.NNodes = 4
			}
			cfg.Iters = o.Iters
			cfg.InOrder = inOrder
			cfg.Bulk = kind == NIFDY
			var app *em3d.App
			s := Build(BuildOpts{Net: spec, Kind: kind, Seed: o.Seed,
				Program: func(n int) node.Program {
					if app == nil {
						app = em3d.New(cfg, nil)
					}
					return app.Program(n)
				}})
			defer s.Close()
			ok, end := s.RunUntilDone(o.MaxCycles)
			if !ok {
				end = o.MaxCycles
			}
			return end / sim.Cycle(o.Iters)
		}
		tasks = append(tasks,
			func() { results[i][0] = run(Plain, spec.InOrderFabric) },
			func() { results[i][1] = run(BuffersOnly, spec.InOrderFabric) },
			func() { results[i][2] = run(NIFDY, spec.InOrderFabric) }, // NIFDY-: generic library unless fabric is in-order anyway
			func() { results[i][3] = run(NIFDY, true) },
		)
	}
	runParallel(tasks)
	for i, spec := range o.Networks {
		r := results[i]
		t.Row(spec.Name, r[0], r[1], r[2], r[3])
	}
	return t
}

// --- Radix sort (Figure 9) ---

// RadixOpts parameterizes the radix-sort experiments.
type RadixOpts struct {
	Nodes     int       // default 64
	Buckets   int       // default 256 (8-bit radix)
	Delay     sim.Cycle // inter-send delay for the "with delay" variant; default 60
	Seed      uint64
	MaxCycles sim.Cycle // default 20,000,000
}

func (o *RadixOpts) defaults() {
	if o.Nodes == 0 {
		o.Nodes = 64
	}
	if o.Buckets == 0 {
		o.Buckets = 256
	}
	if o.Delay == 0 {
		o.Delay = 60
	}
	if o.Seed == 0 {
		o.Seed = 1995
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 20_000_000
	}
}

// Figure9 reproduces the scan-phase comparison across the three fat trees,
// with and without inter-send delays, with and without NIFDY.
func Figure9(o RadixOpts) *stats.Table {
	o.defaults()
	t := stats.NewTable("Figure 9: radix sort scan phase (cycles)",
		"network", "none/no delay", "none/delay", "NIFDY/no delay", "NIFDY/delay")
	specs := []NetSpec{FullFatTree(), CM5FatTree(), SFFatTree()}
	type res [4]sim.Cycle
	results := make([]res, len(specs))
	var tasks []func()
	for i, spec := range specs {
		i, spec := i, spec
		run := func(kind NICKind, delay sim.Cycle) sim.Cycle {
			cfg := radix.Config{Nodes: o.Nodes, Buckets: o.Buckets, Delay: delay, Seed: o.Seed}
			var app *radix.App
			s := Build(BuildOpts{Net: spec, Kind: kind, Seed: o.Seed,
				Program: func(n int) node.Program {
					if n >= o.Nodes {
						return nil // scan pipeline shorter than the fabric
					}
					if app == nil {
						app = radix.New(cfg, nil)
					}
					return app.ScanProgram(n)
				}})
			defer s.Close()
			ok, end := s.RunUntilDone(o.MaxCycles)
			if !ok {
				end = o.MaxCycles
			}
			return end
		}
		tasks = append(tasks,
			func() { results[i][0] = run(Plain, 0) },
			func() { results[i][1] = run(Plain, o.Delay) },
			func() { results[i][2] = run(NIFDY, 0) },
			func() { results[i][3] = run(NIFDY, o.Delay) },
		)
	}
	runParallel(tasks)
	for i, spec := range specs {
		r := results[i]
		t.Row(spec.Name, r[0], r[1], r[2], r[3])
	}
	return t
}

// RadixCoalesce measures the coalesce phase (paper: "virtually identical
// with and without NIFDY").
func RadixCoalesce(o RadixOpts) *stats.Table {
	o.defaults()
	t := stats.NewTable("Radix sort coalesce phase (cycles)", "network", "none", "NIFDY")
	spec := FullFatTree()
	run := func(kind NICKind) sim.Cycle {
		cfg := radix.Config{Nodes: o.Nodes, Buckets: o.Buckets, Seed: o.Seed}
		var app *radix.App
		s := Build(BuildOpts{Net: spec, Kind: kind, Seed: o.Seed,
			Program: func(n int) node.Program {
				if n >= o.Nodes {
					return nil
				}
				if app == nil {
					app = radix.New(cfg, nil)
				}
				return app.CoalesceProgram(n)
			}})
		defer s.Close()
		ok, end := s.RunUntilDone(o.MaxCycles)
		if !ok {
			end = o.MaxCycles
		}
		return end
	}
	var a, b sim.Cycle
	runParallel([]func(){func() { a = run(Plain) }, func() { b = run(NIFDY) }})
	t.Row(spec.Name, a, b)
	return t
}
