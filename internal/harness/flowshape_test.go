package harness

import (
	"testing"

	"nifdy/internal/traffic"
)

// ratioBand bounds flow/flit delivered-packet ratios for one network.
type ratioBand struct{ lo, hi float64 }

// TestFlowShape is the cross-fidelity gate for the flow-level fabric: every
// standard network's flow twin must reproduce the cycle-accurate engine's
// Figure 2 (heavy) and Figure 3 (light) delivered counts point for point,
// within per-network tolerance bands, across all three NIC kinds.
//
// The bands encode the fluid model's calibrated fidelity envelope. Under
// light load the fabric is latency-dominated and the twin tracks the flit
// engine closely everywhere. Under heavy load the twin is exact where
// capacity is the binding resource (fat trees, butterflies, store-and-
// forward) but optimistic where wormhole head-of-line blocking dominates —
// a blocked packet's body strands buffer and link capacity along its whole
// path, which no per-flow rate model represents. That optimism is bounded
// and topology-dependent (torus ≤ ~1.4×, 8x8 mesh ≤ ~1.5×, CM-5's thin
// upper levels ≤ ~2.6×); the bands pin it so a regression in either engine
// moves a ratio out of its band. Head-of-line loss is also exactly the
// effect NIFDY suppresses, which is why the hybrid seam exists: regions
// whose congestion matters stay flit-accurate (see DESIGN.md §8).
func TestFlowShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-fidelity sweep is slow")
	}
	const cycles = 60_000
	const seed = 1995
	kinds := []NICKind{Plain, BuffersOnly, NIFDY}
	kindName := []string{"plain", "buffers", "nifdy"}
	heavyBands := map[string]ratioBand{
		"torus 8x8":       {0.90, 1.55},
		"mesh 8x8":        {0.90, 1.75},
		"fat tree (CM-5)": {0.90, 2.90},
	}
	defaultHeavy := ratioBand{0.90, 1.30}
	lightBand := ratioBand{0.80, 1.35}

	for _, spec := range StandardNetworks() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			mkHeavy := func() traffic.Config {
				c := traffic.Heavy(64, seed)
				c.Phases = 1 << 20
				return c
			}
			mkLight := func() traffic.Config {
				c := traffic.Light(64, seed)
				c.Phases = 1 << 20
				return c
			}
			twin := FlowTwin(spec)
			flitHeavy := synthRow(spec, kinds, mkHeavy, cycles, seed, 0, 0)
			flowHeavy := synthRow(twin, kinds, mkHeavy, cycles, seed, 0, 0)
			flitLight := synthRow(spec, kinds, mkLight, cycles, seed, 0, 0)
			flowLight := synthRow(twin, kinds, mkLight, cycles, seed, 0, 0)
			t.Logf("heavy flit=%v flow=%v", flitHeavy, flowHeavy)
			t.Logf("light flit=%v flow=%v", flitLight, flowLight)

			hb, ok := heavyBands[spec.Name]
			if !ok {
				hb = defaultHeavy
			}
			check := func(load string, b ratioBand, flit, flow []int64) {
				for i := range kinds {
					if flit[i] == 0 || flow[i] == 0 {
						t.Errorf("%s %s: vacuous point (flit=%d flow=%d)",
							load, kindName[i], flit[i], flow[i])
						continue
					}
					r := float64(flow[i]) / float64(flit[i])
					if r < b.lo || r > b.hi {
						t.Errorf("%s %s: flow/flit ratio %.3f outside [%.2f, %.2f] (flit=%d flow=%d)",
							load, kindName[i], r, b.lo, b.hi, flit[i], flow[i])
					}
				}
			}
			check("heavy", hb, flitHeavy, flowHeavy)
			check("light", lightBand, flitLight, flowLight)

			// The paper's Figure 2 ordering must survive the change of
			// fidelity: on the flow twin NIFDY may not lose to the plain NIC
			// and must stay within a hair of buffers-only, same claims the
			// flit engine is held to in papershape_test.go (the fluid model
			// compresses the gaps — it under-represents the blocking NIFDY
			// prevents — but may not inverts the order).
			plain, buffers, nifdy := flowHeavy[0], flowHeavy[1], flowHeavy[2]
			if float64(nifdy) < 0.95*float64(plain) {
				t.Errorf("flow twin heavy: NIFDY %d below plain %d", nifdy, plain)
			}
			if float64(nifdy) < 0.94*float64(buffers) {
				t.Errorf("flow twin heavy: NIFDY %d far below buffers-only %d", nifdy, buffers)
			}
		})
	}
}
