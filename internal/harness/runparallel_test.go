package harness

import (
	"sync/atomic"
	"testing"
)

func TestRunParallelExecutesAll(t *testing.T) {
	var n atomic.Int64
	var tasks []func()
	for i := 0; i < 100; i++ {
		tasks = append(tasks, func() { n.Add(1) })
	}
	runParallel(tasks)
	if n.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", n.Load())
	}
}

func TestRunParallelFewerTasksThanWorkers(t *testing.T) {
	// Exactly one task: fewer tasks than CPUs. The buffered feed must not
	// deadlock and the task must run exactly once.
	var n atomic.Int64
	runParallel([]func(){func() { n.Add(1) }})
	if n.Load() != 1 {
		t.Fatalf("single task ran %d times", n.Load())
	}
}

func TestRunParallelEmpty(t *testing.T) {
	runParallel(nil)        // must return immediately
	runParallel([]func(){}) // and for an empty non-nil slice
}
