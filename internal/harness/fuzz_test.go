package harness

import (
	"os"
	"strconv"
	"testing"

	"nifdy/internal/sim"
)

// envInt reads a positive integer override, for the check-deep target.
func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

// TestFuzzSweepClean drives randomized (topology, NIC, parameter corner,
// traffic, shard count) configurations with every invariant monitor armed.
// Defaults keep the run small; `make check-deep` scales it up via
// NIFDY_FUZZ_TRIALS / NIFDY_FUZZ_PACKETS / NIFDY_FUZZ_SEED.
func TestFuzzSweepClean(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	o := FuzzOpts{
		Trials:  envInt("NIFDY_FUZZ_TRIALS", trials),
		Packets: envInt("NIFDY_FUZZ_PACKETS", 0),
		Seed:    uint64(envInt("NIFDY_FUZZ_SEED", 20260806)),
	}
	// Three in-process shard counts plus the default multi-process column;
	// the modern-fabric trials (fixed rotation) skip the dist column.
	want := 0
	for i := 0; i < o.Trials; i++ {
		want += 3
		if fuzzFabricFor(i) == "" {
			want++
		}
	}
	res := FuzzSweep(o)
	if res.Runs != want {
		t.Fatalf("ran %d simulations, want %d", res.Runs, want)
	}
	for _, f := range res.Failures {
		t.Errorf("%s", f)
	}
}

// TestFuzzSweepShapes pins the sweep's own plumbing: a tiny sweep runs the
// requested trial x shard matrix and reports per-run metadata.
func TestFuzzSweepShapes(t *testing.T) {
	res := FuzzSweep(FuzzOpts{Trials: 1, Shards: []int{1}, Procs: []int{}, Seed: 7,
		Packets: 4, MaxCycles: 400_000, Interval: 64})
	if res.Runs != 1 {
		t.Fatalf("runs = %d", res.Runs)
	}
	for _, f := range res.Failures {
		t.Errorf("%s", f)
	}
}

var _ = sim.Cycle(0)
