package harness

import (
	"fmt"

	"nifdy/internal/core"
	"nifdy/internal/flow"
	"nifdy/internal/topo"
)

// FlowTwin returns spec's flow-level twin: the same NIFDY parameters over a
// bandwidth-sharing fabric sized from the flit network's measured
// characteristics (link speed, hop latency, distances, bisection, per-node
// buffering). The flit donor is built once per twin construction just to
// take Chars — cheap at the seed sizes where twins are compared point for
// point against the cycle-accurate engine.
func FlowTwin(spec NetSpec) NetSpec {
	out := spec
	out.Name = spec.Name + " flow"
	base := spec.Build
	out.Build = func(seed uint64, o topo.IfaceOptions) topo.Network {
		ch := base(seed, o).Chars()
		return flow.New(flow.FromChars(ch, o))
	}
	out.InOrderFabric = true // each (src, dst, class) stream is FIFO by construction
	return out
}

// HybridTwin embeds spec's flit fabric as the hot region [0, K) of a
// flow-level fabric spanning totalNodes: hot-to-hot traffic stays
// cycle-accurate, everything else rides the flow model. The flow side's
// bisection scales with the node ratio so the cold bulk is not throttled by
// the hot region's cut.
func HybridTwin(spec NetSpec, totalNodes int) NetSpec {
	out := spec
	out.Name = spec.Name + " hybrid"
	base := spec.Build
	out.Build = func(seed uint64, o topo.IfaceOptions) topo.Network {
		sub := base(seed, o)
		ch := sub.Chars()
		if totalNodes < ch.Nodes {
			panic(fmt.Sprintf("harness: hybrid total %d below hot region %d", totalNodes, ch.Nodes))
		}
		fcfg := flow.FromChars(ch, o)
		fcfg.Name = ch.Name + " hybrid"
		fcfg.Nodes = totalNodes
		fcfg.BisectionFPC = ch.BisectionFPC * float64(totalNodes) / float64(ch.Nodes)
		return flow.NewHybrid(sub, flow.New(fcfg))
	}
	return out
}

// FlowMeshSized is an x-by-y-node flow-level mesh with analytically derived
// characteristics — the constructor for the 100k+ node scaling runs, where
// building (or all-pairs measuring) a flit mesh is not feasible.
func FlowMeshSized(x, y int) NetSpec {
	return NetSpec{
		Name: fmt.Sprintf("mesh %dx%d flow", x, y),
		Build: func(seed uint64, o topo.IfaceOptions) topo.Network {
			return flow.New(flow.MeshConfig(x, y, o))
		},
		Params:        core.Config{O: 4, B: 4, D: 1, W: 2},
		InOrderFabric: true,
	}
}

// FlowFatTreeSized is a 4^levels-node flow-level full fat tree with
// analytically derived characteristics.
func FlowFatTreeSized(levels int) NetSpec {
	return NetSpec{
		Name: fmt.Sprintf("fat tree 4^%d flow", levels),
		Build: func(seed uint64, o topo.IfaceOptions) topo.Network {
			return flow.New(flow.FatTreeConfig(levels, o))
		},
		Params:        core.Config{O: 8, B: 8, D: 1, W: 4},
		InOrderFabric: true,
	}
}
