package harness

import (
	"testing"

	"nifdy/internal/traffic"
)

// Modern-fabric shape regressions (DESIGN.md §11): encode the scenario pack's
// headline claims as assertions at a reduced 9x9 / 48-way scale whose shapes
// match the 17x17 / 256-way defaults. Shapes — who wins and on which metric —
// are the claim; absolute counts are not.

// fabricTestOpts is the reduced-scale configuration shared by the shape and
// determinism tests. 48 fan-in senders leave 32 bystanders for the incast
// background matching, the same sender:background ratio as the default scale.
func fabricTestOpts() FabricOpts {
	return FabricOpts{Width: 9, Height: 9, FanIn: 48, Cycles: 40_000}
}

// fabricByKind indexes one scenario's points by NIC kind name.
func fabricByKind(t *testing.T, pts []FabricPoint, scenario string) map[string]FabricPoint {
	t.Helper()
	out := map[string]FabricPoint{}
	for _, p := range pts {
		if p.Scenario != scenario {
			continue
		}
		if _, dup := out[p.Kind]; dup {
			t.Fatalf("duplicate %s point for kind %s", scenario, p.Kind)
		}
		out[p.Kind] = p
	}
	return out
}

// TestFabricIncastShapes asserts the incast headline: under fan-in plus
// background load on lossless wires, NIFDY's end-to-end admission control
// delivers strictly more than the plain NIC, PFC's hop-by-hop pauses, and
// DCQCN's rate control. The fan-in itself is sink-bound for every kind — the
// margin is the background traffic that indiscriminate backpressure collapses
// and per-destination windows protect (§1.1).
func TestFabricIncastShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell fabric run")
	}
	o := fabricTestOpts()
	o.Scenarios = []traffic.FabricScenario{
		traffic.IncastScenario(o.Width, o.Height, o.FanIn, 1995),
	}
	o.Lossy = []bool{false}
	by := fabricByKind(t, FabricExperiment(o), "incast")
	nifdy := by[NIFDY.String()]
	for _, base := range []NICKind{Plain, PFC, DCQCN} {
		b := by[base.String()]
		if nifdy.Delivered <= b.Delivered {
			t.Errorf("incast: NIFDY delivered %d <= %s %d", nifdy.Delivered, b.Kind, b.Delivered)
		}
	}
	if p := by[Plain.String()]; nifdy.Fairness <= p.Fairness {
		t.Errorf("incast: NIFDY fairness %.3f <= plain %.3f", nifdy.Fairness, p.Fairness)
	}
}

// TestFabricVictimSpreadShapes asserts the congestion-spreading claims. The
// victim flows share every link of the hot column without targeting the sink:
// total delivered ties near the sink's service bound for every kind, but
// NIFDY's fairness is higher because the victims keep their share. The spread
// flows cross only the feeder rows: NIFDY delivers strictly more in total
// because the hotspot's backpressure never reaches them.
func TestFabricVictimSpreadShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell fabric run")
	}
	o := fabricTestOpts()
	o.Scenarios = []traffic.FabricScenario{
		traffic.VictimScenario(o.Width, o.Height, o.FanIn, 1995),
		traffic.SpreadScenario(o.Width, o.Height, o.FanIn, 1995),
	}
	o.Kinds = []NICKind{Plain, NIFDY}
	o.Lossy = []bool{false}
	pts := FabricExperiment(o)

	victim := fabricByKind(t, pts, "victim")
	vn, vp := victim[NIFDY.String()], victim[Plain.String()]
	if vn.Fairness <= vp.Fairness {
		t.Errorf("victim: NIFDY fairness %.3f <= plain %.3f", vn.Fairness, vp.Fairness)
	}
	// The fan-in pins total delivered to the sink's service rate; NIFDY must
	// not pay for its fairness with aggregate throughput.
	if 10*vn.Delivered < 9*vp.Delivered {
		t.Errorf("victim: NIFDY delivered %d well below plain %d", vn.Delivered, vp.Delivered)
	}

	spread := fabricByKind(t, pts, "spread")
	sn, sp := spread[NIFDY.String()], spread[Plain.String()]
	if sn.Delivered <= sp.Delivered {
		t.Errorf("spread: NIFDY delivered %d <= plain %d", sn.Delivered, sp.Delivered)
	}
	if sn.Fairness <= sp.Fairness {
		t.Errorf("spread: NIFDY fairness %.3f <= plain %.3f", sn.Fairness, sp.Fairness)
	}
}

// TestFabricShardIdentity pins the acceptance requirement that every fabric
// metric is bit-identical across engine shard counts {1, 2, 4}, on both wire
// conditions — the lossy column's seeded drop streams are part of the
// deterministic state.
func TestFabricShardIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell fabric run")
	}
	o := fabricTestOpts()
	o.Cycles = 20_000
	sc := traffic.IncastScenario(o.Width, o.Height, o.FanIn, 1995)
	for _, lossy := range []bool{false, true} {
		var ref FabricPoint
		for i, shards := range []int{1, 2, 4} {
			o.Shards = shards
			pt := FabricCell(o, sc, NIFDY, lossy)
			if pt.Delivered == 0 {
				t.Fatalf("lossy=%v shards=%d delivered 0 packets", lossy, shards)
			}
			if i == 0 {
				ref = pt
				continue
			}
			if pt != ref {
				t.Errorf("lossy=%v: shards=%d point %+v != shards=1 point %+v", lossy, shards, pt, ref)
			}
		}
	}
}
