package harness

import (
	"nifdy/internal/core"
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/sim"
	"nifdy/internal/stats"
	"nifdy/internal/traffic"
)

// LossyOpts parameterizes the §6.2 lossy-network extension experiment.
type LossyOpts struct {
	Drops     []float64 // drop probabilities; default {0, 0.01, 0.05, 0.1}
	Seed      uint64
	Messages  int       // messages per node; default 20
	Timeout   sim.Cycle // retransmission timeout; default 3000
	MaxCycles sim.Cycle // default 40,000,000
}

func (o *LossyOpts) defaults() {
	if o.Drops == nil {
		o.Drops = []float64{0, 0.01, 0.05, 0.1}
	}
	if o.Seed == 0 {
		o.Seed = 1995
	}
	if o.Messages == 0 {
		o.Messages = 20
	}
	if o.Timeout == 0 {
		o.Timeout = 3000
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 40_000_000
	}
}

// ExtLossy runs NIFDY with retransmission over an increasingly lossy mesh
// and reports completion time, retransmissions, and duplicates discarded —
// the §6.2 claim is exactly-once delivery with graceful degradation.
func ExtLossy(o LossyOpts) *stats.Table {
	o.defaults()
	t := stats.NewTable("§6.2 extension: NIFDY over a lossy network (8x8 mesh)",
		"drop prob", "cycles", "sent", "delivered", "retransmits", "dups discarded", "done")
	type res struct {
		cyc                   sim.Cycle
		sent, acc, retx, dups int64
		done                  bool
	}
	results := make([]res, len(o.Drops))
	tasks := make([]func(), len(o.Drops))
	for i, dp := range o.Drops {
		i, dp := i, dp
		tasks[i] = func() {
			spec := Mesh2D()
			tcfg := traffic.Heavy(64, o.Seed)
			tcfg.Phases = 1
			tcfg.PacketsPerPhase = o.Messages
			s := Build(BuildOpts{
				Net: spec, Kind: NIFDY, Seed: o.Seed, Drop: dp,
				Params:  core.Config{O: 4, B: 4, D: 1, W: 2, Retransmit: true, RetransmitTimeout: o.Timeout},
				Program: programFromTraffic(tcfg),
			})
			defer s.Close()
			done, _ := s.RunUntilDone(o.MaxCycles)
			// Programs finish when their last packet enters the NIC; keep
			// the receivers pulling until every retransmission lands and the
			// NICs drain, so "delivered" really means exactly-once delivery
			// of everything sent.
			drained := s.Eng.RunUntil(func() bool {
				now := s.Eng.Now()
				idle := true
				for _, nc := range s.NICs {
					for {
						if _, ok := nc.Recv(now); !ok {
							break
						}
					}
					if !nc.Idle() {
						idle = false
					}
				}
				return idle
			}, o.MaxCycles)
			agg := s.AggregateStats()
			results[i] = res{s.Eng.Now(), agg.Sent, agg.Accepted, agg.Retransmits, agg.Duplicates, done && drained}
		}
	}
	runParallel(tasks)
	for i, dp := range o.Drops {
		r := results[i]
		t.Row(dp, r.cyc, r.sent, r.acc, r.retx, r.dups, r.done)
	}
	return t
}

// AckOpts parameterizes the ack-strategy ablations (footnote 2, §2.4.2,
// §6.1).
type AckOpts struct {
	Cycles sim.Cycle // default 400,000
	Seed   uint64
}

func (o *AckOpts) defaults() {
	if o.Cycles == 0 {
		o.Cycles = 400_000
	}
	if o.Seed == 0 {
		o.Seed = 1995
	}
}

// ExtAckStrategies compares NIFDY variants: ack on processor accept
// (default) vs ack on arrival; combined W/2 bulk acks vs per-packet; and
// piggybacked acks under request-reply traffic.
func ExtAckStrategies(o AckOpts) *stats.Table {
	o.defaults()
	// The full fat tree's tuned window (W=4) separates combined (one ack
	// per W/2=2 packets) from per-packet acknowledgment; the CM-5 tree's
	// W=2 would make the two identical.
	t := stats.NewTable("Ack strategy ablations (heavy traffic, full fat tree)",
		"variant", "packets delivered", "acks on wire")
	spec := FullFatTree()
	type variant struct {
		name string
		cfg  core.Config
	}
	base := spec.Params
	onArr := base
	onArr.AckOnArrival = true
	perPkt := base
	perPkt.PerPacketBulkAcks = true
	variants := []variant{
		{"ack on accept (default)", base},
		{"ack on arrival (footnote 2)", onArr},
		{"per-packet bulk acks (§2.4.2)", perPkt},
	}
	type res struct{ acc, acks int64 }
	results := make([]res, len(variants))
	tasks := make([]func(), len(variants))
	for i, v := range variants {
		i, v := i, v
		tasks[i] = func() {
			tcfg := traffic.Heavy(64, o.Seed)
			tcfg.Phases = 1 << 20
			s := Build(BuildOpts{Net: spec, Kind: NIFDY, Seed: o.Seed,
				Params: v.cfg, Program: programFromTraffic(tcfg)})
			defer s.Close()
			s.Eng.Run(o.Cycles)
			agg := s.AggregateStats()
			results[i] = res{agg.Accepted, agg.AcksSent}
		}
	}
	runParallel(tasks)
	for i, v := range variants {
		t.Row(v.name, results[i].acc, results[i].acks)
	}
	return t
}

// ExtPiggyback measures ack traffic with and without §6.1 piggybacking
// under request-reply load on the full fat tree.
func ExtPiggyback(o AckOpts) *stats.Table {
	o.defaults()
	t := stats.NewTable("§6.1 extension: piggybacked acks (request-reply load)",
		"variant", "replies completed", "standalone acks on wire")
	run := func(piggy bool) (int64, int64) {
		spec := FullFatTree()
		params := spec.Params
		params.Piggyback = piggy
		const pairs = 32 // node i <-> node i+32 request/reply
		var seqs [64]uint64
		s := Build(BuildOpts{Net: spec, Kind: NIFDY, Seed: o.Seed, Params: params,
			Program: func(n int) node.Program {
				if n < pairs {
					return func(p *node.Proc) {
						var ids packet.IDSource
						for {
							p.Send(&packet.Packet{ID: uint64(n)<<32 | ids.Next(),
								Src: n, Dst: n + pairs, Words: 6,
								Class: packet.Request, Dialog: packet.NoDialog})
							p.Recv() // wait for the reply
							seqs[n]++
						}
					}
				}
				return func(p *node.Proc) {
					var ids packet.IDSource
					for {
						req := p.Recv()
						p.Send(&packet.Packet{ID: uint64(n)<<32 | ids.Next(),
							Src: n, Dst: req.Src, Words: 6,
							Class: packet.Reply, Dialog: packet.NoDialog})
					}
				}
			}})
		defer s.Close()
		s.Eng.Run(o.Cycles)
		var completed int64
		for _, v := range seqs {
			completed += int64(v)
		}
		// Standalone acks = ack packets that physically traveled.
		var wire int64
		for n := 0; n < 64; n++ {
			inj, _, _ := s.Net.Iface(n).Stats()
			wire += inj
		}
		agg := s.AggregateStats()
		wire -= agg.Injected // subtract data packets
		return completed, wire
	}
	type res struct{ done, acks int64 }
	var plain, piggy res
	runParallel([]func(){
		func() { plain.done, plain.acks = run(false) },
		func() { piggy.done, piggy.acks = run(true) },
	})
	t.Row("standalone acks", plain.done, plain.acks)
	t.Row("piggybacked (§6.1)", piggy.done, piggy.acks)
	return t
}

// ExtAdaptiveMesh is the §6.3 future-work study: dimension-order versus
// west-first adaptive routing on the 8x8 mesh, with and without NIFDY,
// under heavy synthetic traffic. The paper conjectured that "adding the
// admission control and in-order delivery of NIFDY may help adaptive
// routing reach its potential".
func ExtAdaptiveMesh(o AckOpts) *stats.Table {
	o.defaults()
	t := stats.NewTable("§6.3 extension: adaptive routing on the mesh (heavy traffic)",
		"routing", "none", "buffers", "NIFDY")
	specs := []NetSpec{Mesh2D(), AdaptiveMesh2D()}
	kinds := []NICKind{Plain, BuffersOnly, NIFDY}
	results := make([][3]int64, len(specs))
	var tasks []func()
	for i, spec := range specs {
		for k, kind := range kinds {
			i, k, spec, kind := i, k, spec, kind
			tasks = append(tasks, func() {
				tcfg := traffic.Heavy(64, o.Seed)
				tcfg.Phases = 1 << 20
				s := Build(BuildOpts{Net: spec, Kind: kind, Seed: o.Seed,
					Program: programFromTraffic(tcfg)})
				defer s.Close()
				s.Eng.Run(o.Cycles)
				results[i][k] = s.Accepted()
			})
		}
	}
	runParallel(tasks)
	for i, spec := range specs {
		t.Row(spec.Name, results[i][0], results[i][1], results[i][2])
	}
	return t
}

// ExtHotspot studies the hot-spot congestion source of §1.1: a fraction of
// all messages converge on one receiver while the rest stay uniform. NIFDY
// limits each sender to one outstanding packet toward the saturated node,
// so the hot spot stops spilling congestion onto bystander traffic.
func ExtHotspot(o AckOpts) *stats.Table {
	o.defaults()
	t := stats.NewTable("§1.1 hot-spot study: heavy traffic with a hot receiver (8x8 mesh)",
		"hotspot share", "none", "buffers", "NIFDY", "bystander none", "bystander NIFDY", "bystander ratio")
	kinds := []NICKind{Plain, BuffersOnly, NIFDY}
	shares := []float64{0, 0.1, 0.25}
	type res struct{ total, bystander int64 }
	results := make([][3]res, len(shares))
	var tasks []func()
	for i, share := range shares {
		for k, kind := range kinds {
			i, k, share, kind := i, k, share, kind
			tasks = append(tasks, func() {
				tcfg := traffic.Heavy(64, o.Seed)
				tcfg.Phases = 1 << 20
				tcfg.HotspotProb = share
				tcfg.HotspotNode = 27 // interior node: worst-case mesh hot spot
				s := Build(BuildOpts{Net: Mesh2D(), Kind: kind, Seed: o.Seed,
					Program: programFromTraffic(tcfg)})
				defer s.Close()
				s.Eng.Run(o.Cycles)
				total := s.Accepted()
				hot := s.NICs[27].Stats().Accepted
				results[i][k] = res{total, total - hot}
			})
		}
	}
	runParallel(tasks)
	for i, share := range shares {
		r := results[i]
		t.Row(share, r[0].total, r[1].total, r[2].total,
			r[0].bystander, r[2].bystander, ratio(r[2].bystander, r[0].bystander))
	}
	return t
}

// ExtFaults studies the fault congestion source of §1.1: top-level routers
// of the full fat tree are disconnected, shrinking the bisection, while the
// adaptive up-routing steers around them. NIFDY's admission control adapts
// to the reduced capacity without any reconfiguration.
func ExtFaults(o AckOpts) *stats.Table {
	o.defaults()
	t := stats.NewTable("§1.1 fault study: full fat tree with dead top-level routers",
		"dead top routers", "none", "buffers", "NIFDY", "NIFDY/none")
	kinds := []NICKind{Plain, BuffersOnly, NIFDY}
	kills := []int{0, 4, 8}
	results := make([][3]int64, len(kills))
	var tasks []func()
	for i, kill := range kills {
		for k, kind := range kinds {
			i, k, kill, kind := i, k, kill, kind
			tasks = append(tasks, func() {
				spec := FaultyFatTree(kill)
				tcfg := traffic.Heavy(64, o.Seed)
				tcfg.Phases = 1 << 20
				s := Build(BuildOpts{Net: spec, Kind: kind, Seed: o.Seed,
					Program: programFromTraffic(tcfg)})
				defer s.Close()
				s.Eng.Run(o.Cycles)
				results[i][k] = s.Accepted()
			})
		}
	}
	runParallel(tasks)
	for i, kill := range kills {
		r := results[i]
		t.Row(kill, r[0], r[1], r[2], ratio(r[2], r[0]))
	}
	return t
}
