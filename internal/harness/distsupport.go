package harness

import (
	"fmt"

	"nifdy/internal/core"
	"nifdy/internal/dist"
)

// distFeatureErr reports the first feature of an already-defaulted
// (params resolved, fabric-baseline kinds applied) option set that the
// distributed runner cannot host, wrapping dist.ErrUnsupportedFeature.
func distFeatureErr(opts BuildOpts, params core.Config) error {
	if opts.Drop > 0 || params.Retransmit || params.DialogTakeover > 0 {
		return fmt.Errorf("harness: Drop/Retransmit/DialogTakeover: %w", dist.ErrUnsupportedFeature)
	}
	if opts.Fabric.PFC.Enable || opts.Fabric.ECN.Enable || opts.Fabric.Lossy() {
		return fmt.Errorf("harness: fabric baselines (PFC/ECN/lossy wires): %w", dist.ErrUnsupportedFeature)
	}
	return nil
}

// CheckDistSupport reports whether opts describes a simulation the
// distributed runner can host, applying the same parameter defaulting and
// fabric-kind implication as Build. A nil error means Build(opts) with a
// Dist worker will not reject the feature set; otherwise the error wraps
// dist.ErrUnsupportedFeature (classify with errors.Is).
func CheckDistSupport(opts BuildOpts) error {
	params := opts.Params
	if isZeroParams(params) {
		params = opts.Net.Params
	}
	//lint:allow(kindswitch) mirrors Build: only the fabric-baseline kinds imply a fabric feature
	switch opts.Kind {
	case PFC:
		opts.Fabric.PFC.Enable = true
	case DCQCN:
		opts.Fabric.ECN.Enable = true
	}
	return distFeatureErr(opts, params)
}

// Validate checks the spec against the distributed runner's feature set
// before any worker is launched: the fabric must be a flit-accurate network
// the codec knows by name, and the NIC kind must not imply features the
// codec cannot carry. Errors wrap dist.ErrUnsupportedFeature.
func (sp *DistSpec) Validate() error {
	mk, ok := distNets[sp.Net]
	if !ok {
		return fmt.Errorf("harness: fabric %q is not a distributed-runner fabric: %w",
			sp.Net, dist.ErrUnsupportedFeature)
	}
	return CheckDistSupport(BuildOpts{
		Net:  mk(),
		Kind: NICKind(sp.Kind),
		Params: core.Config{
			O: sp.O, B: sp.B, D: sp.D, W: sp.W,
			AckOnArrival: sp.AckOnArrival,
		},
	})
}
