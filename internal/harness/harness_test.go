package harness

import (
	"strings"
	"testing"

	"nifdy/internal/core"
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/traffic"
)

// fastNets is a reduced network list for quick experiment smoke tests.
func fastNets() []NetSpec {
	return []NetSpec{FullFatTree(), Mesh2D()}
}

func TestBuildKinds(t *testing.T) {
	for _, kind := range []NICKind{Plain, BuffersOnly, NIFDY} {
		s := Build(BuildOpts{Net: Mesh2D(), Kind: kind, Seed: 1})
		if len(s.NICs) != 64 {
			t.Fatalf("%v: %d NICs", kind, len(s.NICs))
		}
		s.Eng.Run(100) // must tick cleanly with no programs
		s.Close()
	}
}

func TestBuildUsesSpecParams(t *testing.T) {
	s := Build(BuildOpts{Net: Mesh2D(), Kind: NIFDY, Seed: 1})
	u := s.NICs[0].(*core.NIFDY)
	o, b, d, w := u.Params()
	if o != 4 || b != 4 || d != 1 || w != 2 {
		t.Fatalf("params = %d %d %d %d", o, b, d, w)
	}
	s.Close()
}

func TestBuildParamOverride(t *testing.T) {
	s := Build(BuildOpts{Net: Mesh2D(), Kind: NIFDY, Seed: 1,
		Params: core.Config{O: 2, B: 2, D: 1, W: 2}})
	u := s.NICs[0].(*core.NIFDY)
	o, b, _, _ := u.Params()
	if o != 2 || b != 2 {
		t.Fatalf("override ignored: O=%d B=%d", o, b)
	}
	s.Close()
}

func TestBuffersOnlySizing(t *testing.T) {
	// Mesh params: O=4,B=4,D=1,W=2, ArrBuf 2 -> total 8 buffers.
	if got := Mesh2D().Params.TotalBuffers(); got != 8 {
		t.Fatalf("mesh total buffers = %d", got)
	}
}

func TestSyntheticTrafficRuns(t *testing.T) {
	tcfg := traffic.Heavy(64, 7)
	tcfg.Phases = 1 << 20
	s := Build(BuildOpts{Net: Mesh2D(), Kind: NIFDY, Seed: 7,
		Program: programFromTraffic(tcfg)})
	defer s.Close()
	s.Eng.Run(40_000)
	if s.Accepted() == 0 {
		t.Fatal("no packets delivered under heavy traffic")
	}
}

func TestFigure2Shape(t *testing.T) {
	tbl := Figure2(SynthOpts{Cycles: 30_000, Networks: fastNets()})
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	out := tbl.String()
	if !strings.Contains(out, "mesh 8x8") || !strings.Contains(out, "fat tree (full)") {
		t.Fatalf("missing rows:\n%s", out)
	}
}

func TestFigure3Shape(t *testing.T) {
	tbl := Figure3(SynthOpts{Cycles: 30_000, Networks: []NetSpec{Mesh2D()}})
	if tbl.NumRows() != 1 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestHeavyTrafficNIFDYBeatsPlainOnMesh(t *testing.T) {
	// The paper's headline claim at reduced scale: on the low-bisection
	// mesh under heavy traffic, NIFDY delivers more packets than the plain
	// NIC in the same cycle budget.
	run := func(kind NICKind) int64 {
		tcfg := traffic.Heavy(64, 3)
		tcfg.Phases = 1 << 20
		s := Build(BuildOpts{Net: Mesh2D(), Kind: kind, Seed: 3,
			Program: programFromTraffic(tcfg)})
		defer s.Close()
		s.Eng.Run(100_000)
		return s.Accepted()
	}
	plain, nifdy := run(Plain), run(NIFDY)
	if nifdy <= plain {
		t.Fatalf("NIFDY %d <= plain %d on heavy mesh traffic", nifdy, plain)
	}
}

func TestFigure4Shape(t *testing.T) {
	b, o := Figure4(Figure4Opts{Cycles: 25_000, Levels: []int{2}, Sweep: []int{2, 8}})
	if b.NumRows() != 1 || o.NumRows() != 1 {
		t.Fatalf("rows: %d %d", b.NumRows(), o.NumRows())
	}
}

func TestFigure5HeatmapsDiffer(t *testing.T) {
	without, with := Figure5(CShiftOpts{Levels: 2, BlockWords: 60, MaxCycles: 3_000_000, Samples: 400})
	if without == with {
		t.Fatal("heatmaps identical with and without NIFDY")
	}
	if !strings.Contains(without, "|") || !strings.Contains(with, "|") {
		t.Fatal("heatmaps malformed")
	}
}

func TestFigure6Shape(t *testing.T) {
	tbl := Figure6(CShiftOpts{Levels: 2, BlockWords: 20, MaxCycles: 3_000_000})
	if tbl.NumRows() != 5 {
		t.Fatalf("rows = %d\n%s", tbl.NumRows(), tbl)
	}
}

func TestEM3DShape(t *testing.T) {
	tbl := EM3D(EM3DOpts{Networks: []NetSpec{FullFatTree()}, ScaleGraph: 20, Iters: 1, MaxCycles: 20_000_000})
	if tbl.NumRows() != 1 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestFigure9RunsAndNIFDYHelpsWithoutDelay(t *testing.T) {
	tbl := Figure9(RadixOpts{Nodes: 16, Buckets: 32, MaxCycles: 10_000_000})
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestRadixCoalesceRuns(t *testing.T) {
	tbl := RadixCoalesce(RadixOpts{Nodes: 16, Buckets: 32, MaxCycles: 10_000_000})
	if tbl.NumRows() != 1 {
		t.Fatal("no row")
	}
}

func TestTable2(t *testing.T) {
	out := Table2().String()
	for _, want := range []string{"T_send", "40", "22", "60"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3(t *testing.T) {
	tbl := Table3(1)
	if tbl.NumRows() != len(StandardNetworks()) {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	out := tbl.String()
	if !strings.Contains(out, "butterfly") {
		t.Fatalf("missing butterfly:\n%s", out)
	}
}

func TestTable3SweepOrdersByScore(t *testing.T) {
	res := Table3Sweep(Mesh2D(), SweepOpts{Cycles: 20_000, Os: []int{2, 8}, Bs: []int{4}, Ws: []int{2}})
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	if res[0].Delivered < res[1].Delivered {
		t.Fatal("sweep results not sorted descending")
	}
}

func TestExtLossyExactlyOnce(t *testing.T) {
	tbl := ExtLossy(LossyOpts{Drops: []float64{0, 0.05}, Messages: 5, MaxCycles: 30_000_000})
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	out := tbl.String()
	if strings.Contains(out, "false") {
		t.Fatalf("lossy run did not complete:\n%s", out)
	}
}

func TestExtAckStrategiesShape(t *testing.T) {
	tbl := ExtAckStrategies(AckOpts{Cycles: 40_000})
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestExtPiggybackReducesAcks(t *testing.T) {
	tbl := ExtPiggyback(AckOpts{Cycles: 60_000})
	out := tbl.String()
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d:\n%s", tbl.NumRows(), out)
	}
}

func TestNICKindString(t *testing.T) {
	if Plain.String() != "none" || BuffersOnly.String() != "buffers" || NIFDY.String() != "NIFDY" {
		t.Fatal("kind strings")
	}
	if NICKind(9).String() == "" {
		t.Fatal("unknown kind")
	}
}

func TestStandardNetworksBuild(t *testing.T) {
	for _, spec := range StandardNetworks() {
		net := spec.Build(1, topoIfaceDefaults())
		if net.Nodes() != 64 {
			t.Fatalf("%s: %d nodes", spec.Name, net.Nodes())
		}
	}
}

func TestSimDoneAndIdleProgram(t *testing.T) {
	s := Build(BuildOpts{Net: Mesh2D(), Kind: NIFDY, Seed: 1,
		Program: func(n int) node.Program {
			return func(p *node.Proc) { p.Consume(10) }
		}})
	defer s.Close()
	ok, end := s.RunUntilDone(1000)
	if !ok || end > 100 {
		t.Fatalf("done=%v at %d", ok, end)
	}
}

var _ = packet.NoDialog

func TestModelCheckShape(t *testing.T) {
	tbl := ModelCheck(ModelCheckOpts{})
	if tbl.NumRows() != 7 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	// Assert the headline shape directly on fresh measurements: latency
	// rises linearly with distance on the mesh at ~4 cycles/hop (the
	// paper's slope), and the scalar send gap always exceeds the one-way
	// latency (it contains the full round trip).
	ow1, _ := measurePair(Mesh2D(), 1, ModelCheckOpts{Seed: 2, MaxCycles: 1_000_000})
	ow14, gap14 := measurePair(Mesh2D(), 63, ModelCheckOpts{Seed: 2, MaxCycles: 1_000_000})
	slope := float64(ow14-ow1) / 13
	if slope < 3 || slope > 6 {
		t.Fatalf("mesh latency slope %.2f cycles/hop, want ~4", slope)
	}
	if gap14 <= ow14 {
		t.Fatalf("send gap %d not above one-way latency %d", gap14, ow14)
	}
}

func TestExtAdaptiveMesh(t *testing.T) {
	tbl := ExtAdaptiveMesh(AckOpts{Cycles: 40_000})
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestExtHotspotShape(t *testing.T) {
	tbl := ExtHotspot(AckOpts{Cycles: 40_000})
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestExtFaultsShape(t *testing.T) {
	tbl := ExtFaults(AckOpts{Cycles: 40_000})
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}
