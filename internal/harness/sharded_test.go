package harness

import (
	"strings"
	"testing"

	"nifdy/internal/sim"
	"nifdy/internal/traffic"
)

// TestShardedDeterminism is the cross-shard-wire counterpart of the golden
// determinism suite: Figure 2/3-style workloads on the three partition
// shapes (mesh blocks, torus blocks with wraparound cross edges, fat-tree
// subtrees) must produce bit-identical traces — final stats, every Pending
// sample, and completion state — at shards ∈ {1, 2, 4, 8}. The serial
// engine (shards=1) is the reference. `make race` runs this under the race
// detector, which additionally proves the staged-send protocol has no
// cross-shard data races.
func TestShardedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-workload determinism suite is slow")
	}
	const seed = 1995
	shardCounts := []int{1, 2, 4, 8}
	cases := []struct {
		name   string
		cycles sim.Cycle
		opts   func() BuildOpts
	}{
		// Figure 2 workload (heavy) on contiguous mesh blocks.
		{"mesh2d-nifdy-heavy", 10_000, func() BuildOpts {
			c := traffic.Heavy(64, seed)
			c.Phases = 1 << 20
			return BuildOpts{Net: Mesh2D(), Kind: NIFDY, Seed: seed,
				PendingInterval: 500, Program: programFromTraffic(c)}
		}},
		// Torus wraparound links always cross the first/last shard boundary.
		{"torus2d-nifdy-heavy", 10_000, func() BuildOpts {
			c := traffic.Heavy(64, seed)
			c.Phases = 1 << 20
			return BuildOpts{Net: Torus2D(), Kind: NIFDY, Seed: seed,
				PendingInterval: 500, Program: programFromTraffic(c)}
		}},
		// Figure 3 workload (light) on fat-tree subtree partitions, where
		// upper-level routers and their links split across shards.
		{"fattree-nifdy-light", 12_000, func() BuildOpts {
			c := traffic.Light(64, seed)
			c.Phases = 1 << 20
			return BuildOpts{Net: FullFatTree(), Kind: NIFDY, Seed: seed,
				PendingInterval: 500, Program: programFromTraffic(c)}
		}},
		// Plain NICs saturate the fabric hardest (no flow control), pushing
		// the most flits across shard boundaries per cycle.
		{"mesh2d-plain-heavy", 10_000, func() BuildOpts {
			c := traffic.Heavy(64, seed)
			c.Phases = 1 << 20
			return BuildOpts{Net: Mesh2D(), Kind: Plain, Seed: seed,
				PendingInterval: 500, Program: programFromTraffic(c)}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			traces := make([]string, len(shardCounts))
			tasks := make([]func(), len(shardCounts))
			for i, n := range shardCounts {
				i, n := i, n
				tasks[i] = func() {
					opts := tc.opts()
					opts.EngineShards = n
					traces[i] = goldenTrace(t, opts, tc.cycles, 500)
				}
			}
			runParallel(tasks)
			ref := traces[0]
			if strings.Contains(ref, "total=0\n") {
				t.Fatalf("reference trace moved no packets — workload is vacuous:\n%s", ref)
			}
			for i, n := range shardCounts[1:] {
				if traces[i+1] != ref {
					t.Errorf("shards=%d diverges from shards=1:\nreference:\n%s\ngot:\n%s",
						n, ref, traces[i+1])
				}
			}
		})
	}
}
