package harness

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"nifdy/internal/sim"
	"nifdy/internal/traffic"
)

// TestMain lets the test binary serve as a distributed worker: DistTrace and
// DistRunToDone re-exec os.Args[0], and a spawned copy of this binary must
// join the worker protocol instead of running the test suite.
func TestMain(m *testing.M) {
	if DistWorkerMain() {
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// distShm exercises the shared-memory fast path where available.
func distShm() bool { return runtime.GOOS == "linux" }

// TestDistributedDeterminism is the multi-process column of the determinism
// matrix: the same workloads as TestShardedDeterminism, run as {shards x
// processes} splits over the socket transport, must reproduce the serial
// golden trace byte for byte — stats, fabric occupancy, pending peaks,
// heatmaps, and completion cycles. W = 4 additionally exercises the
// conservative window (its serial reference is built with the same W, since
// the window is a model parameter).
func TestDistributedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process determinism suite is slow")
	}
	const seed = 1995
	const chunk = 500
	type split struct{ shards, procs int }
	splits := []split{{1, 1}, {4, 2}, {4, 4}}
	cases := []struct {
		name    string
		cycles  sim.Cycle
		net     func() NetSpec
		distNet string
		kind    NICKind
		light   bool
		windows []int
	}{
		{"mesh2d-nifdy-heavy", 10_000, Mesh2D, "mesh2d", NIFDY, false, []int{1, 4}},
		{"torus2d-nifdy-heavy", 10_000, Torus2D, "torus2d", NIFDY, false, []int{1, 4}},
		{"fattree-nifdy-light", 12_000, FullFatTree, "fattree", NIFDY, true, []int{1, 4}},
		{"mesh2d-plain-heavy", 10_000, Mesh2D, "mesh2d", Plain, false, []int{1}},
		{"torus2d-plain-heavy", 10_000, Torus2D, "torus2d", Plain, false, []int{1}},
		{"fattree-plain-light", 12_000, FullFatTree, "fattree", Plain, true, []int{1}},
	}
	for _, tc := range cases {
		tc := tc
		for _, w := range tc.windows {
			w := w
			t.Run(fmt.Sprintf("%s/w%d", tc.name, w), func(t *testing.T) {
				t.Parallel()
				pattern := "heavy"
				if tc.light {
					pattern = "light"
				}
				// Serial and in-process sharded references at the same W.
				refs := make([]string, 3)
				refShards := []int{1, 2, 4}
				tasks := make([]func(), len(refShards))
				for i, n := range refShards {
					i, n := i, n
					tasks[i] = func() {
						c := traffic.Heavy(64, seed)
						if tc.light {
							c = traffic.Light(64, seed)
						}
						c.Phases = 1 << 20
						refs[i] = goldenTrace(t, BuildOpts{
							Net: tc.net(), Kind: tc.kind, Seed: seed,
							PendingInterval: 500, Program: programFromTraffic(c),
							EngineShards: n, Window: w,
						}, tc.cycles, chunk)
					}
				}
				runParallel(tasks)
				ref := refs[0]
				if strings.Contains(ref, "total=0\n") {
					t.Fatalf("reference trace moved no packets — workload is vacuous:\n%s", ref)
				}
				for i, n := range refShards[1:] {
					if refs[i+1] != ref {
						t.Fatalf("in-process shards=%d diverges from serial at W=%d:\nreference:\n%s\ngot:\n%s",
							n, w, ref, refs[i+1])
					}
				}
				spec := DistSpec{
					Net: tc.distNet, Kind: int(tc.kind), Window: w, Seed: seed,
					PendingInterval: 500, Pattern: pattern, Phases: 1 << 20,
				}
				for _, sp := range splits {
					spec.Shards = sp.shards
					got, err := DistTrace(spec, sp.procs, tc.cycles, chunk, distShm())
					if err != nil {
						t.Fatalf("%dx%d: %v", sp.shards, sp.procs, err)
					}
					if got != ref {
						t.Errorf("%d shards over %d processes diverges from serial at W=%d:\nreference:\n%s\ngot:\n%s",
							sp.shards, sp.procs, w, ref, got)
					}
				}
			})
		}
	}
}

// TestWindowSamplerGrid pins the step-hook clock contract: samplers land on
// exactly the same ticks whatever the window size, even when the interval
// does not divide W (hook clocks clamp window ends onto the sample grid).
func TestWindowSamplerGrid(t *testing.T) {
	const interval = 7
	var want []sim.Cycle
	for _, w := range []int{1, 4, 64} {
		c := traffic.Light(64, 7)
		c.Phases = 4
		s := Build(BuildOpts{
			Net: Mesh2D(), Kind: NIFDY, Seed: 7,
			PendingInterval: interval, Program: programFromTraffic(c),
			EngineShards: 2, Window: w,
		})
		s.Eng.Run(2_000)
		_, times := s.Pending.Samples()
		s.Close()
		for i, at := range times {
			if at != sim.Cycle(i)*interval {
				t.Fatalf("W=%d: sample %d landed at cycle %d, want %d", w, i, at, i*interval)
			}
		}
		if w == 1 {
			want = times
		} else if len(times) != len(want) {
			t.Fatalf("W=%d took %d samples, W=1 took %d", w, len(times), len(want))
		}
	}
}
