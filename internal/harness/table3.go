package harness

import (
	"nifdy/internal/core"
	"nifdy/internal/sim"
	"nifdy/internal/stats"
	"nifdy/internal/traffic"
)

// Table2 reports the processor-model calibration constants (the paper's
// Table 2 CM-5 measurements as used in §2.4.3).
func Table2() *stats.Table {
	t := stats.NewTable("Table 2: CM-5 software overheads (processor cycles)",
		"operation", "cycles")
	t.Row("active message send (T_send)", 40)
	t.Row("active message poll (no message)", 22)
	t.Row("active message receive (T_receive)", 60)
	t.Row("NIFDY ack generate+process (T_ackproc)", 4)
	return t
}

// Table3 reports each standard network's characteristics alongside its
// adopted NIFDY parameters (the paper's Table 3).
func Table3(seed uint64) *stats.Table {
	t := stats.NewTable("Table 3: 64-node network characteristics and tuned NIFDY parameters",
		"network", "avg d", "max d", "volume (flits)", "bisection (f/c)", "in-order", "O", "B", "D", "W")
	for _, spec := range StandardNetworks() {
		net := spec.Build(seed, topoIfaceDefaults())
		c := net.Chars()
		p := spec.Params
		pp := p
		d := pp.D
		if d < 0 {
			d = 0
		}
		t.Row(spec.Name, c.AvgHops, c.MaxHops, c.VolumeFlits, c.BisectionFPC,
			c.InOrder, p.O, p.B, d, p.W)
	}
	return t
}

// SweepResult is one point of a parameter sweep.
type SweepResult struct {
	Params    core.Config
	Delivered int64
}

// SweepOpts parameterizes Table3Sweep.
type SweepOpts struct {
	Cycles sim.Cycle // per-point budget; default 200,000
	Seed   uint64
	Os, Bs []int // candidate values; defaults {2,4,8} each
	Ws     []int // candidate windows; default {2,4,8}
}

func (o *SweepOpts) defaults() {
	if o.Cycles == 0 {
		o.Cycles = 200_000
	}
	if o.Seed == 0 {
		o.Seed = 1995
	}
	if o.Os == nil {
		o.Os = []int{2, 4, 8}
	}
	if o.Bs == nil {
		o.Bs = []int{2, 4, 8}
	}
	if o.Ws == nil {
		o.Ws = []int{2, 4, 8}
	}
}

// Table3Sweep searches (O, B, W) for one network, scoring each point by the
// average of heavy- and light-traffic delivery (the paper chose parameters
// "to give the best average performance with both test traffic patterns").
// It returns all points, best first.
func Table3Sweep(spec NetSpec, o SweepOpts) []SweepResult {
	o.defaults()
	var points []core.Config
	for _, ov := range o.Os {
		for _, bv := range o.Bs {
			for _, wv := range o.Ws {
				points = append(points, core.Config{O: ov, B: bv, D: 1, W: wv})
			}
		}
	}
	results := make([]SweepResult, len(points))
	nodes := spec.Build(o.Seed, topoIfaceDefaults()).Nodes()
	tasks := make([]func(), len(points))
	for i, p := range points {
		i, p := i, p
		tasks[i] = func() {
			score := int64(0)
			for _, mk := range []func() traffic.Config{
				func() traffic.Config { c := traffic.Heavy(nodes, o.Seed); c.Phases = 1 << 20; return c },
				func() traffic.Config { c := traffic.Light(nodes, o.Seed); c.Phases = 1 << 20; return c },
			} {
				s := Build(BuildOpts{Net: spec, Kind: NIFDY, Seed: o.Seed,
					Params: p, Program: programFromTraffic(mk())})
				s.Eng.Run(o.Cycles)
				score += s.Accepted()
				s.Close()
			}
			results[i] = SweepResult{Params: p, Delivered: score}
		}
	}
	runParallel(tasks)
	// Insertion sort by score descending (small n).
	for i := 1; i < len(results); i++ {
		for j := i; j > 0 && results[j].Delivered > results[j-1].Delivered; j-- {
			results[j], results[j-1] = results[j-1], results[j]
		}
	}
	return results
}
