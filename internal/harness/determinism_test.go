package harness

import (
	"fmt"
	"strings"
	"testing"

	"nifdy/internal/core"
	"nifdy/internal/sim"
	"nifdy/internal/traffic"
)

// The golden determinism suite is the tentpole proof for the engine's
// scheduling optimizations: the serial every-cycle engine is the reference
// schedule, and every other mode — quiescence skipping, the persistent
// worker pool, and their combination — must produce a bit-identical state
// trace on full experiment workloads.

type engineMode struct {
	name   string
	shards int
	skip   bool
}

var engineModes = []engineMode{
	{"serial-noskip", 1, false}, // reference: every component, every cycle
	{"serial-skip", 1, true},
	{"parallel2-noskip", 2, false},
	{"parallel4-skip", 4, true},
}

// goldenTrace runs opts for the given cycle budget, recording a signature of
// all observable state every chunk cycles: every NIC counter the experiments
// report, fabric occupancy, and the pending-per-receiver peak. Any schedule
// divergence shows up as a differing trace.
func goldenTrace(t *testing.T, opts BuildOpts, cycles, chunk sim.Cycle) string {
	t.Helper()
	s := Build(opts)
	defer s.Close()
	var b strings.Builder
	for s.Eng.Now() < cycles {
		s.Eng.Run(chunk)
		ag := s.AggregateStats()
		fmt.Fprintf(&b, "@%d %+v net=%d pend=%d done=%v\n",
			s.Eng.Now(), ag, s.Net.BufferedFlits(), s.Pending.Max(), s.Done())
	}
	if opts.PendingInterval > 0 {
		b.WriteString(s.Pending.Heatmap())
	}
	fmt.Fprintf(&b, "total=%d\n", s.Accepted())
	return b.String()
}

func TestGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-workload determinism suite is slow")
	}
	const seed = 1995
	cases := []struct {
		name   string
		cycles sim.Cycle
		opts   func() BuildOpts
	}{
		{"mesh-plain-heavy", 10_000, func() BuildOpts {
			c := traffic.Heavy(64, seed)
			c.Phases = 1 << 20
			return BuildOpts{Net: Mesh2D(), Kind: Plain, Seed: seed,
				Program: programFromTraffic(c)}
		}},
		{"mesh-nifdy-heavy", 10_000, func() BuildOpts {
			c := traffic.Heavy(64, seed)
			c.Phases = 1 << 20
			return BuildOpts{Net: Mesh2D(), Kind: NIFDY, Seed: seed,
				Program: programFromTraffic(c)}
		}},
		{"fattree-buffers-light", 12_000, func() BuildOpts {
			c := traffic.Light(64, seed)
			c.Phases = 1 << 20
			return BuildOpts{Net: FullFatTree(), Kind: BuffersOnly, Seed: seed,
				Program: programFromTraffic(c)}
		}},
		// Light load is where skipping elides the most ticks, and the
		// heatmap checks the stats sampler's interval sleeps cycle-exactly.
		{"fattree-nifdy-light-heatmap", 12_000, func() BuildOpts {
			c := traffic.Light(64, seed)
			c.Phases = 1 << 20
			return BuildOpts{Net: FullFatTree(), Kind: NIFDY, Seed: seed,
				PendingInterval: 500, Program: programFromTraffic(c)}
		}},
		// Piggybacked acks exercise the held-ack (due-time) sleep bound.
		{"cm5-nifdy-piggyback", 12_000, func() BuildOpts {
			c := traffic.Light(64, seed)
			c.Phases = 1 << 20
			return BuildOpts{Net: CM5FatTree(), Kind: NIFDY, Seed: seed,
				Params:  core.Config{Piggyback: true},
				Program: programFromTraffic(c)}
		}},
		// Losses exercise the retransmission-deadline sleep bound: the
		// timeout (4096) fires well inside the budget on idle units.
		{"mesh-nifdy-lossy-retx", 14_000, func() BuildOpts {
			c := traffic.Light(64, seed)
			c.Phases = 1 << 20
			return BuildOpts{Net: Mesh2D(), Kind: NIFDY, Seed: seed, Drop: 0.02,
				Params:  core.Config{Retransmit: true},
				Program: programFromTraffic(c)}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			traces := make([]string, len(engineModes))
			tasks := make([]func(), len(engineModes))
			for i, m := range engineModes {
				i, m := i, m
				tasks[i] = func() {
					opts := tc.opts()
					opts.EngineShards = m.shards
					opts.DisableIdleSkip = !m.skip
					traces[i] = goldenTrace(t, opts, tc.cycles, 500)
				}
			}
			runParallel(tasks)
			ref := traces[0]
			if strings.Contains(ref, "total=0\n") {
				t.Fatalf("reference trace moved no packets — workload is vacuous:\n%s", ref)
			}
			for i, m := range engineModes[1:] {
				if traces[i+1] != ref {
					t.Errorf("%s diverges from %s:\nreference:\n%s\ngot:\n%s",
						m.name, engineModes[0].name, ref, traces[i+1])
				}
			}
		})
	}
}
