package harness

import (
	"fmt"
	"runtime"

	"nifdy/internal/check"
	"nifdy/internal/core"
	"nifdy/internal/nic"
	"nifdy/internal/node"
	"nifdy/internal/rng"
	"nifdy/internal/sim"
	"nifdy/internal/traffic"
)

// FuzzOpts parameterizes the cross-configuration fuzz sweep: randomized
// (topology, NIC kind, parameter corner, traffic, seed) tuples run to
// completion with every invariant monitor armed, at several engine shard
// counts, diffing the sharded runs against the serial reference.
type FuzzOpts struct {
	// Trials is the number of random configurations; default 8.
	Trials int
	// Seed derives every trial's configuration and traffic.
	Seed uint64
	// Shards are the engine shard counts per trial; default {1, 2, 4}. The
	// first entry is the reference for the stats diff.
	Shards []int
	// Procs are the multi-process worker counts per trial; default {2}. Each
	// runs the trial's configuration over the dist transport (the shard count
	// is a randomized multiple of the worker count) and must reproduce the
	// reference stats bit for bit, with monitors armed in every worker. Set
	// to an empty non-nil slice to skip the multi-process column.
	Procs []int
	// MaxCycles bounds each run; default 600,000.
	MaxCycles sim.Cycle
	// Packets is the per-node, per-phase quota; default 20 (two phases).
	Packets int
	// Interval is the monitor sweep cadence in cycles; default 16.
	Interval sim.Cycle
}

func (o *FuzzOpts) defaults() {
	if o.Trials == 0 {
		o.Trials = 8
	}
	if o.Seed == 0 {
		o.Seed = 1995
	}
	if o.Shards == nil {
		o.Shards = []int{1, 2, 4}
	}
	if o.Procs == nil {
		o.Procs = []int{2}
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 600_000
	}
	if o.Packets == 0 {
		o.Packets = 20
	}
	if o.Interval == 0 {
		o.Interval = 16
	}
}

// FuzzFailure is one invariant violation or cross-shard divergence.
type FuzzFailure struct {
	Trial  string
	Shards int
	Detail string
}

func (f FuzzFailure) String() string {
	return fmt.Sprintf("%s [shards=%d]: %s", f.Trial, f.Shards, f.Detail)
}

// FuzzResult summarizes one sweep.
type FuzzResult struct {
	// Runs is the number of simulations executed (trials x shard counts).
	Runs int
	// Failures is empty when every run was clean.
	Failures []FuzzFailure
}

// fuzzTrial is one randomized configuration.
type fuzzTrial struct {
	spec   NetSpec
	kind   NICKind
	param  core.Config
	light  bool
	seed   uint64
	window int // conservative-sync window (a model parameter, fixed per trial)
	dmul   int // multi-process shard count = procs * dmul
	shm    bool
	// fabric selects a modern-fabric column: "" (classic matrix), "lossy"
	// (NIFDY with retransmission over dropping wires), "pfc", or "dcqcn".
	fabric string
}

func (tr fuzzTrial) String() string {
	pattern := "heavy"
	if tr.light {
		pattern = "light"
	}
	s := fmt.Sprintf("%s/%v O=%d B=%d D=%d W=%d ackArr=%v %s win=%d seed=%d",
		tr.spec.Name, tr.kind, tr.param.O, tr.param.B, tr.param.D, tr.param.W,
		tr.param.AckOnArrival, pattern, tr.window, tr.seed)
	if tr.fabric != "" {
		s += " fabric=" + tr.fabric
	}
	return s
}

// fuzzFabricFor returns trial i's modern-fabric column. The rotation is
// fixed, not randomized, so every default-size sweep deterministically
// covers lossy wires, PFC, and DCQCN alongside the classic matrix.
func fuzzFabricFor(i int) string {
	switch i % 8 {
	case 1:
		return "lossy"
	case 3:
		return "pfc"
	case 5:
		return "dcqcn"
	}
	return ""
}

// distNetNames maps NetSpec display names to the wire-stable fabric names the
// distributed runner accepts (distNets).
var distNetNames = map[string]string{
	"mesh 8x8":             "mesh2d",
	"torus 8x8":            "torus2d",
	"mesh 4x4x4":           "mesh3d",
	"fat tree (full)":      "fattree",
	"fat tree (store&fwd)": "sffattree",
	"fat tree (CM-5)":      "cm5",
	"butterfly":            "butterfly",
	"multibutterfly":       "multibutterfly",
}

// FuzzSweep runs the randomized cross-configuration sweep. Every run arms
// the full monitor suite (internal/check); runs that complete also get the
// end-to-end loss check. For each trial, the aggregate NIC stats of every
// shard count must equal the first (serial) run bit for bit.
func FuzzSweep(o FuzzOpts) FuzzResult {
	o.defaults()
	r := rng.NewStream(o.Seed, 0xF0220)
	oCorners := []int{1, 2, 4, 8}
	bCorners := []int{1, 2, 4, 8}
	dCorners := []int{-1, 1, 2}
	wCorners := []int{2, 4, 8}
	kinds := []NICKind{Plain, BuffersOnly, NIFDY}
	nets := StandardNetworks()
	trials := make([]fuzzTrial, o.Trials)
	for i := range trials {
		tr := fuzzTrial{
			spec: nets[r.Intn(len(nets))],
			kind: kinds[r.Intn(len(kinds))],
			param: core.Config{
				O: oCorners[r.Intn(len(oCorners))],
				B: bCorners[r.Intn(len(bCorners))],
				D: dCorners[r.Intn(len(dCorners))],
				W: wCorners[r.Intn(len(wCorners))],
				// The ack-strategy ablation rides along for free.
				AckOnArrival: r.Bool(0.5),
			},
			light:  r.Bool(0.5),
			seed:   r.Uint64()%(1<<30) + 1,
			window: 1 + 3*r.Intn(2), // 1 or 4
			dmul:   1 + r.Intn(2),
			shm:    r.Bool(0.5) && runtime.GOOS == "linux",
		}
		if fab := fuzzFabricFor(i); fab != "" {
			// The modern-fabric columns run on the wormhole meshes, where
			// PFC pause frames ride the credit wires and the DESIGN.md §11
			// scenario pack lives. Lossy wires force the NIFDY kind: the
			// sweep requires completion, and only the §6 retransmission
			// path recovers a dropped flit.
			tr.fabric = fab
			wormhole := []NetSpec{Mesh2D(), Torus2D(), Mesh3D()}
			tr.spec = wormhole[r.Intn(len(wormhole))]
			switch fab {
			case "lossy":
				tr.kind = NIFDY
				tr.param.Retransmit = true
				// The timeout must undercut the drain-tail quiet period,
				// or a loss on the workload's last packets outlives the
				// receiving processor.
				tr.param.RetransmitTimeout = 1024
			case "pfc":
				tr.kind = PFC
			case "dcqcn":
				tr.kind = DCQCN
			}
		}
		trials[i] = tr
	}

	// Columns: every in-process shard count, then every multi-process worker
	// count. Column 0 (the first shard count, usually serial) is the
	// reference every other column must match bit for bit.
	cols := len(o.Shards) + len(o.Procs)
	type trialOut struct {
		stats []nic.Stats
		done  []bool
		fails [][]FuzzFailure
		skip  []bool
	}
	outs := make([]trialOut, len(trials))
	tasks := make([]func(), 0, len(trials)*cols)
	for ti, tr := range trials {
		ti, tr := ti, tr
		outs[ti] = trialOut{
			stats: make([]nic.Stats, cols),
			done:  make([]bool, cols),
			fails: make([][]FuzzFailure, cols),
			skip:  make([]bool, cols),
		}
		for si, shards := range o.Shards {
			si, shards := si, shards
			tasks = append(tasks, func() {
				st, done, fails := fuzzRun(tr, shards, o)
				outs[ti].stats[si] = st
				outs[ti].done[si] = done
				outs[ti].fails[si] = fails
			})
		}
		for pi, procs := range o.Procs {
			ci, procs := len(o.Shards)+pi, procs
			if tr.fabric != "" {
				// The dist codec carries no PFC frames, ECN bits, or wire
				// faults across process boundaries, so the modern-fabric
				// trials run only the in-process shard columns.
				outs[ti].skip[ci] = true
				continue
			}
			tasks = append(tasks, func() {
				st, done, fails := fuzzDistRun(tr, procs, o)
				outs[ti].stats[ci] = st
				outs[ti].done[ci] = done
				outs[ti].fails[ci] = fails
			})
		}
	}
	runParallel(tasks)

	res := FuzzResult{Runs: len(tasks)}
	for ti, tr := range trials {
		out := &outs[ti]
		for _, fs := range out.fails {
			res.Failures = append(res.Failures, fs...)
		}
		for si := 1; si < cols; si++ {
			if out.skip[si] {
				continue
			}
			column := "shards"
			n := 0
			if si < len(o.Shards) {
				n = o.Shards[si]
			} else {
				column = "procs"
				n = o.Procs[si-len(o.Shards)]
			}
			if out.done[si] != out.done[0] || out.stats[si] != out.stats[0] {
				res.Failures = append(res.Failures, FuzzFailure{
					Trial: tr.String(), Shards: n,
					Detail: fmt.Sprintf("%s=%d diverges from shards=%d: done %v vs %v, stats %+v vs %+v",
						column, n, o.Shards[0], out.done[si], out.done[0], out.stats[si], out.stats[0]),
				})
			}
		}
	}
	return res
}

// fuzzDistRun executes one (trial, worker count) simulation over the dist
// transport: the launcher re-execs this binary procs times (the embedding
// main must gate on DistWorkerMain), each worker arms its own monitor suite,
// and the merged stats must match the in-process reference.
func fuzzDistRun(tr fuzzTrial, procs int, o FuzzOpts) (nic.Stats, bool, []FuzzFailure) {
	shards := procs * tr.dmul
	pattern := "heavy"
	if tr.light {
		pattern = "light"
	}
	spec := DistSpec{
		Net:    distNetNames[tr.spec.Name],
		Kind:   int(tr.kind),
		Shards: shards,
		Window: tr.window,
		Seed:   tr.seed,
		O:      tr.param.O, B: tr.param.B, D: tr.param.D, W: tr.param.W,
		AckOnArrival:    tr.param.AckOnArrival,
		Pattern:         pattern,
		Phases:          2,
		PacketsPerPhase: o.Packets,
		ZeroIgnore:      true,
		DrainTail:       2500,
		Check:           true,
		CheckInterval:   int64(o.Interval),
	}
	if spec.Net == "" {
		panic(fmt.Sprintf("harness: fuzz fabric %q has no distributed-runner name", tr.spec.Name))
	}
	st, done, workerFails, err := DistRunToDone(spec, procs, o.MaxCycles, tr.shm)
	var fails []FuzzFailure
	if err != nil {
		fails = append(fails, FuzzFailure{
			Trial: tr.String(), Shards: shards, Detail: fmt.Sprintf("procs=%d: %v", procs, err),
		})
		return st, done, fails
	}
	for _, f := range workerFails {
		if len(fails) < 16 {
			fails = append(fails, FuzzFailure{Trial: tr.String(), Shards: shards, Detail: f})
		}
	}
	if !done {
		fails = append(fails, FuzzFailure{
			Trial: tr.String(), Shards: shards,
			Detail: fmt.Sprintf("procs=%d did not complete within %d cycles", procs, o.MaxCycles),
		})
	}
	return st, done, fails
}

// drainTail extends a program with a fixed receive-and-retire window so
// packets still in flight when the workload proper ends are accepted before
// the end-to-end loss check.
func drainTail(prog node.Program, tail sim.Cycle) node.Program {
	return func(p *node.Proc) {
		prog(p)
		deadline := p.Now() + tail
		for {
			pk, ok := p.RecvOr(func() bool { return p.Now() >= deadline })
			if !ok {
				return
			}
			p.Free(pk)
		}
	}
}

// drainQuiet is drainTail with the deadline restarting on every arrival:
// the node leaves only after a full quiet period. Loss-recovery tails need
// this — a retransmission chain arrives in bursts spaced by the retransmit
// timeout, which a fixed window would cut off.
func drainQuiet(prog node.Program, quiet sim.Cycle) node.Program {
	return func(p *node.Proc) {
		prog(p)
		deadline := p.Now() + quiet
		for {
			pk, ok := p.RecvOr(func() bool { return p.Now() >= deadline })
			if !ok {
				return
			}
			deadline = p.Now() + quiet
			p.Free(pk)
		}
	}
}

// fuzzRun executes one (trial, shard count) simulation with monitors armed.
func fuzzRun(tr fuzzTrial, shards int, o FuzzOpts) (nic.Stats, bool, []FuzzFailure) {
	var fails []FuzzFailure
	tcfg := traffic.Heavy(64, tr.seed)
	if tr.light {
		tcfg = traffic.Light(64, tr.seed)
		// Skip the non-responsive periods: the point here is protocol-state
		// coverage per cycle, not idle time.
		tcfg.IgnoreProb = 0
	}
	tcfg.Phases = 2
	tcfg.PacketsPerPhase = o.Packets
	progs := programFromTraffic(tcfg)
	bo := BuildOpts{
		Net: tr.spec, Kind: tr.kind, Seed: tr.seed, Params: tr.param,
		EngineShards: shards, Window: tr.window,
		Program: func(n int) node.Program {
			if tr.fabric == "lossy" {
				return drainQuiet(progs(n), 2500)
			}
			return drainTail(progs(n), 2500)
		},
		Check: &check.Options{
			Interval: o.Interval, Sequence: true, InOrder: true,
			OnViolation: func(v check.Violation) {
				if len(fails) < 16 {
					fails = append(fails, FuzzFailure{
						Trial: tr.String(), Shards: shards, Detail: v.String(),
					})
				}
			},
		},
	}
	if tr.fabric == "lossy" {
		// Dropping access wires: the run still must complete, and the
		// ID-keyed sequence accounting (Build switches it on for
		// NIFDY+Retransmit) still must balance — every loss recovered,
		// every duplicate suppressed.
		bo.Fabric.WireDrop = 1.0 / 256
		bo.Fabric.Seed = tr.seed
	}
	s := Build(bo)
	defer s.Close()
	ok, _ := s.RunUntilDone(o.MaxCycles)
	if ok {
		// A short settle window lets trailing acks land, then the checker
		// reports any packet sent but never accepted. Run (not Step) so the
		// settle follows the same window schedule as the dist workers.
		s.Eng.Run(500)
		s.Checker.Finish(s.Eng.Now())
	} else {
		fails = append(fails, FuzzFailure{
			Trial: tr.String(), Shards: shards,
			Detail: fmt.Sprintf("did not complete within %d cycles", o.MaxCycles),
		})
	}
	return s.AggregateStats(), ok, fails
}
