package harness

import (
	"errors"
	"testing"

	"nifdy/internal/core"
	"nifdy/internal/dist"
)

func TestCheckDistSupport(t *testing.T) {
	base := func() BuildOpts { return BuildOpts{Net: Mesh2D(), Kind: NIFDY} }

	if err := CheckDistSupport(base()); err != nil {
		t.Fatalf("plain NIFDY mesh should be dist-supported, got %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*BuildOpts)
	}{
		{"drop", func(o *BuildOpts) { o.Drop = 0.01 }},
		{"retransmit", func(o *BuildOpts) {
			o.Params = core.Config{O: 2, B: 4, D: 2, W: 8, Retransmit: true}
		}},
		{"dialog takeover", func(o *BuildOpts) {
			o.Params = core.Config{O: 2, B: 4, D: 2, W: 8, DialogTakeover: 1000}
		}},
		{"pfc kind", func(o *BuildOpts) { o.Kind = PFC }},
		{"dcqcn kind", func(o *BuildOpts) { o.Kind = DCQCN }},
		{"explicit pfc fabric", func(o *BuildOpts) { o.Fabric.PFC.Enable = true }},
		{"explicit ecn fabric", func(o *BuildOpts) { o.Fabric.ECN.Enable = true }},
	}
	for _, c := range cases {
		opts := base()
		c.mutate(&opts)
		err := CheckDistSupport(opts)
		if err == nil {
			t.Errorf("%s: want unsupported-feature error, got nil", c.name)
			continue
		}
		if !errors.Is(err, dist.ErrUnsupportedFeature) {
			t.Errorf("%s: error %v does not wrap dist.ErrUnsupportedFeature", c.name, err)
		}
	}
}

func TestDistSpecValidate(t *testing.T) {
	good := DistSpec{Net: "mesh2d", Kind: int(NIFDY), Shards: 1, Window: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("mesh2d/NIFDY spec should validate, got %v", err)
	}

	badKind := good
	badKind.Kind = int(PFC)
	if err := badKind.Validate(); !errors.Is(err, dist.ErrUnsupportedFeature) {
		t.Errorf("PFC spec: got %v, want ErrUnsupportedFeature", err)
	}

	badNet := good
	badNet.Net = "flownet"
	if err := badNet.Validate(); !errors.Is(err, dist.ErrUnsupportedFeature) {
		t.Errorf("flownet spec: got %v, want ErrUnsupportedFeature", err)
	}
}

// TestDistLaunchRejectsBeforeSpawn: an unsupported spec must fail in the
// launcher, typed, before any worker process is spawned.
func TestDistLaunchRejectsBeforeSpawn(t *testing.T) {
	_, err := distLaunch(DistSpec{Net: "mesh2d", Kind: int(DCQCN), Shards: 1, Window: 1}, 2, false)
	if !errors.Is(err, dist.ErrUnsupportedFeature) {
		t.Fatalf("distLaunch: got %v, want ErrUnsupportedFeature", err)
	}
}
