package harness

import (
	"strings"
	"testing"

	"nifdy/internal/sim"
	"nifdy/internal/traffic"
)

// TestFlowShardedDeterminism is the flow-mode counterpart of
// TestShardedDeterminism: the rate solver runs on the stepping goroutine
// while NICs tick on per-shard goroutines, handing off sends and arrival-
// buffer credits through per-shard staging lists. Merging those lists in
// node order must make the whole simulation bit-identical for any shard
// count — same final stats, every Pending sample, completion state. The
// hybrid case is the sharpest probe: flit routers, the flow solver, and the
// hot/cold port mux all share one engine, and the hot region's shard layout
// comes from the embedded flit fabric while the cold bulk is block-aligned.
func TestFlowShardedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-workload determinism suite is slow")
	}
	const seed = 1995
	shardCounts := []int{1, 2, 4}
	cases := []struct {
		name   string
		cycles sim.Cycle
		opts   func() BuildOpts
	}{
		// Figure 2 workload (heavy) saturates the solver: maximum flow
		// churn, parked queues, and stall transitions.
		{"flow-mesh2d-nifdy-heavy", 10_000, func() BuildOpts {
			c := traffic.Heavy(64, seed)
			c.Phases = 1 << 20
			return BuildOpts{Net: FlowTwin(Mesh2D()), Kind: NIFDY, Seed: seed,
				PendingInterval: 500, Program: programFromTraffic(c)}
		}},
		// Light load exercises the idle-skip path: the fabric must wake
		// exactly on drain and landing events regardless of sharding.
		{"flow-fattree-nifdy-light", 12_000, func() BuildOpts {
			c := traffic.Light(64, seed)
			c.Phases = 1 << 20
			return BuildOpts{Net: FlowTwin(FullFatTree()), Kind: NIFDY, Seed: seed,
				PendingInterval: 500, Program: programFromTraffic(c)}
		}},
		// Hybrid: 64 flit-accurate mesh nodes inside a 128-node flow
		// fabric. Traffic spans the seam, so staged sends originate from
		// both flit-owned and flow-owned shards.
		{"hybrid-mesh2d-nifdy-heavy", 10_000, func() BuildOpts {
			c := traffic.Heavy(128, seed)
			c.Phases = 1 << 20
			return BuildOpts{Net: HybridTwin(Mesh2D(), 128), Kind: NIFDY, Seed: seed,
				PendingInterval: 500, Program: programFromTraffic(c)}
		}},
		// Plain NICs never back off, so the solver sees the densest flow
		// population and the most rate re-solves per cycle.
		{"flow-mesh2d-plain-heavy", 10_000, func() BuildOpts {
			c := traffic.Heavy(64, seed)
			c.Phases = 1 << 20
			return BuildOpts{Net: FlowTwin(Mesh2D()), Kind: Plain, Seed: seed,
				PendingInterval: 500, Program: programFromTraffic(c)}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			traces := make([]string, len(shardCounts))
			tasks := make([]func(), len(shardCounts))
			for i, n := range shardCounts {
				i, n := i, n
				tasks[i] = func() {
					opts := tc.opts()
					opts.EngineShards = n
					traces[i] = goldenTrace(t, opts, tc.cycles, 500)
				}
			}
			runParallel(tasks)
			ref := traces[0]
			if strings.Contains(ref, "total=0\n") {
				t.Fatalf("reference trace moved no packets — workload is vacuous:\n%s", ref)
			}
			for i, n := range shardCounts[1:] {
				if traces[i+1] != ref {
					t.Errorf("shards=%d diverges from shards=1:\nreference:\n%s\ngot:\n%s",
						n, ref, traces[i+1])
				}
			}
		})
	}
}
