package harness

import (
	"encoding/json"
	"fmt"
	"strings"

	"nifdy/internal/check"
	"nifdy/internal/core"
	"nifdy/internal/dist"
	"nifdy/internal/nic"
	"nifdy/internal/node"
	"nifdy/internal/sim"
	"nifdy/internal/traffic"
)

// distNets are the fabrics the distributed runner supports, by wire-stable
// name: the flit-accurate networks whose channels carry the staged
// cross-shard protocol. The flow-level fabric (internal/flownet) models
// bandwidth shares, not flit events, and is deliberately absent.
var distNets = map[string]func() NetSpec{
	"mesh2d":         Mesh2D,
	"torus2d":        Torus2D,
	"mesh3d":         Mesh3D,
	"fattree":        FullFatTree,
	"sffattree":      SFFatTree,
	"cm5":            CM5FatTree,
	"butterfly":      Butterfly,
	"multibutterfly": Multibutterfly,
}

// DistSpec is the launcher->worker simulation description: every field a
// worker needs to rebuild the identical simulation, as wire-stable scalars
// (the full BuildOpts carries closures and cannot cross a process boundary).
type DistSpec struct {
	// Net names a distNets fabric.
	Net string
	// Kind is the NIC kind (int form of NICKind).
	Kind int
	// Shards is the total engine shard count, split evenly over the workers.
	Shards int
	// Window is the conservative synchronization window W.
	Window int
	// Seed drives fabric adaptivity and traffic.
	Seed uint64
	// PendingInterval enables pending-per-receiver sampling.
	PendingInterval int64

	// O, B, D, W, AckOnArrival select the NIFDY parameter corner (all-zero
	// uses the fabric's tuned parameters).
	O, B, D, W   int
	AckOnArrival bool

	// Pattern is "heavy" or "light"; Phases and PacketsPerPhase override the
	// pattern's defaults when nonzero. ZeroIgnore clears light traffic's
	// non-responsive periods (the fuzz sweep's setting).
	Pattern         string
	Phases          int
	PacketsPerPhase int
	ZeroIgnore      bool
	// DrainTail, when positive, extends every program with a
	// receive-and-retire window (fuzz mode).
	DrainTail int64

	// Check arms the invariant monitors at the given sweep cadence.
	Check         bool
	CheckInterval int64
}

// buildOpts translates the spec into BuildOpts for worker w. Violations from
// the monitors (if armed) append to *fails.
func (sp *DistSpec) buildOpts(w *dist.Worker, fails *[]string) BuildOpts {
	mk, ok := distNets[sp.Net]
	if !ok {
		panic(fmt.Sprintf("harness: fabric %q is not supported by the distributed runner", sp.Net))
	}
	tcfg := traffic.Heavy(64, sp.Seed)
	if sp.Pattern == "light" {
		tcfg = traffic.Light(64, sp.Seed)
		if sp.ZeroIgnore {
			tcfg.IgnoreProb = 0
		}
	}
	if sp.Phases != 0 {
		tcfg.Phases = sp.Phases
	}
	if sp.PacketsPerPhase != 0 {
		tcfg.PacketsPerPhase = sp.PacketsPerPhase
	}
	progs := programFromTraffic(tcfg)
	program := progs
	if sp.DrainTail > 0 {
		program = func(n int) node.Program {
			return drainTail(progs(n), sim.Cycle(sp.DrainTail))
		}
	}
	opts := BuildOpts{
		Net:             mk(),
		Kind:            NICKind(sp.Kind),
		Params:          core.Config{O: sp.O, B: sp.B, D: sp.D, W: sp.W, AckOnArrival: sp.AckOnArrival},
		Seed:            sp.Seed,
		PendingInterval: sim.Cycle(sp.PendingInterval),
		Program:         program,
		EngineShards:    sp.Shards,
		Window:          sp.Window,
		Dist:            w,
	}
	if sp.Check {
		opts.Check = &check.Options{
			Interval: sim.Cycle(sp.CheckInterval),
			Sequence: true, InOrder: true, // Build forces these off under Dist
			OnViolation: func(v check.Violation) {
				if len(*fails) < 16 {
					*fails = append(*fails, v.String())
				}
			},
		}
	}
	return opts
}

// distCmd is one launcher->worker control frame.
type distCmd struct {
	// Op is "run" (advance Cycles), "rundone" (RunUntilDone with budget
	// Cycles, then settle and finish the checker), or "finish" (report the
	// final record and exit).
	Op     string
	Cycles int64
}

// distRecord is a worker's reply to "run"/"rundone": its local slice of the
// observable state plus the globally-agreed fields used as determinism
// tripwires (Now and Pend must be identical in every worker).
type distRecord struct {
	Now   int64
	Stats nic.Stats
	Net   int
	Pend  int
	Done  bool
	Fails []string `json:",omitempty"`
}

// distFinal is the reply to "finish".
type distFinal struct {
	Heatmap string
	Total   int64
	Fails   []string `json:",omitempty"`
}

// DistWorkerMain, called first thing in main before any flag parsing, checks
// whether this process is a re-exec'd distributed worker and, if so, runs the
// worker protocol to completion and reports true (main should exit). The
// protocol: read the DistSpec, build the worker's slice of the simulation,
// acknowledge readiness, then serve run commands until told to finish or the
// launcher disappears.
func DistWorkerMain() bool {
	w, ok := dist.JoinWorker()
	if !ok {
		return false
	}
	defer w.Close()
	specB, err := w.ReadControl()
	if err != nil {
		return true // launcher died before the handshake
	}
	var spec DistSpec
	if err := json.Unmarshal(specB, &spec); err != nil {
		panic(fmt.Sprintf("harness: worker %d: bad spec: %v", w.Rank, err))
	}
	var fails []string
	s := Build(spec.buildOpts(w, &fails))
	defer s.Close()
	mustSend(w, []byte("ready"))
	for {
		b, err := w.ReadControl()
		if err != nil {
			return true // launcher closed the run
		}
		var cmd distCmd
		if err := json.Unmarshal(b, &cmd); err != nil {
			panic(fmt.Sprintf("harness: worker %d: bad command: %v", w.Rank, err))
		}
		switch cmd.Op {
		case "run":
			s.Eng.Run(sim.Cycle(cmd.Cycles))
			mustSendJSON(w, s.record(fails))
		case "rundone":
			// Every worker receives the same budget and stops at the same
			// boundary (the done predicate is exchanged), so the settle run
			// and checker finish happen in lockstep too.
			ok, _ := s.RunUntilDone(sim.Cycle(cmd.Cycles))
			if ok {
				s.Eng.Run(500)
				if s.Checker != nil {
					s.Checker.Finish(s.Eng.Now())
				}
			}
			r := s.record(fails)
			r.Done = ok
			mustSendJSON(w, r)
		case "finish":
			mustSendJSON(w, distFinal{
				Heatmap: s.Pending.Heatmap(),
				Total:   s.AggregateStats().Accepted,
				Fails:   fails,
			})
			return true
		default:
			panic(fmt.Sprintf("harness: worker %d: unknown op %q", w.Rank, cmd.Op))
		}
	}
}

// record snapshots the worker's observable state between runs.
func (s *Sim) record(fails []string) distRecord {
	return distRecord{
		Now:   s.Eng.Now(),
		Stats: s.AggregateStats(),
		Net:   s.Net.BufferedFlits(),
		Pend:  s.Pending.Max(),
		Done:  s.Done(),
		Fails: fails,
	}
}

func mustSend(w *dist.Worker, b []byte) {
	if err := w.SendControl(b); err != nil {
		panic(fmt.Sprintf("harness: worker %d: control send: %v", w.Rank, err))
	}
}

func mustSendJSON(w *dist.Worker, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("harness: worker %d: marshal: %v", w.Rank, err))
	}
	mustSend(w, b)
}

// distLaunch starts procs workers, ships them the spec, and waits for every
// readiness acknowledgment.
func distLaunch(spec DistSpec, procs int, shm bool) (*dist.Cluster, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c, err := dist.Launch(procs, dist.LaunchOptions{SharedMem: shm})
	if err != nil {
		return nil, err
	}
	specB, err := json.Marshal(&spec)
	if err != nil {
		c.Kill()
		c.Close()
		return nil, err
	}
	for r := 0; r < procs; r++ {
		if err := c.Send(r, specB); err != nil {
			c.Kill()
			c.Close()
			return nil, fmt.Errorf("harness: spec to worker %d: %w", r, err)
		}
	}
	for r := 0; r < procs; r++ {
		b, err := c.Recv(r)
		if err != nil || string(b) != "ready" {
			c.Kill()
			c.Close()
			return nil, fmt.Errorf("harness: worker %d failed to build (%q, %v)", r, b, err)
		}
	}
	return c, nil
}

// distBroadcast sends cmd to every worker and gathers one record from each.
func distBroadcast(c *dist.Cluster, cmd distCmd) ([]distRecord, error) {
	b, err := json.Marshal(&cmd)
	if err != nil {
		return nil, err
	}
	for r := 0; r < c.Procs(); r++ {
		if err := c.Send(r, b); err != nil {
			return nil, fmt.Errorf("harness: command to worker %d: %w", r, err)
		}
	}
	recs := make([]distRecord, c.Procs())
	for r := 0; r < c.Procs(); r++ {
		rb, err := c.Recv(r)
		if err != nil {
			return nil, fmt.Errorf("harness: record from worker %d: %w", r, err)
		}
		if err := json.Unmarshal(rb, &recs[r]); err != nil {
			return nil, fmt.Errorf("harness: record from worker %d: %w", r, err)
		}
	}
	return recs, nil
}

// mergeRecords folds per-worker records into the global view: Now and Pend
// must agree everywhere (they are derived from exchanged state — any drift is
// a determinism bug), local stats and fabric occupancy sum, done ANDs.
func mergeRecords(recs []distRecord) (distRecord, error) {
	g := recs[0]
	for r := 1; r < len(recs); r++ {
		rec := recs[r]
		if rec.Now != g.Now || rec.Pend != g.Pend {
			return g, fmt.Errorf("harness: workers disagree: worker %d at (now %d, pend %d), worker 0 at (now %d, pend %d)",
				r, rec.Now, rec.Pend, g.Now, g.Pend)
		}
		g.Stats = addStats(g.Stats, rec.Stats)
		g.Net += rec.Net
		g.Done = g.Done && rec.Done
		g.Fails = append(g.Fails, rec.Fails...)
	}
	return g, nil
}

func addStats(a, b nic.Stats) nic.Stats {
	a.Sent += b.Sent
	a.Accepted += b.Accepted
	a.Injected += b.Injected
	a.AcksSent += b.AcksSent
	a.AcksReceived += b.AcksReceived
	a.BulkGrants += b.BulkGrants
	a.BulkRejects += b.BulkRejects
	a.BulkPackets += b.BulkPackets
	a.Retransmits += b.Retransmits
	a.Duplicates += b.Duplicates
	return a
}

// DistTrace runs the spec across procs worker processes, driving them
// through the same chunked schedule as goldenTrace and assembling the
// identical state-trace string from the merged records — the multi-process
// column of the determinism matrix. Every worker must agree on Now, Pend,
// and the heatmap at every step.
func DistTrace(spec DistSpec, procs int, cycles, chunk sim.Cycle, shm bool) (string, error) {
	c, err := distLaunch(spec, procs, shm)
	if err != nil {
		return "", err
	}
	defer c.Close()
	var b strings.Builder
	now := sim.Cycle(0)
	for now < cycles {
		recs, err := distBroadcast(c, distCmd{Op: "run", Cycles: chunk})
		if err != nil {
			c.Kill()
			return "", err
		}
		g, err := mergeRecords(recs)
		if err != nil {
			c.Kill()
			return "", err
		}
		now = g.Now
		fmt.Fprintf(&b, "@%d %+v net=%d pend=%d done=%v\n",
			g.Now, g.Stats, g.Net, g.Pend, g.Done)
	}
	finB, err := json.Marshal(&distCmd{Op: "finish"})
	if err != nil {
		c.Kill()
		return "", err
	}
	var total int64
	var heatmap string
	for r := 0; r < procs; r++ {
		if err := c.Send(r, finB); err != nil {
			c.Kill()
			return "", err
		}
	}
	for r := 0; r < procs; r++ {
		fb, err := c.Recv(r)
		if err != nil {
			c.Kill()
			return "", fmt.Errorf("harness: final from worker %d: %w", r, err)
		}
		var fin distFinal
		if err := json.Unmarshal(fb, &fin); err != nil {
			c.Kill()
			return "", err
		}
		if r == 0 {
			heatmap = fin.Heatmap
		} else if fin.Heatmap != heatmap {
			c.Kill()
			return "", fmt.Errorf("harness: worker %d heatmap diverges from worker 0", r)
		}
		total += fin.Total
	}
	if spec.PendingInterval > 0 {
		b.WriteString(heatmap)
	}
	fmt.Fprintf(&b, "total=%d\n", total)
	if err := c.Close(); err != nil {
		return "", err
	}
	return b.String(), nil
}

// DistRunToDone runs the spec across procs workers to completion (fuzz
// mode): RunUntilDone with the given budget, a settle window, and the
// invariant monitors' finish pass, returning the summed stats, the global
// done flag, and any monitor violations.
func DistRunToDone(spec DistSpec, procs int, maxCycles sim.Cycle, shm bool) (nic.Stats, bool, []string, error) {
	c, err := distLaunch(spec, procs, shm)
	if err != nil {
		return nic.Stats{}, false, nil, err
	}
	defer c.Close()
	recs, err := distBroadcast(c, distCmd{Op: "rundone", Cycles: maxCycles})
	if err != nil {
		c.Kill()
		return nic.Stats{}, false, nil, err
	}
	g, err := mergeRecords(recs)
	if err != nil {
		c.Kill()
		return nic.Stats{}, false, nil, err
	}
	// Done is exchanged, so it must also be unanimous.
	for r, rec := range recs {
		if rec.Done != recs[0].Done {
			c.Kill()
			return nic.Stats{}, false, nil, fmt.Errorf("harness: worker %d done=%v disagrees", r, rec.Done)
		}
	}
	if err := c.Close(); err != nil {
		return nic.Stats{}, false, nil, err
	}
	return g.Stats, g.Done, g.Fails, nil
}
