// Package harness wires complete experiments: a network fabric, one NIC per
// node (plain, buffers-only, or NIFDY), processor programs, and statistics —
// and implements one entry point per table and figure of the paper's
// evaluation (see DESIGN.md's experiment index).
package harness

import (
	"fmt"

	"nifdy/internal/check"
	"nifdy/internal/core"
	"nifdy/internal/dist"
	"nifdy/internal/nic"
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/router"
	"nifdy/internal/sim"
	"nifdy/internal/stats"
	"nifdy/internal/topo"
)

// NICKind selects the interface configuration under comparison (§3, §4.1).
type NICKind int

const (
	// Plain is the bare NIC: one outgoing slot, two arrival slots.
	Plain NICKind = iota
	// BuffersOnly has NIFDY's total buffering but no protocol.
	BuffersOnly
	// NIFDY is the full unit from internal/core.
	NIFDY
	// PFC is the plain NIC over a fabric running Priority Flow Control:
	// hop-by-hop pause/resume backpressure at every router input and
	// ejection buffer (DESIGN.md §11). Selecting it enables
	// Fabric.PFC.Enable automatically.
	PFC
	// DCQCN is the rate-controlled NIC (nic.DCQCN) over an ECN-marking
	// fabric: routers mark heads crossing congested outputs, receivers echo
	// CNPs, senders pace injection. Selecting it enables Fabric.ECN.Enable
	// automatically.
	DCQCN
)

func (k NICKind) String() string {
	switch k {
	case Plain:
		return "none"
	case BuffersOnly:
		return "buffers"
	case NIFDY:
		return "NIFDY"
	case PFC:
		return "PFC"
	case DCQCN:
		return "DCQCN"
	default:
		return fmt.Sprintf("NICKind(%d)", int(k))
	}
}

// BuildOpts describes one simulation.
type BuildOpts struct {
	// Net builds the fabric.
	Net NetSpec
	// Kind selects the NIC.
	Kind NICKind
	// Params are the NIFDY parameters (also sizes the buffers-only NIC for
	// a fair comparison). Zero values take the spec's tuned parameters.
	Params core.Config
	// Costs models software overheads; zero selects node.CM5Costs.
	Costs node.Costs
	// Program supplies per-node application code; nil builds no processors
	// (the caller pumps NICs directly).
	Program func(n int) node.Program
	// PendingInterval enables pending-per-receiver sampling (Figure 5).
	PendingInterval sim.Cycle
	// Seed parameterizes fabric adaptivity and loss.
	Seed uint64
	// Drop enables the lossy-fabric model.
	Drop float64
	// Fabric configures the modern-fabric baselines: link-level PFC
	// pause/resume, ECN marking for DCQCN, and the lossy-wire model
	// (WireDrop/WireCorrupt) that exercises NIFDY's §6 retransmission path.
	// Kinds PFC and DCQCN force their respective enables; the loss knobs
	// compose with every NIC kind.
	Fabric router.FabricConfig
	// Check enables the runtime invariant monitors (internal/check): the
	// built Sim carries a Checker installed as an engine step hook,
	// sweeping the protocol and substrate invariants at the configured
	// cadence. Sequence accounting is automatically disabled for
	// configurations that clone or drop packets (Retransmit,
	// DialogTakeover, Drop), and the in-order monitor for combinations
	// with no ordering guarantee (plain NICs on adaptive fabrics). Nil
	// builds no checker and costs nothing.
	Check *check.Options
	// IfaceMutate injects test-only substrate faults into node
	// IfaceMutateNode's interface, for invariant-monitor validation.
	IfaceMutate     router.IfaceMutations
	IfaceMutateNode int
	// DCQCNMutate injects test-only rate-limiter faults into node
	// DCQCNMutateNode's NIC (Kind DCQCN only), for invariant-monitor
	// validation.
	DCQCNMutate     nic.DCQCNMutations
	DCQCNMutateNode int
	// EngineShards selects intra-simulation parallelism: 0 or 1 builds the
	// serial engine; larger values build sim.NewParallel and partition the
	// fabric with the network's topology-aware Partition hook — each node's
	// router, NIC, and processor share a shard, and the only cross-shard
	// edges are link wires, whose sends are staged per shard and merged at
	// the flush barrier. Results are bit-identical to the serial engine for
	// any shard count (enforced by the sharded determinism tests). Values
	// above the node count are clamped (except under Dist, where the shard
	// count is part of the cross-process contract and mismatches panic).
	EngineShards int
	// Window is the conservative synchronization window W in cycles
	// (default 1, today's per-tick model). W is a model parameter: the
	// fabric's channels are padded so no cross-shard event can arrive
	// within W cycles of its send, which lets shards free-run W cycles
	// between barriers. A fixed W is bit-identical across every
	// {shards x processes} split; different W values are different (equally
	// valid) models.
	Window int
	// Dist, when set, builds this simulation as one worker of a
	// multi-process run: the full fabric is constructed with EngineShards
	// total shards (which must be a multiple of Dist.Procs), but only the
	// worker's contiguous slice is registered to tick; channels crossing
	// process boundaries are carried by the dist transport, synchronized at
	// every window boundary. Drop, Retransmit, and DialogTakeover are not
	// supported (their packet cloning breaks cross-process flit identity)
	// and panic.
	Dist *dist.Worker
	// DisableIdleSkip turns off quiescence skipping (determinism baseline).
	DisableIdleSkip bool
}

// Sim is a wired simulation.
type Sim struct {
	Eng     *sim.Engine
	Net     topo.Network
	NICs    []nic.NIC
	Procs   []*node.Proc
	Pending *stats.Pending
	// Checker is the invariant-monitor subsystem, non-nil iff
	// BuildOpts.Check was set.
	Checker *check.Checker

	stopped bool
}

// Build wires a simulation from opts.
func Build(opts BuildOpts) *Sim {
	if opts.Costs == (node.Costs{}) {
		opts.Costs = node.CM5Costs()
	}
	window := opts.Window
	if window < 1 {
		window = 1
	}
	// The fabric-baseline kinds imply their fabric feature: PFC is the plain
	// NIC plus pause/resume links, DCQCN is the rate-control NIC plus ECN
	// marking.
	//lint:allow(kindswitch) only the fabric-baseline kinds imply a fabric feature; the NIFDY-family kinds deliberately leave Fabric zero
	switch opts.Kind {
	case PFC:
		opts.Fabric.PFC.Enable = true
	case DCQCN:
		opts.Fabric.ECN.Enable = true
	}
	ifOpts := topo.IfaceOptions{
		DropProb: opts.Drop, Seed: opts.Seed,
		Mutate: opts.IfaceMutate, MutateNode: opts.IfaceMutateNode,
		Window: window,
		Fabric: opts.Fabric,
	}
	net := opts.Net.Build(opts.Seed, ifOpts)
	if window > 1 {
		// W > 1 is only sound on fabrics whose channels were padded for it.
		if ws, ok := net.(topo.WindowSized); !ok || ws.SyncWindow() != window {
			panic(fmt.Sprintf("harness: %s does not support a synchronization window of %d",
				opts.Net.Name, window))
		}
	}
	params := opts.Params
	if isZeroParams(params) {
		params = opts.Net.Params
	}
	shards := opts.EngineShards
	if shards < 1 {
		shards = 1
	}
	var eng *sim.Engine
	var x *dist.Exchange
	if w := opts.Dist; w != nil {
		// Multi-process worker: the shard count is shared protocol state, so
		// mismatches are errors rather than silent clamps.
		if shards > net.Nodes() || shards%w.Procs != 0 {
			panic(fmt.Sprintf("harness: %d shards cannot split over %d worker processes (%d nodes)",
				shards, w.Procs, net.Nodes()))
		}
		// Launchers validate specs up front (DistSpec.Validate); the panic is
		// the backstop for direct Build calls, and carries the typed
		// dist.ErrUnsupportedFeature so recover-based callers can classify.
		if err := distFeatureErr(opts, params); err != nil {
			panic(err)
		}
		per := shards / w.Procs
		eng = sim.NewParallelOwned(shards, w.Rank*per, (w.Rank+1)*per)
		eng.SetWindow(sim.Cycle(window))
		x = dist.NewExchange(eng, w)
		eng.SetWindowSync(x)
		eng.SetCrossHook(x.CrossHook(func(sh int) int { return sh / per }))
	} else {
		if shards > net.Nodes() {
			shards = net.Nodes()
		}
		if shards > 1 {
			eng = sim.NewParallel(shards)
		} else {
			eng = sim.New()
		}
		eng.SetWindow(sim.Cycle(window))
	}
	if opts.DisableIdleSkip {
		eng.SetIdleSkip(false)
	}
	s := &Sim{
		Eng: eng, Net: net,
		Pending: stats.NewPending(net.Nodes(), opts.PendingInterval),
	}
	// Topology-aware partition: node n's router(s), NIC, and processor all
	// tick in shardOf[n]; the fabric marks channels crossing shard
	// boundaries for staged cross-shard delivery (or, under Dist, hands
	// process-crossing ones to the transport via the cross hook).
	shardOf := net.Partition(shards)
	net.RegisterRoutersSharded(s.Eng, shardOf)
	s.Pending.SetShards(shards)
	if x != nil {
		s.Pending.EnableDeltas()
		x.BindPending(s.Pending)
	}
	if opts.PendingInterval > 0 {
		// Sampled as a step hook (pre-tick, on the stepping goroutine): the
		// same between-cycles instant for every shard count.
		s.Eng.RegisterStepHookClocked(s.Pending.Sample, s.Pending.Clock())
	}
	if opts.Check != nil {
		co := *opts.Check
		if x != nil {
			// Worker processes audit their own slice; packet pointers are not
			// stable across the process boundary, so the pointer-keyed
			// sequence and ordering monitors cannot run.
			co.Local = true
			co.Sequence = false
			co.InOrder = false
		}
		switch {
		case params.DialogTakeover > 0:
			// Takeover clones packets under fresh identities; neither pointer
			// nor ID accounting survives.
			co.Sequence = false
			co.InOrder = false
		case opts.Kind == NIFDY && params.Retransmit:
			// Retransmission clones carry the original's ID and the §6.2 dup
			// bit suppresses duplicate deliveries, so ID-keyed accounting
			// stays exact even over lossy wires: every logical packet is sent
			// once and accepted exactly once.
			co.ByID = true
		case opts.Drop > 0 || opts.Fabric.Lossy():
			// Lossy fabric without retransmission: losses are the point, so
			// end-to-end accounting would only report them.
			co.Sequence = false
			co.InOrder = false
		}
		if co.InOrder && opts.Kind != NIFDY && !opts.Net.InOrderFabric {
			// A plain NIC on a reordering fabric has no ordering guarantee
			// to check.
			co.InOrder = false
		}
		if co.InOrder && opts.Kind == DCQCN {
			// The rate limiter paces packets into whichever VC has credit,
			// and consecutive packets ejecting on different VCs can complete
			// out of order. DCQCN (like the RoCEv2 NICs it models) carries
			// no reorder buffer — presentation order is NIFDY's §2.2
			// contribution, not the baseline's.
			co.InOrder = false
		}
		s.Checker = check.New(s.Eng, net, co)
	}
	for n := 0; n < net.Nodes(); n++ {
		hooks := s.Pending.HooksFor(shardOf[n])
		if s.Checker != nil {
			hooks = nic.Combine(hooks, s.Checker.HooksFor(shardOf[n]))
		}
		var nc nic.NIC
		switch opts.Kind {
		case Plain, PFC:
			// PFC is the plain NIC: the backpressure lives in the fabric.
			nc = nic.NewBasic(nic.BasicConfig{Node: n, OutBuf: 1, ArrBuf: 2, Hooks: hooks}, net.Iface(n))
		case BuffersOnly:
			// Same total buffering as the NIFDY unit, redistributed with at
			// least half on the arrivals side (§3).
			total := params.TotalBuffers()
			arr := (total + 1) / 2
			nc = nic.NewBasic(nic.BasicConfig{Node: n, OutBuf: total - arr, ArrBuf: arr, Hooks: hooks}, net.Iface(n))
		case NIFDY:
			cfg := params
			cfg.Node = n
			// Per-node ID space: allocation is deterministic and race-free
			// regardless of how nodes are sharded.
			cfg.IDs = packet.NewNodeIDs(n)
			cfg.Hooks = hooks
			nc = core.New(cfg, net.Iface(n))
		case DCQCN:
			mut := nic.DCQCNMutations{}
			if n == opts.DCQCNMutateNode {
				mut = opts.DCQCNMutate
			}
			nc = nic.NewDCQCN(nic.DCQCNConfig{
				Node: n, OutBuf: 1, ArrBuf: 2,
				CPF:   net.Chars().CPF,
				Hooks: hooks, Mutate: mut,
			}, net.Iface(n))
		default:
			panic("harness: unknown NIC kind")
		}
		s.Eng.RegisterSharded(shardOf[n], nc)
		s.NICs = append(s.NICs, nc)
		if s.Checker != nil && (x == nil || s.Eng.Owns(shardOf[n])) {
			s.Checker.AddNIC(nc)
		}
	}
	if opts.Program != nil {
		if x != nil {
			// Barriers created while programs are instantiated get shared
			// creation-order IDs and distributed completion; creation order
			// is identical in every worker because every Program(n) call
			// below runs in every process.
			node.SetBarrierObserver(x.ObserveBarrier)
		}
		for n := 0; n < net.Nodes(); n++ {
			prog := opts.Program(n)
			if prog == nil {
				continue // node has no program: its NIC still ticks
			}
			if x != nil && !s.Eng.Owns(shardOf[n]) {
				// Another process runs this node. Program(n) was still
				// called, so shared state it creates (e.g. a generator's
				// barrier) exists here in the same order.
				continue
			}
			p := node.NewProc(n, s.NICs[n], opts.Costs, prog)
			// Same shard as the node's NIC, registered after it, so a
			// same-cycle delivery is pollable by the processor's tick.
			s.Eng.RegisterSharded(shardOf[n], p)
			s.Procs = append(s.Procs, p)
			if s.Checker != nil {
				s.Checker.AddProc(p)
			}
			p.Start()
		}
		if x != nil {
			node.SetBarrierObserver(nil)
		}
	}
	if s.Checker != nil {
		s.Checker.Install()
	}
	return s
}

// isZeroParams reports whether the caller left the NIFDY parameters unset.
func isZeroParams(c core.Config) bool {
	return c.O == 0 && c.B == 0 && c.D == 0 && c.W == 0 && !c.AckOnArrival &&
		!c.PerPacketBulkAcks && !c.Piggyback && !c.Retransmit &&
		c.Mutate == (core.Mutations{})
}

// Close stops all processor goroutines and the engine's worker pool. Safe to
// call repeatedly.
func (s *Sim) Close() {
	if s.stopped {
		return
	}
	s.stopped = true
	for _, p := range s.Procs {
		p.Stop()
	}
	s.Eng.Close()
}

// Done reports whether every processor finished.
func (s *Sim) Done() bool {
	for _, p := range s.Procs {
		if !p.Done() {
			return false
		}
	}
	return true
}

// RunUntilDone steps until all programs finish or max cycles elapse,
// reporting success and the final cycle.
func (s *Sim) RunUntilDone(max sim.Cycle) (bool, sim.Cycle) {
	ok := s.Eng.RunUntil(s.Done, max)
	return ok, s.Eng.Now()
}

// Accepted reports total packets accepted by processors. Like
// AggregateStats, only call while the engine is between cycles (NIC
// counters are owned by their shards during a tick).
func (s *Sim) Accepted() int64 { return s.AggregateStats().Accepted }

// AggregateStats sums all NIC counters. Only call while the engine is
// between cycles — counters are written by their shards during a tick.
func (s *Sim) AggregateStats() nic.Stats {
	var a nic.Stats
	for _, nc := range s.NICs {
		st := nc.Stats()
		a.Sent += st.Sent
		a.Accepted += st.Accepted
		a.Injected += st.Injected
		a.AcksSent += st.AcksSent
		a.AcksReceived += st.AcksReceived
		a.BulkGrants += st.BulkGrants
		a.BulkRejects += st.BulkRejects
		a.BulkPackets += st.BulkPackets
		a.Retransmits += st.Retransmits
		a.Duplicates += st.Duplicates
	}
	return a
}
