// Package flow implements the flow-level fabric: a Narses-style
// bandwidth-sharing network model that replaces cycle-by-cycle flit
// switching with piecewise-constant per-flow rates, re-solved only on flow
// arrival and departure events. The NIFDY protocol layer above it stays
// exact — packets still open dialogs, consume OPT slots, obey windows, and
// generate acks through the same router.Port contract the flit fabrics
// implement — only a packet's fabric traversal time comes from the flow
// model.
//
// # Model
//
// Every in-flight packet is one flow. A flow's rate is its max-min-style
// fair share of the three resources it occupies: the source access link
// (capacity 1/CPF flits per cycle, shared by all flows leaving the node),
// the destination access link (shared by all flows arriving there), and the
// fabric bisection (shared by flows whose endpoints lie in different
// halves). Rates are recomputed only when the flow set changes; between
// events every flow drains linearly, so the fabric's cost is per *event*,
// not per cycle — the property that buys orders of magnitude in simulated
// scale (PAPERS.md: Narses).
//
// A flow occupies its source injection slot until its tail leaves the
// source (drain time = size/rate), which reproduces wormhole source
// blocking: congestion at the destination slows the flow's rate, which
// keeps the sender's slot busy, which back-pressures the NIC — the
// secondary-blocking tree the NIFDY protocol exists to prevent. After
// draining, the packet rides a fixed-latency pipe (AvgHops · HopCycles)
// and then lands in the destination's arrival buffer if it has room, or
// parks in the destination's fabric-side queue otherwise. A destination
// whose parked queue is full stalls: flows towards it drop to rate zero
// until the NIC drains arrivals, exactly the end-point congestion feedback
// the paper studies.
//
// # State layout and engine integration
//
// All per-node and per-flow state lives in flat arrays indexed by node and
// flow id (structure of arrays, no per-component pointer chasing). The
// fabric registers no routers; ports are written by their owning NIC's
// shard during the tick phase and by the solver during the pre-tick step
// hook, when no shard is ticking — the same single-writer alternation the
// latch discipline gives flit fabrics. Cross-shard hand-off happens through
// per-shard staging lists merged in node order, so results are
// bit-identical for any shard count.
package flow

import (
	"fmt"
	"math/bits"
	"slices"

	"nifdy/internal/packet"
	"nifdy/internal/ring"
	"nifdy/internal/rng"
	"nifdy/internal/router"
	"nifdy/internal/sim"
	"nifdy/internal/topo"
)

// rateQ is the fixed-point scale for rates (flits per cycle, Q20): integer
// arithmetic keeps the solver bit-deterministic across shard counts.
const rateQ = 1 << 20

// Config sizes a flow-level fabric. The defaults mirror the flit fabrics'
// link and buffer parameters; twins derived from a flit topology take them
// from its Characteristics.
type Config struct {
	// Name labels the fabric ("mesh 8x8 flow").
	Name string
	// Nodes is the number of end points.
	Nodes int
	// CPF is the access-link serialization time per flit in cycles; zero
	// selects 4 (one 32-bit flit over a 1-byte link).
	CPF int
	// HopCycles is the per-hop header latency in cycles; zero selects
	// CPF+2 (serialization plus route/arbitration, the flit routers'
	// effective per-hop pipeline).
	HopCycles int
	// HopFlitCycles is the extra per-hop latency per flit of packet length,
	// in cycles — zero for wormhole/cut-through fabrics (the body streams
	// behind the header), CPF for store-and-forward fabrics (every hop
	// holds the whole packet). Making the pipe latency size-aware keeps
	// short acks from paying the long-packet store-and-forward price.
	HopFlitCycles int
	// AvgHops is the mean router-to-router distance; the pipe latency every
	// drained packet rides is round(AvgHops·(HopCycles +
	// HopFlitCycles·flits)). Zero selects 1.
	AvgHops float64
	// MaxHops is reported in Chars.
	MaxHops int
	// BisectionFPC is the bisection capacity in flits per cycle shared by
	// flows crossing the halves; zero or negative disables the constraint.
	BisectionFPC float64
	// FabricFPC is the aggregate internal capacity in flits per cycle over
	// all router-to-router links. Every active flow holds AvgHops links, so
	// the fabric sustains at most FabricFPC/AvgHops flits per cycle in
	// total — the whole-fabric contention bound that makes mesh-like
	// topologies saturate realistically. Zero or negative disables it.
	FabricFPC float64
	// DstCapFlits is the fabric-side queue per (destination, class): parked
	// flits beyond it stall the destination (rate-zero inbound flows).
	// Zero selects 16.
	DstCapFlits int
	// ArrCapFlits is the arrival (ejection) buffer per (node, class) in
	// flits, the analog of the flit interfaces' per-VC eject depth. Zero
	// selects the iface default (8).
	ArrCapFlits int
	// SolveStride quantizes solver activity in time: drain and landing
	// events are processed on the next multiple of the stride, so the
	// O(active-flows) advance/solve passes run at most once per stride (plus
	// once per cycle with newly staged sends) instead of once per event
	// cycle. Zero or one selects exact event timing — the setting every
	// seed-size twin is calibrated at. Scaling configs use a coarse stride:
	// the timing error is bounded by stride/drain-time, which the analytic
	// 100k+ constructors keep around a percent, and results remain
	// bit-deterministic for any shard count since the quantization is purely
	// a function of configuration.
	SolveStride int
	// VolumeFlits is reported in Chars (informational).
	VolumeFlits int
	// InOrder is reported in Chars. The flow fabric delivers each
	// (src, dst, class) stream in order by construction.
	InOrder bool
	// Iface carries the shared node-interface options (loss model, seed).
	Iface topo.IfaceOptions
}

func (c *Config) defaults() {
	if c.CPF <= 0 {
		c.CPF = 4
	}
	if c.HopCycles <= 0 {
		c.HopCycles = c.CPF + 2
	}
	if c.AvgHops <= 0 {
		c.AvgHops = 1
	}
	if c.DstCapFlits <= 0 {
		c.DstCapFlits = 16
	}
	if c.ArrCapFlits <= 0 {
		c.ArrCapFlits = c.Iface.EffectiveBufFlits()
	}
	if c.SolveStride <= 0 {
		c.SolveStride = 1
	}
}

// stagedSend is one StartSend awaiting activation, recorded by the owning
// shard during its tick phase.
type stagedSend struct {
	node int32
	cls  uint8
	p    *packet.Packet
}

// pipeEntry is a drained packet riding the fixed-latency pipe to its
// destination.
type pipeEntry struct {
	p  *packet.Packet
	at sim.Cycle
}

// Fabric is the flow-level network. It implements topo.Network.
type Fabric struct {
	cfg       Config
	pipeLat   sim.Cycle
	pipeFlitQ int64 // rateQ·AvgHops·HopFlitCycles, per-flit pipe term
	linkCap   int64 // rateQ/CPF, per access link
	bisCap    int64 // rateQ·BisectionFPC, 0 = unconstrained
	fabCap    int64 // rateQ·FabricFPC/AvgHops, 0 = unconstrained

	ports []Port

	// Flow state (structure of arrays, indexed by flow id).
	fPkt     []*packet.Packet
	fSrc     []int32
	fDst     []int32
	fRem     []int64 // remaining work, flits·rateQ
	fRate    []int64 // rateQ units (flits/cycle)
	fDrainAt []sim.Cycle
	fSeq     []int64
	fIdx     []int32 // position in active (-1 when retired): O(1) removal
	active   []int32 // dense list of live flow ids
	freeIDs  []int32
	// Per-destination intrusive list of inbound flows (-1 ends), for
	// marking on destination-census and stall changes.
	dstHead        []int32
	fNextD, fPrevD []int32
	// Incremental rate maintenance: rateDirty lists flows whose constraint
	// inputs changed since the last solve (fMark dedups); a change in either
	// global share instead forces a full pass, since it re-rates every
	// (crossing) flow anyway. The share divisors hold inside a dead band
	// (stride > 1 only) so census jitter around a grid point cannot force a
	// full pass every solve. All marking happens on the stepping goroutine
	// in event order, so the dirty set is deterministic.
	rateDirty          []int32
	fMark              []bool
	crossDiv, fabDiv   int64
	lastCross, lastFab int64
	needFull           bool
	// shareTab[k] is linkCap/k — the per-flow access-link share among k
	// concurrent flows, precomputed so the solver's hot loop divides only
	// for fan-in beyond the table.
	shareTab [65]int64

	// Per-node aggregates (solver-owned).
	nSrc        []int32                      // active flows leaving node
	nDst        []int32                      // active flows arriving at node
	parked      []ring.Deque[*packet.Packet] // per (node·2+class)
	parkedFlits []int32                      // per (node·2+class)

	// One pipe per class: with size-aware pipe latency a short reply could
	// land before an earlier long request, so a single FIFO would block it.
	// Classes are logically (on the CM-5, physically) independent networks;
	// per-class FIFOs keep each (src, dst, class) stream in order without
	// cross-class head-of-line blocking.
	pipes [packet.NumClasses]ring.Deque[pipeEntry]

	// Per-shard hand-off, written by ports during their shard's tick.
	staged  [][]stagedSend
	dirty   [][]int32 // destinations whose arrival buffers freed space
	shardOf []int

	// clock is the solver's engine clock (RegisterStepHookClocked): asleep
	// until nextWork, woken to now+1 by ports that stage sends or free
	// arrival space during the tick phase.
	clock sim.Activity

	nCross   int32 // active flows crossing the bisection
	seq      int64
	lastRun  sim.Cycle
	nextWork sim.Cycle
	fabFlits int64 // flits in the fabric (active + parked + pipe)

	fabInjected, fabDelivered, fabDropped int64

	loss []*rng.Source // per-destination loss streams, nil when reliable

	// Solver scratch (reused across runs).
	drained  []int32
	mergeIdx []int

	bound bool
}

// New builds a flow-level fabric.
func New(cfg Config) *Fabric {
	cfg.defaults()
	if cfg.Nodes < 1 {
		panic(fmt.Sprintf("flow: %d nodes", cfg.Nodes))
	}
	f := &Fabric{
		cfg:       cfg,
		pipeLat:   sim.Cycle(cfg.AvgHops*float64(cfg.HopCycles) + 0.5),
		pipeFlitQ: int64(cfg.AvgHops*float64(cfg.HopFlitCycles)*rateQ + 0.5),
		linkCap:   rateQ / int64(cfg.CPF),
	}
	if f.pipeLat < 1 {
		f.pipeLat = 1
	}
	if cfg.BisectionFPC > 0 {
		f.bisCap = int64(cfg.BisectionFPC * rateQ)
	}
	if cfg.FabricFPC > 0 {
		f.fabCap = int64(cfg.FabricFPC / cfg.AvgHops * rateQ)
	}
	n := cfg.Nodes
	f.ports = make([]Port, n)
	for i := range f.ports {
		f.ports[i].init(f, int32(i))
	}
	f.nSrc = make([]int32, n)
	f.nDst = make([]int32, n)
	f.parked = make([]ring.Deque[*packet.Packet], n*packet.NumClasses)
	f.parkedFlits = make([]int32, n*packet.NumClasses)
	f.shardOf = make([]int, n)
	f.staged = make([][]stagedSend, 1)
	f.dirty = make([][]int32, 1)
	f.nextWork = sim.Never
	f.needFull = true
	f.dstHead = make([]int32, n)
	for i := range f.dstHead {
		f.dstHead[i] = -1
	}
	f.shareTab[0] = f.linkCap
	for k := 1; k < len(f.shareTab); k++ {
		f.shareTab[k] = f.linkCap / int64(k)
	}
	if cfg.Iface.DropProb > 0 {
		f.loss = make([]*rng.Source, n)
		for i := range f.loss {
			f.loss[i] = f.cfg.Iface.LossRNG(uint64(i))
		}
	}
	return f
}

// Nodes implements topo.Network.
func (f *Fabric) Nodes() int { return f.cfg.Nodes }

// Iface implements topo.Network.
func (f *Fabric) Iface(n int) router.Port { return &f.ports[n] }

// FlowPort returns node n's concrete port (for the hybrid mux).
func (f *Fabric) FlowPort(n int) *Port { return &f.ports[n] }

// RegisterRouters implements topo.Network: the flow fabric has no routers;
// registration installs the solver as a pre-tick step hook.
func (f *Fabric) RegisterRouters(e *sim.Engine) {
	f.bind(e, f.shardOf) // all-zeros shard map
}

// Partition implements topo.Network: contiguous node blocks (the solver
// merges per-shard staging in node order, so any partition is
// deterministic; contiguous blocks keep NIC and port co-located trivially).
func (f *Fabric) Partition(shards int) []int {
	return topo.AlignedPartition(f.cfg.Nodes, 1, shards)
}

// RegisterRoutersSharded implements topo.Network.
func (f *Fabric) RegisterRoutersSharded(e *sim.Engine, shardOf []int) {
	f.bind(e, shardOf)
}

func (f *Fabric) bind(e *sim.Engine, shardOf []int) {
	if f.bound {
		panic("flow: fabric registered twice")
	}
	f.bound = true
	copy(f.shardOf, shardOf)
	s := e.Shards()
	f.staged = make([][]stagedSend, s)
	f.dirty = make([][]int32, s)
	for n := range f.ports {
		f.ports[n].shard = int32(f.shardOf[n] % s)
	}
	// Clocked: the solver's clock holds nextWork (its next drain/landing
	// event, stride-quantized), and ports wake it when they stage work, so
	// an otherwise-quiet engine fast-forwards straight between flow events.
	e.RegisterStepHookClocked(f.step, &f.clock)
}

// Chars implements topo.Network.
func (f *Fabric) Chars() topo.Characteristics {
	name := f.cfg.Name
	if name == "" {
		name = fmt.Sprintf("flow[%d]", f.cfg.Nodes)
	}
	return topo.Characteristics{
		Name: name, Nodes: f.cfg.Nodes,
		AvgHops: f.cfg.AvgHops, MaxHops: f.cfg.MaxHops,
		VolumeFlits: f.cfg.VolumeFlits, BisectionFPC: f.cfg.BisectionFPC,
		FabricFPC: f.cfg.FabricFPC,
		InOrder:   f.cfg.InOrder,
		CPF:       f.cfg.CPF, HopLat: float64(f.cfg.HopCycles),
		HopLatPerFlit: float64(f.cfg.HopFlitCycles),
	}
}

// BufferedFlits implements topo.Network: flits held by the flow model
// (draining, parked, or in the pipe; arrival buffers excluded, matching the
// flit fabrics).
func (f *Fabric) BufferedFlits() int { return int(f.fabFlits) }

// AuditRouters implements topo.Network: a flow fabric has no routers.
func (f *Fabric) AuditRouters(func(*router.Router)) {}

// AuditPackets implements the check.PacketAuditor census hook: one call per
// whole-packet reference the fabric and its ports hold, in deterministic
// order. Labels: "flow" (draining), "parked", "pipe" (in-fabric — these
// balance the packet counters), "staged" (pre-activation), "port-arr"
// (arrival buffers, delivered side).
func (f *Fabric) AuditPackets(fn func(node int, where string, p *packet.Packet)) {
	for _, id := range f.active {
		fn(int(f.fSrc[id]), "flow", f.fPkt[id])
	}
	for i := range f.parked {
		nd := i / packet.NumClasses
		f.parked[i].ForEach(func(p *packet.Packet) { fn(nd, "parked", p) })
	}
	for c := range f.pipes {
		f.pipes[c].ForEach(func(e pipeEntry) { fn(e.p.Dst, "pipe", e.p) })
	}
	for s := range f.staged {
		for _, st := range f.staged[s] {
			fn(int(st.node), "staged", st.p)
		}
	}
	for n := range f.ports {
		pt := &f.ports[n]
		for c := range pt.arrQ {
			pt.arrQ[c].ForEach(func(p *packet.Packet) { fn(n, "port-arr", p) })
		}
	}
}

// PacketCounters implements the check.PacketAuditor books: lifetime packets
// injected into the fabric (flows activated), delivered out of it (arrival
// buffer enqueues), and dropped by the loss model. injected − delivered −
// dropped must equal the census of "flow"+"parked"+"pipe" references.
func (f *Fabric) PacketCounters() (injected, delivered, dropped int64) {
	return f.fabInjected, f.fabDelivered, f.fabDropped
}

// anyStaged reports whether any shard staged sends or freed arrival space
// since the last solver run.
func (f *Fabric) anyStaged() bool {
	for s := range f.staged {
		if len(f.staged[s]) > 0 || len(f.dirty[s]) > 0 {
			return true
		}
	}
	return false
}

// step is the solver: it runs as a pre-tick engine step hook, on the
// stepping goroutine, while every shard is quiescent. The fast path — no
// event due, nothing staged — is a few compares.
func (f *Fabric) step(now sim.Cycle) {
	if now < f.nextWork && !f.anyStaged() {
		return
	}
	changed := false

	// 1. Advance every active flow to the present (piecewise-linear drain),
	// collecting the ones whose remainder hits zero. A flow is due exactly
	// when this pass's advance zeroes it — rem ≤ rate·dt ⟺ drainAt ≤ now,
	// since the bound is lastRun + ceil(rem/rate) — so no separate scan of
	// the flow set is needed.
	f.drained = f.drained[:0]
	if dt := now - f.lastRun; dt > 0 {
		for _, id := range f.active {
			if r := f.fRate[id]; r > 0 {
				f.fRem[id] -= r * int64(dt)
				if f.fRem[id] <= 0 {
					f.fRem[id] = 0
					f.drained = append(f.drained, id)
				}
			}
		}
	}
	f.lastRun = now

	// 2. Retire drained flows (in admission order, restored by sorting the
	// batch — f.active's iteration order is retirement-scrambled): the
	// packet's tail has left its source — free the injection slot, credit
	// the books, and put the packet on the fixed-latency pipe.
	slices.SortFunc(f.drained, func(a, b int32) int {
		sa, sb := f.fSeq[a], f.fSeq[b]
		switch {
		case sa < sb:
			return -1
		case sa > sb:
			return 1
		}
		return 0
	})
	for _, id := range f.drained {
		f.retire(now, id)
		changed = true
	}

	// 3. Land pipe arrivals due now (per-class FIFO; within a class entries
	// retire in admission order and — size differences aside — land in it
	// too). A landing that parks may trip the destination's stall
	// threshold, so it forces a rate re-solve.
	for c := range f.pipes {
		for f.pipes[c].Len() > 0 {
			head, _ := f.pipes[c].Front()
			if head.at > now {
				break
			}
			e, _ := f.pipes[c].PopFront()
			if f.land(now, e.p) {
				changed = true
			}
		}
	}

	// 4. Promote parked packets at destinations whose arrival buffers freed
	// space this tick (merged across shards in node order).
	f.forEachMerged(f.dirty, func(nd int32) {
		if f.promote(now, nd) {
			changed = true
		}
	})
	for s := range f.dirty {
		f.dirty[s] = f.dirty[s][:0]
	}

	// 5. Activate staged sends (merged across shards in node order — the
	// same global order the serial engine produces, so results are
	// bit-identical at any shard count).
	f.forEachStaged(func(st stagedSend) {
		f.activate(now, st)
		changed = true
	})

	// 6. Re-solve rates when the flow set or a stall changed, then find the
	// next event: the model is piecewise-constant between here and there.
	if changed {
		f.solveRates(now)
	}
	f.recomputeNext()
}

// retire removes a drained flow: source slot frees, packet enters the pipe.
func (f *Fabric) retire(now sim.Cycle, id int32) {
	src, dst := f.fSrc[id], f.fDst[id]
	p := f.fPkt[id]
	pt := &f.ports[src]
	c := p.Class
	if pt.slots[c] == p {
		pt.slots[c] = nil
		pt.slotFlow[c] = -1
		pt.injected++
		pt.act.WakeAt(now) // the slot is free: the NIC may inject this cycle
	}
	f.nSrc[src]--
	f.nDst[dst]--
	if f.crosses(src, dst) {
		f.nCross--
	}
	lat := f.pipeLat
	if f.pipeFlitQ > 0 {
		lat += sim.Cycle((f.pipeFlitQ*int64(p.Flits()) + rateQ/2) / rateQ)
	}
	f.pipes[p.Class].PushBack(pipeEntry{p: p, at: now + lat})
	// Remove from the dense active list (swap with last; determinism is
	// preserved because every solver pass orders its work explicitly).
	f.removeActive(id)
	f.fPkt[id] = nil
	f.freeIDs = append(f.freeIDs, id)
	// The departure frees share on both access links.
	f.markSrc(src)
	f.markDst(dst)
}

func (f *Fabric) removeActive(id int32) {
	i := f.fIdx[id]
	if i < 0 || f.active[i] != id {
		panic("flow: retire of inactive flow")
	}
	last := int32(len(f.active) - 1)
	moved := f.active[last]
	f.active[i] = moved
	f.fIdx[moved] = i
	f.active = f.active[:last]
	f.fIdx[id] = -1
	dp, dn := f.fPrevD[id], f.fNextD[id]
	if dp >= 0 {
		f.fNextD[dp] = dn
	} else {
		f.dstHead[f.fDst[id]] = dn
	}
	if dn >= 0 {
		f.fPrevD[dn] = dp
	}
	f.fPrevD[id], f.fNextD[id] = -1, -1
}

// markFlow queues a flow for re-rating at the next solve.
func (f *Fabric) markFlow(id int32) {
	if !f.fMark[id] {
		f.fMark[id] = true
		f.rateDirty = append(f.rateDirty, id)
	}
}

// markSrc queues the flows leaving node src (at most one per class slot).
func (f *Fabric) markSrc(src int32) {
	for c := range f.ports[src].slotFlow {
		if id := f.ports[src].slotFlow[c]; id >= 0 {
			f.markFlow(id)
		}
	}
}

// markDst queues every flow inbound to dst (its census or stall state
// changed, so each one's share is suspect).
func (f *Fabric) markDst(dst int32) {
	for id := f.dstHead[dst]; id >= 0; id = f.fNextD[id] {
		f.markFlow(id)
	}
}

// land delivers a pipe arrival into the destination's arrival buffer, or
// parks it when the buffer is full, reporting whether it parked (parked
// flits beyond the destination cap stall inbound flows at rate zero until
// the NIC drains arrivals, so parking forces a re-solve).
func (f *Fabric) land(now sim.Cycle, p *packet.Packet) bool {
	dst := int32(p.Dst)
	if f.loss != nil && f.loss[dst] != nil && f.loss[dst].Bool(f.cfg.Iface.DropProb) {
		// Lossy-fabric model: the packet vanishes here, exactly where the
		// flit interfaces drop fully arrived packets.
		f.fabDropped++
		f.fabFlits -= int64(p.Flits())
		f.ports[dst].dropped++
		return false
	}
	pt := &f.ports[dst]
	size := int32(p.Flits())
	c := p.Class
	qi := int(dst)*packet.NumClasses + int(c)
	if f.parked[qi].Len() == 0 && pt.arrFlits[c]+size <= int32(f.cfg.ArrCapFlits) {
		f.deliverArr(now, pt, p)
		return false
	}
	stalled := f.parkedFlits[qi] >= int32(f.cfg.DstCapFlits)
	f.parked[qi].PushBack(p)
	f.parkedFlits[qi] += size
	if !stalled && f.parkedFlits[qi] >= int32(f.cfg.DstCapFlits) {
		f.markDst(dst) // crossed the stall threshold: inbound flows drop to zero
	}
	return true
}

// deliverArr moves a packet into the destination port's arrival buffer and
// wakes the NIC for this cycle's tick.
func (f *Fabric) deliverArr(now sim.Cycle, pt *Port, p *packet.Packet) {
	c := p.Class
	pt.arrQ[c].PushBack(p)
	pt.arrFlits[c] += int32(p.Flits())
	pt.act.WakeAt(now)
	f.fabDelivered++
	f.fabFlits -= int64(p.Flits())
}

// promote drains a destination's parked queues into freed arrival space,
// reporting whether a stalled destination may have unstalled.
func (f *Fabric) promote(now sim.Cycle, nd int32) bool {
	pt := &f.ports[nd]
	moved := false
	for c := 0; c < packet.NumClasses; c++ {
		qi := int(nd)*packet.NumClasses + c
		stalled := f.parkedFlits[qi] >= int32(f.cfg.DstCapFlits)
		for f.parked[qi].Len() > 0 {
			head, _ := f.parked[qi].Front()
			size := int32(head.Flits())
			if pt.arrFlits[c]+size > int32(f.cfg.ArrCapFlits) {
				break
			}
			p, _ := f.parked[qi].PopFront()
			f.parkedFlits[qi] -= size
			f.deliverArr(now, pt, p)
			moved = true
		}
		if stalled && f.parkedFlits[qi] < int32(f.cfg.DstCapFlits) {
			f.markDst(nd) // stall lifted: inbound flows resume
		}
	}
	return moved
}

// activate admits one staged send as a live flow.
func (f *Fabric) activate(now sim.Cycle, st stagedSend) {
	p := st.p
	id := f.allocFlow()
	src, dst := st.node, int32(p.Dst)
	f.fPkt[id] = p
	f.fSrc[id] = src
	f.fDst[id] = dst
	f.fRem[id] = int64(p.Flits()) * rateQ
	f.fRate[id] = 0
	f.fDrainAt[id] = sim.Never
	f.fSeq[id] = f.seq
	f.seq++
	f.fIdx[id] = int32(len(f.active))
	f.active = append(f.active, id)
	f.fPrevD[id] = -1
	f.fNextD[id] = f.dstHead[dst]
	if h := f.dstHead[dst]; h >= 0 {
		f.fPrevD[h] = id
	}
	f.dstHead[dst] = id
	f.nSrc[src]++
	f.nDst[dst]++
	if f.crosses(src, dst) {
		f.nCross++
	}
	f.ports[src].slotFlow[st.cls] = id
	f.fabInjected++
	f.fabFlits += int64(p.Flits())
	// The new flow needs a rate, and the census change touches every flow
	// sharing its source or destination link.
	f.markSrc(src)
	f.markDst(dst)
}

func (f *Fabric) allocFlow() int32 {
	if n := len(f.freeIDs); n > 0 {
		id := f.freeIDs[n-1]
		f.freeIDs = f.freeIDs[:n-1]
		return id
	}
	id := int32(len(f.fPkt))
	f.fPkt = append(f.fPkt, nil)
	f.fSrc = append(f.fSrc, 0)
	f.fDst = append(f.fDst, 0)
	f.fRem = append(f.fRem, 0)
	f.fRate = append(f.fRate, 0)
	f.fDrainAt = append(f.fDrainAt, 0)
	f.fSeq = append(f.fSeq, 0)
	f.fIdx = append(f.fIdx, -1)
	f.fNextD = append(f.fNextD, -1)
	f.fPrevD = append(f.fPrevD, -1)
	f.fMark = append(f.fMark, false)
	return id
}

// crosses reports whether a (src, dst) pair spans the bisection halves.
func (f *Fabric) crosses(src, dst int32) bool {
	half := int32(f.cfg.Nodes / 2)
	return (src < half) != (dst < half)
}

// solveRates recomputes every active flow's rate — its fair share of the
// source link, destination link, and bisection — and its drain time. A
// destination whose parked queue exceeds the fabric-side cap is stalled:
// flows towards it get rate zero until arrivals drain, which is the
// end-point backpressure that grows congestion trees under plain NICs.
func (f *Fabric) solveRates(now sim.Cycle) {
	stride := f.cfg.SolveStride
	var crossShare int64
	if f.bisCap > 0 && f.nCross > 0 {
		f.crossDiv = stableDiv(f.crossDiv, int64(f.nCross), stride)
		crossShare = f.bisCap / f.crossDiv
		if crossShare < 1 {
			crossShare = 1
		}
	}
	var fabShare int64
	if f.fabCap > 0 && len(f.active) > 0 {
		f.fabDiv = stableDiv(f.fabDiv, int64(len(f.active)), stride)
		fabShare = f.fabCap / f.fabDiv
		if fabShare < 1 {
			fabShare = 1
		}
	}
	// A change in either global share re-rates (nearly) every flow, so the
	// dirty set buys nothing — take the full pass. Otherwise only the
	// marked flows (source/destination census or stall changes) can have
	// moved: rate is a pure function of per-flow inputs, so visiting a
	// superset of the changed flows in any order is exact.
	if f.needFull || crossShare != f.lastCross || fabShare != f.lastFab {
		f.needFull = false
		f.lastCross, f.lastFab = crossShare, fabShare
		for _, id := range f.rateDirty {
			f.fMark[id] = false
		}
		f.rateDirty = f.rateDirty[:0]
		for _, id := range f.active {
			f.rateOne(now, id, crossShare, fabShare, stride)
		}
		return
	}
	for _, id := range f.rateDirty {
		f.fMark[id] = false
		if f.fIdx[id] >= 0 { // skip ids retired after marking
			f.rateOne(now, id, crossShare, fabShare, stride)
		}
	}
	f.rateDirty = f.rateDirty[:0]
}

// rateOne recomputes one flow's rate and drain bound.
func (f *Fabric) rateOne(now sim.Cycle, id int32, crossShare, fabShare int64, stride int) {
	src, dst := f.fSrc[id], f.fDst[id]
	qi := int(dst)*packet.NumClasses + int(f.fPkt[id].Class)
	var rate int64
	if f.parkedFlits[qi] >= int32(f.cfg.DstCapFlits) {
		// Stalled destination: the flow holds its source slot at rate
		// zero — the secondary-blocking analog.
		rate = 0
	} else {
		rate = f.shareOf(int64(f.nSrc[src]))
		if r := f.shareOf(coarsen(int64(f.nDst[dst]), stride)); r < rate {
			rate = r
		}
		if crossShare > 0 && f.crosses(src, dst) && crossShare < rate {
			rate = crossShare
		}
		if fabShare > 0 && fabShare < rate {
			rate = fabShare
		}
		if rate < 1 {
			rate = 1
		}
	}
	if rate == f.fRate[id] {
		// Unchanged rate ⇒ unchanged drain bound: the advance step consumed
		// exactly rate·dt of the remainder since the previous solve, so
		// now+ceil(rem/rate) equals the bound already stored (and a stalled
		// flow keeps its Never).
		return
	}
	f.fRate[id] = rate
	if rate == 0 {
		f.fDrainAt[id] = sim.Never
		return
	}
	at := now + sim.Cycle((f.fRem[id]+rate-1)/rate)
	if at <= now {
		at = now + 1 // a zero-remainder flow retires on the next event
	}
	f.fDrainAt[id] = at
}

// shareOf is the per-flow share of one access link among n concurrent flows.
func (f *Fabric) shareOf(n int64) int64 {
	if n < int64(len(f.shareTab)) {
		return f.shareTab[n]
	}
	return f.linkCap / n
}

// coarsen rounds a share divisor up to the next value representable in 7
// significant bits (< 1% relative error) so fair-share rates stay
// piecewise-constant under small churn in the flow census — without it
// every admission and retirement re-rates every active flow and the
// unchanged-rate fast path in solveRates never fires. Identity below 128
// and whenever the solver runs unquantized (stride <= 1), which keeps every
// calibration-sized configuration exact.
func coarsen(n int64, stride int) int64 {
	if stride <= 1 || n < 128 {
		return n
	}
	mask := int64(1)<<(bits.Len64(uint64(n))-7) - 1
	return (n + mask) &^ mask
}

// stableDiv holds a global share divisor inside a ±1/32 dead band of its
// last value: unlike a fixed rounding grid, the band moves with the
// divisor, so census jitter around any point — including the sawtooth of a
// retire batch followed by the re-injections it frees — leaves the divisor,
// and with it every fabric-limited rate, untouched until the census
// genuinely drifts ~3%. Exact (always n) when the solver runs unquantized.
func stableDiv(last, n int64, stride int) int64 {
	if stride <= 1 || last <= 0 {
		return n
	}
	d := n - last
	if d < 0 {
		d = -d
	}
	if d*32 <= last {
		return last
	}
	return n
}

// recomputeNext finds the earliest pending event: a flow draining or a pipe
// entry landing. With a coarse SolveStride the wake-up rounds up to the next
// stride boundary — events in between wait for it, which is what caps the
// solver at one full pass per stride.
func (f *Fabric) recomputeNext() {
	next := sim.Never
	for c := range f.pipes {
		if head, ok := f.pipes[c].Front(); ok && head.at < next {
			next = head.at
		}
	}
	for _, id := range f.active {
		if at := f.fDrainAt[id]; at < next {
			next = at
		}
	}
	if s := sim.Cycle(f.cfg.SolveStride); s > 1 && next != sim.Never {
		next = (next + s - 1) / s * s
	}
	f.nextWork = next
	f.clock.Sleep(next)
}

// forEachStaged drains the per-shard staging lists merged in ascending node
// order (each shard's list is already node-ascending because NICs tick in
// node order within a shard), yielding the exact order a single-shard
// engine produces.
func (f *Fabric) forEachStaged(fn func(stagedSend)) {
	if len(f.staged) == 1 {
		for _, st := range f.staged[0] {
			fn(st)
		}
		f.resetStaged()
		return
	}
	idx := f.mergeScratch()
	for {
		best, bestNode := -1, int32(0)
		for s := range f.staged {
			if idx[s] >= len(f.staged[s]) {
				continue
			}
			nd := f.staged[s][idx[s]].node
			if best < 0 || nd < bestNode {
				best, bestNode = s, nd
			}
		}
		if best < 0 {
			break
		}
		fn(f.staged[best][idx[best]])
		idx[best]++
	}
	f.resetStaged()
}

func (f *Fabric) resetStaged() {
	for s := range f.staged {
		for i := range f.staged[s] {
			f.staged[s][i] = stagedSend{}
		}
		f.staged[s] = f.staged[s][:0]
	}
}

// forEachMerged walks per-shard int lists merged in ascending value order.
func (f *Fabric) forEachMerged(lists [][]int32, fn func(int32)) {
	if len(lists) == 1 {
		for _, v := range lists[0] {
			fn(v)
		}
		return
	}
	idx := f.mergeScratch()
	for {
		best := -1
		var bestV int32
		for s := range lists {
			if idx[s] >= len(lists[s]) {
				continue
			}
			if v := lists[s][idx[s]]; best < 0 || v < bestV {
				best, bestV = s, v
			}
		}
		if best < 0 {
			return
		}
		fn(bestV)
		idx[best]++
	}
}

// mergeScratch returns a zeroed per-shard cursor slice.
func (f *Fabric) mergeScratch() []int {
	if cap(f.mergeIdx) < len(f.staged) {
		f.mergeIdx = make([]int, len(f.staged))
	}
	f.mergeIdx = f.mergeIdx[:len(f.staged)]
	for i := range f.mergeIdx {
		f.mergeIdx[i] = 0
	}
	return f.mergeIdx
}
