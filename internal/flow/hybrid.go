package flow

import (
	"fmt"

	"nifdy/internal/packet"
	"nifdy/internal/router"
	"nifdy/internal/sim"
	"nifdy/internal/topo"
)

// Hybrid composes a flit-accurate sub-network over the hot region — nodes
// [0, K) of the address space — with a flow-level fabric spanning all N
// nodes. Traffic whose endpoints both lie in the hot region traverses the
// cycle-accurate fabric; everything else rides the flow model. Node
// numbering is shared, so the NIFDY protocol layer is oblivious: each hot
// node drives one muxed port, each cold node drives its flow port directly.
type Hybrid struct {
	sub topo.Network
	fab *Fabric
	k   int
	hot []hybridPort
}

// NewHybrid builds the seam. sub's nodes become the hot region [0,
// sub.Nodes()); fab must span the full address space.
func NewHybrid(sub topo.Network, fab *Fabric) *Hybrid {
	k := sub.Nodes()
	if k > fab.Nodes() {
		panic(fmt.Sprintf("flow: hybrid hot region %d exceeds fabric %d", k, fab.Nodes()))
	}
	h := &Hybrid{sub: sub, fab: fab, k: k}
	h.hot = make([]hybridPort, k)
	for n := 0; n < k; n++ {
		fp := fab.FlowPort(n)
		h.hot[n] = hybridPort{hot: sub.Iface(n), flow: fp, k: k}
		// Both sub-ports share one quiescence latch so either fabric's
		// events wake the NIC.
		fp.act = h.hot[n].hot.Activity()
	}
	return h
}

// Nodes implements topo.Network.
func (h *Hybrid) Nodes() int { return h.fab.Nodes() }

// Iface implements topo.Network.
func (h *Hybrid) Iface(n int) router.Port {
	if n < h.k {
		return &h.hot[n]
	}
	return h.fab.Iface(n)
}

// RegisterRouters implements topo.Network.
func (h *Hybrid) RegisterRouters(e *sim.Engine) {
	h.sub.RegisterRouters(e)
	h.fab.RegisterRouters(e)
}

// Partition implements topo.Network: the hot region keeps its topology's
// own sharding (leaf groups, subtrees); cold nodes are split into
// contiguous blocks.
func (h *Hybrid) Partition(shards int) []int {
	out := make([]int, h.fab.Nodes())
	copy(out, h.sub.Partition(shards))
	cold := topo.AlignedPartition(h.fab.Nodes()-h.k, 1, shards)
	copy(out[h.k:], cold)
	return out
}

// RegisterRoutersSharded implements topo.Network.
func (h *Hybrid) RegisterRoutersSharded(e *sim.Engine, shardOf []int) {
	h.sub.RegisterRoutersSharded(e, shardOf[:h.k])
	h.fab.RegisterRoutersSharded(e, shardOf)
}

// Chars implements topo.Network.
func (h *Hybrid) Chars() topo.Characteristics {
	sc, fc := h.sub.Chars(), h.fab.Chars()
	fc.Name = fmt.Sprintf("hybrid[%s + %s]", sc.Name, fc.Name)
	fc.VolumeFlits += sc.VolumeFlits
	fc.InOrder = fc.InOrder && sc.InOrder
	return fc
}

// BufferedFlits implements topo.Network.
func (h *Hybrid) BufferedFlits() int { return h.sub.BufferedFlits() + h.fab.BufferedFlits() }

// AuditRouters implements topo.Network: the hot region's routers.
func (h *Hybrid) AuditRouters(f func(*router.Router)) { h.sub.AuditRouters(f) }

// AuditPackets delegates the flow-side census to the fabric.
func (h *Hybrid) AuditPackets(fn func(node int, where string, p *packet.Packet)) {
	h.fab.AuditPackets(fn)
}

// PacketCounters delegates the flow-side books to the fabric.
func (h *Hybrid) PacketCounters() (injected, delivered, dropped int64) {
	return h.fab.PacketCounters()
}

// hybridPort muxes a hot node's two attachments: sends to hot destinations
// enter the flit sub-network, all others the flow fabric; deliveries drain
// whichever side has a matching packet (flit side first).
type hybridPort struct {
	hot  router.Port
	flow *Port
	k    int
}

var _ router.Port = (*hybridPort)(nil)

func (hp *hybridPort) Pump(now sim.Cycle) bool {
	a := hp.hot.Pump(now)
	b := hp.flow.Pump(now)
	return a || b
}

// CanAccept is conservative: both sub-ports must have the class slot free,
// so the protocol never has to know which fabric the next packet takes.
func (hp *hybridPort) CanAccept(c packet.Class) bool {
	return hp.hot.CanAccept(c) && hp.flow.CanAccept(c)
}

func (hp *hybridPort) StartSend(now sim.Cycle, p *packet.Packet) {
	if p.Dst < hp.k {
		hp.hot.StartSend(now, p)
		return
	}
	hp.flow.StartSend(now, p)
}

func (hp *hybridPort) Sending(c packet.Class) *packet.Packet {
	if p := hp.hot.Sending(c); p != nil {
		return p
	}
	return hp.flow.Sending(c)
}

func (hp *hybridPort) Deliver(now sim.Cycle, pred func(*packet.Packet) bool) (*packet.Packet, bool) {
	if p, ok := hp.hot.Deliver(now, pred); ok {
		return p, ok
	}
	return hp.flow.Deliver(now, pred)
}

func (hp *hybridPort) PendingFlits() int {
	return hp.hot.PendingFlits() + hp.flow.PendingFlits()
}

func (hp *hybridPort) Quiet() bool { return hp.hot.Quiet() && hp.flow.Quiet() }

func (hp *hybridPort) Activity() *sim.Activity { return hp.hot.Activity() }

func (hp *hybridPort) NextArrivalAt() sim.Cycle {
	a, b := hp.hot.NextArrivalAt(), hp.flow.NextArrivalAt()
	if b < a {
		return b
	}
	return a
}

func (hp *hybridPort) BlockedBound(now sim.Cycle) sim.Cycle {
	a, b := hp.hot.BlockedBound(now), hp.flow.BlockedBound(now)
	if b < a {
		return b
	}
	return a
}

func (hp *hybridPort) Stats() (injected, delivered, dropped int64) {
	i1, d1, x1 := hp.hot.Stats()
	i2, d2, x2 := hp.flow.Stats()
	return i1 + i2, d1 + d2, x1 + x2
}
