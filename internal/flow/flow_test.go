package flow

import (
	"testing"

	"nifdy/internal/packet"
	"nifdy/internal/sim"
)

// driver ticks a node's port like a minimal NIC: it injects a scripted list
// of packets as slots free up and records every delivery cycle.
type driver struct {
	pt      *Port
	sends   []*packet.Packet
	got     []*packet.Packet
	gotAt   []sim.Cycle
	deliver bool
}

func (d *driver) Tick(now sim.Cycle) {
	d.pt.Pump(now)
	for len(d.sends) > 0 && d.pt.CanAccept(d.sends[0].Class) {
		p := d.sends[0]
		d.sends = d.sends[1:]
		d.pt.StartSend(now, p)
	}
	if !d.deliver {
		return
	}
	for {
		p, ok := d.pt.Deliver(now, nil)
		if !ok {
			break
		}
		d.got = append(d.got, p)
		d.gotAt = append(d.gotAt, now)
	}
}

func mkPacket(src, dst, words int, c packet.Class) *packet.Packet {
	return &packet.Packet{Src: src, Dst: dst, Words: words, Class: c, Kind: packet.Data}
}

func build(t *testing.T, cfg Config) (*sim.Engine, *Fabric, []*driver) {
	t.Helper()
	e := sim.New()
	f := New(cfg)
	f.RegisterRouters(e)
	ds := make([]*driver, cfg.Nodes)
	for n := range ds {
		ds[n] = &driver{pt: f.FlowPort(n), deliver: true}
		e.Register(ds[n])
	}
	return e, f, ds
}

// TestPointToPoint checks the uncontended latency arithmetic: serialization
// at the access link plus the fixed pipe.
func TestPointToPoint(t *testing.T) {
	e, _, ds := build(t, Config{Nodes: 4, CPF: 4, HopCycles: 6, AvgHops: 2})
	p := mkPacket(0, 1, 8, packet.Request)
	ds[0].sends = append(ds[0].sends, p)
	e.Run(200)
	if len(ds[1].got) != 1 || ds[1].got[0] != p {
		t.Fatalf("dst got %d packets, want the one sent", len(ds[1].got))
	}
	// Injected at cycle 0, activated at the cycle-1 solver step, drains 8
	// flits at 1/4 flit/cycle (32 cycles), rides a 12-cycle pipe.
	if at := ds[1].gotAt[0]; at != 45 {
		t.Errorf("delivery at cycle %d, want 45", at)
	}
}

// TestFairShare checks that two flows into one destination each get half
// the destination link: both take twice the solo drain time.
func TestFairShare(t *testing.T) {
	e, _, ds := build(t, Config{Nodes: 4, CPF: 4, HopCycles: 6, AvgHops: 2})
	a := mkPacket(0, 2, 8, packet.Request)
	b := mkPacket(1, 2, 8, packet.Request)
	ds[0].sends = append(ds[0].sends, a)
	ds[1].sends = append(ds[1].sends, b)
	e.Run(300)
	if len(ds[2].got) != 2 {
		t.Fatalf("dst got %d packets, want 2", len(ds[2].got))
	}
	// Shared drain: 8 flits at 1/8 flit/cycle = 64 cycles from activation,
	// then the 12-cycle pipe; both land the same cycle and deliver in
	// admission (node) order.
	if ds[2].got[0] != a || ds[2].got[1] != b {
		t.Errorf("delivery order not admission order")
	}
	if at := ds[2].gotAt[0]; at != 77 {
		t.Errorf("first delivery at cycle %d, want 77", at)
	}
}

// TestDestinationStall checks the backpressure chain: a destination that
// never drains its arrivals parks inbound packets, trips the fabric-side
// cap, and stalls later flows at their sources with busy injection slots.
func TestDestinationStall(t *testing.T) {
	e, f, ds := build(t, Config{Nodes: 6, CPF: 4, HopCycles: 6, AvgHops: 2, DstCapFlits: 16})
	ds[5].deliver = false // the congested destination never pulls arrivals
	for n := 0; n < 4; n++ {
		ds[n].sends = append(ds[n].sends,
			mkPacket(n, 5, 8, packet.Request), mkPacket(n, 5, 8, packet.Request))
	}
	e.Run(3000)
	// Arrival buffer holds one 8-flit packet; the 16-flit fabric cap parks
	// two more; every other flow is stalled at rate zero, so at least one
	// source still has its first-or-second send occupying the slot.
	stalled := 0
	for n := 0; n < 4; n++ {
		if !ds[n].pt.CanAccept(packet.Request) {
			stalled++
		}
	}
	if stalled == 0 {
		t.Fatalf("no source stalled behind the congested destination")
	}
	if got := len(ds[5].got); got != 0 {
		t.Fatalf("non-delivering destination got %d packets", got)
	}
	// Release: let the destination drain and everything completes.
	ds[5].deliver = true
	e.Run(5000)
	if got := len(ds[5].got); got != 8 {
		t.Fatalf("after release destination got %d packets, want 8", got)
	}
	inj, del, drop := f.PacketCounters()
	if inj != 8 || del != 8 || drop != 0 {
		t.Fatalf("fabric books inj=%d del=%d drop=%d, want 8/8/0", inj, del, drop)
	}
	if f.BufferedFlits() != 0 {
		t.Fatalf("%d flits left in an idle fabric", f.BufferedFlits())
	}
}

// TestClassIsolation checks that a stalled Request destination does not
// block Reply traffic to the same node.
func TestClassIsolation(t *testing.T) {
	e, _, ds := build(t, Config{Nodes: 4, CPF: 4, HopCycles: 6, AvgHops: 2, DstCapFlits: 8, ArrCapFlits: 8})
	ds[3].deliver = false
	for i := 0; i < 6; i++ {
		ds[0].sends = append(ds[0].sends, mkPacket(0, 3, 8, packet.Request))
	}
	e.Run(2000)
	// Requests have filled the arrival buffer and the fabric cap; now a
	// Reply must still get through to the port.
	ds[1].sends = append(ds[1].sends, mkPacket(1, 3, 1, packet.Reply))
	e.Run(2000)
	found := false
	ds[3].pt.arrQ[packet.Reply].ForEach(func(p *packet.Packet) { found = found || p.Class == packet.Reply })
	if !found {
		t.Fatalf("reply did not reach a node whose request class is stalled")
	}
}

// TestPerPairOrder checks in-order delivery within a (src, dst, class)
// stream under cross-traffic.
func TestPerPairOrder(t *testing.T) {
	e, _, ds := build(t, Config{Nodes: 8, CPF: 4, HopCycles: 6, AvgHops: 2, BisectionFPC: 0.5})
	var want []*packet.Packet
	for i := 0; i < 5; i++ {
		p := mkPacket(0, 7, 8, packet.Request)
		p.Seq = i
		want = append(want, p)
		ds[0].sends = append(ds[0].sends, p)
		// Cross-traffic sharing the destination and the bisection.
		ds[1].sends = append(ds[1].sends, mkPacket(1, 7, 8, packet.Request))
		ds[2].sends = append(ds[2].sends, mkPacket(2, 6, 8, packet.Request))
	}
	e.Run(8000)
	seen := 0
	for _, p := range ds[7].got {
		if p.Src != 0 {
			continue
		}
		if p.Seq != seen {
			t.Fatalf("pair stream out of order: got seq %d, want %d", p.Seq, seen)
		}
		seen++
	}
	if seen != len(want) {
		t.Fatalf("dst saw %d of %d packets from src 0", seen, len(want))
	}
}
