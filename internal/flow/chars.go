package flow

import (
	"fmt"

	"nifdy/internal/packet"
	"nifdy/internal/topo"
)

// FromChars derives a flow Config from a flit fabric's measured
// characteristics: the twin shares link speed (CPF), per-hop latency,
// distances, bisection capacity, and sizes its fabric-side destination
// queue from the flit network's per-node buffering volume. Building a flit
// donor to take Chars from is cheap at seed sizes; the analytic
// constructors below serve the 100k+ node range where instantiating (or
// even all-pairs measuring) the flit network is off the table.
func FromChars(ch topo.Characteristics, o topo.IfaceOptions) Config {
	dstCap := ch.VolumeFlits / ch.Nodes
	if dstCap < 16 {
		dstCap = 16
	}
	return Config{
		Name:          ch.Name + " flow",
		Nodes:         ch.Nodes,
		CPF:           ch.CPF,
		HopCycles:     int(ch.HopLat + 0.5),
		HopFlitCycles: int(ch.HopLatPerFlit + 0.5),
		AvgHops:       ch.AvgHops,
		MaxHops:       ch.MaxHops,
		BisectionFPC:  ch.BisectionFPC,
		FabricFPC:     ch.FabricFPC,
		VolumeFlits:   ch.VolumeFlits,
		DstCapFlits:   dstCap,
		InOrder:       true,
		Iface:         o,
	}
}

// MeshConfig analytically sizes a flow fabric modeling an x-by-y wormhole
// mesh with the repo's default link and buffer parameters (CPF 4, 1 VC, 2
// flits per VC buffer) — closed forms replace the flit network's O(N²)
// all-pairs hop measurement, which is what makes 100k+ node configs
// constructible at all.
func MeshConfig(x, y int, o topo.IfaceOptions) Config {
	const cpf, vcs, bufFlits = 4, 1, 2
	nodes := x * y
	// Mean 1-D displacement over ordered distinct pairs of a line of s
	// nodes is (s²−1)/(3s); dimensions are independent, but the pair-count
	// normalization over distinct pairs adds the usual N/(N−1) correction.
	avg := (meanLineDist(x) + meanLineDist(y)) * float64(nodes) / float64(nodes-1)
	maxDim := x
	if y > maxDim {
		maxDim = y
	}
	perRouter := 2 * 2 * packet.NumClasses * vcs * bufFlits // 2 dims
	cross := 2 * nodes / maxDim
	internalLinks := 2 * (x*(y-1) + y*(x-1)) // one channel per direction per adjacency
	cfg := FromChars(topo.Characteristics{
		Name:         fmt.Sprintf("mesh[%d %d]", x, y),
		Nodes:        nodes,
		AvgHops:      avg,
		MaxHops:      x + y - 2,
		VolumeFlits:  perRouter * nodes,
		BisectionFPC: float64(cross) / float64(cpf),
		FabricFPC:    float64(internalLinks) / float64(cpf),
		CPF:          cpf,
		HopLat:       cpf + 2,
	}, o)
	cfg.SolveStride = strideFor(nodes)
	return cfg
}

// strideFor picks the solver quantization for analytically sized fabrics:
// exact at calibration sizes, stride 16 at scale, where typical drain times
// run to thousands of cycles and the quantization error stays around a
// percent.
func strideFor(nodes int) int {
	if nodes < 4096 {
		return 1
	}
	return 16
}

// meanLineDist is the mean |a−b| over all ordered pairs (including a==b) of
// a line of s nodes: (s²−1)/(3s).
func meanLineDist(s int) float64 {
	return (float64(s)*float64(s) - 1) / (3 * float64(s))
}

// FatTreeConfig analytically sizes a flow fabric modeling a full 4-ary fat
// tree of the given depth (4^levels nodes, CPF 4): full bisection
// (nodes/CPF flits per cycle) and LCA-height hop distances.
func FatTreeConfig(levels int, o topo.IfaceOptions) Config {
	const cpf, vcs, bufFlits = 4, 1, 8
	nodes := 1
	for i := 0; i < levels; i++ {
		nodes *= 4
	}
	// P(lowest common ancestor at height l) over distinct pairs is
	// (4^l − 4^(l−1))/(4^levels − 1); such a pair crosses 2l−1 routers'
	// worth of links plus the two access links ≈ 2l hops.
	var avg float64
	p4 := 1.0
	for l := 1; l <= levels; l++ {
		p4 *= 4
		cnt := p4 - p4/4
		avg += cnt / float64(nodes-1) * float64(2*l)
	}
	// Volume: every level has nodes/4 routers with (4 children + 2 parents)
	// ports buffering both classes.
	perRouter := 6 * packet.NumClasses * vcs * bufFlits
	internalLinks := 2 * nodes * (levels - 1) // nodes adjacencies per level pair, both directions
	cfg := FromChars(topo.Characteristics{
		Name:         fmt.Sprintf("fat tree (%d levels)", levels),
		Nodes:        nodes,
		AvgHops:      avg,
		MaxHops:      2 * levels,
		VolumeFlits:  perRouter * nodes / 4 * levels,
		BisectionFPC: float64(nodes) / float64(cpf),
		FabricFPC:    float64(internalLinks) / float64(cpf),
		CPF:          cpf,
		HopLat:       cpf + 2,
	}, o)
	cfg.SolveStride = strideFor(nodes)
	return cfg
}
