package flow

import (
	"fmt"

	"nifdy/internal/packet"
	"nifdy/internal/ring"
	"nifdy/internal/router"
	"nifdy/internal/sim"
)

// Port is the flow fabric's packet-native router.Port implementation: one
// injection slot per class (busy until the flow's tail leaves the source)
// and one arrival FIFO per class (filled by the solver pre-tick, drained by
// the NIC during its tick). The owning NIC's shard writes the port during
// the tick phase; the solver writes it only from the pre-tick step hook,
// when no shard is running — the two writers never overlap.
type Port struct {
	f    *Fabric
	node int32
	// shard indexes the fabric's staging lists; assigned at registration.
	shard int32

	// slots holds the packet occupying each class's injection slot; the
	// solver clears a slot when its flow drains. slotFlow is the live flow
	// id (-1 while staged or empty) — BlockedBound reads its drain bound.
	slots    [packet.NumClasses]*packet.Packet
	slotFlow [packet.NumClasses]int32

	// arrQ/arrFlits are the per-class arrival buffers (the ejection-side
	// analog); the solver enqueues, Deliver pops and reports the freed
	// space back through the fabric's dirty lists.
	arrQ     [packet.NumClasses]ring.Deque[*packet.Packet]
	arrFlits [packet.NumClasses]int32

	clsRR int // Deliver fairness rotation across classes

	// act is the quiescence latch shared with the owning NIC; it aliases
	// ownAct except under the hybrid mux, where it aliases the flit
	// interface's latch so either sub-port can wake the NIC.
	act    *sim.Activity
	ownAct sim.Activity

	injected, delivered, dropped int64
}

var _ router.Port = (*Port)(nil)

func (pt *Port) init(f *Fabric, node int32) {
	pt.f = f
	pt.node = node
	pt.act = &pt.ownAct
	for c := range pt.slotFlow {
		pt.slotFlow[c] = -1
	}
}

// Pump implements router.Port. The flow port has no per-cycle fabric work —
// the solver hands arrivals and slot completions over pre-tick — so Pump
// never reports progress of its own.
func (pt *Port) Pump(now sim.Cycle) bool { return false }

// CanAccept implements router.Port: the class injection slot is free once
// the previous packet's tail has left the source (solver-cleared).
func (pt *Port) CanAccept(c packet.Class) bool { return pt.slots[c] == nil }

// StartSend implements router.Port: the packet occupies the class slot and
// is staged for activation at the next solver step.
func (pt *Port) StartSend(now sim.Cycle, p *packet.Packet) {
	c := p.Class
	if pt.slots[c] != nil {
		panic(fmt.Sprintf("flow: node %d StartSend with class %d slot busy", pt.node, c))
	}
	pt.slots[c] = p
	pt.slotFlow[c] = -1
	p.InjectedAt = now
	sh := &pt.f.staged[pt.shard]
	*sh = append(*sh, stagedSend{node: pt.node, cls: uint8(c), p: p})
	// The solver must run next cycle to activate the staged flow, even if it
	// was asleep until a later stride boundary.
	pt.f.clock.WakeAt(now + 1)
}

// Sending implements router.Port.
func (pt *Port) Sending(c packet.Class) *packet.Packet { return pt.slots[c] }

// Deliver implements router.Port: it pops the first arrival-queue head
// satisfying pred, scanning classes round-robin, and tells the solver the
// freed space so parked packets can promote next cycle.
func (pt *Port) Deliver(now sim.Cycle, pred func(*packet.Packet) bool) (*packet.Packet, bool) {
	for i := 0; i < packet.NumClasses; i++ {
		c := (pt.clsRR + i) % packet.NumClasses
		head, ok := pt.arrQ[c].Front()
		if !ok || (pred != nil && !pred(head)) {
			continue
		}
		p, _ := pt.arrQ[c].PopFront()
		pt.arrFlits[c] -= int32(p.Flits())
		pt.delivered++
		pt.clsRR = c + 1
		p.DeliveredAt = now
		d := &pt.f.dirty[pt.shard]
		*d = append(*d, pt.node)
		// Freed arrival space may promote a parked packet at the next step.
		pt.f.clock.WakeAt(now + 1)
		return p, true
	}
	return nil, false
}

// PendingFlits implements router.Port: flits buffered on the delivered side
// awaiting the NIC (arrival queues).
func (pt *Port) PendingFlits() int {
	n := 0
	for c := range pt.arrQ {
		n += int(pt.arrFlits[c])
	}
	return n
}

// Quiet implements router.Port: no sends in flight and nothing delivered
// but unpulled.
func (pt *Port) Quiet() bool {
	for c := range pt.slots {
		if pt.slots[c] != nil || pt.arrQ[c].Len() > 0 {
			return false
		}
	}
	return true
}

// Activity implements router.Port.
func (pt *Port) Activity() *sim.Activity { return pt.act }

// NextArrivalAt implements router.Port. The solver wakes the port's
// Activity on the exact cycle an arrival lands, so a quiescent NIC may
// sleep unbounded; anything already queued is deliverable now.
func (pt *Port) NextArrivalAt() sim.Cycle {
	for c := range pt.arrQ {
		if pt.arrQ[c].Len() > 0 {
			return 0
		}
	}
	return sim.Never
}

// BlockedBound implements router.Port: the earliest cycle fabric-side state
// a stuck NIC waits on could change. A busy slot frees at its flow's drain
// bound, rounded up to the solver's stride boundary (the solver only
// retires flows when it runs); a staged slot resolves at the next solver
// step; rate changes that move a drain earlier re-wake the Activity
// directly, so the bound is always sound.
func (pt *Port) BlockedBound(now sim.Cycle) sim.Cycle {
	bound := sim.Never
	for c := range pt.slots {
		if pt.slots[c] == nil {
			continue
		}
		id := pt.slotFlow[c]
		if id < 0 {
			return now + 1 // staged: the solver activates it next cycle
		}
		if at := pt.f.fDrainAt[id]; at < bound {
			bound = at
		}
	}
	if s := sim.Cycle(pt.f.cfg.SolveStride); s > 1 && bound != sim.Never {
		bound = (bound + s - 1) / s * s
	}
	return bound
}

// Stats implements router.Port.
func (pt *Port) Stats() (injected, delivered, dropped int64) {
	return pt.injected, pt.delivered, pt.dropped
}
