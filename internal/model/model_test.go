package model

import (
	"testing"
	"testing/quick"

	"nifdy/internal/sim"
)

func meshParams() Params { return CM5Params(MeshLat, 8) }
func treeParams() Params { return CM5Params(FatTreeLat, 8) }

func TestPaperMeshNumbers(t *testing.T) {
	// §2.4.3 walks these exact numbers for the 8x8 mesh.
	p := meshParams()
	if got := p.RoundTrip(14); got != 144 {
		t.Fatalf("max round trip = %d, want 144", got)
	}
	if got := p.RoundTrip(6); got != 80 {
		t.Fatalf("avg round trip = %d, want 80", got)
	}
	// T_receive = 60 is the bottleneck without NIFDY.
	if got := p.bottleneck(); got != 60 {
		t.Fatalf("bottleneck = %d", got)
	}
	// "we will need a bulk window size of W >= 2(T_roundtrip/T_receive - 1)
	// ... at least 2 packets, possibly 3 or 4": 2*(144/60-1) = 2.8 -> 4
	// after even rounding.
	if got := p.WindowCombined(14); got != 4 {
		t.Fatalf("W(combined, d=14) = %d, want 4", got)
	}
}

func TestPaperFatTreeNumbers(t *testing.T) {
	// §2.4.3: TLat = 5d+2, round trip = 32+32+4 = 68 at d = 6; the basic
	// protocol is nearly sufficient.
	p := treeParams()
	if got := p.RoundTrip(6); got != 68 {
		t.Fatalf("round trip = %d, want 68", got)
	}
	if p.ScalarSufficient(6) {
		t.Fatal("68 > 60: scalar mode should fall just short at max distance")
	}
	// A tiny window covers the shortfall.
	if got := p.WindowCombined(6); got > 2 {
		t.Fatalf("W = %d, want <= 2 (bulk 'will help only marginally')", got)
	}
}

func TestEquation1Bottlenecks(t *testing.T) {
	p := Params{TSend: 40, TRecv: 60, TLink: 32, Lat: MeshLat}
	if bw := p.PairBandwidth(6); bw != 0.1 {
		t.Fatalf("bandwidth = %v, want 6/60", bw)
	}
	p.TLink = 100 // link-limited now
	if bw := p.PairBandwidth(6); bw != 0.06 {
		t.Fatalf("bandwidth = %v, want 6/100", bw)
	}
	p.TSend = 120 // send-limited
	if bw := p.PairBandwidth(6); bw != 0.05 {
		t.Fatalf("bandwidth = %v, want 6/120", bw)
	}
}

func TestLinkTime(t *testing.T) {
	if got := LinkTime(8, 1); got != 32 {
		t.Fatalf("8-word packet over 1B link = %d", got)
	}
	if got := LinkTime(6, 0.5); got != 48 {
		t.Fatalf("6-word packet over 4-bit link = %d", got)
	}
}

func TestWindowPerPacketLargerOrEqual(t *testing.T) {
	// Per-packet acks need W >= RT/T; combined acks need ~2(RT/T - 1).
	// For RT/T >= 2 the combined window is >=, below it per-packet can be
	// larger; just check both are sane and monotone in d.
	p := meshParams()
	prevC, prevP := 0, 0
	for d := 1; d <= 14; d++ {
		c, pp := p.WindowCombined(d), p.WindowPerPacket(d)
		if c < 2 || pp < 1 {
			t.Fatalf("d=%d: W=%d/%d", d, c, pp)
		}
		if c < prevC || pp < prevP {
			t.Fatalf("window not monotone in distance at d=%d", d)
		}
		prevC, prevP = c, pp
	}
}

func TestWindowCombinedEven(t *testing.T) {
	f := func(d uint8) bool {
		w := meshParams().WindowCombined(int(d%20) + 1)
		return w >= 2 && w%2 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScalarSufficiencyThreshold(t *testing.T) {
	// With a huge receive overhead everything is scalar-sufficient.
	p := Params{TSend: 40, TRecv: 10_000, TAckProc: 4, TLink: 32, Lat: MeshLat}
	if !p.ScalarSufficient(14) {
		t.Fatal("scalar must suffice when software dominates")
	}
	// With near-zero overheads nothing is.
	q := Params{TSend: 1, TRecv: 1, TAckProc: 4, TLink: 1, Lat: MeshLat}
	if q.ScalarSufficient(1) {
		t.Fatal("scalar cannot suffice when the round trip dwarfs injection")
	}
}

func TestCM5ParamsDefaults(t *testing.T) {
	p := CM5Params(MeshLat, 8)
	if p.TSend != 40 || p.TRecv != 60 || p.TAckProc != 4 || p.TLink != 32 {
		t.Fatalf("params %+v", p)
	}
	if p.Lat(3) != sim.Cycle(26) {
		t.Fatalf("Lat(3) = %d", p.Lat(3))
	}
}
