// Package model implements the paper's analytical performance model (§2.4):
// the pairwise bandwidth bound without NIFDY (Equation 1), the scalar-mode
// round-trip constraint (Equation 2), and the bulk window sizing rules for
// combined and per-packet acknowledgments (Equations 3 and 4, §2.4.2).
// The harness uses it to sanity-check simulator measurements, and
// examples/paramsweep-style tuning can start from its estimates, exactly as
// §2.4.3 walks through for the 8x8 mesh and the 64-node fat tree.
package model

import "nifdy/internal/sim"

// Params are the network and software characteristics of Table 1.
type Params struct {
	// TSend and TRecv are the processor send/receive software overheads.
	TSend, TRecv sim.Cycle
	// TLink is the time for one packet to cross a link absent contention
	// (the hardware bandwidth limit on inter-packet arrival times): packet
	// bytes divided by link bytes/cycle.
	TLink sim.Cycle
	// TAckProc is the latency to generate and process an ack at both ends.
	TAckProc sim.Cycle
	// Lat returns the one-way latency for a packet across d hops.
	Lat func(d int) sim.Cycle
}

// MeshLat returns the paper's simulated-mesh latency model TLat(d) = 4d+14
// (§2.4.3).
func MeshLat(d int) sim.Cycle { return sim.Cycle(4*d + 14) }

// FatTreeLat returns the paper's fat-tree latency model TLat(d) = 5d+2.
func FatTreeLat(d int) sim.Cycle { return sim.Cycle(5*d + 2) }

// LinkTime returns TLink for a packet of words 32-bit words over a link of
// width bytes per cycle, in cycles.
func LinkTime(words int, widthBytesPerCycle float64) sim.Cycle {
	return sim.Cycle(float64(words*4) / widthBytesPerCycle)
}

// PairBandwidth is Equation 1: the no-NIFDY bandwidth ceiling between two
// nodes, in payload words per cycle, for packets of w payload words.
//
//	Bandwidth = w / max(TSend, TRecv, TLink)
func (p Params) PairBandwidth(payloadWords int) float64 {
	return float64(payloadWords) / float64(p.bottleneck())
}

func (p Params) bottleneck() sim.Cycle {
	m := p.TSend
	if p.TRecv > m {
		m = p.TRecv
	}
	if p.TLink > m {
		m = p.TLink
	}
	return m
}

// RoundTrip is Equation 2: the scalar-mode packet-to-ack latency across d
// hops.
//
//	T_roundtrip(d) = 2 T_lat(d) + T_ackproc
func (p Params) RoundTrip(d int) sim.Cycle {
	return 2*p.Lat(d) + p.TAckProc
}

// ScalarSufficient reports whether the basic (no-dialog) NIFDY protocol
// already sustains full pairwise bandwidth at distance d (§2.4.1):
//
//	T_roundtrip(d) <= max(TSend, TRecv, TLink)
func (p Params) ScalarSufficient(d int) bool {
	return p.RoundTrip(d) <= p.bottleneck()
}

// WindowCombined is Equation 3's window size: with one combined ack per W/2
// packets, full bandwidth at distance d needs the round trip to fit in the
// injection time of W/2+1 packets:
//
//	W >= 2 (T_roundtrip(d)/T_bottleneck - 1)
//
// The result is rounded up to the next even integer and is at least 2.
func (p Params) WindowCombined(d int) int {
	return evenCeil(2 * (float64(p.RoundTrip(d))/float64(p.bottleneck()) - 1))
}

// WindowPerPacket is Equation 4's bound for a window acknowledging every
// packet as it is received:
//
//	W >= T_roundtrip(d)/T_bottleneck
func (p Params) WindowPerPacket(d int) int {
	w := intCeil(float64(p.RoundTrip(d)) / float64(p.bottleneck()))
	if w < 1 {
		return 1
	}
	return w
}

func evenCeil(v float64) int {
	w := intCeil(v)
	if w < 2 {
		return 2
	}
	if w%2 != 0 {
		w++
	}
	return w
}

func intCeil(v float64) int {
	w := int(v)
	if float64(w) < v {
		w++
	}
	return w
}

// CM5Params returns the §2.4.3 working parameters for a given latency model
// and packet size in words over 1-byte links.
func CM5Params(lat func(int) sim.Cycle, packetWords int) Params {
	return Params{
		TSend: 40, TRecv: 60, TAckProc: 4,
		TLink: LinkTime(packetWords, 1),
		Lat:   lat,
	}
}
