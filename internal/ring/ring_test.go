package ring

import "testing"

func TestDequeFIFO(t *testing.T) {
	var d Deque[int]
	if _, ok := d.PopFront(); ok {
		t.Fatal("empty deque popped")
	}
	next, want := 0, 0
	for round := 0; round < 200; round++ {
		for i := 0; i <= round%5; i++ {
			d.PushBack(next)
			next++
		}
		if f, ok := d.Front(); ok && f != want {
			t.Fatalf("front = %d, want %d", f, want)
		}
		for i := 0; i <= round%3 && d.Len() > 0; i++ {
			v, _ := d.PopFront()
			if v != want {
				t.Fatalf("round %d: got %d, want %d", round, v, want)
			}
			want++
		}
	}
	for d.Len() > 0 {
		v, _ := d.PopFront()
		if v != want {
			t.Fatalf("drain: got %d, want %d", v, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("lost items: popped %d, pushed %d", want, next)
	}
}

func TestDequePopZeroesSlot(t *testing.T) {
	var d Deque[*int]
	d.PushBack(new(int))
	d.PopFront()
	for i, s := range d.buf {
		if s != nil {
			t.Fatalf("slot %d retains a popped reference", i)
		}
	}
}

func TestDequeSteadyStateAllocFree(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 16; i++ {
		d.PushBack(i)
	}
	for d.Len() > 0 {
		d.PopFront()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 16; i++ {
			d.PushBack(i)
		}
		for d.Len() > 0 {
			d.PopFront()
		}
	})
	if allocs > 0 {
		t.Fatalf("deque allocates %.1f/op in steady state", allocs)
	}
}
