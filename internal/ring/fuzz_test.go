package ring

import (
	"testing"
)

// FuzzDeque drives a Deque and a reference slice through the same byte-coded
// operation sequence and cross-checks every observable after each step. The
// deque backs the simulator's hot FIFOs (NIC outgoing/arrival queues,
// processor inboxes), where a wrap-around or grow bug would silently corrupt
// packet order rather than crash.
//
// Op coding: each byte b selects op b%5 — 0 PushBack, 1 PushFront,
// 2 PopFront, 3 Front peek, 4 full At/ForEach sweep. Pushed values are a
// running counter, so any misplacement is visible as a value mismatch.
func FuzzDeque(f *testing.F) {
	f.Add([]byte{0, 0, 0, 2, 2, 2})          // FIFO push/pop
	f.Add([]byte{1, 1, 1, 2, 2, 2})          // LIFO via PushFront
	f.Add([]byte{0, 1, 0, 1, 4, 2, 2, 2, 2}) // mixed ends + sweep
	f.Add([]byte{2, 3, 4})                   // ops on empty deque
	// Push enough to force grow (initial capacity 8), then drain across the
	// wrap point.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 2, 0, 0, 0, 2, 2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var d Deque[int]
		var ref []int
		next := 0
		for _, b := range ops {
			switch b % 5 {
			case 0:
				d.PushBack(next)
				ref = append(ref, next)
				next++
			case 1:
				d.PushFront(next)
				ref = append([]int{next}, ref...)
				next++
			case 2:
				v, ok := d.PopFront()
				if ok != (len(ref) > 0) {
					t.Fatalf("PopFront ok=%v with %d items", ok, len(ref))
				}
				if ok {
					if v != ref[0] {
						t.Fatalf("PopFront = %d, want %d", v, ref[0])
					}
					ref = ref[1:]
				}
			case 3:
				v, ok := d.Front()
				if ok != (len(ref) > 0) {
					t.Fatalf("Front ok=%v with %d items", ok, len(ref))
				}
				if ok && v != ref[0] {
					t.Fatalf("Front = %d, want %d", v, ref[0])
				}
			case 4:
				for i, want := range ref {
					if got := d.At(i); got != want {
						t.Fatalf("At(%d) = %d, want %d", i, got, want)
					}
				}
				i := 0
				d.ForEach(func(v int) {
					if v != ref[i] {
						t.Fatalf("ForEach[%d] = %d, want %d", i, v, ref[i])
					}
					i++
				})
				if i != len(ref) {
					t.Fatalf("ForEach visited %d items, want %d", i, len(ref))
				}
			}
			if d.Len() != len(ref) {
				t.Fatalf("Len = %d, want %d", d.Len(), len(ref))
			}
		}
	})
}
