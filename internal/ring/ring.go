// Package ring provides a growable circular FIFO for the simulator's
// same-cycle queues (NIC outgoing/arrival FIFOs, processor inboxes).
//
// These queues were previously plain slices popped with q = q[1:]: the
// window slides through the backing array, so every ~cap operations the
// append reallocates even though the queue length is tiny and stable. The
// ring reuses its buffer forever once it has grown to the workload's
// high-water mark — the property the zero-allocation saturated data path
// needs. Popped slots are zeroed so recycled packets are not retained.
//
// Unlike sim.Queue this deque is not latched: pushes are visible to pops
// immediately. Use sim.Queue at tick-order boundaries.
package ring

// Deque is a growable circular FIFO. The zero value is ready to use.
type Deque[T any] struct {
	buf  []T
	head int
	n    int
}

// Len reports the queued item count.
func (d *Deque[T]) Len() int { return d.n }

// grow re-linearizes into a buffer of at least double the capacity.
//
//lint:allow(hotalloc) geometric growth amortizes to zero allocations per op in steady state; queues reach their high-water mark during warm-up
func (d *Deque[T]) grow() {
	c := len(d.buf) * 2
	if c < 8 {
		c = 8
	}
	nb := make([]T, c)
	for i := 0; i < d.n; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
}

// PushBack appends v.
func (d *Deque[T]) PushBack(v T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	i := d.head + d.n
	if i >= len(d.buf) {
		i -= len(d.buf)
	}
	d.buf[i] = v
	d.n++
}

// PushFront prepends v: it becomes the next PopFront result.
func (d *Deque[T]) PushFront(v T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head--
	if d.head < 0 {
		d.head = len(d.buf) - 1
	}
	d.buf[d.head] = v
	d.n++
}

// Front returns the oldest item without removing it.
func (d *Deque[T]) Front() (v T, ok bool) {
	if d.n == 0 {
		return v, false
	}
	return d.buf[d.head], true
}

// At returns the i-th queued item (0 is the front). It panics when i is out
// of range, mirroring slice indexing.
func (d *Deque[T]) At(i int) T {
	if i < 0 || i >= d.n {
		panic("ring: index out of range")
	}
	j := d.head + i
	if j >= len(d.buf) {
		j -= len(d.buf)
	}
	return d.buf[j]
}

// ForEach calls f on every queued item, front to back, without removing any.
// The deque must not be mutated during the walk.
func (d *Deque[T]) ForEach(f func(T)) {
	for i := 0; i < d.n; i++ {
		f(d.At(i))
	}
}

// PopFront removes and returns the oldest item, zeroing its slot.
func (d *Deque[T]) PopFront() (v T, ok bool) {
	if d.n == 0 {
		return v, false
	}
	v = d.buf[d.head]
	var zero T
	d.buf[d.head] = zero // release reference for GC / packet pooling
	d.head++
	if d.head == len(d.buf) {
		d.head = 0
	}
	d.n--
	return v, true
}
