package router

// Modern-fabric baseline knobs: link-level priority flow control (PFC),
// ECN congestion marking, and the lossy-wire fault model. These are the
// in-network mechanisms the NIFDY-vs-RoCEv2 scenario pack compares against
// (DESIGN.md §11): PFC is the hop-by-hop pause/resume backpressure of
// 802.1Qbb, ECN feeds the DCQCN rate-control NIC, and the lossy wire is the
// §6 retransmission trigger.

// PFCConfig enables link-level pause/resume flow control with per-VC
// thresholds. A receiving buffer whose occupancy reaches XOff sends a pause
// frame upstream on the channel's credit wire; the transmitter stops
// scheduling flits on that VC until occupancy drains to XOn and a resume
// frame arrives. Pause frames ride the credit wire, so they propagate
// hop-by-hop with the same latency and determinism as credit returns.
//
// PFC is strictly more conservative than the credit protocol (which pauses
// implicitly at occupancy == capacity): it pauses earlier and holds the
// whole VC, which is exactly the head-of-line blocking and congestion
// spreading the scenario pack measures.
type PFCConfig struct {
	// Enable turns PFC on for every channel of the component.
	Enable bool
	// XOff is the pause threshold (occupancy >= XOff pauses). 0 selects
	// max(1, capacity/2).
	XOff int
	// XOn is the resume threshold (occupancy <= XOn resumes). 0 selects
	// XOff-1 (and never exceeds it).
	XOn int
}

// thresholds resolves the configured thresholds against a buffer capacity.
func (c PFCConfig) thresholds(capacity int) (xoff, xon int) {
	xoff = c.XOff
	if xoff <= 0 {
		xoff = capacity / 2
	}
	if xoff < 1 {
		xoff = 1
	}
	if xoff > capacity {
		xoff = capacity
	}
	xon = c.XOn
	if xon <= 0 || xon >= xoff {
		xon = xoff - 1
	}
	return xoff, xon
}

// ECNConfig enables congestion marking at router egress queues: when a head
// flit is forwarded onto an output VC whose downstream occupancy estimate
// (initial credit grant minus credits held) has reached Threshold, the
// packet's ECN bit is set. The destination NIC echoes the mark back to the
// source as a congestion notification (CNP), closing the DCQCN loop.
type ECNConfig struct {
	// Enable turns marking on.
	Enable bool
	// Threshold is the occupancy at which to mark. 0 selects max(1, grant-1).
	Threshold int
}

// threshold resolves the marking threshold against the credit grant.
func (c ECNConfig) threshold(grant int) int {
	t := c.Threshold
	if t <= 0 {
		t = grant - 1
	}
	if t < 1 {
		t = 1
	}
	return t
}

// FabricConfig bundles the modern-fabric knobs threaded from
// topo.IfaceOptions into every router and interface of a topology.
type FabricConfig struct {
	// PFC configures link-level pause/resume on every channel.
	PFC PFCConfig
	// ECN configures egress congestion marking in the routers.
	ECN ECNConfig
	// WireDrop, when positive, drops each flit crossing the destination
	// access wire with this probability: the flit is serialized but never
	// arrives, and the interface discards the packet's other flits as they
	// land — the in-flight loss that exercises the §6 retransmission path.
	// The interface performs the compensating credit returns itself, so the
	// conservation monitors stay satisfied at every audit instant.
	WireDrop float64
	// WireCorrupt, when positive, corrupts each arriving flit with this
	// probability: the flit still crosses the wire (and occupies its buffer
	// slot) but the checksum fails on reassembly, so the whole packet is
	// discarded on arrival — loss with full wire occupancy.
	WireCorrupt float64
	// Seed drives the per-node wire-fault streams (required when WireDrop or
	// WireCorrupt is positive).
	Seed uint64
}

// Lossy reports whether any wire-fault probability is set.
func (c FabricConfig) Lossy() bool { return c.WireDrop > 0 || c.WireCorrupt > 0 }
