package router

import (
	"strings"
	"testing"

	"nifdy/internal/packet"
	"nifdy/internal/sim"
)

// TestSAFBufferTooSmallPanics: a store-and-forward router whose buffers
// cannot hold a whole packet must fail loudly rather than wedge silently.
func TestSAFBufferTooSmallPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic for SAF buffer smaller than packet")
		}
		if !strings.Contains(r.(string), "SAF buffer") {
			t.Fatalf("wrong panic: %v", r)
		}
	}()
	eng := sim.New()
	rt := New(Config{ID: 0, InPorts: 1, OutPorts: 1, VCs: 1, BufFlits: 4, SAF: true,
		Route: func(in int, p *packet.Packet, s []Choice) []Choice {
			return append(s, Choice{Port: 0})
		}})
	src := NewIface(IfaceConfig{Node: 0, VCs: 1, BufFlits: 16})
	in := NewChannel(1, 1)
	src.ConnectOut(in, 4)
	rt.ConnectIn(0, in)
	sink := NewIface(IfaceConfig{Node: 1, VCs: 1, BufFlits: 16})
	out := NewChannel(1, 1)
	rt.ConnectOut(0, out, sink.BufFlits())
	sink.ConnectIn(out)
	eng.Register(src)
	eng.Register(rt)
	eng.Register(sink)
	// 8-flit packet into 4-flit SAF buffers: must panic during the run.
	src.StartSend(0, &packet.Packet{ID: 1, Src: 0, Dst: 1, Words: 8, Dialog: packet.NoDialog})
	eng.Run(200)
}

// TestIfaceEjectOverflowPanics: violating the iface credit contract (a
// packet larger than the eject buffer) is a loud failure.
func TestIfaceEjectOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on eject overflow")
		}
	}()
	f := NewIface(IfaceConfig{Node: 0, VCs: 1, BufFlits: 2})
	ch := NewChannel(1, 1)
	f.ConnectIn(ch)
	p := &packet.Packet{ID: 1, Src: 0, Dst: 0, Words: 4, Dialog: packet.NoDialog}
	now := sim.Cycle(0)
	for i := 0; i < 4; i++ {
		for !ch.Flits.CanSend(now) {
			now++
		}
		ch.Flits.Send(now, packet.Flit{Pkt: p, Index: i, VC: 0})
		now++
	}
	for c := sim.Cycle(0); c < now+10; c++ {
		f.Tick(c)
	}
}

// TestStartSendWhileBusyPanics: the iface's one-packet-per-class contract.
func TestStartSendWhileBusyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double StartSend")
		}
	}()
	f := NewIface(IfaceConfig{Node: 0, VCs: 1, BufFlits: 8})
	ch := NewChannel(4, 1)
	f.ConnectOut(ch, 8)
	p1 := &packet.Packet{ID: 1, Src: 0, Dst: 1, Words: 8, Dialog: packet.NoDialog}
	p2 := &packet.Packet{ID: 2, Src: 0, Dst: 1, Words: 8, Dialog: packet.NoDialog}
	f.StartSend(0, p1)
	f.StartSend(0, p2)
}

// TestPerClassChannels: with separate physical channels per class (the CM-5
// wiring), both classes transfer concurrently at full per-channel rate.
func TestPerClassChannels(t *testing.T) {
	eng := sim.New()
	src := NewIface(IfaceConfig{Node: 0, VCs: 1, BufFlits: 16})
	dst := NewIface(IfaceConfig{Node: 1, VCs: 1, BufFlits: 16})
	for c := 0; c < packet.NumClasses; c++ {
		ch := NewChannel(4, 1)
		src.ConnectOutClass(packet.Class(c), ch, 16)
		dst.ConnectInClass(packet.Class(c), ch)
	}
	eng.Register(src)
	eng.Register(dst)
	p1 := &packet.Packet{ID: 1, Src: 0, Dst: 1, Words: 8, Class: packet.Request, Dialog: packet.NoDialog}
	p2 := &packet.Packet{ID: 2, Src: 0, Dst: 1, Words: 8, Class: packet.Reply, Dialog: packet.NoDialog}
	src.StartSend(0, p1)
	src.StartSend(0, p2)
	got := 0
	eng.RunUntil(func() bool {
		for {
			if _, ok := dst.Deliver(eng.Now(), nil); !ok {
				break
			}
			got++
		}
		return got == 2
	}, 1000)
	if got != 2 {
		t.Fatalf("delivered %d/2", got)
	}
	// Independent channels: both packets finish at nearly the same time —
	// within one flit of each other, not serialized one after the other.
	if d := p2.DeliveredAt - p1.DeliveredAt; d < -8 || d > 8 {
		t.Fatalf("classes serialized: delivered at %d and %d", p1.DeliveredAt, p2.DeliveredAt)
	}
}

// TestSharedChannelSerializesClasses: the demand-multiplexed baseline for
// comparison with the test above.
func TestSharedChannelSerializesClasses(t *testing.T) {
	eng := sim.New()
	src := NewIface(IfaceConfig{Node: 0, VCs: 1, BufFlits: 16})
	dst := NewIface(IfaceConfig{Node: 1, VCs: 1, BufFlits: 16})
	ch := NewChannel(4, 1)
	src.ConnectOut(ch, 16)
	dst.ConnectIn(ch)
	eng.Register(src)
	eng.Register(dst)
	p1 := &packet.Packet{ID: 1, Src: 0, Dst: 1, Words: 8, Class: packet.Request, Dialog: packet.NoDialog}
	p2 := &packet.Packet{ID: 2, Src: 0, Dst: 1, Words: 8, Class: packet.Reply, Dialog: packet.NoDialog}
	src.StartSend(0, p1)
	src.StartSend(0, p2)
	got := 0
	eng.RunUntil(func() bool {
		for {
			if _, ok := dst.Deliver(eng.Now(), nil); !ok {
				break
			}
			got++
		}
		return got == 2
	}, 1000)
	if got != 2 {
		t.Fatalf("delivered %d/2", got)
	}
	// 16 flits over one 4-cycle link: the pair needs >= 64 cycles total.
	last := p1.DeliveredAt
	if p2.DeliveredAt > last {
		last = p2.DeliveredAt
	}
	if last < 64 {
		t.Fatalf("16 flits finished at %d on a shared 4-cycle link", last)
	}
}

// TestRouterUnconnectedPortsIgnored: routers at fabric edges have dangling
// ports; ticking them must be safe.
func TestRouterUnconnectedPortsIgnored(t *testing.T) {
	rt := New(Config{ID: 0, InPorts: 3, OutPorts: 3, VCs: 1, BufFlits: 2,
		Route: func(in int, p *packet.Packet, s []Choice) []Choice {
			return append(s, Choice{Port: 0})
		}})
	for i := 0; i < 100; i++ {
		rt.Tick(sim.Cycle(i)) // no panic, nothing to do
	}
	if rt.BufferedFlits() != 0 {
		t.Fatal("phantom flits")
	}
}
