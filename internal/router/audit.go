package router

import (
	"nifdy/internal/packet"
	"nifdy/internal/sim"
)

// Auditor is a read-only visitor over a Router's internal state, used by the
// invariant monitors (internal/check) to take a global census of flits and
// credits. Audit must only be called while the router is quiescent — e.g.
// from an engine step hook, before any shard ticks. Nil callbacks are
// skipped.
type Auditor struct {
	// InVC is called once per (input port, global VC) with a connected
	// channel: the channel whose flits fill this buffer, the current
	// occupancy, and the capacity (the credit grant the upstream holds).
	InVC func(port, vc int, ch *Channel, occupancy, capacity int)
	// BufFlit is called for every buffered flit, oldest first, after the
	// InVC call for its (port, vc).
	BufFlit func(port, vc int, f packet.Flit)
	// OutVC is called once per (output port, global VC) with a connected
	// channel: the free downstream slots currently held and the initial
	// grant.
	OutVC func(port, vc int, ch *Channel, credits, initial int)
	// PFCTx is called once per (output port, global VC) when PFC is enabled:
	// the transmitter-side pause state for the VC (paused, and the cycle the
	// pause frame was drained). ch is the channel the pause governs.
	PFCTx func(port, vc int, ch *Channel, paused bool, since sim.Cycle)
	// PFCRx is called once per (input port, global VC) when PFC is enabled:
	// whether this receiver currently holds the VC paused (pause issued,
	// resume not yet sent).
	PFCRx func(port, vc int, ch *Channel, active bool)
}

// Audit walks the router's input buffers and output credit counters.
func (r *Router) Audit(a Auditor) {
	for i := range r.in {
		ip := &r.in[i]
		if ip.ch == nil {
			continue
		}
		for v := range ip.vcs {
			vs := &ip.vcs[v]
			if a.InVC != nil {
				a.InVC(i, v, ip.ch, vs.n, r.cfg.BufFlits)
			}
			if a.BufFlit != nil {
				for k := 0; k < vs.n; k++ {
					a.BufFlit(i, v, *vs.at(k))
				}
			}
			if r.pfcOn && a.PFCRx != nil {
				a.PFCRx(i, v, ip.ch, ip.pfcActive[v])
			}
		}
	}
	for o := range r.out {
		op := &r.out[o]
		if op.ch == nil {
			continue
		}
		for g := range op.credits {
			if a.OutVC != nil {
				a.OutVC(o, g, op.ch, op.credits[g], op.initial)
			}
			if r.pfcOn && a.PFCTx != nil {
				a.PFCTx(o, g, op.ch, op.paused[g], op.pausedAt[g])
			}
		}
	}
}

// IfaceAuditor is the Iface counterpart of Auditor: a read-only visitor over
// an interface's serialization slots, ejection buffers, and injection
// credits. Nil callbacks are skipped.
type IfaceAuditor struct {
	// Sending is called for each class with a packet mid-serialization,
	// with the count of flits already pushed into the fabric.
	Sending func(c packet.Class, p *packet.Packet, sentFlits int)
	// EjectVC is called once per (global VC, connected ejection channel)
	// with occupancy and capacity.
	EjectVC func(vc int, ch *Channel, occupancy, capacity int)
	// EjectFlit is called for every buffered ejection flit, oldest first,
	// after the EjectVC call for its VC.
	EjectFlit func(vc int, f packet.Flit)
	// OutVC is called once per (global VC, connected injection channel)
	// with the credits currently held and the initial grant.
	OutVC func(vc int, ch *Channel, credits, initial int)
	// PFCTx is called once per (global VC, connected injection channel) when
	// PFC is enabled: the injection side's pause state for the VC.
	PFCTx func(vc int, ch *Channel, paused bool, since sim.Cycle)
	// PFCRx is called once per (global VC, connected ejection channel) when
	// PFC is enabled: whether the ejection side currently holds the VC
	// paused.
	PFCRx func(vc int, ch *Channel, active bool)
}

// Audit walks the iface's slots, ejection buffers, and credit counters. Like
// Router.Audit it must only run while the fabric is quiescent.
func (f *Iface) Audit(a IfaceAuditor) {
	for c := range f.slots {
		s := &f.slots[c]
		if s.p != nil && a.Sending != nil {
			a.Sending(packet.Class(c), s.p, s.next)
		}
	}
	for g := range f.eject {
		ch := f.inCh[g/f.cfg.VCs]
		if ch == nil {
			continue
		}
		if a.EjectVC != nil {
			a.EjectVC(g, ch, len(f.eject[g].q), f.cfg.BufFlits)
		}
		if a.EjectFlit != nil {
			for _, fl := range f.eject[g].q {
				a.EjectFlit(g, fl)
			}
		}
		if f.pfcOn && a.PFCRx != nil {
			a.PFCRx(g, ch, f.pfcActive[g])
		}
	}
	for g := range f.credits {
		ch := f.outCh[g/f.cfg.VCs]
		if ch == nil {
			continue
		}
		if a.OutVC != nil {
			a.OutVC(g, ch, f.credits[g], f.initCred[g])
		}
		if f.pfcOn && a.PFCTx != nil {
			a.PFCTx(g, ch, f.pfcPaused[g], f.pfcPausedAt[g])
		}
	}
}

// FlitCounters reports lifetime flit counts: flits pushed into the fabric,
// flits extracted by packet delivery, and flits extracted by the loss model.
// injected - delivered - dropped equals the flits currently in the fabric on
// this iface's account, which is what the global conservation monitor sums.
func (f *Iface) FlitCounters() (injected, delivered, dropped int64) {
	return f.injectedFlits, f.deliveredFlits, f.droppedFlits
}
