package router

import (
	"testing"

	"nifdy/internal/packet"
	"nifdy/internal/rng"
	"nifdy/internal/sim"
)

// line builds a two-node network: iface0 - R0 - R1 - iface1. Port layout on
// each router: in/out 0 = local iface, in/out 1 = the other router.
type line struct {
	eng    *sim.Engine
	ifaces [2]*Iface
	rts    [2]*Router
	ids    packet.IDSource
}

func newLine(t *testing.T, vcs, bufFlits, cpf int, saf bool, drop float64) *line {
	t.Helper()
	l := &line{eng: sim.New()}
	route := func(self int) RouteFn {
		return func(in int, p *packet.Packet, scratch []Choice) []Choice {
			if p.Dst == self {
				return append(scratch, Choice{Port: 0})
			}
			return append(scratch, Choice{Port: 1})
		}
	}
	for i := 0; i < 2; i++ {
		l.rts[i] = New(Config{ID: i, InPorts: 2, OutPorts: 2, VCs: vcs, BufFlits: bufFlits, SAF: saf, Route: route(i)})
		cfg := IfaceConfig{Node: i, VCs: vcs, BufFlits: 16}
		if drop > 0 {
			cfg.DropProb = drop
			cfg.RNG = rng.NewStream(1, uint64(i))
		}
		l.ifaces[i] = NewIface(cfg)
	}
	for i := 0; i < 2; i++ {
		up := NewChannel(cpf, 1)
		l.ifaces[i].ConnectOut(up, bufFlits)
		l.rts[i].ConnectIn(0, up)
		down := NewChannel(cpf, 1)
		l.rts[i].ConnectOut(0, down, l.ifaces[i].BufFlits())
		l.ifaces[i].ConnectIn(down)
	}
	r01 := NewChannel(cpf, 1)
	l.rts[0].ConnectOut(1, r01, bufFlits)
	l.rts[1].ConnectIn(1, r01)
	r10 := NewChannel(cpf, 1)
	l.rts[1].ConnectOut(1, r10, bufFlits)
	l.rts[0].ConnectIn(1, r10)
	for i := 0; i < 2; i++ {
		l.eng.Register(l.ifaces[i])
		l.eng.Register(l.rts[i])
	}
	return l
}

func (l *line) pkt(src, dst, words int, class packet.Class) *packet.Packet {
	return &packet.Packet{ID: l.ids.Next(), Src: src, Dst: dst, Words: words, Class: class, Dialog: packet.NoDialog}
}

func TestSingleHopDelivery(t *testing.T) {
	l := newLine(t, 1, 8, 4, false, 0)
	p := l.pkt(0, 1, 8, packet.Request)
	l.ifaces[0].StartSend(l.eng.Now(), p)
	var got *packet.Packet
	ok := l.eng.RunUntil(func() bool {
		if g, ok := l.ifaces[1].Deliver(l.eng.Now(), nil); ok {
			got = g
			return true
		}
		return false
	}, 10000)
	if !ok {
		t.Fatal("packet never delivered")
	}
	if got != p {
		t.Fatalf("delivered wrong packet %v", got)
	}
	if got.DeliveredAt <= got.InjectedAt {
		t.Fatalf("timestamps not ordered: injected %d delivered %d", got.InjectedAt, got.DeliveredAt)
	}
}

func TestDeliveryLatencyIsPlausible(t *testing.T) {
	// 8 flits at 4 cycles each = 32 cycles serialization minimum; two links
	// plus router hops add pipeline but wormhole keeps it well under
	// store-and-forward (3 x 32).
	l := newLine(t, 1, 8, 4, false, 0)
	p := l.pkt(0, 1, 8, packet.Request)
	l.ifaces[0].StartSend(0, p)
	l.eng.RunUntil(func() bool {
		_, ok := l.ifaces[1].Deliver(l.eng.Now(), nil)
		return ok
	}, 10000)
	lat := p.DeliveredAt - p.InjectedAt
	if lat < 32 {
		t.Fatalf("latency %d under serialization bound 32", lat)
	}
	if lat > 96 {
		t.Fatalf("wormhole latency %d looks store-and-forward", lat)
	}
}

func TestSAFSlowerThanWormhole(t *testing.T) {
	run := func(saf bool) sim.Cycle {
		l := newLine(t, 1, 8, 4, saf, 0)
		p := l.pkt(0, 1, 8, packet.Request)
		l.ifaces[0].StartSend(0, p)
		l.eng.RunUntil(func() bool {
			_, ok := l.ifaces[1].Deliver(l.eng.Now(), nil)
			return ok
		}, 10000)
		return p.DeliveredAt - p.InjectedAt
	}
	wh, saf := run(false), run(true)
	if saf <= wh {
		t.Fatalf("store-and-forward (%d) not slower than wormhole (%d)", saf, wh)
	}
}

func TestManyPacketsAllDeliveredInOrder(t *testing.T) {
	l := newLine(t, 2, 4, 4, false, 0)
	const n = 50
	sent := 0
	var got []*packet.Packet
	l.eng.RunUntil(func() bool {
		now := l.eng.Now()
		if sent < n && l.ifaces[0].CanAccept(packet.Request) {
			p := l.pkt(0, 1, 8, packet.Request)
			p.Meta.Index = sent
			l.ifaces[0].StartSend(now, p)
			sent++
		}
		for {
			p, ok := l.ifaces[1].Deliver(now, nil)
			if !ok {
				break
			}
			got = append(got, p)
		}
		return len(got) == n
	}, 200000)
	if len(got) != n {
		t.Fatalf("delivered %d/%d", len(got), n)
	}
	for i, p := range got {
		if p.Meta.Index != i {
			t.Fatalf("single-path network reordered: position %d has index %d", i, p.Meta.Index)
		}
	}
}

func TestClassesShareLinkFairly(t *testing.T) {
	// Saturate both classes; both must make progress (demand multiplexing).
	l := newLine(t, 1, 8, 4, false, 0)
	sent := [2]int{}
	recv := [2]int{}
	l.eng.RunUntil(func() bool {
		now := l.eng.Now()
		for c := 0; c < 2; c++ {
			cl := packet.Class(c)
			if l.ifaces[0].CanAccept(cl) {
				p := l.pkt(0, 1, 8, cl)
				l.ifaces[0].StartSend(now, p)
				sent[c]++
			}
		}
		for {
			p, ok := l.ifaces[1].Deliver(now, nil)
			if !ok {
				break
			}
			recv[p.Class]++
		}
		return recv[0]+recv[1] >= 40
	}, 200000)
	if recv[0] < 10 || recv[1] < 10 {
		t.Fatalf("class starvation: recv = %v", recv)
	}
}

func TestBackpressureWithoutLoss(t *testing.T) {
	l := newLine(t, 1, 4, 4, false, 0)
	const n = 30
	sent := 0
	// Phase 1: receiver never pulls. Sender injects until the fabric fills.
	for cyc := 0; cyc < 20000; cyc++ {
		now := l.eng.Now()
		if sent < n && l.ifaces[0].CanAccept(packet.Request) {
			l.ifaces[0].StartSend(now, l.pkt(0, 1, 8, packet.Request))
			sent++
		}
		l.eng.Step()
	}
	if sent == n {
		t.Fatalf("fabric absorbed all %d packets with no receiver: no backpressure", n)
	}
	// Phase 2: receiver drains; every packet must eventually arrive.
	got := 0
	ok := l.eng.RunUntil(func() bool {
		now := l.eng.Now()
		if sent < n && l.ifaces[0].CanAccept(packet.Request) {
			l.ifaces[0].StartSend(now, l.pkt(0, 1, 8, packet.Request))
			sent++
		}
		for {
			if _, k := l.ifaces[1].Deliver(now, nil); !k {
				break
			}
			got++
		}
		return got == n
	}, 500000)
	if !ok {
		t.Fatalf("after draining, delivered %d/%d", got, n)
	}
}

func TestDropAllPackets(t *testing.T) {
	l := newLine(t, 1, 8, 4, false, 1.0)
	const n = 10
	sent, cycles := 0, 0
	for sent < n || cycles < 5000 {
		now := l.eng.Now()
		if sent < n && l.ifaces[0].CanAccept(packet.Request) {
			l.ifaces[0].StartSend(now, l.pkt(0, 1, 8, packet.Request))
			sent++
		}
		if _, ok := l.ifaces[1].Deliver(now, nil); ok {
			t.Fatal("packet delivered despite drop probability 1")
		}
		l.eng.Step()
		cycles++
	}
	if sent != n {
		t.Fatalf("loss blocked the fabric: only %d/%d injected (credits leaked)", sent, n)
	}
	_, _, dropped := l.ifaces[1].Stats()
	if dropped != n {
		t.Fatalf("dropped %d, want %d", dropped, n)
	}
}

func TestAckSingleFlit(t *testing.T) {
	l := newLine(t, 1, 8, 4, false, 0)
	a := l.pkt(1, 0, 1, packet.Reply)
	a.Kind = packet.Ack
	l.ifaces[1].StartSend(0, a)
	ok := l.eng.RunUntil(func() bool {
		_, ok := l.ifaces[0].Deliver(l.eng.Now(), func(p *packet.Packet) bool { return p.Kind == packet.Ack })
		return ok
	}, 1000)
	if !ok {
		t.Fatal("ack not delivered")
	}
	// One flit at cpf 4 over 3 links: latency must be far under a data
	// packet's 32-cycle serialization.
	if lat := a.DeliveredAt - a.InjectedAt; lat > 24 {
		t.Fatalf("ack latency %d", lat)
	}
}

func TestDeliverPredicateSkipsNonMatching(t *testing.T) {
	l := newLine(t, 2, 8, 4, false, 0)
	d := l.pkt(0, 1, 8, packet.Request)
	a := l.pkt(0, 1, 1, packet.Reply)
	a.Kind = packet.Ack
	l.ifaces[0].StartSend(0, d)
	l.eng.Step()
	l.ifaces[0].StartSend(l.eng.Now(), a)
	var gotAck *packet.Packet
	l.eng.RunUntil(func() bool {
		if p, ok := l.ifaces[1].Deliver(l.eng.Now(), func(p *packet.Packet) bool { return p.Kind == packet.Ack }); ok {
			gotAck = p
			return true
		}
		return false
	}, 10000)
	if gotAck != a {
		t.Fatalf("predicate delivery returned %v", gotAck)
	}
	// The data packet must still be deliverable.
	var gotData *packet.Packet
	l.eng.RunUntil(func() bool {
		if p, ok := l.ifaces[1].Deliver(l.eng.Now(), nil); ok {
			gotData = p
			return true
		}
		return false
	}, 10000)
	if gotData != d {
		t.Fatalf("data packet lost after predicate delivery: %v", gotData)
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	l := newLine(t, 1, 8, 4, false, 0)
	recv := [2]int{}
	const n = 20
	sent := [2]int{}
	ok := l.eng.RunUntil(func() bool {
		now := l.eng.Now()
		for i := 0; i < 2; i++ {
			if sent[i] < n && l.ifaces[i].CanAccept(packet.Request) {
				l.ifaces[i].StartSend(now, l.pkt(i, 1-i, 8, packet.Request))
				sent[i]++
			}
			for {
				if _, k := l.ifaces[i].Deliver(now, nil); !k {
					break
				}
				recv[i]++
			}
		}
		return recv[0] == n && recv[1] == n
	}, 200000)
	if !ok {
		t.Fatalf("bidirectional delivery incomplete: %v", recv)
	}
}

func TestRouterTwoInputsShareOutput(t *testing.T) {
	// A 3-port router: inputs 0 and 1 both feed output 2. Both flows must
	// progress (round-robin arbitration).
	eng := sim.New()
	rt := New(Config{ID: 0, InPorts: 2, OutPorts: 1, VCs: 1, BufFlits: 8,
		Route: func(in int, p *packet.Packet, s []Choice) []Choice {
			return append(s, Choice{Port: 0})
		}})
	var ifs [2]*Iface
	for i := 0; i < 2; i++ {
		ifs[i] = NewIface(IfaceConfig{Node: i, VCs: 1, BufFlits: 16})
		ch := NewChannel(4, 1)
		ifs[i].ConnectOut(ch, 8)
		rt.ConnectIn(i, ch)
		eng.Register(ifs[i])
	}
	sink := NewIface(IfaceConfig{Node: 2, VCs: 1, BufFlits: 16})
	out := NewChannel(4, 1)
	rt.ConnectOut(0, out, sink.BufFlits())
	sink.ConnectIn(out)
	eng.Register(sink)
	eng.Register(rt)

	var ids packet.IDSource
	recvBySrc := map[int]int{}
	total := 0
	eng.RunUntil(func() bool {
		now := eng.Now()
		for i := 0; i < 2; i++ {
			if ifs[i].CanAccept(packet.Request) {
				p := &packet.Packet{ID: ids.Next(), Src: i, Dst: 2, Words: 8, Dialog: packet.NoDialog}
				ifs[i].StartSend(now, p)
			}
		}
		for {
			p, ok := sink.Deliver(now, nil)
			if !ok {
				break
			}
			recvBySrc[p.Src]++
			total++
		}
		return total >= 40
	}, 100000)
	if recvBySrc[0] < 12 || recvBySrc[1] < 12 {
		t.Fatalf("arbitration starved a source: %v", recvBySrc)
	}
}

func TestPacketsIntactUnderVCInterleaving(t *testing.T) {
	// With 2 VCs, consecutive packets can interleave on the link; the iface
	// must reassemble them without mixing flits.
	l := newLine(t, 2, 4, 2, false, 0)
	const n = 30
	sent, got := 0, 0
	lens := map[uint64]int{}
	l.eng.RunUntil(func() bool {
		now := l.eng.Now()
		if sent < n && l.ifaces[0].CanAccept(packet.Request) {
			words := 4 + sent%5
			p := l.pkt(0, 1, words, packet.Request)
			lens[p.ID] = words
			l.ifaces[0].StartSend(now, p)
			sent++
		}
		for {
			p, ok := l.ifaces[1].Deliver(now, nil)
			if !ok {
				break
			}
			if lens[p.ID] != p.Words {
				t.Fatalf("packet %d corrupted: words %d, want %d", p.ID, p.Words, lens[p.ID])
			}
			got++
		}
		return got == n
	}, 200000)
	if got != n {
		t.Fatalf("delivered %d/%d", got, n)
	}
}

func TestConservationInvariant(t *testing.T) {
	l := newLine(t, 2, 4, 4, false, 0)
	const n = 25
	sent, got := 0, 0
	l.eng.RunUntil(func() bool {
		now := l.eng.Now()
		if sent < n && l.ifaces[0].CanAccept(packet.Request) {
			l.ifaces[0].StartSend(now, l.pkt(0, 1, 8, packet.Request))
			sent++
		}
		for {
			if _, ok := l.ifaces[1].Deliver(now, nil); !ok {
				break
			}
			got++
		}
		return got == n
	}, 200000)
	inj0, _, _ := l.ifaces[0].Stats()
	_, del1, drop1 := l.ifaces[1].Stats()
	if inj0 != n || del1 != n || drop1 != 0 {
		t.Fatalf("conservation violated: injected %d delivered %d dropped %d want %d", inj0, del1, drop1, n)
	}
	if l.rts[0].BufferedFlits() != 0 || l.rts[1].BufferedFlits() != 0 {
		t.Fatalf("flits stranded in routers: %d %d", l.rts[0].BufferedFlits(), l.rts[1].BufferedFlits())
	}
}
