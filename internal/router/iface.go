package router

import (
	"fmt"

	"nifdy/internal/packet"
	"nifdy/internal/rng"
	"nifdy/internal/sim"
)

// IfaceConfig parameterizes a node's network interface port.
type IfaceConfig struct {
	// Node is the node number (diagnostics).
	Node int
	// VCs per class; must match the attached router.
	VCs int
	// BufFlits is the ejection buffer depth per VC. It must be at least the
	// largest packet size, since a packet is handed to the NIC only when
	// fully reassembled.
	BufFlits int
	// DropProb, when positive, drops each fully arrived packet with this
	// probability — the lossy-network model for the §6.2 retransmission
	// extension. Requires RNG.
	DropProb float64
	// RNG drives loss decisions.
	RNG *rng.Source
	// Fabric configures the modern-fabric baselines: PFC pause/resume on the
	// access channels, and the lossy-wire fault model (drop/corrupt in
	// flight) that exercises the §6 retransmission path. ECN marking happens
	// in the routers and is ignored here.
	Fabric FabricConfig
	// Mutate injects substrate faults for monitor validation (test-only).
	Mutate IfaceMutations
}

// IfaceMutations are deliberate, one-shot substrate faults used by the
// internal/check mutation tests to prove the conservation monitors trip.
// They must never be set outside tests.
type IfaceMutations struct {
	// DropArrival silently discards the first flit that arrives on an
	// ejection channel — no buffer entry, no credit — violating flit (and
	// credit) conservation.
	DropArrival bool
	// LeakCredit withholds one credit on the first packet extraction,
	// violating credit conservation.
	LeakCredit bool
	// IgnoreCredit sends one flit past an exhausted credit counter,
	// driving it negative — the overcommit the VC-capacity monitor must
	// catch before the downstream buffer overflows.
	IgnoreCredit bool
	// PFCIgnorePause transmits one flit on a paused VC (credits permitting),
	// violating the PFC no-transmit-while-paused invariant.
	PFCIgnorePause bool
	// PFCDropResume clears the ejection side's pause state once without
	// sending the resume frame, leaving the upstream transmitter paused
	// forever — the pause/resume pairing violation.
	PFCDropResume bool
}

type ifSlot struct {
	p    *packet.Packet
	next int // next flit index to send
	vc   int // allocated global vc at the router's local input port, -1 before head
}

type ejectVC struct {
	q []packet.Flit
}

// Iface is the boundary between a NIC and the network fabric: it serializes
// outgoing packets flit-by-flit into the local router port (one packet per
// class at a time, classes interleaved at flit granularity like any VC mux)
// and reassembles incoming flits into whole packets that the NIC pulls on
// its own schedule. Unpulled packets hold their buffer slots and therefore
// exert backpressure into the fabric — exactly the end-point congestion
// mechanism the paper studies.
//
// Most fabrics share one physical channel pair between the two logical
// networks (demand multiplexing); the CM-5 fat tree attaches one channel
// pair per class (strict time multiplexing), via ConnectOutClass and
// ConnectInClass.
type Iface struct {
	cfg IfaceConfig

	outCh    [packet.NumClasses]*Channel
	credits  []int
	initCred []int // initial grant per global vc (audit reference)
	slots    [packet.NumClasses]ifSlot
	clsRR    int

	inCh    [packet.NumClasses]*Channel
	eject   []ejectVC
	ejected int // flits buffered on the eject side
	scanRR  int

	injectedPkts, deliveredPkts, droppedPkts int64
	injectedFlits                            int64
	deliveredFlits, droppedFlits             int64

	// PFC state. The injection side mirrors the pause frames the local
	// router's input port sent (pfcPaused, with the drain cycle in
	// pfcPausedAt); the ejection side tracks the pauses it has issued
	// upstream (pfcActive), with thresholds resolved against BufFlits.
	pfcOn           bool
	pfcXOff, pfcXOn int
	pfcPaused       []bool
	pfcPausedAt     []sim.Cycle
	pfcActive       []bool

	// Lossy-wire state: the per-node fault stream and the set of packets
	// condemned in flight, mapped to the flits not yet accounted (extracted,
	// discarded on arrival, or dropped at the wire). Membership lookups only;
	// the map is never iterated, and entries die with their last flit.
	wireRNG  *rng.Source
	poisoned map[*packet.Packet]int

	mutDropDone, mutLeakDone, mutCreditDone bool
	mutPFCPauseDone, mutPFCResumeDone       bool

	// act is the quiescence latch shared by the iface and the NIC that
	// ticks it: flit arrivals on any ejection channel wake it.
	act sim.Activity
}

// NewIface returns an Iface for cfg.
func NewIface(cfg IfaceConfig) *Iface {
	if cfg.VCs < 1 {
		cfg.VCs = 1
	}
	if cfg.BufFlits < 1 {
		cfg.BufFlits = 1
	}
	f := &Iface{cfg: cfg}
	nvc := packet.NumClasses * cfg.VCs
	f.eject = make([]ejectVC, nvc)
	for i := range f.eject {
		// Full depth up front: the credit loop bounds each queue at BufFlits,
		// so this buffer is reused forever (extract keeps the backing array).
		f.eject[i].q = make([]packet.Flit, 0, cfg.BufFlits)
	}
	f.credits = make([]int, nvc)
	f.initCred = make([]int, nvc)
	for i := range f.slots {
		f.slots[i].vc = -1
	}
	if cfg.Fabric.PFC.Enable {
		f.pfcOn = true
		// The ejection side is packet-granular: extract removes whole packets,
		// so a pause issued while the head packet is still arriving would
		// block that packet's own tail — deadlock. Worms arrive contiguously
		// per VC, so occupancy == capacity implies the head packet is
		// complete and extractable; the ejection buffer therefore pauses only
		// when full, ignoring the (router-oriented) configured thresholds.
		f.pfcXOff = cfg.BufFlits
		f.pfcXOn = cfg.BufFlits - 1
		f.pfcPaused = make([]bool, nvc)
		f.pfcPausedAt = make([]sim.Cycle, nvc)
		f.pfcActive = make([]bool, nvc)
	}
	if cfg.Fabric.Lossy() {
		// One fault stream per node, salted away from every other consumer of
		// the seed; decisions are drawn at the access link's single writer, so
		// they are identical for any shard count.
		f.wireRNG = rng.NewStream(cfg.Fabric.Seed^0x77697265, uint64(cfg.Node))
		f.poisoned = make(map[*packet.Packet]int)
	}
	return f
}

// ConnectOut attaches ch as the shared injection channel for all classes.
// routerDepth is the per-VC buffer depth of the router's local input port.
func (f *Iface) ConnectOut(ch *Channel, routerDepth int) {
	for c := 0; c < packet.NumClasses; c++ {
		f.ConnectOutClass(packet.Class(c), ch, routerDepth)
	}
}

// ConnectOutClass attaches ch as the injection channel for one class only.
// Credit returns on ch wake the owning NIC: a unit mid-serialization may be
// blocked solely on router buffer credits.
func (f *Iface) ConnectOutClass(c packet.Class, ch *Channel, routerDepth int) {
	f.outCh[c] = ch
	ch.Credits.Observe(&f.act)
	base := int(c) * f.cfg.VCs
	for v := 0; v < f.cfg.VCs; v++ {
		f.credits[base+v] = routerDepth
		f.initCred[base+v] = routerDepth
	}
}

// ConnectIn attaches ch as the shared ejection channel for all classes.
func (f *Iface) ConnectIn(ch *Channel) {
	for c := 0; c < packet.NumClasses; c++ {
		f.ConnectInClass(packet.Class(c), ch)
	}
}

// ConnectInClass attaches ch as the ejection channel for one class only.
// Arrivals on ch wake the owning NIC. In lossy mode the iface also installs
// the wire-fault hook on ch: drops are decided on the writer's (the local
// router's) tick, and the compensating accounting runs here, on the same
// shard — access channels never cross shards.
func (f *Iface) ConnectInClass(c packet.Class, ch *Channel) {
	f.inCh[c] = ch
	ch.Flits.Observe(&f.act)
	if f.wireRNG != nil {
		ch.Flits.SetFault(func(now sim.Cycle, fl packet.Flit) bool {
			return f.wireFault(now, ch, fl)
		})
	}
}

// Activity returns the quiescence latch shared by the iface and its NIC.
func (f *Iface) Activity() *sim.Activity { return &f.act }

// NextArrivalAt reports the earliest cycle at which a flit can arrive on any
// ejection channel, or sim.Never when none is in flight.
func (f *Iface) NextArrivalAt() sim.Cycle {
	next := sim.Never
	for c := 0; c < packet.NumClasses; c++ {
		ch := f.inCh[c]
		if ch == nil || (c > 0 && ch == f.inCh[c-1]) {
			continue
		}
		if at := ch.Flits.NextAt(); at < next {
			next = at
		}
	}
	return next
}

// BlockedBound reports the time a NIC that made no progress this tick may
// sleep until: the earliest flit arrival in flight, the earliest credit
// return in flight (its wake edge fired while the unit was still awake, so
// only the wire's content shows it now), or the cycle a busy serialization
// slot's occupied output link goes free. Credits and flits sent after the
// unit falls asleep re-arm it through the wire observers.
func (f *Iface) BlockedBound(now sim.Cycle) sim.Cycle {
	next := f.NextArrivalAt()
	for c := 0; c < packet.NumClasses; c++ {
		ch := f.outCh[c]
		if ch == nil {
			continue // scanning a shared channel twice just repeats the min
		}
		if at := ch.Credits.NextAt(); at < next {
			next = at
		}
		if f.slots[c].p == nil {
			continue
		}
		if at := ch.Flits.FreeAt(); at > now && at < next {
			next = at
		}
	}
	return next
}

// Quiet reports whether ticking the iface is a no-op absent new arrivals:
// nothing mid-serialization on the injection side and nothing buffered on
// the ejection side. Credit returns may still be in flight; they are
// drained lazily on the next wake, before any send decision reads them.
func (f *Iface) Quiet() bool {
	for c := range f.slots {
		if f.slots[c].p != nil {
			return false
		}
	}
	return f.ejected == 0
}

// BufFlits reports the ejection buffer depth per VC (the value the router's
// local output port must be granted as credit).
func (f *Iface) BufFlits() int { return f.cfg.BufFlits }

// CanAccept reports whether a new outgoing packet of the given class can be
// started this cycle.
func (f *Iface) CanAccept(c packet.Class) bool { return f.slots[c].p == nil }

// StartSend begins serializing p into the network. The caller must have
// checked CanAccept for p's class.
func (f *Iface) StartSend(now sim.Cycle, p *packet.Packet) {
	s := &f.slots[p.Class]
	if s.p != nil {
		panic(fmt.Sprintf("iface %d: StartSend while class %v busy", f.cfg.Node, p.Class))
	}
	s.p = p
	s.next = 0
	s.vc = -1
	_ = now
}

// Sending reports the packet currently being serialized for class c, if any.
func (f *Iface) Sending(c packet.Class) *packet.Packet { return f.slots[c].p }

// Tick implements sim.Ticker for an iface driven standalone (tests).
func (f *Iface) Tick(now sim.Cycle) { f.Pump(now) }

// Pump drains credits and arrivals, applies loss, and pushes flits onto the
// local channel(s) — one flit per physical channel per cycle. It reports
// whether any of that changed state (a pump that drained and sent nothing is
// a no-op the scheduler may elide).
func (f *Iface) Pump(now sim.Cycle) bool {
	progress := f.drainCredits(now)
	if f.drainArrivals(now) {
		progress = true
	}
	if f.sendFlits(now) {
		progress = true
	}
	return progress
}

func (f *Iface) drainCredits(now sim.Cycle) bool {
	progress := false
	for c := 0; c < packet.NumClasses; c++ {
		ch := f.outCh[c]
		if ch == nil || (c > 0 && ch == f.outCh[c-1]) {
			continue // shared channel already drained
		}
		for ch.Credits.Ready(now) {
			cr, _ := ch.Credits.Recv(now)
			switch cr.Kind {
			case PFCPause:
				f.pfcPaused[cr.VC] = true
				f.pfcPausedAt[cr.VC] = now
			case PFCResume:
				f.pfcPaused[cr.VC] = false
			default:
				f.credits[cr.VC]++
			}
			progress = true
		}
	}
	return progress
}

//lint:allow(hotalloc) eject-VC growth is bounded by BufFlits (overflow panics), so capacity is reached during warm-up
func (f *Iface) drainArrivals(now sim.Cycle) bool {
	progress := false
	for c := 0; c < packet.NumClasses; c++ {
		ch := f.inCh[c]
		if ch == nil || (c > 0 && ch == f.inCh[c-1]) {
			continue
		}
		for ch.Flits.Ready(now) {
			fl, _ := ch.Flits.Recv(now)
			progress = true
			if f.poisoned != nil {
				if rem, ok := f.poisoned[fl.Pkt]; ok {
					// The packet was condemned in flight (a sibling flit was
					// dropped, or this one corrupted): discard without
					// buffering, but return the credit — the slot it charged
					// is free again.
					ch.Credits.Send(now, Credit{VC: fl.VC})
					f.droppedFlits++
					if rem <= 1 {
						delete(f.poisoned, fl.Pkt)
					} else {
						f.poisoned[fl.Pkt] = rem - 1
					}
					continue
				}
			}
			if f.cfg.Mutate.DropArrival && !f.mutDropDone {
				// Injected fault: the flit vanishes without a buffer slot
				// or credit, so conservation monitors must trip.
				f.mutDropDone = true
				continue
			}
			vc := &f.eject[fl.VC]
			if len(vc.q) >= f.cfg.BufFlits {
				panic(fmt.Sprintf("iface %d: eject vc %d overflow", f.cfg.Node, fl.VC))
			}
			vc.q = append(vc.q, fl)
			f.ejected++
			if f.pfcOn && !f.pfcActive[fl.VC] && len(vc.q) >= f.pfcXOff {
				f.pfcActive[fl.VC] = true
				ch.Credits.Send(now, Credit{VC: fl.VC, Kind: PFCPause})
			}
			if fl.Tail() && f.cfg.DropProb > 0 && f.cfg.RNG != nil && f.cfg.RNG.Bool(f.cfg.DropProb) {
				removed := f.extract(now, fl.VC, fl.Pkt)
				f.droppedPkts++
				f.droppedFlits += int64(removed)
			}
		}
	}
	return progress
}

// extract removes all flits of p from eject vc g, returns their credits, and
// reports how many flits it removed.
//lint:allow(hotalloc) filter-in-place append into the same backing array never exceeds capacity
func (f *Iface) extract(now sim.Cycle, g int, p *packet.Packet) int {
	vc := &f.eject[g]
	kept := vc.q[:0]
	removed := 0
	for _, fl := range vc.q {
		if fl.Pkt == p {
			removed++
			continue
		}
		kept = append(kept, fl)
	}
	for i := len(kept); i < len(vc.q); i++ {
		vc.q[i] = packet.Flit{}
	}
	vc.q = kept
	f.ejected -= removed
	ch := f.inCh[g/f.cfg.VCs]
	credits := removed
	if f.cfg.Mutate.LeakCredit && !f.mutLeakDone && credits > 0 {
		// Injected fault: one buffer slot's credit never returns.
		f.mutLeakDone = true
		credits--
	}
	for i := 0; i < credits; i++ {
		ch.Credits.Send(now, Credit{VC: g})
	}
	if f.pfcOn && f.pfcActive[g] && len(vc.q) <= f.pfcXOn {
		f.pfcActive[g] = false
		if f.cfg.Mutate.PFCDropResume && !f.mutPFCResumeDone {
			// Injected fault: pause state cleared but the resume frame is
			// never sent — the upstream VC stays paused forever.
			f.mutPFCResumeDone = true
		} else {
			ch.Credits.Send(now, Credit{VC: g, Kind: PFCResume})
		}
	}
	return removed
}

// wireFault is the lossy-wire hook (link.Link.SetFault) for ejection channel
// ch. It runs on the writer's (the local router's) tick, at transmission
// time: returning false drops the flit in flight. A drop or corruption
// condemns the whole packet — wormhole flits are useless without their
// siblings — via the poison set, and every condemned flit is compensated
// (credit returned, loss counted) exactly once, so the conservation monitors
// hold at every audit instant.
func (f *Iface) wireFault(now sim.Cycle, ch *Channel, fl packet.Flit) bool {
	drop := f.cfg.Fabric.WireDrop > 0 && f.wireRNG.Bool(f.cfg.Fabric.WireDrop)
	corrupt := !drop && f.cfg.Fabric.WireCorrupt > 0 && f.wireRNG.Bool(f.cfg.Fabric.WireCorrupt)
	if !drop && !corrupt {
		return true
	}
	f.poison(now, ch, fl, drop)
	return !drop
}

// poison condemns fl's packet: buffered sibling flits are extracted now
// (their credits return through the normal path), in-flight and future flits
// will be discarded-with-credit on arrival, and a wire-dropped flit — which
// never arrives — has its credit returned here. The remaining-flit count
// tracks how many of the packet's flits are still unaccounted; the entry is
// deleted when it reaches zero, which wormhole serialization guarantees.
func (f *Iface) poison(now sim.Cycle, ch *Channel, fl packet.Flit, dropped bool) {
	p := fl.Pkt
	rem, already := f.poisoned[p]
	if !already {
		f.droppedPkts++
		rem = p.Flits()
		removed := f.extract(now, fl.VC, p)
		f.droppedFlits += int64(removed)
		rem -= removed
	}
	if dropped {
		ch.Credits.Send(now, Credit{VC: fl.VC})
		f.droppedFlits++
		rem--
	}
	if rem <= 0 {
		delete(f.poisoned, p)
	} else {
		f.poisoned[p] = rem
	}
}

func (f *Iface) sendFlits(now sim.Cycle) bool {
	var used [packet.NumClasses]*Channel // channels that carried a flit this cycle
	nUsed := 0
	for k := 0; k < packet.NumClasses; k++ {
		ci := (k + f.clsRR) % packet.NumClasses
		s := &f.slots[ci]
		if s.p == nil {
			continue
		}
		ch := f.outCh[ci]
		if ch == nil || !ch.Flits.CanSend(now) {
			continue
		}
		already := false
		for i := 0; i < nUsed; i++ {
			if used[i] == ch {
				already = true
				break
			}
		}
		if already {
			continue
		}
		if s.vc < 0 {
			// Head flit: allocate the freest VC in the packet's class range.
			base := ci * f.cfg.VCs
			best, bestCred := -1, 0
			for v := 0; v < f.cfg.VCs; v++ {
				if f.pfcOn && f.pfcPaused[base+v] {
					continue
				}
				if f.credits[base+v] > bestCred {
					best, bestCred = base+v, f.credits[base+v]
				}
			}
			if best < 0 {
				continue
			}
			s.vc = best
			s.p.InjectedAt = now
		}
		if f.pfcOn && f.pfcPaused[s.vc] {
			if !(f.cfg.Mutate.PFCIgnorePause && !f.mutPFCPauseDone && f.credits[s.vc] > 0) {
				continue
			}
			// Injected fault: one flit transmitted on a paused VC.
			f.mutPFCPauseDone = true
		}
		if f.credits[s.vc] <= 0 {
			if !f.cfg.Mutate.IgnoreCredit || f.mutCreditDone {
				continue
			}
			// Injected fault: overcommit the downstream buffer once.
			f.mutCreditDone = true
		}
		fl := packet.Flit{Pkt: s.p, Index: s.next, VC: s.vc}
		ch.Flits.Send(now, fl)
		f.credits[s.vc]--
		f.injectedFlits++
		s.next++
		if s.next == s.p.Flits() {
			f.injectedPkts++
			s.p = nil
			s.vc = -1
		}
		used[nUsed] = ch
		nUsed++
		f.clsRR = (ci + 1) % packet.NumClasses
	}
	return nUsed > 0
}

// Deliver pops the first fully reassembled packet satisfying pred (nil pred
// accepts anything), scanning VCs from a rotating offset. The packet's
// DeliveredAt is stamped with the current cycle.
func (f *Iface) Deliver(now sim.Cycle, pred func(*packet.Packet) bool) (*packet.Packet, bool) {
	if f.ejected == 0 {
		return nil, false
	}
	n := len(f.eject)
	g := f.scanRR
	if g >= n {
		g = 0
	}
	for k := 0; k < n; k++ {
		if k > 0 {
			g++
			if g == n {
				g = 0
			}
		}
		vc := &f.eject[g]
		if len(vc.q) == 0 || !vc.q[0].Head() {
			continue
		}
		p := vc.q[0].Pkt
		if !tailPresent(vc.q, p) {
			continue
		}
		if pred != nil && !pred(p) {
			continue
		}
		removed := f.extract(now, g, p)
		f.deliveredPkts++
		f.deliveredFlits += int64(removed)
		p.DeliveredAt = now
		f.scanRR = g + 1
		if f.scanRR == n {
			f.scanRR = 0
		}
		return p, true
	}
	return nil, false
}

// PendingFlits reports flits buffered on the eject side (not yet pulled).
func (f *Iface) PendingFlits() int { return f.ejected }

// Stats reports injected, delivered, and dropped packet counts.
func (f *Iface) Stats() (injected, delivered, dropped int64) {
	return f.injectedPkts, f.deliveredPkts, f.droppedPkts
}

func tailPresent(q []packet.Flit, p *packet.Packet) bool {
	for i := len(q) - 1; i >= 0; i-- {
		if q[i].Pkt == p && q[i].Tail() {
			return true
		}
	}
	return false
}
