// Package router implements the shared switching machinery used by every
// simulated topology: virtual-channel input buffers, credit-based link-level
// flow control, route/VC allocation, round-robin switch arbitration, and the
// node network interface port (Iface) that injects and ejects whole packets.
//
// All topologies in internal/topo compose Routers with topology-specific
// route functions. The design point follows the paper's assumptions (§1.1):
// wormhole or cut-through routing, optional store-and-forward, two logical
// networks (request/reply) as distinct virtual-channel classes, and
// backpressure as the only in-fabric feedback.
package router

import (
	"nifdy/internal/link"
	"nifdy/internal/packet"
)

// Credit is a buffer-slot return notification for one virtual channel of the
// downstream input port.
type Credit struct {
	// VC is the global virtual-channel index (class*VCs + vc).
	VC int
}

// Channel bundles a forward flit link with its reverse credit wire. One
// Channel connects an output port (or an Iface's injection side) to an input
// port (or an Iface's ejection side).
type Channel struct {
	Flits   *link.Link[packet.Flit]
	Credits *link.Wire[Credit]
}

// NewChannel returns a channel whose flit link serializes one flit per
// cyclesPerFlit cycles with the given wire latency; credits return with
// latency 1.
func NewChannel(cyclesPerFlit, latency int) *Channel {
	return &Channel{
		Flits:   link.NewLink[packet.Flit](cyclesPerFlit, latency),
		Credits: link.NewWire[Credit](1),
	}
}
