// Package router implements the shared switching machinery used by every
// simulated topology: virtual-channel input buffers, credit-based link-level
// flow control, route/VC allocation, round-robin switch arbitration, and the
// node network interface port (Iface) that injects and ejects whole packets.
//
// All topologies in internal/topo compose Routers with topology-specific
// route functions. The design point follows the paper's assumptions (§1.1):
// wormhole or cut-through routing, optional store-and-forward, two logical
// networks (request/reply) as distinct virtual-channel classes, and
// backpressure as the only in-fabric feedback.
package router

import (
	"nifdy/internal/link"
	"nifdy/internal/packet"
)

// CreditKind distinguishes the frames carried on a channel's reverse wire:
// ordinary credit returns and the PFC pause/resume frames, which share the
// wire (and therefore its latency, ordering, and cross-shard determinism).
type CreditKind uint8

const (
	// CreditReturn is a buffer-slot return (the zero value: every plain
	// Credit{VC: v} literal is a credit return).
	CreditReturn CreditKind = iota
	// PFCPause tells the transmitter to stop scheduling flits on VC.
	PFCPause
	// PFCResume re-enables a paused VC.
	PFCResume
)

// Credit is a frame on a channel's reverse wire: a buffer-slot return for
// one virtual channel of the downstream input port, or (Kind != CreditReturn)
// a PFC pause/resume notification for that VC.
type Credit struct {
	// VC is the global virtual-channel index (class*VCs + vc).
	VC int
	// Kind selects credit return (zero) or PFC pause/resume.
	Kind CreditKind
}

// Channel bundles a forward flit link with its reverse credit wire. One
// Channel connects an output port (or an Iface's injection side) to an input
// port (or an Iface's ejection side).
type Channel struct {
	Flits   *link.Link[packet.Flit]
	Credits *link.Wire[Credit]
}

// NewChannel returns a channel whose flit link serializes one flit per
// cyclesPerFlit cycles with the given wire latency; credits return with
// latency 1.
func NewChannel(cyclesPerFlit, latency int) *Channel {
	return NewChannelSync(cyclesPerFlit, latency, 1)
}

// NewChannelSync returns a channel padded for conservative window
// synchronization: every event (flit arrival, credit return) lands at least
// window cycles after its send, so a window-W engine can free-run W cycles
// between cross-shard merges without a consumer ever missing an input. The
// padding is a model parameter, not an approximation — a fabric built with
// window W behaves identically for every {shards x processes} split,
// including fully serial execution, and window 1 is exactly NewChannel.
// Topologies apply it to router-router channels only (the ones a partition
// can cut); interface-access channels never cross shards and stay unpadded.
func NewChannelSync(cyclesPerFlit, latency, window int) *Channel {
	if window < 1 {
		window = 1
	}
	// Flit arrival offset is cyclesPerFlit+latency-1 (see link.Link.Send);
	// stretch the wire so the offset reaches the window.
	flitLat := latency
	if pad := window - (cyclesPerFlit + latency - 1); pad > 0 {
		flitLat += pad
	}
	return &Channel{
		Flits:   link.NewLink[packet.Flit](cyclesPerFlit, flitLat),
		Credits: link.NewWire[Credit](window),
	}
}
