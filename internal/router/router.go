package router

import (
	"fmt"

	"nifdy/internal/packet"
	"nifdy/internal/rng"
	"nifdy/internal/sim"
)

// Choice is one candidate next hop for a packet: an output port and the
// virtual channels (within the packet's class, 0..VCs-1) it may use there.
// An empty VCs slice means any VC of the class is allowed.
type Choice struct {
	Port int
	VCs  []int
}

// RouteFn computes the candidate next hops for a packet arriving on inPort.
// Implementations append to scratch and return it to avoid allocation. A
// RouteFn must be a pure function of (inPort, packet) — adaptivity between
// the returned candidates is the router's job, not the route function's.
type RouteFn func(inPort int, p *packet.Packet, scratch []Choice) []Choice

// Config parameterizes a Router.
type Config struct {
	// ID identifies the router (diagnostics only).
	ID int
	// InPorts and OutPorts are the port counts; port i in and out need not
	// be related.
	InPorts, OutPorts int
	// VCs is the number of virtual channels per logical network class. The
	// total VC space per port is packet.NumClasses * VCs.
	VCs int
	// BufFlits is the input buffer depth per virtual channel, in flits.
	BufFlits int
	// SAF selects store-and-forward: a packet's flits are forwarded only
	// once the whole packet is buffered. Requires BufFlits >= packet size.
	SAF bool
	// Route computes candidate next hops.
	Route RouteFn
	// RNG breaks ties between equally attractive adaptive candidates. If
	// nil, the first candidate wins (appropriate for deterministic routing).
	RNG *rng.Source
	// Fabric configures the modern-fabric baselines: PFC pause/resume with
	// per-VC thresholds on every channel (hop-by-hop backpressure) and ECN
	// congestion marking at the egress queues. The lossy-wire knobs are
	// applied by the interfaces, not here.
	Fabric FabricConfig
}

// vcState is one input virtual channel. Its flit queue is a fixed-capacity
// ring over a view into the router's flat buffer arena (indexed by
// (port, vc)): the credit protocol bounds occupancy at BufFlits, so the
// storage never grows and forwarding never slides or reallocates a slice —
// the append/`q = q[1:]` queue it replaces reallocated once per packet.
type vcState struct {
	buf     []packet.Flit // BufFlits ring slots in the shared arena
	head    int           // ring index of the oldest flit
	n       int           // buffered flit count
	outPort int           // -1 when the head packet has no route yet
	outVC   int           // global vc index at the downstream input port
	waitSeq int64         // allocation age: stamp when the front head became unrouted
	// choices caches the route computation for the packet at the front of
	// the queue, so a head blocked on VC allocation does not recompute its
	// route every cycle.
	choices   []Choice
	choicesOK bool
}

// front returns the oldest buffered flit. The VC must be non-empty.
func (v *vcState) front() *packet.Flit { return &v.buf[v.head] }

// at returns the i-th oldest buffered flit (0 = front).
func (v *vcState) at(i int) *packet.Flit {
	idx := v.head + i
	if idx >= len(v.buf) {
		idx -= len(v.buf)
	}
	return &v.buf[idx]
}

// push appends f. The caller enforces the credit bound.
func (v *vcState) push(f packet.Flit) {
	idx := v.head + v.n
	if idx >= len(v.buf) {
		idx -= len(v.buf)
	}
	v.buf[idx] = f
	v.n++
}

// pop removes and returns the front flit, zeroing its slot so the ring never
// retains a forwarded packet.
func (v *vcState) pop() packet.Flit {
	f := v.buf[v.head]
	v.buf[v.head] = packet.Flit{}
	v.head++
	if v.head == len(v.buf) {
		v.head = 0
	}
	v.n--
	return f
}

type inPort struct {
	ch        *Channel
	vcs       []vcState
	pfcActive []bool // per global vc: pause issued upstream, resume pending
}

type requester struct{ in, vc int }

type outPort struct {
	ch        *Channel
	credits   []int            // free downstream buffer slots per global vc
	initial   int              // initial credit grant (downstream buffer depth)
	owner     []*packet.Packet // packet holding each downstream vc, nil = free
	reqs      []requester      // input vcs currently routed to this port
	rr        int              // round-robin pointer into reqs
	paused    []bool           // per global vc: PFC pause received, not yet resumed
	pausedAt  []sim.Cycle      // cycle the pause frame was drained
	ecnThresh int              // downstream occupancy that triggers ECN marking
}

// Router is a generic virtual-channel switch.
type Router struct {
	cfg      Config
	in       []inPort
	out      []outPort
	buffered int // total flits in input buffers (fast-path skip)
	unrouted int // input VCs whose front flit is an unrouted head
	inUsed   []bool
	allocSeq int64       // monotone stamp source for vcState.waitSeq
	allocQ   []requester // scratch: unrouted heads ordered oldest-first

	// PFC/ECN state resolved from cfg.Fabric.
	pfcOn           bool
	pfcXOff, pfcXOn int
	ecnOn           bool

	act sim.Activity
}

// New returns a Router for cfg. Ports start unconnected; unconnected ports
// are ignored.
func New(cfg Config) *Router {
	if cfg.VCs < 1 {
		cfg.VCs = 1
	}
	if cfg.BufFlits < 1 {
		cfg.BufFlits = 1
	}
	r := &Router{cfg: cfg}
	nvc := packet.NumClasses * cfg.VCs
	r.in = make([]inPort, cfg.InPorts)
	// One flat arena holds every input VC's flit buffer, carved into
	// per-(port, vc) rings of BufFlits slots.
	arena := make([]packet.Flit, cfg.InPorts*nvc*cfg.BufFlits)
	for i := range r.in {
		r.in[i].vcs = make([]vcState, nvc)
		for v := range r.in[i].vcs {
			off := (i*nvc + v) * cfg.BufFlits
			r.in[i].vcs[v].buf = arena[off : off+cfg.BufFlits]
			r.in[i].vcs[v].outPort = -1
		}
		r.in[i].pfcActive = make([]bool, nvc)
	}
	r.out = make([]outPort, cfg.OutPorts)
	r.inUsed = make([]bool, cfg.InPorts)
	r.allocQ = make([]requester, 0, cfg.InPorts*nvc)
	if cfg.Fabric.PFC.Enable {
		r.pfcOn = true
		r.pfcXOff, r.pfcXOn = cfg.Fabric.PFC.thresholds(cfg.BufFlits)
	}
	r.ecnOn = cfg.Fabric.ECN.Enable
	return r
}

// ID returns the router's configured identifier.
func (r *Router) ID() int { return r.cfg.ID }

// VCs returns the per-class virtual channel count.
func (r *Router) VCs() int { return r.cfg.VCs }

// BufFlits returns the per-VC input buffer depth.
func (r *Router) BufFlits() int { return r.cfg.BufFlits }

// Activity implements sim.IdleTicker: the router sleeps whenever it holds
// no flits, and flit arrivals on any input re-wake it.
func (r *Router) Activity() *sim.Activity { return &r.act }

// ConnectIn attaches ch as the flit source for input port p. Arrivals on ch
// wake a sleeping router.
func (r *Router) ConnectIn(p int, ch *Channel) {
	r.in[p].ch = ch
	ch.Flits.Observe(&r.act)
}

// ConnectOut attaches ch as output port p's channel. downstreamDepth is the
// per-VC buffer depth of the input port at the far end (the initial credit).
// Credit returns on ch wake the router: a router holding flits may be
// blocked solely on downstream credits.
func (r *Router) ConnectOut(p int, ch *Channel, downstreamDepth int) {
	op := &r.out[p]
	op.ch = ch
	ch.Credits.Observe(&r.act)
	op.initial = downstreamDepth
	n := packet.NumClasses * r.cfg.VCs
	op.credits = make([]int, n)
	op.owner = make([]*packet.Packet, n)
	// At most every input VC can be routed here at once; sizing reqs for
	// that worst case makes requester churn allocation-free.
	op.reqs = make([]requester, 0, r.cfg.InPorts*n)
	for i := range op.credits {
		op.credits[i] = downstreamDepth
	}
	op.paused = make([]bool, n)
	op.pausedAt = make([]sim.Cycle, n)
	op.ecnThresh = r.cfg.Fabric.ECN.threshold(downstreamDepth)
}

// BufferedFlits reports the total flits held in this router's input buffers
// (used by volume/occupancy statistics).
func (r *Router) BufferedFlits() int { return r.buffered }

// Tick advances the router one cycle: drain arrivals and credits, allocate
// routes and output VCs for new head flits, then forward one flit per free
// output port. A tick that does none of those things leaves the router at a
// fixed point, and the router sleeps until an event that can break it.
func (r *Router) Tick(now sim.Cycle) {
	progress := r.receive(now)
	if r.buffered == 0 {
		r.sleepEmpty()
		return
	}
	if r.unrouted > 0 && r.allocate() {
		progress = true
	}
	if r.send(now) {
		progress = true
	}
	if r.buffered == 0 {
		r.sleepEmpty()
	} else if !progress {
		r.sleepBlocked(now)
	}
}

// sleepEmpty parks the router until the next flit arrival on any input port.
// With empty VC queues there are no output requesters, so allocation and
// forwarding are no-ops, and credit returns may be drained lazily on wake —
// the cumulative counts a future allocation observes are identical either
// way. Wire observers re-arm the router for sends issued after it fell
// asleep (a pending credit return may wake it early; the tick is then a
// harmless drain).
func (r *Router) sleepEmpty() {
	next := sim.Never
	for i := range r.in {
		if ch := r.in[i].ch; ch != nil {
			if at := ch.Flits.NextAt(); at < next {
				next = at
			}
		}
	}
	r.act.Sleep(next)
}

// sleepBlocked parks a router that holds flits but made no progress this
// tick: nothing arrived, nothing allocated, nothing forwarded. Every reason
// a flit is stuck resolves only through an external event — a flit arrival
// (SAF completion, missing body flits), a credit return (exhausted
// downstream buffers), or an occupied output link going free — and
// VC-ownership conflicts resolve only via this router's own tail sends,
// which are progress and keep it awake. So the state is a fixed point until
// the earliest such event, and skipping to it is bit-identical to ticking
// through.
func (r *Router) sleepBlocked(now sim.Cycle) {
	next := sim.Never
	for i := range r.in {
		if ch := r.in[i].ch; ch != nil {
			if at := ch.Flits.NextAt(); at < next {
				next = at
			}
		}
	}
	for o := range r.out {
		op := &r.out[o]
		if op.ch == nil {
			continue
		}
		if at := op.ch.Credits.NextAt(); at < next {
			next = at
		}
		if len(op.reqs) > 0 {
			if at := op.ch.Flits.FreeAt(); at > now && at < next {
				next = at
			}
		}
	}
	r.act.Sleep(next)
}

// receive drains flit arrivals and credit returns, reporting whether it
// drained anything (state changed).
func (r *Router) receive(now sim.Cycle) bool {
	progress := false
	for i := range r.in {
		ip := &r.in[i]
		if ip.ch == nil {
			continue
		}
		for ip.ch.Flits.Ready(now) {
			f, _ := ip.ch.Flits.Recv(now)
			progress = true
			v := &ip.vcs[f.VC]
			if v.n >= r.cfg.BufFlits {
				panic(fmt.Sprintf("router %d: input %d vc %d overflow (credit protocol violated)", r.cfg.ID, i, f.VC))
			}
			v.push(f)
			r.buffered++
			if v.n == 1 && f.Head() && v.outPort < 0 {
				v.waitSeq = r.allocSeq
				r.allocSeq++
				r.unrouted++
			}
			if r.pfcOn && !ip.pfcActive[f.VC] && v.n >= r.pfcXOff {
				ip.pfcActive[f.VC] = true
				ip.ch.Credits.Send(now, Credit{VC: f.VC, Kind: PFCPause})
			}
		}
	}
	for i := range r.out {
		op := &r.out[i]
		if op.ch == nil {
			continue
		}
		for op.ch.Credits.Ready(now) {
			c, _ := op.ch.Credits.Recv(now)
			progress = true
			switch c.Kind {
			case PFCPause:
				op.paused[c.VC] = true
				op.pausedAt[c.VC] = now
			case PFCResume:
				op.paused[c.VC] = false
			default:
				op.credits[c.VC]++
				if op.credits[c.VC] > op.initial {
					// Credits can never exceed the initial grant.
					panic(fmt.Sprintf("router %d: credit overflow on out %d vc %d", r.cfg.ID, i, c.VC))
				}
			}
		}
	}
	return progress
}

// allocate assigns an output port and downstream VC to buffered head flits
// that lack one, reporting whether any assignment was made. Heads are served
// oldest-first by the cycle they became allocatable: a contested VC always
// goes to the longest-waiting head, so no input can be starved by saturated
// streams on its neighbors — a rotating scan pointer shared across outputs
// can resonate with periodic traffic and skip the same head forever.
//lint:allow(hotalloc) requester-list growth is bounded by the port count; capacity is reached during warm-up
func (r *Router) allocate() bool {
	assigned := false
	// Collect every unrouted head, insertion-sorted by age. The candidate
	// count is bounded by the input VC total and is usually 1-2; the scan
	// stops as soon as all unrouted heads are found.
	heads := r.allocQ[:0]
	for i := 0; i < len(r.in) && len(heads) < r.unrouted; i++ {
		ip := &r.in[i]
		if ip.ch == nil {
			continue
		}
		for vc := range ip.vcs {
			vs := &ip.vcs[vc]
			if vs.outPort >= 0 || vs.n == 0 || !vs.front().Head() {
				continue
			}
			j := len(heads)
			heads = append(heads, requester{i, vc})
			for j > 0 && r.in[heads[j-1].in].vcs[heads[j-1].vc].waitSeq > vs.waitSeq {
				heads[j], heads[j-1] = heads[j-1], heads[j]
				j--
			}
		}
	}
	r.allocQ = heads
	for _, c := range heads {
		inIdx, vcIdx := c.in, c.vc
		ip := &r.in[inIdx]
		v := &ip.vcs[vcIdx]
		p := v.front().Pkt
		if !v.choicesOK {
			v.choices = r.cfg.Route(inIdx, p, v.choices[:0])
			v.choicesOK = true
			if len(v.choices) == 0 {
				panic(fmt.Sprintf("router %d: no route for %v on in %d", r.cfg.ID, p, inIdx))
			}
		}
		choices := v.choices
		bestPort, bestVC, bestScore, ties := -1, -1, -1, 0
		classBase := int(p.Class) * r.cfg.VCs
		for _, ch := range choices {
			op := &r.out[ch.Port]
			if op.ch == nil {
				continue
			}
			cands := ch.VCs
			if len(cands) == 0 {
				cands = allVCs(r.cfg.VCs)
			}
			for _, cvc := range cands {
				g := classBase + cvc
				if op.owner[g] != nil {
					continue
				}
				score := op.credits[g]
				switch {
				case score > bestScore:
					bestPort, bestVC, bestScore, ties = ch.Port, g, score, 1
				case score == bestScore && r.cfg.RNG != nil:
					// Reservoir sampling for an unbiased tie-break.
					ties++
					if r.cfg.RNG.Intn(ties) == 0 {
						bestPort, bestVC = ch.Port, g
					}
				}
			}
		}
		if bestPort < 0 {
			continue // every candidate VC is owned; retry next cycle
		}
		op := &r.out[bestPort]
		op.owner[bestVC] = p
		op.reqs = append(op.reqs, requester{inIdx, vcIdx})
		v.outPort, v.outVC = bestPort, bestVC
		v.choicesOK = false
		r.unrouted--
		assigned = true
	}
	return assigned
}

// send forwards at most one flit per output port, round-robin among the
// input VCs routed to it, subject to credits, link availability, one flit
// per input port per cycle, and (in SAF mode) whole-packet buffering. It
// reports whether any flit was forwarded.
//lint:allow(hotalloc) in-place requester removal append never exceeds the backing array
func (r *Router) send(now sim.Cycle) bool {
	sent := false
	for i := range r.inUsed {
		r.inUsed[i] = false
	}
	for o := range r.out {
		op := &r.out[o]
		if op.ch == nil || len(op.reqs) == 0 || !op.ch.Flits.CanSend(now) {
			continue
		}
		n := len(op.reqs)
		ri := op.rr
		if ri >= n {
			ri = 0
		}
		for k := 0; k < n; k++ {
			if k > 0 {
				ri++
				if ri == n {
					ri = 0
				}
			}
			req := op.reqs[ri]
			if r.inUsed[req.in] {
				continue
			}
			ip := &r.in[req.in]
			v := &ip.vcs[req.vc]
			if v.n == 0 || op.credits[v.outVC] <= 0 {
				continue
			}
			if r.pfcOn && op.paused[v.outVC] {
				continue
			}
			if r.cfg.SAF && !r.tailBuffered(v) {
				if v.n >= r.cfg.BufFlits {
					panic(fmt.Sprintf("router %d: SAF buffer (%d flits) smaller than packet %v", r.cfg.ID, r.cfg.BufFlits, v.front().Pkt))
				}
				continue
			}
			f := v.pop()
			r.buffered--
			f.VC = v.outVC
			if r.ecnOn && f.Head() && op.initial-op.credits[v.outVC] >= op.ecnThresh {
				// Egress congestion: the downstream buffer (plus in-flight
				// flits) for this VC is at the marking threshold. The head
				// flit is forwarded by exactly one router at a time, so the
				// mark is race-free and deterministic.
				f.Pkt.ECN = true
			}
			op.ch.Flits.Send(now, f)
			op.credits[v.outVC]--
			if ip.ch != nil {
				ip.ch.Credits.Send(now, Credit{VC: req.vc})
				if r.pfcOn && ip.pfcActive[req.vc] && v.n <= r.pfcXOn {
					ip.pfcActive[req.vc] = false
					ip.ch.Credits.Send(now, Credit{VC: req.vc, Kind: PFCResume})
				}
			}
			r.inUsed[req.in] = true
			sent = true
			if f.Tail() {
				op.owner[v.outVC] = nil
				v.outPort, v.outVC = -1, -1
				if v.n > 0 {
					// The next packet's head is now at the front.
					v.waitSeq = r.allocSeq
					r.allocSeq++
					r.unrouted++
				}
				op.reqs = append(op.reqs[:ri], op.reqs[ri+1:]...)
				op.rr = ri % max(1, len(op.reqs))
			} else {
				op.rr = (ri + 1) % n
			}
			break
		}
	}
	return sent
}

// tailBuffered reports whether the tail flit of the packet at the head of v
// is already buffered (store-and-forward eligibility).
func (r *Router) tailBuffered(v *vcState) bool {
	p := v.front().Pkt
	for i := v.n - 1; i >= 0; i-- {
		if fl := v.at(i); fl.Pkt == p && fl.Tail() {
			return true
		}
	}
	return false
}

var vcTables [][]int

func init() {
	vcTables = make([][]int, 17)
	for n := 1; n <= 16; n++ {
		t := make([]int, n)
		for i := range t {
			t[i] = i
		}
		vcTables[n] = t
	}
}

//lint:allow(hotalloc) cold fallback beyond the precomputed VC tables; paper configurations stay within the tables
func allVCs(n int) []int {
	if n < len(vcTables) {
		return vcTables[n]
	}
	t := make([]int, n)
	for i := range t {
		t[i] = i
	}
	return t
}
