package router

import (
	"nifdy/internal/link"
	"nifdy/internal/packet"
)

// ArenaSizer accumulates the arena-slot requirements of a shard's components
// before the backing arrays are allocated: each component's ArenaSize adds
// its needs, then NewArena allocates once and each component's BindArena
// carves its views in the same order. Mirrored sizing and binding walks keep
// the carve exact; Arena panics on any mismatch.
type ArenaSizer struct {
	Flits   int // input-VC ring slots + iface ejection slots
	Credits int // credit counters (router out-ports, iface inject side)
	Owners  int // downstream-VC owner pointers
	Reqs    int // output-port requester scratch
	VCs     int // input vcState records
	Bools   int // per-input-port one-flit-per-cycle flags
	FlitEv  int // latched flit-wire event slots (consumer side)
	CredEv  int // latched credit-wire event slots (consumer side)
}

// Arena is one shard's structure-of-arrays backing store for the flit
// engine's per-cycle hot state: every router input-VC ring, credit counter,
// owner table, requester list, and consumer-side wire event region of the
// shard lives in one of these flat arrays, carved into per-component views
// at registration. The Router/Iface structs stay the API — after BindArena
// they are thin views whose hot slices alias arena slots — so NICs,
// monitors, stats, sharding, and the dist transport are unaffected.
//
// Components are identified by dense per-shard IDs handed out by the topo
// package's allocator at network registration; the arena records the next
// expected ID so a stray literal (instead of an allocator-issued ID) fails
// fast. The nifdy-lint `arena` rule enforces both properties statically:
// arena-backed fields are mutated only through their owning view's methods,
// and BindArena IDs come from the allocator, never from literals.
type Arena struct {
	flits   []packet.Flit
	credits []int
	owners  []*packet.Packet
	reqs    []requester
	vcs     []vcState
	bools   []bool
	flitEv  link.EventArena[packet.Flit]
	credEv  link.EventArena[Credit]

	uF, uC, uO, uR, uV, uB int
	nextID                 int32
}

// NewArena allocates a shard arena with the accumulated sizes.
func NewArena(s ArenaSizer) *Arena {
	a := &Arena{
		flits:   make([]packet.Flit, s.Flits),
		credits: make([]int, s.Credits),
		owners:  make([]*packet.Packet, s.Owners),
		reqs:    make([]requester, s.Reqs),
		vcs:     make([]vcState, s.VCs),
		bools:   make([]bool, s.Bools),
	}
	a.flitEv.Grow(s.FlitEv)
	a.flitEv.Alloc()
	a.credEv.Grow(s.CredEv)
	a.credEv.Alloc()
	return a
}

// claim checks off one dense component ID. IDs must arrive in allocation
// order — the topo allocator and the binding walk are the same loop.
func (a *Arena) claim(id int32) {
	if id != a.nextID {
		panic("router: arena bind out of ID order (use the topo allocator)")
	}
	a.nextID++
}

func (a *Arena) flitSlots(n int) []packet.Flit {
	if a.uF+n > len(a.flits) {
		panic("router: arena flit overflow (ArenaSize/BindArena mismatch)")
	}
	s := a.flits[a.uF : a.uF+n : a.uF+n]
	a.uF += n
	return s
}

func (a *Arena) creditSlots(n int) []int {
	if a.uC+n > len(a.credits) {
		panic("router: arena credit overflow (ArenaSize/BindArena mismatch)")
	}
	s := a.credits[a.uC : a.uC+n : a.uC+n]
	a.uC += n
	return s
}

func (a *Arena) ownerSlots(n int) []*packet.Packet {
	if a.uO+n > len(a.owners) {
		panic("router: arena owner overflow (ArenaSize/BindArena mismatch)")
	}
	s := a.owners[a.uO : a.uO+n : a.uO+n]
	a.uO += n
	return s
}

func (a *Arena) reqSlots(n int) []requester {
	if a.uR+n > len(a.reqs) {
		panic("router: arena requester overflow (ArenaSize/BindArena mismatch)")
	}
	s := a.reqs[a.uR : a.uR : a.uR+n]
	a.uR += n
	return s
}

func (a *Arena) vcSlots(n int) []vcState {
	if a.uV+n > len(a.vcs) {
		panic("router: arena vcState overflow (ArenaSize/BindArena mismatch)")
	}
	s := a.vcs[a.uV : a.uV+n : a.uV+n]
	a.uV += n
	return s
}

func (a *Arena) boolSlots(n int) []bool {
	if a.uB+n > len(a.bools) {
		panic("router: arena bool overflow (ArenaSize/BindArena mismatch)")
	}
	s := a.bools[a.uB : a.uB+n : a.uB+n]
	a.uB += n
	return s
}

// ArenaSize implements the sizing half of arena binding for a router: it
// accumulates the router's hot-state requirements, including the
// consumer-side event regions of its input flit wires and output credit
// wires (the credit protocol bounds both by the granted buffer depth).
func (r *Router) ArenaSize(s *ArenaSizer) {
	nvc := packet.NumClasses * r.cfg.VCs
	s.VCs += len(r.in) * nvc
	s.Flits += len(r.in) * nvc * r.cfg.BufFlits
	for i := range r.in {
		if r.in[i].ch != nil {
			s.FlitEv += nvc * r.cfg.BufFlits
		}
	}
	s.Bools += len(r.in)
	for o := range r.out {
		op := &r.out[o]
		if op.ch == nil {
			continue
		}
		s.Credits += nvc
		s.Owners += nvc
		s.Reqs += len(r.in) * nvc
		s.CredEv += nvc * op.initial
	}
}

// BindArena implements the binding half: the router's hot slices are
// re-carved from a and their current contents copied over, making the
// struct a view over arena slots. id must be the dense component ID issued
// by the topo allocator for this bind. Binding happens at network
// registration, before the first Step.
func (r *Router) BindArena(a *Arena, id int32) {
	a.claim(id)
	nvc := packet.NumClasses * r.cfg.VCs
	for i := range r.in {
		ip := &r.in[i]
		vcs := a.vcSlots(nvc)
		copy(vcs, ip.vcs)
		for v := range vcs {
			buf := a.flitSlots(r.cfg.BufFlits)
			copy(buf, vcs[v].buf)
			vcs[v].buf = buf
		}
		ip.vcs = vcs
		if ip.ch != nil {
			ip.ch.Flits.BindEvents(&a.flitEv, nvc*r.cfg.BufFlits)
		}
	}
	inUsed := a.boolSlots(len(r.in))
	copy(inUsed, r.inUsed)
	r.inUsed = inUsed
	for o := range r.out {
		op := &r.out[o]
		if op.ch == nil {
			continue
		}
		credits := a.creditSlots(nvc)
		copy(credits, op.credits)
		op.credits = credits
		owner := a.ownerSlots(nvc)
		copy(owner, op.owner)
		op.owner = owner
		reqs := a.reqSlots(len(r.in) * nvc)
		reqs = append(reqs, op.reqs...)
		op.reqs = reqs
		a.credEv.Bind(op.ch.Credits, nvc*op.initial)
	}
}

// ArenaSize implements the sizing half of arena binding for an iface: the
// ejection rings, credit counters, and the consumer-side event regions of
// its ejection flit wires and injection credit wires.
func (f *Iface) ArenaSize(s *ArenaSizer) {
	nvc := packet.NumClasses * f.cfg.VCs
	s.Flits += nvc * f.cfg.BufFlits
	s.Credits += 2 * nvc // credits + initCred
	for c := 0; c < packet.NumClasses; c++ {
		if ch := f.inCh[c]; ch != nil && (c == 0 || ch != f.inCh[c-1]) {
			s.FlitEv += f.sharedClasses(f.inCh[:], ch) * f.cfg.VCs * f.cfg.BufFlits
		}
		if ch := f.outCh[c]; ch != nil && (c == 0 || ch != f.outCh[c-1]) {
			s.CredEv += f.grantFor(ch)
		}
	}
}

// sharedClasses counts how many classes route over ch (1 for per-class
// channels, NumClasses for a shared one).
func (f *Iface) sharedClasses(chs []*Channel, ch *Channel) int {
	n := 0
	for _, c := range chs {
		if c == ch {
			n++
		}
	}
	return n
}

// grantFor sums the initial credit grant over the classes injected on ch —
// the bound on credit events in flight back to the iface on that channel.
func (f *Iface) grantFor(ch *Channel) int {
	total := 0
	for c := 0; c < packet.NumClasses; c++ {
		if f.outCh[c] != ch {
			continue
		}
		base := c * f.cfg.VCs
		for v := 0; v < f.cfg.VCs; v++ {
			total += f.initCred[base+v]
		}
	}
	return total
}

// BindArena implements the binding half for an iface (see Router.BindArena).
func (f *Iface) BindArena(a *Arena, id int32) {
	a.claim(id)
	nvc := packet.NumClasses * f.cfg.VCs
	for i := range f.eject {
		buf := a.flitSlots(f.cfg.BufFlits)
		n := copy(buf, f.eject[i].q)
		f.eject[i].q = buf[:n]
	}
	credits := a.creditSlots(nvc)
	copy(credits, f.credits)
	f.credits = credits
	initCred := a.creditSlots(nvc)
	copy(initCred, f.initCred)
	f.initCred = initCred
	for c := 0; c < packet.NumClasses; c++ {
		if ch := f.inCh[c]; ch != nil && (c == 0 || ch != f.inCh[c-1]) {
			ch.Flits.BindEvents(&a.flitEv, f.sharedClasses(f.inCh[:], ch)*f.cfg.VCs*f.cfg.BufFlits)
		}
		if ch := f.outCh[c]; ch != nil && (c == 0 || ch != f.outCh[c-1]) {
			a.credEv.Bind(ch.Credits, f.grantFor(ch))
		}
	}
}
