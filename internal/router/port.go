package router

import (
	"nifdy/internal/packet"
	"nifdy/internal/sim"
)

// Port is the boundary a NIC drives: the fabric-facing side of a node's
// network attachment. The flit-accurate fabrics implement it with *Iface
// (serialization slots, ejection VC buffers, credits); the flow-level fabric
// in internal/flow implements it packet-natively (whole packets enter and
// leave the bandwidth-sharing model, with serialization modeled as time
// arithmetic). The NIC protocol layer — admission control, OPT, dialogs,
// windows, acks — is written against this interface only, so it runs exactly
// the same state machine over either fidelity.
//
// The contract mirrors Iface's:
//
//   - Pump drains fabric-side work (credits, arrivals, pending hand-offs)
//     and reports whether any state changed; NICs call it first each Tick.
//   - CanAccept/StartSend inject one whole packet per class at a time;
//     StartSend panics if the class slot is busy.
//   - Deliver pops the next fully arrived packet satisfying pred (nil
//     accepts anything); unpulled packets keep exerting backpressure into
//     the fabric.
//   - Activity is the quiescence latch shared by the port and its NIC; the
//     fabric wakes it on arrivals, credit/space returns, and hand-offs.
//   - NextArrivalAt/BlockedBound are the sleep bounds a stuck or quiescent
//     NIC may park until; the fabric re-arms the Activity for any event
//     that lands earlier.
type Port interface {
	Pump(now sim.Cycle) bool
	CanAccept(c packet.Class) bool
	StartSend(now sim.Cycle, p *packet.Packet)
	Sending(c packet.Class) *packet.Packet
	Deliver(now sim.Cycle, pred func(*packet.Packet) bool) (*packet.Packet, bool)
	PendingFlits() int
	Quiet() bool
	Activity() *sim.Activity
	NextArrivalAt() sim.Cycle
	BlockedBound(now sim.Cycle) sim.Cycle
	Stats() (injected, delivered, dropped int64)
}

// Iface is the flit-accurate Port implementation.
var _ Port = (*Iface)(nil)
