// Package radix implements the communication phases of the radix sort of
// [Dus94] used in the paper's §4.5.
//
// Scan: a prefix sum across processors for every bucket of the radix. With
// an 8-bit radix there are 256 bucket counts; packed into 6-word packets
// they form a K-packet pipeline along the processor line: processor i
// receives partial sums from i-1, adds its own counts, and forwards to i+1.
// The paper's key observation: without artificial delays between
// consecutive sends, an upstream processor can swamp its successor — the
// receiver never gets a chance to send and the whole scan serializes.
// NIFDY's one-outstanding-packet protocol imposes exactly the right pacing
// automatically (Figure 9).
//
// Coalesce: every key is sent to its destination processor as a one-packet
// message to a pseudo-random destination. There is little congestion and no
// ordering requirement, so NIFDY neither helps nor hurts (§4.5).
package radix

import (
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/rng"
	"nifdy/internal/sim"
)

// Config parameterizes the radix-sort phases.
type Config struct {
	// Nodes is the machine size P.
	Nodes int
	// Buckets is 2^radix; zero selects 256 (8-bit radix, §4.5).
	Buckets int
	// Words is the packet size; zero selects 6.
	Words int
	// Delay inserts this many cycles between consecutive scan sends (the
	// "With Delay" variant of Figure 9).
	Delay sim.Cycle
	// KeysPerNode is the coalesce-phase key count per processor; zero
	// selects 128.
	KeysPerNode int
	// Seed drives the coalesce key distribution.
	Seed uint64
}

func (c *Config) defaults() {
	if c.Buckets == 0 {
		c.Buckets = 256
	}
	if c.Words == 0 {
		c.Words = 6
	}
	if c.KeysPerNode == 0 {
		c.KeysPerNode = 128
	}
}

// App builds scan or coalesce programs.
type App struct {
	cfg Config
	ids *packet.IDSource
	// K is the scan pipeline depth in packets.
	K int
	// coalesce bookkeeping
	expect []int
	recvd  []int
	bar    *node.Barrier
}

// New returns a radix app.
func New(cfg Config, ids *packet.IDSource) *App {
	cfg.defaults()
	if ids == nil {
		ids = &packet.IDSource{}
	}
	a := &App{cfg: cfg, ids: ids, bar: node.NewBarrier(cfg.Nodes)}
	countsPerPkt := cfg.Words - 2 // header + bucket-range tag
	a.K = (cfg.Buckets + countsPerPkt - 1) / countsPerPkt
	a.expect = make([]int, cfg.Nodes)
	a.recvd = make([]int, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		r := rng.NewStream(cfg.Seed^0x4AD1, uint64(i))
		for k := 0; k < cfg.KeysPerNode; k++ {
			a.expect[r.Intn(cfg.Nodes)]++
		}
	}
	return a
}

// ScanPackets reports the pipeline depth K.
func (a *App) ScanPackets() int { return a.K }

// ScanProgram returns node n's scan-phase program.
func (a *App) ScanProgram(n int) node.Program {
	cfg := a.cfg
	K := a.K
	return func(p *node.Proc) {
		send := func(j int) {
			pk := &packet.Packet{ID: a.ids.Next(), Src: n, Dst: n + 1,
				Words: cfg.Words, Class: packet.Request, Dialog: packet.NoDialog,
				Meta: packet.Meta{Index: j, Total: K}}
			p.Send(pk)
			if cfg.Delay > 0 {
				p.Consume(cfg.Delay)
			}
		}
		switch {
		case n == 0:
			for j := 0; j < K; j++ {
				send(j)
			}
		case n == cfg.Nodes-1:
			for j := 0; j < K; j++ {
				p.Recv()
			}
		default:
			for j := 0; j < K; j++ {
				p.Recv() // partial sums for packet j from upstream
				send(j)  // add local counts, forward downstream
			}
		}
	}
}

// CoalesceProgram returns node n's coalesce-phase program: one single-packet
// message per key to its destination processor.
func (a *App) CoalesceProgram(n int) node.Program {
	cfg := a.cfg
	return func(p *node.Proc) {
		r := rng.NewStream(cfg.Seed^0x4AD1, uint64(n))
		for k := 0; k < cfg.KeysPerNode; k++ {
			dst := r.Intn(cfg.Nodes)
			if dst == n {
				a.recvd[n]++ // local key, no packet
				continue
			}
			pk := &packet.Packet{ID: a.ids.Next(), Src: n, Dst: dst,
				Words: cfg.Words, Class: packet.Request, Dialog: packet.NoDialog,
				Meta: packet.Meta{Value: uint64(k)}}
			p.Send(pk)
			for p.HasPending() {
				p.Recv()
				a.recvd[n]++
			}
		}
		for a.recvd[n] < a.expect[n] {
			p.Recv()
			a.recvd[n]++
		}
		p.Barrier(a.bar, func(*packet.Packet) { a.recvd[n]++ })
	}
}
