package radix

import (
	"testing"

	"nifdy/internal/core"
	"nifdy/internal/nic"
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/sim"
	"nifdy/internal/topo/fattree"
)

func TestScanPacketCount(t *testing.T) {
	a := New(Config{Nodes: 8, Buckets: 256, Words: 6}, nil)
	// 256 buckets / 4 counts per packet = 64 packets.
	if a.ScanPackets() != 64 {
		t.Fatalf("K = %d", a.ScanPackets())
	}
}

func TestExpectConservation(t *testing.T) {
	a := New(Config{Nodes: 8, KeysPerNode: 100, Seed: 5}, nil)
	total := 0
	for _, e := range a.expect {
		total += e
	}
	if total != 8*100 {
		t.Fatalf("expected keys sum %d", total)
	}
}

func runPhase(t *testing.T, nodes int, program func(a *App, n int) node.Program,
	cfg Config, useNIFDY bool, max sim.Cycle) sim.Cycle {
	t.Helper()
	tree := fattree.New(fattree.Config{Levels: 2, Seed: 7})
	eng := sim.New()
	tree.RegisterRouters(eng)
	var ids packet.IDSource
	cfg.Nodes = nodes
	app := New(cfg, &ids)
	var procs []*node.Proc
	for i := 0; i < nodes; i++ {
		var nc nic.NIC
		if useNIFDY {
			nc = core.New(core.Config{Node: i, IDs: &ids}, tree.Iface(i))
		} else {
			nc = nic.NewBasic(nic.BasicConfig{Node: i, OutBuf: 2, ArrBuf: 2}, tree.Iface(i))
		}
		eng.Register(nc)
		p := node.NewProc(i, nc, node.CM5Costs(), program(app, i))
		eng.Register(p)
		p.Start()
		procs = append(procs, p)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Stop()
		}
	})
	done := func() bool {
		for _, p := range procs {
			if !p.Done() {
				return false
			}
		}
		return true
	}
	if !eng.RunUntil(done, max) {
		t.Fatalf("phase did not complete in %d cycles", max)
	}
	return eng.Now()
}

func TestScanCompletes(t *testing.T) {
	runPhase(t, 16, func(a *App, n int) node.Program { return a.ScanProgram(n) },
		Config{Buckets: 64}, true, 10_000_000)
}

func TestScanWithDelayCompletes(t *testing.T) {
	runPhase(t, 16, func(a *App, n int) node.Program { return a.ScanProgram(n) },
		Config{Buckets: 64, Delay: 60}, false, 10_000_000)
}

func TestDelayHelpsWithoutNIFDY(t *testing.T) {
	// The paper's Figure 9 effect: inserting delays between consecutive
	// sends speeds the scan when there is no NIFDY to pace the pipeline.
	noDelay := runPhase(t, 16, func(a *App, n int) node.Program { return a.ScanProgram(n) },
		Config{Buckets: 128}, false, 30_000_000)
	delay := runPhase(t, 16, func(a *App, n int) node.Program { return a.ScanProgram(n) },
		Config{Buckets: 128, Delay: 60}, false, 30_000_000)
	if delay >= noDelay {
		t.Fatalf("delay (%d) did not beat no-delay (%d) without NIFDY", delay, noDelay)
	}
}

func TestCoalesceCompletes(t *testing.T) {
	runPhase(t, 16, func(a *App, n int) node.Program { return a.CoalesceProgram(n) },
		Config{KeysPerNode: 40, Seed: 3}, true, 10_000_000)
}

func TestCoalesceCompletesWithoutNIFDY(t *testing.T) {
	runPhase(t, 16, func(a *App, n int) node.Program { return a.CoalesceProgram(n) },
		Config{KeysPerNode: 40, Seed: 3}, false, 10_000_000)
}

func TestDefaults(t *testing.T) {
	a := New(Config{Nodes: 4}, nil)
	if a.cfg.Buckets != 256 || a.cfg.Words != 6 || a.cfg.KeysPerNode != 128 {
		t.Fatalf("defaults %+v", a.cfg)
	}
}
