package em3d

import (
	"testing"

	"nifdy/internal/core"
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/sim"
	"nifdy/internal/topo/mesh"
)

func TestGraphGenerationDeterministic(t *testing.T) {
	a := New(Config{Nodes: 16, NNodes: 50, DNodes: 5, LocalP: 50, DistSpan: 3, Seed: 9}, nil)
	b := New(Config{Nodes: 16, NNodes: 50, DNodes: 5, LocalP: 50, DistSpan: 3, Seed: 9}, nil)
	if a.RemoteEdges() != b.RemoteEdges() || a.PacketsPerIteration() != b.PacketsPerIteration() {
		t.Fatal("graph generation not deterministic")
	}
	c := New(Config{Nodes: 16, NNodes: 50, DNodes: 5, LocalP: 50, DistSpan: 3, Seed: 10}, nil)
	if a.RemoteEdges() == c.RemoteEdges() {
		t.Fatal("different seeds produced identical graphs (unlikely)")
	}
}

func TestLocalPControlsVolume(t *testing.T) {
	local := New(Config{Nodes: 16, NNodes: 100, DNodes: 10, LocalP: 80, DistSpan: 5, Seed: 1}, nil)
	remote := New(Config{Nodes: 16, NNodes: 100, DNodes: 10, LocalP: 3, DistSpan: 5, Seed: 1}, nil)
	if remote.RemoteEdges() <= 3*local.RemoteEdges() {
		t.Fatalf("local_p=3 edges (%d) not >> local_p=80 edges (%d)",
			remote.RemoteEdges(), local.RemoteEdges())
	}
	// Expectations: ~20% vs ~97% of 16*100*10 edges.
	total := 16 * 100 * 10
	if got := float64(local.RemoteEdges()) / float64(total); got < 0.15 || got > 0.25 {
		t.Fatalf("local_p=80 remote fraction %.2f", got)
	}
	if got := float64(remote.RemoteEdges()) / float64(total); got < 0.92 {
		t.Fatalf("local_p=3 remote fraction %.2f", got)
	}
}

func TestDistSpanRespected(t *testing.T) {
	a := New(Config{Nodes: 64, NNodes: 50, DNodes: 10, LocalP: 0, DistSpan: 5, Seed: 2}, nil)
	for i, m := range a.sendWords {
		for dst := range m {
			d := (dst - i + 64) % 64
			if d > 5 && d < 59 {
				t.Fatalf("proc %d has neighbor %d outside span 5", i, dst)
			}
		}
	}
}

func TestInOrderNeedsFewerPackets(t *testing.T) {
	g := New(Config{Nodes: 16, NNodes: 100, DNodes: 10, LocalP: 20, DistSpan: 4, Seed: 3}, nil)
	io := New(Config{Nodes: 16, NNodes: 100, DNodes: 10, LocalP: 20, DistSpan: 4, Seed: 3, InOrder: true}, nil)
	if io.PacketsPerIteration() >= g.PacketsPerIteration() {
		t.Fatalf("in-order %d >= generic %d packets/iter",
			io.PacketsPerIteration(), g.PacketsPerIteration())
	}
}

func TestIterationCompletes(t *testing.T) {
	net := mesh.New(mesh.Config{Dims: []int{4, 4}})
	eng := sim.New()
	net.RegisterRouters(eng)
	var ids packet.IDSource
	app := New(Config{Nodes: 16, NNodes: 20, DNodes: 4, LocalP: 50, DistSpan: 3,
		Iters: 2, InOrder: true, Seed: 4}, &ids)
	var procs []*node.Proc
	for i := 0; i < 16; i++ {
		u := core.New(core.Config{Node: i, IDs: &ids}, net.Iface(i))
		eng.Register(u)
		p := node.NewProc(i, u, node.CM5Costs(), app.Program(i))
		eng.Register(p)
		p.Start()
		procs = append(procs, p)
	}
	defer func() {
		for _, p := range procs {
			p.Stop()
		}
	}()
	done := func() bool {
		for _, p := range procs {
			if !p.Done() {
				return false
			}
		}
		return true
	}
	if !eng.RunUntil(done, 20_000_000) {
		t.Fatal("EM3D iterations did not complete")
	}
	// Conservation: every node received exactly its expected volume.
	for i := 0; i < 16; i++ {
		if app.recvd[i] != app.cfg.Iters*app.expect[i] {
			t.Fatalf("node %d received %d, want %d", i, app.recvd[i], app.cfg.Iters*app.expect[i])
		}
	}
}

func TestPresetConfigs(t *testing.T) {
	l := Light(64, 1)
	if l.NNodes != 200 || l.DNodes != 10 || l.LocalP != 80 || l.DistSpan != 5 {
		t.Fatalf("light preset %+v", l)
	}
	h := Heavy(64, 1)
	if h.NNodes != 100 || h.DNodes != 20 || h.LocalP != 3 || h.DistSpan != 20 {
		t.Fatalf("heavy preset %+v", h)
	}
}
