// Package em3d implements the communication kernel of EM3D, the
// three-dimensional electromagnetics benchmark of [CDG+93] used in the
// paper's §4.4. A bipartite graph of E and H nodes is distributed across
// processors; each iteration, every processor pushes one value per remote
// edge to the edge's owner, in 6-word packets, with a global barrier per
// iteration. The graph generator follows the benchmark's parameters:
//
//	n_nodes   — graph nodes per processor
//	d_nodes   — edges (degree) per graph node
//	local_p   — percentage of edges that stay on-processor
//	dist_span — remote edges land within ±dist_span processors
//
// Figure 7 uses (200, 10, 80, 5): mostly-local, light communication.
// Figure 8 uses (100, 20, 3, 20): almost every edge remote, heavy
// communication. Values to the same remote processor are batched into
// multi-packet messages by the message layer, which models the in-order
// delivery payoff exactly as package cshift does.
package em3d

import (
	"nifdy/internal/msg"
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/rng"
)

// Config parameterizes an EM3D run.
type Config struct {
	// Nodes is the machine size P.
	Nodes int
	// NNodes, DNodes, LocalP, DistSpan are the graph parameters above.
	NNodes, DNodes, LocalP, DistSpan int
	// Iters is the number of simulated iterations; zero selects 3.
	Iters int
	// Words is the packet size; zero selects 6.
	Words int
	// InOrder marks the message layer as relying on in-order delivery.
	InOrder bool
	// Bulk lets multi-packet messages request bulk dialogs.
	Bulk bool
	// Seed drives graph generation.
	Seed uint64
}

// Light returns Figure 7's graph parameters ("less communication") for n
// processors.
func Light(n int, seed uint64) Config {
	return Config{Nodes: n, NNodes: 200, DNodes: 10, LocalP: 80, DistSpan: 5, Seed: seed}
}

// Heavy returns Figure 8's parameters ("more communication").
func Heavy(n int, seed uint64) Config {
	return Config{Nodes: n, NNodes: 100, DNodes: 20, LocalP: 3, DistSpan: 20, Seed: seed}
}

func (c *Config) defaults() {
	if c.Iters == 0 {
		c.Iters = 3
	}
	if c.Words == 0 {
		c.Words = 6
	}
}

// App holds the distributed graph's communication schedule.
type App struct {
	cfg   Config
	layer *msg.Layer
	bar   *node.Barrier
	// sendWords[i] maps destination -> value words per iteration.
	sendWords []map[int]int
	// expect[i] is the packets processor i receives per iteration.
	expect []int
	// pktsPerIter[i] is the packets processor i sends per iteration.
	pktsPerIter []int
	recvd       []int
}

// New generates the graph and returns the app.
func New(cfg Config, ids *packet.IDSource) *App {
	cfg.defaults()
	mcfg := msg.Config{Words: cfg.Words, InOrder: cfg.InOrder, BulkThreshold: 3}
	if !cfg.Bulk {
		mcfg.BulkThreshold = -1
	}
	a := &App{cfg: cfg, layer: msg.New(mcfg, ids), bar: node.NewBarrier(cfg.Nodes),
		recvd: make([]int, cfg.Nodes), expect: make([]int, cfg.Nodes),
		pktsPerIter: make([]int, cfg.Nodes)}
	a.sendWords = make([]map[int]int, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		r := rng.NewStream(cfg.Seed^0xE3D, uint64(i))
		m := map[int]int{}
		for gn := 0; gn < cfg.NNodes; gn++ {
			for e := 0; e < cfg.DNodes; e++ {
				if r.Intn(100) < cfg.LocalP {
					continue // local edge: no communication
				}
				off := r.IntRange(1, cfg.DistSpan)
				if r.Bool(0.5) {
					off = -off
				}
				dst := ((i+off)%cfg.Nodes + cfg.Nodes) % cfg.Nodes
				if dst != i {
					m[dst]++
				}
			}
		}
		a.sendWords[i] = m
	}
	for i, m := range a.sendWords {
		// Dense index walk, not a map range: the sums are commutative, but
		// keeping the aggregation order-deterministic costs nothing.
		for dst := 0; dst < cfg.Nodes; dst++ {
			words, ok := m[dst]
			if !ok {
				continue
			}
			n := a.layer.Config().PacketsFor(words)
			a.pktsPerIter[i] += n
			a.expect[dst] += n
		}
	}
	return a
}

func (a *App) payload() int { return a.layer.Config().Payload() }

// RemoteEdges reports the total remote edges (communication volume check).
func (a *App) RemoteEdges() int {
	total := 0
	for _, m := range a.sendWords {
		for dst := 0; dst < a.cfg.Nodes; dst++ {
			total += m[dst]
		}
	}
	return total
}

// PacketsPerIteration reports the machine-wide packets sent each iteration.
func (a *App) PacketsPerIteration() int {
	total := 0
	for _, n := range a.pktsPerIter {
		total += n
	}
	return total
}

// Program returns node n's program: per iteration, push every remote edge
// value grouped by destination, drain arrivals, and join the barrier.
func (a *App) Program(n int) node.Program {
	cfg := a.cfg
	// Deterministic destination order: ascending offset from self.
	var order []int
	for off := 1; off < cfg.Nodes; off++ {
		dst := (n + off) % cfg.Nodes
		if a.sendWords[n][dst] > 0 {
			order = append(order, dst)
		}
	}
	return func(p *node.Proc) {
		count := func(*packet.Packet) { a.recvd[n]++ }
		for it := 0; it < cfg.Iters; it++ {
			for _, dst := range order {
				a.layer.SendBlock(p, dst, a.sendWords[n][dst], count)
			}
			// Absorb this iteration's inbound volume, then synchronize.
			for a.recvd[n] < (it+1)*a.expect[n] {
				p.Recv()
				a.recvd[n]++
			}
			p.Barrier(a.bar, count)
		}
	}
}
