package cshift

import (
	"testing"

	"nifdy/internal/core"
	"nifdy/internal/nic"
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/sim"
	"nifdy/internal/topo/fattree"
)

func TestPacketCountsPerBlock(t *testing.T) {
	inOrder := New(Config{Nodes: 16, BlockWords: 100, Words: 6, InOrder: true}, nil)
	generic := New(Config{Nodes: 16, BlockWords: 100, Words: 6}, nil)
	if inOrder.PacketsPerBlock() != 20 { // 100 / (6-1)
		t.Fatalf("in-order pkts = %d", inOrder.PacketsPerBlock())
	}
	if generic.PacketsPerBlock() != 25 { // 100 / (6-2)
		t.Fatalf("generic pkts = %d", generic.PacketsPerBlock())
	}
	if generic.PacketsPerBlock() <= inOrder.PacketsPerBlock() {
		t.Fatal("in-order delivery must reduce packet count")
	}
}

func TestTotalPackets(t *testing.T) {
	a := New(Config{Nodes: 4, BlockWords: 10, Words: 6, InOrder: true}, nil)
	// 4 nodes, 3 phases, 2 packets per block.
	if a.TotalPackets() != 4*3*2 {
		t.Fatalf("total = %d", a.TotalPackets())
	}
}

// runCShift executes a full run and returns the completion cycle.
func runCShift(t *testing.T, cfg Config, useNIFDY bool, maxCycles sim.Cycle) sim.Cycle {
	t.Helper()
	tree := fattree.New(fattree.Config{Levels: 2, Seed: 3}) // 16 nodes
	eng := sim.New()
	tree.RegisterRouters(eng)
	var ids packet.IDSource
	app := New(cfg, &ids)
	var procs []*node.Proc
	for i := 0; i < 16; i++ {
		var nc nic.NIC
		if useNIFDY {
			nc = core.New(core.Config{Node: i, IDs: &ids, W: 4}, tree.Iface(i))
		} else {
			nc = nic.NewBasic(nic.BasicConfig{Node: i, OutBuf: 4, ArrBuf: 4}, tree.Iface(i))
		}
		eng.Register(nc)
		p := node.NewProc(i, nc, node.CM5Costs(), app.Program(i))
		eng.Register(p)
		p.Start()
		procs = append(procs, p)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Stop()
		}
	})
	done := func() bool {
		for _, p := range procs {
			if !p.Done() {
				return false
			}
		}
		return true
	}
	if !eng.RunUntil(done, maxCycles) {
		t.Fatalf("C-shift did not complete in %d cycles", maxCycles)
	}
	return eng.Now()
}

func TestCompletesWithNIFDY(t *testing.T) {
	cfg := Config{Nodes: 16, BlockWords: 30, InOrder: true, Bulk: true}
	runCShift(t, cfg, true, 10_000_000)
}

func TestCompletesWithBasicNIC(t *testing.T) {
	cfg := Config{Nodes: 16, BlockWords: 30}
	runCShift(t, cfg, false, 10_000_000)
}

func TestCompletesWithBarriers(t *testing.T) {
	cfg := Config{Nodes: 16, BlockWords: 30, Barriers: true}
	runCShift(t, cfg, false, 20_000_000)
}

func TestInOrderFasterThanGeneric(t *testing.T) {
	// Same data volume; the in-order library needs fewer packets and skips
	// the software reorder penalty, so it must finish sooner on NIFDY.
	generic := runCShift(t, Config{Nodes: 16, BlockWords: 60, Bulk: true}, true, 20_000_000)
	inOrder := runCShift(t, Config{Nodes: 16, BlockWords: 60, InOrder: true, Bulk: true}, true, 20_000_000)
	if inOrder >= generic {
		t.Fatalf("in-order (%d) not faster than generic (%d)", inOrder, generic)
	}
}

func TestDefaults(t *testing.T) {
	a := New(Config{Nodes: 4}, nil)
	if a.cfg.BlockWords != 120 || a.cfg.Words != 6 {
		t.Fatalf("defaults: %+v", a.cfg)
	}
}
