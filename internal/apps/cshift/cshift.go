// Package cshift implements the cyclic-shift all-to-all communication
// pattern studied in [BK94] and in the paper's §4.3: P-1 phases, where in
// phase p processor i sends a data block to processor (i+p) mod P. When the
// phases are not separated by barriers, nodes finishing early move on and
// two senders converge on one receiver, which snowballs (Figure 5); Strata's
// fix is optimized barriers, NIFDY's is admission control (Figure 6).
//
// Packetization, bulk-dialog requests, and the in-order delivery payoff
// (§2.2) are handled by the shared software communication layer
// (internal/msg).
package cshift

import (
	"nifdy/internal/msg"
	"nifdy/internal/node"
	"nifdy/internal/packet"
)

// Config parameterizes a C-shift run.
type Config struct {
	// Nodes is the machine size P.
	Nodes int
	// BlockWords is the per-phase data block size in words; zero selects 120.
	BlockWords int
	// Words is the packet size; zero selects 6 (the CMAM/Split-C size, §3).
	Words int
	// Barriers inserts a global barrier between phases (the [BK94] fix).
	Barriers bool
	// InOrder marks the message layer as relying on in-order delivery:
	// bigger payload per packet and no receive-side reorder penalty. Use it
	// with NIFDY or with fabrics that are in-order by construction.
	InOrder bool
	// Bulk lets multi-packet blocks request bulk dialogs.
	Bulk bool
}

func (c *Config) defaults() {
	if c.BlockWords == 0 {
		c.BlockWords = 120
	}
	if c.Words == 0 {
		c.Words = 6
	}
}

// App builds the per-node programs for one run.
type App struct {
	cfg   Config
	layer *msg.Layer
	bar   *node.Barrier
	npkts int
	recvd []int
}

// New returns a C-shift app.
func New(cfg Config, ids *packet.IDSource) *App {
	cfg.defaults()
	mcfg := msg.Config{Words: cfg.Words, InOrder: cfg.InOrder, BulkThreshold: 3}
	if !cfg.Bulk {
		mcfg.BulkThreshold = -1
	}
	a := &App{
		cfg:   cfg,
		layer: msg.New(mcfg, ids),
		bar:   node.NewBarrier(cfg.Nodes),
		recvd: make([]int, cfg.Nodes),
	}
	a.npkts = a.layer.Config().PacketsFor(cfg.BlockWords)
	return a
}

// PacketsPerBlock reports the packets needed per block under this config.
func (a *App) PacketsPerBlock() int { return a.npkts }

// TotalPackets reports the run's total packet count (for throughput math).
func (a *App) TotalPackets() int { return a.cfg.Nodes * (a.cfg.Nodes - 1) * a.npkts }

// Program returns node n's program.
func (a *App) Program(n int) node.Program {
	cfg := a.cfg
	return func(p *node.Proc) {
		expected := (cfg.Nodes - 1) * a.npkts
		count := func(*packet.Packet) { a.recvd[n]++ }
		for ph := 1; ph < cfg.Nodes; ph++ {
			dst := (n + ph) % cfg.Nodes
			a.layer.SendBlock(p, dst, cfg.BlockWords, count)
			if cfg.Barriers {
				p.Barrier(a.bar, count)
			}
		}
		// Final drain: every node must absorb its full inbound volume.
		for a.recvd[n] < expected {
			p.Recv()
			a.recvd[n]++
		}
	}
}
