// Package stats collects and formats experiment measurements: the
// pending-packets-per-receiver time series behind the paper's Figure 5
// heatmap, scalar distributions, and aligned text tables for the harness's
// table/figure output.
package stats

import (
	"encoding/json"
	"fmt"
	"strings"

	"nifdy/internal/nic"
	"nifdy/internal/packet"
	"nifdy/internal/sim"
)

// Pending tracks, per receiver, the number of data packets handed to some
// sender's NIC but not yet accepted by the receiving processor — the
// paper's "pending packets per receiver" congestion signal (Figure 5).
//
// Counts accumulate per engine shard (each NIC's hooks write only its own
// shard's row, so hook calls from concurrently ticking shards never race)
// and are summed at read points. Register it as a Ticker — or, for
// multi-shard engines, install Sample as a step hook — to record periodic
// snapshots; both observe the engine's quiescent between-cycles state, so
// snapshots are identical for any shard count.
type Pending struct {
	counts   [][]int // [shard][receiver]
	nodes    int
	interval sim.Cycle
	samples  [][]int
	times    []sim.Cycle
	act      sim.Activity

	// deltas, when enabled, mirror the hook updates as per-window deltas
	// ([shard][receiver], same race-free row discipline as counts) for the
	// distributed runner: each worker's hooks see only its own nodes'
	// sends/accepts, so workers exchange TakeDeltas batches per window and
	// fold peer activity in with ApplyRemote — after which every worker's
	// summed counts equal the global ones, making Sample/Max/Heatmap output
	// identical in every process.
	deltas [][]int
}

// NewPending returns a tracker for nodes receivers sampling every interval
// cycles (interval <= 0 disables sampling; counts still work).
func NewPending(nodes int, interval sim.Cycle) *Pending {
	p := &Pending{nodes: nodes, interval: interval}
	p.SetShards(1)
	return p
}

// SetShards sizes the per-shard accumulators. Call before handing out hooks
// (existing counts are discarded).
func (p *Pending) SetShards(shards int) {
	if shards < 1 {
		shards = 1
	}
	p.counts = make([][]int, shards)
	for i := range p.counts {
		p.counts[i] = make([]int, p.nodes)
	}
	if p.deltas != nil {
		p.EnableDeltas()
	}
}

// EnableDeltas turns on per-window delta tracking for cross-process merging
// (see the deltas field). Call after SetShards and before handing out hooks.
func (p *Pending) EnableDeltas() {
	p.deltas = make([][]int, len(p.counts))
	for i := range p.deltas {
		p.deltas[i] = make([]int, p.nodes)
	}
}

// TakeDeltas reports each receiver's pending-count change since the last
// call, visiting only nonzero entries, and resets the accumulators. Called
// at window boundaries, when no shard is ticking.
func (p *Pending) TakeDeltas(f func(node, delta int)) {
	for n := 0; n < p.nodes; n++ {
		d := 0
		for si := range p.deltas {
			d += p.deltas[si][n]
			p.deltas[si][n] = 0
		}
		if d != 0 {
			f(n, d)
		}
	}
}

// ApplyRemote folds a peer worker's delta for one receiver into the counts
// (row 0; safe because the call happens at window boundaries, when no shard
// — and so no hook — is running).
func (p *Pending) ApplyRemote(node, delta int) { p.counts[0][node] += delta }

// Hooks returns NIC hooks accumulating into shard 0 — the single-shard
// form of HooksFor.
func (p *Pending) Hooks() nic.Hooks { return p.HooksFor(0) }

// HooksFor returns NIC hooks that maintain the counts in shard sh's
// accumulator. Pass them to every NIC registered in that shard.
func (p *Pending) HooksFor(sh int) nic.Hooks {
	counts := p.counts[sh]
	if p.deltas == nil {
		return nic.Hooks{
			OnSend:   func(pkt *packet.Packet) { counts[pkt.Dst]++ },
			OnAccept: func(pkt *packet.Packet) { counts[pkt.Dst]-- },
		}
	}
	deltas := p.deltas[sh]
	return nic.Hooks{
		OnSend:   func(pkt *packet.Packet) { counts[pkt.Dst]++; deltas[pkt.Dst]++ },
		OnAccept: func(pkt *packet.Packet) { counts[pkt.Dst]--; deltas[pkt.Dst]-- },
	}
}

// Count reports the current pending count for receiver n, summed over
// shards. Only call while the engine is between cycles.
func (p *Pending) Count(n int) int {
	c := 0
	for _, row := range p.counts {
		c += row[n]
	}
	return c
}

// Max reports the largest current pending count. Only call while the engine
// is between cycles.
func (p *Pending) Max() int {
	m := 0
	for n := 0; n < p.nodes; n++ {
		if c := p.Count(n); c > m {
			m = c
		}
	}
	return m
}

// Activity implements sim.IdleTicker: the sampler sleeps between interval
// boundaries (the hooks maintain counts without ticks).
func (p *Pending) Activity() *sim.Activity { return &p.act }

// Tick implements sim.Ticker: snapshot at every interval boundary.
func (p *Pending) Tick(now sim.Cycle) {
	if p.interval <= 0 {
		p.act.Sleep(sim.Never)
		return
	}
	if now%p.interval != 0 {
		p.act.Sleep(now - now%p.interval + p.interval)
		return
	}
	p.snapshot(now)
	p.act.Sleep(now + p.interval)
}

// Sample records a snapshot when now is an interval boundary. Install it
// with Engine.RegisterStepHookClocked(p.Sample, p.Clock()) on multi-shard
// engines: it then runs on the stepping goroutine before any shard ticks,
// summing the per-shard rows at the same pre-tick instant the
// registered-Ticker form samples at. It keeps the clock pointed at the next
// boundary so the engine may fast-forward quiescent spans between samples.
func (p *Pending) Sample(now sim.Cycle) {
	if p.interval <= 0 {
		p.act.Sleep(sim.Never)
		return
	}
	if now%p.interval != 0 {
		p.act.Sleep(now - now%p.interval + p.interval)
		return
	}
	p.snapshot(now)
	p.act.Sleep(now + p.interval)
}

// Clock is the sampler's next-boundary activity, for
// Engine.RegisterStepHookClocked.
func (p *Pending) Clock() *sim.Activity { return &p.act }

//lint:allow(hotalloc) interval sampling off the saturated path: one snapshot per Interval cycles, by design
func (p *Pending) snapshot(now sim.Cycle) {
	snap := make([]int, p.nodes)
	for n := range snap {
		snap[n] = p.Count(n)
	}
	p.samples = append(p.samples, snap)
	p.times = append(p.times, now)
}

// Samples returns the recorded snapshots and their cycle stamps.
func (p *Pending) Samples() ([][]int, []sim.Cycle) { return p.samples, p.times }

// Heatmap renders the samples as ASCII art, one row per receiver, one
// column per sample; darker glyphs mean more pending packets (the paper
// shades from white at 0 to black at >= 20). Long runs are downsampled to
// at most 120 columns, keeping each column's maximum so bursts stay
// visible.
func (p *Pending) Heatmap() string {
	if len(p.samples) == 0 {
		return "(no samples)\n"
	}
	const maxCols = 120
	stride := (len(p.samples) + maxCols - 1) / maxCols
	shades := []byte(" .:-=+*#%@")
	// Shade against the observed peak (at least the paper's 20-packet
	// black point / 4, so quiet runs are not artificially darkened).
	peak := 5
	for _, s := range p.samples {
		for _, v := range s {
			if v > peak {
				peak = v
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "(shade scale: ' '=0 .. '@'=%d pending packets)\n", peak)
	for n := 0; n < p.nodes; n++ {
		fmt.Fprintf(&b, "%3d |", n)
		for c := 0; c < len(p.samples); c += stride {
			v := 0
			for k := c; k < c+stride && k < len(p.samples); k++ {
				if p.samples[k][n] > v {
					v = p.samples[k][n]
				}
			}
			idx := v * (len(shades) - 1) / peak
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dist accumulates a scalar distribution.
type Dist struct {
	n        int64
	sum      float64
	min, max float64
}

// Add records v.
func (d *Dist) Add(v float64) {
	if d.n == 0 || v < d.min {
		d.min = v
	}
	if d.n == 0 || v > d.max {
		d.max = v
	}
	d.n++
	d.sum += v
}

// N reports the sample count.
func (d *Dist) N() int64 { return d.n }

// Mean reports the sample mean (0 when empty).
func (d *Dist) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min and Max report the extremes (0 when empty).
func (d *Dist) Min() float64 { return d.min }

// Max reports the largest sample.
func (d *Dist) Max() float64 { return d.max }

func (d *Dist) String() string {
	return fmt.Sprintf("n=%d mean=%.1f min=%.0f max=%.0f", d.n, d.Mean(), d.min, d.max)
}

// Table is an aligned text table for harness output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Row appends a row; cells are formatted with %v except floats, which use
// one decimal place.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// JSON renders the table as a JSON object with title, headers, and rows —
// for piping harness output into other tools.
func (t *Table) JSON() ([]byte, error) {
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Headers, t.rows})
}
