package stats

import (
	"encoding/json"
	"strings"
	"testing"

	"nifdy/internal/packet"
)

func TestPendingCounts(t *testing.T) {
	p := NewPending(4, 0)
	h := p.Hooks()
	pk := &packet.Packet{Src: 0, Dst: 2}
	h.Send(pk)
	h.Send(pk)
	if p.Count(2) != 2 || p.Max() != 2 {
		t.Fatalf("count %d max %d", p.Count(2), p.Max())
	}
	h.Accept(pk)
	if p.Count(2) != 1 {
		t.Fatalf("count %d after accept", p.Count(2))
	}
}

func TestPendingSampling(t *testing.T) {
	p := NewPending(2, 10)
	h := p.Hooks()
	for now := int64(0); now < 35; now++ {
		if now == 5 {
			h.Send(&packet.Packet{Dst: 1})
		}
		p.Tick(now)
	}
	samples, times := p.Samples()
	if len(samples) != 4 || len(times) != 4 {
		t.Fatalf("%d samples at %v", len(samples), times)
	}
	if samples[0][1] != 0 || samples[1][1] != 1 {
		t.Fatalf("samples: %v", samples)
	}
}

func TestHeatmapShades(t *testing.T) {
	p := NewPending(1, 1)
	h := p.Hooks()
	p.Tick(0)
	for i := 0; i < 25; i++ {
		h.Send(&packet.Packet{Dst: 0})
	}
	p.Tick(1)
	hm := p.Heatmap()
	if !strings.Contains(hm, " ") || !strings.Contains(hm, "@") {
		t.Fatalf("heatmap lacks dynamic range:\n%s", hm)
	}
}

func TestHeatmapEmpty(t *testing.T) {
	p := NewPending(1, 0)
	if !strings.Contains(p.Heatmap(), "no samples") {
		t.Fatal("empty heatmap")
	}
}

func TestDist(t *testing.T) {
	var d Dist
	if d.Mean() != 0 {
		t.Fatal("empty mean")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		d.Add(v)
	}
	if d.N() != 4 || d.Mean() != 2.5 || d.Min() != 1 || d.Max() != 4 {
		t.Fatalf("dist %v", d.String())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.Row("longish-name", 42)
	tb.Row("x", 3.14159)
	s := tb.String()
	if !strings.Contains(s, "== demo ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(s, "longish-name") || !strings.Contains(s, "3.14") {
		t.Fatalf("table:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines:\n%s", len(lines), s)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("demo", "pkts", []BarRow{{"a", 100}, {"b", 50}, {"zero", 0}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	barA := strings.Count(lines[1], "█")
	barB := strings.Count(lines[2], "█")
	barZ := strings.Count(lines[3], "█")
	if barA != 50 || barB != 25 || barZ != 0 {
		t.Fatalf("bars %d %d %d:\n%s", barA, barB, barZ, out)
	}
}

func TestBarChartEmptyAndNegative(t *testing.T) {
	if out := BarChart("", "x", nil); out != "" {
		t.Fatalf("empty chart: %q", out)
	}
	out := BarChart("", "x", []BarRow{{"neg", -5}})
	if strings.Count(out, "█") != 0 {
		t.Fatalf("negative bar drew blocks: %s", out)
	}
}

func TestGroupedBars(t *testing.T) {
	g := NewGroupedBars("fig", "pkts", "none", "NIFDY")
	g.Group("mesh", 50, 100)
	g.Group("tree", 80, 90)
	out := g.String()
	for _, want := range []string{"== fig ==", "mesh", "tree", "none", "NIFDY"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// Global scaling: the 100 bar must be the longest.
	lines := strings.Split(out, "\n")
	longest, li := 0, -1
	for i, l := range lines {
		if c := strings.Count(l, "█"); c > longest {
			longest, li = c, i
		}
	}
	if li < 0 || !strings.Contains(lines[li], "100") {
		t.Fatalf("longest bar not the max value:\n%s", out)
	}
}

func TestGroupedBarsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on series mismatch")
		}
	}()
	NewGroupedBars("x", "", "a", "b").Group("g", 1)
}

func TestTableChart(t *testing.T) {
	tb := NewTable("fig", "net", "none", "NIFDY")
	tb.Row("mesh", 100, 150)
	tb.Row("tree", 200, 210)
	out := tb.Chart("pkts", 0, 1, 2).String()
	for _, want := range []string{"mesh", "tree", "none", "NIFDY", "210"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestParseFloat(t *testing.T) {
	cases := map[string]float64{
		"42": 42, "3.5": 3.5, "-2": -2, "0.25": 0.25, "abc": 0, "": 0,
	}
	for s, want := range cases {
		if got := parseFloat(s); got != want {
			t.Errorf("parseFloat(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestTableJSON(t *testing.T) {
	tb := NewTable("fig", "a", "b")
	tb.Row(1, 2.5)
	out, err := tb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Title != "fig" || len(decoded.Rows) != 1 || decoded.Rows[0][1] != "2.50" {
		t.Fatalf("decoded %+v", decoded)
	}
}
