package stats

import (
	"fmt"
	"strings"
)

// BarRow is one bar of a chart.
type BarRow struct {
	Label string
	Value float64
}

// BarChart renders labeled horizontal bars scaled to the largest value —
// the text equivalent of the paper's bar figures. unit annotates the values.
func BarChart(title, unit string, rows []BarRow) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	maxVal := 0.0
	labelW := 0
	for _, r := range rows {
		if r.Value > maxVal {
			maxVal = r.Value
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	const width = 50
	for _, r := range rows {
		n := 0
		if maxVal > 0 {
			n = int(r.Value/maxVal*width + 0.5)
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s |%s %.4g %s\n", labelW, r.Label, strings.Repeat("█", n), r.Value, unit)
	}
	return b.String()
}

// GroupedBars renders one chart section per group (e.g. per network), each
// with the same series labels — mirroring the paper's grouped bar figures.
type GroupedBars struct {
	Title  string
	Unit   string
	Series []string
	groups []group
}

type group struct {
	name   string
	values []float64
}

// NewGroupedBars returns a chart whose groups each carry len(series) values.
func NewGroupedBars(title, unit string, series ...string) *GroupedBars {
	return &GroupedBars{Title: title, Unit: unit, Series: series}
}

// Group appends a group; values must match the series count.
func (g *GroupedBars) Group(name string, values ...float64) {
	if len(values) != len(g.Series) {
		panic("stats: group value count does not match series")
	}
	g.groups = append(g.groups, group{name, values})
}

// String renders all groups scaled to the global maximum so bars are
// comparable across groups.
func (g *GroupedBars) String() string {
	var b strings.Builder
	if g.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", g.Title)
	}
	maxVal := 0.0
	labelW := 0
	for _, s := range g.Series {
		if len(s) > labelW {
			labelW = len(s)
		}
	}
	for _, gr := range g.groups {
		for _, v := range gr.values {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	const width = 46
	for _, gr := range g.groups {
		fmt.Fprintf(&b, "%s\n", gr.name)
		for i, s := range g.Series {
			n := 0
			if maxVal > 0 {
				n = int(gr.values[i]/maxVal*width + 0.5)
			}
			fmt.Fprintf(&b, "  %-*s |%s %.4g %s\n", labelW, s, strings.Repeat("█", n), gr.values[i], g.Unit)
		}
	}
	return b.String()
}

// Chart converts table rows into grouped bars: labelCol supplies the group
// names and valueCols the series (header names are reused as series
// labels). Cells that do not parse as numbers become zero-length bars.
func (t *Table) Chart(unit string, labelCol int, valueCols ...int) *GroupedBars {
	series := make([]string, len(valueCols))
	for i, c := range valueCols {
		series[i] = t.Headers[c]
	}
	g := NewGroupedBars(t.Title, unit, series...)
	for _, row := range t.rows {
		vals := make([]float64, len(valueCols))
		for i, c := range valueCols {
			if c < len(row) {
				vals[i] = parseFloat(row[c])
			}
		}
		g.Group(row[labelCol], vals...)
	}
	return g
}

// parseFloat is a dependency-free float parser for table cells (decimal
// with optional sign and fraction; anything else yields 0).
func parseFloat(s string) float64 {
	v := 0.0
	i, neg := 0, false
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		neg = s[i] == '-'
		i++
	}
	seen := false
	for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		v = v*10 + float64(s[i]-'0')
		seen = true
	}
	if i < len(s) && s[i] == '.' {
		i++
		scale := 0.1
		for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
			v += float64(s[i]-'0') * scale
			scale /= 10
			seen = true
		}
	}
	if !seen || i != len(s) {
		if !seen {
			return 0
		}
	}
	if neg {
		return -v
	}
	return v
}
