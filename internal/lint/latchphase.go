package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// latchphase: two-phase discipline for latched state.
//
// The engine's order-independence proof (sim/engine.go) rests on latched
// containers — sim.Queue, sim.Reg, link.Wire, and anything else
// implementing sim.Latch — being mutated only through their sanctioned
// Push/Set/Send APIs during the tick phase and flushed only by the engine
// between phases. A direct field write from tick code bypasses the
// double-buffering and makes results depend on tick order; an explicit
// .Flush() call from component code publishes same-cycle writes early,
// which is the same bug in API clothing.
//
// Detection is structural so it holds for future latch types too: a
// "latched type" is any named struct with a Flush() method. Within its
// defining package, its fields may be written only by its own methods and
// by New* constructors; everywhere outside nifdy/internal/sim (the engine),
// calling Flush() explicitly is flagged.
func init() {
	Register(&Rule{
		Name:  "latchphase",
		Doc:   "latched state mutated outside its sanctioned APIs, or Flush() called outside the engine",
		Match: tickPathPackage,
		Run:   runLatchPhase,
	})
}

// isLatchedType reports whether t (after pointer stripping) is a named
// struct type carrying a Flush() method with no parameters or results.
func isLatchedType(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil, false
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != "Flush" {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() == 0 && sig.Results().Len() == 0 {
			return named, true
		}
	}
	return nil, false
}

// latchInterface reports whether t is an interface whose method set is
// exactly {Flush()} — i.e. sim.Latch or a structural equivalent.
func latchInterface(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok || iface.NumMethods() != 1 {
		return false
	}
	m := iface.Method(0)
	sig := m.Type().(*types.Signature)
	return m.Name() == "Flush" && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

func runLatchPhase(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := receiverType(p, fd)
			constructor := strings.HasPrefix(fd.Name.Name, "New")
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						p.checkLatchWrite(lhs, recv, constructor)
					}
				case *ast.IncDecStmt:
					p.checkLatchWrite(n.X, recv, constructor)
				case *ast.CallExpr:
					p.checkFlushCall(n, recv)
				}
				return true
			})
		}
	}
}

// receiverType returns the named type fd is a method of, or nil.
func receiverType(p *Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := p.Pkg.Info.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// checkLatchWrite flags lhs when it denotes (an element of) a field of a
// latched type and the enclosing function is neither a method of that type
// nor a New* constructor.
func (p *Pass) checkLatchWrite(lhs ast.Expr, recv *types.Named, constructor bool) {
	// Unwrap element/deref syntax: w.events[i] = x and *w.reg = x both
	// mutate latched storage through the selector underneath.
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.StarExpr:
			lhs = e.X
			continue
		}
		break
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	base := p.Pkg.Info.TypeOf(sel.X)
	if base == nil {
		return
	}
	named, latched := isLatchedType(base)
	if !latched {
		return
	}
	if recv != nil && origin(recv) == origin(named) {
		return // the type's own methods are the sanctioned mutators
	}
	if constructor {
		return // New* may initialize fields before the first Step
	}
	p.Reportf(sel.Pos(),
		"direct write to latched field %s.%s outside %s's methods: mutate latched state only through its Push/Set/Send APIs",
		types.ExprString(sel.X), sel.Sel.Name, named.Obj().Name())
}

// checkFlushCall flags explicit x.Flush() calls outside the engine package.
func (p *Pass) checkFlushCall(call *ast.CallExpr, recv *types.Named) {
	if p.Pkg.Path == "nifdy/internal/sim" {
		return // the engine and its Flusher are the sanctioned drivers
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Flush" || len(call.Args) != 0 {
		return
	}
	base := p.Pkg.Info.TypeOf(sel.X)
	if base == nil {
		return
	}
	named, latched := isLatchedType(base)
	if !latched && !latchInterface(base) {
		return
	}
	if named != nil && recv != nil && origin(recv) == origin(named) {
		return // e.g. a latch type delegating to an embedded latch
	}
	p.Reportf(call.Pos(),
		"explicit Flush() outside the engine: latches are flushed by sim.Engine between phases; calling Flush from tick code publishes same-cycle writes early")
}

// origin maps an instantiated generic named type back to its declaration,
// so Queue[int] and Queue[string] methods compare equal.
func origin(n *types.Named) *types.Named {
	if n == nil {
		return nil
	}
	return n.Origin()
}
