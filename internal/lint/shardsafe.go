package lint

import (
	"go/ast"
	"go/types"
)

// shardsafe: Tick trees must not reach cross-shard side doors.
//
// The sharded and distributed engines only stay bit-identical to the serial
// one because every cross-shard effect rides the staged link.Wire path: a
// Tick may SendAt into a wire's next-cycle buffer, the barrier flushes, and
// the consumer sees it a cycle later. Everything else that touches another
// shard's state — event injection, fault toggles, remote binding, arena
// carving, registration sweeps — is a boundary or build-time API, sound
// only while the shards are quiescent. Reached from inside a Tick tree,
// those calls race shard goroutines (or desynchronize the dist workers,
// whose boundary APIs act on a different process entirely).
//
// The rule walks the static call graph from every Tick root (shared with
// hotalloc; interface dispatch ends the walk, which is the same boundary
// the runtime shard monitors cover) and flags, in any reached function:
//
//   - calls to the boundary-only entry points (InjectAt, CrossShard,
//     SetRemote, SetFault, Observe, BindArena, BindEvents, ForEach);
//
//   - writes to fields of another component (a named struct with a Tick or
//     BindArena method) from outside that component's own methods — the
//     direct poke that works single-shard and silently diverges sharded.
//     A component's own methods are the sanctioned same-shard coupling.
func init() {
	Register(&Rule{
		Name:  "shardsafe",
		Doc:   "cross-shard side door reachable from a Tick tree (boundary API call or cross-component write)",
		Match: tickPathPackage,
		Run:   runShardSafe,
	})
}

// shardBoundary names the methods that are only sound between cycles, from
// the coordinating goroutine: injection, fault control, remote/arena
// binding, and registration/observation sweeps.
var shardBoundary = map[string]bool{
	"InjectAt":   true,
	"CrossShard": true,
	"SetRemote":  true,
	"SetFault":   true,
	"Observe":    true,
	"BindArena":  true,
	"BindEvents": true,
	"ForEach":    true,
}

func runShardSafe(p *Pass) {
	w := newCallWalk(p.Loader)
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isTickRoot(p, fd) {
				continue
			}
			obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			w.from(obj, func(fn *types.Func, decl *ast.FuncDecl) {
				p.checkShardFunc(fn, decl)
			})
		}
	}
}

// checkShardFunc scans one reached function. Diagnostics name fn (not the
// Tick root), so a shared helper reached from many roots reports once.
func (p *Pass) checkShardFunc(fn *types.Func, decl *ast.FuncDecl) {
	pkg, ok := p.Loader.pkgs[fn.Pkg().Path()]
	if !ok {
		return
	}
	info := pkg.Info

	// The component this function belongs to, if it is a method.
	var recv *types.Named
	if r := fn.Type().(*types.Signature).Recv(); r != nil {
		recv = namedOf(r.Type())
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !shardBoundary[sel.Sel.Name] {
				return true
			}
			callee, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || callee.Type().(*types.Signature).Recv() == nil {
				return true // not a method: an unrelated free function
			}
			p.Reportf(n.Pos(),
				"boundary-only method %s called in %s, which is reachable from a Tick tree: cross-shard effects must ride the staged link.Wire path",
				sel.Sel.Name, fn.FullName())
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				p.checkComponentWrite(info, lhs, recv, fn)
			}
		case *ast.IncDecStmt:
			p.checkComponentWrite(info, n.X, recv, fn)
		}
		return true
	})
}

// checkComponentWrite flags lhs when it writes a field of a component type
// (one with a Tick or BindArena method) and fn is not that component's own
// method.
func (p *Pass) checkComponentWrite(info *types.Info, lhs ast.Expr, recv *types.Named, fn *types.Func) {
	sel, ok := stripElem(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	owner := namedOf(s.Recv())
	if owner == nil || !isComponent(owner) {
		return
	}
	if recv != nil && origin(recv) == origin(owner) {
		return // a component's own methods are the sanctioned mutators
	}
	p.Reportf(sel.Pos(),
		"write to %s.%s outside %s's methods in %s (reachable from a Tick tree): poke components through their own methods or the staged wire path",
		owner.Obj().Name(), sel.Sel.Name, owner.Obj().Name(), fn.FullName())
}

// isComponent reports types that participate in the shard protocol: they
// tick, or they bind arena views.
func isComponent(named *types.Named) bool {
	for _, name := range [...]string{"Tick", "BindArena"} {
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), name)
		if f, ok := obj.(*types.Func); ok {
			sig := f.Type().(*types.Signature)
			if name == "Tick" {
				if sig.Params().Len() != 1 || sig.Results().Len() != 0 {
					continue
				}
				b, ok := sig.Params().At(0).Type().Underlying().(*types.Basic)
				if !ok || b.Kind() != types.Int64 {
					continue
				}
			}
			return true
		}
	}
	return false
}
