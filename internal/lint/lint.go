// Package lint is nifdy's domain-specific static analyzer suite. It makes
// the repository's two load-bearing contracts structural rather than
// aspirational:
//
//   - Determinism: simulation results must be bit-identical across serial
//     and sharded engines and across Go releases, so no map iteration
//     order, wall-clock reading, or ambient randomness may leak into
//     simulation state (rules mapiter, wallclock).
//
//   - Zero allocation: the saturated data path must not allocate in steady
//     state (PR 2's ~5 B/op contract), so allocation constructs inside the
//     Tick/Flush call trees are flagged at their source (rule hotalloc).
//
// Two further rules guard the engine's two-phase discipline (latchphase)
// and the packet free-list's ownership protocol (poolsafe).
//
// The framework is stdlib-only (go/ast, go/parser, go/types, go/importer):
// the module stays dependency-free. Rules register themselves in init and
// are typically ~50 lines; see mapiter.go for the template and DESIGN.md §7
// for the catalog and the policy on //lint:allow suppressions.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Rule is one analyzer: a named check run over a type-checked package.
type Rule struct {
	Name string
	Doc  string
	// Match reports whether the rule applies to a package path; nil means
	// every package. The golden tests bypass Match and call Run directly.
	Match func(pkgPath string) bool
	Run   func(*Pass)
}

// Diagnostic is one finding, addressed by file:line for editors and for
// suppression matching.
type Diagnostic struct {
	Rule    string
	File    string
	Line    int
	Col     int
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Pass is the per-(rule, package) context handed to Rule.Run.
type Pass struct {
	Pkg    *Package
	Fset   *token.FileSet
	Loader *Loader // for cross-package traversal (hotalloc)

	rule  string
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.rule,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// registry holds every registered rule, sorted by name.
var registry []*Rule

// Register adds r to the rule registry. It panics on duplicate or empty
// names: rule names are part of the suppression syntax, so collisions would
// silently change which findings an existing //lint:allow covers.
func Register(r *Rule) {
	if r.Name == "" || r.Run == nil {
		panic("lint: Register with empty name or nil Run")
	}
	for _, old := range registry {
		if old.Name == r.Name {
			panic("lint: duplicate rule " + r.Name)
		}
	}
	registry = append(registry, r)
	sort.Slice(registry, func(i, j int) bool { return registry[i].Name < registry[j].Name })
}

// Rules returns the registered rules, sorted by name.
func Rules() []*Rule {
	out := make([]*Rule, len(registry))
	copy(out, registry)
	return out
}

// RuleByName returns the named rule, or nil.
func RuleByName(name string) *Rule {
	for _, r := range registry {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Run executes rules over pkgs, applies suppressions, and returns the
// surviving diagnostics sorted by position. full marks a whole-module run
// with the complete rule set: only then are stale (unmatched) allows
// reported, since a partial run cannot prove an allow unused.
func Run(l *Loader, pkgs []*Package, rules []*Rule, full bool) []Diagnostic {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, r := range rules {
			if r.Match != nil && !r.Match(pkg.Path) {
				continue
			}
			pass := &Pass{Pkg: pkg, Fset: l.Fset, Loader: l, rule: r.Name, diags: &raw}
			r.Run(pass)
		}
	}

	sup := newSuppressions()
	for _, pkg := range pkgs {
		sup.addPackage(l.Fset, pkg)
	}

	seen := map[Diagnostic]bool{}
	var out []Diagnostic
	for _, d := range raw {
		if seen[d] {
			continue // hotalloc reaches shared callees from many roots
		}
		seen[d] = true
		if sup.suppressed(d.Rule, d.File, d.Line) {
			continue
		}
		out = append(out, d)
	}
	ran := map[string]bool{}
	for _, r := range rules {
		ran[r.Name] = true
	}
	out = append(out, sup.audit(ran, full)...)

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}

// tickPathPackage reports whether a package holds simulation state swept by
// the determinism rules: everything under internal/ except the analyzer
// itself.
func tickPathPackage(path string) bool {
	const prefix = "nifdy/internal/"
	if len(path) < len(prefix) || path[:len(prefix)] != prefix {
		return false
	}
	rest := path[len(prefix):]
	return rest != "lint" && !hasPrefix(rest, "lint/")
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }
