package lint

// The phase-2 rules (codecsync, arenamirror, kindswitch, shardsafe) reason
// about relationships between packages: a codec in internal/dist must mirror
// a struct in internal/packet, a BindArena body in one package carves an
// Arena declared in another, a switch in internal/harness must cover an enum
// from internal/router. Re-deriving those summaries in every rule, for every
// analyzed package, would make a whole-module run quadratic in practice —
// the loader already memoizes type-checking per package, so the analyses
// memoize their derived summaries the same way.
//
// A fact is a per-package summary computed once per (family, package) and
// shared by every rule and every Pass of a run. Facts are plain values
// produced by a pure function of the loaded package; they carry no
// diagnostics (rules report, facts summarize), which is what makes sharing
// them across rules sound.

// factKey names one fact family. Families are package-level vars created by
// newFactKey, so two rules asking for the same family share one computation.
type factKey struct{ name string }

func newFactKey(name string) *factKey { return &factKey{name: name} }

// fact returns the memoized fact of the given family for pkg, computing it
// on first request. compute must depend only on pkg (and packages reachable
// through the loader), never on the requesting rule or pass.
func (l *Loader) fact(key *factKey, pkg *Package, compute func(*Package) any) any {
	if l.facts == nil {
		l.facts = map[*factKey]map[*Package]any{}
	}
	byPkg := l.facts[key]
	if byPkg == nil {
		byPkg = map[*Package]any{}
		l.facts[key] = byPkg
	}
	if v, ok := byPkg[pkg]; ok {
		return v
	}
	// Reserve the slot before computing so a recursive self-request is an
	// immediate nil rather than an infinite regress.
	byPkg[pkg] = nil
	v := compute(pkg)
	byPkg[pkg] = v
	return v
}
