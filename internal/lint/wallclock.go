package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallclock: no ambient nondeterminism outside cmd/.
//
// The paper's reproducibility rests on every random and temporal input
// flowing through internal/rng's per-component streams: "dedicated state
// for each pseudo-random number generator ensures that the same sequence of
// bursts is generated regardless of network and NIFDY configuration" (§3).
// Wall-clock reads, the global math/rand generators, crypto randomness, and
// environment lookups all smuggle host state into a simulation. They are
// legitimate only in cmd/ front-ends (timing a run, stamping a baseline
// file) and in tests/benchmarks, which the loader never parses.
func init() {
	Register(&Rule{
		Name: "wallclock",
		Doc:  "ambient nondeterminism (time.Now, global math/rand, os.Getenv) outside cmd/",
		Match: func(path string) bool {
			// Everything but the cmd/ front-ends and the analyzer itself;
			// the module root package is the public API and is swept too.
			return tickPathPackage(path) || path == "nifdy"
		},
		Run: runWallClock,
	})
}

// bannedImports are packages whose presence alone is a finding: every use
// of them is ambient nondeterminism.
var bannedImports = map[string]string{
	"math/rand":    "use internal/rng per-node streams instead",
	"math/rand/v2": "use internal/rng per-node streams instead",
	"crypto/rand":  "use internal/rng per-node streams instead",
}

// bannedFuncs are individual ambient-state entry points in otherwise
// legitimate packages (time.Duration arithmetic is fine; reading the host
// clock is not).
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now": "", "Since": "", "Until": "", "After": "", "AfterFunc": "",
		"Tick": "", "NewTimer": "", "NewTicker": "", "Sleep": "",
	},
	"os": {
		"Getenv": "", "LookupEnv": "", "Environ": "",
	},
}

func runWallClock(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if hint, ok := bannedImports[path]; ok {
				p.Reportf(imp.Pos(), "import of %s: ambient randomness breaks reproducibility; %s", path, hint)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Pkg.Info.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if names, ok := bannedFuncs[fn.Pkg().Path()]; ok {
				if _, banned := names[fn.Name()]; banned {
					p.Reportf(sel.Pos(),
						"%s.%s reads ambient host state; simulations must take time from sim.Cycle and randomness from internal/rng",
						fn.Pkg().Path(), fn.Name())
				}
			}
			return true
		})
	}
}
