package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// kindswitch: default-less switches over module enums must be exhaustive.
//
// The module's behavioral forks all hang off small iota enums —
// packet.Kind/Class/GrantKind, router.CreditKind, harness.NICKind. A switch
// that dispatches on one and lists only some members silently no-ops for
// the rest, which is exactly how a new NIC kind or credit frame type ships
// half-wired: the build succeeds, the default path does nothing, and the
// miss surfaces as a behavioral diff two layers up. This rule makes member
// lists structural:
//
//   - An enum is a module-local named integer type whose declared constants
//     form a dense value run 0..n-1 with n >= 2 (iota blocks). Types like
//     sim.Cycle (sparse sentinel constants) are naturally excluded.
//
//   - A switch with a tag of enum type and no default clause must cover
//     every member. Coverage is by constant value, so aliases count.
//
// A default clause opts out: it states that the residue is handled (or
// deliberately ignored) in one greppable place. Switches with non-constant
// case expressions are out of scope. Deliberately partial switches carry a
// //lint:allow(kindswitch) naming why the residue is impossible.
func init() {
	Register(&Rule{
		Name:  "kindswitch",
		Doc:   "default-less switch over a module iota enum misses members (silent no-op dispatch)",
		Match: tickPathPackage,
		Run:   runKindSwitch,
	})
}

// enumInfo is the fact computed per package: for each enum type, the member
// names indexed by constant value.
type enumInfo struct {
	members []string
}

var enumFactKey = newFactKey("kindswitch.enums")

func enumsOf(l *Loader, pkg *Package) map[*types.Named]*enumInfo {
	v := l.fact(enumFactKey, pkg, func(pkg *Package) any {
		return computeEnums(pkg)
	})
	m, _ := v.(map[*types.Named]*enumInfo)
	return m
}

func computeEnums(pkg *Package) map[*types.Named]*enumInfo {
	byType := map[*types.Named]map[int64]string{}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		// Untyped constants (NumClasses = 2) have a basic type, not the
		// enum's named type: they are counts, not members.
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Pkg() != pkg.Types {
			continue
		}
		basic, ok := named.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsInteger == 0 {
			continue
		}
		v, ok := constant.Int64Val(c.Val())
		if !ok {
			continue
		}
		m := byType[origin(named)]
		if m == nil {
			m = map[int64]string{}
			byType[origin(named)] = m
		}
		if _, taken := m[v]; !taken { // first name wins; aliases merge
			m[v] = name
		}
	}
	out := map[*types.Named]*enumInfo{}
	for t, m := range byType {
		n := len(m)
		if n < 2 {
			continue
		}
		members := make([]string, n)
		dense := true
		for v, name := range m {
			if v < 0 || v >= int64(n) {
				dense = false
				break
			}
			members[v] = name
		}
		if dense {
			out[t] = &enumInfo{members: members}
		}
	}
	return out
}

func runKindSwitch(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if sw, ok := n.(*ast.SwitchStmt); ok {
				p.checkEnumSwitch(sw)
			}
			return true
		})
	}
}

func (p *Pass) checkEnumSwitch(sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return // condition-list switch, not a dispatch
	}
	named := namedOf(p.Pkg.Info.TypeOf(sw.Tag))
	if named == nil || named.Obj().Pkg() == nil {
		return
	}
	epkg, ok := p.Loader.pkgs[named.Obj().Pkg().Path()]
	if !ok {
		return // not a module-local type
	}
	info := enumsOf(p.Loader, epkg)[named]
	if info == nil {
		return // not an enum
	}
	covered := map[int64]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			return
		}
		if cc.List == nil {
			return // a default clause handles the residue explicitly
		}
		for _, e := range cc.List {
			tv, ok := p.Pkg.Info.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: out of scope
			}
			v, ok := constant.Int64Val(tv.Value)
			if !ok {
				return
			}
			covered[v] = true
		}
	}
	var missing []string
	for v, name := range info.members {
		if !covered[int64(v)] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		p.Reportf(sw.Pos(),
			"switch over %s is not exhaustive: missing %s — add the cases or an explicit default",
			named.Obj().Name(), strings.Join(missing, ", "))
	}
}
