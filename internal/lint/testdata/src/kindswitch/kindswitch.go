// Package kindswitch is the golden fixture for the kindswitch rule: iota
// enums (dense, module-local, typed) and the switch shapes the rule flags,
// exempts, and ignores.
package kindswitch

// kind is a classic iota enum: dense 0..2, typed members.
type kind int

const (
	data kind = iota
	ack
	grant
)

// class has an untyped companion count (numClasses mirrors packet.NumClasses):
// the count is not a member, so covering request/reply is exhaustive.
type class int

const (
	request class = iota
	reply
)

const numClasses = 2

// cycle mirrors sim.Cycle: a single sparse sentinel, not an enum.
type cycle int64

const never cycle = 1<<63 - 1

// aliased has a legacy alias for member 0: coverage is by value, so either
// name counts.
type aliased int

const (
	first aliased = iota
	second
	legacyFirst aliased = 0
)

func full(k kind) int {
	switch k { // all members: clean
	case data:
		return 0
	case ack:
		return 1
	case grant:
		return 2
	}
	return -1
}

func partial(k kind) int {
	switch k { // want `switch over kind is not exhaustive: missing grant`
	case data:
		return 0
	case ack:
		return 1
	}
	return -1
}

func twoMissing(k kind) int {
	switch k { // want `switch over kind is not exhaustive: missing ack, grant`
	case data:
		return 0
	}
	return -1
}

func defaulted(k kind) int {
	switch k { // a default clause handles the residue: clean
	case data:
		return 0
	default:
		return -1
	}
}

func classes(c class) int {
	switch c { // numClasses is untyped, not a member: clean
	case request:
		return 0
	case reply:
		return 1
	}
	return -1
}

func sentinel(c cycle) bool {
	switch c { // cycle is sparse, not an enum: never checked
	case never:
		return true
	}
	return false
}

func aliasCovered(a aliased) int {
	switch a { // legacyFirst == first covers value 0: clean
	case legacyFirst:
		return 0
	case second:
		return 1
	}
	return -1
}

func nonConstant(k kind, probe kind) int {
	switch k { // non-constant case: out of scope
	case probe:
		return 0
	}
	return -1
}

func condition(k kind) int {
	switch { // condition-list switch, no tag: ignored
	case k == data:
		return 0
	}
	return -1
}

func deliberate(k kind) int {
	//lint:allow(kindswitch) grant is filtered out by the caller's admission check
	switch k {
	case data:
		return 0
	case ack:
		return 1
	}
	return -1
}
