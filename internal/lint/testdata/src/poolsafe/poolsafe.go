// Package poolsafe is the golden-diagnostic fixture for the poolsafe rule:
// reading a packet after surrendering it to the pool fires, as does
// truncating a packet slice without zeroing; the sanctioned orderings stay
// silent. It imports the real packet package so the Pool/Packet structural
// matching is exercised against the genuine types.
package poolsafe

import "nifdy/internal/packet"

type unit struct {
	pool *packet.Pool
	free []*packet.Packet
	last int
}

// retire reads p after Put: the seeded use-after-free.
func (u *unit) retire(p *packet.Packet) {
	u.last = p.Dst
	u.pool.Put(p)
	u.last += p.Src // want `use of p after Pool\.Put\(p\)`
}

// retireFixed reads everything it needs before surrendering p.
func (u *unit) retireFixed(p *packet.Packet) {
	u.last = p.Dst + p.Src
	u.pool.Put(p)
}

// recycle reassigns p from the pool: the surrendered reference is gone, so
// later uses touch the fresh packet.
func (u *unit) recycle(p *packet.Packet) int {
	u.pool.Put(p)
	p = u.pool.Get()
	return p.Dst
}

// land mirrors the flow fabric's arrival path: the destination census must
// read the packet's class before surrendering it to the pool, not after.
func (u *unit) land(p *packet.Packet) {
	u.pool.Put(p)
	u.last = int(p.Class) // want `use of p after Pool\.Put\(p\)`
}

// drainAll truncates the free list without zeroing the vacated slots.
func (u *unit) drainAll() {
	u.free = u.free[:0] // want `truncating packet slice u\.free without zeroing`
}

// drainZeroed nils the tail before truncating: dead packets stay
// collectable and the pool recycle audit sees no phantom references.
func (u *unit) drainZeroed(n int) {
	for i := n; i < len(u.free); i++ {
		u.free[i] = nil
	}
	u.free = u.free[:n]
}
