// Package shardsafe is the golden fixture for the shardsafe rule: Tick
// trees reaching boundary-only APIs and poking other components' fields,
// against the sanctioned staged-wire and own-method paths.
package shardsafe

// wire is the staged cross-shard path stand-in (link.Wire): SendAt stages
// for the next cycle; InjectAt/SetFault act immediately and are boundary-
// only.
type wire struct{ cur, next []int }

func (w *wire) Flush() { w.cur, w.next = w.next, w.cur[:0] }

func (w *wire) SendAt(v int) { w.next = append(w.next, v) }

func (w *wire) InjectAt(v int) { w.cur = append(w.cur, v) }

func (w *wire) SetFault(on bool) {}

// peer is a component on (potentially) another shard: it has a Tick method.
type peer struct {
	credits []int
	w       *wire
}

func (pr *peer) Tick(now int64) {
	if len(pr.credits) > 0 {
		pr.credits[0]++ // own method: the sanctioned mutator
	}
}

// node's Tick tree carries the violations, one level below the root so the
// walk (not just the root scan) is exercised.
type node struct {
	other *peer
	w     *wire
}

func (n *node) Tick(now int64) {
	n.helper(now)
	n.drain()
	n.w.SendAt(1) // staged path: clean
}

func (n *node) helper(now int64) {
	n.other.credits[0] = 0 // want `write to peer\.credits outside peer's methods`
	n.w.InjectAt(3)        // want `boundary-only method InjectAt`
	n.w.SetFault(true)     // want `boundary-only method SetFault`
}

// drain carries a reasoned allow: the mutation test deletes the allow line
// and expects the InjectAt diagnostic to fire.
func (n *node) drain() {
	//lint:allow(shardsafe) drain runs only at the window boundary, under the barrier, on the owning shard
	n.w.InjectAt(9)
}

// Build-time code may call boundary APIs and initialize components freely:
// it is not reachable from any Tick root.
func Build(n *node) {
	n.w.InjectAt(0)
	n.other.credits = make([]int, 4)
	n.other.w = n.w
}

// setFault is a free function that happens to share a boundary name: calls
// to it are not method calls and are not flagged.
func setFault(on bool) {}

type toggler struct{ armed bool }

func (t *toggler) Tick(now int64) {
	setFault(t.armed) // free function, not a boundary method: clean
}
