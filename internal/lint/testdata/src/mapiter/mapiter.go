// Package mapiter is the golden-diagnostic fixture for the mapiter rule:
// seeded map ranges must fire, the sanctioned idioms must stay silent.
package mapiter

import "sort"

// Sum iterates a map directly: the seeded violation.
func Sum(m map[int]int) int {
	total := 0
	for _, v := range m { // want `range over map m: iteration order is nondeterministic`
		total += v
	}
	return total
}

// SumField shows the violation through a struct field.
type stats struct{ counts map[string]int }

func (s *stats) total() int {
	n := 0
	for k := range s.counts { // want `range over map s\.counts`
		n += len(k)
	}
	return n
}

// SumSorted is the sorted-keys fixed idiom: the key-collection range is an
// audited exception, the value walk ranges a slice and stays silent.
func SumSorted(m map[int]int) int {
	keys := make([]int, 0, len(m))
	//lint:allow(mapiter) key-collection for sorting; the sorted result is independent of iteration order
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	total := 0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// SumDense is the dense-index fixed idiom: lookups are deterministic.
func SumDense(m map[int]int, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += m[i]
	}
	return total
}

// fabric mirrors the flow engine's rate pass: keying active flows by a map
// instead of a dense slice makes the solve order — and therefore every
// drain timestamp — nondeterministic.
type fabric struct{ rates map[int32]int64 }

func (f *fabric) solveRates(share int64) {
	for id := range f.rates { // want `range over map f\.rates`
		f.rates[id] = share
	}
}

// Slices and channels range deterministically: silent.
func SumSlice(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}
