// Package codecsync is the golden fixture for the codecsync rule: encode/
// decode pairs over stand-in frame structs, mirroring internal/dist/codec.go.
// The enc/dec cursor types appear on one side each, so pair discovery must
// intersect down to the payload struct.
package codecsync

// enc is the append-only encode cursor (stand-in for dist's enc).
type enc struct{ buf []byte }

func (e *enc) u64(v uint64) { e.buf = append(e.buf, byte(v)) }

// dec is the consuming decode cursor (stand-in for dist's dec).
type dec struct {
	buf []byte
	off int
}

func (d *dec) u64() uint64 {
	v := uint64(d.buf[d.off])
	d.off++
	return v
}

// meta mirrors packet.Meta: a named sub-struct whose leaves the codec must
// carry, either field by field or by handing &m.Meta to a sub-codec.
type meta struct {
	ID  uint64
	Tag uint64
}

func encodeMeta(e *enc, mt *meta) {
	e.u64(mt.ID)
	e.u64(mt.Tag)
}

func decodeMeta(d *dec, mt *meta) {
	mt.ID = d.u64()
	mt.Tag = d.u64()
}

// goodMsg is fully carried: direct fields plus a sub-codec for Meta.
// The mutation test deletes single lines from this pair and expects the
// rule to name the dropped field.
type goodMsg struct {
	A    uint64
	B    uint64
	Meta meta
}

func encodeGoodMsg(e *enc, m *goodMsg) {
	e.u64(m.A)
	e.u64(m.B)
	encodeMeta(e, &m.Meta)
}

func decodeGoodMsg(d *dec, m *goodMsg) {
	m.A = d.u64()
	m.B = d.u64()
	decodeMeta(d, &m.Meta)
}

// skewMsg drifted: the encoder dropped Y, the decoder reads X off the wire
// but never stores it.
type skewMsg struct {
	X uint64
	Y uint64
}

func encodeSkewMsg(e *enc, m *skewMsg) { // want `field skewMsg\.Y is never read in encodeSkewMsg`
	e.u64(m.X)
	e.u64(0)
}

func decodeSkewMsg(d *dec, m *skewMsg) { // want `field skewMsg\.X is never written in decodeSkewMsg`
	_ = d.u64()
	m.Y = d.u64()
}

// partialMeta carries the sub-struct field by field and dropped one leaf:
// reading m.Meta.ID must cover only that leaf, not all of Meta.
type partialMeta struct {
	Meta meta
}

func encodePartialMeta(e *enc, m *partialMeta) { // want `field partialMeta\.Meta\.Tag is never read in encodePartialMeta`
	e.u64(m.Meta.ID)
}

func decodePartialMeta(d *dec, m *partialMeta) { // want `field partialMeta\.Meta\.Tag is never written in decodePartialMeta`
	m.Meta.ID = d.u64()
}

// event mirrors dist's section element structs (flitEvent, creditEvent):
// carried through range variables, indexed element pointers, and composite
// literals.
type event struct {
	Slot uint64
	Val  uint64
}

// frame is the clean section pair: length prefix, element pointer loop on
// encode, keyed composite literal on decode.
type frame struct {
	Seq    uint64
	Events []event
}

func encodeFrame(e *enc, f *frame) {
	e.u64(f.Seq)
	e.u64(uint64(len(f.Events)))
	for i := range f.Events {
		ev := &f.Events[i]
		e.u64(ev.Slot)
		e.u64(ev.Val)
	}
}

func decodeFrame(d *dec, f *frame) {
	f.Seq = d.u64()
	n := int(d.u64())
	f.Events = f.Events[:0]
	for ; n > 0; n-- {
		f.Events = append(f.Events, event{Slot: d.u64(), Val: d.u64()})
	}
}

// tick is the drifted section element: the encoder dropped Code, the decoder
// never reconstructs At.
type tick struct {
	At   uint64
	Code uint64
}

type journal struct {
	Ticks []tick
}

func encodeJournal(e *enc, j *journal) { // want `section field tick\.Code is never read in encodeJournal`
	e.u64(uint64(len(j.Ticks)))
	for i := range j.Ticks {
		e.u64(j.Ticks[i].At)
	}
}

func decodeJournal(d *dec, j *journal) { // want `section field tick\.At is never written in decodeJournal`
	n := int(d.u64())
	j.Ticks = j.Ticks[:0]
	for ; n > 0; n-- {
		j.Ticks = append(j.Ticks, tick{Code: d.u64()})
	}
}

// half has an encoder but no decoder: no pair, no checking — one-sided
// helpers (e.g. debug dumps) are not codecs.
type half struct {
	Ignored uint64
}

func encodeHalf(e *enc, h *half) {
	e.u64(0)
}
