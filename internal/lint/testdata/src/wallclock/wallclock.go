// Package wallclock is the golden-diagnostic fixture for the wallclock
// rule: ambient host state must fire, pure time arithmetic must not.
package wallclock

import (
	"math/rand" // want `import of math/rand: ambient randomness breaks reproducibility`
	"os"        // the import itself is fine; Getenv below is not
	"time"      // the import itself is fine; Now below is not
)

// Stamp reads the host clock: the seeded violation.
func Stamp() int64 {
	return time.Now().Unix() // want `time\.Now reads ambient host state`
}

// Elapsed measures against the host clock: also banned.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads ambient host state`
}

// Draw uses the global math/rand generator; the import line carries the
// finding, so this body adds none.
func Draw() int { return rand.Int() }

// Knob reads the environment: host state that silently forks behaviour.
func Knob() string {
	return os.Getenv("NIFDY_KNOB") // want `os\.Getenv reads ambient host state`
}

// SolveStamp stamps a flow-solver pass with the host clock: drain bounds
// must come from the simulated clock, never the wall.
func SolveStamp() int64 {
	return time.Now().UnixNano() // want `time\.Now reads ambient host state`
}

// Timeout is the fixed idiom: time.Duration arithmetic never reads the
// clock, and deterministic seeds come from configuration, not the host.
const Timeout = 5 * time.Second

func Deadline(now int64) int64 { return now + int64(Timeout) }
