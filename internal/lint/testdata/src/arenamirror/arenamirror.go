// Package arenamirror is the golden fixture for the arenamirror rule: a
// stand-in shard arena (sizer, constructor, carve methods, an event region
// bound by direct field use) plus components whose ArenaSize/BindArena walks
// mirror, drop a field on one side, or diverge in order. Mirrors
// internal/router/arena.go.
package arenamirror

// events stands in for link.EventArena: sized via Grow in the constructor,
// bound via direct field use in BindArena.
type events struct{ slots []int }

func (e *events) Grow(n int) { e.slots = append(e.slots, make([]int, n)...) }
func (e *events) Bind(n int) {}

// sizer accumulates slot requirements (stand-in for router.ArenaSizer).
type sizer struct {
	Flits int
	Creds int
	Bools int
	Ev    int
}

// arena is the flat backing store (stand-in for router.Arena).
type arena struct {
	flits []uint64
	creds []int
	bools []bool
	ev    events

	uF, uC, uB int
	nextID     int32
}

// newArena is the allocation half: keyed make elements and the Grow call
// define the arena-field -> sizer-field mapping the rule mirrors against.
func newArena(s sizer) *arena {
	a := &arena{
		flits: make([]uint64, s.Flits),
		creds: make([]int, s.Creds),
		bools: make([]bool, s.Bools),
	}
	a.ev.Grow(s.Ev)
	return a
}

// claim touches only unmapped protocol state: not a carve method.
func (a *arena) claim(id int32) {
	if id != a.nextID {
		panic("bind out of order")
	}
	a.nextID++
}

func (a *arena) flitSlots(n int) []uint64 {
	s := a.flits[a.uF : a.uF+n : a.uF+n]
	a.uF += n
	return s
}

func (a *arena) credSlots(n int) []int {
	s := a.creds[a.uC : a.uC+n : a.uC+n]
	a.uC += n
	return s
}

func (a *arena) boolSlots(n int) []bool {
	s := a.bools[a.uB : a.uB+n : a.uB+n]
	a.uB += n
	return s
}

// mirrored sizes and carves the same fields in the same order: clean.
// The mutation test deletes one carve line from this pair and expects the
// rule to name the orphaned sizer field.
type mirrored struct {
	buf   []uint64
	creds []int
	used  []bool
	ports int
}

func (m *mirrored) ArenaSize(s *sizer) {
	s.Flits += m.ports * 4
	s.Creds += m.ports
	s.Ev += m.ports
	s.Bools += m.ports
}

func (m *mirrored) BindArena(a *arena, id int32) {
	a.claim(id)
	m.buf = a.flitSlots(m.ports * 4)
	m.creds = a.credSlots(m.ports)
	a.ev.Bind(m.ports)
	m.used = a.boolSlots(m.ports)
}

// leaky sizes Bools but never carves it: dead slots at the end of the bools
// array (or a forgotten bind).
type leaky struct {
	buf []uint64
	n   int
}

func (l *leaky) ArenaSize(s *sizer) {
	s.Flits += l.n
	s.Bools += l.n
}

func (l *leaky) BindArena(a *arena, id int32) { // want `sizes Bools but BindArena never carves it`
	a.claim(id)
	l.buf = a.flitSlots(l.n)
}

// hoarder carves Bools without sizing it: the carve overflows the array at
// runtime once a neighbor component binds after it.
type hoarder struct {
	creds []int
	used  []bool
	n     int
}

func (h *hoarder) ArenaSize(s *sizer) {
	s.Creds += h.n
}

func (h *hoarder) BindArena(a *arena, id int32) {
	a.claim(id)
	h.creds = a.credSlots(h.n)
	h.used = a.boolSlots(h.n) // want `carves Bools but ArenaSize never sizes it`
}

// twisted sizes Flits before Creds but carves them the other way around:
// both walks must read as the same loop.
type twisted struct {
	buf   []uint64
	creds []int
	n     int
}

func (t *twisted) ArenaSize(s *sizer) {
	s.Flits += t.n
	s.Creds += t.n
}

func (t *twisted) BindArena(a *arena, id int32) { // want `carves Creds before Flits but ArenaSize sizes Flits first`
	a.claim(id)
	t.creds = a.credSlots(t.n)
	t.buf = a.flitSlots(t.n)
}

// sizeOnly has no BindArena: one-sided types (sizing helpers, embedded
// protocol plumbing) are not checked.
type sizeOnly struct{ n int }

func (s1 *sizeOnly) ArenaSize(s *sizer) { s.Flits += s1.n }
