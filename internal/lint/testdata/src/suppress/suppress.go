// Package suppress exercises the allow-audit diagnostics: a reasonless
// allow and a stale allow are themselves findings on a full run, while a
// consumed, reasoned allow stays silent.
package suppress

// Sum keeps its map range deliberately; the allow below is legitimate and
// consumed, so it must NOT be reported stale.
func Sum(m map[int]int) int {
	total := 0
	//lint:allow(mapiter) commutative integer sum: iteration order cannot change the result
	for _, v := range m {
		total += v
	}
	return total
}

// Bare carries an allow with no reason: always reported, even though the
// allow still suppresses the map-range finding underneath it.
func Bare(m map[int]int) int {
	n := 0
	//lint:allow(mapiter)
	for range m {
		n++
	}
	return n
}

// Stale allows a rule that finds nothing here: reported only on full runs.
//
//lint:allow(wallclock) stale on purpose: nothing in this function reads the clock
func Stale() int { return 42 }
