// Package arena is the golden-diagnostic fixture for the arena rule:
// arena-view state written outside the view's own methods fires, as does a
// literal dense ID at a BindArena or MarkID call site; the view's own
// methods, constructors, and allocator-issued IDs stay silent.
package arena

// arenaStore stands in for router.Arena.
type arenaStore struct {
	slots []int
	next  int32
}

// view is arena-shaped: a named struct with a BindArena(x, y) method. Its
// fields may be written only by its own methods and New* constructors.
type view struct {
	credits []int
	cursor  int
}

// NewView may initialize fields before binding.
func NewView(n int) *view {
	v := &view{}
	v.credits = make([]int, n)
	return v
}

// BindArena and Advance are the view's own methods: sanctioned mutators.
func (v *view) BindArena(a *arenaStore, id int32) {
	if id != a.next {
		panic("out of order")
	}
	a.next++
	v.credits = a.slots[:len(v.credits)]
}

func (v *view) Advance() { v.cursor++ }

// ids stands in for the topo allocator.
type ids struct{ next int32 }

func (i *ids) Next() int32 {
	id := i.next
	i.next++
	return id
}

// flusher stands in for sim.Flusher's dense-ID marking.
type flusher struct{ dirty []int32 }

func (f *flusher) MarkID(id int32) { f.dirty = append(f.dirty, id) }

// holder drives a view from outside and demonstrates every violation shape.
type holder struct {
	v  *view
	fl *flusher
	id int32
}

func (h *holder) Tick(now int64) {
	h.v.Advance()         // the sanctioned API: silent
	h.v.cursor = 0        // want `direct write to arena-view field h\.v\.cursor outside view's methods`
	h.v.credits[0] = 1    // want `direct write to arena-view field h\.v\.credits outside view's methods`
	h.v.cursor++          // want `direct write to arena-view field h\.v\.cursor outside view's methods`
	h.fl.MarkID(h.id)     // allocator-issued ID: silent
	h.fl.MarkID(3)        // want `literal dense ID passed to MarkID`
	h.fl.MarkID(int32(4)) // want `literal dense ID passed to MarkID`
}

func bindAll(a *arenaStore, ids *ids, views []*view) {
	for _, v := range views {
		v.BindArena(a, ids.Next()) // allocator-issued ID: silent
	}
	views[0].BindArena(a, 0) // want `literal dense ID passed to BindArena`
}
