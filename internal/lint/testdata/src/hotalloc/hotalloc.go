// Package hotalloc is the golden-diagnostic fixture for the hotalloc rule:
// every banned allocation construct appears once in the Tick/Flush call
// trees, and the sanctioned escapes (panic arguments, audited allows,
// functions the roots never reach) stay silent.
package hotalloc

// Cycle mirrors sim.Cycle (an int64 alias) so the fixture is self-contained.
type Cycle = int64

// Event is the payload type the literal and boxing findings are seeded on.
type Event struct{ at Cycle }

// Comp is a component whose Tick tree carries one of every banned construct.
type Comp struct {
	events []Event
	buf    []int
	seen   map[int]bool
	sink   *Event
}

func (c *Comp) Tick(now Cycle) {
	c.events = append(c.events, Event{at: now}) // want `append in hot-path function`
	c.sink = &Event{at: now}                    // want `&composite literal in hot-path function`
	cb := func() { c.buf = nil }                // want `func literal in hot-path function`
	cb()
	box(Event{at: now}) // want `interface boxing of .*Event`
	c.grow(int(now))
	c.record(now)
	c.fresh()
	c.reset()
	c.ensure(int(now))
	c.guard(int(now))
}

// box accepts any value; passing a concrete struct boxes it on the heap.
func box(v interface{}) { _ = v }

// grow is reached from Tick, so its make is on the hot path.
func (c *Comp) grow(n int) {
	c.buf = make([]int, n) // want `make in hot-path function`
}

func (c *Comp) record(now Cycle) {
	c.seen = map[int]bool{int(now): true} // want `map literal in hot-path function`
}

func (c *Comp) fresh() {
	c.sink = new(Event) // want `new in hot-path function`
}

func (c *Comp) reset() {
	c.buf = []int{0, 0} // want `slice literal in hot-path function`
}

// ensure grows geometrically: the audited amortization escape hatch.
//
//lint:allow(hotalloc) geometric growth amortizes to zero allocations per op in steady state
func (c *Comp) ensure(n int) {
	if cap(c.buf) < n {
		c.buf = append(c.buf, make([]int, n)...)
	}
}

// guard panics on corruption; a panicking simulator has forfeited the
// zero-allocation contract, so its argument may allocate.
func (c *Comp) guard(n int) {
	if n < 0 {
		panic(&Event{at: Cycle(n)})
	}
}

// Wire is latch-shaped (it has a Flush method), so Flush is a root too.
type Wire struct {
	staged []Event
	cur    []Event
}

func (w *Wire) Flush() {
	w.cur = append(w.cur, w.staged...) // want `append in hot-path function`
	w.staged = w.staged[:0]
}

// Solver mirrors the flow fabric's step: collecting drained flows into a
// fresh slice every pass allocates on the hot path (the real engine reuses
// one scratch slice, truncated in place).
type Solver struct{ drained []int32 }

func (s *Solver) Tick(now Cycle) {
	s.drained = make([]int32, 0, 4) // want `make in hot-path function`
	s.drained = s.drained[:0]
	_ = now
}

// cold is never reached from a Tick/Flush root: allocating here is fine.
func cold() []int { return make([]int, 8) }
