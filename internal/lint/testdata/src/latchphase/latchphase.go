// Package latchphase is the golden-diagnostic fixture for the latchphase
// rule: latched state written outside its own methods fires, the sanctioned
// Push/constructor/engine machinery stays silent.
package latchphase

// queue is latch-shaped: a named struct with a Flush() method. Its fields
// may be written only by its own methods and New* constructors.
type queue struct {
	buf  []int
	pend int
	cur  int
}

// Push and Flush are the type's own methods: sanctioned mutators.
func (q *queue) Push(v int) { q.pend = v }
func (q *queue) Flush()     { q.cur = q.pend }

// NewQueue may initialize fields before the first engine step.
func NewQueue(n int) *queue {
	q := &queue{}
	q.buf = make([]int, n)
	return q
}

// consumer holds a latch and demonstrates every violation shape.
type consumer struct{ q *queue }

func (c *consumer) Tick(now int64) {
	c.q.Push(int(now)) // the sanctioned API: silent
	c.q.pend = 0       // want `direct write to latched field c\.q\.pend outside queue's methods`
	c.q.buf[0] = 1     // want `direct write to latched field c\.q\.buf outside queue's methods`
	c.q.pend++         // want `direct write to latched field c\.q\.pend outside queue's methods`
	c.q.Flush()        // want `explicit Flush\(\) outside the engine`
}

// Latch mirrors sim.Latch; flushing through the interface is still an early
// flush.
type Latch interface{ Flush() }

func drive(l Latch) {
	l.Flush() // want `explicit Flush\(\) outside the engine`
}

// port is latch-shaped like the flow fabric's arrival queues: the solver
// must hand arrivals over through the type's own methods, not poke the
// latched buffer from outside.
type port struct{ arr int }

func (p *port) Enqueue(v int) { p.arr = v }
func (p *port) Flush()        {}

type solver struct{ pt *port }

func (s *solver) Tick(now int64) {
	s.pt.arr = int(now) // want `direct write to latched field s\.pt\.arr outside port's methods`
}

// plain has no Flush method: writes to it are ordinary state.
type plain struct{ n int }

func bump(p *plain) { p.n++ }
