package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// arena: structure-of-arrays view discipline.
//
// The SoA refactor (DESIGN.md §10) rehomes per-cycle hot state — VC rings,
// credit counters, owner tables, wire event regions — into flat per-shard
// arenas, with the original component structs becoming views whose slices
// alias arena slots. Two contracts keep that sound:
//
//   - A view's arena-backed fields are mutated only through the view's own
//     methods (and New* constructors, which run before binding). An outside
//     write could hold a stale pre-bind slice or clobber a neighbouring
//     component's carve.
//
//   - The dense component IDs passed to BindArena/MarkID come from an
//     allocator (topo.ArenaIDs, sim.Flusher.BindID), never from integer
//     literals: a literal compiles today and silently shifts every later
//     carve when registration order changes.
//
// Detection is structural so future arena views are covered automatically:
// an "arena view" is any named struct with a BindArena method taking two
// parameters and returning nothing.
func init() {
	Register(&Rule{
		Name:  "arena",
		Doc:   "arena-view state mutated outside its own methods, or a literal passed where an allocator-issued dense ID is required",
		Match: tickPathPackage,
		Run:   runArena,
	})
}

// isArenaView reports whether t (after pointer stripping) is a named struct
// type carrying a BindArena(x, y) method with no results.
func isArenaView(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil, false
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != "BindArena" {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() == 2 && sig.Results().Len() == 0 {
			return named, true
		}
	}
	return nil, false
}

func runArena(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := receiverType(p, fd)
			constructor := strings.HasPrefix(fd.Name.Name, "New")
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						p.checkArenaWrite(lhs, recv, constructor)
					}
				case *ast.IncDecStmt:
					p.checkArenaWrite(n.X, recv, constructor)
				case *ast.CallExpr:
					p.checkLiteralID(n)
				}
				return true
			})
		}
	}
}

// checkArenaWrite flags lhs when it denotes (an element of) a field of an
// arena view and the enclosing function is neither a method of that view
// nor a New* constructor.
func (p *Pass) checkArenaWrite(lhs ast.Expr, recv *types.Named, constructor bool) {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.StarExpr:
			lhs = e.X
			continue
		}
		break
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	base := p.Pkg.Info.TypeOf(sel.X)
	if base == nil {
		return
	}
	named, view := isArenaView(base)
	if !view {
		return
	}
	if recv != nil && origin(recv) == origin(named) {
		return // the view's own methods are the sanctioned mutators
	}
	if constructor {
		return // New* may initialize fields before binding
	}
	p.Reportf(sel.Pos(),
		"direct write to arena-view field %s.%s outside %s's methods: arena-backed state is mutated only through the owning view",
		types.ExprString(sel.X), sel.Sel.Name, named.Obj().Name())
}

// checkLiteralID flags integer literals passed where an allocator-issued
// dense ID is required: the id argument of BindArena (second) and of MarkID
// (first).
func (p *Pass) checkLiteralID(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	var arg ast.Expr
	switch {
	case sel.Sel.Name == "BindArena" && len(call.Args) == 2:
		arg = call.Args[1]
	case sel.Sel.Name == "MarkID" && len(call.Args) == 1:
		arg = call.Args[0]
	default:
		return
	}
	if !literalInt(arg) {
		return
	}
	p.Reportf(arg.Pos(),
		"literal dense ID passed to %s: component IDs must come from the allocator (topo.ArenaIDs.Next / sim.Flusher.BindID), not literals",
		sel.Sel.Name)
}

// literalInt reports whether e is an integer literal, possibly parenthesized,
// unary-signed, or converted (e.g. int32(3)).
func literalInt(e ast.Expr) bool {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.CallExpr:
			// A conversion like int32(3) has exactly one argument; peeling it
			// is safe because a real call returning int would not be a literal.
			if len(v.Args) != 1 {
				return false
			}
			e = v.Args[0]
		case *ast.BasicLit:
			return v.Kind == token.INT
		default:
			return false
		}
	}
}
