package lint

import (
	"go/ast"
	"go/types"
)

// Static call graph over the module-local loader: the shared traversal layer
// under hotalloc's allocation walk and shardsafe's dataflow pass.
//
// Nodes are *types.Func (generic instantiations mapped to their declared
// origin); edges are the statically resolvable calls of a function's body —
// plain calls, selector calls, and instantiated generics. Interface dispatch
// and function values have no static callee and simply contribute no edge,
// exactly the boundary the runtime monitors (DESIGN.md §6) cover instead.
// Edges are memoized on the loader, so a callee shared by many roots and
// many rules is scanned once per run.

// callee is one static call-graph edge: the resolved target and the call
// site it was resolved from (for diagnostics that want to point at the
// call rather than the callee's body).
type callee struct {
	fn   *types.Func
	call *ast.CallExpr
}

// Callees returns the statically resolvable calls made by fn's body, in
// source order. It returns nil for functions without module-local syntax
// (stdlib, interface methods, funcs without bodies).
func (l *Loader) Callees(fn *types.Func) []callee {
	if fn == nil {
		return nil
	}
	fn = fn.Origin()
	if edges, ok := l.callees[fn]; ok {
		return edges
	}
	if l.callees == nil {
		l.callees = map[*types.Func][]callee{}
	}
	l.callees[fn] = nil // break recursion through cycles
	fd := l.FuncDecl(fn)
	if fd == nil || fd.Body == nil {
		return nil
	}
	pkg, ok := l.pkgs[fn.Pkg().Path()]
	if !ok {
		return nil
	}
	var edges []callee
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := callIdent(call.Fun)
		if !ok {
			return true
		}
		if target, ok := pkg.Info.Uses[id].(*types.Func); ok {
			edges = append(edges, callee{fn: target.Origin(), call: call})
		}
		return true
	})
	l.callees[fn] = edges
	return edges
}

// callIdent extracts the identifier a call resolves through: plain calls
// (f(...)) and selector calls (x.f(...)). Anything else (call of a call,
// index expression) is dynamic.
func callIdent(fun ast.Expr) (*ast.Ident, bool) {
	switch f := fun.(type) {
	case *ast.Ident:
		return f, true
	case *ast.SelectorExpr:
		return f.Sel, true
	case *ast.IndexExpr: // generic instantiation: f[T](...)
		return callIdent(f.X)
	case *ast.IndexListExpr: // f[T1, T2](...)
		return callIdent(f.X)
	}
	return nil, false
}

// callWalk is one rule's traversal state over the call graph: a visited set
// shared across every root of a Pass, so a function reachable from many Tick
// trees is visited (and can report) exactly once per pass.
type callWalk struct {
	l       *Loader
	visited map[*types.Func]bool
}

func newCallWalk(l *Loader) *callWalk {
	return &callWalk{l: l, visited: map[*types.Func]bool{}}
}

// from walks the static call graph from root in depth-first source order,
// calling visit once per newly reached function that has module-local
// syntax. visit receives the function and its declaration.
func (w *callWalk) from(root *types.Func, visit func(fn *types.Func, decl *ast.FuncDecl)) {
	if root == nil {
		return
	}
	root = root.Origin()
	if w.visited[root] {
		return
	}
	w.visited[root] = true
	if fd := w.l.FuncDecl(root); fd != nil && fd.Body != nil {
		visit(root, fd)
	}
	for _, e := range w.l.Callees(root) {
		w.from(e.fn, visit)
	}
}
