package lint

import (
	"go/ast"
	"go/types"
)

// mapiter: no ranging over maps in tick-path packages.
//
// Go randomizes map iteration order per run, so any map range whose body
// can influence simulation state — ordering of emitted packets, report
// ordering, float accumulation order, which of two candidates wins a tie —
// silently breaks bit-identical reproduction of the paper's figures. The
// sanctioned idioms are dense integer keys walked in order, a sorted key
// slice, or restructuring the map as a slice. Order-independent sweeps
// (pure deletion, commutative integer sums) that deliberately keep the map
// form must carry an audited //lint:allow(mapiter) with the order-
// independence argument as the reason.
func init() {
	Register(&Rule{
		Name:  "mapiter",
		Doc:   "range over a map in a tick-path package: iteration order can leak into simulation state",
		Match: tickPathPackage,
		Run:   runMapIter,
	})
}

func runMapIter(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			r, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Pkg.Info.TypeOf(r.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				p.Reportf(r.Pos(),
					"range over map %s: iteration order is nondeterministic; iterate sorted keys, a dense index range, or restructure as a slice",
					types.ExprString(r.X))
			}
			return true
		})
	}
}
