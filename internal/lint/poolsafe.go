package lint

import (
	"go/ast"
	"go/types"
)

// poolsafe: packet.Pool ownership heuristics.
//
// Pool.Put's contract is that the caller surrenders the last live
// reference: no flit of the packet may remain in any link, buffer, or
// queue, and the pointer must not be consulted afterwards — a recycled
// packet is reset on Get, so a stale read observes another packet's life.
// PR 4's recycle monitor catches violations at runtime when -check is on;
// this rule catches the two statically visible shapes at review time:
//
//   - use-after-Put: a statement after pool.Put(p) in the same function
//     still reads through p (field access, argument, send);
//
//   - unzeroed truncation: a []*packet.Packet (or any pointer-to-Packet
//     slice) shrunk with s = s[:n] in a function that never nils out the
//     vacated slots, leaving dead packets reachable and defeating both the
//     pool audit and the garbage collector.
//
// Both are heuristics: re-assignment of the variable ends the use-after-Put
// scan, and any s[i] = nil in the function satisfies the truncation check.
func init() {
	Register(&Rule{
		Name:  "poolsafe",
		Doc:   "packet.Pool misuse: use after Put, or packet-slice truncation without zeroing",
		Match: tickPathPackage,
		Run:   runPoolSafe,
	})
}

func runPoolSafe(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkUseAfterPut(fd)
			p.checkTruncation(fd)
		}
	}
}

// isPoolPut reports whether call is <pool>.Put(x) on a type named Pool.
func isPoolPut(info *types.Info, call *ast.CallExpr) (arg *ast.Ident, ok bool) {
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	if !selOK || sel.Sel.Name != "Put" || len(call.Args) != 1 {
		return nil, false
	}
	fn, fnOK := info.Uses[sel.Sel].(*types.Func)
	if !fnOK {
		return nil, false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil, false
	}
	rt := sig.Recv().Type()
	if ptr, isPtr := rt.(*types.Pointer); isPtr {
		rt = ptr.Elem()
	}
	named, namedOK := rt.(*types.Named)
	if !namedOK || named.Obj().Name() != "Pool" {
		return nil, false
	}
	id, idOK := call.Args[0].(*ast.Ident)
	return id, idOK
}

// checkUseAfterPut scans every block: once pool.Put(p) executes, later
// statements in that block may not use p unless they reassign it first.
func (p *Pass) checkUseAfterPut(fd *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			expr, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := expr.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := isPoolPut(info, call)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			if obj == nil {
				continue
			}
			p.scanAfterPut(block.List[i+1:], id.Name, obj)
		}
		return true
	})
}

// scanAfterPut reports uses of obj in stmts, stopping at a reassignment.
func (p *Pass) scanAfterPut(stmts []ast.Stmt, name string, obj types.Object) {
	info := p.Pkg.Info
	for _, stmt := range stmts {
		reassigned := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if reassigned {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if lid, ok := lhs.(*ast.Ident); ok && info.Uses[lid] == obj {
						reassigned = true
					}
					if lid, ok := lhs.(*ast.Ident); ok && info.Defs[lid] != nil && lid.Name == name {
						reassigned = true // := shadow in a nested scope
					}
				}
				// The RHS still runs with the old value: scan it first.
				for _, rhs := range n.Rhs {
					p.reportUses(rhs, obj)
				}
				return false
			case *ast.Ident:
				if info.Uses[n] == obj {
					p.Reportf(n.Pos(),
						"use of %s after Pool.Put(%s): Put surrenders the last live reference; the packet may already be recycled",
						name, name)
				}
			}
			return true
		})
		if reassigned {
			return
		}
	}
}

// reportUses flags every use of obj inside expr.
func (p *Pass) reportUses(expr ast.Expr, obj types.Object) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Pkg.Info.Uses[id] == obj {
			p.Reportf(id.Pos(),
				"use of %s after Pool.Put(%s): Put surrenders the last live reference; the packet may already be recycled",
				id.Name, id.Name)
		}
		return true
	})
}

// isPacketPtrSlice reports whether t is a slice whose elements are (or
// contain, one struct level deep) pointers to a type named Packet.
func isPacketPtrSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return isPacketPtr(s.Elem())
}

func isPacketPtr(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Packet"
}

// checkTruncation flags s = s[:n] on packet-pointer slices in functions
// that never zero a slot of s.
func (p *Pass) checkTruncation(fd *ast.FuncDecl) {
	info := p.Pkg.Info

	// First pass: collect the base expressions of every s[i] = nil (or
	// zero-composite) store in the function.
	zeroed := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			idx, ok := lhs.(*ast.IndexExpr)
			if !ok {
				continue
			}
			if isZeroExpr(as.Rhs[i]) {
				zeroed[types.ExprString(idx.X)] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		sl, ok := as.Rhs[0].(*ast.SliceExpr)
		if !ok || sl.High == nil || sl.Low != nil {
			return true // only s[:n] shrinks; s[i:] is a consume-from-front rewind
		}
		base := types.ExprString(sl.X)
		if base != types.ExprString(as.Lhs[0]) {
			return true
		}
		t := info.TypeOf(sl.X)
		if t == nil || !isPacketPtrSlice(t) {
			return true
		}
		if zeroed[base] {
			return true
		}
		p.Reportf(as.Pos(),
			"truncating packet slice %s without zeroing the vacated slots: dead packets stay reachable and defeat the pool recycle audit",
			base)
		return true
	})
}

// isZeroExpr: nil or a T{} zero composite.
func isZeroExpr(e ast.Expr) bool {
	if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	if cl, ok := e.(*ast.CompositeLit); ok && len(cl.Elts) == 0 {
		return true
	}
	return false
}
