package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit a Rule runs over.
type Package struct {
	Path  string // import path ("nifdy/internal/core"); synthetic for testdata
	Dir   string
	Files []*ast.File // non-test files, in filename order
	Types *types.Package
	Info  *types.Info

	funcDecls map[*types.Func]*ast.FuncDecl // built on first FuncDecl call
}

// Loader parses and type-checks module packages using only the standard
// library: module-local imports are resolved from source under the module
// root, everything else falls through to go/importer's source importer.
// Loads are memoized, so a package shared by many lint targets is checked
// once.
type Loader struct {
	Fset   *token.FileSet
	Module string // module path from go.mod
	Root   string // module root directory

	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard

	facts   map[*factKey]map[*Package]any // memoized per-package analysis facts
	callees map[*types.Func][]callee      // memoized static call graph edges
}

// NewLoader returns a Loader for the module rooted at root (the directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Module:  mod,
		Root:    root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.Module {
		return l.Root, true
	}
	if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Load parses and type-checks the package at the given module-local import
// path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: %s is not a module-local import path", path)
	}
	return l.LoadDir(dir, path)
}

// LoadDir parses and type-checks the package in dir under the given import
// path. Test files are skipped: the contracts the rules enforce are about
// simulation code, and tests/benchmarks are explicitly exempt. Files ruled
// out by build constraints (`//go:build` lines or _GOOS/_GOARCH filename
// suffixes) are skipped for the host platform, exactly as the compiler
// would — a platform pair like shm_linux.go/shm_stub.go otherwise loads as
// one package full of redeclarations.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, n); err != nil || !ok {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	cfg := types.Config{
		Importer: importerFunc(func(ip string) (*types.Package, error) {
			if _, ok := l.dirFor(ip); ok {
				p, err := l.Load(ip)
				if err != nil {
					return nil, err
				}
				return p.Types, nil
			}
			return l.std.Import(ip)
		}),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := cfg.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// ModulePackages lists the import paths of every package directory under the
// module root, in sorted order, skipping testdata, hidden directories, and
// directories with no non-test Go files.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(dir string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if dir != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				rel, err := filepath.Rel(l.Root, dir)
				if err != nil {
					return err
				}
				if rel == "." {
					paths = append(paths, l.Module)
				} else {
					paths = append(paths, l.Module+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// FuncDecl returns the syntax of fn if it is defined in a module package
// this loader has loaded (loading it on demand when fn's package is
// module-local). It returns nil for stdlib functions, interface methods, and
// functions without bodies.
func (l *Loader) FuncDecl(fn *types.Func) *ast.FuncDecl {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	// Methods of instantiated generics (Wire[flit].SendAt) are distinct
	// objects from their declared origin (Wire[T].SendAt); syntax lives on
	// the origin.
	fn = fn.Origin()
	pkg, ok := l.pkgs[fn.Pkg().Path()]
	if !ok {
		if _, local := l.dirFor(fn.Pkg().Path()); !local {
			return nil
		}
		var err error
		pkg, err = l.Load(fn.Pkg().Path())
		if err != nil {
			return nil
		}
	}
	return pkg.FuncDecl(fn)
}

// FuncDecl returns the declaration of fn within this package, or nil.
func (p *Package) FuncDecl(fn *types.Func) *ast.FuncDecl {
	if p.funcDecls == nil {
		p.funcDecls = map[*types.Func]*ast.FuncDecl{}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					p.funcDecls[obj] = fd
				}
			}
		}
	}
	return p.funcDecls[fn]
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
