package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Suppressions are audited escape hatches: a comment of the form
//
//	//lint:allow(rule) reason for the exception
//
// silences every diagnostic of that rule on the same line, on the line
// directly below, or — when the comment is part of a declaration's doc
// comment — anywhere inside that top-level declaration. The reason string is
// mandatory: an allow without one is itself reported, as is an allow that
// suppresses nothing (so stale annotations cannot accumulate).

var allowRe = regexp.MustCompile(`^//lint:allow\(([a-zA-Z0-9_,-]+)\)\s*(.*)$`)

// parseAllow parses one comment's text as an allow directive. ok is false
// when the text is not an allow at all (wrong verb, spaced-out directive,
// missing parens, or no valid rule name inside them); empty rule segments
// (`//lint:allow(a,,b)`) are dropped. FuzzSuppress holds this parser to its
// grammar, and the lintdiff CI audit greps for the same shape.
func parseAllow(text string) (rules []string, reason string, ok bool) {
	m := allowRe.FindStringSubmatch(text)
	if m == nil {
		return nil, "", false
	}
	for _, r := range strings.Split(m[1], ",") {
		if r != "" {
			rules = append(rules, r)
		}
	}
	if len(rules) == 0 {
		return nil, "", false
	}
	return rules, strings.TrimSpace(m[2]), true
}

// allow is one parsed //lint:allow comment.
type allow struct {
	file   string
	line   int
	rules  []string
	reason string
	// declStart/declEnd bound the top-level declaration this allow is a doc
	// comment of; both zero for line-level allows.
	declStart, declEnd int
	used               bool
}

func (a *allow) covers(rule string, line int) bool {
	for _, r := range a.rules {
		if r != rule {
			continue
		}
		if line == a.line || line == a.line+1 {
			return true
		}
		if a.declStart != 0 && line >= a.declStart && line <= a.declEnd {
			return true
		}
	}
	return false
}

// suppressions indexes every allow comment of a set of packages.
type suppressions struct {
	byFile map[string][]*allow
}

func newSuppressions() *suppressions {
	return &suppressions{byFile: map[string][]*allow{}}
}

// addPackage parses all allow comments in pkg, binding doc-comment allows to
// their declaration's line range.
func (s *suppressions) addPackage(fset *token.FileSet, pkg *Package) {
	for _, f := range pkg.Files {
		// Map each comment to the declaration it documents, if any.
		docOf := map[*ast.Comment]ast.Decl{}
		for _, d := range f.Decls {
			var doc *ast.CommentGroup
			switch d := d.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				for _, c := range doc.List {
					docOf[c] = d
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, reason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				a := &allow{
					file:   pos.Filename,
					line:   pos.Line,
					rules:  rules,
					reason: reason,
				}
				if d, ok := docOf[c]; ok {
					a.declStart = fset.Position(d.Pos()).Line
					a.declEnd = fset.Position(d.End()).Line
				}
				s.byFile[pos.Filename] = append(s.byFile[pos.Filename], a)
			}
		}
	}
}

// suppressed reports whether a diagnostic of rule at file:line is covered by
// an allow, marking the allow used.
func (s *suppressions) suppressed(rule, file string, line int) bool {
	hit := false
	for _, a := range s.byFile[file] {
		if a.covers(rule, line) {
			a.used = true
			hit = true
		}
	}
	return hit
}

// audit returns diagnostics for malformed or stale allows: missing reasons
// always, unused allows only when ranByName covers every rule the allow
// names (an allow cannot be proved stale by a partial run).
func (s *suppressions) audit(ranByName map[string]bool, full bool) []Diagnostic {
	var out []Diagnostic
	for _, as := range s.byFile {
		for _, a := range as {
			if a.reason == "" {
				out = append(out, Diagnostic{
					Rule: "allow", File: a.file, Line: a.line,
					Message: "suppression without a reason: //lint:allow(rule) must explain the exception",
				})
				continue
			}
			if !full || a.used {
				continue
			}
			ran := true
			for _, r := range a.rules {
				if !ranByName[r] {
					ran = false
					break
				}
			}
			if ran {
				out = append(out, Diagnostic{
					Rule: "allow", File: a.file, Line: a.line,
					Message: "stale suppression: //lint:allow(" + strings.Join(a.rules, ",") + ") matches no diagnostic",
				})
			}
		}
	}
	return out
}
