package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// arenamirror: ArenaSize and BindArena must be mirror walks.
//
// The shard arena protocol (internal/router/arena.go) is a two-pass carve:
// every component's ArenaSize accumulates slot counts into an ArenaSizer,
// NewArena allocates the flat arrays once, and every component's BindArena
// carves its views out of them — in the same order, for the same fields.
// The runtime backstop is a panic ("ArenaSize/BindArena mismatch") that
// fires on the first simulation run that binds the drifted component; this
// rule moves the check to lint time and names the field:
//
//   - a field sized in ArenaSize but never carved in BindArena leaves dead
//     arena slots (or masks a missing bind);
//   - a field carved in BindArena but never sized overflows the carve at
//     runtime;
//   - sizing fields in one order and carving them in another makes the two
//     walks impossible to review side by side, which is how the first two
//     drifts happen.
//
// The arena's own package is summarized once (fact store): the constructor
// maps arena fields to sizer fields (`flits: make([]Flit, s.Flits)`,
// `a.flitEv.Grow(s.FlitEv)`), and each single-field arena method is a carve
// method (`flitSlots` carves `flits`). Component BindArena bodies are then
// read as sequences of carve calls and direct mapped-field uses
// (`&a.flitEv`, `a.credEv.Bind(...)`).
func init() {
	Register(&Rule{
		Name:  "arenamirror",
		Doc:   "ArenaSize/BindArena field or order drift (runtime carve panic made static)",
		Match: tickPathPackage,
		Run:   runArenaMirror,
	})
}

// arenaInfo is the fact computed on an arena-declaring package: how one
// arena type's fields map to sizer fields, and which of its methods carve
// which field.
type arenaInfo struct {
	sizer        *types.Named      // the sizer struct the constructor consumes
	fieldToSizer map[string]string // arena field -> sizer field
	carveToField map[string]string // arena method -> arena field it carves
}

var arenaMapsKey = newFactKey("arenamirror.maps")

// arenaMaps returns the arena summaries of pkg, keyed by arena type.
func arenaMaps(l *Loader, pkg *Package) map[*types.Named]*arenaInfo {
	v := l.fact(arenaMapsKey, pkg, func(pkg *Package) any {
		return computeArenaMaps(pkg)
	})
	m, _ := v.(map[*types.Named]*arenaInfo)
	return m
}

func computeArenaMaps(pkg *Package) map[*types.Named]*arenaInfo {
	infos := map[*types.Named]*arenaInfo{}

	// Pass 1: constructors. A function whose body fills a keyed composite
	// literal of a local named struct from a parameter's fields is the
	// allocation half: each `field: make(..., s.X)` element and each
	// `a.field.Grow(s.X)`-shaped statement maps an arena field to its sizer
	// field.
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			params := paramSet(pkg, fd)
			if len(params) == 0 {
				continue
			}
			var found *types.Named
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				named := namedOf(pkg.Info.TypeOf(lit))
				if named == nil || named.Obj().Pkg() != pkg.Types {
					return true
				}
				for _, el := range lit.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					sfield, styp := paramFieldRef(pkg, params, kv.Value)
					if sfield == "" {
						continue
					}
					info := infoFor(infos, named)
					info.sizer, info.fieldToSizer[key.Name] = styp, sfield
					found = origin(named)
				}
				return true
			})
			if found == nil {
				continue
			}
			// Statement-level mappings in the same constructor: a statement
			// touching exactly one arena field and one sizer field pairs them
			// (a.flitEv.Grow(s.FlitEv)). Field-only statements (a.flitEv.
			// Alloc()) map nothing.
			info := infos[found]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				stmt, ok := n.(ast.Stmt)
				if !ok {
					return true
				}
				switch stmt.(type) {
				case *ast.ExprStmt, *ast.AssignStmt:
				default:
					return true
				}
				afields := arenaFieldRefs(pkg, found, stmt)
				sfield, _ := paramFieldRef(pkg, params, stmt)
				if len(afields) == 1 && sfield != "" {
					if _, mapped := info.fieldToSizer[afields[0].name]; !mapped {
						info.fieldToSizer[afields[0].name] = sfield
					}
				}
				return true
			})
		}
	}

	// Pass 2: carve methods. A method of a discovered arena type whose body
	// touches exactly one mapped field carves that field; methods touching
	// none (claim) or several are protocol plumbing, not carves.
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := receiverType(&Pass{Pkg: pkg}, fd)
			if recv == nil {
				continue
			}
			info, ok := infos[origin(recv)]
			if !ok {
				continue
			}
			refs := arenaFieldRefs(pkg, origin(recv), fd.Body)
			mapped := map[string]bool{}
			for _, r := range refs {
				if _, ok := info.fieldToSizer[r.name]; ok {
					mapped[r.name] = true
				}
			}
			if len(mapped) == 1 {
				for name := range mapped {
					info.carveToField[fd.Name.Name] = name
				}
			}
		}
	}
	return infos
}

func infoFor(infos map[*types.Named]*arenaInfo, named *types.Named) *arenaInfo {
	key := origin(named)
	if info, ok := infos[key]; ok {
		return info
	}
	info := &arenaInfo{
		fieldToSizer: map[string]string{},
		carveToField: map[string]string{},
	}
	infos[key] = info
	return info
}

// paramSet collects fd's parameter objects.
func paramSet(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	set := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				set[obj] = true
			}
		}
	}
	return set
}

// paramFieldRef finds a field selection rooted at one of params inside n
// (s.Flits in make([]Flit, s.Flits)) and returns the field name and the
// parameter's named struct type.
func paramFieldRef(pkg *Package, params map[types.Object]bool, n ast.Node) (string, *types.Named) {
	var field string
	var typ *types.Named
	ast.Inspect(n, func(n ast.Node) bool {
		if field != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || !params[pkg.Info.Uses[id]] {
			return true
		}
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			field = sel.Sel.Name
			typ = namedOf(pkg.Info.Uses[id].Type())
			return false
		}
		return true
	})
	return field, typ
}

// arenaFieldRef is one selection of an arena struct field, in source order.
type arenaFieldRef struct {
	name string
	pos  token.Pos
}

// arenaFieldRefs lists the selections of arena's fields inside n.
func arenaFieldRefs(pkg *Package, arena *types.Named, n ast.Node) []arenaFieldRef {
	var refs []arenaFieldRef
	ast.Inspect(n, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pkg.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if recv := namedOf(s.Recv()); recv == nil || origin(recv) != origin(arena) {
			return true
		}
		refs = append(refs, arenaFieldRef{name: sel.Sel.Name, pos: sel.Pos()})
		return true
	})
	return refs
}

// namedOf unwraps pointers to the named type underneath, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return origin(named)
}

func runArenaMirror(p *Pass) {
	type pair struct{ size, bind *ast.FuncDecl }
	pairs := map[*types.Named]*pair{}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "ArenaSize" && fd.Name.Name != "BindArena" {
				continue
			}
			recv := receiverType(p, fd)
			if recv == nil {
				continue
			}
			pr := pairs[origin(recv)]
			if pr == nil {
				pr = &pair{}
				pairs[origin(recv)] = pr
			}
			if fd.Name.Name == "ArenaSize" {
				pr.size = fd
			} else {
				pr.bind = fd
			}
		}
	}
	for recv, pr := range pairs {
		if pr.size == nil || pr.bind == nil {
			continue // one-sided components are someone else's protocol
		}
		p.checkMirror(recv, pr.size, pr.bind)
	}
}

func (p *Pass) checkMirror(recv *types.Named, size, bind *ast.FuncDecl) {
	sizerPrm := firstPtrStructParam(p, size)
	arenaPrm := firstPtrStructParam(p, bind)
	if sizerPrm == nil || arenaPrm == nil {
		return
	}
	arenaNamed := namedOf(arenaPrm.Type())
	arenaPkgPath := arenaNamed.Obj().Pkg().Path()
	arenaPkg, ok := p.Loader.pkgs[arenaPkgPath]
	if !ok {
		return // arena type's package not loaded: nothing to mirror against
	}
	info := arenaMaps(p.Loader, arenaPkg)[arenaNamed]
	if info == nil || info.sizer != namedOf(sizerPrm.Type()) {
		return // no constructor summary, or the pair spans unrelated protocols
	}

	// Sized fields, in first-use order: `s.X += ...` / `s.X = ...` writes.
	var sized []string
	sizedSet := map[string]bool{}
	ast.Inspect(size.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if id, ok := sel.X.(*ast.Ident); !ok || p.Pkg.Info.Uses[id] != sizerPrm {
				continue
			}
			if s, ok := p.Pkg.Info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
				continue
			}
			if !sizedSet[sel.Sel.Name] {
				sizedSet[sel.Sel.Name] = true
				sized = append(sized, sel.Sel.Name)
			}
		}
		return true
	})

	// Carved fields, in first-use order, mapped to sizer field names: carve
	// method calls (a.flitSlots(n)) and direct mapped-field selections
	// (&a.flitEv, a.credEv.Bind(...)).
	type carve struct {
		field string
		pos   token.Pos
	}
	var carved []carve
	carvedSet := map[string]bool{}
	record := func(field string, pos token.Pos) {
		if !carvedSet[field] {
			carvedSet[field] = true
			carved = append(carved, carve{field: field, pos: pos})
		}
	}
	ast.Inspect(bind.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || p.Pkg.Info.Uses[id] != arenaPrm {
			return true
		}
		s, ok := p.Pkg.Info.Selections[sel]
		if !ok {
			return true
		}
		switch s.Kind() {
		case types.MethodVal:
			if f, ok := info.carveToField[sel.Sel.Name]; ok {
				record(info.fieldToSizer[f], sel.Pos())
			}
		case types.FieldVal:
			if f, ok := info.fieldToSizer[sel.Sel.Name]; ok {
				record(f, sel.Pos())
			}
		}
		return true
	})

	for _, f := range sized {
		if !carvedSet[f] {
			p.Reportf(bind.Pos(),
				"arena mirror: %s.ArenaSize sizes %s but BindArena never carves it — dead arena slots (or a missing bind)",
				recv.Obj().Name(), f)
		}
	}
	for _, c := range carved {
		if !sizedSet[c.field] {
			p.Reportf(c.pos,
				"arena mirror: %s.BindArena carves %s but ArenaSize never sizes it — the carve will overflow at runtime",
				recv.Obj().Name(), c.field)
		}
	}

	// Order: restrict both walks to the common fields and find the first
	// divergence.
	var a, b []string
	for _, f := range sized {
		if carvedSet[f] {
			a = append(a, f)
		}
	}
	for _, c := range carved {
		if sizedSet[c.field] {
			b = append(b, c.field)
		}
	}
	for i := range a {
		if a[i] != b[i] {
			p.Reportf(bind.Pos(),
				"arena mirror: %s.BindArena carves %s before %s but ArenaSize sizes %s first — sizing and binding walks must mirror",
				recv.Obj().Name(), b[i], a[i], a[i])
			break
		}
	}
}

// firstPtrStructParam returns fd's first parameter whose type is a pointer
// to a named struct.
func firstPtrStructParam(p *Pass, fd *ast.FuncDecl) *types.Var {
	obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		prm := sig.Params().At(i)
		ptr, ok := prm.Type().(*types.Pointer)
		if !ok {
			continue
		}
		if named, ok := ptr.Elem().(*types.Named); ok {
			if _, ok := named.Underlying().(*types.Struct); ok {
				return prm
			}
		}
	}
	return nil
}
