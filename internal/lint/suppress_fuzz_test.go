package lint

import (
	"regexp"
	"strings"
	"testing"
)

// ruleNameRe is the shape of one rule name inside //lint:allow(...): the
// grammar FuzzSuppress holds parseAllow to. scripts/lintdiff.sh greps for
// the same directive shape, so the parser drifting from it would silently
// split the CI audit from the suppression machinery.
var ruleNameRe = regexp.MustCompile(`^[a-zA-Z0-9_-]+$`)

// FuzzSuppress fuzzes the allow-directive parser over arbitrary comment
// text. A successful parse must start with the literal directive prefix,
// yield only well-formed rule names, trim the reason, and round-trip
// through its canonical rendering; a failed parse must yield zero values.
// Seed corpus: testdata/fuzz/FuzzSuppress.
func FuzzSuppress(f *testing.F) {
	for _, seed := range []string{
		"//lint:allow(mapiter) commutative sum",
		"//lint:allow(mapiter,hotalloc) shared reason",
		"//lint:allow(hotalloc)",
		"//lint:allow(shardsafe) drain runs only at the window boundary",
		"//lint:allow(a-b_c9)   padded reason\t",
		"//lint:allow(kindswitch) reason with (parens), commas, and `ticks`",
		"//lint:allow(,)",
		"//lint:allow() empty rules",
		"// lint:allow(mapiter) spaced out",
		"//lint:allow mapiter missing parens",
		"//lint:ignore(mapiter) wrong verb",
		"//lint:allow(mapiter",
		"not a comment at all",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		rules, reason, ok := parseAllow(text)
		if !ok {
			if rules != nil || reason != "" {
				t.Fatalf("parseAllow(%q): not ok but returned (%v, %q)", text, rules, reason)
			}
			return
		}
		if !strings.HasPrefix(text, "//lint:allow(") {
			t.Fatalf("parseAllow(%q) ok, but the text lacks the directive prefix", text)
		}
		if len(rules) == 0 {
			t.Fatalf("parseAllow(%q) ok with zero rules", text)
		}
		for _, r := range rules {
			if !ruleNameRe.MatchString(r) {
				t.Fatalf("parseAllow(%q): malformed rule name %q", text, r)
			}
		}
		if reason != strings.TrimSpace(reason) {
			t.Fatalf("parseAllow(%q): reason %q is not trimmed", text, reason)
		}
		canon := "//lint:allow(" + strings.Join(rules, ",") + ")"
		if reason != "" {
			canon += " " + reason
		}
		r2, rs2, ok2 := parseAllow(canon)
		if !ok2 || strings.Join(r2, ",") != strings.Join(rules, ",") || rs2 != reason {
			t.Fatalf("parseAllow(%q) = (%v, %q) but its canonical form %q re-parsed as (%v, %q, ok=%v)",
				text, rules, reason, canon, r2, rs2, ok2)
		}
	})
}

// TestParseAllowEmptySegments pins the empty-segment policy: blank entries
// inside the parens are dropped, and an allow naming nothing at all is not
// an allow (it suppresses nothing rather than suppressing by accident).
func TestParseAllowEmptySegments(t *testing.T) {
	rules, reason, ok := parseAllow("//lint:allow(mapiter,,hotalloc) shared")
	if !ok || strings.Join(rules, ",") != "mapiter,hotalloc" || reason != "shared" {
		t.Errorf("a,,b form parsed as (%v, %q, %v)", rules, reason, ok)
	}
	if _, _, ok := parseAllow("//lint:allow(,) nothing named"); ok {
		t.Error("all-empty rule list should not parse as an allow")
	}
}
