package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The mutation tests are the negative image of the golden tests: each one
// copies a clean exemplar into a scratch directory with exactly one
// load-bearing line deleted, re-runs the rule, and demands the diagnostic
// name what disappeared. The golden fixtures prove the rules fire where
// expected; these prove they would fire on the drift they exist to catch —
// a rule whose clean exemplar stays clean after losing a field read or a
// carve line is not guarding anything.

// mutateDirAndRun copies srcDir's non-test Go files into a temp package,
// deleting every line matching pattern (which must match exactly one line
// across the whole package — single-mutation discipline), then loads the
// result under a linttest import path and returns ruleName's diagnostics.
func mutateDirAndRun(t *testing.T, ruleName, srcDir, pattern string) []Diagnostic {
	t.Helper()
	re := regexp.MustCompile(pattern)
	dstDir := t.TempDir()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	deleted := 0
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, n))
		if err != nil {
			t.Fatal(err)
		}
		var kept []string
		for _, line := range strings.Split(string(data), "\n") {
			if re.MatchString(line) {
				deleted++
				continue
			}
			kept = append(kept, line)
		}
		if err := os.WriteFile(filepath.Join(dstDir, n), []byte(strings.Join(kept, "\n")), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if deleted != 1 {
		t.Fatalf("pattern %q deleted %d lines in %s, want exactly 1", pattern, deleted, srcDir)
	}
	l, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dstDir, "nifdy/internal/linttest/mutated")
	if err != nil {
		t.Fatal(err)
	}
	r := RuleByName(ruleName)
	if r == nil {
		t.Fatalf("rule %q not registered", ruleName)
	}
	return Run(l, []*Package{pkg}, []*Rule{r}, false)
}

func mutateGolden(t *testing.T, ruleName, pattern string) []Diagnostic {
	t.Helper()
	srcDir := filepath.Join(moduleRoot(t), "internal", "lint", "testdata", "src", ruleName)
	return mutateDirAndRun(t, ruleName, srcDir, pattern)
}

func assertDiag(t *testing.T, diags []Diagnostic, substr string) {
	t.Helper()
	for _, d := range diags {
		if d.Rule != "allow" && strings.Contains(d.Message, substr) {
			return
		}
	}
	t.Fatalf("no diagnostic contains %q; got:\n%s", substr, diagDump(diags))
}

// Deleting one field read from the clean codec pair must name the field.
func TestMutationCodecsync(t *testing.T) {
	diags := mutateGolden(t, "codecsync", `e\.u64\(m\.B\)`)
	assertDiag(t, diags, "field goodMsg.B is never read in encodeGoodMsg")
}

// Deleting one carve line from the mirrored component must name the
// orphaned sizer field (the acceptance drill for arenamirror).
func TestMutationArenamirror(t *testing.T) {
	diags := mutateGolden(t, "arenamirror", `m\.creds = a\.credSlots`)
	assertDiag(t, diags, "ArenaSize sizes Creds but BindArena never carves it")
}

// Deleting one case clause from the exhaustive switch must name the
// missing member. (The dangling return folds into the previous case: the
// mutated file still compiles, the switch just stops covering grant.)
func TestMutationKindswitch(t *testing.T) {
	diags := mutateGolden(t, "kindswitch", `^\tcase grant:$`)
	assertDiag(t, diags, "switch over kind is not exhaustive: missing grant")
}

// Deleting the reasoned allow over drain's InjectAt must surface the
// boundary-call diagnostic it was suppressing.
func TestMutationShardsafe(t *testing.T) {
	diags := mutateGolden(t, "shardsafe", `lint:allow\(shardsafe\)`)
	assertDiag(t, diags, "boundary-only method InjectAt called in (*nifdy/internal/linttest/mutated.node).drain")
}

// TestMutationRealCodec runs the acceptance criterion against the real
// tree: deleting a single field read from internal/dist's encodePacket must
// make the codecsync rule fail naming that field.
func TestMutationRealCodec(t *testing.T) {
	srcDir := filepath.Join(moduleRoot(t), "internal", "dist")
	diags := mutateDirAndRun(t, "codecsync", srcDir, `e\.bool\(p\.ECN\)`)
	assertDiag(t, diags, "field Packet.ECN is never read in encodePacket")
}
