package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// --- golden testdata harness -----------------------------------------------

// wantRe matches the expectation comments in testdata:  // want `regex`
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type wantSpec struct {
	re      *regexp.Regexp
	matched bool
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// loadGolden type-checks testdata/src/<name> under a synthetic tick-path
// import path and collects its want expectations keyed by line number.
func loadGolden(t *testing.T, l *Loader, name string) (*Package, map[int]*wantSpec) {
	t.Helper()
	dir := filepath.Join(l.Root, "internal", "lint", "testdata", "src", name)
	pkg, err := l.LoadDir(dir, "nifdy/internal/linttest/"+name)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[int]*wantSpec{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants[i+1] = &wantSpec{re: regexp.MustCompile(m[1])}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("no want expectations in %s", dir)
	}
	return pkg, wants
}

// runGolden checks a rule against its fixture: every diagnostic must match a
// want on its line, and every want must be hit.
func runGolden(t *testing.T, ruleName string) {
	r := RuleByName(ruleName)
	if r == nil {
		t.Fatalf("rule %q not registered", ruleName)
	}
	l, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, wants := loadGolden(t, l, ruleName)
	diags := Run(l, []*Package{pkg}, []*Rule{r}, false)
	for _, d := range diags {
		if d.Rule == "allow" {
			t.Errorf("unexpected allow diagnostic: %s", d)
			continue
		}
		w := wants[d.Line]
		if w == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("line %d: diagnostic %q does not match want %q", d.Line, d.Message, w.re)
			continue
		}
		w.matched = true
	}
	var missed []int
	for line, w := range wants {
		if !w.matched {
			missed = append(missed, line)
		}
	}
	sort.Ints(missed)
	for _, line := range missed {
		t.Errorf("line %d: want %q matched no diagnostic", line, wants[line].re)
	}
}

func TestGoldenMapiter(t *testing.T)    { runGolden(t, "mapiter") }
func TestGoldenWallclock(t *testing.T)  { runGolden(t, "wallclock") }
func TestGoldenHotalloc(t *testing.T)   { runGolden(t, "hotalloc") }
func TestGoldenLatchphase(t *testing.T) { runGolden(t, "latchphase") }
func TestGoldenPoolsafe(t *testing.T)   { runGolden(t, "poolsafe") }
func TestGoldenArena(t *testing.T)      { runGolden(t, "arena") }

func TestGoldenCodecsync(t *testing.T)   { runGolden(t, "codecsync") }
func TestGoldenArenamirror(t *testing.T) { runGolden(t, "arenamirror") }
func TestGoldenKindswitch(t *testing.T)  { runGolden(t, "kindswitch") }
func TestGoldenShardsafe(t *testing.T)   { runGolden(t, "shardsafe") }

// --- suppression audit ------------------------------------------------------

func TestSuppressAudit(t *testing.T) {
	l, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(l.Root, "internal", "lint", "testdata", "src", "suppress")
	pkg, err := l.LoadDir(dir, "nifdy/internal/linttest/suppress")
	if err != nil {
		t.Fatal(err)
	}

	// Full run, full rule set: the reasonless allow and the stale allow are
	// the only findings (the map ranges themselves are suppressed).
	diags := Run(l, []*Package{pkg}, Rules(), true)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%s", len(diags), diagDump(diags))
	}
	if diags[0].Rule != "allow" || !strings.Contains(diags[0].Message, "suppression without a reason") {
		t.Errorf("diag 0 = %s, want missing-reason allow", diags[0])
	}
	if diags[1].Rule != "allow" || !strings.Contains(diags[1].Message, "stale suppression: //lint:allow(wallclock)") {
		t.Errorf("diag 1 = %s, want stale wallclock allow", diags[1])
	}

	// Partial run: stale allows cannot be proved stale, so only the
	// missing-reason diagnostic survives.
	partial := Run(l, []*Package{pkg}, []*Rule{RuleByName("mapiter")}, false)
	if len(partial) != 1 || !strings.Contains(partial[0].Message, "suppression without a reason") {
		t.Errorf("partial run: got %d diagnostics, want just the missing-reason allow:\n%s",
			len(partial), diagDump(partial))
	}
}

func diagDump(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

// --- allow parsing ----------------------------------------------------------

func TestAllowParsing(t *testing.T) {
	m := allowRe.FindStringSubmatch("//lint:allow(mapiter) commutative sum")
	if m == nil || m[1] != "mapiter" || m[2] != "commutative sum" {
		t.Errorf("single-rule allow parsed as %v", m)
	}
	m = allowRe.FindStringSubmatch("//lint:allow(mapiter,hotalloc)")
	if m == nil || m[1] != "mapiter,hotalloc" || m[2] != "" {
		t.Errorf("multi-rule reasonless allow parsed as %v", m)
	}
	for _, not := range []string{
		"// lint:allow(mapiter) spaced out", // directives have no space
		"//lint:allow mapiter missing parens",
		"//lint:ignore(mapiter) wrong verb",
	} {
		if allowRe.MatchString(not) {
			t.Errorf("%q should not parse as an allow", not)
		}
	}
}

func TestAllowCovers(t *testing.T) {
	a := &allow{line: 10, rules: []string{"mapiter", "hotalloc"}}
	cases := []struct {
		rule string
		line int
		want bool
	}{
		{"mapiter", 10, true},  // same line
		{"mapiter", 11, true},  // line below
		{"hotalloc", 11, true}, // either named rule
		{"mapiter", 12, false}, // two below: out of range
		{"mapiter", 9, false},  // above
		{"wallclock", 10, false},
	}
	for _, c := range cases {
		if got := a.covers(c.rule, c.line); got != c.want {
			t.Errorf("line-allow covers(%s, %d) = %v, want %v", c.rule, c.line, got, c.want)
		}
	}

	d := &allow{line: 5, rules: []string{"hotalloc"}, declStart: 5, declEnd: 40}
	if !d.covers("hotalloc", 33) {
		t.Error("doc-comment allow should cover the whole declaration")
	}
	if d.covers("hotalloc", 41) {
		t.Error("doc-comment allow should stop at the declaration's end")
	}
	if d.covers("mapiter", 33) {
		t.Error("doc-comment allow should only cover its named rules")
	}
}

// --- registry ---------------------------------------------------------------

func TestRegistry(t *testing.T) {
	rs := Rules()
	want := []string{
		"arena", "arenamirror", "codecsync", "hotalloc", "kindswitch",
		"latchphase", "mapiter", "poolsafe", "shardsafe", "wallclock",
	}
	if len(rs) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rs), len(want))
	}
	for i, r := range rs {
		if r.Name != want[i] {
			t.Errorf("rule %d = %s, want %s (sorted)", i, r.Name, want[i])
		}
	}
	if RuleByName("mapiter") == nil {
		t.Error("RuleByName(mapiter) = nil")
	}
	if RuleByName("nope") != nil {
		t.Error("RuleByName(nope) != nil")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(&Rule{Name: "mapiter", Run: func(*Pass) {}})
}

func TestRegisterEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name Register did not panic")
		}
	}()
	Register(&Rule{Name: "", Run: func(*Pass) {}})
}

// --- tick-path matching -----------------------------------------------------

func TestTickPathPackage(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"nifdy/internal/core", true},
		{"nifdy/internal/sim", true},
		{"nifdy/internal/flow", true},             // the flow engine's solve path is swept too
		{"nifdy/internal/linttest/mapiter", true}, // golden fixtures are swept
		{"nifdy/internal/lint", false},            // the analyzer itself is not
		{"nifdy/internal/lint/sub", false},
		{"nifdy/cmd/nifdy-lint", false},
		{"nifdy", false},
		{"fmt", false},
	}
	for _, c := range cases {
		if got := tickPathPackage(c.path); got != c.want {
			t.Errorf("tickPathPackage(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// --- CLI exit codes ---------------------------------------------------------

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// tempModule builds a scratch module named nifdy with one dirty and one
// clean package, so CLI tests exercise real loads without touching the repo.
func tempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module nifdy\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "bad", "bad.go"), `package bad

func Sum(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
`)
	writeFile(t, filepath.Join(dir, "internal", "good", "good.go"), `package good

func Add(a, b int) int { return a + b }
`)
	return dir
}

func TestCLIExitCodes(t *testing.T) {
	dir := tempModule(t)
	run := func(args ...string) (int, string, string) {
		var out, errb bytes.Buffer
		code := CLI(args, &out, &errb)
		return code, out.String(), errb.String()
	}

	code, out, _ := run("-C", dir, "-rules", "mapiter", "nifdy/internal/bad")
	if code != ExitFindings {
		t.Errorf("dirty package: exit %d, want %d", code, ExitFindings)
	}
	if !strings.Contains(out, "[mapiter]") {
		t.Errorf("dirty package output missing diagnostic:\n%s", out)
	}

	if code, _, _ := run("-C", dir, "-rules", "mapiter", "nifdy/internal/good"); code != ExitClean {
		t.Errorf("clean package: exit %d, want %d", code, ExitClean)
	}

	// Whole-module run with all rules finds the seeded map range.
	if code, _, _ := run("-C", dir); code != ExitFindings {
		t.Errorf("whole dirty module: exit %d, want %d", code, ExitFindings)
	}

	if code, _, errOut := run("-C", dir, "-rules", "bogus"); code != ExitError || !strings.Contains(errOut, "unknown rule") {
		t.Errorf("unknown rule: exit %d (stderr %q), want %d", code, errOut, ExitError)
	}

	if code, _, _ := run("-C", dir, "nifdy/internal/missing"); code != ExitError {
		t.Errorf("missing package: exit %d, want %d", code, ExitError)
	}

	if code, _, _ := run("-C", filepath.Join(os.TempDir(), "definitely-not-a-module")); code != ExitError {
		t.Errorf("no module root: exit %d, want %d", code, ExitError)
	}

	code, out, _ = run("-list")
	if code != ExitClean || !strings.Contains(out, "mapiter") || !strings.Contains(out, "hotalloc") {
		t.Errorf("-list: exit %d output %q", code, out)
	}
}
