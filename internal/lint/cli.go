package lint

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Exit codes of the nifdy-lint command.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one diagnostic survived suppression
	ExitError    = 2 // usage, load, or type-check failure
)

// CLI runs the analyzer suite as the nifdy-lint command would: args are the
// command-line arguments after the program name; diagnostics go to stdout,
// errors to stderr. It returns the process exit code.
//
// Usage: nifdy-lint [-rules a,b] [-C dir] [import paths...]
// With no paths, the whole module is analyzed.
func CLI(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nifdy-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ruleNames := fs.String("rules", "", "comma-separated rules to run (default: all)")
	chdir := fs.String("C", ".", "module root or any directory inside it")
	list := fs.Bool("list", false, "list registered rules and exit")
	budget := fs.Duration("budget", 0, "fail if loading+analysis exceeds this wall-clock budget (0: no budget)")
	if err := fs.Parse(args); err != nil {
		return ExitError
	}

	if *list {
		for _, r := range Rules() {
			fmt.Fprintf(stdout, "%-11s %s\n", r.Name, r.Doc)
		}
		return ExitClean
	}

	rules := Rules()
	full := true
	if *ruleNames != "" {
		rules = rules[:0:0]
		for _, name := range strings.Split(*ruleNames, ",") {
			r := RuleByName(strings.TrimSpace(name))
			if r == nil {
				fmt.Fprintf(stderr, "nifdy-lint: unknown rule %q (try -list)\n", name)
				return ExitError
			}
			rules = append(rules, r)
		}
		full = len(rules) == len(Rules())
	}

	root, err := FindModuleRoot(*chdir)
	if err != nil {
		fmt.Fprintln(stderr, "nifdy-lint:", err)
		return ExitError
	}
	l, err := NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "nifdy-lint:", err)
		return ExitError
	}

	paths := fs.Args()
	if len(paths) == 0 {
		paths, err = l.ModulePackages()
		if err != nil {
			fmt.Fprintln(stderr, "nifdy-lint:", err)
			return ExitError
		}
	} else {
		full = false
		sort.Strings(paths)
	}

	// The budget clock covers load + analysis, the part that scales with the
	// module: the suite must stay fast enough to run on every push (CI's
	// lint wall-clock budget step), so an analyzer that goes quadratic fails
	// loudly here instead of quietly eating the gate.
	start := time.Now()
	var pkgs []*Package
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			fmt.Fprintln(stderr, "nifdy-lint:", err)
			return ExitError
		}
		pkgs = append(pkgs, pkg)
	}

	diags := Run(l, pkgs, rules, full)
	elapsed := time.Since(start)
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(stderr, "nifdy-lint: load+analysis took %v, over the %v budget\n",
			elapsed.Round(time.Millisecond), *budget)
		return ExitError
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "nifdy-lint: %d finding(s)\n", len(diags))
		return ExitFindings
	}
	return ExitClean
}
