package lint

import (
	"go/ast"
	"go/types"
)

// hotalloc: no allocation constructs in the Tick/Flush call trees.
//
// PR 2's contract is a zero-allocation saturated data path (~5 B/op per
// cycle, all of it amortized warm-up growth). -benchmem catches violations
// hours later and only on benchmarked paths; this rule catches them at
// their source. Roots are every Tick(now sim.Cycle) method/function and
// every Flush() method in the analyzed package; the rule walks the static
// call graph from those roots through module-local callees (interface
// dispatch and function-valued calls are not resolvable statically and end
// the walk) and flags, inside any reached function:
//
//   - make(...) and new(...)
//   - &T{...} and slice/map composite literals
//   - append(...) — growth beyond capacity allocates
//   - func literals (closure capture allocates)
//   - non-pointer concrete arguments to interface parameters (boxing)
//
// Arguments of panic(...) calls are exempt: a panicking simulator has
// already forfeited the contract. Deliberate amortized-growth sites
// (ring/queue geometric growth, wire event staging, pool warm-up) carry a
// function-level //lint:allow(hotalloc) whose reason names the amortization
// argument — that is the audited allocation surface of the data path.
func init() {
	Register(&Rule{
		Name:  "hotalloc",
		Doc:   "allocation construct reachable from a Tick/Flush call tree (zero-allocation contract)",
		Match: tickPathPackage,
		Run:   runHotAlloc,
	})
}

func runHotAlloc(p *Pass) {
	visited := map[*types.Func]bool{}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !isTickRoot(p, fd) && !isFlushRoot(p, fd) {
				continue
			}
			if obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				p.walkHot(obj, visited)
			}
		}
	}
}

// isTickRoot: a function or method named Tick taking one sim.Cycle (int64)
// and returning nothing — the engine's tick-phase entry point.
func isTickRoot(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Tick" {
		return false
	}
	obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return false
	}
	b, ok := sig.Params().At(0).Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// isFlushRoot: a Flush() method with no parameters or results — the engine's
// flush-phase entry point on every latch.
func isFlushRoot(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Flush" || fd.Recv == nil {
		return false
	}
	obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	return sig.Params().Len() == 0 && sig.Results().Len() == 0
}

// walkHot checks fn's body and recurses into statically resolvable
// module-local callees.
func (p *Pass) walkHot(fn *types.Func, visited map[*types.Func]bool) {
	if fn == nil || visited[fn] {
		return
	}
	visited[fn] = true
	fd := p.Loader.FuncDecl(fn)
	if fd == nil || fd.Body == nil {
		return
	}
	pkg, ok := p.Loader.pkgs[fn.Pkg().Path()]
	if !ok {
		return
	}
	info := pkg.Info

	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := callIdent(n.Fun); ok {
				switch obj := info.Uses[id].(type) {
				case *types.Builtin:
					switch obj.Name() {
					case "make":
						p.Reportf(n.Pos(), "make in hot-path function %s: preallocate at construction", fn.FullName())
					case "new":
						p.Reportf(n.Pos(), "new in hot-path function %s: preallocate or use the packet pool", fn.FullName())
					case "append":
						p.Reportf(n.Pos(), "append in hot-path function %s: growth beyond capacity allocates", fn.FullName())
					case "panic":
						return false // failing loudly is exempt; don't scan the message
					}
					return true
				case *types.Func:
					p.checkBoxing(info, n, obj, fn)
					// walkHot resolves module-local bodies and no-ops for
					// stdlib/interface callees.
					p.walkHot(obj, visited)
					return true
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "&composite literal in hot-path function %s allocates", fn.FullName())
					return false
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					p.Reportf(n.Pos(), "%s literal in hot-path function %s allocates",
						kindWord(t), fn.FullName())
				}
			}
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "func literal in hot-path function %s: closure capture allocates", fn.FullName())
			return false // its body runs via dynamic dispatch we can't prove; don't double-report
		}
		return true
	}
	ast.Inspect(fd.Body, inspect)
}

// checkBoxing flags non-pointer concrete arguments passed to interface
// parameters: the conversion heap-allocates the value's box.
func (p *Pass) checkBoxing(info *types.Info, call *ast.CallExpr, callee *types.Func, root *types.Func) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, ok := info.Types[arg]
		if !ok || tv.Value != nil { // untyped constants box into static data
			continue
		}
		at := tv.Type
		if at == nil || types.IsInterface(at) {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Basic:
			// Pointer-shaped values box without allocating; basic-typed
			// non-constants are usually error/report paths — the real data
			// path never reaches fmt. Struct/slice/array boxing is the
			// expensive, always-allocating case we flag.
			if _, isBasic := at.Underlying().(*types.Basic); !isBasic {
				continue
			}
			if isErrorPath(callee) {
				continue
			}
			p.Reportf(arg.Pos(), "interface boxing of %s in hot-path function %s allocates", at, root.FullName())
		default:
			p.Reportf(arg.Pos(), "interface boxing of %s in hot-path function %s allocates", at, root.FullName())
		}
	}
}

// isErrorPath reports callees that only run when the simulation is already
// failing (fmt formatting feeding a panic or a violation report).
func isErrorPath(callee *types.Func) bool {
	if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		return true
	}
	return false
}

// kindWord names a composite-literal kind for diagnostics.
func kindWord(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
