package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// codecsync: the dist wire codec must carry every field of the structs it
// serializes.
//
// The multi-process engine's determinism contract (DESIGN.md §9) rests on
// every worker reconstructing bit-identical packets from the exchange
// frames. A field added to packet.Packet (or to the frame struct itself)
// that the codec does not carry desynchronizes workers silently: the sender
// computes with the field, the receiver sees its zero value, and the drift
// surfaces cycles later as a heatmap divergence — or not at all until a
// fabric feature depends on it. This rule makes the field lists structural:
//
//   - For every encodeX/decodeX function pair sharing a pointer-to-struct
//     parameter type T, every accessible leaf field of T (recursing through
//     named struct fields such as Packet.Meta) must be read in encodeX and
//     written in decodeX. Reading or assigning a whole sub-struct covers its
//     leaves; passing &x.F to a sub-codec covers F.
//
//   - Section element structs — named local struct types appearing as the
//     element of one of T's slice fields (flitEvent, creditEvent, ...) —
//     must likewise have every field read in encodeX and written in decodeX
//     (through range variables, indexed element pointers, or composite
//     literals).
//
// Dropping a field read from encodePacket therefore fails `make lint` with
// a diagnostic naming the field, instead of failing a distributed run at
// simulation time.
func init() {
	Register(&Rule{
		Name: "codecsync",
		Doc:  "dist codec field drift: encode/decode pair misses a field of the struct it serializes",
		Match: func(path string) bool {
			return path == "nifdy/internal/dist" || hasPrefix(path, "nifdy/internal/linttest/")
		},
		Run: runCodecSync,
	})
}

func runCodecSync(p *Pass) {
	type half struct {
		decl   *ast.FuncDecl
		params map[*types.Named]*types.Var // named-struct pointer params
	}
	encs := map[string]half{}
	decs := map[string]half{}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			var into map[string]half
			var suffix string
			switch {
			case strings.HasPrefix(name, "encode"):
				into, suffix = encs, name[len("encode"):]
			case strings.HasPrefix(name, "decode"):
				into, suffix = decs, name[len("decode"):]
			default:
				continue
			}
			obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			h := half{decl: fd, params: map[*types.Named]*types.Var{}}
			sig := obj.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				prm := sig.Params().At(i)
				ptr, ok := prm.Type().(*types.Pointer)
				if !ok {
					continue
				}
				named, ok := ptr.Elem().(*types.Named)
				if !ok {
					continue
				}
				if _, ok := named.Underlying().(*types.Struct); ok {
					h.params[origin(named)] = prm
				}
			}
			into[suffix] = h
		}
	}

	for suffix, enc := range encs {
		dec, ok := decs[suffix]
		if !ok {
			continue
		}
		// The serialized type is the named struct both halves take by
		// pointer (the enc/dec cursor types appear on one side only).
		for named, encPrm := range enc.params {
			decPrm, ok := dec.params[named]
			if !ok {
				continue
			}
			p.checkCodecPair(named, enc.decl, encPrm, dec.decl, decPrm)
		}
	}
}

// checkCodecPair verifies one (struct, encode, decode) triple.
func (p *Pass) checkCodecPair(named *types.Named, encDecl *ast.FuncDecl, encPrm *types.Var, decDecl *ast.FuncDecl, decPrm *types.Var) {
	leaves := codecLeaves(named, p.Pkg.Types, "")
	reads := p.paramFieldPaths(encDecl, encPrm, false)
	writes := p.paramFieldPaths(decDecl, decPrm, true)
	for _, leaf := range leaves {
		if !pathCovered(reads, leaf) {
			p.Reportf(encDecl.Pos(),
				"codec drift: field %s.%s is never read in %s — every field must be carried on the wire (internal/dist/codec.go contract)",
				named.Obj().Name(), leaf, encDecl.Name.Name)
		}
		if !pathCovered(writes, leaf) {
			p.Reportf(decDecl.Pos(),
				"codec drift: field %s.%s is never written in %s — every field must be reconstructed from the wire",
				named.Obj().Name(), leaf, decDecl.Name.Name)
		}
	}

	// Section element structs: named local struct types that are elements of
	// the pair struct's slice fields.
	st := named.Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		sl, ok := st.Field(i).Type().Underlying().(*types.Slice)
		if !ok {
			continue
		}
		elem, ok := sl.Elem().(*types.Named)
		if !ok || elem.Obj().Pkg() != p.Pkg.Types {
			continue
		}
		est, ok := elem.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		encTouched := p.typedFieldAccesses(encDecl, elem, false)
		decTouched := p.typedFieldAccesses(decDecl, elem, true)
		for j := 0; j < est.NumFields(); j++ {
			f := est.Field(j).Name()
			if !encTouched[f] {
				p.Reportf(encDecl.Pos(),
					"codec drift: section field %s.%s is never read in %s",
					elem.Obj().Name(), f, encDecl.Name.Name)
			}
			if !decTouched[f] {
				p.Reportf(decDecl.Pos(),
					"codec drift: section field %s.%s is never written in %s",
					elem.Obj().Name(), f, decDecl.Name.Name)
			}
		}
	}
}

// codecLeaves lists the dotted paths of the fields a codec must carry:
// accessible fields of named (all fields for structs declared in local, only
// exported ones otherwise), recursing through fields whose type is itself a
// named struct with accessible fields.
func codecLeaves(named *types.Named, local *types.Package, prefix string) []string {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Pkg() != local && !f.Exported() {
			continue
		}
		path := f.Name()
		if prefix != "" {
			path = prefix + "." + path
		}
		if sub, ok := f.Type().(*types.Named); ok {
			if _, isStruct := sub.Underlying().(*types.Struct); isStruct {
				if subLeaves := codecLeaves(sub, local, path); len(subLeaves) > 0 {
					out = append(out, subLeaves...)
					continue
				}
			}
		}
		out = append(out, path)
	}
	return out
}

// pathCovered reports whether leaf is covered by any recorded access path:
// exact, or an ancestor (accessing p.Meta covers Meta.MsgID).
func pathCovered(paths map[string]bool, leaf string) bool {
	if paths[leaf] {
		return true
	}
	for i := len(leaf) - 1; i > 0; i-- {
		if leaf[i] == '.' && paths[leaf[:i]] {
			return true
		}
	}
	return false
}

// paramFieldPaths collects the dotted field paths rooted at prm that decl's
// body accesses. With writesOnly, only assignment targets and &-escapes
// count (the decode half must store, not merely mention); otherwise any
// selector counts (the encode half reads).
func (p *Pass) paramFieldPaths(decl *ast.FuncDecl, prm *types.Var, writesOnly bool) map[string]bool {
	paths := map[string]bool{}
	record := func(e ast.Expr) {
		if path, ok := p.fieldPath(e, prm); ok {
			paths[path] = true
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if writesOnly {
				for _, lhs := range n.Lhs {
					record(stripElem(lhs))
				}
			}
		case *ast.UnaryExpr:
			// &p.F hands the field to a sub-codec by pointer: that is both a
			// read (encode side serializes through it) and a write (decode
			// side fills it).
			if n.Op.String() == "&" {
				record(stripElem(n.X))
			}
		case *ast.SelectorExpr:
			if !writesOnly {
				// Record the maximal chain only: p.Meta.MsgID covers exactly
				// that leaf, not all of Meta. On an unresolvable chain (method
				// value, package qualifier) keep descending — a rooted field
				// may sit underneath.
				if path, ok := p.fieldPath(n, prm); ok {
					paths[path] = true
					return false
				}
			}
		}
		return true
	})
	return paths
}

// fieldPath resolves e to a dotted field path rooted at the parameter root,
// following only field selections (p.Meta.MsgID -> "Meta.MsgID").
func (p *Pass) fieldPath(e ast.Expr, root *types.Var) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		// The bare parameter: an empty path (whole-struct access).
		if p.Pkg.Info.Uses[e] == root {
			return "", true
		}
	case *ast.ParenExpr:
		return p.fieldPath(e.X, root)
	case *ast.SelectorExpr:
		sel, ok := p.Pkg.Info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			return "", false
		}
		base, ok := p.fieldPath(e.X, root)
		if !ok {
			return "", false
		}
		if base == "" {
			return e.Sel.Name, true
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// stripElem unwraps element/deref syntax so f.Flits[i] and *p resolve to the
// selector underneath.
func stripElem(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return e
		}
	}
}

// typedFieldAccesses collects the field names of elem that decl's body
// touches through ANY expression of that type — range variables, indexed
// element pointers, locals. With writesOnly, assignment targets, &-escapes,
// and composite-literal fields count; otherwise any selector does.
func (p *Pass) typedFieldAccesses(decl *ast.FuncDecl, elem *types.Named, writesOnly bool) map[string]bool {
	touched := map[string]bool{}
	isElem := func(e ast.Expr) bool {
		t := p.Pkg.Info.TypeOf(e)
		if t == nil {
			return false
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && origin(named) == origin(elem)
	}
	recordSel := func(e ast.Expr) {
		sel, ok := stripElem(e).(*ast.SelectorExpr)
		if !ok || !isElem(sel.X) {
			return
		}
		if s, ok := p.Pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			touched[sel.Sel.Name] = true
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if writesOnly {
				for _, lhs := range n.Lhs {
					recordSel(lhs)
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				recordSel(n.X)
			}
		case *ast.SelectorExpr:
			if !writesOnly {
				recordSel(n)
			}
		case *ast.CompositeLit:
			if writesOnly && isElem(n) {
				st := elem.Underlying().(*types.Struct)
				if len(n.Elts) > 0 && len(n.Elts) == st.NumFields() {
					if _, keyed := n.Elts[0].(*ast.KeyValueExpr); !keyed {
						for i := 0; i < st.NumFields(); i++ {
							touched[st.Field(i).Name()] = true
						}
						return true
					}
				}
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							touched[id.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	return touched
}
