package packet

// Pool is a per-node packet free-list: the NIFDY unit recycles consumed
// acks and dropped duplicates through it, and the processor recycles
// retired deliveries, so the saturated data path allocates no packets in
// steady state.
//
// A packet crosses node boundaries between birth and death, so the pool a
// packet returns to is usually not the one it came from; that is fine — a
// free-list needs no affinity, and under the synthetic workloads every node
// both sends and receives, so pools stay balanced. Pools are not
// synchronized: all components of one simulation share an engine shard (the
// production configuration), which serializes every Get/Put.
//
// Get performs a full field reset, so a recycled packet is indistinguishable
// from a fresh zero-value one (Dialog at NoDialog, everything else zero).
// Skipping the reset would be a correctness trap: stale dialog, sequence, or
// grant bits from the packet's previous life would silently corrupt the
// protocol. The reset happens on Get rather than Put so that even packets
// that entered the pool by unusual paths come out clean.
//
// The zero value is ready to use. All methods are nil-safe: a nil *Pool
// degrades to plain allocation with no recycling, so pooling stays optional
// at every call site.
type Pool struct {
	free []*Packet

	gets, puts, news int64
}

// blank is the canonical freshly-allocated packet state.
var blank = Packet{Dialog: NoDialog}

// Get returns a fully reset packet, recycling a pooled one when available.
//lint:allow(hotalloc) pool warm-up: new packets are minted only while the free-list is empty; steady state recycles
func (pl *Pool) Get() *Packet {
	if pl == nil {
		p := new(Packet)
		p.Dialog = NoDialog
		return p
	}
	pl.gets++
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		*p = blank
		return p
	}
	pl.news++
	p := new(Packet)
	p.Dialog = NoDialog
	return p
}

// Put returns p to the free-list. The caller must hold the last live
// reference: no flit of p may remain in any link, buffer, or queue, and no
// retained copy may be consulted through this pointer later. Put(nil) is a
// no-op.
//lint:allow(hotalloc) amortized free-list growth up to the simulation's live-packet high-water mark
func (pl *Pool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	pl.puts++
	pl.free = append(pl.free, p)
}

// ForEachFree calls f on every pooled (dead) packet. The invariant monitors
// use it for recycle-safety audits: no pooled pointer may also be reachable
// from a live queue, buffer, or in-flight flit. Nil-safe like every method.
func (pl *Pool) ForEachFree(f func(*Packet)) {
	if pl == nil {
		return
	}
	for _, p := range pl.free {
		f(p)
	}
}

// Size reports the packets currently pooled.
func (pl *Pool) Size() int {
	if pl == nil {
		return 0
	}
	return len(pl.free)
}

// Stats reports lifetime counters: Get calls, Put calls, and Gets that had
// to allocate because the pool was empty (recycling hit rate = 1 - news/gets).
func (pl *Pool) Stats() (gets, puts, news int64) {
	if pl == nil {
		return 0, 0, 0
	}
	return pl.gets, pl.puts, pl.news
}
