package packet

import (
	"reflect"
	"testing"
)

// dirtyings each set one field (or a related group) to a non-fresh value; a
// packet returned to the pool and reissued must come back indistinguishable
// from a fresh one no matter which of them its previous life exercised.
// Stale dialog/seq/grant bits in particular would corrupt the NIFDY
// protocol silently.
var dirtyings = []struct {
	name  string
	dirty func(p *Packet)
}{
	{"identity", func(p *Packet) { p.ID = 42; p.Src = 3; p.Dst = 9; p.Words = 8 }},
	{"kind-ack", func(p *Packet) { p.Kind = Ack }},
	{"class-reply", func(p *Packet) { p.Class = Reply }},
	{"bulk-bits", func(p *Packet) { p.BulkReq = true; p.BulkExit = true }},
	{"noack", func(p *Packet) { p.NoAck = true }},
	{"dup-retransmit", func(p *Packet) { p.Dup = true; p.Retransmit = true }},
	{"ecn-cnp", func(p *Packet) { p.ECN = true; p.CNP = true }},
	{"dialog-seq", func(p *Packet) { p.Dialog = 2; p.Seq = 17 }},
	{"grant-granted", func(p *Packet) { p.Grant = Granted }},
	{"grant-rejected", func(p *Packet) { p.Grant = Rejected }},
	{"bulkack-cum", func(p *Packet) { p.BulkAck = true; p.CumSeq = 31 }},
	{"piggyback", func(p *Packet) { p.PiggyAck = true }},
	{"terminate", func(p *Packet) { p.Terminate = true }},
	{"meta", func(p *Packet) {
		p.Meta = Meta{MsgID: 7, Index: 2, Total: 5, Tag: 1, Value: 99}
	}},
	{"timestamps", func(p *Packet) {
		p.CreatedAt = 100
		p.InjectedAt = 140
		p.DeliveredAt = 900
		p.AcceptedAt = 960
	}},
	{"everything", func(p *Packet) {
		*p = Packet{ID: 1, Src: 1, Dst: 2, Kind: Ack, Class: Reply, Words: 1,
			BulkReq: true, BulkExit: true, NoAck: true, Dup: true, Retransmit: true,
			ECN: true, CNP: true,
			Dialog: 3, Seq: 4, Grant: Granted, BulkAck: true, CumSeq: 5,
			PiggyAck: true, Terminate: true,
			Meta:      Meta{MsgID: 6, Index: 7, Total: 8, Tag: 9, Value: 10},
			CreatedAt: 11, InjectedAt: 12, DeliveredAt: 13, AcceptedAt: 14}
	}},
}

// TestPoolRecycledPacketIsFresh is the pool-recycling correctness test: for
// every way a packet's previous life can dirty it, Put+Get must yield the
// canonical fresh state.
func TestPoolRecycledPacketIsFresh(t *testing.T) {
	fresh := Packet{Dialog: NoDialog}
	for _, tc := range dirtyings {
		t.Run(tc.name, func(t *testing.T) {
			var pl Pool
			p := pl.Get()
			if !reflect.DeepEqual(*p, fresh) {
				t.Fatalf("first Get not fresh: %+v", *p)
			}
			tc.dirty(p)
			pl.Put(p)
			q := pl.Get()
			if q != p {
				t.Fatalf("pool did not recycle (got a different pointer)")
			}
			if !reflect.DeepEqual(*q, fresh) {
				t.Errorf("recycled packet not fresh after %q:\n got %+v\nwant %+v",
					tc.name, *q, fresh)
			}
		})
	}
}

// TestPoolDirtyingsCoverAllFields guards the table above against rot: if a
// field is added to Packet that no dirtying touches, this fails, forcing the
// table (and the reset) to be revisited.
func TestPoolDirtyingsCoverAllFields(t *testing.T) {
	fresh := Packet{Dialog: NoDialog}
	touched := map[string]bool{}
	for _, tc := range dirtyings {
		p := fresh
		tc.dirty(&p)
		pv, fv := reflect.ValueOf(p), reflect.ValueOf(fresh)
		for i := 0; i < pv.NumField(); i++ {
			if !reflect.DeepEqual(pv.Field(i).Interface(), fv.Field(i).Interface()) {
				touched[pv.Type().Field(i).Name] = true
			}
		}
	}
	typ := reflect.TypeOf(fresh)
	for i := 0; i < typ.NumField(); i++ {
		if !touched[typ.Field(i).Name] {
			t.Errorf("no dirtying covers field %s; extend the table", typ.Field(i).Name)
		}
	}
}

func TestPoolNilSafe(t *testing.T) {
	var pl *Pool
	p := pl.Get()
	if p == nil || p.Dialog != NoDialog {
		t.Fatalf("nil pool Get returned %+v", p)
	}
	pl.Put(p) // must not panic
	if pl.Size() != 0 {
		t.Fatal("nil pool has a size")
	}
}

func TestPoolLIFOAndStats(t *testing.T) {
	var pl Pool
	a, b := pl.Get(), pl.Get()
	pl.Put(a)
	pl.Put(b)
	if got := pl.Get(); got != b {
		t.Fatal("pool is not LIFO")
	}
	if got := pl.Get(); got != a {
		t.Fatal("second Get did not return the older entry")
	}
	gets, puts, news := pl.Stats()
	if gets != 4 || puts != 2 || news != 2 {
		t.Fatalf("stats = %d,%d,%d; want 4,2,2", gets, puts, news)
	}
}

func TestPoolPutNil(t *testing.T) {
	var pl Pool
	pl.Put(nil)
	if pl.Size() != 0 {
		t.Fatal("Put(nil) pooled something")
	}
}
