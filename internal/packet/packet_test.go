package packet

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFlitsEqualsWords(t *testing.T) {
	p := &Packet{Words: 8}
	if p.Flits() != 8 {
		t.Fatalf("Flits = %d", p.Flits())
	}
	if p.Bytes() != 32 {
		t.Fatalf("Bytes = %d", p.Bytes())
	}
}

func TestHeadTail(t *testing.T) {
	p := &Packet{Words: 3}
	cases := []struct {
		idx        int
		head, tail bool
	}{{0, true, false}, {1, false, false}, {2, false, true}}
	for _, c := range cases {
		f := Flit{Pkt: p, Index: c.idx}
		if f.Head() != c.head || f.Tail() != c.tail {
			t.Errorf("flit %d: head=%v tail=%v", c.idx, f.Head(), f.Tail())
		}
	}
}

func TestSingleFlitIsHeadAndTail(t *testing.T) {
	p := &Packet{Words: 1}
	f := Flit{Pkt: p, Index: 0}
	if !f.Head() || !f.Tail() {
		t.Fatal("single-flit packet must be both head and tail")
	}
}

func TestValidateAcceptsGoodPackets(t *testing.T) {
	good := []*Packet{
		{Src: 0, Dst: 63, Words: 8, Dialog: NoDialog},
		{Src: 5, Dst: 5, Words: 6, Dialog: NoDialog, Class: Request},
		{Src: 1, Dst: 2, Words: 1, Kind: Ack, Class: Reply, Dialog: NoDialog},
		{Src: 1, Dst: 2, Words: 6, Dialog: 3, Seq: 7},
	}
	for i, p := range good {
		if err := p.Validate(64); err != nil {
			t.Errorf("packet %d: %v", i, err)
		}
	}
}

func TestValidateRejectsBadPackets(t *testing.T) {
	bad := []*Packet{
		{Src: -1, Dst: 0, Words: 8, Dialog: NoDialog},
		{Src: 0, Dst: 64, Words: 8, Dialog: NoDialog},
		{Src: 0, Dst: 0, Words: 0, Dialog: NoDialog},
		{Src: 0, Dst: 0, Words: 4, Kind: Ack, Class: Reply, Dialog: NoDialog},
		{Src: 0, Dst: 0, Words: 1, Kind: Ack, Class: Request, Dialog: NoDialog},
		{Src: 0, Dst: 0, Words: 8, Dialog: -5},
	}
	for i, p := range bad {
		if err := p.Validate(64); err == nil {
			t.Errorf("packet %d: Validate accepted %v", i, p)
		}
	}
}

func TestInDialog(t *testing.T) {
	if (&Packet{Dialog: NoDialog}).InDialog() {
		t.Fatal("NoDialog packet reports InDialog")
	}
	if !(&Packet{Dialog: 0}).InDialog() {
		t.Fatal("dialog-0 packet reports no dialog")
	}
}

func TestStringForms(t *testing.T) {
	p := &Packet{ID: 9, Src: 1, Dst: 2, Words: 8, Dialog: 1, Seq: 3, BulkExit: true}
	s := p.String()
	for _, want := range []string{"data#9", "1->2", "dlg=1", "seq=3", "bulkexit"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	a := &Packet{ID: 1, Kind: Ack, Words: 1, Grant: Granted, Dialog: 0}
	if !strings.Contains(a.String(), "grant=granted") {
		t.Errorf("ack String %q missing grant", a.String())
	}
}

func TestKindClassGrantStrings(t *testing.T) {
	if Data.String() != "data" || Ack.String() != "ack" {
		t.Fatal("Kind strings")
	}
	if Request.String() != "request" || Reply.String() != "reply" {
		t.Fatal("Class strings")
	}
	if Granted.String() != "granted" || Rejected.String() != "rejected" || GrantNone.String() != "none" {
		t.Fatal("GrantKind strings")
	}
	if Kind(9).String() == "" || Class(9).String() == "" || GrantKind(9).String() == "" {
		t.Fatal("unknown enum values must stringify")
	}
}

func TestIDSourceUnique(t *testing.T) {
	var s IDSource
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := s.Next()
		if id == 0 {
			t.Fatal("IDSource returned zero (reserved for unset)")
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestFlitIndexProperty(t *testing.T) {
	// Property: exactly one head and one tail among a packet's flits.
	f := func(words uint8) bool {
		w := int(words%32) + 1
		p := &Packet{Words: w}
		heads, tails := 0, 0
		for i := 0; i < p.Flits(); i++ {
			fl := Flit{Pkt: p, Index: i}
			if fl.Head() {
				heads++
			}
			if fl.Tail() {
				tails++
			}
		}
		return heads == 1 && tails == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
