// Package packet defines the unit of data exchanged across the simulated
// networks: packets composed of one-word flits, carrying the NIFDY header
// bits (bulk request/exit, dialog and sequence numbers, grants) alongside a
// small application-visible payload descriptor.
//
// Sizes follow the paper: synthetic traffic uses 8-word packets including
// header (§3); the CMAM/Split-C workloads (C-shift, EM3D, radix sort) use
// 6-word packets; NIFDY acknowledgments are single-flit header-only packets
// that share the fabric with data (§2).
package packet

import (
	"fmt"

	"nifdy/internal/sim"
)

// Kind distinguishes data packets from NIFDY acknowledgments.
type Kind uint8

const (
	// Data is an application (scalar or bulk) packet.
	Data Kind = iota
	// Ack is a NIFDY acknowledgment, consumed by the receiving NIFDY unit.
	Ack
)

func (k Kind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Class selects one of the two logically independent networks every
// topology provides to break fetch deadlock (§3).
type Class uint8

const (
	// Request is the network used by application request traffic.
	Request Class = iota
	// Reply is the network used by application replies and NIFDY acks.
	Reply
	// NumClasses is the number of logical networks.
	NumClasses = 2
)

func (c Class) String() string {
	switch c {
	case Request:
		return "request"
	case Reply:
		return "reply"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// GrantKind encodes the bulk-dialog response carried in an ack (§2.1.2).
type GrantKind uint8

const (
	// GrantNone: the ack carries no bulk-dialog information.
	GrantNone GrantKind = iota
	// Granted: the receiver granted a bulk dialog; Packet.Dialog holds its
	// number.
	Granted
	// Rejected: the receiver is at its dialog limit D; the sender continues
	// in scalar mode and may re-request.
	Rejected
)

func (g GrantKind) String() string {
	switch g {
	case GrantNone:
		return "none"
	case Granted:
		return "granted"
	case Rejected:
		return "rejected"
	default:
		return fmt.Sprintf("GrantKind(%d)", uint8(g))
	}
}

// NoDialog marks a packet outside any bulk dialog.
const NoDialog = -1

// WordBytes is the flit size: one 32-bit word (§2.4.3).
const WordBytes = 4

// Meta is the application-visible payload descriptor. Simulated packets do
// not carry real data; Meta carries just enough for workloads to reconstruct
// transfers and for the harness to audit delivery.
type Meta struct {
	// MsgID identifies the multi-packet message this packet belongs to.
	MsgID uint64
	// Index is the packet's position within its message (0-based).
	Index int
	// Total is the number of packets in the message.
	Total int
	// Tag is a workload-defined handler identifier.
	Tag int
	// Value is a workload-defined scalar (e.g. a radix-sort key).
	Value uint64
}

// Packet is a simulated network packet. Fields are set by the sending NIC
// and workloads; timing fields are stamped as the packet moves.
type Packet struct {
	// ID is unique within a simulation, for auditing.
	ID uint64
	// Src and Dst are node numbers. Every packet carries its source in the
	// header so the destination can return an ack (§2.1.1).
	Src, Dst int
	// Kind is Data or Ack.
	Kind Kind
	// Class selects the request or reply logical network.
	Class Class
	// Words is the total packet length in 32-bit words, header included.
	Words int

	// BulkReq is the bulk-request bit: the sender asks the receiver to grant
	// a bulk dialog (§2.1.2).
	BulkReq bool
	// BulkExit marks the last packet of a bulk dialog, freeing the dialog.
	BulkExit bool
	// NoAck marks a packet that bypasses the NIFDY protocol entirely (§6.1
	// extension): sent immediately, never acknowledged.
	NoAck bool
	// ECN is the congestion-experienced mark: set by a router forwarding the
	// packet's head flit through a congested egress queue (router.ECNConfig),
	// echoed by the destination NIC as a CNP so a DCQCN-style sender can
	// reduce its rate.
	ECN bool
	// CNP marks an ack packet as a congestion notification (the echo of an
	// ECN mark) for the DCQCN rate-control NIC.
	CNP bool
	// Dup is the duplicate-detection bit used by the retransmission
	// extension for lossy networks (§6.2). It alternates per (sender,
	// receiver, slot) so the receiver can discard retransmitted copies of a
	// packet it already accepted.
	Dup bool
	// Retransmit marks a retransmitted copy (stats only).
	Retransmit bool

	// Dialog is the bulk dialog number for bulk data packets, or the granted
	// dialog number in an ack when Grant == Granted; NoDialog otherwise.
	Dialog int
	// Seq is the sliding-window sequence number of a bulk data packet
	// (meaningful only when Dialog != NoDialog).
	Seq int

	// Grant is the bulk-dialog response carried by an ack.
	Grant GrantKind
	// BulkAck marks an ack as a bulk-dialog cumulative (sliding window)
	// acknowledgment rather than a scalar per-packet acknowledgment.
	BulkAck bool
	// CumSeq is, in a bulk ack, the cumulative sequence number: all packets
	// with Seq <= CumSeq have been received in order.
	CumSeq int
	// PiggyAck marks a data packet that doubles as an ack for the reverse
	// direction (§6.1 extension).
	PiggyAck bool
	// Terminate marks an ack that tears down the sender's bulk dialog from
	// the receiver side (§2.1.2: "A receiver can also terminate a bulk
	// dialog in which case the transmission continues in scalar mode").
	// CumSeq < 0 on a terminate ack carries no acknowledgment information.
	Terminate bool

	// Meta is the application payload descriptor.
	Meta Meta

	// CreatedAt is when the workload handed the packet to the NIC;
	// InjectedAt when the first flit entered the fabric; DeliveredAt when
	// the packet reached the destination NIC; AcceptedAt when the processor
	// consumed it.
	CreatedAt, InjectedAt, DeliveredAt, AcceptedAt sim.Cycle
}

// Flits returns the number of one-word flits the packet occupies.
func (p *Packet) Flits() int { return p.Words }

// Bytes returns the packet length in bytes.
func (p *Packet) Bytes() int { return p.Words * WordBytes }

// InDialog reports whether the packet travels within a bulk dialog.
func (p *Packet) InDialog() bool { return p.Dialog != NoDialog }

// Validate checks internal consistency; workloads call it in tests.
func (p *Packet) Validate(numNodes int) error {
	if p.Src < 0 || p.Src >= numNodes {
		return fmt.Errorf("packet %d: src %d out of range [0,%d)", p.ID, p.Src, numNodes)
	}
	if p.Dst < 0 || p.Dst >= numNodes {
		return fmt.Errorf("packet %d: dst %d out of range [0,%d)", p.ID, p.Dst, numNodes)
	}
	if p.Words < 1 {
		return fmt.Errorf("packet %d: %d words", p.ID, p.Words)
	}
	if p.Kind == Ack && p.Words != 1 {
		return fmt.Errorf("packet %d: ack with %d words", p.ID, p.Words)
	}
	if p.Kind == Ack && p.Class != Reply {
		return fmt.Errorf("packet %d: ack on %v network", p.ID, p.Class)
	}
	if p.Dialog != NoDialog && p.Dialog < 0 {
		return fmt.Errorf("packet %d: dialog %d", p.ID, p.Dialog)
	}
	return nil
}

// String renders a compact debugging form.
func (p *Packet) String() string {
	s := fmt.Sprintf("%v#%d %d->%d w=%d", p.Kind, p.ID, p.Src, p.Dst, p.Words)
	if p.InDialog() {
		s += fmt.Sprintf(" dlg=%d seq=%d", p.Dialog, p.Seq)
	}
	if p.Kind == Ack && p.Grant != GrantNone {
		s += fmt.Sprintf(" grant=%v", p.Grant)
	}
	if p.BulkReq {
		s += " bulkreq"
	}
	if p.BulkExit {
		s += " bulkexit"
	}
	return s
}

// Flit is one word of a packet in flight. Head and tail flits delimit
// wormhole progress; the packet pointer carries the header with every flit
// (simulator convenience — physically only the head flit holds the header).
type Flit struct {
	Pkt *Packet
	// Index is the flit's position in the packet: 0 .. Pkt.Flits()-1.
	Index int
	// VC is the virtual channel assigned on the current hop.
	VC int
}

// Head reports whether this is the packet's head flit.
func (f Flit) Head() bool { return f.Index == 0 }

// Tail reports whether this is the packet's last flit.
func (f Flit) Tail() bool { return f.Index == f.Pkt.Flits()-1 }

// IDSource hands out unique packet IDs within one simulation.
type IDSource struct{ next uint64 }

// Next returns a fresh ID.
func (s *IDSource) Next() uint64 {
	s.next++
	return s.next
}

// NewNodeIDs returns an IDSource drawing from node's private ID space (the
// node number occupies the high bits). Per-node sources never collide with
// each other, make ID assignment independent of cross-node event order, and
// keep allocation race-free when nodes tick in different engine shards.
func NewNodeIDs(node int) *IDSource {
	return &IDSource{next: uint64(node) << 40}
}
