package core

import (
	"testing"

	"nifdy/internal/check"
	"nifdy/internal/nic"
	"nifdy/internal/packet"
	"nifdy/internal/router"
	"nifdy/internal/sim"
)

// faultPort wraps a node's fabric interface with targeted, deterministic
// faults for the §6.2 retransmission tests: swallow an outgoing packet (loss
// on the wire), park one for a fixed delay (a slow path that makes an ack
// cross its own resend in flight), or re-deliver an arrival once (a
// duplicate the fabric manufactured). Unlike topo.IfaceOptions.DropProb —
// which rolls every flit — faultPort hits one chosen packet, so each test
// exercises exactly one recovery path.
type faultPort struct {
	router.Port
	now sim.Cycle

	swallow func(*packet.Packet) bool      // drop this outgoing packet on the wire
	holdFor func(*packet.Packet) sim.Cycle // park this outgoing packet for N cycles
	dup     func(*packet.Packet) bool      // re-deliver this arrival once

	held    *packet.Packet
	release sim.Cycle
	dupQ    []*packet.Packet
}

func (f *faultPort) StartSend(now sim.Cycle, p *packet.Packet) {
	if f.swallow != nil && f.swallow(p) {
		return // vanished on the wire; no flit ever serialized
	}
	if f.holdFor != nil {
		if d := f.holdFor(p); d > 0 {
			f.held, f.release = p, now+d
			return
		}
	}
	f.Port.StartSend(now, p)
}

// CanAccept refuses the held packet's class so later packets cannot overtake
// the parked one — the fault delays, it does not reorder.
func (f *faultPort) CanAccept(c packet.Class) bool {
	if f.held != nil && f.held.Class == c {
		return false
	}
	return f.Port.CanAccept(c)
}

func (f *faultPort) Pump(now sim.Cycle) bool {
	f.now = now
	prog := false
	if f.held != nil && now >= f.release && f.Port.CanAccept(f.held.Class) {
		f.Port.StartSend(now, f.held)
		f.held = nil
		prog = true
	}
	return f.Port.Pump(now) || prog
}

func (f *faultPort) Deliver(now sim.Cycle, pred func(*packet.Packet) bool) (*packet.Packet, bool) {
	for i, d := range f.dupQ {
		if pred(d) {
			f.dupQ = append(f.dupQ[:i], f.dupQ[i+1:]...)
			return d, true
		}
	}
	p, ok := f.Port.Deliver(now, pred)
	if ok && f.dup != nil && f.dup(p) {
		c := *p
		f.dupQ = append(f.dupQ, &c)
	}
	return p, ok
}

// The sleep bounds must see the parked packet and the fabricated duplicates,
// or the NIC could sleep past the release cycle and stall the run.
func (f *faultPort) Quiet() bool {
	return f.held == nil && len(f.dupQ) == 0 && f.Port.Quiet()
}

func (f *faultPort) NextArrivalAt() sim.Cycle {
	at := f.Port.NextArrivalAt()
	if f.held != nil && f.release < at {
		at = f.release
	}
	if len(f.dupQ) > 0 && f.now+1 < at {
		at = f.now + 1
	}
	return at
}

func (f *faultPort) BlockedBound(now sim.Cycle) sim.Cycle {
	b := f.Port.BlockedBound(now)
	if f.held != nil && f.release < b {
		b = f.release
	}
	return b
}

// once fires its match at most one time.
func once(match func(*packet.Packet) bool) func(*packet.Packet) bool {
	fired := false
	return func(p *packet.Packet) bool {
		if fired || !match(p) {
			return false
		}
		fired = true
		return true
	}
}

// holdOnce parks the first matching packet for d cycles.
func holdOnce(match func(*packet.Packet) bool, d sim.Cycle) func(*packet.Packet) sim.Cycle {
	m := once(match)
	return func(p *packet.Packet) sim.Cycle {
		if m(p) {
			return d
		}
		return 0
	}
}

// isData matches data packets; acks are matched by the package's own isAck.
func isData(p *packet.Packet) bool { return p.Kind == packet.Data }

// TestRetransmitFaultMatrix drives the §6.2 recovery machinery through each
// single-fault scenario with the no-loss/no-duplicate sequence accounting
// armed (ID-keyed, so a retransmitted copy counts as the same packet). Every
// case must end with all packets accepted exactly once, in per-pair order,
// zero monitor violations, and the retransmit/duplicate counters showing the
// recovery actually ran — not that the fault silently missed.
func TestRetransmitFaultMatrix(t *testing.T) {
	const (
		src, dst    = 0, 15
		npkts       = 4
		retxTimeout = sim.Cycle(600)
	)
	cases := []struct {
		name string
		arm  func(sp, dp *faultPort)
		// wantRetx: the sender's timer must fire; wantDup: the receiver must
		// see (and discard) a duplicate. Both are also asserted as exact
		// zeroes when unset: a fault that provokes no recovery, or recovery
		// where none should occur, is a test bug.
		wantRetx, wantDup bool
	}{
		{
			// Data lost on the wire: the receiver never sees the original, so
			// the resend is accepted as a first delivery — retransmits, no
			// duplicates.
			name:     "drop data",
			arm:      func(sp, dp *faultPort) { sp.swallow = once(isData) },
			wantRetx: true,
		},
		{
			// Ack lost: the data arrived and was accepted, so the timeout
			// resend reaches an already-acked slot — the receiver discards it
			// by the dup bit and re-acks (§6.2).
			name:     "drop ack",
			arm:      func(sp, dp *faultPort) { dp.swallow = once(isAck) },
			wantRetx: true,
			wantDup:  true,
		},
		{
			// The fabric duplicates a delivery outright: no timer fires, the
			// dup bit alone must reject the copy.
			name:    "duplicate delivery",
			arm:     func(sp, dp *faultPort) { dp.dup = once(isData) },
			wantDup: true,
		},
		{
			// Ack parked far past the timer: multiple resends go out and are
			// all discarded before the original ack finally lands.
			name:     "timeout before ack",
			arm:      func(sp, dp *faultPort) { dp.holdFor = holdOnce(isAck, 3*retxTimeout) },
			wantRetx: true,
			wantDup:  true,
		},
		{
			// Ack parked just past the timer: the resend and the late ack
			// cross in flight. The sender clears the slot off the late ack
			// while its resend is still traveling; the resend's re-ack then
			// hits a slot that no longer exists and must be ignored.
			name:     "resend collides with late ack",
			arm:      func(sp, dp *faultPort) { dp.holdFor = holdOnce(isAck, retxTimeout+40) },
			wantRetx: true,
			wantDup:  true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.New()
			net := smallMesh(t)
			var got []check.Violation
			ck := check.New(eng, net, check.Options{
				Interval: 8, Sequence: true, ByID: true, Local: true,
				OnViolation: func(v check.Violation) {
					if len(got) < 8 {
						got = append(got, v)
					}
				},
			})
			hooks := ck.HooksFor(0)
			ports := map[int]*faultPort{}
			w := newWorldOn(t, eng, net, func(n int, ifc router.Port) nic.NIC {
				fp := &faultPort{Port: ifc}
				ports[n] = fp
				u := New(Config{
					Node: n, Retransmit: true, RetransmitTimeout: retxTimeout,
					Hooks: hooks,
				}, fp)
				ck.AddNIC(u)
				return u
			})
			tc.arm(ports[src], ports[dst])
			ck.Install()
			w.msg(src, dst, npkts, 8, false)
			w.run(200_000)
			ck.Finish(eng.Now())
			w.checkPerPairOrder()
			for _, v := range got {
				t.Errorf("%s", v)
			}
			if ck.Sweeps() == 0 {
				t.Fatal("checker never swept")
			}
			retx := w.nics[src].Stats().Retransmits
			dups := w.nics[dst].Stats().Duplicates
			if tc.wantRetx != (retx > 0) {
				t.Errorf("sender retransmits = %d, want >0 == %v", retx, tc.wantRetx)
			}
			if tc.wantDup != (dups > 0) {
				t.Errorf("receiver duplicates = %d, want >0 == %v", dups, tc.wantDup)
			}
			if n := len(w.recvd[dst]); n != npkts {
				t.Errorf("receiver accepted %d packets, want %d", n, npkts)
			}
		})
	}
}
