package core

import (
	"testing"
	"testing/quick"

	"nifdy/internal/nic"
	"nifdy/internal/packet"
	"nifdy/internal/rng"
	"nifdy/internal/router"
	"nifdy/internal/sim"
	"nifdy/internal/topo"
	"nifdy/internal/topo/fattree"
	"nifdy/internal/topo/mesh"
)

// world drives NIFDY units over a real fabric with simple processor pumps:
// each node hands queued packets to its NIC in order and accepts arrivals
// every cycle (unless paused, to model unresponsive receivers).
type world struct {
	t    *testing.T
	eng  *sim.Engine
	net  topo.Network
	nics []nic.NIC
	ids  packet.IDSource

	sendQ  [][]*packet.Packet
	nextSQ []int
	recvd  [][]*packet.Packet
	paused []bool
	msgSeq uint64
}

func newWorld(t *testing.T, net topo.Network, mk func(n int, ifc router.Port) nic.NIC) *world {
	return newWorldOn(t, sim.New(), net, mk)
}

// newWorldOn is newWorld on a caller-supplied engine, for tests that must
// hand the engine to other machinery (e.g. a checker) before the NICs exist.
func newWorldOn(t *testing.T, eng *sim.Engine, net topo.Network, mk func(n int, ifc router.Port) nic.NIC) *world {
	w := &world{t: t, eng: eng, net: net}
	net.RegisterRouters(w.eng)
	n := net.Nodes()
	w.sendQ = make([][]*packet.Packet, n)
	w.nextSQ = make([]int, n)
	w.recvd = make([][]*packet.Packet, n)
	w.paused = make([]bool, n)
	for i := 0; i < n; i++ {
		w.nics = append(w.nics, mk(i, net.Iface(i)))
		w.eng.Register(w.nics[i])
	}
	return w
}

func nifdyWorld(t *testing.T, net topo.Network, cfg Config) *world {
	w := newWorld(t, net, func(n int, ifc router.Port) nic.NIC {
		c := cfg
		c.Node = n
		return New(c, ifc)
	})
	return w
}

// msg enqueues an npkts-packet message. When bulk is true the software layer
// sets the bulk-request bit on every packet except the last (§2.2; the last
// packet's missing request bit tells the NIFDY unit to set bulk-exit).
func (w *world) msg(src, dst, npkts, words int, bulk bool) []*packet.Packet {
	w.msgSeq++
	var ps []*packet.Packet
	for i := 0; i < npkts; i++ {
		p := &packet.Packet{
			ID: w.ids.Next(), Src: src, Dst: dst, Words: words,
			Class: packet.Request, Dialog: packet.NoDialog,
			BulkReq: bulk && i < npkts-1,
			Meta:    packet.Meta{MsgID: w.msgSeq, Index: i, Total: npkts},
		}
		ps = append(ps, p)
		w.sendQ[src] = append(w.sendQ[src], p)
	}
	return ps
}

func (w *world) pump() {
	now := w.eng.Now()
	for n := range w.nics {
		if i := w.nextSQ[n]; i < len(w.sendQ[n]) {
			if w.nics[n].TrySend(now, w.sendQ[n][i]) {
				w.nextSQ[n]++
			}
		}
		if w.paused[n] {
			continue
		}
		if p, ok := w.nics[n].Recv(now); ok {
			if p.Dst != n {
				w.t.Fatalf("node %d accepted packet %v", n, p)
			}
			w.recvd[n] = append(w.recvd[n], p)
		}
	}
}

func (w *world) totalQueued() int {
	total := 0
	for _, q := range w.sendQ {
		total += len(q)
	}
	return total
}

func (w *world) totalRecvd() int {
	total := 0
	for _, r := range w.recvd {
		total += len(r)
	}
	return total
}

// run pumps until every queued packet is accepted or maxCycles pass.
func (w *world) run(maxCycles sim.Cycle) {
	w.t.Helper()
	want := w.totalQueued()
	ok := w.eng.RunUntil(func() bool {
		w.pump()
		return w.totalRecvd() == want
	}, maxCycles)
	if !ok {
		w.t.Fatalf("accepted %d/%d packets in %d cycles", w.totalRecvd(), want, maxCycles)
	}
}

// checkPerPairOrder verifies in-order exactly-once delivery per sender at
// each receiver (packets from one sender arrive in global send order).
func (w *world) checkPerPairOrder() {
	w.t.Helper()
	for n, ps := range w.recvd {
		last := map[int]uint64{}
		seen := map[uint64]bool{}
		for _, p := range ps {
			if seen[p.ID] {
				w.t.Fatalf("node %d: packet %d delivered twice", n, p.ID)
			}
			seen[p.ID] = true
			key := p.Src
			order := p.Meta.MsgID*1000 + uint64(p.Meta.Index)
			if order < last[key] {
				w.t.Fatalf("node %d: out-of-order from %d: %v after order %d", n, key, p, last[key])
			}
			last[key] = order
		}
	}
}

func smallMesh(t *testing.T) topo.Network {
	return mesh.New(mesh.Config{Dims: []int{4, 4}})
}

func reorderingTree(seed uint64) topo.Network {
	return fattree.New(fattree.Config{Seed: seed})
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	c.defaults()
	if c.O != 8 || c.B != 8 || c.D != 1 || c.W != 4 || c.ArrBuf != 2 {
		t.Fatalf("defaults: %+v", c)
	}
	odd := Config{W: 5}
	odd.defaults()
	if odd.W != 6 {
		t.Fatalf("odd W not evened: %d", odd.W)
	}
	noBulk := Config{D: -1}
	noBulk.defaults()
	if noBulk.D != 0 {
		t.Fatalf("D=-1 should disable dialogs, got %d", noBulk.D)
	}
}

func TestTotalBuffers(t *testing.T) {
	if got := (Config{O: 4, B: 4, D: 1, W: 2}).TotalBuffers(); got != 4+2+2 {
		t.Fatalf("TotalBuffers = %d", got)
	}
	if got := (Config{}).TotalBuffers(); got != 8+2+4 {
		t.Fatalf("default TotalBuffers = %d", got)
	}
}

func TestScalarDelivery(t *testing.T) {
	w := nifdyWorld(t, smallMesh(t), Config{})
	w.msg(0, 15, 1, 8, false)
	w.run(10000)
	if len(w.recvd[15]) != 1 {
		t.Fatalf("recvd %d", len(w.recvd[15]))
	}
}

func TestScalarOneOutstandingPerDest(t *testing.T) {
	w := nifdyWorld(t, smallMesh(t), Config{})
	w.msg(0, 15, 20, 8, false)
	sender := w.nics[0].Stats()
	ok := w.eng.RunUntil(func() bool {
		w.pump()
		// Invariant: unacked scalar packets to the single destination <= 1.
		if out := sender.Injected - sender.AcksReceived; out > 1 {
			t.Fatalf("%d unacked scalar packets to one destination", out)
		}
		return w.totalRecvd() == 20
	}, 200000)
	if !ok {
		t.Fatalf("accepted %d/20", w.totalRecvd())
	}
}

func TestOPTBoundsGlobalOutstanding(t *testing.T) {
	w := nifdyWorld(t, smallMesh(t), Config{O: 2, B: 8})
	for d := 1; d <= 6; d++ {
		w.msg(0, d, 5, 8, false)
	}
	sender := w.nics[0].Stats()
	ok := w.eng.RunUntil(func() bool {
		w.pump()
		if out := sender.Injected - sender.AcksReceived; out > 2 {
			t.Fatalf("%d outstanding packets with O=2", out)
		}
		return w.totalRecvd() == 30
	}, 400000)
	if !ok {
		t.Fatalf("accepted %d/30", w.totalRecvd())
	}
}

func TestPoolCapacity(t *testing.T) {
	net := smallMesh(t)
	u := New(Config{B: 3}, net.Iface(0))
	for i := 0; i < 3; i++ {
		p := &packet.Packet{Src: 0, Dst: 1, Words: 8, Dialog: packet.NoDialog}
		if !u.TrySend(0, p) {
			t.Fatalf("TrySend %d rejected under capacity", i)
		}
	}
	if u.TrySend(0, &packet.Packet{Src: 0, Dst: 1, Words: 8, Dialog: packet.NoDialog}) {
		t.Fatal("TrySend accepted past pool capacity")
	}
}

func TestRankAssignment(t *testing.T) {
	net := smallMesh(t)
	u := New(Config{B: 8}, net.Iface(0))
	mk := func(dst int) *packet.Packet {
		return &packet.Packet{Src: 0, Dst: dst, Words: 8, Dialog: packet.NoDialog}
	}
	u.TrySend(0, mk(1))
	u.TrySend(0, mk(1))
	u.TrySend(0, mk(2))
	if u.pool[0].rank != 0 || u.pool[1].rank != 1 || u.pool[2].rank != 0 {
		t.Fatalf("ranks: %d %d %d", u.pool[0].rank, u.pool[1].rank, u.pool[2].rank)
	}
}

func TestPoolInterleavesDestinations(t *testing.T) {
	// Two streams: a long one to a far node queued first, then one to a near
	// node. Without the pool the near stream would wait behind the far one;
	// with rank/eligibility both proceed concurrently.
	w := nifdyWorld(t, smallMesh(t), Config{O: 4, B: 8})
	w.msg(0, 15, 10, 8, false)
	w.msg(0, 1, 10, 8, false)
	var firstFar, firstNear sim.Cycle = -1, -1
	ok := w.eng.RunUntil(func() bool {
		w.pump()
		if firstFar < 0 && len(w.recvd[15]) > 0 {
			firstFar = w.eng.Now()
		}
		if firstNear < 0 && len(w.recvd[1]) > 0 {
			firstNear = w.eng.Now()
		}
		return w.totalRecvd() == 20
	}, 400000)
	if !ok {
		t.Fatalf("accepted %d/20", w.totalRecvd())
	}
	// The near packet must arrive long before the far stream completes —
	// i.e. it was not head-of-line blocked behind all ten far packets.
	if firstNear > firstFar+2000 {
		t.Fatalf("near stream blocked: first near at %d, first far at %d", firstNear, firstFar)
	}
}

func TestInOrderDeliveryOverReorderingNetwork(t *testing.T) {
	// The headline property: on an adaptive fat tree that reorders packets,
	// NIFDY presents them to the processor in transmission order.
	w := nifdyWorld(t, reorderingTree(42), Config{W: 8})
	w.msg(0, 63, 24, 8, true)
	w.msg(5, 63, 24, 8, true)
	w.msg(0, 9, 12, 8, false)
	w.run(1000000)
	w.checkPerPairOrder()
}

func TestBulkDialogGrantAndUse(t *testing.T) {
	w := nifdyWorld(t, reorderingTree(7), Config{W: 4})
	w.msg(0, 63, 20, 8, true)
	w.run(500000)
	s := w.nics[63].Stats()
	if s.BulkGrants != 1 {
		t.Fatalf("grants = %d", s.BulkGrants)
	}
	if w.nics[0].Stats().BulkPackets == 0 {
		t.Fatal("no packets traveled in bulk mode")
	}
	w.checkPerPairOrder()
}

func TestBulkWindowBound(t *testing.T) {
	w := nifdyWorld(t, reorderingTree(8), Config{W: 4})
	w.msg(0, 63, 40, 8, true)
	u := w.nics[0].(*NIFDY)
	ok := w.eng.RunUntil(func() bool {
		w.pump()
		if u.dout.active {
			if out := u.dout.outstanding(); out > 4 {
				t.Fatalf("bulk outstanding %d > W=4", out)
			}
		}
		return w.totalRecvd() == 40
	}, 1000000)
	if !ok {
		t.Fatalf("accepted %d/40", w.totalRecvd())
	}
}

func TestDialogLimitRejectsSecondSender(t *testing.T) {
	w := nifdyWorld(t, reorderingTree(9), Config{D: 1, W: 4})
	w.msg(0, 63, 30, 8, true)
	w.msg(1, 63, 30, 8, true)
	w.run(2000000)
	s := w.nics[63].Stats()
	if s.BulkRejects == 0 {
		t.Fatal("second concurrent requester was never rejected (D=1)")
	}
	w.checkPerPairOrder()
}

func TestDialogFreedAfterExit(t *testing.T) {
	w := nifdyWorld(t, reorderingTree(10), Config{D: 1, W: 4})
	w.msg(0, 63, 10, 8, true)
	w.run(500000)
	// After message 1 finished, a second sender must be able to get the slot.
	w.msg(1, 63, 10, 8, true)
	w.run(500000)
	if g := w.nics[63].Stats().BulkGrants; g != 2 {
		t.Fatalf("grants = %d, want 2 (slot reused after exit)", g)
	}
	w.checkPerPairOrder()
}

func TestDialogsDisabled(t *testing.T) {
	w := nifdyWorld(t, reorderingTree(11), Config{D: -1})
	w.msg(0, 63, 15, 8, true) // requests bulk, but D=0 always rejects
	w.run(1000000)
	s := w.nics[63].Stats()
	if s.BulkGrants != 0 {
		t.Fatalf("grants = %d with dialogs disabled", s.BulkGrants)
	}
	w.checkPerPairOrder()
}

func TestSlowReceiverThrottlesSender(t *testing.T) {
	w := nifdyWorld(t, smallMesh(t), Config{})
	w.msg(0, 15, 10, 8, false)
	w.paused[15] = true
	sender := w.nics[0].Stats()
	for i := 0; i < 20000; i++ {
		w.pump()
		w.eng.Step()
	}
	// With the receiver ignoring the network, at most one scalar packet can
	// be outstanding; nothing is acked, so at most 1 injected... plus the
	// arrivals FIFO soaks nothing because acks come only on processor accept.
	if sender.AcksReceived != 0 {
		t.Fatalf("acks received while receiver paused: %d", sender.AcksReceived)
	}
	if sender.Injected > 1 {
		t.Fatalf("injected %d packets to an unresponsive receiver", sender.Injected)
	}
	w.paused[15] = false
	w.run(400000)
	w.checkPerPairOrder()
}

func TestAckOnArrivalStillDelivers(t *testing.T) {
	w := nifdyWorld(t, smallMesh(t), Config{AckOnArrival: true})
	w.msg(0, 15, 20, 8, false)
	w.msg(3, 12, 20, 8, false)
	w.run(400000)
	w.checkPerPairOrder()
}

func TestAckOnArrivalAllowsDeeperPipelining(t *testing.T) {
	// With ack-on-arrival the receiver's arrivals FIFO absorbs packets even
	// when the processor is paused, so more packets get injected than with
	// ack-on-accept (which injects at most 1).
	w := nifdyWorld(t, smallMesh(t), Config{AckOnArrival: true, ArrBuf: 2})
	w.msg(0, 15, 10, 8, false)
	w.paused[15] = true
	sender := w.nics[0].Stats()
	for i := 0; i < 20000; i++ {
		w.pump()
		w.eng.Step()
	}
	if sender.Injected < 2 {
		t.Fatalf("ack-on-arrival injected only %d", sender.Injected)
	}
	w.paused[15] = false
	w.run(200000)
}

func TestNoAckBypass(t *testing.T) {
	net := smallMesh(t)
	w := nifdyWorld(t, net, Config{})
	for i := 0; i < 10; i++ {
		ps := w.msg(0, 15, 1, 8, false)
		ps[0].NoAck = true
	}
	w.run(100000)
	if got := w.nics[15].Stats().AcksSent; got != 0 {
		t.Fatalf("receiver sent %d acks for no-ack packets", got)
	}
	if got := w.nics[0].Stats().AcksReceived; got != 0 {
		t.Fatalf("sender got %d acks for no-ack packets", got)
	}
}

func TestPiggybackReducesAckPackets(t *testing.T) {
	// Request-reply traffic, the case §6.1 targets: node 15's application
	// generates a reply to node 0 for every request it accepts, so a data
	// packet heading back exists while the request's ack is pending.
	const nreq = 15
	run := func(piggy bool) (acksOnWire, accepted int64) {
		net := smallMesh(t)
		w := nifdyWorld(t, net, Config{Piggyback: piggy})
		for i := 0; i < nreq; i++ {
			w.msg(0, 15, 1, 8, false)
		}
		replies := 0
		got := 0
		ok := w.eng.RunUntil(func() bool {
			now := w.eng.Now()
			if i := w.nextSQ[0]; i < len(w.sendQ[0]) {
				if w.nics[0].TrySend(now, w.sendQ[0][i]) {
					w.nextSQ[0]++
				}
			}
			if p, k := w.nics[15].Recv(now); k {
				// Application reply on the reply network.
				replies++
				r := &packet.Packet{ID: w.ids.Next(), Src: 15, Dst: 0, Words: 8,
					Class: packet.Reply, Dialog: packet.NoDialog,
					Meta: packet.Meta{MsgID: p.Meta.MsgID + 1000, Index: 0, Total: 1}}
				if !w.nics[15].TrySend(now, r) {
					t.Fatal("reply pool full")
				}
			}
			if _, k := w.nics[0].Recv(now); k {
				got++
			}
			return got == nreq
		}, 400000)
		if !ok {
			t.Fatalf("got %d/%d replies", got, nreq)
		}
		// Let straggler acks drain, then count wire packets.
		w.eng.Run(2000)
		inj0, _, _ := net.Iface(0).Stats()
		inj15, _, _ := net.Iface(15).Stats()
		return inj0 + inj15 - 2*nreq, int64(got)
	}
	plain, _ := run(false)
	piggy, _ := run(true)
	if piggy >= plain {
		t.Fatalf("piggybacking did not reduce wire acks: %d vs %d", piggy, plain)
	}
}

func TestRetransmitOverLossyNetwork(t *testing.T) {
	net := mesh.New(mesh.Config{Dims: []int{4, 4},
		Iface: topo.IfaceOptions{DropProb: 0.15, Seed: 77}})
	w := nifdyWorld(t, net, Config{Retransmit: true, RetransmitTimeout: 2000})
	w.msg(0, 15, 20, 8, false)
	w.msg(5, 10, 20, 8, false)
	w.run(4000000)
	w.checkPerPairOrder()
	var retx int64
	for _, n := range w.nics {
		retx += n.Stats().Retransmits
	}
	if retx == 0 {
		t.Fatal("no retransmissions at 15% loss")
	}
}

func TestRetransmitBulkOverLossyNetwork(t *testing.T) {
	net := fattree.New(fattree.Config{Seed: 13,
		Iface: topo.IfaceOptions{DropProb: 0.1, Seed: 78}})
	w := nifdyWorld(t, net, Config{Retransmit: true, RetransmitTimeout: 3000, W: 4})
	w.msg(0, 63, 30, 8, true)
	w.run(8000000)
	w.checkPerPairOrder()
}

func TestPerPacketBulkAcks(t *testing.T) {
	w := nifdyWorld(t, reorderingTree(14), Config{W: 4, PerPacketBulkAcks: true})
	w.msg(0, 63, 20, 8, true)
	w.run(500000)
	w.checkPerPairOrder()
	// Per-packet acks: roughly one ack per bulk packet rather than per W/2.
	if acks := w.nics[63].Stats().AcksSent; acks < 15 {
		t.Fatalf("per-packet bulk acks sent only %d acks for 20 packets", acks)
	}
}

func TestCombinedAcksAreFewer(t *testing.T) {
	count := func(perPacket bool) int64 {
		w := nifdyWorld(t, reorderingTree(15), Config{W: 8, PerPacketBulkAcks: perPacket})
		w.msg(0, 63, 32, 8, true)
		w.run(1000000)
		return w.nics[63].Stats().AcksSent
	}
	combined, per := count(false), count(true)
	if combined >= per {
		t.Fatalf("combined acks (%d) not fewer than per-packet (%d)", combined, per)
	}
}

func TestIdleAfterDrain(t *testing.T) {
	w := nifdyWorld(t, smallMesh(t), Config{})
	w.msg(0, 15, 5, 8, false)
	w.run(100000)
	w.eng.RunUntil(func() bool {
		w.pump()
		for _, n := range w.nics {
			if !n.Idle() {
				return false
			}
		}
		return true
	}, 10000)
	for i, n := range w.nics {
		if !n.Idle() {
			t.Fatalf("nic %d not idle after drain", i)
		}
	}
}

func TestManyToOneConvergecast(t *testing.T) {
	// Every node sends to node 0: the end-point congestion scenario. NIFDY
	// must deliver everything without deadlock and without the fabric
	// wedging.
	w := nifdyWorld(t, smallMesh(t), Config{})
	for s := 1; s < 16; s++ {
		w.msg(s, 0, 8, 8, false)
	}
	w.run(2000000)
	w.checkPerPairOrder()
	if len(w.recvd[0]) != 15*8 {
		t.Fatalf("recvd %d", len(w.recvd[0]))
	}
}

func TestRandomTrafficProperty(t *testing.T) {
	// Property: arbitrary message mixes over a reordering fabric are
	// delivered exactly once, in order per pair.
	f := func(seed uint64, pattern []uint8) bool {
		if len(pattern) > 12 {
			pattern = pattern[:12]
		}
		w := nifdyWorld(t, reorderingTree(seed), Config{W: 4})
		r := rng.New(seed)
		for _, b := range pattern {
			src := r.Intn(64)
			dst := r.Intn(63)
			if dst >= src {
				dst++
			}
			n := int(b%10) + 1
			w.msg(src, dst, n, 8, n > 4)
		}
		want := w.totalQueued()
		done := w.eng.RunUntil(func() bool {
			w.pump()
			return w.totalRecvd() == want
		}, 2000000)
		if !done {
			return false
		}
		for n, ps := range w.recvd {
			last := map[int]uint64{}
			for _, p := range ps {
				order := p.Meta.MsgID*1000 + uint64(p.Meta.Index)
				if order < last[p.Src] {
					t.Logf("node %d reorder from %d", n, p.Src)
					return false
				}
				last[p.Src] = order
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestGrantIdempotentForSameSource(t *testing.T) {
	net := smallMesh(t)
	u := New(Config{D: 2}, net.Iface(0))
	g1, d1 := u.decideGrant(0, 5)
	g2, d2 := u.decideGrant(0, 5)
	if g1 != packet.Granted || g2 != packet.Granted || d1 != d2 {
		t.Fatalf("grants: %v/%d then %v/%d", g1, d1, g2, d2)
	}
	g3, d3 := u.decideGrant(0, 6)
	if g3 != packet.Granted || d3 == d1 {
		t.Fatalf("second source got %v/%d", g3, d3)
	}
	if g4, _ := u.decideGrant(0, 7); g4 != packet.Rejected {
		t.Fatalf("third source got %v with D=2", g4)
	}
}

func TestAutoBulkRequestsDialog(t *testing.T) {
	// Footnote 3 extension: the software never sets the request bit, yet a
	// backlog to one destination makes the NIC open a dialog on its own.
	w := nifdyWorld(t, reorderingTree(21), Config{AutoBulk: 3, W: 4})
	w.msg(0, 63, 24, 8, false) // plain packets, no BulkReq
	w.run(1000000)
	w.checkPerPairOrder()
	if g := w.nics[63].Stats().BulkGrants; g == 0 {
		t.Fatal("auto-bulk never opened a dialog")
	}
	if w.nics[0].Stats().BulkPackets == 0 {
		t.Fatal("no packets traveled in bulk mode")
	}
}

func TestAutoBulkClosesWhenBacklogDrains(t *testing.T) {
	w := nifdyWorld(t, reorderingTree(22), Config{AutoBulk: 3, W: 4, D: 1})
	w.msg(0, 63, 12, 8, false)
	w.run(500000)
	// After the backlog drained the dialog must close, freeing the slot
	// for another sender.
	w.msg(1, 63, 12, 8, false)
	w.run(500000)
	if g := w.nics[63].Stats().BulkGrants; g < 2 {
		t.Fatalf("grants = %d, want 2 (dialog reused)", g)
	}
	w.checkPerPairOrder()
}

func TestAutoBulkOffByDefault(t *testing.T) {
	w := nifdyWorld(t, reorderingTree(23), Config{W: 4})
	w.msg(0, 63, 12, 8, false) // no BulkReq, no AutoBulk
	w.run(500000)
	if g := w.nics[63].Stats().BulkGrants; g != 0 {
		t.Fatalf("grants = %d without requests or auto-bulk", g)
	}
}

func TestDialogTakeoverEvictsIdleDialog(t *testing.T) {
	// Sender 0 holds the only dialog open forever (every packet keeps the
	// request bit set, so the NIC never emits bulk-exit). After the idle
	// threshold, sender 1's request must take the slot over.
	w := nifdyWorld(t, reorderingTree(31), Config{D: 1, W: 4, DialogTakeover: 600})
	ps := w.msg(0, 63, 10, 8, true)
	ps[len(ps)-1].BulkReq = true // never exit: dialog stays open
	w.run(500000)
	w.msg(1, 63, 10, 8, true)
	w.run(2000000)
	w.checkPerPairOrder()
	s := w.nics[63].Stats()
	if s.BulkGrants < 2 {
		t.Fatalf("grants = %d: takeover never happened", s.BulkGrants)
	}
}

func TestDialogTakeoverSenderRevertsToScalar(t *testing.T) {
	// After its dialog is torn down, the old sender's further traffic to
	// the same destination must still arrive exactly once, in order.
	w := nifdyWorld(t, reorderingTree(32), Config{D: 1, W: 4, DialogTakeover: 3000})
	ps := w.msg(0, 63, 8, 8, true)
	ps[len(ps)-1].BulkReq = true // hold the dialog open
	w.run(500000)
	w.msg(1, 63, 8, 8, true) // takes the slot over
	w.run(2000000)
	w.msg(0, 63, 8, 8, false) // old sender continues in scalar mode
	w.run(2000000)
	w.checkPerPairOrder()
	if got := len(w.recvd[63]); got != 24 {
		t.Fatalf("recvd %d/24", got)
	}
}

func TestDialogTakeoverRaceReissuesInFlight(t *testing.T) {
	// Adversarial timing: a tiny takeover threshold so the dialog can be
	// torn down while window packets are still in flight. Exactly-once
	// in-order delivery must survive the race via scalar reissue.
	w := nifdyWorld(t, reorderingTree(33), Config{D: 1, W: 8, DialogTakeover: 200})
	w.msg(0, 63, 40, 8, true)
	w.msg(1, 63, 40, 8, true)
	w.msg(2, 63, 40, 8, true)
	w.run(4000000)
	w.checkPerPairOrder()
	if got := len(w.recvd[63]); got != 120 {
		t.Fatalf("recvd %d/120", got)
	}
}

func TestPiggybackExpiresToStandaloneAck(t *testing.T) {
	// With piggybacking on but no reverse traffic ever, held acks must go
	// out standalone after the delay, or the sender would stall forever.
	w := nifdyWorld(t, smallMesh(t), Config{Piggyback: true, PiggybackDelay: 100})
	w.msg(0, 15, 5, 8, false)
	w.run(100000)
	// The final ack is still inside its piggyback hold when the last packet
	// is accepted; give it time to expire and go out standalone.
	w.eng.Run(2000)
	if got := w.nics[15].Stats().AcksSent; got != 5 {
		t.Fatalf("acks sent = %d, want 5 standalone", got)
	}
}

func TestRetransmitTimerRearms(t *testing.T) {
	// Destination 15 never polls: the scalar packet is delivered to the
	// iface but never accepted, so no ack comes and the timer must fire
	// repeatedly.
	w := nifdyWorld(t, smallMesh(t), Config{Retransmit: true, RetransmitTimeout: 500})
	w.msg(0, 15, 1, 8, false)
	w.paused[15] = true
	for i := 0; i < 5000; i++ {
		w.pump()
		w.eng.Step()
	}
	if retx := w.nics[0].Stats().Retransmits; retx < 2 {
		t.Fatalf("retransmits = %d, want >= 2 (timer must rearm)", retx)
	}
	// Duplicates pile up at the receiver NIC side only after acceptance;
	// resume and confirm exactly-once delivery to the processor.
	w.paused[15] = false
	w.run(200000)
	w.checkPerPairOrder()
	if got := len(w.recvd[15]); got != 1 {
		t.Fatalf("accepted %d copies", got)
	}
}

func TestTakeoverUnderLossProperty(t *testing.T) {
	// The harshest combination: lossy fabric + retransmission + dialog
	// takeover + auto-bulk, random messages. Exactly-once in-order delivery
	// must survive all interactions.
	net := fattree.New(fattree.Config{Seed: 41,
		Iface: topo.IfaceOptions{DropProb: 0.05, Seed: 42}})
	w := nifdyWorld(t, net, Config{
		W: 4, D: 1, AutoBulk: 3, DialogTakeover: 2000,
		Retransmit: true, RetransmitTimeout: 2500,
	})
	r := rng.New(43)
	for m := 0; m < 12; m++ {
		src := r.Intn(64)
		dst := r.Intn(63)
		if dst >= src {
			dst++
		}
		w.msg(src, dst, r.IntRange(1, 8), 8, false)
	}
	w.run(8000000)
	w.checkPerPairOrder()
}

func TestIdleBranches(t *testing.T) {
	net := smallMesh(t)
	u := New(Config{}, net.Iface(0))
	if !u.Idle() {
		t.Fatal("fresh unit not idle")
	}
	u.TrySend(0, &packet.Packet{Src: 0, Dst: 1, Words: 8, Dialog: packet.NoDialog})
	if u.Idle() {
		t.Fatal("unit with pooled packet reports idle")
	}
}
