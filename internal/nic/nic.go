// Package nic defines the network interface controllers that sit between a
// processor and the fabric: the interface all NICs satisfy, and the
// protocol-less baselines the paper compares NIFDY against — a plain NIC
// with minimal buffering, and a "buffers only" NIC that has NIFDY's total
// buffering but none of its admission control (§3: "An option allows the
// NIFDY units to be included but disabled... This allows us to separate the
// effects of the NIFDY protocol itself from the benefit of simply having
// extra buffering").
//
// The NIFDY NIC itself lives in internal/core.
package nic

import (
	"nifdy/internal/packet"
	"nifdy/internal/ring"
	"nifdy/internal/router"
	"nifdy/internal/sim"
)

// Stats counts NIC-level events.
type Stats struct {
	// Sent counts data packets the processor handed to the NIC; Accepted
	// counts data packets the processor pulled out.
	Sent, Accepted int64
	// Injected counts data packets that entered the fabric.
	Injected int64
	// AcksSent and AcksReceived count protocol acknowledgments.
	AcksSent, AcksReceived int64
	// BulkGrants, BulkRejects, and BulkPackets count bulk-dialog activity.
	BulkGrants, BulkRejects, BulkPackets int64
	// Retransmits counts retransmitted copies; Duplicates counts copies the
	// receiver discarded (lossy-network extension).
	Retransmits, Duplicates int64
}

// Hooks let the harness observe packet lifecycle events (e.g. the Figure 5
// pending-per-receiver heatmap tracks Send/Accept).
type Hooks struct {
	// OnSend fires when the processor hands a data packet to the NIC.
	OnSend func(p *packet.Packet)
	// OnAccept fires when the processor accepts a data packet.
	OnAccept func(p *packet.Packet)
}

// Send fires OnSend if set.
func (h Hooks) Send(p *packet.Packet) {
	if h.OnSend != nil {
		h.OnSend(p)
	}
}

// Accept fires OnAccept if set.
func (h Hooks) Accept(p *packet.Packet) {
	if h.OnAccept != nil {
		h.OnAccept(p)
	}
}

// Combine returns Hooks that fire a's callbacks then b's, so independent
// observers (e.g. the stats sampler and the invariant monitors) can share one
// NIC's hook slot.
func Combine(a, b Hooks) Hooks {
	if a.OnSend == nil && a.OnAccept == nil {
		return b
	}
	if b.OnSend == nil && b.OnAccept == nil {
		return a
	}
	return Hooks{
		OnSend:   func(p *packet.Packet) { a.Send(p); b.Send(p) },
		OnAccept: func(p *packet.Packet) { a.Accept(p); b.Accept(p) },
	}
}

// Auditor is a read-only visitor over a NIC's internal packet references and
// protocol state, used by the invariant monitors. The contract: Queued fires
// once per whole-packet reference the NIC holds (a live packet must never
// have two); the protocol callbacks describe NIFDY's admission state and are
// never called by protocol-less NICs. Audits run only at quiescent points
// (engine step hooks). Nil callbacks are skipped.
type Auditor struct {
	// Queued reports a whole-packet reference held in the queue named
	// where ("out", "arr", "pool", "window", ...).
	Queued func(where string, p *packet.Packet)
	// OPTEntry reports one occupied Output Port Table slot (NIFDY §2.2):
	// dst is the destination with an outstanding scalar packet.
	OPTEntry func(dst int)
	// DialogOut reports the sender-side bulk dialog, when active: the
	// destination and the unacknowledged packet count (bound W).
	DialogOut func(dst, outstanding int)
	// DialogIn reports one active receiver-side dialog slot (bound D):
	// the sending node, the next expected sequence number, and the count
	// of out-of-order packets parked in the window buffer.
	DialogIn func(slot, src, expected, buffered int)
	// WindowSlot reports one occupied window-buffer entry of dialog slot;
	// the packet is also reported via Queued("window", p).
	WindowSlot func(slot int, p *packet.Packet)
}

// Auditable is implemented by NICs that expose their state to the invariant
// monitors.
type Auditable interface {
	Audit(a Auditor)
}

// NIC is the processor's view of its network interface. A NIC owns its
// router.Iface and ticks it; processors interact only through TrySend/Recv.
type NIC interface {
	sim.Ticker
	// Node reports the node number.
	Node() int
	// TrySend hands a data packet to the NIC. It reports false when the NIC
	// has no buffer space; the processor retries later (backpressure).
	TrySend(now sim.Cycle, p *packet.Packet) bool
	// Recv pops the next data packet for the processor, if any. Protocol
	// packets (acks) are consumed internally and never surface here.
	Recv(now sim.Cycle) (*packet.Packet, bool)
	// Pending reports data packets ready for the processor.
	Pending() int
	// Idle reports whether the NIC holds no unsent or unacknowledged work
	// (used for drain/termination checks).
	Idle() bool
	// ObserveDelivery registers an activity woken whenever a data packet
	// becomes available to Recv — the wake edge that lets a processor parked
	// on "something to poll" sleep instead of polling every cycle.
	ObserveDelivery(a *sim.Activity)
	// Pool is the node's packet free-list: the NIC recycles protocol
	// packets it consumes internally, and the node's processor allocates
	// outgoing packets from — and retires accepted deliveries to — the same
	// list (see packet.Pool for the ownership rules).
	Pool() *packet.Pool
	// Stats exposes counters.
	Stats() *Stats
}

// BasicConfig sizes a Basic NIC.
type BasicConfig struct {
	// Node is the node number.
	Node int
	// OutBuf is the outgoing FIFO capacity in packets (minimum 1).
	OutBuf int
	// ArrBuf is the arrivals FIFO capacity in packets (minimum 1).
	ArrBuf int
	// Hooks observe packet events.
	Hooks Hooks
}

// Basic is a protocol-less NIC: a strict-FIFO outgoing queue and a bounded
// arrivals queue. With OutBuf=1, ArrBuf=2 it models the paper's "no NIFDY"
// baseline; sized to NIFDY's total buffering (at least half on the arrivals
// side, per §3) it models the "buffers only" baseline.
type Basic struct {
	cfg     BasicConfig
	iface   router.Port
	out     ring.Deque[*packet.Packet]
	arr     ring.Deque[*packet.Packet]
	pool    packet.Pool
	deliver *sim.Activity // woken when a packet lands in arr
	stats   Stats
}

// NewBasic returns a Basic NIC attached to iface.
func NewBasic(cfg BasicConfig, iface router.Port) *Basic {
	if cfg.OutBuf < 1 {
		cfg.OutBuf = 1
	}
	if cfg.ArrBuf < 1 {
		cfg.ArrBuf = 1
	}
	return &Basic{cfg: cfg, iface: iface}
}

// Node implements NIC.
func (b *Basic) Node() int { return b.cfg.Node }

// Stats implements NIC.
func (b *Basic) Stats() *Stats { return &b.stats }

// Pool implements NIC. The Basic NIC neither creates nor consumes packets
// itself; the pool exists for the node's processor and workload.
func (b *Basic) Pool() *packet.Pool { return &b.pool }

// Activity implements sim.IdleTicker: the NIC sleeps when it has nothing to
// inject, nothing mid-flight in its iface, and nothing buffered to deliver.
func (b *Basic) Activity() *sim.Activity { return b.iface.Activity() }

// ObserveDelivery implements NIC.
func (b *Basic) ObserveDelivery(a *sim.Activity) { b.deliver = a }

// TrySend implements NIC.
func (b *Basic) TrySend(now sim.Cycle, p *packet.Packet) bool {
	if b.out.Len() >= b.cfg.OutBuf {
		return false
	}
	p.CreatedAt = now
	b.out.PushBack(p)
	b.stats.Sent++
	b.cfg.Hooks.Send(p)
	// The processor handed us work mid-cycle (it ticks after the NIC): make
	// sure the scheduler runs the NIC next cycle, exactly as if it had
	// never slept.
	b.iface.Activity().Wake()
	return true
}

// Recv implements NIC.
func (b *Basic) Recv(now sim.Cycle) (*packet.Packet, bool) {
	p, ok := b.arr.PopFront()
	if !ok {
		return nil, false
	}
	p.AcceptedAt = now
	b.stats.Accepted++
	b.cfg.Hooks.Accept(p)
	// Freed arrivals space may let a NIC blocked on a full queue pull the
	// next reassembled packet: run it as if it had never slept.
	b.iface.Activity().Wake()
	return p, true
}

// Pending implements NIC.
func (b *Basic) Pending() int { return b.arr.Len() }

// Idle implements NIC.
func (b *Basic) Idle() bool {
	return b.out.Len() == 0 && b.arr.Len() == 0 &&
		b.iface.Sending(packet.Request) == nil && b.iface.Sending(packet.Reply) == nil &&
		b.iface.PendingFlits() == 0
}

// Audit implements Auditable: the Basic NIC holds packets only in its two
// FIFOs and has no protocol state.
func (b *Basic) Audit(a Auditor) {
	if a.Queued == nil {
		return
	}
	b.out.ForEach(func(p *packet.Packet) { a.Queued("out", p) })
	b.arr.ForEach(func(p *packet.Packet) { a.Queued("arr", p) })
}

// Tick implements sim.Ticker: pump the iface, inject the FIFO head if its
// class slot is free (head-of-line blocking is intentional — it is what the
// NIFDY pool removes), and pull arrivals while the queue has room.
func (b *Basic) Tick(now sim.Cycle) {
	progress := b.iface.Pump(now)
	if head, ok := b.out.Front(); ok && b.iface.CanAccept(head.Class) {
		p, _ := b.out.PopFront()
		b.iface.StartSend(now, p)
		b.stats.Injected++
		progress = true
	}
	for b.arr.Len() < b.cfg.ArrBuf {
		p, ok := b.iface.Deliver(now, nil)
		if !ok {
			break
		}
		b.arr.PushBack(p)
		progress = true
		if b.deliver != nil {
			b.deliver.Wake()
		}
	}
	if b.out.Len() == 0 && b.iface.Quiet() {
		// Quiescent: nothing to inject, serialize, or deliver. Arrivals the
		// processor has not pulled (b.arr) don't need ticks — Recv bypasses
		// the tick path — and the next fabric arrival re-wakes us.
		b.iface.Activity().Sleep(b.iface.NextArrivalAt())
	} else if !progress {
		// Holding work but stuck this tick: nothing drained, injected, sent,
		// or delivered. Each stuck reason resolves only through an external
		// event — a flit arrival or credit return (wire observers), the busy
		// output link going free (BlockedBound), a processor TrySend or a
		// queue-freeing Recv (both wake explicitly) — so the state is a fixed
		// point until then and skipping to it is bit-identical.
		b.iface.Activity().Sleep(b.iface.BlockedBound(now))
	}
}
