package nic

import (
	"testing"

	"nifdy/internal/packet"
	"nifdy/internal/sim"
	"nifdy/internal/topo/mesh"
)

func build(t *testing.T, outBuf, arrBuf int) (*sim.Engine, []*Basic, *mesh.Mesh) {
	t.Helper()
	m := mesh.New(mesh.Config{Dims: []int{4, 4}})
	eng := sim.New()
	m.RegisterRouters(eng)
	nics := make([]*Basic, 16)
	for i := range nics {
		nics[i] = NewBasic(BasicConfig{Node: i, OutBuf: outBuf, ArrBuf: arrBuf}, m.Iface(i))
		eng.Register(nics[i])
	}
	return eng, nics, m
}

func pkt(id uint64, src, dst int) *packet.Packet {
	return &packet.Packet{ID: id, Src: src, Dst: dst, Words: 8,
		Class: packet.Request, Dialog: packet.NoDialog}
}

func TestBasicDelivery(t *testing.T) {
	eng, nics, _ := build(t, 2, 2)
	if !nics[0].TrySend(0, pkt(1, 0, 15)) {
		t.Fatal("TrySend rejected")
	}
	var got *packet.Packet
	ok := eng.RunUntil(func() bool {
		p, k := nics[15].Recv(eng.Now())
		if k {
			got = p
		}
		return got != nil
	}, 100000)
	if !ok || got.ID != 1 {
		t.Fatalf("delivery failed: %v", got)
	}
	if got.AcceptedAt == 0 {
		t.Fatal("AcceptedAt not stamped")
	}
}

func TestBasicOutBufCapacity(t *testing.T) {
	_, nics, _ := build(t, 2, 2)
	if !nics[0].TrySend(0, pkt(1, 0, 1)) || !nics[0].TrySend(0, pkt(2, 0, 1)) {
		t.Fatal("sends under capacity rejected")
	}
	if nics[0].TrySend(0, pkt(3, 0, 1)) {
		t.Fatal("send over capacity accepted")
	}
}

func TestBasicHeadOfLineBlocking(t *testing.T) {
	// The FIFO head occupies the class slot; a same-class packet behind it
	// cannot overtake — the behaviour NIFDY's rank/eligibility pool removes.
	eng, nics, _ := build(t, 4, 4)
	nics[0].TrySend(0, pkt(1, 0, 15)) // far destination
	nics[0].TrySend(0, pkt(2, 0, 1))  // near destination, queued behind
	var first uint64
	eng.RunUntil(func() bool {
		for n := range nics {
			if p, ok := nics[n].Recv(eng.Now()); ok && first == 0 {
				first = p.ID
			}
		}
		return first != 0
	}, 100000)
	// Even though node 1 is one hop away, packet 1 was injected first; with
	// a single VC per class on the mesh, packet 2 follows it into the
	// fabric. The near packet arrives first at its own node, but injection
	// order is FIFO: packet 1 must have been injected first.
	if nics[0].Stats().Injected < 2 {
		t.Fatal("both packets should inject")
	}
	if first == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestBasicArrBufBackpressure(t *testing.T) {
	eng, nics, m := build(t, 1, 2)
	// Flood node 15 without ever receiving.
	sent := 0
	for cyc := 0; cyc < 30000; cyc++ {
		if sent < 20 && nics[0].TrySend(eng.Now(), pkt(uint64(sent+1), 0, 15)) {
			sent++
		}
		eng.Step()
	}
	if sent == 20 {
		t.Fatal("no backpressure: all 20 packets absorbed by a non-receiving node")
	}
	if nics[15].Pending() > 2 {
		t.Fatalf("arrivals queue overflowed: %d", nics[15].Pending())
	}
	// Drain: everything still arrives.
	got := 0
	ok := eng.RunUntil(func() bool {
		if sent < 20 && nics[0].TrySend(eng.Now(), pkt(uint64(sent+1), 0, 15)) {
			sent++
		}
		if _, k := nics[15].Recv(eng.Now()); k {
			got++
		}
		return got == 20
	}, 500000)
	if !ok {
		t.Fatalf("drained %d/20 (fabric holds %d flits)", got, m.BufferedFlits())
	}
}

func TestBasicIdle(t *testing.T) {
	eng, nics, _ := build(t, 2, 2)
	if !nics[0].Idle() {
		t.Fatal("fresh NIC not idle")
	}
	nics[0].TrySend(0, pkt(1, 0, 15))
	if nics[0].Idle() {
		t.Fatal("NIC with queued packet reports idle")
	}
	eng.RunUntil(func() bool {
		_, ok := nics[15].Recv(eng.Now())
		return ok
	}, 100000)
	eng.Run(100)
	if !nics[0].Idle() || !nics[15].Idle() {
		t.Fatal("NICs not idle after drain")
	}
}

func TestBasicStats(t *testing.T) {
	eng, nics, _ := build(t, 2, 2)
	nics[0].TrySend(0, pkt(1, 0, 15))
	eng.RunUntil(func() bool {
		_, ok := nics[15].Recv(eng.Now())
		return ok
	}, 100000)
	if s := nics[0].Stats(); s.Sent != 1 || s.Injected != 1 {
		t.Fatalf("sender stats %+v", s)
	}
	if s := nics[15].Stats(); s.Accepted != 1 {
		t.Fatalf("receiver stats %+v", s)
	}
}

func TestHooksFire(t *testing.T) {
	var sends, accepts int
	h := Hooks{
		OnSend:   func(*packet.Packet) { sends++ },
		OnAccept: func(*packet.Packet) { accepts++ },
	}
	m := mesh.New(mesh.Config{Dims: []int{4, 4}})
	eng := sim.New()
	m.RegisterRouters(eng)
	nics := make([]*Basic, 16)
	for i := range nics {
		nics[i] = NewBasic(BasicConfig{Node: i, OutBuf: 2, ArrBuf: 2, Hooks: h}, m.Iface(i))
		eng.Register(nics[i])
	}
	nics[0].TrySend(0, pkt(1, 0, 15))
	eng.RunUntil(func() bool {
		_, ok := nics[15].Recv(eng.Now())
		return ok
	}, 100000)
	if sends != 1 || accepts != 1 {
		t.Fatalf("hooks: sends=%d accepts=%d", sends, accepts)
	}
}

func TestNilHooksSafe(t *testing.T) {
	var h Hooks
	h.Send(pkt(1, 0, 1))   // must not panic
	h.Accept(pkt(1, 0, 1)) // must not panic
}

func TestMinimumBuffers(t *testing.T) {
	m := mesh.New(mesh.Config{Dims: []int{4, 4}})
	b := NewBasic(BasicConfig{Node: 0}, m.Iface(0))
	if !b.TrySend(0, pkt(1, 0, 1)) {
		t.Fatal("OutBuf clamped below 1")
	}
}
