package nic

import (
	"nifdy/internal/packet"
	"nifdy/internal/ring"
	"nifdy/internal/router"
	"nifdy/internal/sim"
)

// RateScale is the fixed-point unit of the DCQCN rate limiter: a rate of
// RateScale is line rate (one flit per access-link flit slot), RateScale/2 is
// half line rate, and so on. All rate arithmetic is integer, so the limiter
// is bit-deterministic for any shard count.
const RateScale int64 = 1024

// alphaScale is the fixed-point unit of the congestion estimate alpha.
const alphaScale int64 = 1024

// DCQCNConfig sizes a DCQCN NIC — the RoCEv2-style rate-control baseline:
// ECN marks applied by the routers are echoed by the destination as CNPs,
// and the source multiplicatively decreases its sending rate on each CNP,
// recovering through fast / additive / hyper-active increase stages
// (Zhu et al., SIGCOMM 2015; see PAPERS.md). Zero values select defaults.
type DCQCNConfig struct {
	// Node is the node number.
	Node int
	// OutBuf and ArrBuf are the FIFO capacities in packets (minimum 1),
	// exactly as in BasicConfig.
	OutBuf, ArrBuf int
	// CPF is the access-link serialization time in cycles per flit — the
	// pacing granularity: at line rate a packet of F flits occupies F*CPF
	// cycles, and the limiter stretches that gap by RateScale/rate.
	CPF int
	// MinRate is the rate floor (default RateScale/64): DCQCN never stops a
	// flow entirely.
	MinRate int64
	// AI and HAI are the additive and hyper-active increase steps applied to
	// the target rate per recovery period after fast recovery ends (defaults
	// RateScale/32 and RateScale/8).
	AI, HAI int64
	// RecoveryPeriod is the rate-increase timer in cycles (default 128).
	RecoveryPeriod sim.Cycle
	// CNPPeriod is the minimum gap in cycles between CNPs echoed to the same
	// source (default 64) — the CNP timer of the DCQCN spec.
	CNPPeriod sim.Cycle
	// Hooks observe packet events.
	Hooks Hooks
	// Mutate injects rate-limiter faults for monitor validation (test-only).
	Mutate DCQCNMutations
}

// DCQCNMutations are deliberate one-shot faults for the internal/check
// mutation tests. They must never be set outside tests.
type DCQCNMutations struct {
	// RateOverflow skips the line-rate clamp once during recovery, pushing
	// the sending rate above the configured maximum — the breach the
	// dcqcn-rate monitor must catch.
	RateOverflow bool
}

// DCQCN is the rate-controlled NIC kind. Its data path is the Basic NIC's
// (strict-FIFO out queue, bounded arrivals queue); on top of it sit the rate
// limiter (injection pacing), the CNP echo path (receiver side), and the
// DCQCN rate state machine (sender side).
type DCQCN struct {
	cfg     DCQCNConfig
	iface   router.Port
	out     ring.Deque[*packet.Packet]
	arr     ring.Deque[*packet.Packet]
	cnpQ    ring.Deque[*packet.Packet]
	pool    packet.Pool
	deliver *sim.Activity
	stats   Stats

	// Rate state (sender side), all fixed-point.
	rate, target int64
	alpha        int64
	lastDecAt    sim.Cycle // cycle of the last rate decrease
	recovered    int       // recovery stages applied since then
	nextSendAt   sim.Cycle // pacing gate for the next data injection

	// CNP suppression (receiver side): last CNP cycle per source. Lookups
	// and inserts only; never iterated.
	lastCNP map[int]sim.Cycle

	cnpPred func(*packet.Packet) bool

	mutOverflowDone bool
}

// NewDCQCN returns a DCQCN NIC attached to iface.
func NewDCQCN(cfg DCQCNConfig, iface router.Port) *DCQCN {
	if cfg.OutBuf < 1 {
		cfg.OutBuf = 1
	}
	if cfg.ArrBuf < 1 {
		cfg.ArrBuf = 1
	}
	if cfg.CPF < 1 {
		cfg.CPF = 1
	}
	if cfg.MinRate <= 0 {
		cfg.MinRate = RateScale / 64
	}
	if cfg.AI <= 0 {
		cfg.AI = RateScale / 32
	}
	if cfg.HAI <= 0 {
		cfg.HAI = RateScale / 8
	}
	if cfg.RecoveryPeriod <= 0 {
		cfg.RecoveryPeriod = 128
	}
	if cfg.CNPPeriod <= 0 {
		cfg.CNPPeriod = 64
	}
	d := &DCQCN{
		cfg: cfg, iface: iface,
		rate: RateScale, target: RateScale,
		lastCNP: map[int]sim.Cycle{},
	}
	d.cnpPred = func(p *packet.Packet) bool { return p.Kind == packet.Ack && p.CNP }
	return d
}

// Node implements NIC.
func (d *DCQCN) Node() int { return d.cfg.Node }

// Stats implements NIC.
func (d *DCQCN) Stats() *Stats { return &d.stats }

// Pool implements NIC.
func (d *DCQCN) Pool() *packet.Pool { return &d.pool }

// Activity implements sim.IdleTicker.
func (d *DCQCN) Activity() *sim.Activity { return d.iface.Activity() }

// ObserveDelivery implements NIC.
func (d *DCQCN) ObserveDelivery(a *sim.Activity) { d.deliver = a }

// RateBounds exposes the limiter state to the dcqcn-rate invariant monitor:
// the current rate and the clamp it must never leave.
func (d *DCQCN) RateBounds() (rate, min, max int64) {
	return d.rate, d.cfg.MinRate, RateScale
}

// TrySend implements NIC.
func (d *DCQCN) TrySend(now sim.Cycle, p *packet.Packet) bool {
	if d.out.Len() >= d.cfg.OutBuf {
		return false
	}
	p.CreatedAt = now
	d.out.PushBack(p)
	d.stats.Sent++
	d.cfg.Hooks.Send(p)
	d.iface.Activity().Wake()
	return true
}

// Recv implements NIC.
func (d *DCQCN) Recv(now sim.Cycle) (*packet.Packet, bool) {
	p, ok := d.arr.PopFront()
	if !ok {
		return nil, false
	}
	p.AcceptedAt = now
	d.stats.Accepted++
	d.cfg.Hooks.Accept(p)
	d.iface.Activity().Wake()
	return p, true
}

// Pending implements NIC.
func (d *DCQCN) Pending() int { return d.arr.Len() }

// Idle implements NIC.
func (d *DCQCN) Idle() bool {
	return d.out.Len() == 0 && d.arr.Len() == 0 && d.cnpQ.Len() == 0 &&
		d.iface.Sending(packet.Request) == nil && d.iface.Sending(packet.Reply) == nil &&
		d.iface.PendingFlits() == 0
}

// Audit implements Auditable: packets live in the three FIFOs only.
func (d *DCQCN) Audit(a Auditor) {
	if a.Queued == nil {
		return
	}
	d.out.ForEach(func(p *packet.Packet) { a.Queued("out", p) })
	d.arr.ForEach(func(p *packet.Packet) { a.Queued("arr", p) })
	d.cnpQ.ForEach(func(p *packet.Packet) { a.Queued("cnp", p) })
}

// applyRecovery advances the rate-increase state machine to now: one fast-
// recovery stage per elapsed period for the first five (rate halves toward
// target), then additive increase, then hyper-active increase. Alpha decays
// by g per period. The loop is bounded: once rate and target both reach line
// rate the state is saturated and the stage counter jumps forward.
func (d *DCQCN) applyRecovery(now sim.Cycle) {
	const g = alphaScale / 16
	stages := int((now - d.lastDecAt) / d.cfg.RecoveryPeriod)
	for ; d.recovered < stages; d.recovered++ {
		if d.rate >= RateScale && d.target >= RateScale {
			d.rate, d.target = RateScale, RateScale
			d.recovered = stages
			break
		}
		d.alpha -= d.alpha * g / alphaScale
		switch {
		case d.recovered < 5:
			// Fast recovery: halve toward the pre-decrease target.
		case d.recovered < 10:
			d.target += d.cfg.AI
		default:
			d.target += d.cfg.HAI
		}
		if d.target > RateScale {
			d.target = RateScale
		}
		d.rate = (d.rate + d.target) / 2
	}
	if d.cfg.Mutate.RateOverflow && !d.mutOverflowDone && stages > 0 {
		// Injected fault: skip the clamp once, doubling past line rate.
		d.mutOverflowDone = true
		d.rate = 2 * RateScale
		return
	}
	if d.rate > RateScale {
		d.rate = RateScale
	}
	if d.rate < d.cfg.MinRate {
		d.rate = d.cfg.MinRate
	}
}

// onCNP applies one congestion notification: remember the current rate as
// the recovery target, cut the rate multiplicatively by alpha/2, and raise
// the congestion estimate.
func (d *DCQCN) onCNP(now sim.Cycle) {
	const g = alphaScale / 16
	d.applyRecovery(now)
	d.target = d.rate
	d.rate -= d.rate * d.alpha / (2 * alphaScale)
	if d.rate < d.cfg.MinRate {
		d.rate = d.cfg.MinRate
	}
	d.alpha += g * (alphaScale - d.alpha) / alphaScale
	d.lastDecAt = now
	d.recovered = 0
}

// echoCNP queues a congestion notification back to src, subject to the
// per-source CNP timer.
func (d *DCQCN) echoCNP(now sim.Cycle, src int) {
	if last, ok := d.lastCNP[src]; ok && now-last < d.cfg.CNPPeriod {
		return
	}
	d.lastCNP[src] = now
	cnp := d.pool.Get()
	cnp.Src = d.cfg.Node
	cnp.Dst = src
	cnp.Kind = packet.Ack
	cnp.Class = packet.Reply
	cnp.Words = 1
	cnp.CNP = true
	cnp.NoAck = true
	cnp.CreatedAt = now
	d.cnpQ.PushBack(cnp)
}

// Tick implements sim.Ticker: pump the iface, inject CNPs (congestion
// feedback preempts data on the reply class), inject the paced FIFO head,
// and pull arrivals — consuming CNPs internally and echoing ECN marks.
func (d *DCQCN) Tick(now sim.Cycle) {
	progress := d.iface.Pump(now)
	if head, ok := d.cnpQ.Front(); ok && d.iface.CanAccept(head.Class) {
		p, _ := d.cnpQ.PopFront()
		d.iface.StartSend(now, p)
		d.stats.AcksSent++
		progress = true
	}
	pacingBlocked := false
	if head, ok := d.out.Front(); ok {
		if now < d.nextSendAt {
			pacingBlocked = true
		} else if d.iface.CanAccept(head.Class) {
			p, _ := d.out.PopFront()
			d.iface.StartSend(now, p)
			d.stats.Injected++
			d.applyRecovery(now)
			gap := int64(p.Flits()) * int64(d.cfg.CPF) * RateScale / d.rate
			d.nextSendAt = now + sim.Cycle(gap)
			progress = true
		}
	}
	for {
		var p *packet.Packet
		var ok bool
		if d.arr.Len() < d.cfg.ArrBuf {
			p, ok = d.iface.Deliver(now, nil)
		} else {
			// Arrivals queue full: still drain congestion notifications, so
			// a backlogged receiver cannot stall its own rate control.
			p, ok = d.iface.Deliver(now, d.cnpPred)
		}
		if !ok {
			break
		}
		progress = true
		if p.Kind == packet.Ack && p.CNP {
			d.stats.AcksReceived++
			d.onCNP(now)
			d.pool.Put(p)
			continue
		}
		if p.ECN {
			d.echoCNP(now, p.Src)
		}
		d.arr.PushBack(p)
		if d.deliver != nil {
			d.deliver.Wake()
		}
	}
	if d.out.Len() == 0 && d.cnpQ.Len() == 0 && d.iface.Quiet() {
		d.iface.Activity().Sleep(d.iface.NextArrivalAt())
	} else if !progress {
		bound := d.iface.BlockedBound(now)
		if pacingBlocked && d.nextSendAt < bound {
			// The pacing timer is a wake edge of our own making; BlockedBound
			// cannot know it.
			bound = d.nextSendAt
		}
		d.iface.Activity().Sleep(bound)
	}
}
