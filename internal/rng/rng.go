// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The paper stresses that "dedicated state for each pseudo-random number
// generator ensures that the same sequence of bursts is generated regardless
// of network and NIFDY configuration used" (§3). Every traffic source,
// router arbiter, and workload therefore owns its own Source, seeded
// deterministically from an experiment seed and a stream identifier, so that
// changing one component's consumption pattern never perturbs another's.
//
// The generator is xoshiro256** by Blackman & Vigna: 256 bits of state,
// excellent statistical quality, and trivially portable. math/rand would
// work, but owning the implementation keeps sequences stable across Go
// releases, which matters for reproducing the tables byte-for-byte.
package rng

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
}

// splitmix64 is the recommended seeder for xoshiro: it diffuses an arbitrary
// 64-bit seed into well-distributed state words.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Two Sources with the same seed
// produce identical sequences.
func New(seed uint64) *Source {
	var r Source
	r.Seed(seed)
	return &r
}

// NewStream returns a Source for stream id under the experiment seed. It is
// the standard way to give each node/component its own independent sequence.
func NewStream(seed, id uint64) *Source {
	// Mix the stream id through splitmix before combining so that adjacent
	// ids land far apart in seed space.
	x := id
	return New(seed ^ splitmix64(&x))
}

// Seed resets the generator state from seed.
func (r *Source) Seed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the sequence.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and avoids division
	// in the common case.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo = a * b
	hi = a1*b1 + t>>32 + (t&mask32+a0*b1)>>32
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// IntRange returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (r *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Pick returns a uniform choice among the weights' indices, where weights[i]
// is the relative probability of index i. It panics if the total weight is
// not positive.
func (r *Source) Pick(weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("rng: Pick with non-positive total weight")
	}
	v := r.Intn(total)
	for i, w := range weights {
		if v < w {
			return i
		}
		v -= w
	}
	panic("unreachable")
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (r *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
