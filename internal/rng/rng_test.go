package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestSeedChangesSequence(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestStreamIndependence(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 produced %d/100 identical values", same)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(7, 3)
	b := NewStream(7, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same stream diverged at %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / trials
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) hit rate %v", got)
	}
}

func TestIntRange(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d", v)
		}
	}
	if v := r.IntRange(4, 4); v != 4 {
		t.Fatalf("IntRange(4,4) = %d", v)
	}
}

func TestIntRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(2,1) did not panic")
		}
	}()
	New(1).IntRange(2, 1)
}

func TestPickWeights(t *testing.T) {
	r := New(17)
	const trials = 60000
	counts := [3]int{}
	for i := 0; i < trials; i++ {
		counts[r.Pick([]int{1, 2, 3})]++
	}
	// Expected proportions 1/6, 2/6, 3/6.
	for i, want := range []float64{1.0 / 6, 2.0 / 6, 3.0 / 6} {
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.02 {
			t.Errorf("Pick index %d: got %.3f want %.3f", i, got, want)
		}
	}
}

func TestPickPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero weights did not panic")
		}
	}()
	New(1).Pick([]int{0, 0})
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	out := make([]int, 50)
	r.Perm(out)
	seen := make([]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestPermProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		r := New(seed)
		out := make([]int, size)
		r.Perm(out)
		seen := make(map[int]bool, size)
		for _, v := range out {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestZeroStateGuard(t *testing.T) {
	var r Source
	r.Seed(0)
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		t.Fatal("state is all zero after seeding")
	}
	// Sequence must still advance.
	if r.Uint64() == r.Uint64() {
		// Two consecutive identical values are astronomically unlikely.
		t.Fatal("generator appears stuck")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
