package sim

import (
	"testing"
)

// FuzzQueue drives a latched Queue and a reference model (visible and
// pending slices plus the capacity rule) through the same byte-coded
// operation sequence. The queue's tick/flush visibility split is what keeps
// multi-component cycles deterministic, so the model tracks both regions
// explicitly and cross-checks every observable after each op.
//
// The first byte picks the capacity (0 = unbounded, else 1..8); each
// following byte b selects op b%5 — 0 Push, 1 Pop, 2 Peek, 3 Flush,
// 4 Drain.
func FuzzQueue(f *testing.F) {
	f.Add([]byte{0, 0, 0, 3, 1, 1})             // unbounded: push, flush, pop
	f.Add([]byte{2, 0, 0, 0, 3, 1})             // cap 2: third push must refuse
	f.Add([]byte{1, 0, 3, 1, 0, 3, 1})          // cap 1: steady one-per-cycle
	f.Add([]byte{0, 0, 1, 2, 3, 4})             // pops before flush see nothing
	f.Add([]byte{3, 0, 0, 3, 0, 0, 3, 4, 0, 3}) // interleaved flush/drain
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 {
			return
		}
		capacity := int(ops[0] % 9) // 0 = unbounded
		q := NewQueue[int](capacity)
		var vis, pend []int
		next := 0
		for _, b := range ops[1:] {
			switch b % 5 {
			case 0:
				wantOK := capacity <= 0 || len(vis)+len(pend) < capacity
				if got := q.CanPush(); got != wantOK {
					t.Fatalf("CanPush = %v, want %v (vis %d pend %d cap %d)",
						got, wantOK, len(vis), len(pend), capacity)
				}
				if got := q.Push(next); got != wantOK {
					t.Fatalf("Push accepted=%v, want %v", got, wantOK)
				}
				if wantOK {
					pend = append(pend, next)
				}
				next++
			case 1:
				v, ok := q.Pop()
				if ok != (len(vis) > 0) {
					t.Fatalf("Pop ok=%v with %d visible", ok, len(vis))
				}
				if ok {
					if v != vis[0] {
						t.Fatalf("Pop = %d, want %d", v, vis[0])
					}
					vis = vis[1:]
				}
			case 2:
				v, ok := q.Peek()
				if ok != (len(vis) > 0) {
					t.Fatalf("Peek ok=%v with %d visible", ok, len(vis))
				}
				if ok && v != vis[0] {
					t.Fatalf("Peek = %d, want %d", v, vis[0])
				}
			case 3:
				q.Flush()
				vis = append(vis, pend...)
				pend = pend[:0]
			case 4:
				var got []int
				q.Drain(func(v int) { got = append(got, v) })
				if len(got) != len(vis) {
					t.Fatalf("Drain yielded %d items, want %d", len(got), len(vis))
				}
				for i, v := range got {
					if v != vis[i] {
						t.Fatalf("Drain[%d] = %d, want %d", i, v, vis[i])
					}
				}
				vis = vis[:0]
			}
			if q.Len() != len(vis) {
				t.Fatalf("Len = %d, want %d", q.Len(), len(vis))
			}
			if q.Occupied() != len(vis)+len(pend) {
				t.Fatalf("Occupied = %d, want %d", q.Occupied(), len(vis)+len(pend))
			}
		}
	})
}
