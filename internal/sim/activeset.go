package sim

import (
	"slices"
	"sync/atomic"
)

// activeSet is one shard's tick worklist: the set of component indices the
// scheduler must visit this cycle, replacing the full per-component sweep.
// A component leaves the set when its Tick parks it with Sleep(Never) and
// re-enters only when a wake edge lands on it (Activity.WakeAt enqueues the
// index), so a fully quiescent region costs zero instructions per cycle —
// not even the skipped-compare per component the old sweep paid.
//
// Layout and ownership:
//
//   - active is the sorted list of candidate indices swept every cycle. It is
//     owned by the shard's ticking goroutine and contains every component
//     whose queued flag is set except those parked in pend/late/hold.
//   - pend is the wake mailbox: producers (Activity.WakeAt after a successful
//     queued CAS) claim a slot with an atomic counter and write the index.
//     Producers run either on the shard's own goroutine during the tick
//     phase, or on any goroutine during flush phases and window-boundary
//     drains — never concurrently with the sweep's drain, because the
//     engine's phase barriers separate tick phases from flush phases
//     globally. The barrier channels also give the sweep's reads of pend a
//     happens-before edge over all flush-phase writes.
//   - late is a min-heap of indices woken *during* the sweep for the current
//     cycle that lie ahead of the sweep cursor: visit-time semantics say a
//     same-cycle wake posted by component i reaches component j this cycle
//     iff j ticks after i, and the heap merges exactly those j into the
//     in-order visit stream.
//   - hold carries mid-sweep wakes that must wait for the next cycle (index
//     behind the cursor, or wake time in the future); they stay queued and
//     merge into the next sweep.
//
// The queued flag (on Activity) is the dedup invariant: an index is in
// exactly one of active/pend/late/hold while queued, and a component with
// queued=false always has wakeAt == Never, so no wake can be lost.
type activeSet struct {
	pend []int32
	cnt  atomic.Int32
	head int32

	active []int32
	next   []int32 // double buffer: the sweep emits survivors here
	newly  []int32 // scratch: wakes drained at cycle start, then sorted
	late   []int32 // min-heap of same-cycle wakes ahead of the sweep cursor
	hold   []int32 // mid-sweep wakes deferred to the next cycle
}

// register adds component idx to the set (initially awake, matching the
// Activity zero value) and links a, when non-nil, for wake enqueueing.
// Registration happens between Steps, on the stepping goroutine.
func (as *activeSet) register(idx int32, a *Activity) {
	as.active = append(as.active, idx)
	// Two mailbox slots per component bound the enqueue count between two
	// drains: every enqueue needs a false→true edge of the queued flag, and
	// a component's flag can fall at most once per cycle (in its own Tick).
	as.pend = append(as.pend, 0, 0)
	if a != nil {
		a.set = as
		a.idx = idx
		a.queued.Store(true)
	}
}

// enqueue claims a mailbox slot for idx. Callers hold the queued flag (they
// won its false→true CAS), which both dedups and bounds slot usage.
func (as *activeSet) enqueue(idx int32) {
	i := as.cnt.Add(1) - 1
	if int(i) >= len(as.pend) {
		panic("sim: active-set wake mailbox overflow (queued invariant broken)")
	}
	as.pend[i] = idx
}

// sweep runs one cycle of active-set scheduling: drain the mailbox, merge
// the wakes with the standing active list in index order, Tick every due
// component, and emit the survivors as the next cycle's active list. It
// reports whether any Tick ran and the earliest wake among skipped
// components (the fastForward inputs, exactly as the full sweep computed
// them).
//
// Worklist growth (newly/late/hold/next) is bounded by the shard's component
// count, and all four buffers are reused across cycles, so the sweep is
// allocation-free in steady state.
func (as *activeSet) sweep(tickers []Ticker, acts []*Activity, now Cycle) (ticked bool, idle Cycle) {
	// Collect wakes parked since the last sweep: holdovers classified
	// next-cycle mid-sweep, then everything enqueued from flush phases,
	// boundary drains, and pre-tick step hooks. No producer runs while this
	// drain resets the mailbox (the engine has not released the tick phase's
	// own components yet, and cross-shard producers only run between phases).
	newly := append(as.newly[:0], as.hold...)
	as.hold = as.hold[:0]
	n := as.cnt.Load()
	for i := as.head; i < n; i++ {
		newly = append(newly, as.pend[i])
	}
	as.head = 0
	as.cnt.Store(0)
	slices.Sort(newly)
	as.newly = newly

	active := as.active
	out := as.next[:0]
	idle = Never
	ai, ni := 0, 0
	for {
		// Visit the smallest index among the three in-order streams, which
		// reproduces the registration-order schedule of the full sweep.
		idx := int32(0)
		src := -1
		if ai < len(active) {
			idx, src = active[ai], 0
		}
		if ni < len(newly) && (src < 0 || newly[ni] < idx) {
			idx, src = newly[ni], 1
		}
		if len(as.late) > 0 && (src < 0 || as.late[0] < idx) {
			idx, src = as.late[0], 2
		}
		switch src {
		case -1:
			as.active, as.next = out, active
			return ticked, idle
		case 0:
			ai++
		case 1:
			ni++
		case 2:
			latePop(&as.late)
		}
		a := acts[idx]
		if a != nil {
			if w := a.wakeAt.Load(); w > now {
				if w < idle {
					idle = w
				}
				out = append(out, idx)
				continue
			}
		}
		tickers[idx].Tick(now)
		ticked = true
		if a != nil && a.wakeAt.Load() == Never {
			// Parked until an explicit wake: leave the set entirely. The
			// store cannot race a producer — none runs during the tick
			// phase except this goroutine, which is here.
			a.queued.Store(false)
		} else {
			out = append(out, idx)
		}
		// Classify wakes the Tick just posted: an index ahead of the cursor
		// whose wake is due now ticks this cycle (the full sweep would read
		// its wakeAt later in the same pass); everything else holds to the
		// next cycle (the full sweep already passed it).
		if m := as.cnt.Load(); m > as.head {
			for ; as.head < m; as.head++ {
				widx := as.pend[as.head]
				if widx > idx && acts[widx].wakeAt.Load() <= now {
					latePush(&as.late, widx)
				} else {
					as.hold = append(as.hold, widx)
				}
			}
		}
	}
}

// latePush inserts v into the min-heap.
func latePush(h *[]int32, v int32) {
	s := append(*h, v)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*h = s
}

// latePop removes and returns the heap minimum.
func latePop(h *[]int32) int32 {
	s := *h
	v := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s[l] < s[m] {
			m = l
		}
		if r < n && s[r] < s[m] {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return v
}
