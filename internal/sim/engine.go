// Package sim provides the cycle-synchronous simulation engine underneath
// every experiment in this repository.
//
// The paper's simulator executes every cycle "explicitly and synchronously by
// all objects; at any time in the simulation, all objects have executed up to
// the same point" (§3). We reproduce that contract with a two-phase engine:
//
//  1. Tick phase: every registered Ticker observes the current (latched)
//     state of its inputs and writes only to state it owns, plus to the
//     "next" side of Latches it is the unique writer of.
//  2. Flush phase: every Latch moves its "next" side to its "current" side.
//
// Because Tickers never observe another component's same-cycle writes, the
// result is independent of tick order, which in turn makes the optional
// sharded parallel execution (experiment X3 in DESIGN.md) bit-identical to
// serial execution.
//
// # Hot path
//
// Three mechanisms keep the per-cycle cost proportional to activity rather
// than to the number of registered components:
//
//   - Persistent workers. A parallel engine starts one long-lived goroutine
//     per extra shard in NewParallel; Step releases them through a channel
//     barrier (tick phase, barrier, flush phase, barrier) instead of
//     spawning goroutines every cycle. Engine.Close parks them permanently.
//
//   - Quiescence skipping. A Ticker that also implements IdleTicker exposes
//     an Activity — a wake-time latch. The scheduler skips any component
//     whose Activity says it is asleep. The protocol invariant is that a
//     component may only sleep while its Tick is a provable no-op, and must
//     be woken (Activity.WakeAt) no later than the cycle any of its inputs
//     can change; link.Wire drives those wake edges automatically for
//     observed wires. Under that invariant skipping is bit-identical to
//     ticking every cycle, which the golden determinism tests in
//     internal/harness enforce on full experiment workloads.
//
//   - Dirty latch flushing. Latches registered with RegisterLatch are walked
//     every cycle (sharded across the workers); latches bound to a shard's
//     Flusher are walked only on cycles in which they were actually written.
//
// Shard discipline: components in different shards must not share mutable
// non-latched state. A component and every writer into its input wires must
// live in the same shard, with one exception: a link.Wire marked CrossShard
// is a legal cross-shard edge — its sends are staged on the writer's side
// and merged into the consumer-visible event list at the flush barrier, and
// the consumer's Activity is woken only at merge time (wake times are
// atomic CAS-min, so cross-shard wakes commute). Cross-shard effects that
// are not wire sends (e.g. barrier releases waking processors in other
// shards) must be deferred to the tick/flush boundary with AtBarrier, where
// no shard is ticking. The harness partitions fabrics with topo.Network's
// partition hook so that each node's router, NIC, and processor share a
// shard and wires are the only cross-shard edges; under that discipline
// multi-shard execution is bit-identical to serial.
package sim

import (
	"math"
	"sync/atomic"
)

// Cycle is a simulated time in cycles.
type Cycle = int64

// Never is a cycle later than any a simulation will reach; Activity.Sleep
// with Never parks a component until an explicit wake.
const Never Cycle = math.MaxInt64

// Ticker is a component that does work each cycle. During Tick it may read
// any latched state but must only mutate state it owns.
type Ticker interface {
	Tick(now Cycle)
}

// Latch is double-buffered state flushed between cycles. Flush is called
// after all Tickers have run for the cycle.
type Latch interface {
	Flush()
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now Cycle)

// Tick implements Ticker.
func (f TickFunc) Tick(now Cycle) { f(now) }

// Activity is the quiescence latch between one Ticker and the scheduler: it
// holds the next cycle at which the component must run. The component is
// skipped while that cycle is in the future.
//
// Lowering the wake time (Wake/WakeAt) is always safe and is how input
// sources re-arm a sleeping consumer. Raising it (Sleep) is the owning
// component's privilege, legal only when its Tick is a no-op until the given
// cycle. The zero value is awake.
type Activity struct {
	wakeAt atomic.Int64
}

// WakeAt lowers the wake time to at most at: the component will run at cycle
// at (or earlier). Never raises the wake time.
func (a *Activity) WakeAt(at Cycle) {
	for {
		cur := a.wakeAt.Load()
		if cur <= at {
			return
		}
		if a.wakeAt.CompareAndSwap(cur, at) {
			return
		}
	}
}

// Wake makes the component runnable immediately.
func (a *Activity) Wake() { a.WakeAt(0) }

// Sleep sets the wake time to until unconditionally. Only the owning
// component may call it, and only when its Tick is a no-op for every cycle
// before until (all inputs quiet; any already-scheduled input event must be
// reflected in until).
func (a *Activity) Sleep(until Cycle) { a.wakeAt.Store(until) }

// Asleep reports whether the component would be skipped at cycle now.
func (a *Activity) Asleep(now Cycle) bool { return a.wakeAt.Load() > now }

// IdleTicker is a Ticker that participates in quiescence skipping. The
// engine consults the returned Activity (which must be stable across calls)
// before each Tick.
type IdleTicker interface {
	Ticker
	Activity() *Activity
}

// Flusher is a per-shard dirty list: latches that mark themselves during the
// Tick phase (Queue/Reg bound via their Bind methods) are flushed exactly
// once in the following Flush phase, and untouched latches are never walked.
// A latch bound to a Flusher must not also be passed to RegisterLatch.
type Flusher struct {
	dirty []Latch
}

// Mark schedules l for the next flush phase. Callers must mark at most once
// per cycle per latch (Queue and Reg guarantee this with a dirty bit).
//lint:allow(hotalloc) dirty-list growth is bounded by the shard's latch count; run() truncates in place so capacity is reused
func (f *Flusher) Mark(l Latch) { f.dirty = append(f.dirty, l) }

// run flushes and clears the dirty list.
func (f *Flusher) run() {
	for i, l := range f.dirty {
		l.Flush()
		f.dirty[i] = nil
	}
	f.dirty = f.dirty[:0]
}

// shard is one scheduling unit: a tick list with its skip state, a static
// flush list, and a dirty-latch flusher, plus the parked worker's channels.
type shard struct {
	tickers  []Ticker
	acts     []*Activity // parallel to tickers; nil entries always run
	latches  []Latch
	flusher  Flusher
	deferred []func(now Cycle) // staged by this shard's Ticks, drained at the barrier

	// Fast-forward bookkeeping, written by the shard's own tick phase and
	// read by the stepping goroutine after the flush barrier: whether any
	// Tick ran this cycle, and the earliest wake among the skipped tickers.
	ticked   bool
	idleWake Cycle

	start chan Cycle    // releases the worker into a tick phase
	gate  chan struct{} // releases the worker into the flush phase
}

// Binder is implemented by components that need to know which engine and
// shard they were registered into (e.g. to stage cross-shard work with
// AtBarrier). RegisterSharded calls BindEngine before the first Step.
type Binder interface {
	BindEngine(e *Engine, sh int)
}

// Engine drives a set of Tickers and Latches through simulated cycles.
type Engine struct {
	now    Cycle
	shards []shard

	parallel   bool
	skip       bool
	latchRR    int
	phase      chan struct{} // workers report phase completion here
	closed     bool
	stepHooks  []func(now Cycle)
	hookClocks []*Activity // parallel to stepHooks; a nil entry disables fast-forward
	ffEnd      Cycle       // exclusive fast-forward bound, set by Run/RunUntil
}

// New returns an Engine with a single shard, executing serially, with
// quiescence skipping enabled.
func New() *Engine {
	return newEngine(1)
}

// NewParallel returns an Engine with n shards whose Tick and Flush phases
// run concurrently on persistent workers (one long-lived goroutine per shard
// beyond the first; shard 0 runs on the stepping goroutine). Components
// registered in different shards must not share mutable non-latched state.
// Call Close when done with the engine to park the workers.
func NewParallel(n int) *Engine {
	if n < 1 {
		n = 1
	}
	e := newEngine(n)
	if n > 1 {
		e.parallel = true
		e.phase = make(chan struct{}, n-1)
		for i := 1; i < n; i++ {
			s := &e.shards[i]
			s.start = make(chan Cycle, 1)
			s.gate = make(chan struct{}, 1)
			go e.worker(s)
		}
	}
	return e
}

func newEngine(n int) *Engine {
	return &Engine{shards: make([]shard, n), skip: true}
}

// Shards reports the number of shards.
func (e *Engine) Shards() int { return len(e.shards) }

// SetIdleSkip enables or disables quiescence skipping (enabled by default).
// Disabling it ticks every component every cycle — the reference schedule
// the golden determinism tests compare against.
func (e *Engine) SetIdleSkip(on bool) { e.skip = on }

// Register adds t to shard 0 (always valid).
func (e *Engine) Register(t Ticker) { e.RegisterSharded(0, t) }

// RegisterSharded adds t to the given shard. Within a shard, Tickers run in
// registration order. If t implements IdleTicker its Activity governs
// skipping. Registration is only legal between Steps.
func (e *Engine) RegisterSharded(sh int, t Ticker) {
	sh %= len(e.shards)
	s := &e.shards[sh]
	s.tickers = append(s.tickers, t)
	var a *Activity
	if it, ok := t.(IdleTicker); ok {
		a = it.Activity()
	}
	s.acts = append(s.acts, a)
	if b, ok := t.(Binder); ok {
		b.BindEngine(e, sh)
	}
}

// RegisterStepHook adds f to the list of functions run at the top of every
// Step, on the stepping goroutine, before any shard ticks. Hooks observe the
// fully-flushed state of the previous cycle and must not mutate component
// state; they exist for whole-simulation sampling (e.g. stats.Pending).
func (e *Engine) RegisterStepHook(f func(now Cycle)) {
	e.stepHooks = append(e.stepHooks, f)
	e.hookClocks = append(e.hookClocks, nil)
}

// RegisterStepHookClocked is RegisterStepHook for hooks that participate in
// cycle fast-forwarding: a is the hook's clock, holding the next cycle at
// which the hook needs to run (the hook maintains it like a Ticker's
// Activity — Sleep forward from inside the hook, WakeAt from producers).
// When every ticker in every shard is asleep and every registered hook has a
// clock, the engine jumps Now directly to the earliest wake instead of
// stepping provably no-op cycles one by one; a hook registered through plain
// RegisterStepHook pins the engine to cycle-by-cycle stepping.
func (e *Engine) RegisterStepHookClocked(f func(now Cycle), a *Activity) {
	e.stepHooks = append(e.stepHooks, f)
	e.hookClocks = append(e.hookClocks, a)
}

// AtBarrier stages f to run at the tick/flush boundary of the current cycle,
// on the stepping goroutine, after every shard's tick phase has completed and
// before any flush begins. At that point no component is running, so f may
// safely touch state across shards (the canonical use is releasing a
// processor barrier whose waiters live in multiple shards). sh must be the
// shard of the Ticker staging the call — each shard's deferred list is
// single-writer during the tick phase. Deferred functions run in shard
// order, then in staging order within a shard, making the drain
// deterministic.
func (e *Engine) AtBarrier(sh int, f func(now Cycle)) {
	s := &e.shards[sh%len(e.shards)]
	s.deferred = append(s.deferred, f)
}

// runDeferred drains every shard's deferred list at the tick/flush boundary.
func (e *Engine) runDeferred(now Cycle) {
	for i := range e.shards {
		s := &e.shards[i]
		if len(s.deferred) == 0 {
			continue
		}
		for j, f := range s.deferred {
			f(now)
			s.deferred[j] = nil
		}
		s.deferred = s.deferred[:0]
	}
}

// RegisterLatch adds l to the every-cycle flush list. Flush work is sharded
// round-robin across the workers; latch flush order is unspecified (latches
// must be independent, which double-buffering guarantees).
func (e *Engine) RegisterLatch(l Latch) {
	e.RegisterLatchSharded(e.latchRR, l)
	e.latchRR++
}

// RegisterLatchSharded adds l to the given shard's flush list. The latch
// must only be written by Tickers of the same shard.
func (e *Engine) RegisterLatchSharded(sh int, l Latch) {
	s := &e.shards[sh%len(e.shards)]
	s.latches = append(s.latches, l)
}

// Flusher returns the given shard's dirty-latch flusher, for binding latches
// that should be flushed only on cycles they are written (Queue.Bind,
// Reg.Bind).
func (e *Engine) Flusher(sh int) *Flusher {
	return &e.shards[sh%len(e.shards)].flusher
}

// Now returns the current cycle (the cycle about to be, or being, executed).
func (e *Engine) Now() Cycle { return e.now }

// worker is the persistent loop of one extra shard: tick, report, wait for
// the global tick barrier, flush, report.
func (e *Engine) worker(s *shard) {
	for now := range s.start {
		e.tickShard(s, now)
		e.phase <- struct{}{}
		<-s.gate
		e.flushShard(s)
		e.phase <- struct{}{}
	}
}

func (e *Engine) tickShard(s *shard, now Cycle) {
	if e.skip {
		ticked := false
		idle := Never
		for i, t := range s.tickers {
			if a := s.acts[i]; a != nil {
				if w := Cycle(a.wakeAt.Load()); w > now {
					if w < idle {
						idle = w
					}
					continue
				}
			}
			t.Tick(now)
			ticked = true
		}
		s.ticked, s.idleWake = ticked, idle
		return
	}
	s.ticked = len(s.tickers) > 0
	for _, t := range s.tickers {
		t.Tick(now)
	}
}

func (e *Engine) flushShard(s *shard) {
	s.flusher.run()
	for _, l := range s.latches {
		l.Flush()
	}
}

// Step executes one full cycle: step hooks, then all Ticks, then any
// barrier-deferred work, then all Flushes. The deferred drain and the flush
// phase start only after every shard's tick phase has completed.
func (e *Engine) Step() {
	now := e.now
	for _, f := range e.stepHooks {
		f(now)
	}
	if e.parallel {
		rest := e.shards[1:]
		for i := range rest {
			rest[i].start <- now
		}
		e.tickShard(&e.shards[0], now)
		for range rest {
			<-e.phase
		}
		e.runDeferred(now)
		for i := range rest {
			rest[i].gate <- struct{}{}
		}
		e.flushShard(&e.shards[0])
		for range rest {
			<-e.phase
		}
	} else {
		s := &e.shards[0]
		e.tickShard(s, now)
		e.runDeferred(now)
		e.flushShard(s)
	}
	e.now++
	if e.skip && e.ffEnd > e.now {
		e.fastForward()
	}
}

// fastForward jumps Now past provably no-op cycles: if no Tick ran this
// cycle, every remaining component is asleep (wires wake their observer at
// the event's arrival cycle, so in-flight traffic keeps its receiver's wake
// time honest), flushes are empty, and the only thing the skipped cycles
// could do is run step hooks — which the hook clocks bound. Jumping to the
// earliest wake therefore produces the bit-identical state the skipped
// steps would have. Bounded by ffEnd so Run(n) still stops on its cycle.
func (e *Engine) fastForward() {
	min := e.ffEnd
	for i := range e.shards {
		s := &e.shards[i]
		if s.ticked {
			return
		}
		if s.idleWake < min {
			min = s.idleWake
		}
	}
	for _, a := range e.hookClocks {
		if a == nil {
			return
		}
		if w := Cycle(a.wakeAt.Load()); w < min {
			min = w
		}
	}
	if min > e.now {
		e.now = min
	}
}

// Close parks the engine's persistent workers. The engine must not be
// stepped afterwards. Safe to call repeatedly, and a no-op for serial
// engines.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if !e.parallel {
		return
	}
	for i := 1; i < len(e.shards); i++ {
		close(e.shards[i].start)
	}
}

// Run executes n cycles. Quiescent spans inside the budget may be
// fast-forwarded (see fastForward); the engine still stops exactly at the
// budget's end.
func (e *Engine) Run(n Cycle) {
	end := e.now + n
	e.ffEnd = end
	for e.now < end {
		e.Step()
	}
	e.ffEnd = 0
}

// RunUntil steps until done() reports true or max cycles have elapsed since
// the call. It returns true if done() became true. done is evaluated between
// cycles, so all components agree on the state it observed; fast-forwarded
// cycles are state-preserving no-ops, so skipping their done() evaluations
// cannot change the answer.
func (e *Engine) RunUntil(done func() bool, max Cycle) bool {
	end := e.now + max
	e.ffEnd = end
	for e.now < end {
		if done() {
			e.ffEnd = 0
			return true
		}
		e.Step()
	}
	e.ffEnd = 0
	return done()
}
