// Package sim provides the cycle-synchronous simulation engine underneath
// every experiment in this repository.
//
// The paper's simulator executes every cycle "explicitly and synchronously by
// all objects; at any time in the simulation, all objects have executed up to
// the same point" (§3). We reproduce that contract with a two-phase engine:
//
//  1. Tick phase: every registered Ticker observes the current (latched)
//     state of its inputs and writes only to state it owns, plus to the
//     "next" side of Latches it is the unique writer of.
//  2. Flush phase: every Latch moves its "next" side to its "current" side.
//
// Because Tickers never observe another component's same-cycle writes, the
// result is independent of tick order, which in turn makes the optional
// sharded parallel execution (experiment X3 in DESIGN.md) bit-identical to
// serial execution.
//
// # Hot path
//
// Three mechanisms keep the per-cycle cost proportional to activity rather
// than to the number of registered components:
//
//   - Persistent workers. A parallel engine starts one long-lived goroutine
//     per extra shard in NewParallel; Step releases them through a channel
//     barrier (tick phase, barrier, flush phase, barrier) instead of
//     spawning goroutines every cycle. Engine.Close parks them permanently.
//
//   - Quiescence skipping. A Ticker that also implements IdleTicker exposes
//     an Activity — a wake-time latch. The scheduler skips any component
//     whose Activity says it is asleep, and a component parked with
//     Sleep(Never) leaves its shard's active-set worklist entirely
//     (activeset.go): it costs zero instructions per cycle until a wake
//     edge (Activity.WakeAt) re-enqueues it. The protocol invariant is that
//     a component may only sleep while its Tick is a provable no-op, and
//     must be woken no later than the cycle any of its inputs can change;
//     link.Wire drives those wake edges automatically for observed wires.
//     Under that invariant skipping is bit-identical to ticking every
//     cycle, which the golden determinism tests in internal/harness enforce
//     on full experiment workloads.
//
//   - Dirty latch flushing. Latches registered with RegisterLatch are walked
//     every cycle (sharded across the workers); latches bound to a shard's
//     Flusher are walked only on cycles in which they were actually written,
//     and the production wires/queues mark themselves by dense int32 ID
//     (BindID/MarkID) so the hot marking path appends an integer, not an
//     interface value.
//
// Shard discipline: components in different shards must not share mutable
// non-latched state. A component and every writer into its input wires must
// live in the same shard, with one exception: a link.Wire marked CrossShard
// is a legal cross-shard edge — its sends are staged on the writer's side
// and merged into the consumer-visible event list at the flush barrier, and
// the consumer's Activity is woken only at merge time (wake times are
// atomic CAS-min, so cross-shard wakes commute). Cross-shard effects that
// are not wire sends (e.g. barrier releases waking processors in other
// shards) must be deferred to the tick/flush boundary with AtBarrier, where
// no shard is ticking. The harness partitions fabrics with topo.Network's
// partition hook so that each node's router, NIC, and processor share a
// shard and wires are the only cross-shard edges; under that discipline
// multi-shard execution is bit-identical to serial.
package sim

import (
	"math"
	"sync/atomic"
)

// Cycle is a simulated time in cycles.
type Cycle = int64

// Never is a cycle later than any a simulation will reach; Activity.Sleep
// with Never parks a component until an explicit wake.
const Never Cycle = math.MaxInt64

// Ticker is a component that does work each cycle. During Tick it may read
// any latched state but must only mutate state it owns.
type Ticker interface {
	Tick(now Cycle)
}

// Latch is double-buffered state flushed between cycles. Flush is called
// after all Tickers have run for the cycle.
type Latch interface {
	Flush()
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now Cycle)

// Tick implements Ticker.
func (f TickFunc) Tick(now Cycle) { f(now) }

// Activity is the quiescence latch between one Ticker and the scheduler: it
// holds the next cycle at which the component must run. The component is
// skipped while that cycle is in the future.
//
// Lowering the wake time (Wake/WakeAt) is always safe and is how input
// sources re-arm a sleeping consumer. Raising it (Sleep) is the owning
// component's privilege, legal only when its Tick is a no-op until the given
// cycle. The zero value is awake.
type Activity struct {
	wakeAt atomic.Int64

	// Active-set linkage, installed by RegisterSharded: set/idx identify the
	// owning shard's worklist slot and queued is the membership dedup flag.
	// The invariant is queued == "idx is in the worklist (active, mailbox,
	// late, or hold)", and queued=false implies wakeAt == Never — a parked
	// component re-enters the worklist through the first WakeAt that lowers
	// its wake time. Unregistered activities (hook clocks, standalone tests)
	// have a nil set and skip the enqueue entirely.
	set    *activeSet
	idx    int32
	queued atomic.Bool
}

// WakeAt lowers the wake time to at most at: the component will run at cycle
// at (or earlier). Never raises the wake time.
func (a *Activity) WakeAt(at Cycle) {
	for {
		cur := a.wakeAt.Load()
		if cur <= at {
			return
		}
		if a.wakeAt.CompareAndSwap(cur, at) {
			break
		}
	}
	// The wake time was lowered; make sure the component is in its shard's
	// worklist. The plain Load keeps the common already-queued case to one
	// atomic read; the CAS arbitrates racing producers so exactly one
	// enqueues. (A parked component always sits at Never, so any producer
	// that finds cur <= at and returns early raced one that lowered the time
	// and reached this enqueue.)
	if a.set != nil && !a.queued.Load() && a.queued.CompareAndSwap(false, true) {
		a.set.enqueue(a.idx)
	}
}

// Wake makes the component runnable immediately.
func (a *Activity) Wake() { a.WakeAt(0) }

// Sleep sets the wake time to until unconditionally. Only the owning
// component may call it, and only when its Tick is a no-op for every cycle
// before until (all inputs quiet; any already-scheduled input event must be
// reflected in until).
func (a *Activity) Sleep(until Cycle) { a.wakeAt.Store(until) }

// Asleep reports whether the component would be skipped at cycle now.
func (a *Activity) Asleep(now Cycle) bool { return a.wakeAt.Load() > now }

// IdleTicker is a Ticker that participates in quiescence skipping. The
// engine consults the returned Activity (which must be stable across calls)
// before each Tick.
type IdleTicker interface {
	Ticker
	Activity() *Activity
}

// Flusher is a per-shard dirty list: latches that mark themselves during the
// Tick phase (Queue/Reg bound via their Bind methods, cross-shard wires via
// link.Wire.CrossShard) are flushed exactly once in the following Flush
// phase, and untouched latches are never walked. A latch bound to a Flusher
// must not also be passed to RegisterLatch.
//
// Latches that register with BindID are marked by dense ID (MarkID): the
// dirty list is then a flat int32 array and the flush phase a linear walk of
// arena-resident IDs, with no interface append (and no GC write barrier) on
// the hot marking path. The object-based Mark remains for latches without a
// registration site.
type Flusher struct {
	dirty []Latch
	table []Latch // BindID-registered latches, indexed by dense ID
	ids   []int32 // IDs marked dirty this cycle
}

// BindID registers l for ID-based marking and returns its dense ID. The ID
// is only meaningful to this Flusher; callers store it and pass it back to
// MarkID. Registration happens at build time, before the first Step.
func (f *Flusher) BindID(l Latch) int32 {
	f.table = append(f.table, l)
	return int32(len(f.table) - 1)
}

// MarkID schedules the latch registered under id for the next flush phase.
// Callers must mark at most once per cycle per latch.
//lint:allow(hotalloc) dirty-ID growth is bounded by the number of bound latches; run() truncates in place so capacity is reused
func (f *Flusher) MarkID(id int32) { f.ids = append(f.ids, id) }

// Mark schedules l for the next flush phase. Callers must mark at most once
// per cycle per latch (Queue and Reg guarantee this with a dirty bit). The
// production wires and queues all mark by dense ID (BindID/MarkID); Mark
// remains for ad-hoc latches that skip Bind.
func (f *Flusher) Mark(l Latch) { f.dirty = append(f.dirty, l) }

// run flushes and clears the dirty lists: ID-marked latches first (in mark
// order), then object-marked ones. Latches are independent (double-buffered),
// so the relative order of the two lists is unobservable.
func (f *Flusher) run() {
	for _, id := range f.ids {
		f.table[id].Flush()
	}
	f.ids = f.ids[:0]
	for i, l := range f.dirty {
		l.Flush()
		f.dirty[i] = nil
	}
	f.dirty = f.dirty[:0]
}

// deferredCall is one AtBarrier entry: f runs at the window boundary `due`
// (with now = due-1, the last cycle before the boundary). In per-tick mode
// due is always the staging cycle plus one, reproducing the classic
// run-at-this-cycle's-barrier behavior.
type deferredCall struct {
	due Cycle
	f   func(now Cycle)
}

// shard is one scheduling unit: a tick list with its skip state, a static
// flush list, and a dirty-latch flusher, plus the parked worker's channels.
type shard struct {
	tickers  []Ticker
	acts     []*Activity // parallel to tickers; nil entries always run
	as       activeSet   // tick worklist (quiescence-skipping schedules)
	latches  []Latch
	flusher  Flusher
	deferred []deferredCall // staged by this shard's Ticks, drained at window boundaries

	// crossFl is the shard's cross-shard wire flusher in windowed mode: the
	// stepping goroutine drains it at window boundaries (sequentially, in
	// shard order), instead of the per-cycle flush phase. Per-tick engines
	// alias cross wires onto the ordinary flusher.
	crossFl Flusher

	// Fast-forward bookkeeping, written by the shard's own tick phase and
	// read by the stepping goroutine after the flush barrier: whether any
	// Tick ran this cycle, and the earliest wake among the skipped tickers.
	ticked   bool
	idleWake Cycle

	start chan Cycle    // releases the worker into a tick phase
	gate  chan struct{} // releases the worker into the flush phase
}

// Binder is implemented by components that need to know which engine and
// shard they were registered into (e.g. to stage cross-shard work with
// AtBarrier). RegisterSharded calls BindEngine before the first Step.
type Binder interface {
	BindEngine(e *Engine, sh int)
}

// WindowSync is the engine's hook into a cross-process synchronizer
// (internal/dist): in windowed mode the stepping goroutine calls AtBoundary
// once per window boundary, after draining the deferred list and the
// cross-shard wire flushers, with the boundary cycle `next` (the first cycle
// of the following window), whether this process's done predicate holds,
// whether any owned shard ticked during the window, and the earliest local
// wake time (valid only when nothing ticked; Never if fully quiescent).
//
// AtBoundary exchanges frames with every peer and returns whether the done
// predicate holds in all processes (evaluated at the same boundary
// everywhere) and the earliest global wake — `next` itself when any process
// ticked (no jump), Never when the whole simulation is quiescent with no
// scheduled work.
type WindowSync interface {
	AtBoundary(next Cycle, localDone, ticked bool, idle Cycle) (done bool, globalIdle Cycle)
}

// Engine drives a set of Tickers and Latches through simulated cycles.
type Engine struct {
	now    Cycle
	shards []shard
	lo, hi int // owned shard range [lo,hi); unowned shards never tick

	parallel   bool
	skip       bool
	latchRR    int
	phase      chan struct{} // workers report phase completion here
	closed     bool
	stepHooks  []func(now Cycle)
	hookClocks []*Activity // parallel to stepHooks; a nil entry disables fast-forward
	ffEnd      Cycle       // exclusive fast-forward bound, set by Run/RunUntil

	// Conservative time-window synchronization (windowed mode): window W > 1
	// lets shards free-run W cycles between barriers, legal when every
	// cross-shard wire's arrival offset is at least W (router.NewChannelSync
	// pads channels to guarantee it). winEnd is the current window's
	// exclusive end, published to workers before their release. sync, when
	// set, is the cross-process synchronizer; crossHook (a topo.CrossHook,
	// held as any to avoid an import cycle) lets a transport claim boundary-
	// crossing channels during topology registration.
	window    Cycle
	winEnd    Cycle
	sync      WindowSync
	crossHook any
}

// New returns an Engine with a single shard, executing serially, with
// quiescence skipping enabled.
func New() *Engine {
	return newEngine(1)
}

// NewParallel returns an Engine with n shards whose Tick and Flush phases
// run concurrently on persistent workers (one long-lived goroutine per shard
// beyond the first; shard 0 runs on the stepping goroutine). Components
// registered in different shards must not share mutable non-latched state.
// Call Close when done with the engine to park the workers.
func NewParallel(n int) *Engine {
	if n < 1 {
		n = 1
	}
	return NewParallelOwned(n, 0, n)
}

// NewParallelOwned returns an Engine with total shards of which it executes
// only the contiguous range [lo,hi) — the worker-process form of NewParallel
// used by the distributed runner: every process builds the same total-shard
// simulation but ticks only its owned slice, with registrations outside the
// range dropped and cross-boundary wires carried by a WindowSync transport.
// NewParallelOwned(n, 0, n) is NewParallel(n).
func NewParallelOwned(total, lo, hi int) *Engine {
	if total < 1 {
		total = 1
	}
	if lo < 0 || hi > total || lo >= hi {
		panic("sim: NewParallelOwned range out of bounds")
	}
	e := newEngine(total)
	e.lo, e.hi = lo, hi
	if hi-lo > 1 {
		e.parallel = true
		e.phase = make(chan struct{}, hi-lo-1)
		for i := lo + 1; i < hi; i++ {
			s := &e.shards[i]
			s.start = make(chan Cycle, 1)
			s.gate = make(chan struct{}, 1)
			go e.worker(s)
		}
	}
	return e
}

func newEngine(n int) *Engine {
	return &Engine{shards: make([]shard, n), hi: n, skip: true, window: 1}
}

// Shards reports the number of shards.
func (e *Engine) Shards() int { return len(e.shards) }

// Owns reports whether the engine executes shard sh (see NewParallelOwned).
func (e *Engine) Owns(sh int) bool {
	sh %= len(e.shards)
	return sh >= e.lo && sh < e.hi
}

// Owned reports the engine's owned shard range [lo,hi).
func (e *Engine) Owned() (lo, hi int) { return e.lo, e.hi }

// SetWindow sets the conservative synchronization window W (default 1).
// With W > 1, Run and RunUntil execute in windows: shards free-run from one
// boundary of the absolute W-aligned lattice to the next with no barrier in
// between, cross-shard wires drain once per window, AtBarrier work releases
// at lattice points, and step hooks (all of which must be clocked) run at
// window starts when due. This is only legal when every cross-shard wire
// arrival lands at or after the next boundary — the fabric must be built
// with the same window (router.NewChannelSync), making W a model parameter:
// a fixed W is bit-identical across all {shards x processes} splits, and
// W = 1 is today's per-tick model. Call before registering components.
func (e *Engine) SetWindow(w Cycle) {
	if w < 1 {
		w = 1
	}
	e.window = w
}

// Window reports the synchronization window.
func (e *Engine) Window() Cycle { return e.window }

// SetWindowSync installs the cross-process synchronizer, switching Run and
// RunUntil into windowed mode (even at W = 1, where every cycle is a
// boundary). Call before registering components.
func (e *Engine) SetWindowSync(s WindowSync) { e.sync = s }

// SetCrossHook installs a transport hook consulted by topo.MarkCross for
// every boundary-crossing channel (stored as any: the hook's concrete type,
// topo.CrossHook, lives above this package). CrossHook returns it.
func (e *Engine) SetCrossHook(h any) { e.crossHook = h }

// CrossHook returns the hook installed by SetCrossHook, or nil.
func (e *Engine) CrossHook() any { return e.crossHook }

// windowed reports whether Run/RunUntil use the window loop.
func (e *Engine) windowed() bool { return e.window > 1 || e.sync != nil }

// SetIdleSkip enables or disables quiescence skipping (enabled by default).
// Disabling it ticks every component every cycle — the reference schedule
// the golden determinism tests compare against.
func (e *Engine) SetIdleSkip(on bool) { e.skip = on }

// Register adds t to shard 0 (always valid).
func (e *Engine) Register(t Ticker) { e.RegisterSharded(0, t) }

// RegisterSharded adds t to the given shard. Within a shard, Tickers run in
// registration order. If t implements IdleTicker its Activity governs
// skipping. Registration is only legal between Steps.
func (e *Engine) RegisterSharded(sh int, t Ticker) {
	sh %= len(e.shards)
	if sh < e.lo || sh >= e.hi {
		// Unowned shard: another process ticks it. Dropping the registration
		// (and the Binder call) keeps the component inert here — its state is
		// never read, so the build stays cheap and identical in shape.
		return
	}
	s := &e.shards[sh]
	idx := int32(len(s.tickers))
	s.tickers = append(s.tickers, t)
	var a *Activity
	if it, ok := t.(IdleTicker); ok {
		a = it.Activity()
	}
	s.acts = append(s.acts, a)
	s.as.register(idx, a)
	if b, ok := t.(Binder); ok {
		b.BindEngine(e, sh)
	}
}

// RegisterStepHook adds f to the list of functions run at the top of every
// Step, on the stepping goroutine, before any shard ticks. Hooks observe the
// fully-flushed state of the previous cycle and must not mutate component
// state; they exist for whole-simulation sampling (e.g. stats.Pending).
func (e *Engine) RegisterStepHook(f func(now Cycle)) {
	e.stepHooks = append(e.stepHooks, f)
	e.hookClocks = append(e.hookClocks, nil)
}

// RegisterStepHookClocked is RegisterStepHook for hooks that participate in
// cycle fast-forwarding: a is the hook's clock, holding the next cycle at
// which the hook needs to run (the hook maintains it like a Ticker's
// Activity — Sleep forward from inside the hook, WakeAt from producers).
// When every ticker in every shard is asleep and every registered hook has a
// clock, the engine jumps Now directly to the earliest wake instead of
// stepping provably no-op cycles one by one; a hook registered through plain
// RegisterStepHook pins the engine to cycle-by-cycle stepping.
func (e *Engine) RegisterStepHookClocked(f func(now Cycle), a *Activity) {
	e.stepHooks = append(e.stepHooks, f)
	e.hookClocks = append(e.hookClocks, a)
}

// AtBarrier stages f to run at the next window boundary, on the stepping
// goroutine, after every shard's tick phase has completed and before the
// following window begins. At that point no component is running, so f may
// safely touch state across shards (the canonical use is releasing a
// processor barrier whose waiters live in multiple shards). sh must be the
// shard of the Ticker staging the call and now the staging cycle — each
// shard's deferred list is single-writer during the tick phase. Deferred
// functions run in shard order, then in staging order within a shard, making
// the drain deterministic.
//
// f's release cycle is quantized to the absolute window lattice: it runs
// with now = due-1 where due = now - now%W + W, regardless of incidental
// boundaries (Run chunk ends, hook-clock clamps). In per-tick mode (W = 1)
// due is now+1, i.e. f runs at this cycle's tick/flush boundary, as before.
// The quantization is what keeps barrier releases bit-identical across
// every {shards x processes} split and any Run chunking.
func (e *Engine) AtBarrier(sh int, now Cycle, f func(now Cycle)) {
	s := &e.shards[sh%len(e.shards)]
	s.deferred = append(s.deferred, deferredCall{due: now - now%e.window + e.window, f: f})
}

// runDeferred drains every owned shard's deferred entries that are due at or
// before the given boundary; later entries (staged under a clamped, earlier-
// than-lattice boundary) are retained. Each entry runs with now = due-1.
func (e *Engine) runDeferred(boundary Cycle) {
	for i := e.lo; i < e.hi; i++ {
		s := &e.shards[i]
		if len(s.deferred) == 0 {
			continue
		}
		kept := s.deferred[:0]
		for _, d := range s.deferred {
			if d.due <= boundary {
				d.f(d.due - 1)
			} else {
				kept = append(kept, d)
			}
		}
		for j := len(kept); j < len(s.deferred); j++ {
			s.deferred[j] = deferredCall{}
		}
		s.deferred = kept
	}
}

// RegisterLatch adds l to the every-cycle flush list. Flush work is sharded
// round-robin across the workers; latch flush order is unspecified (latches
// must be independent, which double-buffering guarantees).
func (e *Engine) RegisterLatch(l Latch) {
	e.RegisterLatchSharded(e.latchRR, l)
	e.latchRR++
}

// RegisterLatchSharded adds l to the given shard's flush list. The latch
// must only be written by Tickers of the same shard.
func (e *Engine) RegisterLatchSharded(sh int, l Latch) {
	s := &e.shards[sh%len(e.shards)]
	s.latches = append(s.latches, l)
}

// Flusher returns the given shard's dirty-latch flusher, for binding latches
// that should be flushed only on cycles they are written (Queue.Bind,
// Reg.Bind).
func (e *Engine) Flusher(sh int) *Flusher {
	return &e.shards[sh%len(e.shards)].flusher
}

// CrossFlusher returns the flusher cross-shard wires must bind to
// (link.Wire.CrossShard) for the given writer shard. In per-tick mode it is
// the ordinary shard flusher — staged sends merge in the writer's flush
// phase, as always. In windowed mode it is a separate per-shard list the
// stepping goroutine drains once per window boundary, sequentially in shard
// order: cross-window merges then happen with no shard ticking and in a
// deterministic order, which is also where a WindowSync transport serializes
// remote-bound events. Call after SetWindow/SetWindowSync.
func (e *Engine) CrossFlusher(sh int) *Flusher {
	s := &e.shards[sh%len(e.shards)]
	if e.windowed() {
		return &s.crossFl
	}
	return &s.flusher
}

// Now returns the current cycle (the cycle about to be, or being, executed).
func (e *Engine) Now() Cycle { return e.now }

// worker is the persistent loop of one extra shard. Per-tick mode: tick,
// report, wait for the global tick barrier, flush, report. Windowed mode
// (winEnd published past now before the release): free-run the whole window
// with per-cycle local flushes, then a single report — the window's only
// barrier.
func (e *Engine) worker(s *shard) {
	for now := range s.start {
		if end := e.winEnd; end > now {
			e.tickWindowShard(s, now, end)
			e.phase <- struct{}{}
			continue
		}
		e.tickShard(s, now)
		e.phase <- struct{}{}
		<-s.gate
		e.flushShard(s)
		e.phase <- struct{}{}
	}
}

// tickWindowShard runs one shard through cycles [now,end) with its local
// flushes in between — no cross-shard interaction: cross wires stage until
// the boundary drain, and channel padding guarantees nothing staged by a
// peer shard can arrive before end. s.ticked aggregates over the window.
func (e *Engine) tickWindowShard(s *shard, now, end Cycle) {
	ticked := false
	for t := now; t < end; t++ {
		e.tickShard(s, t)
		ticked = ticked || s.ticked
		e.flushShard(s)
	}
	s.ticked = ticked
}

func (e *Engine) tickShard(s *shard, now Cycle) {
	if e.skip {
		s.ticked, s.idleWake = s.as.sweep(s.tickers, s.acts, now)
		return
	}
	s.ticked = len(s.tickers) > 0
	for _, t := range s.tickers {
		t.Tick(now)
	}
}

func (e *Engine) flushShard(s *shard) {
	s.flusher.run()
	for _, l := range s.latches {
		l.Flush()
	}
}

// Step executes one full cycle: step hooks, then all Ticks, then any
// barrier-deferred work, then all Flushes. The deferred drain and the flush
// phase start only after every shard's tick phase has completed.
func (e *Engine) Step() {
	now := e.now
	for _, f := range e.stepHooks {
		f(now)
	}
	if e.parallel {
		rest := e.shards[e.lo+1 : e.hi]
		for i := range rest {
			rest[i].start <- now
		}
		e.tickShard(&e.shards[e.lo], now)
		for range rest {
			<-e.phase
		}
		e.runDeferred(now + 1)
		for i := range rest {
			rest[i].gate <- struct{}{}
		}
		e.flushShard(&e.shards[e.lo])
		for range rest {
			<-e.phase
		}
	} else {
		s := &e.shards[e.lo]
		e.tickShard(s, now)
		e.runDeferred(now + 1)
		e.flushShard(s)
	}
	e.now++
	if e.skip && e.ffEnd > e.now {
		e.fastForward()
	}
}

// fastForward jumps Now past provably no-op cycles: if no Tick ran this
// cycle, every remaining component is asleep (wires wake their observer at
// the event's arrival cycle, so in-flight traffic keeps its receiver's wake
// time honest), flushes are empty, and the only thing the skipped cycles
// could do is run step hooks — which the hook clocks bound. Jumping to the
// earliest wake therefore produces the bit-identical state the skipped
// steps would have. Bounded by ffEnd so Run(n) still stops on its cycle.
func (e *Engine) fastForward() {
	min := e.ffEnd
	for i := e.lo; i < e.hi; i++ {
		s := &e.shards[i]
		if s.ticked {
			return
		}
		if s.idleWake < min {
			min = s.idleWake
		}
	}
	for _, a := range e.hookClocks {
		if a == nil {
			return
		}
		if w := Cycle(a.wakeAt.Load()); w < min {
			min = w
		}
	}
	if min > e.now {
		e.now = min
	}
}

// Close parks the engine's persistent workers. The engine must not be
// stepped afterwards. Safe to call repeatedly, and a no-op for serial
// engines.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if !e.parallel {
		return
	}
	for i := e.lo + 1; i < e.hi; i++ {
		close(e.shards[i].start)
	}
}

// Run executes n cycles. Quiescent spans inside the budget may be
// fast-forwarded (see fastForward); the engine still stops exactly at the
// budget's end. Windowed engines (SetWindow > 1 or SetWindowSync) execute
// the budget in window units instead of single Steps.
func (e *Engine) Run(n Cycle) {
	end := e.now + n
	if e.windowed() {
		e.runWindowed(end, nil)
		return
	}
	e.ffEnd = end
	for e.now < end {
		e.Step()
	}
	e.ffEnd = 0
}

// RunUntil steps until done() reports true or max cycles have elapsed since
// the call. It returns true if done() became true. done is evaluated between
// cycles, so all components agree on the state it observed; fast-forwarded
// cycles are state-preserving no-ops, so skipping their done() evaluations
// cannot change the answer. On windowed engines done is evaluated at window
// boundaries — the same boundary lattice for every {shards x processes}
// split, so the stopping cycle is split-invariant; under a WindowSync it is
// evaluated in every process and the run stops when all agree.
func (e *Engine) RunUntil(done func() bool, max Cycle) bool {
	end := e.now + max
	if e.windowed() {
		return e.runWindowed(end, done)
	}
	e.ffEnd = end
	for e.now < end {
		if done() {
			e.ffEnd = 0
			return true
		}
		e.Step()
	}
	e.ffEnd = 0
	return done()
}

// runWindowed is the window-mode main loop behind Run and RunUntil: from
// each boundary T it runs due step hooks, picks the window end E — the next
// point of the absolute W-aligned lattice, clamped by the budget and by any
// hook clock waking inside the window — free-runs every owned shard through
// [T,E) with only per-cycle local flushes, then performs the boundary work
// with no shard ticking: drain due AtBarrier entries, drain the cross-shard
// wire flushers (merging staged sends; a WindowSync transport serializes
// remote-bound ones here), and exchange frames with peer processes. Channel
// padding makes every cross-shard arrival land at or after the next
// boundary, so free-running cannot miss an input: the schedule each
// component observes is bit-identical to per-tick execution.
//
// When no owned shard ticked for a whole window, a full rescan of every
// activity and hook clock yields the earliest future wake; the engine then
// jumps to that wake's lattice point (floor — the window containing the wake
// must be ticked). Under a WindowSync the jump uses the global minimum, and
// the per-frame ticked bit makes "nothing ticked anywhere" detectable by all
// processes at the same boundary: a shard that ticked nowhere staged no
// events anywhere, so jumping is as safe as single-process fast-forward.
func (e *Engine) runWindowed(end Cycle, done func() bool) bool {
	for _, a := range e.hookClocks {
		if a == nil {
			panic("sim: unclocked step hook on a windowed engine (use RegisterStepHookClocked)")
		}
	}
	W := e.window
	for e.now < end {
		T := e.now
		// An idle jump can land exactly on a retained deferred entry's due
		// boundary (idleScan bounds jumps by deferred dues); release it before
		// anything observes cycle T, matching the per-tick order where the
		// barrier drain of cycle due-1 precedes done checks and hooks at due.
		e.runDeferred(T)
		if done != nil && e.sync == nil && done() {
			return true
		}
		for i, f := range e.stepHooks {
			if e.hookClocks[i].wakeAt.Load() <= T {
				f(T)
			}
		}
		E := T - T%W + W
		if E > end {
			E = end
		}
		for _, a := range e.hookClocks {
			if w := a.wakeAt.Load(); w > T && w < E {
				E = w
			}
		}
		e.tickWindow(T, E)
		e.runDeferred(E)
		anyTicked := false
		for i := e.lo; i < e.hi; i++ {
			s := &e.shards[i]
			anyTicked = anyTicked || s.ticked
			s.crossFl.run()
		}
		e.now = E
		idle := E
		if !anyTicked {
			idle = e.idleScan()
		}
		if e.sync != nil {
			ldone := done != nil && done()
			gdone, gidle := e.sync.AtBoundary(E, ldone, anyTicked, idle)
			if gdone {
				return true
			}
			idle = gidle
		}
		if idle > e.now {
			j := idle
			if j != Never {
				j -= j % W
			}
			if j > end {
				j = end
			}
			if j > e.now {
				e.now = j
			}
		}
	}
	return done != nil && done()
}

// tickWindow runs every owned shard through [T,E), in parallel when the
// engine has workers. The single phase join afterwards is the only barrier
// of the window.
func (e *Engine) tickWindow(T, E Cycle) {
	if e.parallel {
		e.winEnd = E
		rest := e.shards[e.lo+1 : e.hi]
		for i := range rest {
			rest[i].start <- T
		}
		e.tickWindowShard(&e.shards[e.lo], T, E)
		for range rest {
			<-e.phase
		}
		return
	}
	e.tickWindowShard(&e.shards[e.lo], T, E)
}

// idleScan computes the earliest future wake across every owned component
// and hook clock — the windowed analog of fastForward's bound, recomputed
// from scratch because boundary merges may have lowered wake times after the
// shards' own tick-phase minimums were taken. Only meaningful when no owned
// shard ticked this window.
func (e *Engine) idleScan() Cycle {
	min := Never
	for i := e.lo; i < e.hi; i++ {
		s := &e.shards[i]
		for _, a := range s.acts {
			if a == nil {
				return e.now // unclocked ticker: never jump
			}
			if w := a.wakeAt.Load(); w < min {
				min = w
			}
		}
		if len(s.deferred) > 0 && s.deferred[0].due < min {
			min = s.deferred[0].due
		}
	}
	for _, a := range e.hookClocks {
		if w := a.wakeAt.Load(); w < min {
			min = w
		}
	}
	return min
}
