// Package sim provides the cycle-synchronous simulation engine underneath
// every experiment in this repository.
//
// The paper's simulator executes every cycle "explicitly and synchronously by
// all objects; at any time in the simulation, all objects have executed up to
// the same point" (§3). We reproduce that contract with a two-phase engine:
//
//  1. Tick phase: every registered Ticker observes the current (latched)
//     state of its inputs and writes only to state it owns, plus to the
//     "next" side of Latches it is the unique writer of.
//  2. Flush phase: every Latch moves its "next" side to its "current" side.
//
// Because Tickers never observe another component's same-cycle writes, the
// result is independent of tick order, which in turn makes the optional
// sharded parallel execution (used as an ablation, experiment X3 in
// DESIGN.md) bit-identical to serial execution.
package sim

import "sync"

// Cycle is a simulated time in cycles.
type Cycle = int64

// Ticker is a component that does work each cycle. During Tick it may read
// any latched state but must only mutate state it owns.
type Ticker interface {
	Tick(now Cycle)
}

// Latch is double-buffered state flushed between cycles. Flush is called
// after all Tickers have run for the cycle.
type Latch interface {
	Flush()
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now Cycle)

// Tick implements Ticker.
func (f TickFunc) Tick(now Cycle) { f(now) }

// Engine drives a set of Tickers and Latches through simulated cycles.
type Engine struct {
	now     Cycle
	shards  [][]Ticker
	latches []Latch

	parallel bool
	wg       sync.WaitGroup
}

// New returns an Engine with a single shard, executing serially.
func New() *Engine {
	return &Engine{shards: make([][]Ticker, 1)}
}

// NewParallel returns an Engine with n shards whose Tick phases run
// concurrently. Components registered in different shards must not share
// mutable non-latched state.
func NewParallel(n int) *Engine {
	if n < 1 {
		n = 1
	}
	return &Engine{shards: make([][]Ticker, n), parallel: n > 1}
}

// Shards reports the number of shards.
func (e *Engine) Shards() int { return len(e.shards) }

// Register adds t to shard 0 (always valid).
func (e *Engine) Register(t Ticker) { e.RegisterSharded(0, t) }

// RegisterSharded adds t to the given shard. Within a shard, Tickers run in
// registration order.
func (e *Engine) RegisterSharded(shard int, t Ticker) {
	e.shards[shard%len(e.shards)] = append(e.shards[shard%len(e.shards)], t)
}

// RegisterLatch adds l to the flush list.
func (e *Engine) RegisterLatch(l Latch) { e.latches = append(e.latches, l) }

// Now returns the current cycle (the cycle about to be, or being, executed).
func (e *Engine) Now() Cycle { return e.now }

// Step executes one full cycle: all Ticks, then all Flushes.
func (e *Engine) Step() {
	now := e.now
	if e.parallel {
		e.wg.Add(len(e.shards))
		for _, shard := range e.shards {
			go func(ts []Ticker) {
				defer e.wg.Done()
				for _, t := range ts {
					t.Tick(now)
				}
			}(shard)
		}
		e.wg.Wait()
	} else {
		for _, shard := range e.shards {
			for _, t := range shard {
				t.Tick(now)
			}
		}
	}
	for _, l := range e.latches {
		l.Flush()
	}
	e.now++
}

// Run executes n cycles.
func (e *Engine) Run(n Cycle) {
	for i := Cycle(0); i < n; i++ {
		e.Step()
	}
}

// RunUntil steps until done() reports true or max cycles have elapsed since
// the call. It returns true if done() became true. done is evaluated between
// cycles, so all components agree on the state it observed.
func (e *Engine) RunUntil(done func() bool, max Cycle) bool {
	for i := Cycle(0); i < max; i++ {
		if done() {
			return true
		}
		e.Step()
	}
	return done()
}
