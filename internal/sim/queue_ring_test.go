package sim

import "testing"

// TestQueueRingWraparound pushes and pops across many cycles so the ring's
// head walks past the buffer end repeatedly, checking FIFO order throughout.
func TestQueueRingWraparound(t *testing.T) {
	q := NewQueue[int](4)
	next, want := 0, 0
	for cycle := 0; cycle < 100; cycle++ {
		for q.CanPush() {
			if !q.Push(next) {
				t.Fatal("CanPush lied")
			}
			next++
		}
		q.Flush()
		// Pop a varying number to slide the head around the ring.
		for k := 0; k <= cycle%3; k++ {
			v, ok := q.Pop()
			if !ok {
				break
			}
			if v != want {
				t.Fatalf("cycle %d: got %d, want %d", cycle, v, want)
			}
			want++
		}
	}
}

// TestQueueUnboundedGrowth checks unbounded queues keep FIFO order across
// ring growth while items are mid-ring.
func TestQueueUnboundedGrowth(t *testing.T) {
	q := NewQueue[int](0)
	for i := 0; i < 3; i++ {
		q.Push(i)
	}
	q.Flush()
	if v, _ := q.Pop(); v != 0 {
		t.Fatalf("got %d, want 0", v)
	}
	// Force growth with a wrapped, non-zero head.
	for i := 3; i < 40; i++ {
		q.Push(i)
	}
	q.Flush()
	for want := 1; want < 40; want++ {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Fatalf("got %d,%v, want %d", v, ok, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
}

// TestQueuePopZeroesSlot ensures popped ring slots do not retain references:
// the whole point of pooling packets is defeated if a stale *T in the ring
// keeps a recycled object reachable (and aliased) forever.
func TestQueuePopZeroesSlot(t *testing.T) {
	q := NewQueue[*int](2)
	v := new(int)
	q.Push(v)
	q.Flush()
	q.Pop()
	for i, s := range q.buf {
		if s != nil {
			t.Fatalf("slot %d retains a popped reference", i)
		}
	}
	// Drain must zero too.
	q.Push(v)
	q.Push(v)
	q.Flush()
	n := 0
	q.Drain(func(*int) { n++ })
	if n != 2 {
		t.Fatalf("drained %d, want 2", n)
	}
	for i, s := range q.buf {
		if s != nil {
			t.Fatalf("slot %d retains a drained reference", i)
		}
	}
}

// TestQueueDrainLeavesPending checks Drain consumes only the visible region.
func TestQueueDrainLeavesPending(t *testing.T) {
	q := NewQueue[int](0)
	q.Push(1)
	q.Flush()
	q.Push(2) // pending this cycle
	var got []int
	q.Drain(func(v int) { got = append(got, v) })
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("drained %v, want [1]", got)
	}
	q.Flush()
	if v, ok := q.Pop(); !ok || v != 2 {
		t.Fatalf("pending item lost: got %d,%v", v, ok)
	}
}

// TestQueueSteadyStateAllocFree checks a bounded queue allocates nothing
// after construction.
func TestQueueSteadyStateAllocFree(t *testing.T) {
	q := NewQueue[int](8)
	allocs := testing.AllocsPerRun(1000, func() {
		for q.CanPush() {
			q.Push(1)
		}
		q.Flush()
		for {
			if _, ok := q.Pop(); !ok {
				break
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("bounded queue allocates %.1f/op in steady state", allocs)
	}
}
