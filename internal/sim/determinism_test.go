package sim

import (
	"fmt"
	"strings"
	"testing"
)

// lcg is a tiny deterministic generator for workload schedules (the tests
// must not depend on package rng, which sits above sim).
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g)
}

// pulser fires at pseudorandom cycles: it bumps a value, publishes it
// through a latched Reg, and wakes its consumer for the cycle the write
// becomes visible. Between fires it is provably inert and sleeps.
type pulser struct {
	g        lcg
	nextFire Cycle
	val      int
	reg      *Reg[int]
	consumer *Activity
	act      Activity
}

func (p *pulser) Activity() *Activity { return &p.act }

func (p *pulser) Tick(now Cycle) {
	if now < p.nextFire {
		// Only reachable with skipping off; with skipping on the scheduler
		// elides these cycles entirely.
		return
	}
	p.val++
	p.reg.Set(p.val)
	p.consumer.WakeAt(now + 1)
	p.nextFire = now + 1 + Cycle(p.g.next()%19)
	p.act.Sleep(p.nextFire)
}

// watcher records every change of its input Reg. It sleeps forever and
// relies purely on the producer's wake edge; recording only changes keeps
// the trace identical when skipping is off and it ticks every cycle.
type watcher struct {
	reg   *Reg[int]
	last  int
	trace []string
	act   Activity
}

func (w *watcher) Activity() *Activity { return &w.act }

func (w *watcher) Tick(now Cycle) {
	if v := w.reg.Get(); v != w.last {
		w.last = v
		w.trace = append(w.trace, fmt.Sprintf("@%d=%d", now, v))
	}
	w.act.Sleep(Never)
}

// pushPop is a queue chain: a sparse pseudorandom producer into a
// dirty-flushed Queue, drained by an always-awake consumer.
type pushPop struct {
	g     lcg
	q     *Queue[int]
	n     int
	trace []string
}

func (c *pushPop) produce(now Cycle) {
	if c.g.next()%4 == 0 {
		c.n++
		c.q.Push(c.n)
	}
}

func (c *pushPop) consume(now Cycle) {
	for {
		v, ok := c.q.Pop()
		if !ok {
			break
		}
		c.trace = append(c.trace, fmt.Sprintf("@%d<-%d", now, v))
	}
}

// buildWorkload wires pairs pulser→watcher pairs and one queue chain per
// shard into e, alternating the two latch registration paths (static
// round-robin list vs dirty Flusher), and returns a function rendering the
// full deterministic state trace.
func buildWorkload(e *Engine, seed uint64, pairs int) func() string {
	const nChains = 4 // fixed count so every mode builds the same workload
	watchers := make([]*watcher, pairs)
	chains := make([]*pushPop, nChains)
	for i := 0; i < pairs; i++ {
		sh := i % e.Shards()
		reg := &Reg[int]{}
		if i%2 == 0 {
			e.RegisterLatch(reg)
		} else {
			reg.Bind(e.Flusher(sh))
		}
		w := &watcher{reg: reg}
		p := &pulser{g: lcg(seed + uint64(i)*977), reg: reg, consumer: &w.act}
		// The consumer ticks before the producer so the producer's WakeAt
		// lands after the consumer's Sleep: WakeAt only lowers a wake time,
		// so a wake aimed at an awake component that then sleeps would be
		// lost. (The component layer orders this with wire NextAt bounds
		// recomputed at sleep time instead.)
		e.RegisterSharded(sh, w)
		e.RegisterSharded(sh, p)
		watchers[i] = w
	}
	for j := 0; j < nChains; j++ {
		sh := j % e.Shards()
		q := NewQueue[int](0)
		q.Bind(e.Flusher(sh))
		c := &pushPop{g: lcg(seed ^ uint64(j+1)<<17), q: q}
		e.RegisterSharded(sh, TickFunc(c.produce))
		e.RegisterSharded(sh, TickFunc(c.consume))
		chains[j] = c
	}
	return func() string {
		var b strings.Builder
		for i, w := range watchers {
			fmt.Fprintf(&b, "pair%d: %s\n", i, strings.Join(w.trace, " "))
		}
		for j, c := range chains {
			// Each trace is single-writer within one shard, so rendering in
			// chain order is deterministic under any interleaving.
			fmt.Fprintf(&b, "chain%d: %s\n", j, strings.Join(c.trace, " "))
		}
		return b.String()
	}
}

// TestEngineModesBitIdentical is the package-level determinism table: for
// several seeds, a randomized Ticker/Latch workload must produce identical
// component state traces under the serial engine, parallel engines of
// several widths, and with quiescence skipping on and off. Parallel modes
// use 1 pair-per-shard distributions, so the cross-mode comparison pins the
// wake/sleep protocol, the worker barrier, and both flush paths at once.
func TestEngineModesBitIdentical(t *testing.T) {
	type mode struct {
		name string
		mk   func() *Engine
	}
	modes := []mode{
		{"serial-noskip", func() *Engine { e := New(); e.SetIdleSkip(false); return e }},
		{"serial-skip", New},
		{"parallel2-skip", func() *Engine { return NewParallel(2) }},
		{"parallel8-skip", func() *Engine { return NewParallel(8) }},
		{"parallel8-noskip", func() *Engine { e := NewParallel(8); e.SetIdleSkip(false); return e }},
	}
	for _, seed := range []uint64{1, 1995, 0xdecafbad} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			var ref string
			for i, m := range modes {
				e := m.mk()
				render := buildWorkload(e, seed, 16)
				e.Run(2000)
				e.Close()
				got := render()
				if !strings.Contains(got, "=") {
					t.Fatalf("%s: workload produced no events", m.name)
				}
				if i == 0 {
					ref = got
					continue
				}
				if got != ref {
					t.Errorf("%s diverges from %s:\nreference:\n%s\ngot:\n%s",
						m.name, modes[0].name, ref, got)
				}
			}
		})
	}
}

func TestActivityWakeOnlyLowers(t *testing.T) {
	var a Activity
	if a.Asleep(0) {
		t.Fatal("zero Activity must be awake")
	}
	a.Sleep(100)
	if !a.Asleep(99) || a.Asleep(100) {
		t.Fatal("Sleep(100) must skip cycles before 100 only")
	}
	a.WakeAt(150) // raising via WakeAt must be a no-op
	if !a.Asleep(99) {
		t.Fatal("WakeAt raised the wake time")
	}
	a.WakeAt(40)
	if a.Asleep(40) || !a.Asleep(39) {
		t.Fatal("WakeAt(40) did not lower the wake time")
	}
	a.Wake()
	if a.Asleep(0) {
		t.Fatal("Wake did not make the component immediately runnable")
	}
}

// sleeper ticks, then sleeps a fixed stride.
type sleeper struct {
	stride Cycle
	ticks  int
	act    Activity
}

func (s *sleeper) Activity() *Activity { return &s.act }
func (s *sleeper) Tick(now Cycle)      { s.ticks++; s.act.Sleep(now + s.stride) }

func TestIdleSkippingElidesTicks(t *testing.T) {
	e := New()
	s := &sleeper{stride: 10}
	e.Register(s)
	e.Run(100)
	if s.ticks != 10 {
		t.Fatalf("sleeper ticked %d times over 100 cycles with stride 10, want 10", s.ticks)
	}
	e2 := New()
	e2.SetIdleSkip(false)
	s2 := &sleeper{stride: 10}
	e2.Register(s2)
	e2.Run(100)
	if s2.ticks != 100 {
		t.Fatalf("with skipping off, sleeper ticked %d times, want 100", s2.ticks)
	}
}

type countLatch struct{ flushes int }

func (c *countLatch) Flush() { c.flushes++ }

func TestFlusherFlushesDirtyOnly(t *testing.T) {
	e := New()
	l := &countLatch{}
	e.Register(TickFunc(func(now Cycle) {
		if now%3 == 0 {
			e.Flusher(0).Mark(l)
		}
	}))
	e.Run(9)
	if l.flushes != 3 {
		t.Fatalf("marked on 3 of 9 cycles but flushed %d times", l.flushes)
	}
}

func TestBoundQueueFlushesOnPush(t *testing.T) {
	e := New()
	q := NewQueue[int](0)
	q.Bind(e.Flusher(0))
	var got []int
	e.Register(TickFunc(func(now Cycle) {
		if now == 2 {
			q.Push(7)
			q.Push(8) // second push same cycle: must mark only once
		}
		if v, ok := q.Pop(); ok {
			got = append(got, int(now), v)
		}
	}))
	e.Run(6)
	want := fmt.Sprint([]int{3, 7, 4, 8})
	if fmt.Sprint(got) != want {
		t.Fatalf("bound queue delivered %v, want %v", got, want)
	}
}

func TestCloseIdempotent(t *testing.T) {
	e := NewParallel(4)
	e.Register(&counter{})
	e.Run(10)
	e.Close()
	e.Close() // second Close must be a no-op
	New().Close()
}

type benchIdle struct {
	asleep bool
	act    Activity
}

func (b *benchIdle) Activity() *Activity { return &b.act }
func (b *benchIdle) Tick(now Cycle) {
	if b.asleep {
		b.act.Sleep(Never)
	}
}

func benchmarkEngineStep(b *testing.B, mk func() *Engine, components int, asleep bool) {
	e := mk()
	defer e.Close()
	for i := 0; i < components; i++ {
		e.RegisterSharded(i%e.Shards(), &benchIdle{asleep: asleep})
	}
	e.Step() // let sleepers park
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkEngineStep(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchmarkEngineStep(b, New, 256, false) })
	b.Run("parallel4", func(b *testing.B) {
		benchmarkEngineStep(b, func() *Engine { return NewParallel(4) }, 256, false)
	})
	b.Run("idle-heavy", func(b *testing.B) { benchmarkEngineStep(b, New, 256, true) })
	b.Run("saturated", func(b *testing.B) { benchmarkEngineStep(b, New, 256, false) })
}
