package sim

// Queue is a latched FIFO: items pushed during a cycle's Tick phase become
// visible to readers only after the Flush phase, preserving the engine's
// order-independence guarantee. It is the standard boundary between two
// components that tick in unknown relative order (e.g. a NIC and a router's
// local port).
type Queue[T any] struct {
	cur     []T
	pending []T
	cap     int // total capacity (visible + pending); 0 = unbounded

	fl     *Flusher
	marked bool
}

// NewQueue returns a Queue with the given total capacity. capacity <= 0
// means unbounded.
func NewQueue[T any](capacity int) *Queue[T] {
	return &Queue[T]{cap: capacity}
}

// CanPush reports whether a Push this cycle would be accepted.
func (q *Queue[T]) CanPush() bool {
	return q.cap <= 0 || len(q.cur)+len(q.pending) < q.cap
}

// Bind routes this queue's flushes through f's dirty list: the queue is
// flushed only on cycles it was pushed to. A bound queue must not also be
// passed to RegisterLatch, and must only be pushed by Tickers of f's shard.
func (q *Queue[T]) Bind(f *Flusher) { q.fl = f }

// Push enqueues v to become visible next cycle. It reports whether the item
// was accepted (false if the queue is full).
func (q *Queue[T]) Push(v T) bool {
	if !q.CanPush() {
		return false
	}
	q.pending = append(q.pending, v)
	if q.fl != nil && !q.marked {
		q.marked = true
		q.fl.Mark(q)
	}
	return true
}

// Len reports the number of currently visible items.
func (q *Queue[T]) Len() int { return len(q.cur) }

// Occupied reports visible plus pending items (the value capacity is
// enforced against).
func (q *Queue[T]) Occupied() int { return len(q.cur) + len(q.pending) }

// Peek returns the oldest visible item without removing it. ok is false if
// none is visible.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if len(q.cur) == 0 {
		return v, false
	}
	return q.cur[0], true
}

// Pop removes and returns the oldest visible item.
func (q *Queue[T]) Pop() (v T, ok bool) {
	if len(q.cur) == 0 {
		return v, false
	}
	v = q.cur[0]
	var zero T
	q.cur[0] = zero // release reference for GC
	q.cur = q.cur[1:]
	return v, true
}

// Flush implements Latch, publishing pending items.
func (q *Queue[T]) Flush() {
	q.marked = false
	if len(q.pending) == 0 {
		return
	}
	q.cur = append(q.cur, q.pending...)
	for i := range q.pending {
		var zero T
		q.pending[i] = zero
	}
	q.pending = q.pending[:0]
}

// Reg is a double-buffered single value. Writes during Tick become readable
// after Flush.
type Reg[T any] struct {
	cur, next T
	hasNext   bool

	fl *Flusher
}

// Bind routes this register's flushes through f's dirty list: the register
// is flushed only on cycles it was set. A bound register must not also be
// passed to RegisterLatch, and must only be set by Tickers of f's shard.
func (r *Reg[T]) Bind(f *Flusher) { r.fl = f }

// Get returns the current value.
func (r *Reg[T]) Get() T { return r.cur }

// Set schedules v to become current at the next Flush.
func (r *Reg[T]) Set(v T) {
	if r.fl != nil && !r.hasNext {
		r.fl.Mark(r)
	}
	r.next = v
	r.hasNext = true
}

// Flush implements Latch.
func (r *Reg[T]) Flush() {
	if r.hasNext {
		r.cur = r.next
		r.hasNext = false
	}
}
