package sim

// Queue is a latched FIFO: items pushed during a cycle's Tick phase become
// visible to readers only after the Flush phase, preserving the engine's
// order-independence guarantee. It is the standard boundary between two
// components that tick in unknown relative order (e.g. a NIC and a router's
// local port).
//
// Storage is a single circular buffer holding the visible region followed
// in ring order by the pending (latched) region, so Push, Pop, and Flush
// are O(1) with no allocation or element shifting in steady state: Push
// writes into the slot after the pending region, and Flush publishes by
// extending the visible region over the pending one in place. Bounded
// queues never allocate after construction; unbounded queues grow the ring
// geometrically and then reuse it.
type Queue[T any] struct {
	buf  []T
	head int // index of the oldest visible item
	vis  int // visible item count
	pend int // pending (pushed this cycle, not yet flushed) item count
	cap  int // total capacity (visible + pending); 0 = unbounded

	fl     *Flusher
	flID   int32
	marked bool
}

// NewQueue returns a Queue with the given total capacity. capacity <= 0
// means unbounded.
func NewQueue[T any](capacity int) *Queue[T] {
	q := &Queue[T]{}
	if capacity > 0 {
		q.cap = capacity
		q.buf = make([]T, capacity)
	}
	return q
}

// CanPush reports whether a Push this cycle would be accepted.
func (q *Queue[T]) CanPush() bool {
	return q.cap <= 0 || q.vis+q.pend < q.cap
}

// Bind routes this queue's flushes through f's dirty list: the queue is
// flushed only on cycles it was pushed to. A bound queue must not also be
// passed to RegisterLatch, and must only be pushed by Tickers of f's shard.
func (q *Queue[T]) Bind(f *Flusher) {
	q.fl = f
	q.flID = f.BindID(q)
}

// grow re-linearizes the ring into a larger buffer (unbounded queues only).
func (q *Queue[T]) grow() {
	n := len(q.buf) * 2
	if n < 8 {
		n = 8
	}
	nb := make([]T, n)
	used := q.vis + q.pend
	for i := 0; i < used; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// Push enqueues v to become visible next cycle. It reports whether the item
// was accepted (false if the queue is full).
func (q *Queue[T]) Push(v T) bool {
	if !q.CanPush() {
		return false
	}
	if q.vis+q.pend == len(q.buf) {
		q.grow()
	}
	i := q.head + q.vis + q.pend
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = v
	q.pend++
	if q.fl != nil && !q.marked {
		q.marked = true
		q.fl.MarkID(q.flID)
	}
	return true
}

// Len reports the number of currently visible items.
func (q *Queue[T]) Len() int { return q.vis }

// Occupied reports visible plus pending items (the value capacity is
// enforced against).
func (q *Queue[T]) Occupied() int { return q.vis + q.pend }

// Peek returns the oldest visible item without removing it. ok is false if
// none is visible.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if q.vis == 0 {
		return v, false
	}
	return q.buf[q.head], true
}

// Pop removes and returns the oldest visible item. The vacated ring slot is
// zeroed so popped references (e.g. pooled packets) are not retained.
func (q *Queue[T]) Pop() (v T, ok bool) {
	if q.vis == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release reference for GC / packet pooling
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.vis--
	return v, true
}

// Drain pops every visible item into fn, zeroing the vacated slots. Items
// pushed during the same cycle (still pending) are untouched.
func (q *Queue[T]) Drain(fn func(T)) {
	for q.vis > 0 {
		v, _ := q.Pop()
		fn(v)
	}
}

// Flush implements Latch, publishing pending items in place: the visible
// region simply extends over the pending one.
func (q *Queue[T]) Flush() {
	q.marked = false
	q.vis += q.pend
	q.pend = 0
}

// Reg is a double-buffered single value. Writes during Tick become readable
// after Flush.
type Reg[T any] struct {
	cur, next T
	hasNext   bool

	fl   *Flusher
	flID int32
}

// Bind routes this register's flushes through f's dirty list: the register
// is flushed only on cycles it was set. A bound register must not also be
// passed to RegisterLatch, and must only be set by Tickers of f's shard.
func (r *Reg[T]) Bind(f *Flusher) {
	r.fl = f
	r.flID = f.BindID(r)
}

// Get returns the current value.
func (r *Reg[T]) Get() T { return r.cur }

// Set schedules v to become current at the next Flush.
func (r *Reg[T]) Set(v T) {
	if r.fl != nil && !r.hasNext {
		r.fl.MarkID(r.flID)
	}
	r.next = v
	r.hasNext = true
}

// Flush implements Latch.
func (r *Reg[T]) Flush() {
	if r.hasNext {
		r.cur = r.next
		r.hasNext = false
	}
}
