package sim

import (
	"sync/atomic"
	"testing"
)

type latchFunc func()

func (f latchFunc) Flush() { f() }

// TestStepHookAndAtBarrierOrdering pins the intra-cycle schedule of the new
// hooks on a parallel engine: the step hook runs before any shard ticks,
// AtBarrier closures run after every shard's tick phase and before any
// flush, and both observe the cycle they were staged in.
func TestStepHookAndAtBarrierOrdering(t *testing.T) {
	e := NewParallel(2)
	defer e.Close()
	var ticks, deferredRuns atomic.Int32
	var cycle atomic.Int64
	hookCalls := 0
	e.RegisterStepHook(func(now Cycle) {
		hookCalls++
		cycle.Store(now)
		if got := ticks.Load(); got != int32(2*now) {
			t.Errorf("step hook at cycle %d saw %d ticks; want %d (hooks must run pre-tick)", now, got, 2*now)
		}
	})
	for sh := 0; sh < 2; sh++ {
		sh := sh
		e.RegisterSharded(sh, TickFunc(func(now Cycle) {
			if got := deferredRuns.Load(); got != int32(2*now) {
				t.Errorf("tick at cycle %d saw %d deferred runs; want %d", now, got, 2*now)
			}
			ticks.Add(1)
			e.AtBarrier(sh, now, func(at Cycle) {
				if at != now {
					t.Errorf("deferred staged at cycle %d ran with now=%d", now, at)
				}
				if got := ticks.Load(); got != int32(2*(now+1)) {
					t.Errorf("deferred at cycle %d ran with %d ticks; want %d (must run after the tick barrier)", now, got, 2*(now+1))
				}
				deferredRuns.Add(1)
			})
		}))
	}
	// A latch in the worker shard: by flush time, this cycle's deferred
	// closures must all have run.
	e.RegisterLatchSharded(1, latchFunc(func() {
		now := cycle.Load()
		if got := deferredRuns.Load(); got != int32(2*(now+1)) {
			t.Errorf("flush at cycle %d saw %d deferred runs; want %d (flush must follow the drain)", now, got, 2*(now+1))
		}
	}))
	e.Run(5)
	if hookCalls != 5 {
		t.Errorf("step hook ran %d times; want 5", hookCalls)
	}
	if got := deferredRuns.Load(); got != 10 {
		t.Errorf("deferred ran %d times; want 10", got)
	}
}

type bindRecorder struct {
	eng   *Engine
	shard int
	bound int
}

func (b *bindRecorder) Tick(Cycle) {}
func (b *bindRecorder) BindEngine(e *Engine, sh int) {
	b.eng, b.shard = e, sh
	b.bound++
}

// TestRegisterShardedBindsComponents verifies the Binder hook fires with
// the registering engine and resolved shard.
func TestRegisterShardedBindsComponents(t *testing.T) {
	e := NewParallel(3)
	defer e.Close()
	var a, b bindRecorder
	e.Register(&a) // delegates to shard 0
	e.RegisterSharded(2, &b)
	if a.bound != 1 || a.eng != e || a.shard != 0 {
		t.Errorf("Register: bound=%d eng=%p shard=%d", a.bound, a.eng, a.shard)
	}
	if b.bound != 1 || b.eng != e || b.shard != 2 {
		t.Errorf("RegisterSharded: bound=%d eng=%p shard=%d", b.bound, b.eng, b.shard)
	}
}
