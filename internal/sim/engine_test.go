package sim

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

type counter struct{ n int }

func (c *counter) Tick(now Cycle) { c.n++ }

func TestStepAdvancesCycle(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("fresh engine at cycle %d", e.Now())
	}
	e.Step()
	e.Step()
	if e.Now() != 2 {
		t.Fatalf("after 2 steps, Now = %d", e.Now())
	}
}

func TestRunTicksEveryComponent(t *testing.T) {
	e := New()
	cs := []*counter{{}, {}, {}}
	for _, c := range cs {
		e.Register(c)
	}
	e.Run(100)
	for i, c := range cs {
		if c.n != 100 {
			t.Errorf("component %d ticked %d times, want 100", i, c.n)
		}
	}
}

func TestTickOrderWithinShard(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Register(TickFunc(func(Cycle) { order = append(order, i) }))
	}
	e.Step()
	for i, v := range order {
		if v != i {
			t.Fatalf("tick order %v", order)
		}
	}
}

func TestFlushRunsAfterTicks(t *testing.T) {
	e := New()
	var r Reg[int]
	e.RegisterLatch(&r)
	e.Register(TickFunc(func(now Cycle) {
		// During the tick of cycle n, the register must still show the value
		// set in cycle n-1.
		if got, want := int64(r.Get()), now; got != want {
			t.Errorf("cycle %d: reg shows %d", now, got)
		}
		r.Set(int(now) + 1)
	}))
	e.Run(5)
}

func TestRunUntil(t *testing.T) {
	e := New()
	c := &counter{}
	e.Register(c)
	ok := e.RunUntil(func() bool { return c.n >= 10 }, 100)
	if !ok {
		t.Fatal("RunUntil did not report done")
	}
	if c.n != 10 {
		t.Fatalf("ran %d cycles, want 10", c.n)
	}
	if !e.RunUntil(func() bool { return true }, 0) {
		t.Fatal("RunUntil with already-true predicate and max 0 should succeed")
	}
}

func TestRunUntilTimeout(t *testing.T) {
	e := New()
	if e.RunUntil(func() bool { return false }, 7) {
		t.Fatal("RunUntil reported done for never-true predicate")
	}
	if e.Now() != 7 {
		t.Fatalf("RunUntil timeout ran %d cycles, want 7", e.Now())
	}
}

func TestParallelTicksAll(t *testing.T) {
	e := NewParallel(4)
	var n atomic.Int64
	for i := 0; i < 16; i++ {
		e.RegisterSharded(i, TickFunc(func(Cycle) { n.Add(1) }))
	}
	e.Run(10)
	if n.Load() != 160 {
		t.Fatalf("ticked %d times, want 160", n.Load())
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// A ring of registers: shard i reads reg[i-1] and writes reg[i]. After N
	// cycles the values are a deterministic function of N regardless of
	// execution interleaving, because all cross-shard traffic is latched.
	build := func(e *Engine) []*Reg[int] {
		const k = 8
		regs := make([]*Reg[int], k)
		for i := range regs {
			regs[i] = &Reg[int]{}
			e.RegisterLatch(regs[i])
		}
		for i := 0; i < k; i++ {
			i := i
			e.RegisterSharded(i, TickFunc(func(Cycle) {
				regs[i].Set(regs[(i+k-1)%k].Get() + 1)
			}))
		}
		return regs
	}
	es := New()
	ep := NewParallel(4)
	rs := build(es)
	rp := build(ep)
	es.Run(50)
	ep.Run(50)
	for i := range rs {
		if rs[i].Get() != rp[i].Get() {
			t.Fatalf("reg %d: serial %d parallel %d", i, rs[i].Get(), rp[i].Get())
		}
	}
}

func TestNewParallelClampsShards(t *testing.T) {
	e := NewParallel(0)
	if e.Shards() != 1 {
		t.Fatalf("NewParallel(0) has %d shards", e.Shards())
	}
	e.Register(&counter{}) // must not panic
	e.Step()
}

func TestQueueLatching(t *testing.T) {
	q := NewQueue[int](0)
	q.Push(1)
	if q.Len() != 0 {
		t.Fatal("pushed item visible before flush")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop returned item before flush")
	}
	q.Flush()
	if q.Len() != 1 {
		t.Fatalf("Len = %d after flush", q.Len())
	}
	v, ok := q.Pop()
	if !ok || v != 1 {
		t.Fatalf("Pop = %d,%v", v, ok)
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	q := NewQueue[int](0)
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	q.Flush()
	for i := 0; i < 5; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d,%v", i, v, ok)
		}
	}
}

func TestQueueCapacity(t *testing.T) {
	q := NewQueue[int](2)
	if !q.Push(1) || !q.Push(2) {
		t.Fatal("pushes under capacity rejected")
	}
	if q.Push(3) {
		t.Fatal("push over capacity accepted")
	}
	q.Flush()
	if q.CanPush() {
		t.Fatal("CanPush true while full")
	}
	q.Pop()
	if !q.CanPush() {
		t.Fatal("CanPush false after Pop freed space")
	}
}

func TestQueueCapacityCountsPending(t *testing.T) {
	q := NewQueue[int](2)
	q.Push(1)
	q.Flush()
	q.Push(2)
	// One visible + one pending = at capacity.
	if q.Push(3) {
		t.Fatal("capacity must count pending items")
	}
	if q.Occupied() != 2 {
		t.Fatalf("Occupied = %d", q.Occupied())
	}
}

func TestQueuePeek(t *testing.T) {
	q := NewQueue[string](0)
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue")
	}
	q.Push("a")
	q.Flush()
	v, ok := q.Peek()
	if !ok || v != "a" {
		t.Fatalf("Peek = %q,%v", v, ok)
	}
	if q.Len() != 1 {
		t.Fatal("Peek consumed the item")
	}
}

func TestQueueProperty(t *testing.T) {
	// Property: with unbounded capacity, items come out in push order across
	// arbitrary interleavings of push/flush.
	f := func(ops []uint8) bool {
		q := NewQueue[int](0)
		var pushed, popped []int
		n := 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				q.Push(n)
				pushed = append(pushed, n)
				n++
			case 1:
				q.Flush()
			case 2:
				if v, ok := q.Pop(); ok {
					popped = append(popped, v)
				}
			}
		}
		q.Flush()
		for {
			v, ok := q.Pop()
			if !ok {
				break
			}
			popped = append(popped, v)
		}
		if len(popped) != len(pushed) {
			return false
		}
		for i := range popped {
			if popped[i] != pushed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegDefaultZero(t *testing.T) {
	var r Reg[int]
	if r.Get() != 0 {
		t.Fatal("zero Reg not zero")
	}
	r.Flush() // no pending write: must keep value
	if r.Get() != 0 {
		t.Fatal("Flush with no Set changed value")
	}
}

func BenchmarkStepSerial(b *testing.B) {
	e := New()
	for i := 0; i < 256; i++ {
		e.Register(TickFunc(func(Cycle) {}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkStepParallel(b *testing.B) {
	e := NewParallel(4)
	defer e.Close()
	for i := 0; i < 256; i++ {
		e.RegisterSharded(i, TickFunc(func(Cycle) {}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
