package sim

import "testing"

// parker is a Ticker that parks (Sleep(Never)) after every tick and records
// the cycles it ran. It leaves the active set entirely after each tick, so
// every observed tick after the first proves a wake edge re-enqueued it.
type parker struct {
	ticks []Cycle
	act   Activity
}

func (p *parker) Activity() *Activity { return &p.act }
func (p *parker) Tick(now Cycle) {
	p.ticks = append(p.ticks, now)
	p.act.Sleep(Never)
}

// wakeLatch wakes a parked component from the flush phase when marked.
type wakeLatch struct {
	act *Activity
	at  Cycle
}

func (l *wakeLatch) Flush() { l.act.WakeAt(l.at) }

// TestActiveSetEdgeCases drives the active-set scheduler through the wake
// paths that do not occur on every cycle: flush-phase wakes, duplicate wakes
// within one cycle, cross-shard staged wakes landing on a fully sleeping
// shard, and fast-forward interacting with a pending hook clock. Each case
// asserts the exact tick cycles, which the visit-time wake semantics fix
// bit-identically.
func TestActiveSetEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"WakeDuringFlushPhase", testWakeDuringFlushPhase},
		{"DoubleEnqueueOneCycle", testDoubleEnqueueOneCycle},
		{"CrossShardWakeSleepingShard", testCrossShardWakeSleepingShard},
		{"FastForwardPendingHookClock", testFastForwardPendingHookClock},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}

// A wake posted during the flush phase (a latch waking a component that
// parked in the same cycle's tick phase) must land in the mailbox and tick
// the component on the very next cycle.
func testWakeDuringFlushPhase(t *testing.T) {
	e := New()
	p := &parker{}
	e.Register(p)
	// The latch is marked by a driver ticker on cycle 3, so its Flush — and
	// the wake — runs in cycle 3's flush phase, after p parked.
	l := &wakeLatch{act: &p.act}
	e.Register(TickFunc(func(now Cycle) {
		if now == 3 {
			l.at = now + 1
			e.Flusher(0).Mark(l)
		}
	}))
	e.Run(8)
	// p ticks at 0 (initially active, then parks) and again at 4 (flush-phase
	// wake at the end of cycle 3).
	want := []Cycle{0, 4}
	if len(p.ticks) != len(want) || p.ticks[0] != want[0] || p.ticks[1] != want[1] {
		t.Fatalf("parker ticked at %v, want %v", p.ticks, want)
	}
}

// Two producers waking the same parked component in one cycle must enqueue
// it once: the queued flag dedups, the mailbox does not overflow, and the
// component ticks exactly once at the wake cycle.
func testDoubleEnqueueOneCycle(t *testing.T) {
	e := New()
	// Registration order: both producers tick before p each cycle, so their
	// same-cycle wakes reach p in the same cycle (visit-time semantics).
	var target *parker
	for i := 0; i < 2; i++ {
		e.Register(TickFunc(func(now Cycle) {
			if now == 5 {
				target.act.WakeAt(now)
			}
		}))
	}
	target = &parker{}
	e.Register(target)
	e.Run(10)
	want := []Cycle{0, 5}
	if len(target.ticks) != len(want) || target.ticks[0] != want[0] || target.ticks[1] != want[1] {
		t.Fatalf("target ticked at %v, want %v", target.ticks, want)
	}
}

// A staged cross-shard wake must re-activate a shard whose every component
// has left the active set: the consumer shard spends cycles with an empty
// worklist (zero instructions), then the cross-flusher's flush-phase wake
// re-enqueues the parked component.
func testCrossShardWakeSleepingShard(t *testing.T) {
	e := NewParallel(2)
	defer e.Close()
	p := &parker{}
	e.RegisterSharded(1, p)
	l := &wakeLatch{act: &p.act}
	e.RegisterSharded(0, TickFunc(func(now Cycle) {
		if now == 6 {
			// Stage the wake through shard 1's cross-flusher, exactly as a
			// cross-shard wire arrival would: it runs in the flush phase,
			// when shard 1 is quiescent.
			l.at = now + 1
			e.CrossFlusher(1).Mark(l)
		}
	}))
	e.Run(10)
	want := []Cycle{0, 7}
	if len(p.ticks) != len(want) || p.ticks[0] != want[0] || p.ticks[1] != want[1] {
		t.Fatalf("parker ticked at %v, want %v", p.ticks, want)
	}
}

// With every ticker parked, fastForward jumps over provably idle cycles —
// but never past a clocked step hook's pending wake: the hook must run at
// exactly its scheduled cycle even though no ticker forced stepping there.
func testFastForwardPendingHookClock(t *testing.T) {
	e := New()
	p := &parker{}
	e.Register(p)
	var hookRuns []Cycle
	var clock Activity
	clock.Sleep(25)
	e.RegisterStepHookClocked(func(now Cycle) {
		if now < 25 {
			return // armed for 25; earlier runs are incidental stepped cycles
		}
		hookRuns = append(hookRuns, now)
		clock.Sleep(Never)
	}, &clock)
	e.Run(40)
	if len(hookRuns) == 0 || hookRuns[0] != 25 {
		t.Fatalf("clocked hook ran at %v, want first run at 25", hookRuns)
	}
	if got := e.Now(); got != 40 {
		t.Fatalf("engine stopped at %d, want 40", got)
	}
	if len(p.ticks) != 1 || p.ticks[0] != 0 {
		t.Fatalf("parker ticked at %v, want [0] (fast-forward skips its idle cycles)", p.ticks)
	}
}

// benchmarkIdleFraction steps an engine holding total components of which
// only active ever do work: the active ones are plain Tickers (no Activity,
// always scheduled), the rest park with Sleep(Never) on their first tick and
// leave the active set entirely. Under active-set scheduling the steady-state
// Step cost is O(active), independent of total — the property
// scripts/benchlocality.sh gates by comparing two total sizes at fixed
// active count.
func benchmarkIdleFraction(b *testing.B, total, active int) {
	e := New()
	defer e.Close()
	for i := 0; i < total; i++ {
		if i%(total/active) == 0 {
			e.Register(TickFunc(func(Cycle) {}))
		} else {
			e.Register(&parker{})
		}
	}
	e.Step() // parkers park and drop out of the worklist
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkIdleFraction(b *testing.B) {
	// Fixed active region of 64 components inside total populations 64x
	// apart: sub-linear scheduling means ns/op must stay nearly flat.
	b.Run("total=1024", func(b *testing.B) { benchmarkIdleFraction(b, 1024, 64) })
	b.Run("total=65536", func(b *testing.B) { benchmarkIdleFraction(b, 65536, 64) })
}
