package check_test

import (
	"fmt"
	"testing"

	"nifdy/internal/check"
	"nifdy/internal/harness"
	"nifdy/internal/node"
	"nifdy/internal/sim"
	"nifdy/internal/traffic"
)

// TestMonitorsCleanAcrossConfigurations is the acceptance matrix: the full
// monitor suite (protocol bounds, sequence accounting, conservation census)
// stays silent on every standard network, for both the NIFDY and the plain
// NIC, at engine shard counts 1, 2, and 4, under heavy synthetic traffic
// run to completion. Short mode trims to two fabrics and two shard counts.
func TestMonitorsCleanAcrossConfigurations(t *testing.T) {
	nets := harness.StandardNetworks()
	shardCounts := []int{1, 2, 4}
	if testing.Short() {
		nets = []harness.NetSpec{harness.Mesh2D(), harness.FullFatTree()}
		shardCounts = []int{1, 2}
	}
	for _, spec := range nets {
		for _, kind := range []harness.NICKind{harness.NIFDY, harness.Plain} {
			for _, shards := range shardCounts {
				spec, kind, shards := spec, kind, shards
				name := fmt.Sprintf("%s/%v/shards=%d", spec.Name, kind, shards)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					runClean(t, spec, kind, shards)
				})
			}
		}
	}
}

func runClean(t *testing.T, spec harness.NetSpec, kind harness.NICKind, shards int) {
	t.Helper()
	tcfg := traffic.Heavy(64, 1995)
	tcfg.Phases = 1
	tcfg.PacketsPerPhase = 12
	gen := traffic.NewGen(tcfg, nil)
	var got []check.Violation
	s := harness.Build(harness.BuildOpts{
		Net: spec, Kind: kind, Seed: 1995, EngineShards: shards,
		Program: func(n int) node.Program {
			prog := gen.Program(n)
			return func(p *node.Proc) {
				prog(p)
				// Drain tail: accept packets still in flight when the
				// workload ends, so the loss check sees them land. The
				// deadline restarts on every arrival — the node leaves only
				// after a full quiet period, so a straggler chain of scalar
				// round trips cannot outlive a fixed window.
				deadline := p.Now() + 2500
				for {
					pk, ok := p.RecvOr(func() bool { return p.Now() >= deadline })
					if !ok {
						return
					}
					deadline = p.Now() + 2500
					p.Free(pk)
				}
			}
		},
		Check: &check.Options{
			Interval: 8, Sequence: true, InOrder: true,
			OnViolation: func(v check.Violation) {
				if len(got) < 10 {
					got = append(got, v)
				}
			},
		},
	})
	defer s.Close()
	ok, end := s.RunUntilDone(400_000)
	if !ok {
		t.Fatalf("workload did not complete by cycle %d", end)
	}
	for i := 0; i < 500; i++ {
		s.Eng.Step()
	}
	s.Checker.Finish(s.Eng.Now())
	for _, v := range got {
		t.Errorf("%s", v)
	}
	if s.Checker.Sweeps() == 0 {
		t.Fatal("checker never swept")
	}
	if s.Accepted() == 0 {
		t.Fatal("workload moved no packets — vacuous run")
	}
	var _ sim.Cycle = end
}
