// Package check implements runtime invariant monitors — protocol oracles
// that verify, while a simulation runs, the properties the NIFDY paper
// states or assumes (§2.1–§2.4) and the conservation laws of the simulated
// substrate. The monitors attach to the engine's step hook, the one point
// in a cycle where every shard is quiescent and all cross-shard staging is
// merged, so a single goroutine can take a consistent global census without
// synchronization.
//
// Two monitor families run each sweep:
//
// Protocol monitors (per NIFDY unit, via nic.Auditable):
//   - scalar-exclusive: at most one outstanding scalar packet per
//     destination (§2.1.1 — the OPT is keyed by destination).
//   - opt-bound: OPT occupancy never exceeds O.
//   - dialog-bound: at most D receiver dialogs active, at most one per
//     sender (§2.1.2).
//   - window-bound: sender outstanding ≤ W; reorder-buffer occupancy ≤ W;
//     every buffered packet's sequence lies in [expected, expected+W).
//   - in-order: packets between a (src, dst) pair are accepted in the
//     order they were sent (§2.1.2's central guarantee).
//   - no-loss-dup: every sent packet is accepted exactly once (sequence
//     accounting over the NIC send/accept hooks).
//
// Substrate monitors (global census over routers, interfaces, and wires):
//   - flit-conservation: every injected flit is in exactly one place
//     (router buffer, wire, or ejection buffer) until delivered or dropped,
//     and no (packet, index) flit exists twice.
//   - credit-conservation: per channel and virtual channel, credits held +
//     flits in flight + credits in flight + downstream occupancy equals the
//     initial grant.
//   - vc-capacity: buffer occupancy never exceeds capacity and credit
//     counters stay within [0, initial] — the negative-credit check fires
//     before the substrate's own overflow panics can.
//   - recycle-safety: no packet is reachable from two places at once, and
//     no free-listed packet is still live (queue, window, or fabric).
//
// Monitors are validated by mutation: internal/core and internal/router
// carry test-only fault knobs (core.Mutations, router.IfaceMutations), and
// the tests in this package prove each knob trips its monitor.
package check

import (
	"fmt"

	"nifdy/internal/nic"
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/sim"
	"nifdy/internal/topo"
)

// Monitor identifiers, as they appear in Violation.Monitor.
const (
	MonScalarExclusive    = "scalar-exclusive"
	MonOPTBound           = "opt-bound"
	MonDialogBound        = "dialog-bound"
	MonWindowBound        = "window-bound"
	MonInOrder            = "in-order"
	MonLossDup            = "no-loss-dup"
	MonFlitConservation   = "flit-conservation"
	MonCreditConservation = "credit-conservation"
	MonVCCapacity         = "vc-capacity"
	MonRecycleSafety      = "recycle-safety"
	MonPFCPause           = "pfc-pause"
	MonDCQCNRate          = "dcqcn-rate"
)

// Violation is one observed invariant breach.
type Violation struct {
	// Cycle is the engine cycle at which the sweep observed the breach.
	Cycle sim.Cycle
	// Monitor is the Mon* identifier.
	Monitor string
	// Node is the node the breach is attributed to, or -1 for global
	// (fabric-wide) invariants.
	Node int
	// Detail is a human-readable description.
	Detail string
}

func (v Violation) String() string {
	where := "global"
	if v.Node >= 0 {
		where = fmt.Sprintf("node %d", v.Node)
	}
	return fmt.Sprintf("cycle %d [%s] %s: %s", v.Cycle, v.Monitor, where, v.Detail)
}

// Options configures a Checker.
type Options struct {
	// Interval is the census-sweep cadence in cycles; values below 1 mean
	// every cycle. Sequence accounting always drains every cycle (it is
	// cheap and must observe events in order).
	Interval sim.Cycle
	// Sequence enables end-to-end loss/duplication accounting over the NIC
	// send/accept hooks. It keys in-flight packets by pointer, so it must
	// stay off when the protocol clones packets (retransmission, dialog
	// takeover) or the fabric drops them (DropProb) — harness.Build gates
	// this automatically.
	Sequence bool
	// ByID keys the sequence accounting by packet ID instead of pointer, so
	// retransmission clones — which carry the original's ID — account as one
	// logical packet: sent once (the send hook fires at TrySend only, not on
	// resends) and accepted exactly once (the §6.2 dup bit suppresses
	// duplicate deliveries before the accept hook fires). This keeps the
	// no-loss-dup monitor armed over a lossy fabric with Retransmit on.
	ByID bool
	// InOrder additionally checks that each (src, dst) pair's packets are
	// accepted in send order. Meaningful for NIFDY NICs on any fabric and
	// for plain NICs on in-order fabrics. Implies the Sequence event
	// tracking machinery (but not the end-of-run loss check).
	InOrder bool
	// OnViolation, when set, receives each violation instead of the default
	// action (panic on first breach). Violations are recorded either way.
	OnViolation func(Violation)
	// Local restricts sweeps to the per-NIC protocol monitors and the
	// NIC/processor recycle-safety census, skipping the global substrate
	// census (flit/credit conservation, vc-capacity, wire walks). Set in
	// distributed worker processes: packets whose flits are buffered in peer
	// processes make the local conservation books unbalanced by design,
	// while the protocol invariants of locally owned NICs remain exact.
	Local bool
}

// Checker is the invariant-monitor subsystem for one simulation. Create it
// with New, hand per-shard hooks to the NICs (HooksFor), register the
// components (AddNIC, AddProc), then Install it on the engine.
type Checker struct {
	eng  *sim.Engine
	net  topo.Network
	opts Options

	nics  []nic.NIC
	procs []*node.Proc
	logs  []*eventLog

	// Sequence-accounting state (pointer- or ID-keyed; see Options.Sequence
	// and Options.ByID).
	inflight   map[*packet.Packet]sendRec
	inflightID map[uint64]sendRec
	nextIdx    map[pairKey]int64
	lastIdx    map[pairKey]int64

	violations []Violation
	sweeps     int64

	// clock is the step hook's fast-forward clock: it points at the next
	// interval-grid cycle, so the engine may skip (or window past) the
	// provably sweep-free cycles in between. Grid points themselves are
	// never skipped — a fast-forward jump lands exactly on the clock's wake.
	clock sim.Activity
}

// New returns a Checker for the simulation driven by eng over net.
func New(eng *sim.Engine, net topo.Network, opts Options) *Checker {
	if opts.Interval < 1 {
		opts.Interval = 1
	}
	c := &Checker{eng: eng, net: net, opts: opts}
	if c.tracking() {
		c.inflight = map[*packet.Packet]sendRec{}
		c.inflightID = map[uint64]sendRec{}
		c.nextIdx = map[pairKey]int64{}
		c.lastIdx = map[pairKey]int64{}
	}
	return c
}

// tracking reports whether send/accept events are recorded at all.
func (c *Checker) tracking() bool { return c.opts.Sequence || c.opts.InOrder }

// AddNIC registers a NIC for auditing. Order must match node numbers only
// in the sense that nc.Node() is authoritative; registration order is free.
func (c *Checker) AddNIC(nc nic.NIC) { c.nics = append(c.nics, nc) }

// AddProc registers a processor so its inbox joins the whole-packet census.
func (c *Checker) AddProc(p *node.Proc) { c.procs = append(c.procs, p) }

// Install registers the monitor sweep as a clocked engine step hook. Call
// once, after the components are registered. The clock points at the next
// interval-grid cycle, so sweeps neither pin the engine to cycle-by-cycle
// stepping nor miss a grid point: fast-forward jumps and window boundaries
// both land exactly on the clock's wake, and the cycles in between are
// provably sweep-free (event processing is order-preserving under batching,
// so draining at grid points observes the same sequences).
func (c *Checker) Install() { c.eng.RegisterStepHookClocked(c.step, &c.clock) }

// step is the engine step hook: it runs pre-tick on the stepping goroutine,
// observing the fully flushed state of the previous cycle.
func (c *Checker) step(now sim.Cycle) {
	if c.tracking() {
		c.processEvents(now)
	}
	if now%c.opts.Interval == 0 {
		if c.opts.Local {
			c.sweepLocal(now)
		} else {
			c.sweep(now)
		}
		c.sweeps++
	}
	c.clock.Sleep(now - now%c.opts.Interval + c.opts.Interval)
}

// sweepLocal is the distributed-worker sweep: per-NIC protocol monitors and
// the recycle-safety census over locally owned NIC queues and processor
// inboxes only (see Options.Local).
func (c *Checker) sweepLocal(now sim.Cycle) {
	whole := map[*packet.Packet]whereRef{}
	addWhole := func(nd int, where string, p *packet.Packet) {
		if p == nil {
			c.report(now, MonRecycleSafety, nd, "nil packet referenced from %s", where)
			return
		}
		if prev, ok := whole[p]; ok {
			c.report(now, MonRecycleSafety, nd,
				"packet %v reachable twice: %s@%d and %s@%d", p, prev.where, prev.node, where, nd)
			return
		}
		whole[p] = whereRef{where, nd}
	}
	for _, nc := range c.nics {
		c.auditNIC(now, nc, addWhole)
	}
	for _, p := range c.procs {
		nd := p.ID()
		p.AuditInbox(func(pkt *packet.Packet) { addWhole(nd, "inbox", pkt) })
	}
}

// Finish drains any remaining NIC events and, when sequence accounting is
// on, reports every packet still marked in flight as lost. Call it after
// the simulation has quiesced (all programs done, NICs idle); calling it
// mid-flight reports legitimately outstanding packets as losses.
func (c *Checker) Finish(now sim.Cycle) {
	if !c.tracking() {
		return
	}
	c.processEvents(now)
	if !c.opts.Sequence {
		return
	}
	lost := make([]sendRec, 0, len(c.inflight)+len(c.inflightID))
	//lint:allow(mapiter) pointer-keyed map has no sortable key; records are collected then sorted below for deterministic reporting
	for _, rec := range c.inflight {
		lost = append(lost, rec)
	}
	//lint:allow(mapiter) records are collected then sorted below for deterministic reporting
	for _, rec := range c.inflightID {
		lost = append(lost, rec)
	}
	// Deterministic report order regardless of map iteration.
	sortRecs(lost)
	for _, rec := range lost {
		c.report(now, MonLossDup, rec.pair.src,
			"packet %d->%d send #%d never accepted (lost)", rec.pair.src, rec.pair.dst, rec.idx)
	}
}

// Violations returns a copy of everything observed so far.
func (c *Checker) Violations() []Violation {
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	return out
}

// Sweeps reports how many census sweeps have run (test introspection).
func (c *Checker) Sweeps() int64 { return c.sweeps }

// report records a violation and either forwards it to OnViolation or
// panics (the default: an invariant breach is a simulator bug).
func (c *Checker) report(now sim.Cycle, monitor string, nd int, format string, args ...any) {
	v := Violation{Cycle: now, Monitor: monitor, Node: nd, Detail: fmt.Sprintf(format, args...)}
	c.violations = append(c.violations, v)
	if c.opts.OnViolation != nil {
		c.opts.OnViolation(v)
		return
	}
	panic("check: " + v.String())
}
