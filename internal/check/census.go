package check

import (
	"sort"

	"nifdy/internal/nic"
	"nifdy/internal/packet"
	"nifdy/internal/router"
	"nifdy/internal/sim"
)

// sortedIntKeys returns m's keys in ascending order — the sanctioned way to
// walk a map deterministically.
//
//lint:allow(mapiter) key-collection for sorting; the sorted result is independent of iteration order
func sortedIntKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// PacketAuditor is implemented by fabrics that hold whole packets rather
// than flits (the flow-level fabric, and the hybrid seam for its flow
// side). AuditPackets calls f once per whole-packet reference the fabric
// holds, in a deterministic order, with a location label; like the other
// audits it must only run while the fabric is quiescent. PacketCounters
// returns the fabric's lifetime books: packets admitted as flows, delivered
// into arrival buffers, and dropped by the loss model. The in-fabric labels
// ("flow", "parked", "pipe") must census to injected−delivered−dropped;
// "staged" (accepted but not yet activated) and "port-arr" (delivered but
// not yet pulled) sit outside the books on either side.
type PacketAuditor interface {
	AuditPackets(f func(node int, where string, p *packet.Packet))
	PacketCounters() (injected, delivered, dropped int64)
}

// whereRef names one whole-packet reference location for census messages.
type whereRef struct {
	where string
	node  int
}

// flitKey identifies one flit: a (packet, index) pair must exist at most
// once anywhere in the fabric.
type flitKey struct {
	p   *packet.Packet
	idx int
}

// vcCensus accumulates one (channel, global VC)'s books: the upstream
// credit counter, the downstream buffer, and the in-flight traffic between
// them.
type vcCensus struct {
	hasUp, hasDown         bool
	credits, initial       int
	occ, cap               int
	upNode, downNode       int // -1 for router endpoints
	wireFlits, wireCredits int

	// PFC pause-state books (populated only when PFC is enabled): the
	// transmitter's view (paused since pfcSince), the receiver's issued
	// state, and the last pause/resume frame still in flight on the credit
	// wire — frames are absolute set/clear operations, so the last one in
	// arrival order decides the transmitter's post-drain state.
	pfcHasTx, pfcTx bool
	pfcSince        sim.Cycle
	pfcHasRx, pfcRx bool
	pfcLastFrame    router.CreditKind
}

// chanCensus is one channel's per-VC books.
type chanCensus struct{ vcs []vcCensus }

func (cc *chanCensus) at(vc int) *vcCensus {
	for len(cc.vcs) <= vc {
		cc.vcs = append(cc.vcs, vcCensus{upNode: -1, downNode: -1})
	}
	return &cc.vcs[vc]
}

// sweep takes the global census: whole-packet references, flits, credits,
// and the NIFDY protocol state, verifying every invariant in one pass. It
// runs on the stepping goroutine at a fully quiescent point.
func (c *Checker) sweep(now sim.Cycle) {
	whole := map[*packet.Packet]whereRef{}
	fabric := map[*packet.Packet]struct{}{}
	flits := map[flitKey]struct{}{}
	chans := map[*router.Channel]*chanCensus{}
	var order []*router.Channel

	addWhole := func(nd int, where string, p *packet.Packet) {
		if p == nil {
			c.report(now, MonRecycleSafety, nd, "nil packet referenced from %s", where)
			return
		}
		if prev, ok := whole[p]; ok {
			c.report(now, MonRecycleSafety, nd,
				"packet %v reachable twice: %s@%d and %s@%d", p, prev.where, prev.node, where, nd)
			return
		}
		whole[p] = whereRef{where, nd}
	}
	addFlit := func(f packet.Flit, nd int, where string) {
		if f.Pkt == nil {
			c.report(now, MonFlitConservation, nd, "nil-packet flit in %s", where)
			return
		}
		if f.Index < 0 || f.Index >= f.Pkt.Flits() {
			c.report(now, MonFlitConservation, nd,
				"flit index %d out of range for %v in %s", f.Index, f.Pkt, where)
		}
		k := flitKey{f.Pkt, f.Index}
		if _, dup := flits[k]; dup {
			c.report(now, MonFlitConservation, nd,
				"flit (%v, %d) exists twice (second copy in %s)", f.Pkt, f.Index, where)
		}
		flits[k] = struct{}{}
		fabric[f.Pkt] = struct{}{}
	}
	chAt := func(ch *router.Channel) *chanCensus {
		cc, ok := chans[ch]
		if !ok {
			cc = &chanCensus{}
			chans[ch] = cc
			order = append(order, ch)
		}
		return cc
	}

	// NIC queues, protocol state, and processor inboxes.
	for _, nc := range c.nics {
		c.auditNIC(now, nc, addWhole)
	}
	for _, p := range c.procs {
		nd := p.ID()
		p.AuditInbox(func(pkt *packet.Packet) { addWhole(nd, "inbox", pkt) })
	}

	// Interfaces: serialization slots, ejection buffers, injection credits,
	// and the lifetime flit counters the conservation sum closes against.
	// Flow-level fabrics have no flit-accurate ports; their packet-census
	// path is below (PacketAuditor).
	var injected, delivered, dropped int64
	ejectFlits := 0
	flitPorts := 0
	for n := 0; n < c.net.Nodes(); n++ {
		nd := n
		ifc, isFlit := c.net.Iface(nd).(*router.Iface)
		if !isFlit {
			continue
		}
		flitPorts++
		inj, del, drp := ifc.FlitCounters()
		injected += inj
		delivered += del
		dropped += drp
		ifc.Audit(router.IfaceAuditor{
			Sending: func(_ packet.Class, p *packet.Packet, _ int) {
				addWhole(nd, "sending", p)
			},
			EjectVC: func(vc int, ch *router.Channel, occ, capacity int) {
				v := chAt(ch).at(vc)
				v.hasDown, v.occ, v.cap, v.downNode = true, occ, capacity, nd
				ejectFlits += occ
			},
			EjectFlit: func(vc int, f packet.Flit) { addFlit(f, nd, "eject buffer") },
			OutVC: func(vc int, ch *router.Channel, credits, initial int) {
				v := chAt(ch).at(vc)
				v.hasUp, v.credits, v.initial, v.upNode = true, credits, initial, nd
			},
			PFCTx: func(vc int, ch *router.Channel, paused bool, since sim.Cycle) {
				v := chAt(ch).at(vc)
				v.pfcHasTx, v.pfcTx, v.pfcSince = true, paused, since
			},
			PFCRx: func(vc int, ch *router.Channel, active bool) {
				v := chAt(ch).at(vc)
				v.pfcHasRx, v.pfcRx = true, active
			},
		})
	}

	// Routers: input buffers (downstream books) and output credit counters
	// (upstream books).
	routerFlits := 0
	c.net.AuditRouters(func(r *router.Router) {
		r.Audit(router.Auditor{
			InVC: func(port, vc int, ch *router.Channel, occ, capacity int) {
				v := chAt(ch).at(vc)
				v.hasDown, v.occ, v.cap = true, occ, capacity
				routerFlits += occ
			},
			BufFlit: func(port, vc int, f packet.Flit) { addFlit(f, -1, "router buffer") },
			OutVC: func(port, vc int, ch *router.Channel, credits, initial int) {
				v := chAt(ch).at(vc)
				v.hasUp, v.credits, v.initial = true, credits, initial
			},
			PFCTx: func(port, vc int, ch *router.Channel, paused bool, since sim.Cycle) {
				v := chAt(ch).at(vc)
				v.pfcHasTx, v.pfcTx, v.pfcSince = true, paused, since
			},
			PFCRx: func(port, vc int, ch *router.Channel, active bool) {
				v := chAt(ch).at(vc)
				v.pfcHasRx, v.pfcRx = true, active
			},
		})
	})

	// Wires: traffic in flight between the endpoints, once per channel. A
	// flit's time of transmission is bounded from its arrival by the link's
	// serialization and latency; while the transmitter is paused, no flit may
	// have been sent at or after the pause took effect. PFC frames share the
	// credit wire but are not credits; they are folded into the pause-state
	// reconciliation instead of the conservation books.
	wireFlits := 0
	for _, ch := range order {
		cc := chans[ch]
		cpfLat := sim.Cycle(ch.Flits.CyclesPerFlit() + ch.Flits.Latency() - 1)
		ch.Flits.ForEach(func(at sim.Cycle, f packet.Flit) {
			addFlit(f, -1, "wire")
			v := cc.at(f.VC)
			v.wireFlits++
			wireFlits++
			if v.pfcHasTx && v.pfcTx {
				if sent := at - cpfLat; sent >= v.pfcSince {
					c.report(now, MonPFCPause, v.upNode,
						"vc %d flit (%v, %d) transmitted at %d, at/after pause took effect at %d",
						f.VC, f.Pkt, f.Index, sent, v.pfcSince)
				}
			}
		})
		ch.Credits.ForEach(func(_ sim.Cycle, cr router.Credit) {
			v := cc.at(cr.VC)
			if cr.Kind == router.CreditReturn {
				v.wireCredits++
			} else {
				v.pfcLastFrame = cr.Kind
			}
		})
	}

	// PFC pause/resume pairing: the transmitter's pause state, updated by the
	// frames still in flight (in arrival order), must equal the receiver's
	// issued state — a pause or resume can be in transit, but never lost.
	for _, ch := range order {
		for vc := range chans[ch].vcs {
			v := &chans[ch].vcs[vc]
			if !v.pfcHasTx || !v.pfcHasRx {
				continue
			}
			projected := v.pfcTx
			//lint:allow(kindswitch) pfcLastFrame only tracks pause/resume frames; CreditReturn never updates it, so the residue is the no-frames-in-flight identity
			switch v.pfcLastFrame {
			case router.PFCPause:
				projected = true
			case router.PFCResume:
				projected = false
			}
			if projected != v.pfcRx {
				c.report(now, MonPFCPause, v.downNode,
					"vc %d pause/resume pairing broken: transmitter %v (after in-flight frames %v), receiver issued %v",
					vc, v.pfcTx, projected, v.pfcRx)
			}
		}
	}

	// Credit conservation and capacity, per (channel, VC).
	for _, ch := range order {
		for vc := range chans[ch].vcs {
			v := &chans[ch].vcs[vc]
			if v.hasDown && v.occ > v.cap {
				c.report(now, MonVCCapacity, v.downNode,
					"vc %d occupancy %d exceeds capacity %d", vc, v.occ, v.cap)
			}
			if !v.hasUp {
				// No credit issuer registered this VC (e.g. the unused class
				// of a per-class CM-5 channel): any activity is a breach.
				if (v.hasDown && v.occ > 0) || v.wireFlits > 0 || v.wireCredits > 0 {
					c.report(now, MonCreditConservation, v.downNode,
						"vc %d has traffic (occ %d, wire %d/%d) but no credit issuer",
						vc, v.occ, v.wireFlits, v.wireCredits)
				}
				continue
			}
			if v.credits < 0 || v.credits > v.initial {
				c.report(now, MonVCCapacity, v.upNode,
					"vc %d credit counter %d outside [0, %d]", vc, v.credits, v.initial)
			}
			if v.hasDown && v.cap != v.initial {
				c.report(now, MonCreditConservation, v.upNode,
					"vc %d grant %d disagrees with downstream capacity %d", vc, v.initial, v.cap)
			}
			down := 0
			if v.hasDown {
				down = v.occ
			}
			if sum := v.credits + v.wireFlits + v.wireCredits + down; sum != v.initial {
				c.report(now, MonCreditConservation, v.upNode,
					"vc %d books don't balance: credits %d + wire flits %d + wire credits %d + downstream %d = %d, want %d",
					vc, v.credits, v.wireFlits, v.wireCredits, down, sum, v.initial)
			}
		}
	}

	// Flit conservation: the interfaces' lifetime counters against the
	// census of what is actually in the fabric right now. Only meaningful
	// when every port is flit-accurate (a hybrid fabric's flit counters
	// cover just its hot region, whose books don't close on their own).
	if flitPorts == c.net.Nodes() {
		if want, got := injected-delivered-dropped, int64(routerFlits+ejectFlits+wireFlits); want != got {
			c.report(now, MonFlitConservation, -1,
				"counters say %d flits in fabric (injected %d - delivered %d - dropped %d), census found %d (%d router + %d eject + %d wire)",
				want, injected, delivered, dropped, got, routerFlits, ejectFlits, wireFlits)
		}
	}

	// Flow-level fabrics: whole-packet census. Every packet the fabric holds
	// (staged sends, active flows, pipe entries, parked completions, port
	// arrival queues) is an exclusive whole-packet reference, and the
	// fabric's lifetime books must close against the in-fabric references.
	if pa, ok := c.net.(PacketAuditor); ok {
		var fabricPkts int64
		pa.AuditPackets(func(nd int, where string, p *packet.Packet) {
			addWhole(nd, where, p)
			switch where {
			case "flow", "parked", "pipe":
				fabricPkts++
			}
		})
		pinj, pdel, pdrop := pa.PacketCounters()
		if want := pinj - pdel - pdrop; want != fabricPkts {
			c.report(now, MonFlitConservation, -1,
				"flow fabric books say %d packets in flight (injected %d - delivered %d - dropped %d), census found %d",
				want, pinj, pdel, pdrop, fabricPkts)
		}
	}

	// Recycle safety: free-listed packets must be dead — not on any free
	// list twice, not referenced whole anywhere, and without flits in the
	// fabric.
	freeSeen := map[*packet.Packet]int{}
	for _, nc := range c.nics {
		nd := nc.Node()
		nc.Pool().ForEachFree(func(p *packet.Packet) {
			if prev, ok := freeSeen[p]; ok {
				c.report(now, MonRecycleSafety, nd,
					"packet %v free-listed twice (nodes %d and %d)", p, prev, nd)
				return
			}
			freeSeen[p] = nd
			if ref, ok := whole[p]; ok {
				c.report(now, MonRecycleSafety, nd,
					"free-listed packet %v still live at %s@%d", p, ref.where, ref.node)
			}
			if _, ok := fabric[p]; ok {
				c.report(now, MonRecycleSafety, nd,
					"free-listed packet %v still has flits in the fabric", p)
			}
		})
	}
}

// nifdyLike is the protocol-state surface the NIFDY unit exposes; the
// monitors use it without importing internal/core.
type nifdyLike interface {
	nic.Auditable
	Params() (o, b, d, w int)
}

// rateBounded is the surface a rate-controlled NIC (the DCQCN kind) exposes
// for the rate-bounds monitor: the current sending rate and the configured
// clamp it must never leave.
type rateBounded interface {
	RateBounds() (rate, min, max int64)
}

// auditNIC walks one NIC's packet references and, for NIFDY units, checks
// the protocol bounds against the unit's own (O, B, D, W). Rate-controlled
// NICs additionally have their sending rate checked against its clamp.
func (c *Checker) auditNIC(now sim.Cycle, nc nic.NIC, addWhole func(nd int, where string, p *packet.Packet)) {
	if rb, ok := nc.(rateBounded); ok {
		if rate, lo, hi := rb.RateBounds(); rate < lo || rate > hi {
			c.report(now, MonDCQCNRate, nc.Node(),
				"sending rate %d outside configured bounds [%d, %d]", rate, lo, hi)
		}
	}
	aud, ok := nc.(nic.Auditable)
	if !ok {
		return
	}
	nd := nc.Node()
	a := nic.Auditor{
		Queued: func(where string, p *packet.Packet) { addWhole(nd, where, p) },
	}
	pn, isNIFDY := nc.(nifdyLike)
	if !isNIFDY {
		aud.Audit(a)
		return
	}
	o, _, d, w := pn.Params()
	optCount, dialogs := 0, 0
	optSeen := map[int]bool{}
	srcBySlot := map[int]int{}
	expBySlot := map[int]int{}
	a.OPTEntry = func(dst int) {
		optCount++
		if optSeen[dst] {
			c.report(now, MonScalarExclusive, nd,
				"two outstanding scalar packets for destination %d", dst)
		}
		optSeen[dst] = true
	}
	a.DialogOut = func(dst, outstanding int) {
		if outstanding > w || outstanding < 0 {
			c.report(now, MonWindowBound, nd,
				"sender dialog to %d has %d outstanding, window W=%d", dst, outstanding, w)
		}
	}
	a.DialogIn = func(slot, src, expected, buffered int) {
		dialogs++
		// Sorted sweep so a duplicate-sender violation always names the
		// same slot pair regardless of map iteration order.
		for _, s := range sortedIntKeys(srcBySlot) {
			if srcBySlot[s] == src {
				c.report(now, MonDialogBound, nd,
					"two dialogs (slots %d and %d) from the same sender %d", s, slot, src)
			}
		}
		srcBySlot[slot] = src
		expBySlot[slot] = expected
		if buffered > w || buffered < 0 {
			c.report(now, MonWindowBound, nd,
				"dialog slot %d buffers %d packets, window W=%d", slot, buffered, w)
		}
	}
	a.WindowSlot = func(slot int, p *packet.Packet) {
		exp := expBySlot[slot]
		if p.Seq < exp || p.Seq >= exp+w {
			c.report(now, MonWindowBound, nd,
				"dialog slot %d buffers seq %d outside window [%d, %d)", slot, p.Seq, exp, exp+w)
		}
		if src := srcBySlot[slot]; p.Src != src {
			c.report(now, MonDialogBound, nd,
				"dialog slot %d (sender %d) buffers packet from %d", slot, src, p.Src)
		}
		if p.Dialog != slot {
			c.report(now, MonDialogBound, nd,
				"packet %v parked in dialog slot %d", p, slot)
		}
	}
	aud.Audit(a)
	if optCount > o {
		c.report(now, MonOPTBound, nd, "OPT holds %d entries, bound O=%d", optCount, o)
	}
	if dialogs > d {
		c.report(now, MonDialogBound, nd, "%d active dialogs, bound D=%d", dialogs, d)
	}
}
