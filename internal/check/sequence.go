package check

import (
	"sort"

	"nifdy/internal/nic"
	"nifdy/internal/packet"
	"nifdy/internal/sim"
)

// pairKey identifies one directed (src, dst) traffic pair.
type pairKey struct{ src, dst int }

// sendRec is the in-flight record of one sent packet: its pair and its
// per-pair send index (0, 1, 2, ... in send order).
type sendRec struct {
	pair pairKey
	idx  int64
}

func sortRecs(recs []sendRec) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.pair != b.pair {
			if a.pair.src != b.pair.src {
				return a.pair.src < b.pair.src
			}
			return a.pair.dst < b.pair.dst
		}
		return a.idx < b.idx
	})
}

// event is one NIC packet-lifecycle observation. Cycle comes from the
// packet's own timestamps (CreatedAt / AcceptedAt), which the NICs stamp
// immediately before firing their hooks.
type event struct {
	cycle  sim.Cycle
	accept bool
	p      *packet.Packet
	src    int
	dst    int
}

// eventLog is one shard's append-only event buffer. Each shard's NICs tick
// on one goroutine, so appends are race-free; the checker drains every log
// on the stepping goroutine at the step hook, when no shard is ticking.
type eventLog struct{ evs []event }

// HooksFor returns NIC hooks that record send/accept events into shard sh's
// log. Returns empty hooks when event tracking is disabled, so the NICs'
// hook slots stay nil and the hot path pays nothing.
func (c *Checker) HooksFor(sh int) nic.Hooks {
	if !c.tracking() {
		return nic.Hooks{}
	}
	for len(c.logs) <= sh {
		c.logs = append(c.logs, &eventLog{})
	}
	l := c.logs[sh]
	return nic.Hooks{
		OnSend: func(p *packet.Packet) {
			if p.NoAck {
				return // protocol-bypass traffic (§6.1) is explicitly unordered
			}
			l.evs = append(l.evs, event{cycle: p.CreatedAt, p: p, src: p.Src, dst: p.Dst})
		},
		OnAccept: func(p *packet.Packet) {
			if p.NoAck {
				return
			}
			l.evs = append(l.evs, event{cycle: p.AcceptedAt, accept: true, p: p, src: p.Src, dst: p.Dst})
		},
	}
}

// processEvents drains every shard log and applies the sequence-accounting
// state machine. Events are globally ordered by (cycle, send-before-accept,
// shard, log position): an accept is always at least one cycle after its
// send (network latency), so this order is causally consistent, and it is
// identical for every shard count because cycle stamps don't depend on
// shard assignment.
func (c *Checker) processEvents(now sim.Cycle) {
	var all []event
	for _, l := range c.logs {
		all = append(all, l.evs...)
		for i := range l.evs {
			l.evs[i] = event{}
		}
		l.evs = l.evs[:0]
	}
	if len(all) == 0 {
		return
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].cycle != all[j].cycle {
			return all[i].cycle < all[j].cycle
		}
		return !all[i].accept && all[j].accept
	})
	for _, e := range all {
		if e.accept {
			c.onAccept(now, e)
		} else {
			c.onSend(now, e)
		}
	}
}

func (c *Checker) onSend(now sim.Cycle, e event) {
	pair := pairKey{e.src, e.dst}
	if c.opts.ByID {
		if prev, ok := c.inflightID[e.p.ID]; ok {
			c.report(now, MonLossDup, e.src,
				"packet ID %d re-sent while in flight (previous: %d->%d #%d, now %d->%d)",
				e.p.ID, prev.pair.src, prev.pair.dst, prev.idx, e.src, e.dst)
		}
	} else if prev, ok := c.inflight[e.p]; ok {
		// The same pointer was handed to a NIC while still tracked: the
		// earlier instance was recycled (or lost) while notionally in
		// flight.
		c.report(now, MonLossDup, e.src,
			"packet pointer re-sent while in flight (previous: %d->%d #%d, now %d->%d)",
			prev.pair.src, prev.pair.dst, prev.idx, e.src, e.dst)
	}
	idx := c.nextIdx[pair]
	c.nextIdx[pair] = idx + 1
	if c.opts.ByID {
		c.inflightID[e.p.ID] = sendRec{pair: pair, idx: idx}
	} else {
		c.inflight[e.p] = sendRec{pair: pair, idx: idx}
	}
	if _, seen := c.lastIdx[pair]; !seen {
		c.lastIdx[pair] = -1
	}
}

func (c *Checker) onAccept(now sim.Cycle, e event) {
	var rec sendRec
	var ok bool
	if c.opts.ByID {
		rec, ok = c.inflightID[e.p.ID]
	} else {
		rec, ok = c.inflight[e.p]
	}
	if !ok {
		c.report(now, MonLossDup, e.dst,
			"accepted packet %v was never sent or was already accepted (duplicate delivery)", e.p)
		return
	}
	if c.opts.ByID {
		delete(c.inflightID, e.p.ID)
	} else {
		delete(c.inflight, e.p)
	}
	if c.opts.InOrder {
		if last := c.lastIdx[rec.pair]; rec.idx < last {
			c.report(now, MonInOrder, e.dst,
				"pair %d->%d accepted send #%d after send #%d", rec.pair.src, rec.pair.dst, rec.idx, last)
		} else {
			c.lastIdx[rec.pair] = rec.idx
		}
	}
}
