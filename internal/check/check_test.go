// Mutation validation: every monitor must trip when the one guard it
// watches is deliberately broken, and stay silent on the healthy protocol.
// Each case injects exactly one fault (core.Mutations or
// router.IfaceMutations) into a directed workload built to exercise the
// mutated path, then steps the engine until the expected monitor fires.
package check_test

import (
	"testing"

	"nifdy/internal/check"
	"nifdy/internal/core"
	"nifdy/internal/harness"
	"nifdy/internal/nic"
	"nifdy/internal/node"
	"nifdy/internal/router"
	"nifdy/internal/sim"
)

// sendTo allocates and sends one 8-word data packet.
func sendTo(p *node.Proc, dst int, bulkReq bool) {
	pk := p.Alloc()
	pk.Src = p.ID()
	pk.Dst = dst
	pk.Words = 8
	pk.BulkReq = bulkReq
	p.Send(pk)
}

// burst returns a program sending n packets to dst. With bulk set, every
// packet carries the bulk-request bit, so a granted dialog never exits.
func burst(n, dst int, bulk bool) node.Program {
	return func(p *node.Proc) {
		for i := 0; i < n; i++ {
			sendTo(p, dst, bulk)
		}
	}
}

// drainUntil returns a receiver accepting packets (with cost per-packet
// compute) until cycle limit.
func drainUntil(limit sim.Cycle, cost sim.Cycle) node.Program {
	return func(p *node.Proc) {
		for {
			pk, ok := p.RecvOr(func() bool { return p.Now() > limit })
			if !ok {
				return
			}
			p.Free(pk)
			if cost > 0 {
				p.Consume(cost)
			}
		}
	}
}

// only wraps per-node programs: nodes without an entry get no processor.
func only(progs map[int]node.Program) func(n int) node.Program {
	return func(n int) node.Program { return progs[n] }
}

type mutationCase struct {
	name string
	// want is the monitor that must trip.
	want string
	opts harness.BuildOpts
	// finish runs the simulation to completion and calls Checker.Finish
	// (required for end-to-end loss, which is only visible at the end).
	finish bool
	max    sim.Cycle
	// interval overrides the sweep interval; transient violations (a flit
	// in flight on a paused wire, a rate breach between two limiter
	// updates) are only visible to a sweep in the same cycle.
	interval sim.Cycle
}

func runMutation(t *testing.T, tc mutationCase) {
	t.Helper()
	seen := map[string]bool{}
	var got []check.Violation
	tc.opts.Check = &check.Options{
		Interval: tc.interval, Sequence: true, InOrder: true,
		OnViolation: func(v check.Violation) {
			seen[v.Monitor] = true
			if len(got) < 20 {
				got = append(got, v)
			}
		},
	}
	s := harness.Build(tc.opts)
	defer s.Close()
	max := tc.max
	if max == 0 {
		max = 20000
	}
	for i := sim.Cycle(0); i < max && !seen[tc.want]; i++ {
		if tc.finish && s.Done() {
			break
		}
		s.Eng.Step()
	}
	if tc.finish && !seen[tc.want] {
		s.Checker.Finish(s.Eng.Now())
	}
	if !seen[tc.want] {
		t.Fatalf("monitor %q did not trip by cycle %d; violations seen: %v", tc.want, s.Eng.Now(), got)
	}
}

func nifdyOpts(params core.Config, progs map[int]node.Program) harness.BuildOpts {
	return harness.BuildOpts{
		Net:     harness.Mesh2D(),
		Kind:    harness.NIFDY,
		Params:  params,
		Program: only(progs),
	}
}

func TestMutationsTripMonitors(t *testing.T) {
	cases := []mutationCase{
		{
			// A second scalar packet to a destination that already has one
			// outstanding: two OPT entries for one destination.
			name: "DupScalar/scalar-exclusive",
			want: check.MonScalarExclusive,
			opts: nifdyOpts(
				core.Config{O: 8, B: 8, D: 1, W: 2, Mutate: core.Mutations{DupScalar: true}},
				map[int]node.Program{0: burst(3, 1, false)}),
		},
		{
			// Scalar packets to more distinct destinations than O: the OPT
			// grows past its bound. Receivers never accept, so no acks drain
			// it.
			name: "OPTOverflow/opt-bound",
			want: check.MonOPTBound,
			opts: nifdyOpts(
				core.Config{O: 2, B: 8, D: 1, W: 2, Mutate: core.Mutations{OPTOverflow: true}},
				map[int]node.Program{0: func(p *node.Proc) {
					for dst := 1; dst <= 4; dst++ {
						sendTo(p, dst, false)
					}
				}}),
		},
		{
			// Two senders each granted a bulk dialog at a receiver with D=1:
			// the mutated unit allocates a slot beyond the bound.
			name: "ExtraDialog/dialog-bound",
			want: check.MonDialogBound,
			opts: nifdyOpts(
				core.Config{O: 8, B: 8, D: 1, W: 2, AckOnArrival: true,
					Mutate: core.Mutations{ExtraDialog: true}},
				map[int]node.Program{1: burst(8, 0, true), 2: burst(8, 0, true)}),
		},
		{
			// The sender keeps injecting bulk packets past W outstanding while
			// the receiver (no processor) stops draining.
			name: "WideWindow/window-bound",
			want: check.MonWindowBound,
			opts: nifdyOpts(
				core.Config{O: 8, B: 8, D: 1, W: 2, AckOnArrival: true,
					Mutate: core.Mutations{WideWindow: true}},
				map[int]node.Program{0: burst(10, 1, true)}),
		},
		{
			// A drained bulk packet jumps the arrivals queue past an earlier
			// packet: the processor accepts the pair inverted.
			name: "ReorderDrain/in-order",
			want: check.MonInOrder,
			opts: nifdyOpts(
				core.Config{O: 8, B: 8, D: 1, W: 4,
					Mutate: core.Mutations{ReorderDrain: true}},
				map[int]node.Program{
					0: burst(12, 1, true),
					1: drainUntil(15000, 200),
				}),
		},
		{
			// The first packet handed to TrySend is silently dropped: its
			// send was recorded, its accept never comes.
			name: "LosePacket/no-loss-dup",
			want: check.MonLossDup,
			opts: nifdyOpts(
				core.Config{O: 8, B: 8, D: 1, W: 2, Mutate: core.Mutations{LosePacket: true}},
				map[int]node.Program{
					0: burst(4, 1, false),
					1: drainUntil(8000, 0),
				}),
			finish: true,
			max:    12000,
		},
		{
			// The first accepted scalar arrival is pushed to the processor
			// twice: the second accept has no tracked send.
			name: "DupDeliver/no-loss-dup",
			want: check.MonLossDup,
			opts: nifdyOpts(
				core.Config{O: 8, B: 8, D: 1, W: 2, Mutate: core.Mutations{DupDeliver: true}},
				map[int]node.Program{
					0: burst(1, 1, false),
					1: drainUntil(8000, 0),
				}),
		},
		{
			// A consumed ack is recycled into the free-list while a live
			// reference remains in the arrivals FIFO.
			name: "RecycleLiveAck/recycle-safety",
			want: check.MonRecycleSafety,
			opts: nifdyOpts(
				core.Config{O: 8, B: 8, D: 1, W: 2, AckOnArrival: true,
					Mutate: core.Mutations{RecycleLiveAck: true}},
				map[int]node.Program{0: burst(2, 1, false)}),
		},
		{
			// The destination interface drops one arriving flit without
			// accounting: the lifetime counters and the census disagree
			// forever after.
			name: "DropArrival/flit-conservation",
			want: check.MonFlitConservation,
			opts: harness.BuildOpts{
				Net: harness.Mesh2D(), Kind: harness.NIFDY,
				Params:          core.Config{O: 8, B: 8, D: 1, W: 2},
				Program:         only(map[int]node.Program{0: burst(2, 1, false)}),
				IfaceMutate:     router.IfaceMutations{DropArrival: true},
				IfaceMutateNode: 1,
			},
		},
		{
			// The destination interface returns one credit too few after a
			// delivery: the per-VC books never balance again.
			name: "LeakCredit/credit-conservation",
			want: check.MonCreditConservation,
			opts: harness.BuildOpts{
				Net: harness.Mesh2D(), Kind: harness.NIFDY,
				Params:          core.Config{O: 8, B: 8, D: 1, W: 2},
				Program:         only(map[int]node.Program{0: burst(2, 1, false)}),
				IfaceMutate:     router.IfaceMutations{LeakCredit: true},
				IfaceMutateNode: 1,
			},
		},
		{
			// The source interface sends a flit it has no credit for: its
			// credit counter goes negative — visible to the monitor before
			// the downstream buffer overflow can panic. The mutation only
			// fires when a send attempt finds the counter exhausted, so the
			// workload floods the receiver (bulk, acked on arrival, no
			// processor draining) until backpressure reaches node 0's
			// injection channel.
			name: "IgnoreCredit/vc-capacity",
			want: check.MonVCCapacity,
			opts: harness.BuildOpts{
				Net: harness.Mesh2D(), Kind: harness.NIFDY,
				Params: core.Config{O: 8, B: 8, D: 1, W: 4, AckOnArrival: true},
				Program: only(map[int]node.Program{
					0: burst(30, 1, true),
					2: burst(30, 1, true),
				}),
				IfaceMutate:     router.IfaceMutations{IgnoreCredit: true},
				IfaceMutateNode: 0,
			},
		},
		{
			// The source interface transmits one flit on a VC whose
			// downstream issued a pause: the flit is on the wire with a send
			// time at/after the pause took effect. The breach lives only for
			// the flit's flight time, so the sweep runs every cycle. The
			// converging bursts fill node 0's injection channel past the
			// XOff threshold, which is what issues the pause.
			name: "PFCIgnorePause/pfc-pause",
			want: check.MonPFCPause,
			opts: harness.BuildOpts{
				Net: harness.Mesh2D(), Kind: harness.PFC,
				Program: only(map[int]node.Program{
					0: burst(30, 1, true),
					2: burst(30, 1, true),
				}),
				IfaceMutate:     router.IfaceMutations{PFCIgnorePause: true},
				IfaceMutateNode: 0,
			},
			interval: 1,
		},
		{
			// The destination's ejection side drains below XOn and clears its
			// pause state without sending the resume frame: the transmitter
			// stays paused while the receiver believes it resumed — the
			// pause/resume pairing is broken at every sweep thereafter. The
			// slow drain forces the ejection queue through a full
			// pause-then-resume cycle.
			name: "PFCDropResume/pfc-pause",
			want: check.MonPFCPause,
			opts: harness.BuildOpts{
				Net: harness.Mesh2D(), Kind: harness.PFC,
				Program: only(map[int]node.Program{
					0: burst(20, 1, true),
					1: drainUntil(15000, 200),
				}),
				IfaceMutate:     router.IfaceMutations{PFCDropResume: true},
				IfaceMutateNode: 1,
			},
		},
		{
			// The rate limiter skips the line-rate clamp during a recovery
			// stage: the sending rate doubles past the configured maximum
			// until the next limiter update re-clamps it, so the sweep runs
			// every cycle to observe the breach.
			name: "RateOverflow/dcqcn-rate",
			want: check.MonDCQCNRate,
			opts: harness.BuildOpts{
				Net: harness.Mesh2D(), Kind: harness.DCQCN,
				Program: only(map[int]node.Program{
					0: burst(30, 1, false),
					1: drainUntil(15000, 100),
				}),
				DCQCNMutate:     nic.DCQCNMutations{RateOverflow: true},
				DCQCNMutateNode: 0,
			},
			interval: 1,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) { runMutation(t, tc) })
	}
}

// TestHealthyRunIsClean is the control: the same monitors over an
// unmutated bulk-heavy workload stay silent and the run completes.
func TestHealthyRunIsClean(t *testing.T) {
	var got []check.Violation
	opts := nifdyOpts(
		core.Config{O: 8, B: 8, D: 1, W: 4},
		map[int]node.Program{
			0: burst(12, 1, true),
			2: burst(6, 1, false),
			1: drainUntil(15000, 100),
		})
	opts.Check = &check.Options{
		Sequence: true, InOrder: true,
		OnViolation: func(v check.Violation) { got = append(got, v) },
	}
	s := harness.Build(opts)
	defer s.Close()
	ok, end := s.RunUntilDone(60000)
	if !ok {
		t.Fatalf("healthy run did not finish by cycle %d", end)
	}
	// Let in-flight packets land before the loss check.
	for i := 0; i < 2000 && len(got) == 0; i++ {
		s.Eng.Step()
	}
	s.Checker.Finish(s.Eng.Now())
	if len(got) != 0 {
		t.Fatalf("healthy run reported violations: %v", got)
	}
	if s.Checker.Sweeps() == 0 {
		t.Fatal("checker never swept")
	}
}
