package dist

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// maxFrame bounds a single frame; anything larger indicates stream
// corruption rather than a legitimate exchange.
const maxFrame = 1 << 28

// shmFlag in a frame header marks the payload as resident in the shared-
// memory segment rather than inline on the socket.
const shmFlag = 1 << 31

// Conn is one duplex peer (or launcher control) connection: length-prefixed
// frames over a Unix socketpair end, with an optional shared-memory fast
// path for the payload bytes.
//
// Sends are asynchronous — sendAsync hands the buffer to a dedicated writer
// goroutine and waitSent joins it — so a full-mesh exchange can put every
// peer's frame in flight before any peer starts draining, which is what
// makes the all-send-then-all-receive boundary protocol deadlock-free
// regardless of kernel socket buffer sizes. The caller owns the buffer again
// only after waitSent.
//
// The shared-memory path (segments mapped by newShmPair) writes the payload
// into the egress segment and sends only the header on the socket, with
// shmFlag set. The segment is split into two halves used alternately: the
// receiver lags the sender by at most one frame (the window exchange is a
// strict per-boundary alternation — a sender cannot start boundary k+2
// before the receiver has consumed boundary k's frame), so half k%2 is
// always stable while the receiver copies it. The socket write/read pair
// orders the segment access across the processes. Frames larger than a half
// fall back to inline transfer, flagged per frame.
type Conn struct {
	f *os.File

	// shmW is this side's egress segment, shmR the ingress one (both nil
	// without shared memory); shmSent/shmRecvd count shm frames for the
	// half-alternation.
	shmW, shmR        []byte
	shmSent, shmRecvd uint64

	sendCh   chan []byte
	errCh    chan error
	inFlight bool

	rbuf []byte
}

// newConn wraps an open socketpair end. The writer goroutine lives until
// Close.
func newConn(f *os.File) *Conn {
	c := &Conn{f: f, sendCh: make(chan []byte), errCh: make(chan error, 1)}
	go c.writer(c.sendCh)
	return c
}

// setShm installs the mapped segments (egress, ingress halves of a pair
// mapping). Call before the first frame.
func (c *Conn) setShm(w, r []byte) { c.shmW, c.shmR = w, r }

// writer is the per-connection send goroutine: one frame per sendAsync,
// one completion per frame on errCh. The channel arrives as a parameter
// rather than through the field, which Close nils concurrently.
func (c *Conn) writer(in <-chan []byte) {
	var hdr [4]byte
	for b := range in {
		var err error
		if half := len(c.shmW) / 2; half > 0 && len(b) <= half {
			copy(c.shmW[int(c.shmSent%2)*half:], b)
			c.shmSent++
			binary.BigEndian.PutUint32(hdr[:], uint32(len(b))|shmFlag)
			_, err = c.f.Write(hdr[:])
		} else {
			binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
			if _, err = c.f.Write(hdr[:]); err == nil && len(b) > 0 {
				_, err = c.f.Write(b)
			}
		}
		c.errCh <- err
	}
}

// sendAsync queues b for transmission. The caller must not touch b again
// until waitSent returns. At most one send may be in flight per Conn.
func (c *Conn) sendAsync(b []byte) {
	if c.inFlight {
		panic("dist: sendAsync with a send already in flight")
	}
	if len(b) > maxFrame {
		panic(fmt.Sprintf("dist: frame of %d bytes exceeds limit", len(b)))
	}
	c.inFlight = true
	c.sendCh <- b
}

// waitSent joins the in-flight send, returning its write error.
func (c *Conn) waitSent() error {
	if !c.inFlight {
		return nil
	}
	c.inFlight = false
	return <-c.errCh
}

// send transmits b synchronously (control-path convenience).
func (c *Conn) send(b []byte) error {
	c.sendAsync(b)
	return c.waitSent()
}

// readFrame reads one frame, returning a buffer valid until the next call.
func (c *Conn) readFrame() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.f, hdr[:]); err != nil {
		return nil, err
	}
	v := binary.BigEndian.Uint32(hdr[:])
	n := int(v &^ uint32(shmFlag))
	if n > maxFrame {
		return nil, fmt.Errorf("dist: frame header claims %d bytes", n)
	}
	if cap(c.rbuf) < n {
		c.rbuf = make([]byte, n)
	}
	b := c.rbuf[:n]
	if v&shmFlag != 0 {
		half := len(c.shmR) / 2
		if n > half {
			return nil, fmt.Errorf("dist: shm frame of %d bytes exceeds segment half %d", n, half)
		}
		copy(b, c.shmR[int(c.shmRecvd%2)*half:])
		c.shmRecvd++
		return b, nil
	}
	if _, err := io.ReadFull(c.f, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Close tears the connection down: the writer goroutine exits and the
// underlying descriptor is closed (unblocking any pending read with an
// error, which is how peers observe a crashed process).
func (c *Conn) Close() error {
	if c.sendCh != nil {
		if c.inFlight {
			c.inFlight = false
			<-c.errCh
		}
		close(c.sendCh)
		c.sendCh = nil
	}
	return c.f.Close()
}
