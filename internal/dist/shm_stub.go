//go:build !linux

package dist

import (
	"errors"
	"os"
)

// shmSupported reports whether the same-host shared-memory fast path is
// available on this platform.
const shmSupported = false

func newShmFile(size int) (*os.File, error) {
	return nil, errors.New("dist: shared memory transport requires linux")
}

func mapShm(f *os.File, segBytes int, lower bool) ([]byte, []byte, error) {
	return nil, nil, errors.New("dist: shared memory transport requires linux")
}
