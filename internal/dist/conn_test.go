package dist

import (
	"bytes"
	"testing"
)

// pipePair returns two connected Conns (in-process loopback).
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b, err := socketpair()
	if err != nil {
		t.Fatalf("socketpair: %v", err)
	}
	ca, cb := newConn(a), newConn(b)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

func TestConnRoundTrip(t *testing.T) {
	a, b := pipePair(t)
	for _, payload := range [][]byte{
		[]byte("hello"),
		{},
		bytes.Repeat([]byte{0xab}, 100_000),
	} {
		a.sendAsync(payload)
		got, err := b.readFrame()
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("frame of %d bytes arrived as %d bytes", len(payload), len(got))
		}
		if err := a.waitSent(); err != nil {
			t.Fatalf("waitSent: %v", err)
		}
	}
}

func TestConnSharedMem(t *testing.T) {
	if !shmSupported {
		t.Skip("no shared memory on this platform")
	}
	const seg = 4096
	f, err := newShmFile(2 * seg)
	if err != nil {
		t.Fatalf("newShmFile: %v", err)
	}
	defer f.Close()
	aw, ar, err := mapShm(f, seg, true)
	if err != nil {
		t.Fatalf("mapShm: %v", err)
	}
	bw, br, err := mapShm(f, seg, false)
	if err != nil {
		t.Fatalf("mapShm: %v", err)
	}
	a, b := pipePair(t)
	a.setShm(aw, ar)
	b.setShm(bw, br)

	// Alternating small frames exercise both halves; the oversized frame
	// falls back to the inline socket path mid-stream.
	frames := [][]byte{
		[]byte("one"), []byte("two"), []byte("three"),
		bytes.Repeat([]byte{0xcd}, seg), // > seg/2: inline fallback
		[]byte("four"),
	}
	for i, payload := range frames {
		a.sendAsync(payload)
		got, err := b.readFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("frame %d corrupted", i)
		}
		if err := a.waitSent(); err != nil {
			t.Fatalf("frame %d waitSent: %v", i, err)
		}
		// Reply so both directions (and both shm regions) get traffic.
		b.sendAsync(payload)
		got, err = a.readFrame()
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("reply %d: %v", i, err)
		}
		if err := b.waitSent(); err != nil {
			t.Fatalf("reply %d waitSent: %v", i, err)
		}
	}
	if a.shmSent == 0 || b.shmSent == 0 {
		t.Fatalf("shared-memory path never used (sent %d/%d)", a.shmSent, b.shmSent)
	}
}

func TestConnPeerDeath(t *testing.T) {
	a, b := pipePair(t)
	b.Close()
	if _, err := a.readFrame(); err == nil {
		t.Fatal("readFrame succeeded on a dead peer")
	}
}
