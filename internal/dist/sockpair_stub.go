//go:build !unix

package dist

import (
	"errors"
	"os"
)

func socketpair() (*os.File, *os.File, error) {
	return nil, nil, errors.New("dist: multi-process launch requires a unix platform")
}

func dupFile(f *os.File) (*os.File, error) {
	return nil, errors.New("dist: multi-process launch requires a unix platform")
}
