package dist

import (
	"fmt"

	"nifdy/internal/link"
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/router"
	"nifdy/internal/sim"
	"nifdy/internal/stats"
	"nifdy/internal/topo"
)

// Exchange is a worker process's sim.WindowSync: at every window boundary it
// frames the window's staged cross-process events, barrier-arrival deltas,
// and pending-count deltas for each peer, sends all frames asynchronously,
// then reads one frame from every peer in ascending rank order and replays
// its contents. All-sends-before-any-read keeps the full mesh deadlock-free;
// the fixed merge order keeps it deterministic.
//
// Every worker runs the identical boundary sequence — same window lattice,
// same hook clocks, same Run budgets (the launcher drives all workers through
// the same chunk schedule) — so frames pair up one-to-one; the (Seq,
// Boundary) header is verified on receipt and any mismatch panics rather
// than silently desynchronizing.
type Exchange struct {
	eng *sim.Engine
	w   *Worker
	lo  int // first owned shard: the staging shard for deferred barrier releases

	seq  uint64
	out  []windowFrame // per peer rank; the self entry is unused
	encs []enc         // per peer encode buffers, stable until waitSent
	in   windowFrame   // reusable decode target

	// inFlits and inCredits map cross-edge IDs (topo.MarkCross enumeration
	// order, identical in every worker) to this process's ingress wires.
	inFlits   map[int]*flitIngress
	inCredits map[int]*link.Wire[router.Credit]

	// bars holds every simulation barrier in creation order (the shared ID
	// space); arrived accumulates each barrier's global arrival count from
	// local and peer deltas — identical in every worker at every boundary.
	bars    []*node.Barrier
	arrived []int

	pend *stats.Pending
}

// flitIngress is the receiving side of one cross-process flit channel: the
// local wire events are replayed into, plus the per-VC in-flight packet used
// to rebuild flit->packet pointers. Head flits carry the packet body; body
// flits resolve to their VC's current packet — wormhole VC allocation holds a
// virtual channel from head to tail, so one VC never interleaves two packets
// (packet IDs alone would not do: a NIFDY control packet can reuse its data
// packet's ID and overtake it on a sibling VC of the same channel).
type flitIngress struct {
	l   *link.Link[packet.Flit]
	cur map[int]*packet.Packet
}

// NewExchange returns the synchronizer for worker w driving engine eng.
// Install it with eng.SetWindowSync and eng.SetCrossHook(x.CrossHook(...))
// before registering the topology.
func NewExchange(eng *sim.Engine, w *Worker) *Exchange {
	lo, _ := eng.Owned()
	return &Exchange{
		eng:       eng,
		w:         w,
		lo:        lo,
		out:       make([]windowFrame, w.Procs),
		encs:      make([]enc, w.Procs),
		inFlits:   map[int]*flitIngress{},
		inCredits: map[int]*link.Wire[router.Credit]{},
	}
}

// flitSink ships one egress flit channel's staged events into the consumer
// process's frame. Head flits (Index 0) carry the packet body so the
// receiver can materialize its own copy; body flits carry only the ID.
type flitSink struct {
	x    *Exchange
	peer int
	edge int
}

func (s flitSink) Ship(at sim.Cycle, f packet.Flit) {
	fe := flitEvent{Edge: s.edge, At: at, VC: f.VC, Index: f.Index, PktID: f.Pkt.ID}
	if f.Index == 0 {
		fe.HasPkt = true
		fe.Pkt = *f.Pkt
	}
	out := &s.x.out[s.peer]
	out.Flits = append(out.Flits, fe)
}

// creditSink ships one egress credit wire's staged events into the writer
// process's frame.
type creditSink struct {
	x    *Exchange
	peer int
	edge int
}

func (s creditSink) Ship(at sim.Cycle, c router.Credit) {
	out := &s.x.out[s.peer]
	out.Credits = append(out.Credits, creditEvent{Edge: s.edge, At: at, VC: c.VC})
}

// CrossHook returns the topo.CrossHook claiming process-crossing channels.
// rankOf maps a shard to the worker rank owning it (identical in every
// process). Channels crossing shards within this process are left to the
// default in-process marking; channels with a remote endpoint get their
// local egress side wired to a frame sink and their local ingress side
// registered for event replay; channels touching no owned shard are claimed
// as no-ops (both endpoints' tickers were dropped, so the wires stay silent).
func (x *Exchange) CrossHook(rankOf func(sh int) int) topo.CrossHook {
	me := x.w.Rank
	return func(edge int, ch *router.Channel, ws, cs int) bool {
		wr, cr := rankOf(ws), rankOf(cs)
		if wr == me && cr == me {
			return false
		}
		if wr == me {
			// Flits egress to the consumer's process; credits come back.
			ch.Flits.CrossShard(x.eng.CrossFlusher(ws))
			ch.Flits.SetRemote(flitSink{x, cr, edge})
			x.inCredits[edge] = ch.Credits
		} else if cr == me {
			// Flits arrive from the writer's process; credits egress back.
			ch.Credits.CrossShard(x.eng.CrossFlusher(cs))
			ch.Credits.SetRemote(creditSink{x, wr, edge})
			x.inFlits[edge] = &flitIngress{l: ch.Flits, cur: map[int]*packet.Packet{}}
		}
		return true
	}
}

// ObserveBarrier registers b into the shared creation-order ID space and
// switches it to distributed completion. Install with node.SetBarrierObserver
// around the simulation build; creation order is identical in every worker,
// so IDs agree without any wire-level negotiation.
func (x *Exchange) ObserveBarrier(b *node.Barrier) {
	b.SetDistributed()
	x.bars = append(x.bars, b)
	x.arrived = append(x.arrived, 0)
}

// BindPending attaches the pending-packet tracker whose per-window deltas are
// exchanged so every worker holds the global counts (p must have deltas
// enabled before its hooks are handed out).
func (x *Exchange) BindPending(p *stats.Pending) { x.pend = p }

// AtBoundary implements sim.WindowSync. See the Exchange doc for the
// protocol; the returned globalIdle is next itself when any process ticked
// (no jump), otherwise the minimum wake across all processes.
func (x *Exchange) AtBoundary(next sim.Cycle, localDone, ticked bool, idle sim.Cycle) (bool, sim.Cycle) {
	me := x.w.Rank
	for r := range x.out {
		if r == me {
			continue
		}
		f := &x.out[r]
		f.Seq, f.Boundary, f.Ticked, f.Done, f.Idle = x.seq, next, ticked, localDone, idle
	}
	for i, b := range x.bars {
		d := b.TakeArrivals()
		if d == 0 {
			continue
		}
		x.arrived[i] += d
		for r := range x.out {
			if r != me {
				x.out[r].Barriers = append(x.out[r].Barriers, barrierDelta{ID: i, Delta: d})
			}
		}
	}
	if x.pend != nil {
		x.pend.TakeDeltas(func(n, d int) {
			for r := range x.out {
				if r != me {
					x.out[r].Pending = append(x.out[r].Pending, pendingDelta{Node: n, Delta: d})
				}
			}
		})
	}
	for r := range x.out {
		if r == me {
			continue
		}
		e := &x.encs[r]
		e.reset()
		encodeWindowFrame(e, &x.out[r])
		x.w.peer(r).sendAsync(e.bytes())
	}
	gdone, gticked, gidle := localDone, ticked, idle
	for r := 0; r < x.w.Procs; r++ {
		if r == me {
			continue
		}
		b, err := x.w.peer(r).readFrame()
		if err != nil {
			panic(fmt.Sprintf("dist: worker %d lost peer %d at boundary %d: %v", me, r, next, err))
		}
		if err := decodeWindowFrame(b, &x.in); err != nil {
			panic(fmt.Sprintf("dist: worker %d: bad frame from peer %d: %v", me, r, err))
		}
		if x.in.Seq != x.seq || x.in.Boundary != next {
			panic(fmt.Sprintf("dist: worker %d desynchronized from peer %d: got (seq %d, boundary %d), want (%d, %d)",
				me, r, x.in.Seq, x.in.Boundary, x.seq, next))
		}
		gdone = gdone && x.in.Done
		gticked = gticked || x.in.Ticked
		if x.in.Idle < gidle {
			gidle = x.in.Idle
		}
		for _, bd := range x.in.Barriers {
			if bd.ID < 0 || bd.ID >= len(x.arrived) {
				panic(fmt.Sprintf("dist: barrier delta for unknown ID %d", bd.ID))
			}
			x.arrived[bd.ID] += bd.Delta
		}
		if x.pend != nil {
			for _, pd := range x.in.Pending {
				x.pend.ApplyRemote(pd.Node, pd.Delta)
			}
		}
		for i := range x.in.Flits {
			x.applyFlit(&x.in.Flits[i])
		}
		for _, ce := range x.in.Credits {
			w := x.inCredits[ce.Edge]
			if w == nil {
				panic(fmt.Sprintf("dist: credit for unknown ingress edge %d", ce.Edge))
			}
			w.InjectAt(ce.At, router.Credit{VC: ce.VC})
		}
	}
	for r := range x.out {
		if r == me {
			continue
		}
		if err := x.w.peer(r).waitSent(); err != nil {
			panic(fmt.Sprintf("dist: worker %d: send to peer %d failed: %v", me, r, err))
		}
		f := &x.out[r]
		f.Barriers, f.Pending = f.Barriers[:0], f.Pending[:0]
		f.Flits, f.Credits = f.Flits[:0], f.Credits[:0]
	}
	x.completeBarriers(next)
	x.seq++
	if gdone {
		return true, next
	}
	if gticked {
		return false, next
	}
	return false, gidle
}

// completeBarriers releases every barrier whose global arrival count reached
// its participant total this window. At a lattice boundary the release runs
// immediately with now = next-1 — this call IS the boundary drain, matching
// the due an in-process AtBarrier release would have. At a clamped (earlier-
// than-lattice) boundary the release defers through AtBarrier, which
// re-quantizes it to the lattice point of the staging cycle — again exactly
// where the in-process release would land. Every worker runs this with the
// same counts, so releases happen at the same instant everywhere.
func (x *Exchange) completeBarriers(next sim.Cycle) {
	for i, b := range x.bars {
		if x.arrived[i] < b.Participants() {
			continue
		}
		x.arrived[i] -= b.Participants()
		if next%x.eng.Window() == 0 {
			b.CompleteAt(next - 1)
		} else {
			x.eng.AtBarrier(x.lo, next, b.CompleteAt)
		}
	}
}

// applyFlit replays one remote flit arrival: materialize the packet copy on
// head flits, resolve body flits to their VC's in-flight packet, drop the
// entry when the tail flit passes, and inject into the local wire. The PktID
// echo doubles as a desync tripwire on every body flit.
func (x *Exchange) applyFlit(fe *flitEvent) {
	in := x.inFlits[fe.Edge]
	if in == nil {
		panic(fmt.Sprintf("dist: flit for unknown ingress edge %d", fe.Edge))
	}
	var p *packet.Packet
	if fe.HasPkt {
		p = new(packet.Packet)
		*p = fe.Pkt
		in.cur[fe.VC] = p
	} else if p = in.cur[fe.VC]; p == nil || p.ID != fe.PktID {
		panic(fmt.Sprintf("dist: body flit %d of packet %d does not continue edge %d VC %d", fe.Index, fe.PktID, fe.Edge, fe.VC))
	}
	if fe.Index == p.Flits()-1 {
		delete(in.cur, fe.VC)
	}
	in.l.InjectAt(fe.At, packet.Flit{Pkt: p, Index: fe.Index, VC: fe.VC})
}
