package dist

import (
	"bytes"
	"reflect"
	"testing"

	"nifdy/internal/packet"
	"nifdy/internal/sim"
)

// sampleFrame builds a frame exercising every section and encoding path.
func sampleFrame() *windowFrame {
	return &windowFrame{
		Seq:      42,
		Boundary: 12_000,
		Ticked:   true,
		Done:     false,
		Idle:     sim.Never,
		Barriers: []barrierDelta{{ID: 0, Delta: 3}, {ID: 7, Delta: -2}},
		Pending:  []pendingDelta{{Node: 63, Delta: 1}, {Node: 0, Delta: -1}},
		Flits: []flitEvent{
			{
				Edge: 5, At: 12_004, VC: 1, Index: 0, PktID: 1<<40 | 9, HasPkt: true,
				Pkt: packet.Packet{ID: 1<<40 | 9, Src: 1, Dst: 2, Words: 3, Seq: 4},
			},
			{Edge: 5, At: 12_008, VC: 1, Index: 1, PktID: 1<<40 | 9},
		},
		Credits: []creditEvent{{Edge: 2, At: 12_004, VC: 0}, {Edge: 2, At: 12_005, VC: 3}},
	}
}

func encodeFrame(f *windowFrame) []byte {
	var e enc
	encodeWindowFrame(&e, f)
	return append([]byte(nil), e.bytes()...)
}

func TestWindowFrameRoundTrip(t *testing.T) {
	for _, f := range []*windowFrame{
		sampleFrame(),
		{Seq: 0, Boundary: 0, Idle: 0},
		{Seq: 1, Boundary: 500, Ticked: false, Done: true, Idle: 700},
	} {
		b := encodeFrame(f)
		var got windowFrame
		if err := decodeWindowFrame(b, &got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		// Normalize nil vs empty sections before the deep compare.
		want := *f
		for _, s := range []struct{ w, g int }{
			{len(want.Barriers), len(got.Barriers)},
			{len(want.Pending), len(got.Pending)},
			{len(want.Flits), len(got.Flits)},
			{len(want.Credits), len(got.Credits)},
		} {
			if s.w != s.g {
				t.Fatalf("section length %d != %d", s.g, s.w)
			}
		}
		if want.Seq != got.Seq || want.Boundary != got.Boundary ||
			want.Ticked != got.Ticked || want.Done != got.Done || want.Idle != got.Idle {
			t.Fatalf("header mismatch: got %+v want %+v", got, want)
		}
		for i := range want.Flits {
			if !reflect.DeepEqual(want.Flits[i], got.Flits[i]) {
				t.Fatalf("flit %d: got %+v want %+v", i, got.Flits[i], want.Flits[i])
			}
		}
		for i := range want.Barriers {
			if want.Barriers[i] != got.Barriers[i] {
				t.Fatalf("barrier %d: got %+v want %+v", i, got.Barriers[i], want.Barriers[i])
			}
		}
		for i := range want.Pending {
			if want.Pending[i] != got.Pending[i] {
				t.Fatalf("pending %d: got %+v want %+v", i, got.Pending[i], want.Pending[i])
			}
		}
		for i := range want.Credits {
			if want.Credits[i] != got.Credits[i] {
				t.Fatalf("credit %d: got %+v want %+v", i, got.Credits[i], want.Credits[i])
			}
		}
	}
}

// fillValue sets every field of v to a distinct nonzero value, recursing into
// structs. Small unsigned kinds stay within a byte, matching the codec's u8
// fields (enums).
func fillValue(v reflect.Value, seed *uint64) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillValue(v.Field(i), seed)
		}
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		*seed++
		v.SetInt(int64(*seed))
	case reflect.Uint8:
		*seed++
		v.SetUint(*seed % 200)
	case reflect.Uint, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		*seed++
		v.SetUint(*seed * 1_000_003)
	default:
		panic("unhandled packet field kind " + v.Kind().String())
	}
}

// TestPacketCodecCoversEveryField fills packet.Packet entirely by reflection
// and round-trips it: adding a field to the struct without carrying it in
// encodePacket/decodePacket fails here instead of silently desynchronizing
// worker processes.
func TestPacketCodecCoversEveryField(t *testing.T) {
	var p packet.Packet
	seed := uint64(7)
	fillValue(reflect.ValueOf(&p).Elem(), &seed)
	var e enc
	encodePacket(&e, &p)
	d := &dec{b: e.bytes()}
	var got packet.Packet
	decodePacket(d, &got)
	if d.err != nil {
		t.Fatalf("decode: %v", d.err)
	}
	if d.off != len(e.bytes()) {
		t.Fatalf("decode consumed %d of %d bytes", d.off, len(e.bytes()))
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip changed packet:\n got %+v\nwant %+v", got, p)
	}
}

func TestDecodeWindowFrameErrors(t *testing.T) {
	valid := encodeFrame(sampleFrame())
	cases := map[string][]byte{
		"empty":          {},
		"bad type":       {0x7f},
		"truncated":      valid[:len(valid)/2],
		"trailing":       append(append([]byte(nil), valid...), 0xee),
		"huge count":     {frameWindow, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f},
		"uvarint sprawl": {frameWindow, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01},
	}
	for name, b := range cases {
		var f windowFrame
		if err := decodeWindowFrame(b, &f); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

// TestDecodeWindowFrameAllocs pins the decoder's steady-state allocation
// behavior: decoding into a warm frame (section slices at capacity) allocates
// nothing — the exchange reuses one frame per peer for the whole run.
func TestDecodeWindowFrameAllocs(t *testing.T) {
	b := encodeFrame(sampleFrame())
	var f windowFrame
	if err := decodeWindowFrame(b, &f); err != nil {
		t.Fatalf("warmup decode: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := decodeWindowFrame(b, &f); err != nil {
			t.Fatalf("decode: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm decode allocates %.1f objects per frame, want 0", allocs)
	}
}

// FuzzFrameCodec feeds the decoder adversarial bytes: it must never panic and
// never allocate beyond the frame's own sections, and any accepted input must
// reach a canonical fixed point (decode -> encode is idempotent).
func FuzzFrameCodec(f *testing.F) {
	f.Add(encodeFrame(sampleFrame()))
	f.Add([]byte{frameWindow})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr windowFrame
		if err := decodeWindowFrame(data, &fr); err != nil {
			return
		}
		var e enc
		encodeWindowFrame(&e, &fr)
		first := append([]byte(nil), e.bytes()...)
		var fr2 windowFrame
		if err := decodeWindowFrame(first, &fr2); err != nil {
			t.Fatalf("re-decode of canonical bytes failed: %v", err)
		}
		e.reset()
		encodeWindowFrame(&e, &fr2)
		if !bytes.Equal(first, e.bytes()) {
			t.Fatalf("canonical encoding not a fixed point:\n %x\nvs %x", first, e.bytes())
		}
	})
}
