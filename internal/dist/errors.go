package dist

import "errors"

// ErrUnsupportedFeature marks simulation features the distributed runner
// cannot host because the wire codec cannot carry them across a process
// boundary: lossy wires and retransmission (drop state is process-local),
// and the fabric baselines (PFC pause/resume frames and ECN marks have no
// frame encoding — creditEvent carries bare VC numbers). Callers classify
// with errors.Is; the harness wraps this error with the offending feature's
// name at spec-validation and launch time, so a misconfigured run fails
// before any worker process is spawned.
var ErrUnsupportedFeature = errors.New("dist: feature not supported by the wire codec")
