package dist

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
)

// WorkerSentinel is the argv[1] marker a re-exec'd worker process recognizes
// itself by (JoinWorker). Binaries embedding the distributed runner must call
// JoinWorker before any other argument parsing.
const WorkerSentinel = "nifdy-dist-worker-v1"

// DefaultShmBytes is the per-direction shared-memory segment size when
// LaunchOptions.ShmBytes is zero.
const DefaultShmBytes = 1 << 20

// LaunchOptions configures Launch.
type LaunchOptions struct {
	// SharedMem enables the same-host shared-memory fast path for peer
	// frames (linux only; Launch errors elsewhere).
	SharedMem bool
	// ShmBytes is the per-direction segment size (default DefaultShmBytes).
	// Each segment is halved for frame alternation, so frames larger than
	// ShmBytes/2 fall back to the socket inline path.
	ShmBytes int
}

// Cluster is the launcher's handle on a set of worker processes: one control
// connection per worker plus the process handles. Workers communicate with
// each other directly over the peer mesh; the launcher only drives the
// control protocol (send a spec, issue run commands, gather records).
type Cluster struct {
	cmds []*exec.Cmd
	ctrl []*Conn
}

// Launch re-executes this binary procs times as workers (argv:
// [WorkerSentinel, rank, procs, shmBytes]) with a full peer socket mesh and
// per-worker control sockets passed as inherited descriptors: fd 3 is the
// control connection, fds 4.. the peer sockets in ascending peer rank, then
// (with SharedMem) one segment file per peer in the same order.
func Launch(procs int, opts LaunchOptions) (*Cluster, error) {
	if procs < 1 {
		return nil, fmt.Errorf("dist: launch of %d workers", procs)
	}
	shmBytes := 0
	if opts.SharedMem {
		if !shmSupported {
			return nil, fmt.Errorf("dist: shared memory transport requires linux")
		}
		shmBytes = opts.ShmBytes
		if shmBytes <= 0 {
			shmBytes = DefaultShmBytes
		}
	}
	// Child descriptor lists, per worker: peer sockets first, then shm files
	// (both in ascending peer order); the control socket is prepended last.
	peerFiles := make([][]*os.File, procs)
	shmFiles := make([][]*os.File, procs)
	c := &Cluster{ctrl: make([]*Conn, procs)}
	fail := func(err error) (*Cluster, error) {
		for _, cmd := range c.cmds {
			cmd.Process.Kill()
			cmd.Wait()
		}
		for _, cc := range c.ctrl {
			if cc != nil {
				cc.Close()
			}
		}
		for r := range peerFiles {
			for _, f := range peerFiles[r] {
				f.Close()
			}
			for _, f := range shmFiles[r] {
				f.Close()
			}
		}
		return nil, err
	}
	for i := 0; i < procs; i++ {
		for j := i + 1; j < procs; j++ {
			a, b, err := socketpair()
			if err != nil {
				return fail(fmt.Errorf("dist: peer socketpair: %w", err))
			}
			peerFiles[i] = append(peerFiles[i], a)
			peerFiles[j] = append(peerFiles[j], b)
			if shmBytes > 0 {
				f, err := newShmFile(2 * shmBytes)
				if err != nil {
					return fail(err)
				}
				// Both workers inherit the same segment file; dup the handle
				// so per-worker close bookkeeping stays uniform.
				f2, err := dupFile(f)
				if err != nil {
					f.Close()
					return fail(fmt.Errorf("dist: dup shm file: %w", err))
				}
				shmFiles[i] = append(shmFiles[i], f)
				shmFiles[j] = append(shmFiles[j], f2)
			}
		}
	}
	for r := 0; r < procs; r++ {
		pc, wc, err := socketpair()
		if err != nil {
			return fail(fmt.Errorf("dist: control socketpair: %w", err))
		}
		c.ctrl[r] = newConn(pc)
		extra := append([]*os.File{wc}, peerFiles[r]...)
		extra = append(extra, shmFiles[r]...)
		cmd := exec.Command(os.Args[0], WorkerSentinel,
			strconv.Itoa(r), strconv.Itoa(procs), strconv.Itoa(shmBytes))
		cmd.ExtraFiles = extra
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			wc.Close()
			return fail(fmt.Errorf("dist: start worker %d: %w", r, err))
		}
		c.cmds = append(c.cmds, cmd)
		wc.Close()
	}
	// The workers hold their own copies now; release the launcher's.
	for r := range peerFiles {
		for _, f := range peerFiles[r] {
			f.Close()
		}
		for _, f := range shmFiles[r] {
			f.Close()
		}
	}
	return c, nil
}

// Procs reports the number of workers.
func (c *Cluster) Procs() int { return len(c.cmds) }

// Send transmits one control frame to worker rank.
func (c *Cluster) Send(rank int, b []byte) error { return c.ctrl[rank].send(b) }

// Recv reads one control frame from worker rank. The returned buffer is
// valid until the next Recv from the same rank.
func (c *Cluster) Recv(rank int) ([]byte, error) { return c.ctrl[rank].readFrame() }

// Wait waits for every worker to exit and returns the first failure.
func (c *Cluster) Wait() error {
	var first error
	for r, cmd := range c.cmds {
		if err := cmd.Wait(); err != nil && first == nil {
			first = fmt.Errorf("dist: worker %d: %w", r, err)
		}
	}
	return first
}

// Kill forcibly terminates every worker (peer connection teardown cascades
// the abort to any survivor blocked in an exchange).
func (c *Cluster) Kill() {
	for _, cmd := range c.cmds {
		cmd.Process.Kill()
	}
}

// Close closes the control connections (workers see EOF and exit) and waits.
func (c *Cluster) Close() error {
	for _, cc := range c.ctrl {
		cc.Close()
	}
	return c.Wait()
}

// Worker is a worker process's side of the mesh: its rank, the control
// connection back to the launcher, and one connection per peer.
type Worker struct {
	Rank  int
	Procs int
	ctrl  *Conn
	peers []*Conn // indexed by rank; self entry nil
}

// JoinWorker inspects argv and, when this process is a Launch-spawned worker,
// adopts the inherited descriptors and returns the Worker handle. Returns
// (nil, false) in ordinary (launcher or standalone) processes. Call first
// thing in main, before flag parsing.
func JoinWorker() (*Worker, bool) {
	if len(os.Args) != 5 || os.Args[1] != WorkerSentinel {
		return nil, false
	}
	rank := mustAtoi(os.Args[2])
	procs := mustAtoi(os.Args[3])
	shmBytes := mustAtoi(os.Args[4])
	if rank < 0 || procs < 1 || rank >= procs {
		panic(fmt.Sprintf("dist: bad worker identity %d/%d", rank, procs))
	}
	w := &Worker{
		Rank:  rank,
		Procs: procs,
		ctrl:  newConn(os.NewFile(3, "dist-ctrl")),
		peers: make([]*Conn, procs),
	}
	fd := uintptr(4)
	for p := 0; p < procs; p++ {
		if p == rank {
			continue
		}
		w.peers[p] = newConn(os.NewFile(fd, fmt.Sprintf("dist-peer-%d", p)))
		fd++
	}
	if shmBytes > 0 {
		for p := 0; p < procs; p++ {
			if p == rank {
				continue
			}
			f := os.NewFile(fd, fmt.Sprintf("dist-shm-%d", p))
			fd++
			egress, ingress, err := mapShm(f, shmBytes, rank < p)
			if err != nil {
				panic(err.Error())
			}
			w.peers[p].setShm(egress, ingress)
			f.Close() // the mapping outlives the descriptor
		}
	}
	return w, true
}
func mustAtoi(s string) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		panic(fmt.Sprintf("dist: malformed worker argv %q", s))
	}
	return v
}

// peer returns the connection to worker r.
func (w *Worker) peer(r int) *Conn { return w.peers[r] }

// ReadControl reads one frame from the launcher; an error (including EOF on
// launcher death) means the run is over.
func (w *Worker) ReadControl() ([]byte, error) { return w.ctrl.readFrame() }

// SendControl sends one frame to the launcher.
func (w *Worker) SendControl(b []byte) error { return w.ctrl.send(b) }

// Close tears down every connection.
func (w *Worker) Close() {
	w.ctrl.Close()
	for _, p := range w.peers {
		if p != nil {
			p.Close()
		}
	}
}
