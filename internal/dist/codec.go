// Package dist implements the multi-process distributed runner: worker
// processes each own a contiguous slice of a sharded simulation and exchange
// the staged cross-boundary events once per conservative-sync window, over
// Unix-domain socket pairs (or an optional same-host shared-memory ring).
//
// The wire protocol is a frame per (boundary, peer): a header carrying the
// boundary cycle, a sequence number, the sender's done/ticked/idle state,
// then three sections — barrier arrival deltas, pending-count deltas, and
// the flit/credit events of every process-crossing channel whose writer the
// sender owns and whose consumer the receiver owns. Receivers replay the
// events with link.InjectAt in frame order, which preserves each wire's
// staged (arrival-monotonic) order; merging frames in peer-rank order makes
// the whole exchange deterministic, so any {shards x processes} split of a
// fixed-window model is bit-identical to serial execution (the tier-1
// contract enforced by internal/harness's determinism matrix).
package dist

import (
	"fmt"

	"nifdy/internal/packet"
	"nifdy/internal/sim"
)

// frameWindow is the type byte opening every per-boundary exchange frame
// (control traffic runs on a dedicated launcher connection and never mixes
// with window frames, so one type byte is a cheap desync tripwire).
const frameWindow = 0x01

// windowFrame is the decoded form of one per-boundary frame.
type windowFrame struct {
	Seq      uint64
	Boundary sim.Cycle
	Ticked   bool
	Done     bool
	// Idle is the sender's earliest future wake (valid when !Ticked;
	// sim.Never when fully quiescent).
	Idle sim.Cycle

	Barriers []barrierDelta
	Pending  []pendingDelta
	Flits    []flitEvent
	Credits  []creditEvent
}

type barrierDelta struct {
	ID    int
	Delta int
}

type pendingDelta struct {
	Node  int
	Delta int
}

// flitEvent is one cross-process flit arrival: Edge identifies the channel
// (cross-edge enumeration order, identical in every worker), At the arrival
// cycle. Head flits carry the full packet body (HasPkt) so the receiver can
// materialize its own copy; body flits carry only the ID, resolved against
// the receiver's packet table.
type flitEvent struct {
	Edge   int
	At     sim.Cycle
	VC     int
	Index  int
	PktID  uint64
	HasPkt bool
	Pkt    packet.Packet
}

type creditEvent struct {
	Edge int
	At   sim.Cycle
	VC   int
}

// enc is an append-only little-endian/varint encoder over a reusable buffer.
type enc struct{ b []byte }

func (e *enc) reset()        { e.b = e.b[:0] }
func (e *enc) bytes() []byte { return e.b }

func (e *enc) u8(v byte) { e.b = append(e.b, v) }

// uvarint appends v in unsigned LEB128.
func (e *enc) uvarint(v uint64) {
	for v >= 0x80 {
		e.b = append(e.b, byte(v)|0x80)
		v >>= 7
	}
	e.b = append(e.b, byte(v))
}

// varint appends v zigzag-encoded.
func (e *enc) varint(v int64) { e.uvarint(uint64(v<<1) ^ uint64(v>>63)) }

func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// dec decodes from a byte slice; all methods report malformed input via err
// (they never panic — the decoder fuzz target feeds adversarial bytes).
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *dec) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("dist: truncated frame at byte %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) uvarint() uint64 {
	var v uint64
	for shift := 0; ; shift += 7 {
		if shift > 63 {
			d.fail("dist: uvarint overflow at byte %d", d.off)
			return 0
		}
		c := d.u8()
		if d.err != nil {
			return 0
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v
		}
	}
}

func (d *dec) varint() int64 {
	u := d.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (d *dec) bool() bool { return d.u8() != 0 }

// count decodes a section length and bounds it by the remaining bytes (every
// element costs at least min bytes), so adversarial lengths cannot drive a
// huge allocation.
func (d *dec) count(min int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if rem := len(d.b) - d.off; n > uint64(rem/min)+1 {
		d.fail("dist: section count %d exceeds frame size", n)
		return 0
	}
	return int(n)
}

// encodePacket appends every field of p. The field list must stay in sync
// with decodePacket and with packet.Packet — the codec round-trip test
// fills the struct by reflection, so a new field that is not carried here
// fails the test rather than silently desynchronizing worker processes.
func encodePacket(e *enc, p *packet.Packet) {
	e.uvarint(p.ID)
	e.varint(int64(p.Src))
	e.varint(int64(p.Dst))
	e.u8(byte(p.Kind))
	e.u8(byte(p.Class))
	e.varint(int64(p.Words))
	e.bool(p.BulkReq)
	e.bool(p.BulkExit)
	e.bool(p.NoAck)
	e.bool(p.ECN)
	e.bool(p.CNP)
	e.bool(p.Dup)
	e.bool(p.Retransmit)
	e.varint(int64(p.Dialog))
	e.varint(int64(p.Seq))
	e.u8(byte(p.Grant))
	e.bool(p.BulkAck)
	e.varint(int64(p.CumSeq))
	e.bool(p.PiggyAck)
	e.bool(p.Terminate)
	e.uvarint(p.Meta.MsgID)
	e.varint(int64(p.Meta.Index))
	e.varint(int64(p.Meta.Total))
	e.varint(int64(p.Meta.Tag))
	e.uvarint(p.Meta.Value)
	e.varint(p.CreatedAt)
	e.varint(p.InjectedAt)
	e.varint(p.DeliveredAt)
	e.varint(p.AcceptedAt)
}

func decodePacket(d *dec, p *packet.Packet) {
	p.ID = d.uvarint()
	p.Src = int(d.varint())
	p.Dst = int(d.varint())
	p.Kind = packet.Kind(d.u8())
	p.Class = packet.Class(d.u8())
	p.Words = int(d.varint())
	p.BulkReq = d.bool()
	p.BulkExit = d.bool()
	p.NoAck = d.bool()
	p.ECN = d.bool()
	p.CNP = d.bool()
	p.Dup = d.bool()
	p.Retransmit = d.bool()
	p.Dialog = int(d.varint())
	p.Seq = int(d.varint())
	p.Grant = packet.GrantKind(d.u8())
	p.BulkAck = d.bool()
	p.CumSeq = int(d.varint())
	p.PiggyAck = d.bool()
	p.Terminate = d.bool()
	p.Meta.MsgID = d.uvarint()
	p.Meta.Index = int(d.varint())
	p.Meta.Total = int(d.varint())
	p.Meta.Tag = int(d.varint())
	p.Meta.Value = d.uvarint()
	p.CreatedAt = d.varint()
	p.InjectedAt = d.varint()
	p.DeliveredAt = d.varint()
	p.AcceptedAt = d.varint()
}

// encodeWindowFrame serializes f into e (reset first by the caller). Event
// arrival cycles are encoded relative to the boundary; conservative padding
// guarantees they never precede it.
func encodeWindowFrame(e *enc, f *windowFrame) {
	e.u8(frameWindow)
	e.uvarint(f.Seq)
	e.varint(f.Boundary)
	var flags byte
	if f.Ticked {
		flags |= 1
	}
	if f.Done {
		flags |= 2
	}
	e.u8(flags)
	if f.Idle == sim.Never {
		e.uvarint(0)
	} else {
		e.uvarint(uint64(f.Idle-f.Boundary) + 1)
	}
	e.uvarint(uint64(len(f.Barriers)))
	for _, b := range f.Barriers {
		e.uvarint(uint64(b.ID))
		e.varint(int64(b.Delta))
	}
	e.uvarint(uint64(len(f.Pending)))
	for _, p := range f.Pending {
		e.uvarint(uint64(p.Node))
		e.varint(int64(p.Delta))
	}
	e.uvarint(uint64(len(f.Flits)))
	for i := range f.Flits {
		fe := &f.Flits[i]
		e.uvarint(uint64(fe.Edge))
		e.uvarint(uint64(fe.At - f.Boundary))
		e.uvarint(uint64(fe.VC))
		e.uvarint(uint64(fe.Index))
		e.uvarint(fe.PktID)
		e.bool(fe.HasPkt)
		if fe.HasPkt {
			encodePacket(e, &fe.Pkt)
		}
	}
	e.uvarint(uint64(len(f.Credits)))
	for _, ce := range f.Credits {
		e.uvarint(uint64(ce.Edge))
		e.uvarint(uint64(ce.At - f.Boundary))
		e.uvarint(uint64(ce.VC))
	}
}

// decodeWindowFrame parses b into f, reusing f's section slices. It returns
// an error (never panics) on malformed input and allocates nothing beyond
// the frame's own decoded sections.
func decodeWindowFrame(b []byte, f *windowFrame) error {
	d := &dec{b: b}
	if t := d.u8(); t != frameWindow && d.err == nil {
		return fmt.Errorf("dist: frame type 0x%02x, want window", t)
	}
	f.Seq = d.uvarint()
	f.Boundary = d.varint()
	flags := d.u8()
	f.Ticked = flags&1 != 0
	f.Done = flags&2 != 0
	if raw := d.uvarint(); raw == 0 {
		f.Idle = sim.Never
	} else {
		f.Idle = f.Boundary + sim.Cycle(raw-1)
	}
	f.Barriers = f.Barriers[:0]
	for n := d.count(2); n > 0 && d.err == nil; n-- {
		f.Barriers = append(f.Barriers, barrierDelta{
			ID:    int(d.uvarint()),
			Delta: int(d.varint()),
		})
	}
	f.Pending = f.Pending[:0]
	for n := d.count(2); n > 0 && d.err == nil; n-- {
		f.Pending = append(f.Pending, pendingDelta{
			Node:  int(d.uvarint()),
			Delta: int(d.varint()),
		})
	}
	f.Flits = f.Flits[:0]
	for n := d.count(6); n > 0 && d.err == nil; n-- {
		var fe flitEvent
		fe.Edge = int(d.uvarint())
		fe.At = f.Boundary + sim.Cycle(d.uvarint())
		fe.VC = int(d.uvarint())
		fe.Index = int(d.uvarint())
		fe.PktID = d.uvarint()
		fe.HasPkt = d.bool()
		if fe.HasPkt {
			decodePacket(d, &fe.Pkt)
		}
		f.Flits = append(f.Flits, fe)
	}
	f.Credits = f.Credits[:0]
	for n := d.count(3); n > 0 && d.err == nil; n-- {
		f.Credits = append(f.Credits, creditEvent{
			Edge: int(d.uvarint()),
			At:   f.Boundary + sim.Cycle(d.uvarint()),
			VC:   int(d.uvarint()),
		})
	}
	if d.err != nil {
		return d.err
	}
	if d.off != len(b) {
		return fmt.Errorf("dist: %d trailing bytes in frame", len(b)-d.off)
	}
	return nil
}
