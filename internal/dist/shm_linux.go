//go:build linux

package dist

import (
	"fmt"
	"os"
	"syscall"
)

// shmSupported reports whether the same-host shared-memory fast path is
// available on this platform.
const shmSupported = true

// newShmFile creates an anonymous shared-memory file of size bytes for one
// unordered worker pair. The name is unlinked immediately; the file lives
// only as long as the descriptors inherited by the two workers.
func newShmFile(size int) (*os.File, error) {
	f, err := os.CreateTemp("/dev/shm", "nifdy-dist-*")
	if err != nil {
		return nil, fmt.Errorf("dist: create shm file: %w", err)
	}
	// Unlink now so a crashed run leaves nothing behind in /dev/shm.
	os.Remove(f.Name())
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return nil, fmt.Errorf("dist: size shm file: %w", err)
	}
	return f, nil
}

// mapShm maps the pair file shared read-write. Each pair file holds two
// egress segments of segBytes each: region 0 is written by the lower-ranked
// worker, region 1 by the higher-ranked one; lower reports whether the
// caller is the lower rank. Returns (egress, ingress).
func mapShm(f *os.File, segBytes int, lower bool) ([]byte, []byte, error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, 2*segBytes,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: mmap shm: %w", err)
	}
	lo, hi := b[:segBytes:segBytes], b[segBytes:]
	if lower {
		return lo, hi, nil
	}
	return hi, lo, nil
}
