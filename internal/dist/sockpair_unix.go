//go:build unix

package dist

import (
	"os"
	"syscall"
)

// socketpair returns both ends of a connected Unix stream pair, close-on-exec
// (the launcher hands descriptors to workers explicitly via ExtraFiles).
func socketpair() (*os.File, *os.File, error) {
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
	if err != nil {
		return nil, nil, err
	}
	syscall.CloseOnExec(fds[0])
	syscall.CloseOnExec(fds[1])
	return os.NewFile(uintptr(fds[0]), "dist-sock"), os.NewFile(uintptr(fds[1]), "dist-sock"), nil
}

// dupFile duplicates f's descriptor (close-on-exec), so two workers can each
// own a handle on the same shared-memory segment file.
func dupFile(f *os.File) (*os.File, error) {
	fd, err := syscall.Dup(int(f.Fd()))
	if err != nil {
		return nil, err
	}
	syscall.CloseOnExec(fd)
	return os.NewFile(uintptr(fd), f.Name()), nil
}
