package msg

import (
	"testing"
	"testing/quick"

	"nifdy/internal/core"
	"nifdy/internal/node"
	"nifdy/internal/packet"
	"nifdy/internal/sim"
	"nifdy/internal/topo/fattree"
)

func TestPayloadSizes(t *testing.T) {
	if got := (Config{Words: 6, InOrder: true}).Payload(); got != 5 {
		t.Fatalf("in-order payload = %d", got)
	}
	if got := (Config{Words: 6}).Payload(); got != 4 {
		t.Fatalf("generic payload = %d", got)
	}
	if got := (Config{Words: 8, InOrder: true}).Payload(); got != 7 {
		t.Fatalf("8-word payload = %d", got)
	}
}

func TestPacketsFor(t *testing.T) {
	c := Config{Words: 6, InOrder: true} // payload 5
	cases := map[int]int{1: 1, 5: 1, 6: 2, 10: 2, 11: 3, 100: 20}
	for words, want := range cases {
		if got := c.PacketsFor(words); got != want {
			t.Errorf("PacketsFor(%d) = %d, want %d", words, got, want)
		}
	}
}

func TestPrepareBulkBits(t *testing.T) {
	l := New(Config{Words: 6, InOrder: true, BulkThreshold: 3}, nil)
	b := l.Prepare(0, 5, 25) // 5 packets >= threshold
	if len(b.Packets) != 5 {
		t.Fatalf("%d packets", len(b.Packets))
	}
	for i, p := range b.Packets {
		wantReq := i < 4
		if p.BulkReq != wantReq {
			t.Fatalf("packet %d BulkReq = %v", i, p.BulkReq)
		}
		if p.Meta.Index != i || p.Meta.Total != 5 {
			t.Fatalf("packet %d meta %+v", i, p.Meta)
		}
	}
	short := l.Prepare(0, 5, 5) // 1 packet < threshold
	if short.Packets[0].BulkReq {
		t.Fatal("short transfer requested bulk")
	}
}

func TestPrepareBulkDisabled(t *testing.T) {
	l := New(Config{Words: 6, BulkThreshold: -1}, nil)
	b := l.Prepare(0, 5, 100)
	for _, p := range b.Packets {
		if p.BulkReq {
			t.Fatal("bulk requested with threshold disabled")
		}
	}
}

func TestReorderTagging(t *testing.T) {
	generic := New(Config{Words: 6}, nil)
	for _, p := range generic.Prepare(0, 1, 20).Packets {
		if p.Meta.Tag != node.TagNeedsReorder {
			t.Fatal("generic multi-packet transfer not tagged")
		}
	}
	// Single-packet transfers never need reordering.
	if generic.Prepare(0, 1, 3).Packets[0].Meta.Tag == node.TagNeedsReorder {
		t.Fatal("single packet tagged")
	}
	inOrder := New(Config{Words: 6, InOrder: true}, nil)
	for _, p := range inOrder.Prepare(0, 1, 20).Packets {
		if p.Meta.Tag == node.TagNeedsReorder {
			t.Fatal("in-order transfer tagged")
		}
	}
}

func TestUniqueMsgIDs(t *testing.T) {
	l := New(Config{}, nil)
	a := l.Prepare(0, 1, 10)
	b := l.Prepare(2, 3, 10)
	if a.Packets[0].Meta.MsgID == b.Packets[0].Meta.MsgID {
		t.Fatal("message ids collide")
	}
}

func TestPacketsForProperty(t *testing.T) {
	f := func(words uint16, inOrder bool) bool {
		w := int(words%500) + 1
		c := Config{Words: 6, InOrder: inOrder}
		n := c.PacketsFor(w)
		per := c.Payload()
		return n*per >= w && (n-1)*per < w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndBlockTransfer(t *testing.T) {
	tree := fattree.New(fattree.Config{Levels: 2, Seed: 4})
	eng := sim.New()
	tree.RegisterRouters(eng)
	var ids packet.IDSource
	l := New(Config{Words: 6, InOrder: true}, &ids)
	var got []*packet.Packet
	want := l.Config().PacketsFor(60)
	var procs []*node.Proc
	for i := 0; i < 16; i++ {
		u := core.New(core.Config{Node: i, IDs: &ids, W: 4}, tree.Iface(i))
		eng.Register(u)
		var pr node.Program
		switch i {
		case 0:
			pr = func(p *node.Proc) { l.SendBlock(p, 9, 60, nil) }
		case 9:
			pr = func(p *node.Proc) {
				l.RecvBlocks(p, want, func(pk *packet.Packet) { got = append(got, pk) })
			}
		default:
			pr = func(p *node.Proc) {}
		}
		procs = append(procs, node.NewProc(i, u, node.CM5Costs(), pr))
		eng.Register(procs[i])
		procs[i].Start()
	}
	defer func() {
		for _, p := range procs {
			p.Stop()
		}
	}()
	done := func() bool { return procs[0].Done() && procs[9].Done() }
	if !eng.RunUntil(done, 500000) {
		t.Fatalf("transfer incomplete: %d/%d", len(got), want)
	}
	for i, p := range got {
		if p.Meta.Index != i {
			t.Fatalf("out of order at %d: %v", i, p)
		}
	}
}
