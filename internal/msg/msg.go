// Package msg is the software communication layer the workloads share — the
// piece the paper calls "the software communication layer" in §2.2. It
// decides how a block of payload words becomes packets:
//
//   - With in-order delivery guaranteed (a NIFDY NIC, or a single-path
//     fabric), the first packet of a block carries the setup information and
//     later packets are pure payload: Words-1 data words per packet, and no
//     software reordering at the receiver.
//   - Without it, every packet needs bookkeeping (sequence/offset) so the
//     receiver can reconstruct the transfer: Words-2 data words per packet,
//     plus the [KC94]-style software reorder cost on every receive
//     (node.TagNeedsReorder).
//
// The layer also implements §2.2's bulk-dialog convention: for transfers of
// at least BulkThreshold packets it sets the bulk-request bit on every
// packet except the last, whose missing bit tells the NIFDY unit to raise
// bulk-exit and close the dialog.
package msg

import (
	"nifdy/internal/node"
	"nifdy/internal/packet"
)

// Config parameterizes the layer.
type Config struct {
	// Words is the packet size in 32-bit words including header; zero
	// selects 6 (the CMAM/Split-C size).
	Words int
	// InOrder marks delivery as in-order: bigger payload, no reorder cost.
	InOrder bool
	// BulkThreshold is the minimum transfer length, in packets, that
	// requests a bulk dialog; zero selects 3; negative disables requests.
	BulkThreshold int
	// Class is the logical network for data; the zero value is Request.
	Class packet.Class
}

func (c *Config) defaults() {
	if c.Words == 0 {
		c.Words = 6
	}
	if c.BulkThreshold == 0 {
		c.BulkThreshold = 3
	}
}

// Payload reports data words carried per packet.
func (c Config) Payload() int {
	cc := c
	cc.defaults()
	if cc.InOrder {
		return cc.Words - 1
	}
	return cc.Words - 2
}

// PacketsFor reports the packets needed to move words payload words.
func (c Config) PacketsFor(words int) int {
	per := c.Payload()
	return (words + per - 1) / per
}

// Layer builds packets for blocks of data. One Layer is shared by all nodes
// of a simulation (the engine serializes node execution, so no locking).
type Layer struct {
	cfg    Config
	ids    *packet.IDSource
	msgSeq uint64
}

// New returns a Layer; a private ID source is used when ids is nil.
func New(cfg Config, ids *packet.IDSource) *Layer {
	cfg.defaults()
	if ids == nil {
		ids = &packet.IDSource{}
	}
	return &Layer{cfg: cfg, ids: ids}
}

// Config returns the layer's effective configuration.
func (l *Layer) Config() Config { return l.cfg }

// Block is a prepared transfer.
type Block struct {
	Packets []*packet.Packet
}

// Prepare builds the packets for a words-long block from src to dst.
func (l *Layer) Prepare(src, dst, words int) Block {
	l.msgSeq++
	n := l.cfg.PacketsFor(words)
	bulk := l.cfg.BulkThreshold > 0 && n >= l.cfg.BulkThreshold
	ps := make([]*packet.Packet, n)
	for i := 0; i < n; i++ {
		p := &packet.Packet{
			ID: l.ids.Next(), Src: src, Dst: dst, Words: l.cfg.Words,
			Class: l.cfg.Class, Dialog: packet.NoDialog,
			BulkReq: bulk && i < n-1,
			Meta:    packet.Meta{MsgID: l.msgSeq, Index: i, Total: n},
		}
		if !l.cfg.InOrder && n > 1 {
			p.Meta.Tag = node.TagNeedsReorder
		}
		ps[i] = p
	}
	return Block{Packets: ps}
}

// SendBlock sends a words-long block from p's node to dst, servicing
// arrivals between packets through sink (nil drops them). It returns the
// number of packets sent.
func (l *Layer) SendBlock(p *node.Proc, dst, words int, sink func(*packet.Packet)) int {
	b := l.Prepare(p.ID(), dst, words)
	for _, pk := range b.Packets {
		p.Send(pk)
		l.DrainInto(p, sink)
	}
	return len(b.Packets)
}

// DrainInto receives every currently pending packet into sink (nil drops).
func (l *Layer) DrainInto(p *node.Proc, sink func(*packet.Packet)) int {
	n := 0
	for p.HasPending() {
		pk := p.Recv()
		if sink != nil {
			sink(pk)
		}
		n++
	}
	return n
}

// RecvBlocks blocks until count more packets have been accepted, feeding
// them to sink (nil drops).
func (l *Layer) RecvBlocks(p *node.Proc, count int, sink func(*packet.Packet)) {
	for i := 0; i < count; i++ {
		pk := p.Recv()
		if sink != nil {
			sink(pk)
		}
	}
}
