package node

import (
	"testing"

	"nifdy/internal/core"
	"nifdy/internal/nic"
	"nifdy/internal/packet"
	"nifdy/internal/router"
	"nifdy/internal/sim"
	"nifdy/internal/topo"
	"nifdy/internal/topo/mesh"
)

// buildProcs wires a 4x4 mesh with NIFDY NICs and one Proc per node.
func buildProcs(t *testing.T, costs Costs, programs []Program) (*sim.Engine, []*Proc, topo.Network) {
	t.Helper()
	net := mesh.New(mesh.Config{Dims: []int{4, 4}})
	eng := sim.New()
	net.RegisterRouters(eng)
	var ids packet.IDSource
	procs := make([]*Proc, net.Nodes())
	for i := 0; i < net.Nodes(); i++ {
		u := core.New(core.Config{Node: i, IDs: &ids}, net.Iface(i))
		eng.Register(u)
		prog := programs[i%len(programs)]
		procs[i] = NewProc(i, u, costs, prog)
		eng.Register(procs[i])
		procs[i].Start()
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Stop()
		}
	})
	return eng, procs, net
}

func idle(p *Proc) {}

func allDone(procs []*Proc) func() bool {
	return func() bool {
		for _, p := range procs {
			if !p.Done() {
				return false
			}
		}
		return true
	}
}

func TestConsumeAdvancesTime(t *testing.T) {
	var finished sim.Cycle = -1
	progs := []Program{func(p *Proc) {
		p.Consume(100)
		finished = p.Now()
	}, idle}
	eng, procs, _ := buildProcs(t, CM5Costs(), progs)
	if !eng.RunUntil(allDone(procs), 1000) {
		t.Fatal("programs did not finish")
	}
	if finished < 100 || finished > 110 {
		t.Fatalf("Consume(100) finished at %d", finished)
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	var ids packet.IDSource
	var got *packet.Packet
	var recvAt sim.Cycle
	progs := make([]Program, 16)
	for i := range progs {
		progs[i] = idle
	}
	progs[0] = func(p *Proc) {
		pkt := &packet.Packet{ID: ids.Next(), Src: 0, Dst: 5, Words: 8,
			Dialog: packet.NoDialog, Class: packet.Request}
		p.Send(pkt)
	}
	progs[5] = func(p *Proc) {
		got = p.Recv()
		recvAt = p.Now()
	}
	net := mesh.New(mesh.Config{Dims: []int{4, 4}})
	eng := sim.New()
	net.RegisterRouters(eng)
	procs := make([]*Proc, 16)
	for i := 0; i < 16; i++ {
		u := core.New(core.Config{Node: i, IDs: &ids}, net.Iface(i))
		eng.Register(u)
		procs[i] = NewProc(i, u, CM5Costs(), progs[i])
		eng.Register(procs[i])
		procs[i].Start()
	}
	defer func() {
		for _, p := range procs {
			p.Stop()
		}
	}()
	if !eng.RunUntil(allDone(procs), 100000) {
		t.Fatal("round trip did not complete")
	}
	if got == nil || got.Src != 0 {
		t.Fatalf("got %v", got)
	}
	// T_send(40) + injection(32 cycles at cpf 4) + flight + poll/recv
	// overheads: one-way must exceed the send overhead alone and be well
	// under a thousand cycles on an idle 4x4 mesh.
	if recvAt < 70 || recvAt > 1000 {
		t.Fatalf("one-way completion at %d", recvAt)
	}
}

func TestPollCostsCycles(t *testing.T) {
	var polledAt sim.Cycle
	progs := []Program{func(p *Proc) {
		if _, ok := p.Poll(); ok {
			t.Error("poll hit on empty network")
		}
		polledAt = p.Now()
	}, idle}
	eng, procs, _ := buildProcs(t, CM5Costs(), progs)
	eng.RunUntil(allDone(procs), 1000)
	if polledAt < 22 {
		t.Fatalf("empty poll cost %d cycles, want >= 22", polledAt)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	b := NewBarrier(16)
	exits := make([]sim.Cycle, 16)
	progs := make([]Program, 16)
	for i := range progs {
		i := i
		progs[i] = func(p *Proc) {
			p.Consume(sim.Cycle(10 * (i + 1))) // staggered arrivals
			p.Barrier(b, nil)
			exits[i] = p.Now()
		}
	}
	net := mesh.New(mesh.Config{Dims: []int{4, 4}})
	eng := sim.New()
	net.RegisterRouters(eng)
	var ids packet.IDSource
	procs := make([]*Proc, 16)
	for i := 0; i < 16; i++ {
		u := core.New(core.Config{Node: i, IDs: &ids}, net.Iface(i))
		eng.Register(u)
		procs[i] = NewProc(i, u, CM5Costs(), progs[i])
		eng.Register(procs[i])
		procs[i].Start()
	}
	defer func() {
		for _, p := range procs {
			p.Stop()
		}
	}()
	if !eng.RunUntil(allDone(procs), 10000) {
		t.Fatal("barrier never released")
	}
	// No one may exit before the slowest arrival (160 cycles).
	for i, e := range exits {
		if e < 160 {
			t.Fatalf("node %d left the barrier at %d", i, e)
		}
		if e > 170 {
			t.Fatalf("node %d released late at %d", i, e)
		}
	}
}

func TestBarrierServicesArrivals(t *testing.T) {
	// Node 0 parks at a barrier while node 1 sends it packets; the barrier
	// handler must keep accepting so node 1 can finish and join.
	b := NewBarrier(2)
	var handled int
	progs := make([]Program, 16)
	for i := range progs {
		progs[i] = idle
	}
	var ids packet.IDSource
	atBarrier := 0
	progs[0] = func(p *Proc) {
		p.Barrier(b, func(*packet.Packet) { handled++ })
		for handled < 6 {
			if _, ok := p.Poll(); ok {
				handled++
			}
		}
	}
	progs[1] = func(p *Proc) {
		for k := 0; k < 6; k++ {
			// Pool of 2 with one scalar outstanding: the later sends block
			// until node 0 — parked at the barrier — accepts and acks.
			p.Send(&packet.Packet{ID: ids.Next(), Src: 1, Dst: 0, Words: 8,
				Dialog: packet.NoDialog, Class: packet.Request})
		}
		atBarrier = handled
		p.Barrier(b, nil)
	}
	net := mesh.New(mesh.Config{Dims: []int{4, 4}})
	eng := sim.New()
	net.RegisterRouters(eng)
	procs := make([]*Proc, 16)
	for i := 0; i < 16; i++ {
		u := core.New(core.Config{Node: i, B: 2, IDs: &ids}, net.Iface(i))
		eng.Register(u)
		var pr Program
		if i < 2 {
			pr = progs[i]
		} else {
			pr = idle
		}
		procs[i] = NewProc(i, u, CM5Costs(), pr)
		eng.Register(procs[i])
		procs[i].Start()
	}
	defer func() {
		for _, p := range procs {
			p.Stop()
		}
	}()
	done := func() bool { return procs[0].Done() && procs[1].Done() }
	if !eng.RunUntil(done, 200000) {
		t.Fatalf("barrier deadlocked (handled %d packets)", handled)
	}
	if handled != 6 {
		t.Fatalf("handled %d/6 packets", handled)
	}
	// With a pool of 2 and 1-outstanding scalar flow control, node 1 could
	// only finish its sends because the parked node 0 serviced arrivals.
	if atBarrier < 2 {
		t.Fatalf("node 0 handled only %d packets before node 1 reached the barrier", atBarrier)
	}
}

func TestStopUnblocksParkedProc(t *testing.T) {
	progs := []Program{func(p *Proc) {
		p.Recv() // never satisfied
		t.Error("Recv returned on an empty network")
	}, idle}
	eng, procs, _ := buildProcs(t, CM5Costs(), progs)
	eng.Run(500)
	procs[0].Stop()
	if !procs[0].Done() {
		t.Fatal("Stop did not finish the proc")
	}
	eng.Run(10) // must not panic or hang
}

func TestSendBackpressureStalls(t *testing.T) {
	// A NIFDY pool of 2 with an unresponsive receiver: the sender's third
	// Send must stall rather than drop.
	var sent []sim.Cycle
	var ids packet.IDSource
	prog0 := func(p *Proc) {
		for k := 0; k < 4; k++ {
			p.Send(&packet.Packet{ID: ids.Next(), Src: 0, Dst: 5, Words: 8,
				Dialog: packet.NoDialog, Class: packet.Request})
			sent = append(sent, p.Now())
		}
	}
	net := mesh.New(mesh.Config{Dims: []int{4, 4}})
	eng := sim.New()
	net.RegisterRouters(eng)
	procs := make([]*Proc, 16)
	for i := 0; i < 16; i++ {
		u := core.New(core.Config{Node: i, B: 2, IDs: &ids}, net.Iface(i))
		eng.Register(u)
		pr := idle
		if i == 0 {
			pr = prog0
		}
		procs[i] = NewProc(i, u, CM5Costs(), pr)
		eng.Register(procs[i])
		procs[i].Start()
	}
	defer func() {
		for _, p := range procs {
			p.Stop()
		}
	}()
	eng.Run(20000)
	// Node 5 never polls; only 1 packet can be outstanding and 2 pooled, so
	// the 4th Send must still be blocked.
	if procs[0].Done() {
		t.Fatalf("sender finished despite unresponsive receiver (sends at %v)", sent)
	}
	if len(sent) < 2 {
		t.Fatalf("only %d sends completed", len(sent))
	}
}

func TestCM5CostsValues(t *testing.T) {
	c := CM5Costs()
	if c.Send != 40 || c.Recv != 60 || c.Poll != 22 {
		t.Fatalf("CM5Costs = %+v", c)
	}
}

func TestReorderPenaltyApplied(t *testing.T) {
	// Two identical deliveries, one tagged as needing software reorder: the
	// tagged one must cost more receive time.
	recvTime := func(tag int) sim.Cycle {
		var ids packet.IDSource
		var dur sim.Cycle
		net := mesh.New(mesh.Config{Dims: []int{4, 4}})
		eng := sim.New()
		net.RegisterRouters(eng)
		procs := make([]*Proc, 16)
		for i := 0; i < 16; i++ {
			i := i
			u := core.New(core.Config{Node: i, IDs: &ids}, net.Iface(i))
			eng.Register(u)
			var pr Program
			switch i {
			case 0:
				pr = func(p *Proc) {
					pk := &packet.Packet{ID: ids.Next(), Src: 0, Dst: 1, Words: 8,
						Dialog: packet.NoDialog, Class: packet.Request}
					pk.Meta.Tag = tag
					p.Send(pk)
				}
			case 1:
				pr = func(p *Proc) {
					p.WaitUntil(func(sim.Cycle) bool { return p.NIC().Pending() > 0 })
					start := p.Now()
					p.Recv()
					dur = p.Now() - start
				}
			default:
				pr = idle
			}
			procs[i] = NewProc(i, u, CM5Costs(), pr)
			eng.Register(procs[i])
			procs[i].Start()
		}
		defer func() {
			for _, p := range procs {
				p.Stop()
			}
		}()
		eng.RunUntil(func() bool { return procs[1].Done() }, 100000)
		return dur
	}
	plain := recvTime(0)
	tagged := recvTime(TagNeedsReorder)
	if tagged <= plain {
		t.Fatalf("reorder penalty not applied: %d vs %d", tagged, plain)
	}
}

func TestProcsWithBasicNIC(t *testing.T) {
	// The Proc API must work over the baseline NICs too.
	var ids packet.IDSource
	net := mesh.New(mesh.Config{Dims: []int{4, 4}})
	eng := sim.New()
	net.RegisterRouters(eng)
	var got int
	procs := make([]*Proc, 16)
	for i := 0; i < 16; i++ {
		i := i
		b := nic.NewBasic(nic.BasicConfig{Node: i, OutBuf: 2, ArrBuf: 2}, net.Iface(i))
		eng.Register(b)
		var pr Program
		switch i {
		case 0:
			pr = func(p *Proc) {
				for k := 0; k < 5; k++ {
					p.Send(&packet.Packet{ID: ids.Next(), Src: 0, Dst: 9, Words: 8,
						Dialog: packet.NoDialog, Class: packet.Request})
				}
			}
		case 9:
			pr = func(p *Proc) {
				for got < 5 {
					if _, ok := p.Poll(); ok {
						got++
					}
				}
			}
		default:
			pr = idle
		}
		procs[i] = NewProc(i, b, CM5Costs(), pr)
		eng.Register(procs[i])
		procs[i].Start()
	}
	defer func() {
		for _, p := range procs {
			p.Stop()
		}
	}()
	if !eng.RunUntil(func() bool { return procs[9].Done() }, 200000) {
		t.Fatalf("basic NIC flow incomplete: got %d", got)
	}
}

var _ = router.NewChannel // keep import for potential helpers

func TestRecvOrStops(t *testing.T) {
	stop := false
	var gotPkt bool
	progs := []Program{func(p *Proc) {
		_, ok := p.RecvOr(func() bool { return stop })
		gotPkt = ok
	}, idle}
	eng, procs, _ := buildProcs(t, CM5Costs(), progs)
	eng.Run(200)
	if procs[0].Done() {
		t.Fatal("RecvOr returned early")
	}
	stop = true
	if !eng.RunUntil(func() bool { return procs[0].Done() }, 5000) {
		t.Fatal("RecvOr did not observe stop")
	}
	if gotPkt {
		t.Fatal("RecvOr claimed a packet on an empty network")
	}
}

func TestRecvOrReturnsPacket(t *testing.T) {
	var ids packet.IDSource
	var got *packet.Packet
	progs := make([]Program, 16)
	for i := range progs {
		progs[i] = idle
	}
	progs[0] = func(p *Proc) {
		p.Send(&packet.Packet{ID: ids.Next(), Src: 0, Dst: 1, Words: 8,
			Dialog: packet.NoDialog, Class: packet.Request})
	}
	progs[1] = func(p *Proc) {
		got, _ = p.RecvOr(func() bool { return false })
	}
	eng, procs, _ := buildProcs(t, CM5Costs(), progs)
	if !eng.RunUntil(func() bool { return procs[1].Done() }, 100000) {
		t.Fatal("RecvOr never got the packet")
	}
	if got == nil || got.Src != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestIDAndHasPending(t *testing.T) {
	progs := []Program{func(p *Proc) {
		if p.ID() != p.NIC().Node() {
			t.Errorf("ID %d != NIC node %d", p.ID(), p.NIC().Node())
		}
		if p.HasPending() {
			t.Error("HasPending on empty network")
		}
	}, idle}
	eng, procs, _ := buildProcs(t, CM5Costs(), progs)
	eng.RunUntil(allDone(procs), 1000)
}

func TestDoubleStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	net := mesh.New(mesh.Config{Dims: []int{4, 4}})
	var ids packet.IDSource
	u := core.New(core.Config{Node: 0, IDs: &ids}, net.Iface(0))
	p := NewProc(0, u, CM5Costs(), idle)
	p.Start()
	defer p.Stop()
	p.Start()
}
