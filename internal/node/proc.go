// Package node models the processors attached to the network: software
// send/receive overheads measured on the CM-5 (Table 2, §2.4.3) and a
// blocking, goroutine-per-node programming interface in which workloads read
// like the Split-C/CMAM programs that drove the paper's simulator.
//
// Each processor's program runs in its own goroutine and interacts with the
// simulation through blocking primitives (Send, Recv, Consume, Barrier). The
// goroutine and the engine alternate via a synchronous rendezvous: at most
// one program runs at any instant, so workload code may freely touch shared
// workload state without locks. Reception is by polling only, as in the
// paper (§3: "only polling message reception is allowed").
package node

import (
	"fmt"
	"sync"

	"nifdy/internal/nic"
	"nifdy/internal/packet"
	"nifdy/internal/ring"
	"nifdy/internal/sim"
)

// Costs models per-operation software overhead in processor cycles. The
// defaults follow §2.4.3 and Table 2 (the CM-5 measurements; a couple of
// Table 2 cells are illegible in the source scan, so the working values the
// paper itself uses in its analysis are taken instead).
type Costs struct {
	// Send is the total software cost of sending a packet (T_send).
	Send sim.Cycle
	// Recv is the cost of dispatching, handling, and returning from a
	// received packet (T_receive).
	Recv sim.Cycle
	// Poll is the cost of polling when no message is pending.
	Poll sim.Cycle
	// ReorderPenalty is the extra per-packet receive cost when the software
	// layer must reconstruct transmission order itself (no in-order
	// delivery). [KC94] measured reordering at up to 30% of transfer time;
	// the penalty applies to multi-packet transfers on out-of-order fabrics.
	ReorderPenalty sim.Cycle
}

// CM5Costs returns the paper's calibration: T_send=40, T_receive=60,
// poll(empty)=22 (§2.4.3, Table 2), with a default reorder penalty of 30%
// of the receive cost per [KC94].
func CM5Costs() Costs {
	return Costs{Send: 40, Recv: 60, Poll: 22, ReorderPenalty: 18}
}

// Barrier is an idealized global barrier (the simulator feature of §3:
// "global barriers can be included between send bursts").
//
// Participants may live in different engine shards, so arrival bookkeeping
// is mutex-protected, and the release itself is deferred to the engine's
// tick/flush boundary (Engine.AtBarrier), where no shard is ticking: every
// participant — including the last arriver — resumes at the next cycle,
// making the release instant independent of tick order and so identical for
// any shard count. gen is read without the lock in the wait loops; that is
// race-free because it is only written at the barrier drain, which the
// engine's phase barriers order against every tick.
type Barrier struct {
	n       int
	mu      sync.Mutex
	arrived int
	gen     uint64
	// waiters are the activities of processors parked at the barrier; the
	// release wakes them all.
	waiters []*sim.Activity

	// Distributed mode (SetDistributed): arrivals are only counted, never
	// complete the barrier locally — participants are spread across worker
	// processes, each reporting its arrival delta per window (TakeArrivals)
	// so all workers observe the global count reach n at the same boundary
	// and release in lockstep (CompleteAt). reported tracks the arrivals
	// already included in a delta.
	dist     bool
	reported int
}

// barrierObs, when set, observes every NewBarrier call — the distributed
// transport's registration hook, giving barriers deterministic creation-
// order identities shared by all worker processes. Only worker processes
// (one simulation per process, built single-threaded) set it.
var barrierObs func(*Barrier)

// SetBarrierObserver installs f to be called with every subsequently created
// Barrier, or removes the observer when f is nil. Used by the distributed
// runner; the observer must be installed before the simulation is built and
// barriers must be created in the same order in every worker process.
func SetBarrierObserver(f func(*Barrier)) { barrierObs = f }

// NewBarrier returns a barrier for n participants.
func NewBarrier(n int) *Barrier {
	b := &Barrier{n: n}
	if barrierObs != nil {
		barrierObs(b)
	}
	return b
}

// SetDistributed switches the barrier to distributed completion: local
// arrivals accumulate for TakeArrivals and never trigger a local release;
// the transport calls CompleteAt when the global count reaches n.
func (b *Barrier) SetDistributed() { b.dist = true }

// Participants reports n, the barrier's total (global) participant count.
func (b *Barrier) Participants() int { return b.n }

// TakeArrivals reports the number of local arrivals since the previous call
// — the per-window delta a distributed worker shares with its peers. Called
// at window boundaries, when no shard is ticking.
func (b *Barrier) TakeArrivals() int {
	b.mu.Lock()
	d := b.arrived - b.reported
	b.reported = b.arrived
	b.mu.Unlock()
	return d
}

// CompleteAt performs a distributed release: resets the arrival count and
// wakes every parked waiter at now+1. The transport calls it at the window
// boundary equal to the release's lattice point with now = boundary-1, so
// waiters resume exactly when an in-process barrier's deferred release would
// have woken them.
func (b *Barrier) CompleteAt(now sim.Cycle) {
	b.mu.Lock()
	b.arrived = 0
	b.reported = 0
	b.mu.Unlock()
	b.release(now)
}

// release is the deferred completion: bump the generation and schedule every
// parked participant for the next cycle. Runs at the tick/flush boundary.
func (b *Barrier) release(now sim.Cycle) {
	b.mu.Lock()
	b.gen++
	for _, a := range b.waiters {
		a.WakeAt(now + 1)
	}
	b.waiters = b.waiters[:0]
	b.mu.Unlock()
}

type abortSentinel struct{}

// Program is a node's application code.
type Program func(p *Proc)

// Proc is one simulated processor.
type Proc struct {
	id    int
	nic   nic.NIC
	costs Costs

	busyUntil sim.Cycle
	now       sim.Cycle
	cond      func(sim.Cycle) bool
	done      bool
	aborted   bool
	started   bool

	// act is the quiescence latch; timed/sleepUntil describe the current
	// pause. Pure-time pauses (Consume) sleep the processor: they are
	// satisfied by the clock alone, so waking exactly at sleepUntil is
	// indistinguishable from polling every cycle. Barrier waits park (parked)
	// with two wake edges covering their condition — the last barrier arrival
	// wakes every waiter, and the NIC wakes its processor when a packet
	// becomes pollable — so they too sleep. Other condition pauses (WaitUntil,
	// and the backpressure retry in Send — the §4.5 swamping mechanism, which
	// must keep servicing arrivals every cycle) depend on state with no wake
	// edge and are re-evaluated every cycle.
	act        sim.Activity
	timed      bool
	parked     bool
	sleepUntil sim.Cycle

	resume chan sim.Cycle
	yield  chan struct{}

	// inbox holds packets whose receive handlers already ran (and were
	// charged) while a send was stalled; Poll serves them first, free.
	inbox ring.Deque[*packet.Packet]

	program Program

	// eng/shard are set by the engine at registration (sim.Binder); Barrier
	// uses them to defer its release to the engine's tick/flush boundary.
	eng   *sim.Engine
	shard int
}

// NewProc returns a processor running program on n's NIC. Call Start before
// the first engine cycle and Stop when the experiment ends.
func NewProc(id int, n nic.NIC, costs Costs, program Program) *Proc {
	p := &Proc{
		id: id, nic: n, costs: costs, program: program,
		resume: make(chan sim.Cycle),
		yield:  make(chan struct{}),
	}
	// A freshly pollable packet re-runs a processor parked at a barrier.
	n.ObserveDelivery(&p.act)
	return p
}

// ID reports the node number.
func (p *Proc) ID() int { return p.id }

// NIC returns the processor's network interface.
func (p *Proc) NIC() nic.NIC { return p.nic }

// Done reports whether the program has finished.
func (p *Proc) Done() bool { return p.done }

// Start launches the program goroutine (blocked until the first Tick).
func (p *Proc) Start() {
	if p.started {
		panic(fmt.Sprintf("proc %d: double Start", p.id))
	}
	p.started = true
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSentinel); !ok {
					panic(r)
				}
			}
			p.done = true
			p.yield <- struct{}{}
		}()
		p.now = <-p.resume
		if p.now < 0 {
			panic(abortSentinel{})
		}
		p.program(p)
	}()
}

// Stop aborts the program goroutine if it is still blocked. Safe to call
// after completion.
func (p *Proc) Stop() {
	if !p.started || p.done {
		return
	}
	p.aborted = true
	p.resume <- -1
	<-p.yield
}

// Activity implements sim.IdleTicker: the processor sleeps through a pure
// compute pause and permanently once its program completes.
func (p *Proc) Activity() *sim.Activity { return &p.act }

// BindEngine implements sim.Binder: the engine records where the processor
// ticks so Barrier can stage cross-shard releases.
func (p *Proc) BindEngine(e *sim.Engine, sh int) {
	p.eng = e
	p.shard = sh
}

// ready reports whether the program's blocking condition is satisfied. Timed
// pauses compare the clock directly (no closure); other pauses evaluate their
// condition, and no condition at all means runnable.
func (p *Proc) ready(now sim.Cycle) bool {
	if p.timed {
		return now >= p.sleepUntil
	}
	return p.cond == nil || p.cond(now)
}

// Tick implements sim.Ticker: run the program while its blocking condition
// is satisfied.
func (p *Proc) Tick(now sim.Cycle) {
	if !p.started {
		return
	}
	for !p.done && p.ready(now) {
		p.cond = nil
		p.timed = false
		p.parked = false
		p.resume <- now
		<-p.yield
	}
	switch {
	case p.done:
		p.act.Sleep(sim.Never)
	case p.timed:
		p.act.Sleep(p.sleepUntil)
	case p.parked:
		// Barrier wait: the release and delivery wake edges re-arm us.
		p.act.Sleep(sim.Never)
	}
}

// pause blocks the program until cond holds. cond is evaluated by the
// engine at the start of each cycle.
func (p *Proc) pause(cond func(sim.Cycle) bool) {
	p.cond = cond
	p.yield <- struct{}{}
	p.now = <-p.resume
	if p.now < 0 {
		panic(abortSentinel{})
	}
}

// pauseUntil blocks the program until cycle t, marking the pause as purely
// time-driven so the scheduler may skip the intervening cycles. The deadline
// lives in sleepUntil and is checked by ready — a closure here would allocate
// on every Consume, i.e. on every modeled software overhead.
func (p *Proc) pauseUntil(t sim.Cycle) {
	p.timed = true
	p.sleepUntil = t
	p.pause(nil)
}

// Now reports the current simulated cycle.
func (p *Proc) Now() sim.Cycle { return p.now }

// Alloc returns a fresh packet from the node's free-list. Workloads that
// also Free retired deliveries run an allocation-free steady state; Alloc is
// always safe even if the program never frees anything.
func (p *Proc) Alloc() *packet.Packet { return p.nic.Pool().Get() }

// Free retires a packet back to the node's free-list. Only call it when the
// program holds the last live reference — i.e. on packets returned by
// Poll/Recv that the workload is completely done with, never on packets it
// has handed to Send or retained in its own data structures.
func (p *Proc) Free(pkt *packet.Packet) { p.nic.Pool().Put(pkt) }

// Consume models n cycles of local computation.
func (p *Proc) Consume(n sim.Cycle) {
	if p.busyUntil < p.now {
		p.busyUntil = p.now
	}
	p.busyUntil += n
	p.pauseUntil(p.busyUntil)
}

// WaitUntil blocks without consuming cycles until pred holds (used for
// idealized synchronization, not for modeled software).
func (p *Proc) WaitUntil(pred func(sim.Cycle) bool) {
	p.pause(pred)
}

// Send hands pkt to the NIC, charging the software send overhead and
// stalling while the NIC applies backpressure. As in the CM-5 message
// layers, a stalled sender keeps polling the network to avoid deadlock, so
// incoming packets' handlers run — and are charged — before the send
// completes. That is exactly the swamping mechanism of §4.5: a flood of
// arrivals can keep a processor "continually receiving with no chance to
// send".
func (p *Proc) Send(pkt *packet.Packet) {
	// CMAM-style: every send first services pending arrivals. This is what
	// lets a faster upstream sender starve a pipeline stage — each time the
	// stage tries to send, another arrival's handler runs first — and what
	// the "with delay" variant of Figure 9 works around in software.
	for {
		q, ok := p.nic.Recv(p.now)
		if !ok {
			break
		}
		p.chargeRecv(q)
		p.inbox.PushBack(q)
	}
	p.Consume(p.costs.Send)
	for !p.nic.TrySend(p.now, pkt) {
		if q, ok := p.nic.Recv(p.now); ok {
			p.chargeRecv(q)
			p.inbox.PushBack(q)
			continue
		}
		p.Consume(1) // stall a cycle and retry: NIC backpressure
	}
}

func (p *Proc) chargeRecv(pkt *packet.Packet) {
	c := p.costs.Recv
	if pkt.Meta.Tag == TagNeedsReorder {
		c += p.costs.ReorderPenalty
	}
	p.Consume(c)
}

// Poll makes one reception attempt: on a hit it charges the receive
// overhead and returns the packet; on a miss it charges the poll cost.
// Packets whose handlers already ran during a stalled send return first,
// free.
func (p *Proc) Poll() (*packet.Packet, bool) {
	if pkt, ok := p.inbox.PopFront(); ok {
		return pkt, true
	}
	if pkt, ok := p.nic.Recv(p.now); ok {
		p.chargeRecv(pkt)
		return pkt, true
	}
	p.Consume(p.costs.Poll)
	return nil, false
}

// TagNeedsReorder marks packets whose receive handler performs software
// reordering/bookkeeping (set by the message layer on out-of-order fabrics).
const TagNeedsReorder = 1

// AuditInbox visits every packet parked in the processor's inbox (handled
// during a stalled send, not yet returned by Poll). Used by the invariant
// monitors' whole-packet census; call only at quiescent points.
func (p *Proc) AuditInbox(f func(*packet.Packet)) {
	p.inbox.ForEach(f)
}

// HasPending reports whether a packet is ready for the processor, either
// already handled into the inbox or waiting at the NIC.
func (p *Proc) HasPending() bool {
	return p.inbox.Len() > 0 || p.nic.Pending() > 0
}

// Recv polls until a packet arrives.
func (p *Proc) Recv() *packet.Packet {
	for {
		if pkt, ok := p.Poll(); ok {
			return pkt
		}
	}
}

// RecvOr polls until a packet arrives or stop returns true; it returns
// (nil, false) in the latter case.
func (p *Proc) RecvOr(stop func() bool) (*packet.Packet, bool) {
	for {
		if stop() {
			return nil, false
		}
		if pkt, ok := p.Poll(); ok {
			return pkt, true
		}
	}
}

// Barrier joins b, servicing arrivals with handler (which may be nil to
// drop them) while waiting — a node parked at a barrier must keep pulling
// packets or it would wedge every sender targeting it.
func (p *Proc) Barrier(b *Barrier, handler func(*packet.Packet)) {
	b.mu.Lock()
	b.arrived++
	gen := b.gen
	last := !b.dist && b.arrived == b.n
	if last {
		b.arrived = 0
		if p.eng == nil {
			// Unbound (manually ticked, single-goroutine) fallback: release
			// immediately; this arriver's loop condition is already false.
			b.gen++
			for _, a := range b.waiters {
				a.Wake()
			}
			b.waiters = b.waiters[:0]
		}
	}
	b.mu.Unlock()
	if last && p.eng != nil {
		// Engine-driven release: runs at the tick/flush boundary, when no
		// shard is ticking, so waking parked participants in other shards is
		// race-free, and everyone (this arriver included) resumes at the
		// next cycle regardless of tick order within this cycle.
		p.eng.AtBarrier(p.shard, p.now, b.release)
	}
	for b.gen == gen {
		if pkt, ok := p.inbox.PopFront(); ok {
			if handler != nil {
				handler(pkt)
			}
			continue
		}
		if pkt, ok := p.nic.Recv(p.now); ok {
			p.chargeRecv(pkt)
			if handler != nil {
				handler(pkt)
			}
			continue
		}
		// Park rather than poll: both ways the condition can turn true have
		// wake edges — the deferred release wakes every waiter, and the NIC's
		// delivery observer fires when a packet becomes pollable. The NIC
		// ticks before its processor, so a same-cycle delivery still resumes
		// us this cycle, exactly as polling would.
		b.mu.Lock()
		b.waiters = append(b.waiters, &p.act)
		b.mu.Unlock()
		p.parked = true
		p.pause(func(now sim.Cycle) bool { return b.gen != gen || p.nic.Pending() > 0 })
	}
}
