#!/bin/sh
# benchdiff.sh OLD.json NEW.json — compare two BENCH_<date>.json baselines
# (written by `nifdy-bench -json` / `make baseline`).
#
# Prints per-experiment wall-clock deltas and exits nonzero if any experiment
# present in both files regressed by more than 10% ns/op. Experiments that
# exist in only one file are listed but never fail the comparison, and
# experiments shorter than MIN_MS (default 100 ms) in the old baseline are
# noise-dominated smoke runs: their deltas are printed but never fail.
set -eu

if [ $# -ne 2 ]; then
    echo "usage: $0 OLD.json NEW.json" >&2
    exit 2
fi
old=$1
new=$2
for f in "$old" "$new"; do
    if [ ! -r "$f" ]; then
        echo "benchdiff: cannot read $f" >&2
        exit 2
    fi
done

# threshold: fail when new > old * (1 + REGRESS_PCT/100), for experiments
# whose old wall clock is at least MIN_MS milliseconds
REGRESS_PCT=${REGRESS_PCT:-10}
MIN_MS=${MIN_MS:-100}

jq -r -n --slurpfile old "$old" --slurpfile new "$new" --argjson pct "$REGRESS_PCT" --argjson minms "$MIN_MS" '
  ($old[0].experiments | map({key: .name, value: .ns_per_op}) | from_entries) as $o |
  ($new[0].experiments | map({key: .name, value: .ns_per_op}) | from_entries) as $n |
  (($o | keys) + ($n | keys) | unique) as $names |
  ($names | map(select($o[.] != null and $n[.] != null and $o[.] >= $minms*1e6 and $n[.] > $o[.] * (1 + $pct/100)))) as $bad |
  (
    "experiment       old(s)     new(s)    delta",
    ($names[] |
      if $o[.] == null then "\(.)  (only in new)"
      elif $n[.] == null then "\(.)  (only in old)"
      else
        . as $name | ($o[.]/1e9) as $os | ($n[.]/1e9) as $ns |
        "\(.)\(" " * (17 - (.|length)))\($os*100|round/100)\(" " * (11 - (($os*100|round/100)|tostring|length)))\($ns*100|round/100)\(" " * (10 - (($ns*100|round/100)|tostring|length)))\(($ns/$os - 1)*100|round)%" +
        (if ($bad | index($name)) != null then "  REGRESSION" else "" end)
      end),
    "",
    (if ($bad | length) > 0 then
      "FAIL: \($bad | length) experiment(s) regressed more than \($pct)% ns/op: \($bad | join(", "))"
    else
      "OK: no experiment regressed more than \($pct)% ns/op"
    end)
  )
' || exit 2

bad=$(jq -r -n --slurpfile old "$old" --slurpfile new "$new" --argjson pct "$REGRESS_PCT" --argjson minms "$MIN_MS" '
  ($old[0].experiments | map({key: .name, value: .ns_per_op}) | from_entries) as $o |
  ($new[0].experiments | map({key: .name, value: .ns_per_op}) | from_entries) as $n |
  [($o | keys)[] | select($n[.] != null and $o[.] >= $minms*1e6 and $n[.] > $o[.] * (1 + $pct/100))] | length
')
[ "$bad" -eq 0 ]
