#!/bin/sh
# profdiff.sh OLD.prof NEW.prof [N] — compare two CPU profiles function by
# function.
#
# Prints a table of the top N (default 15) functions by absolute flat-cost
# change between two pprof profiles of the same workload (e.g.
# `go test -bench BenchmarkFigure2Heavy -cpuprofile f2.prof` before and
# after an optimization). Positive deltas are functions that got more
# expensive, negative ones cheaper; functions present in only one profile
# show the full cost as the delta. Flat percentages are of each profile's
# own total, so the table is meaningful even when total wall clock changed —
# that shift is printed separately.
#
# Uses only `go tool pprof -top`, so it works wherever the go toolchain does.
set -eu

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
    echo "usage: $0 OLD.prof NEW.prof [N]" >&2
    exit 2
fi
old=$1
new=$2
n=${3:-15}
for f in "$old" "$new"; do
    if [ ! -r "$f" ]; then
        echo "profdiff: cannot read $f" >&2
        exit 2
    fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# -top lines: "  flat  flat%  sum%  cum  cum%  name". Units vary (ms/s), so
# normalize to milliseconds keyed by function name.
top() {
    go tool pprof -top -nodecount 100000 -unit ms "$1" 2>/dev/null |
        awk '/^ *[0-9.]+ms/ {
            flat = $1; sub(/ms$/, "", flat)
            name = $6; for (i = 7; i <= NF; i++) name = name " " $i
            print flat "\t" name
        }'
}
top "$old" > "$tmp/old.tsv"
top "$new" > "$tmp/new.tsv"
for f in old new; do
    if [ ! -s "$tmp/$f.tsv" ]; then
        echo "profdiff: no samples parsed from $(eval echo \$$f) (is it a CPU profile?)" >&2
        exit 2
    fi
done

awk -F'\t' -v n="$n" '
    FNR == 1 { file++ }
    file == 1 { o[$2] = $1; ototal += $1; next }
    { nn[$2] = $1; ntotal += $1 }
    END {
        for (k in o) seen[k] = 1
        for (k in nn) seen[k] = 1
        i = 0
        for (k in seen) {
            d = (k in nn ? nn[k] : 0) - (k in o ? o[k] : 0)
            keys[i] = k; delta[i] = d; i++
        }
        # selection sort by |delta|: n is small and portable awk has no sort
        for (a = 0; a < i && a < n; a++) {
            best = a
            for (b = a + 1; b < i; b++) {
                da = delta[best] < 0 ? -delta[best] : delta[best]
                db = delta[b] < 0 ? -delta[b] : delta[b]
                if (db > da) best = b
            }
            t = keys[a]; keys[a] = keys[best]; keys[best] = t
            t = delta[a]; delta[a] = delta[best]; delta[best] = t
        }
        printf "%12s %12s %12s  %s\n", "old(ms)", "new(ms)", "delta(ms)", "function"
        for (a = 0; a < i && a < n; a++) {
            k = keys[a]
            printf "%12.0f %12.0f %+12.0f  %s\n", (k in o ? o[k] : 0), (k in nn ? nn[k] : 0), delta[a], k
        }
        printf "\ntotal flat: %.0fms -> %.0fms (%+.1f%%)\n", ototal, ntotal, (ntotal/ototal - 1) * 100
    }
' "$tmp/old.tsv" "$tmp/new.tsv"
