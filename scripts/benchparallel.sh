#!/bin/sh
# benchparallel.sh [SHARDS] [WINDOW] — measure the intra-simulation
# parallel speedup.
#
# Runs the Figure 2 heavy-traffic experiment twice through nifdy-bench: once
# serial (-shards 1) and once sharded (-shards SHARDS, default
# min(GOMAXPROCS, nodes) via -shards 0), then compares wall clock. Exits
# nonzero if the multi-shard run is slower than serial — sharding must never
# be a pessimization on a multi-core host.
#
# Both legs run with the same conservative sync window (default W=4, the
# regime where the sharded engine's barrier fires once per window instead
# of per tick). W is a model parameter, so the two legs still simulate the
# identical model — only the shard count, and thus the wall clock, differs.
#
# On a single-core host the wall-clock comparison is meaningless (both runs
# serialize on one CPU and the sharded run only pays synchronization
# overhead), so both legs still run — the sharded engine must work
# everywhere — but the speedup is recorded as "untested(1cpu)" instead of
# asserted. Set BENCH_OUT to keep the sharded leg's JSON, annotated with the
# speedup field, so baselines record whether the ratio was ever measured.
set -eu

shards=${1:-0}
window=${2:-4}
ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
case $ncpu in *[!0-9]*|'') ncpu=1 ;; esac

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "benchparallel: serial run (-shards 1 -window $window)..."
go run ./cmd/nifdy-bench -exp f2 -shards 1 -window "$window" -json "$tmp/serial.json" > /dev/null
echo "benchparallel: sharded run (-shards $shards -window $window)..."
go run ./cmd/nifdy-bench -exp f2 -shards "$shards" -window "$window" -json "$tmp/sharded.json" > /dev/null

# Annotate the sharded leg's JSON with the measured (or untested) speedup.
jq -n --slurpfile s "$tmp/serial.json" --slurpfile p "$tmp/sharded.json" --argjson ncpu "$ncpu" '
  ($s[0].experiments | map(select(.name == "f2")) | .[0].ns_per_op) as $serial |
  ($p[0].experiments | map(select(.name == "f2")) | .[0].ns_per_op) as $sharded |
  $p[0] + {speedup: (if $ncpu < 2 then "untested(1cpu)"
                     else ($serial/$sharded * 100 | round / 100) end)}
' > "$tmp/annotated.json"
if [ -n "${BENCH_OUT:-}" ]; then
    cp "$tmp/annotated.json" "$BENCH_OUT"
fi

jq -r -n --slurpfile s "$tmp/serial.json" --slurpfile a "$tmp/annotated.json" --argjson ncpu "$ncpu" '
  ($s[0].experiments | map(select(.name == "f2")) | .[0].ns_per_op) as $serial |
  ($a[0].experiments | map(select(.name == "f2")) | .[0].ns_per_op) as $sharded |
  ($a[0].shards) as $n | ($a[0].gomaxprocs) as $procs | ($a[0].numcpu) as $cpus |
  "f2 serial:  \($serial/1e9 * 100 | round / 100)s",
  "f2 shards=\($n) (GOMAXPROCS=\($procs), NumCPU=\($cpus)): \($sharded/1e9 * 100 | round / 100)s",
  "speedup: \($a[0].speedup)",
  (if $ncpu < 2 then
    "benchparallel: only \($ncpu) CPU available; speedup recorded as untested, not asserted"
  elif $sharded > $serial then
    "FAIL: multi-shard run is slower than serial" | halt_error(1)
  else empty end)
'
