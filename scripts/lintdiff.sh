#!/bin/sh
# lintdiff.sh [base] — audit the diff against base for new unexplained lint
# suppressions.
#
# A //lint:allow(rule) comment silences a nifdy-lint finding; the contract
# (DESIGN.md §7) is that every allow carries a reason explaining why the
# exception is sound. nifdy-lint itself flags reasonless allows anywhere in
# the tree; this script is the review-time companion: it fails if the diff
# being proposed ADDS an allow whose reason is missing, so a reviewer sees
# the violation on the PR that introduces it rather than on a later full run.
#
# Base defaults to origin/main when that ref exists, else HEAD~1 (useful on
# shallow CI clones and local pre-push hooks alike).
set -eu

cd "$(dirname "$0")/.."

BASE=${1:-}
if [ -z "$BASE" ]; then
    if git rev-parse --verify -q origin/main >/dev/null 2>&1; then
        BASE=origin/main
    else
        BASE=HEAD~1
    fi
fi

# Added lines only, with their file names; testdata is excluded (the lint
# golden fixtures seed reasonless allows on purpose). The allow grammar is
#   //lint:allow(rule[,rule...]) reason
# so an added allow line whose text ends at the closing parenthesis (modulo
# trailing whitespace) has no reason.
bad=$(git diff "$BASE" --unified=0 -- '*.go' ':(exclude)*testdata*' \
    | awk '
        /^\+\+\+ b\// { file = substr($0, 7) }
        /^\+/ && !/^\+\+\+/ {
            line = substr($0, 2)
            if (match(line, /\/\/lint:allow\([a-zA-Z0-9_,-]+\)/)) {
                rest = substr(line, RSTART + RLENGTH)
                gsub(/[ \t]+$/, "", rest)
                if (rest == "") {
                    printf "%s: %s\n", file, line
                }
            }
        }
    ')

if [ -n "$bad" ]; then
    echo "lintdiff: diff vs $BASE adds //lint:allow suppressions without a reason:" >&2
    echo "$bad" >&2
    echo "lintdiff: every allow must explain its exception: //lint:allow(rule) why this is sound" >&2
    exit 1
fi

echo "lintdiff: no unexplained suppressions added vs $BASE"
