#!/bin/sh
# benchlocality.sh — gate the structure-of-arrays flit core (DESIGN.md §10).
#
# Two assertions:
#
#   1. Active-set scheduling is sub-linear in total component count: the
#      engine's BenchmarkIdleFraction steps a fixed 64-component active
#      region inside total populations 64x apart (1k vs 64k components).
#      Linear scheduling would cost ~64x more per step; the gate requires
#      the ratio to stay under RATIO_MAX (default 8, far below linear and
#      generous to host noise).
#
#   2. The hot path got faster, not just different: BenchmarkFigure2Heavy
#      wall clock must beat the committed pre-SoA baseline
#      (BENCH_2026-08-06_zeroalloc.json, f2 = 47.95s) by at least 20%,
#      enforced through benchdiff.sh with a negative regression threshold
#      (REGRESS_PCT=-20 turns the regression check into a speedup floor).
#
# Set BENCH_OUT to keep the measured f2 run as a committable BENCH JSON.
set -eu

cd "$(dirname "$0")/.."

baseline=${BASELINE:-BENCH_2026-08-06_zeroalloc.json}
ratio_max=${RATIO_MAX:-8}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "benchlocality: active-set sub-linearity (BenchmarkIdleFraction)..."
go test -run xxx -bench BenchmarkIdleFraction -benchtime 2s ./internal/sim > "$tmp/idle.txt"
small=$(awk '/BenchmarkIdleFraction\/total=1024/  {print $3}' "$tmp/idle.txt")
large=$(awk '/BenchmarkIdleFraction\/total=65536/ {print $3}' "$tmp/idle.txt")
if [ -z "$small" ] || [ -z "$large" ]; then
    echo "benchlocality: could not parse BenchmarkIdleFraction output:" >&2
    cat "$tmp/idle.txt" >&2
    exit 2
fi
ratio=$(awk -v s="$small" -v l="$large" 'BEGIN{printf "%.2f", l/s}')
echo "  total=1024:  $small ns/op"
echo "  total=65536: $large ns/op  (ratio ${ratio}x for 64x the components, max ${ratio_max}x)"
awk -v r="$ratio" -v m="$ratio_max" 'BEGIN{exit !(r <= m)}' || {
    echo "FAIL: idle-fraction step cost grew ${ratio}x for 64x the components (limit ${ratio_max}x): scheduling is not sub-linear" >&2
    exit 1
}

echo "benchlocality: Figure 2 heavy traffic vs pre-SoA baseline ($baseline)..."
go test -run xxx -bench BenchmarkFigure2Heavy -benchtime 1x -timeout 1800s . > "$tmp/f2.txt"
f2ns=$(awk '/^BenchmarkFigure2Heavy/ {print $3}' "$tmp/f2.txt")
if [ -z "$f2ns" ]; then
    echo "benchlocality: could not parse BenchmarkFigure2Heavy output:" >&2
    cat "$tmp/f2.txt" >&2
    exit 2
fi
jq -n --argjson ns "$f2ns" \
    --arg date "$(date -u +%F)" --arg gover "$(go env GOVERSION)" --arg arch "$(go env GOARCH)" '
  {date: $date, go_version: $gover, goarch: $arch, full: false,
   note: "benchlocality.sh: SoA arena + active-set scheduling gate run",
   experiments: [{name: "f2", ns_per_op: $ns}]}
' > "$tmp/f2.json"
if [ -n "${BENCH_OUT:-}" ]; then
    cp "$tmp/f2.json" "$BENCH_OUT"
fi

# A negative threshold flips benchdiff's regression check into a speedup
# floor: the new f2 must be at least 20% below the old baseline's ns/op.
REGRESS_PCT=${REGRESS_PCT:--20} ./scripts/benchdiff.sh "$baseline" "$tmp/f2.json" || {
    echo "FAIL: Figure2Heavy did not beat the pre-SoA baseline by the required margin" >&2
    exit 1
}
echo "benchlocality: OK"
