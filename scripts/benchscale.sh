#!/bin/sh
# benchscale.sh [FLOOR] — 100k-node flow-engine scaling smoke.
#
# Runs the scale experiment (cycle-accurate 64-node baseline, 4096-node
# hybrid, 102,400-node flow fabric) twice through nifdy-bench with the same
# seed and checks three things:
#   - determinism: the two flow runs must deliver identical packet counts
#     (the flow solver is part of the bit-identical contract);
#   - throughput: the flow run must clear FLOOR simulated node-cycles per
#     wall second (default 10,000,000 — far under a healthy run, so only a
#     gross regression or an accidental cycle-by-cycle fallback trips it);
#   - report: the flow/flit fidelity speedup, for the scale table in README.
set -eu

floor=${1:-10000000}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "benchscale: scale run 1..."
go run ./cmd/nifdy-bench -exp scale -json "$tmp/a.json" > /dev/null
echo "benchscale: scale run 2 (determinism check)..."
go run ./cmd/nifdy-bench -exp scale -json "$tmp/b.json" > /dev/null

jq -r -n --slurpfile a "$tmp/a.json" --slurpfile b "$tmp/b.json" --argjson floor "$floor" '
  def row(f; m): f[0].experiments | map(select(.name == "scale" and .mode == m)) | .[0].metrics[0];
  row($a; "flow") as $fa | row($b; "flow") as $fb | row($a; "flit") as $ft |
  "flow \($fa.nodes) nodes: \($fa.node_cycles_per_sec | round) node-cyc/s " +
    "(flit baseline \($ft.node_cycles_per_sec | round))",
  "fidelity speedup: \($fa.node_cycles_per_sec / $ft.node_cycles_per_sec * 10 | round / 10)x",
  (if $fa.delivered_packets != $fb.delivered_packets then
     "FAIL: flow run not deterministic (\($fa.delivered_packets) vs \($fb.delivered_packets) delivered)"
       | halt_error(1)
   else "determinism: \($fa.delivered_packets) packets delivered in both runs" end),
  (if $fa.node_cycles_per_sec < $floor then
     "FAIL: flow throughput \($fa.node_cycles_per_sec | round) below floor \($floor)"
       | halt_error(1)
   else empty end)
'
