#!/bin/sh
# benchfabric.sh — modern-fabric gate: sharded determinism plus the incast
# headline (DESIGN.md §11).
#
# Runs `nifdy-bench -exp fabric` twice, at 1 and 2 engine shards, and asserts:
#
#   1. The full (fabric, loss, nic_kind) metrics array is bit-identical
#      across the two shard counts — the scenario pack, seeded lossy wires
#      included, is deterministic under sharding.
#   2. Under lossless incast, NIFDY's delivered throughput is at least
#      RATIO_MIN (default 1.05) times the PFC baseline's — the pack's
#      headline claim.
#
# Mirroring benchdiff.sh's MIN_MS noise floor: if the reference (PFC)
# delivered count is below MIN_PKTS packets (default 1000), the run is a
# noise-dominated smoke configuration and the ratio is printed but not
# asserted. Set BENCH_OUT to keep the shards=1 JSON.
set -eu

RATIO_MIN=${RATIO_MIN:-1.05}
MIN_PKTS=${MIN_PKTS:-1000}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "benchfabric: fabric scenario pack at shards=1..."
go run ./cmd/nifdy-bench -exp fabric -shards 1 -json "$tmp/s1.json" > /dev/null
echo "benchfabric: fabric scenario pack at shards=2..."
go run ./cmd/nifdy-bench -exp fabric -shards 2 -json "$tmp/s2.json" > /dev/null

if [ -n "${BENCH_OUT:-}" ]; then
    cp "$tmp/s1.json" "$BENCH_OUT"
fi

# The first metrics entry of the fabric experiment is the raw FabricPoint
# array; the rendered table rides behind it.
points='.experiments | map(select(.name == "fabric")) | .[0].metrics[0]'
p1=$(jq -cS "$points" "$tmp/s1.json")
p2=$(jq -cS "$points" "$tmp/s2.json")
if [ "$p1" != "$p2" ]; then
    echo "FAIL: fabric metrics differ between shards=1 and shards=2" >&2
    printf '%s\n' "$p1" > "$tmp/p1.json"
    printf '%s\n' "$p2" > "$tmp/p2.json"
    diff "$tmp/p1.json" "$tmp/p2.json" >&2 || true
    exit 1
fi
echo "benchfabric: shards=1 and shards=2 metrics bit-identical"

jq -r -n --slurpfile d "$tmp/s1.json" --argjson min "$RATIO_MIN" --argjson floor "$MIN_PKTS" '
  ($d[0].experiments | map(select(.name == "fabric")) | .[0].metrics[0]) as $pts |
  def cell(k): $pts | map(select(.fabric == "incast" and .loss == false and .nic_kind == k)) | .[0].delivered;
  (cell("NIFDY")) as $n | (cell("PFC")) as $p |
  ($n / $p * 100 | round / 100) as $ratio |
  "incast lossless: NIFDY delivered \($n), PFC delivered \($p) (ratio \($ratio), floor \($min))",
  (if $p < $floor then
    "benchfabric: PFC delivered below \($floor) packets; ratio noise-dominated, not asserted"
  elif $n < $p * $min then
    "FAIL: NIFDY/PFC ratio \($ratio) below \($min)" | halt_error(1)
  else empty end)
'
echo "benchfabric: OK"
