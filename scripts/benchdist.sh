#!/bin/sh
# benchdist.sh — multi-process engine: bit-identity everywhere, speedup on
# multi-core.
#
# Runs the dist experiment through nifdy-bench: the same mesh workload over
# 1 and 2 (and, on hosts with at least 4 CPUs, 4) worker processes, one
# engine shard per worker, connected by the staged socket/shared-memory
# transport. The binary itself exits nonzero unless every run's full state
# trace is byte-identical, so the determinism half of the gate holds on any
# host — single-core included.
#
# The wall-clock half (the 2-process run must not be slower than the
# 1-process run) is only meaningful with at least 2 CPUs; below that the
# workers time-share one core and the comparison measures nothing but
# transport overhead, so the script records the speedup as "untested(1cpu)"
# in the JSON instead of asserting it. Set BENCH_OUT to keep the annotated
# JSON.
set -eu

ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
case $ncpu in *[!0-9]*|'') ncpu=1 ;; esac

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "benchdist: multi-process runs (bit-identity asserted by the binary)..."
go run ./cmd/nifdy-bench -exp dist -json "$tmp/dist.json"

# Annotate the run's JSON with the measured (or untested) speedup.
jq -n --slurpfile d "$tmp/dist.json" --argjson ncpu "$ncpu" '
  def wall(m): $d[0].experiments | map(select(.name == "dist" and .mode == m)) | .[0].ns_per_op;
  $d[0] + {speedup: (if $ncpu < 2 then "untested(1cpu)"
                     else (wall("procs=1")/wall("procs=2") * 100 | round / 100) end)}
' > "$tmp/annotated.json"
if [ -n "${BENCH_OUT:-}" ]; then
    cp "$tmp/annotated.json" "$BENCH_OUT"
fi

jq -r -n --slurpfile d "$tmp/annotated.json" --argjson ncpu "$ncpu" '
  def wall(m): $d[0].experiments | map(select(.name == "dist" and .mode == m)) | .[0].ns_per_op;
  (wall("procs=1")) as $p1 | (wall("procs=2")) as $p2 | ($d[0].numcpu) as $cpus |
  "dist procs=1: \($p1/1e9 * 100 | round / 100)s",
  "dist procs=2: \($p2/1e9 * 100 | round / 100)s (NumCPU=\($cpus))",
  "speedup: \($d[0].speedup)",
  (if $ncpu < 2 then
    "benchdist: only \($ncpu) CPU available; speedup recorded as untested, not asserted"
  elif $p2 > $p1 then
    "FAIL: 2-process run is slower than 1-process on a \($cpus)-CPU host" | halt_error(1)
  else empty end)
'
