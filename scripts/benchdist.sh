#!/bin/sh
# benchdist.sh — multi-process engine: bit-identity everywhere, speedup on
# multi-core.
#
# Runs the dist experiment through nifdy-bench: the same mesh workload over
# 1 and 2 (and, on hosts with at least 4 CPUs, 4) worker processes, one
# engine shard per worker, connected by the staged socket/shared-memory
# transport. The binary itself exits nonzero unless every run's full state
# trace is byte-identical, so the determinism half of the gate holds on any
# host — single-core included.
#
# The wall-clock half (the 2-process run must not be slower than the
# 1-process run) is only meaningful with at least 2 CPUs; below that the
# workers time-share one core and the comparison measures nothing but
# transport overhead, so the script reports the timings and skips it.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "benchdist: multi-process runs (bit-identity asserted by the binary)..."
go run ./cmd/nifdy-bench -exp dist -json "$tmp/dist.json"

jq -r -n --slurpfile d "$tmp/dist.json" '
  def wall(m): $d[0].experiments | map(select(.name == "dist" and .mode == m)) | .[0].ns_per_op;
  (wall("procs=1")) as $p1 | (wall("procs=2")) as $p2 | ($d[0].numcpu) as $cpus |
  "dist procs=1: \($p1/1e9 * 100 | round / 100)s",
  "dist procs=2: \($p2/1e9 * 100 | round / 100)s (NumCPU=\($cpus))",
  (if $cpus < 2 then
    "benchdist: only \($cpus) CPU available; skipping the speedup assertion"
  elif $p2 > $p1 then
    "FAIL: 2-process run is slower than 1-process on a \($cpus)-CPU host" | halt_error(1)
  else
    "speedup: \($p1/$p2 * 100 | round / 100)x"
  end)
'
