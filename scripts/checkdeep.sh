#!/bin/sh
# checkdeep.sh [minutes] — the deep correctness sweep behind `make check-deep`.
#
# Three stages, each with every invariant monitor armed:
#   1. the full monitor acceptance matrix and mutation suite (internal/check)
#   2. a scaled-up randomized cross-configuration fuzz sweep (via the
#      NIFDY_FUZZ_* environment overrides read by TestFuzzSweepClean)
#   3. native Go fuzzing of the latched/ring queue primitives
#
# The argument (or CHECK_DEEP_MINUTES) caps the add-on budget: the fuzz sweep
# trial count and the per-target native fuzz time scale with it. Default 5
# minutes; stage 1 always runs in full regardless of the cap.
set -eu

MINUTES=${1:-${CHECK_DEEP_MINUTES:-5}}
case "$MINUTES" in
    ''|*[!0-9]*) echo "usage: $0 [minutes]" >&2; exit 2 ;;
esac
if [ "$MINUTES" -lt 1 ]; then
    MINUTES=1
fi

GO=${GO:-go}
# Scale: ~12 randomized fuzz-sweep trials and ~30s of native fuzzing per
# budget minute, split across the two native targets.
TRIALS=$((MINUTES * 12))
FUZZTIME=$((MINUTES * 15))s

echo "== check-deep: budget ${MINUTES}m (${TRIALS} sweep trials, ${FUZZTIME}/target native fuzz) =="

echo "-- monitor acceptance matrix + mutation suite --"
$GO test -count=1 ./internal/check/

echo "-- randomized cross-configuration sweep (${TRIALS} trials) --"
NIFDY_FUZZ_TRIALS=$TRIALS NIFDY_FUZZ_PACKETS=40 \
    $GO test -count=1 -run 'TestFuzzSweepClean' -timeout 3600s ./internal/harness/

echo "-- native fuzz: ring.Deque (${FUZZTIME}) --"
$GO test -run xxx -fuzz FuzzDeque -fuzztime "$FUZZTIME" ./internal/ring/

echo "-- native fuzz: sim.Queue (${FUZZTIME}) --"
$GO test -run xxx -fuzz FuzzQueue -fuzztime "$FUZZTIME" ./internal/sim/

echo "== check-deep: OK =="
