// Incast at 100k-node scale: senders spread across a 102,400-node
// flow-level mesh all target one receiver. The NIFDY protocol layer stays
// exact — every sender runs the real unit, so outstanding-packet slots and
// bulk-transfer admission throttle the fan-in just as they would on the
// cycle-accurate fabric — while the fabric itself models traffic as
// bandwidth-sharing flows, which is what makes a 100k-node run take seconds
// instead of hours. Run with:
//
//	go run ./examples/incast100k                          # 102,400 nodes
//	go run ./examples/incast100k -x 64 -y 64 -senders 64  # reduced scale
package main

import (
	"flag"
	"fmt"

	"nifdy"
)

func main() {
	x := flag.Int("x", 320, "mesh width")
	y := flag.Int("y", 320, "mesh height")
	senders := flag.Int("senders", 512, "fan-in width (nodes sending to the victim)")
	packets := flag.Int("packets", 2, "packets per sender")
	budget := flag.Int64("budget", 2_000_000, "simulated-cycle budget")
	flag.Parse()

	nodes := *x * *y
	if *senders >= nodes {
		fmt.Printf("senders %d must be below the node count %d\n", *senders, nodes)
		return
	}
	const victim = 0
	total := *senders * *packets
	// Spread the senders across the whole mesh so the fan-in converges from
	// everywhere, not from one corner.
	step := (nodes - 1) / *senders
	isSender := make(map[int]int, *senders)
	for i := 0; i < *senders; i++ {
		isSender[1+i*step] = i
	}

	sys := nifdy.New(nifdy.Options{
		Net:  nifdy.FlowMeshSized(*x, *y),
		Kind: nifdy.KindNIFDY,
		Program: func(n int) nifdy.Program {
			if n == victim {
				return func(p *nifdy.Proc) {
					for i := 0; i < total; i++ {
						p.Recv()
					}
				}
			}
			if _, ok := isSender[n]; ok {
				k := *packets
				return func(p *nifdy.Proc) {
					for i := 0; i < k; i++ {
						p.Send(&nifdy.Packet{
							ID: uint64(n)<<32 | uint64(i+1), Src: n, Dst: victim,
							Words: 8, Class: nifdy.Request, Dialog: nifdy.NoDialog,
						})
					}
				}
			}
			return nil // the rest of the fabric idles (no processor built)
		},
	})
	defer sys.Close()

	ok, end := sys.RunUntilDone(*budget)
	if !ok {
		fmt.Printf("timed out after %d cycles\n", *budget)
		return
	}
	st := sys.AggregateStats()
	fmt.Printf("incast complete: %d packets from %d senders into node %d at cycle %d\n",
		total, *senders, victim, end)
	fmt.Printf("fabric: %d-node flow-level mesh (%dx%d)\n", nodes, *x, *y)
	fmt.Printf("protocol: %d acks received, %d bulk grants, %d bulk rejects\n",
		st.AcksReceived, st.BulkGrants, st.BulkRejects)
}
