// EM3D on several fabrics: reproduces the Figures 7/8 comparison shape —
// without exploiting in-order delivery, NIFDY's flow control alone roughly
// matches the buffers-only baseline; once the message layer relies on
// in-order delivery (bigger payload per packet, no software reordering),
// NIFDY wins on every network. Run with:
//
//	go run ./examples/em3d [-heavy] [-full]
package main

import (
	"flag"
	"fmt"

	"nifdy"
)

func main() {
	heavy := flag.Bool("heavy", false, "Figure 8 graph parameters (almost all edges remote)")
	full := flag.Bool("full", false, "full graph sizes and all eight networks")
	flag.Parse()

	opts := nifdy.EM3DOpts{Heavy: *heavy}
	if !*full {
		opts.ScaleGraph = 10
		opts.Iters = 1
		opts.Networks = []nifdy.NetSpec{
			nifdy.FullFatTree(), nifdy.CM5FatTree(), nifdy.Mesh2D(), nifdy.Butterfly(),
		}
	}
	tbl := nifdy.EM3D(opts)
	fmt.Println(tbl)
	fmt.Println("Columns: plain NIC, buffers-only, NIFDY- (flow control only),")
	fmt.Println("NIFDY (in-order delivery exploited). Lower is better (cycles per")
	fmt.Println("iteration). On in-order fabrics (mesh, butterfly) every column uses")
	fmt.Println("the in-order message layer, as in the paper (§4.4).")
}
