// Quickstart: two processors exchange a message over a fat tree through
// NIFDY network interfaces, then the roles of the four NIFDY parameters are
// printed. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"nifdy"
)

func main() {
	var reply *nifdy.Packet

	sys := nifdy.New(nifdy.Options{
		Net:  nifdy.FullFatTree(), // 64-node 4-ary fat tree, cut-through
		Kind: nifdy.KindNIFDY,
		Program: func(n int) nifdy.Program {
			switch n {
			case 0:
				// Node 0: ping node 63, wait for the pong.
				return func(p *nifdy.Proc) {
					p.Send(&nifdy.Packet{
						ID: 1, Src: 0, Dst: 63, Words: 8,
						Class: nifdy.Request, Dialog: nifdy.NoDialog,
					})
					reply = p.Recv()
					fmt.Printf("node 0: pong received at cycle %d (one-way+%d overhead cycles)\n",
						p.Now(), nifdy.CM5Costs().Recv)
				}
			case 63:
				// Node 63: answer the ping on the reply network.
				return func(p *nifdy.Proc) {
					ping := p.Recv()
					fmt.Printf("node 63: ping %d from node %d at cycle %d\n", ping.ID, ping.Src, p.Now())
					p.Send(&nifdy.Packet{
						ID: 2, Src: 63, Dst: ping.Src, Words: 8,
						Class: nifdy.Reply, Dialog: nifdy.NoDialog,
					})
				}
			default:
				return func(p *nifdy.Proc) {} // the other 62 nodes idle
			}
		},
	})
	defer sys.Close()

	if ok, end := sys.RunUntilDone(1_000_000); ok {
		fmt.Printf("round trip complete at cycle %d\n", end)
	} else {
		fmt.Println("timed out")
		return
	}
	if reply != nil {
		fmt.Printf("reply: %v (created %d, injected %d, delivered %d, accepted %d)\n",
			reply, reply.CreatedAt, reply.InjectedAt, reply.DeliveredAt, reply.AcceptedAt)
	}

	agg := sys.AggregateStats()
	fmt.Printf("\nprotocol activity: %d data packets, %d acks\n", agg.Injected, agg.AcksSent)
	fmt.Println("\nNIFDY parameters on this network (Table 3 tuning):")
	spec := nifdy.FullFatTree()
	fmt.Printf("  O=%d  outstanding packet table (global cap on unacked scalar packets)\n", spec.Params.O)
	fmt.Printf("  B=%d  outgoing buffer pool (rank/eligibility removes head-of-line blocking)\n", spec.Params.B)
	fmt.Printf("  D=%d  bulk dialogs a receiver grants concurrently\n", spec.Params.D)
	fmt.Printf("  W=%d  sliding window / reorder buffers per dialog\n", spec.Params.W)
}
