// Incast on a modern fabric: NIFDY against the datacenter baselines. A
// seeded set of senders blasts the center of a wormhole mesh while the
// remaining nodes exchange uniform background traffic, and the same scenario
// runs under four NICs — plain (no protection), PFC (hop-by-hop pause),
// DCQCN (ECN-driven rate control), and NIFDY's end-to-end admission control.
// The fan-in itself is bounded by the sink's service rate for every NIC; the
// interesting number is how much background traffic survives the hotspot's
// backpressure (congestion spreading, paper §1.1). Run with:
//
//	go run ./examples/incastfabric                        # 9x9 mesh, 48-way
//	go run ./examples/incastfabric -width 17 -height 17 -fanin 256 -cycles 100000
//	go run ./examples/incastfabric -lossy                 # add seeded flit drops
package main

import (
	"flag"
	"fmt"

	"nifdy"
)

func main() {
	width := flag.Int("width", 9, "mesh width")
	height := flag.Int("height", 9, "mesh height")
	fanin := flag.Int("fanin", 48, "incast width (senders targeting the center)")
	cycles := flag.Int64("cycles", 40_000, "measurement budget in cycles")
	seed := flag.Uint64("seed", 1995, "sender placement and lossy-wire seed")
	lossy := flag.Bool("lossy", false, "also run the lossy-wire column (NIFDY retransmits; the baselines take the losses)")
	flag.Parse()

	o := nifdy.FabricOpts{
		Width: *width, Height: *height, FanIn: *fanin,
		Cycles: nifdy.Cycle(*cycles), Seed: *seed,
		Scenarios: []nifdy.FabricScenario{
			nifdy.IncastScenario(*width, *height, *fanin, *seed),
		},
		Lossy: []bool{false},
	}
	if *lossy {
		o.Lossy = []bool{false, true}
	}
	points := nifdy.FabricExperiment(o)
	fmt.Println(nifdy.FabricTable(points))

	byKind := map[string]nifdy.FabricPoint{}
	for _, p := range points {
		if !p.Lossy {
			byKind[p.Kind] = p
		}
	}
	n, p, base := byKind["NIFDY"], byKind["PFC"], byKind["none"]
	fmt.Printf("incast fabric: NIFDY delivered %d vs PFC %d and plain %d (%d-way fan-in, %dx%d mesh)\n",
		n.Delivered, p.Delivered, base.Delivered, *fanin, *width, *height)
}
