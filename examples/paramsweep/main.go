// Parameter sweep: how the paper's Table 3 "best NIFDY parameters" were
// found. For a chosen network, every (O, B, W) combination is scored by the
// average of heavy- and light-traffic delivery, and the ranking is printed
// alongside the network's characteristics — low-volume, low-bisection
// fabrics want small O/B/W; roomy fat trees tolerate generous settings
// (§2.4.3, §4.1). Run with:
//
//	go run ./examples/paramsweep [-net mesh|torus|fattree|sf|cm5|butterfly|multibutterfly] [-cycles N]
package main

import (
	"flag"
	"fmt"
	"os"

	"nifdy"
)

func main() {
	netName := flag.String("net", "mesh", "network to tune")
	cycles := flag.Int64("cycles", 100_000, "cycles per sweep point (paper scale: 1000000)")
	flag.Parse()

	specs := map[string]nifdy.NetSpec{
		"mesh":           nifdy.Mesh2D(),
		"torus":          nifdy.Torus2D(),
		"mesh3d":         nifdy.Mesh3D(),
		"fattree":        nifdy.FullFatTree(),
		"sf":             nifdy.SFFatTree(),
		"cm5":            nifdy.CM5FatTree(),
		"butterfly":      nifdy.Butterfly(),
		"multibutterfly": nifdy.Multibutterfly(),
	}
	spec, ok := specs[*netName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown network %q\n", *netName)
		os.Exit(2)
	}

	net := spec.Build(1, nifdy.IfaceOptions{})
	fmt.Printf("network: %v\n\n", net.Chars())
	fmt.Printf("adopted parameters (Table 3): O=%d B=%d D=%d W=%d\n\n",
		spec.Params.O, spec.Params.B, spec.Params.D, spec.Params.W)

	results := nifdy.Table3Sweep(spec, nifdy.SweepOpts{Cycles: *cycles})
	fmt.Println("sweep ranking (heavy+light delivered packets, best first):")
	for i, r := range results {
		marker := " "
		if r.Params.O == spec.Params.O && r.Params.B == spec.Params.B && r.Params.W == spec.Params.W {
			marker = "*" // the adopted Table 3 point
		}
		fmt.Printf("%s %2d. O=%-2d B=%-2d W=%-2d  %d\n", marker, i+1, r.Params.O, r.Params.B, r.Params.W, r.Delivered)
	}
	fmt.Println("\n(* marks the parameters this repository adopts for the network)")
}
