// Smoke tests for the runnable examples: each must build, run at a reduced
// scale, exit 0, and print its headline line. These guard the public API
// surface the examples exercise — a root-package rename that only the
// examples use would otherwise go unnoticed by `go test ./...`.
package examples_test

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, wantSubstr string, args ...string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = ".." // repo root, where the nifdy module lives
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	if !strings.Contains(string(out), wantSubstr) {
		t.Fatalf("go run %v output missing %q:\n%s", args, wantSubstr, out)
	}
}

func TestQuickstart(t *testing.T) {
	runExample(t, "round trip complete", "./examples/quickstart")
}

func TestEM3D(t *testing.T) {
	runExample(t, "cycles per", "./examples/em3d")
}

func TestParamsweep(t *testing.T) {
	runExample(t, "sweep ranking", "./examples/paramsweep", "-cycles", "2000")
}

func TestIncast100k(t *testing.T) {
	runExample(t, "incast complete", "./examples/incast100k",
		"-x", "64", "-y", "64", "-senders", "64")
}

func TestIncastFabric(t *testing.T) {
	runExample(t, "incast fabric:", "./examples/incastfabric",
		"-width", "7", "-height", "7", "-fanin", "24", "-cycles", "10000")
}
