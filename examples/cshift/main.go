// C-shift study: reproduces the paper's §4.3 story at a glance. The cyclic
// shift all-to-all is run on a CM-5-style fat tree four ways — plain NIC
// with and without barriers, buffers-only, and NIFDY — then the Figure 5
// congestion heatmaps are rendered: pending packets per receiver over time,
// showing pile-ups dissipating under NIFDY's admission control. Run with:
//
//	go run ./examples/cshift [-full]
package main

import (
	"flag"
	"fmt"

	"nifdy"
)

func main() {
	full := flag.Bool("full", false, "64-node network and larger blocks")
	flag.Parse()

	opts := nifdy.CShiftOpts{Levels: 2, BlockWords: 30, MaxCycles: 20_000_000, Samples: 20_000}
	if *full {
		opts = nifdy.CShiftOpts{} // defaults: 64 nodes, paper-ish scale
	}

	fmt.Println(nifdy.Figure6(opts))

	without, with := nifdy.Figure5(opts)
	fmt.Println("Figure 5: pending packets per receiver over time (darker = more backlog)")
	fmt.Println("\n-- without NIFDY, no barriers --")
	fmt.Print(without)
	fmt.Println("\n-- with NIFDY, no barriers --")
	fmt.Print(with)
	fmt.Println("\nReading the maps: without NIFDY, early finishers pile onto busy")
	fmt.Println("receivers and the dark bands persist; with NIFDY the \"rightful\"")
	fmt.Println("sender holds the bulk dialog, perturbations dissipate, and the run")
	fmt.Println("ends sooner (§4.3).")
}
