// Benchmarks: one per paper table/figure (DESIGN.md experiment index), each
// running its harness entry at reduced scale so the suite completes in
// minutes. cmd/nifdy-bench -full reproduces paper-scale budgets. Reported
// ns/op is the wall time of one full experiment at the reduced scale;
// sub-benchmarks print the headline shape numbers via b.ReportMetric where
// a single scalar captures it.
package nifdy_test

import (
	"testing"

	"nifdy"
	"nifdy/internal/harness"
	"nifdy/internal/node"
	"nifdy/internal/sim"
	"nifdy/internal/traffic"
)

// benchNets keeps the per-iteration cost bounded while spanning the
// low-bisection (mesh) and high-bisection (fat tree) extremes.
func benchNets() []nifdy.NetSpec {
	return []nifdy.NetSpec{nifdy.FullFatTree(), nifdy.Mesh2D(), nifdy.CM5FatTree()}
}

func BenchmarkTable2Calibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := nifdy.Table2()
		if tbl.NumRows() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3BestParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := nifdy.Table3(1995)
		if tbl.NumRows() != 8 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable3SweepMesh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := nifdy.Table3Sweep(nifdy.Mesh2D(), nifdy.SweepOpts{
			Cycles: 20_000, Os: []int{4, 8}, Bs: []int{4, 8}, Ws: []int{2}})
		if len(res) != 4 {
			b.Fatal("bad sweep")
		}
	}
}

func BenchmarkFigure2Heavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := nifdy.Figure2(nifdy.SynthOpts{Cycles: 100_000, Networks: benchNets()})
		if tbl.NumRows() != 3 {
			b.Fatal("bad figure 2")
		}
	}
}

func BenchmarkFigure3Light(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := nifdy.Figure3(nifdy.SynthOpts{Cycles: 100_000, Networks: benchNets()})
		if tbl.NumRows() != 3 {
			b.Fatal("bad figure 3")
		}
	}
}

func BenchmarkFigure4Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vb, vo := nifdy.Figure4(nifdy.Figure4Opts{Cycles: 60_000, Levels: []int{2, 3}, Sweep: []int{2, 8}})
		if vb.NumRows() != 2 || vo.NumRows() != 2 {
			b.Fatal("bad figure 4")
		}
	}
}

func BenchmarkFigure5CShiftHeatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		without, with := nifdy.Figure5(nifdy.CShiftOpts{
			Levels: 2, BlockWords: 20, MaxCycles: 5_000_000, Samples: 10_000})
		if without == "" || with == "" {
			b.Fatal("bad figure 5")
		}
	}
}

func BenchmarkFigure6CShift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := nifdy.Figure6(nifdy.CShiftOpts{Levels: 2, BlockWords: 20, MaxCycles: 5_000_000})
		if tbl.NumRows() != 5 {
			b.Fatal("bad figure 6")
		}
	}
}

func BenchmarkFigure7EM3DLight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := nifdy.EM3D(nifdy.EM3DOpts{ScaleGraph: 20, Iters: 1,
			Networks: benchNets(), MaxCycles: 30_000_000})
		if tbl.NumRows() != 3 {
			b.Fatal("bad figure 7")
		}
	}
}

func BenchmarkFigure8EM3DHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := nifdy.EM3D(nifdy.EM3DOpts{Heavy: true, ScaleGraph: 20, Iters: 1,
			Networks: benchNets(), MaxCycles: 30_000_000})
		if tbl.NumRows() != 3 {
			b.Fatal("bad figure 8")
		}
	}
}

func BenchmarkFigure9RadixScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := nifdy.Figure9(nifdy.RadixOpts{Nodes: 16, Buckets: 64, MaxCycles: 10_000_000})
		if tbl.NumRows() != 3 {
			b.Fatal("bad figure 9")
		}
	}
}

func BenchmarkRadixCoalesce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := nifdy.RadixCoalesce(nifdy.RadixOpts{Nodes: 16, Buckets: 64, MaxCycles: 10_000_000})
		if tbl.NumRows() != 1 {
			b.Fatal("bad coalesce")
		}
	}
}

func BenchmarkExtLossyRetransmit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := nifdy.ExtLossy(nifdy.LossyOpts{Drops: []float64{0.05}, Messages: 5, MaxCycles: 30_000_000})
		if tbl.NumRows() != 1 {
			b.Fatal("bad lossy")
		}
	}
}

func BenchmarkExtAckStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := nifdy.ExtAckStrategies(nifdy.AckOpts{Cycles: 50_000})
		if tbl.NumRows() != 3 {
			b.Fatal("bad acks")
		}
	}
}

func BenchmarkExtPiggyback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := nifdy.ExtPiggyback(nifdy.AckOpts{Cycles: 60_000})
		if tbl.NumRows() != 2 {
			b.Fatal("bad piggyback")
		}
	}
}

// BenchmarkSimCycleMesh measures raw simulator speed: cycles/second on a
// loaded 8x8 mesh with NIFDY NICs (reported as cycles_per_op over 10k
// simulated cycles).
func BenchmarkSimCycleMesh(b *testing.B) {
	tcfg := traffic.Heavy(64, 7)
	tcfg.Phases = 1 << 20
	gen := traffic.NewGen(tcfg, nil)
	s := harness.Build(harness.BuildOpts{Net: harness.Mesh2D(), Kind: harness.NIFDY, Seed: 7,
		Program: func(n int) node.Program { return gen.Program(n) }})
	defer s.Close()
	s.Eng.Run(10_000) // warm into steady state
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Eng.Run(10_000)
	}
	b.ReportMetric(10_000, "simcycles/op")
}

// BenchmarkSaturatedCycle measures the steady-state cost of one simulated
// cycle under saturation for each NIC kind, with allocation reporting: the
// zero-allocation data path contract is that B/op stays at (near) zero once
// the simulation is warm — every queue at its high-water mark, every packet
// recycling through the per-node free-lists.
func BenchmarkSaturatedCycle(b *testing.B) {
	kinds := []struct {
		name string
		kind harness.NICKind
	}{
		{"nifdy", harness.NIFDY},
		{"buffers", harness.BuffersOnly},
		{"plain", harness.Plain},
	}
	for _, k := range kinds {
		b.Run(k.name, func(b *testing.B) {
			tcfg := traffic.Heavy(64, 7)
			tcfg.Phases = 1 << 20
			gen := traffic.NewGen(tcfg, nil)
			s := harness.Build(harness.BuildOpts{Net: harness.Mesh2D(), Kind: k.kind, Seed: 7,
				Program: func(n int) node.Program { return gen.Program(n) }})
			defer s.Close()
			// Warm past the transient: pools and rings grow to their
			// high-water marks, after which the data path recycles.
			s.Eng.Run(20_000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Eng.Run(1_000)
			}
			b.ReportMetric(1_000, "simcycles/op")
		})
	}
}

// BenchmarkEngineParallel is the X3 ablation: the engine's sharded parallel
// tick versus serial on a partitionable workload, verifying identical
// results while measuring wall-clock.
func BenchmarkEngineParallel(b *testing.B) {
	build := func(eng *sim.Engine, shards int) []*sim.Reg[int] {
		const k = 64
		regs := make([]*sim.Reg[int], k)
		for i := range regs {
			regs[i] = &sim.Reg[int]{}
			eng.RegisterLatch(regs[i])
		}
		for i := 0; i < k; i++ {
			i := i
			eng.RegisterSharded(i%shards, sim.TickFunc(func(sim.Cycle) {
				regs[i].Set(regs[(i+k-1)%k].Get() + 1)
			}))
		}
		return regs
	}
	b.Run("serial", func(b *testing.B) {
		eng := sim.New()
		build(eng, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Step()
		}
	})
	b.Run("parallel4", func(b *testing.B) {
		eng := sim.NewParallel(4)
		defer eng.Close()
		build(eng, 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Step()
		}
	})
}

// BenchmarkConcurrentSims measures the harness's real parallel win: running
// independent simulations concurrently (how every multi-configuration
// figure is produced).
func BenchmarkConcurrentSims(b *testing.B) {
	runOne := func() {
		tcfg := traffic.Heavy(64, 3)
		tcfg.Phases = 1 << 20
		gen := traffic.NewGen(tcfg, nil)
		s := harness.Build(harness.BuildOpts{Net: harness.Mesh2D(), Kind: harness.NIFDY, Seed: 3,
			Program: func(n int) node.Program { return gen.Program(n) }})
		s.Eng.Run(20_000)
		s.Close()
	}
	b.Run("sequential4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < 4; j++ {
				runOne()
			}
		}
	})
	b.Run("concurrent4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			done := make(chan struct{}, 4)
			for j := 0; j < 4; j++ {
				go func() { runOne(); done <- struct{}{} }()
			}
			for j := 0; j < 4; j++ {
				<-done
			}
		}
	})
}

// BenchmarkModelCheck runs the §2.4 analytical-model calibration.
func BenchmarkModelCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := nifdy.ModelCheck(nifdy.ModelCheckOpts{})
		if tbl.NumRows() != 7 {
			b.Fatal("bad model check")
		}
	}
}
